// Benchmarks regenerating every table and figure of the reconstructed
// evaluation (DESIGN.md §4): one Benchmark per experiment, running the
// experiment at reduced scale per iteration, plus micro-benchmarks of the
// hot paths underneath them. `go test -bench=. -benchmem` regenerates the
// whole suite; `cmd/cpbench` prints the full-scale tables.
package crowdplanner_test

import (
	"context"
	"sync/atomic"
	"testing"

	"crowdplanner"
	"crowdplanner/internal/experiments"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/popular"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/task"
	"crowdplanner/internal/worker"
)

// ---- one benchmark per reconstructed table/figure ----

func BenchmarkE1Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E1Accuracy(6)
	}
}

func BenchmarkE2Questions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2Questions(5)
	}
}

func BenchmarkE3Selection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E3Selection(1)
	}
}

func BenchmarkE4Workers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E4Workers(8)
	}
}

func BenchmarkE5PMF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E5PMF()
	}
}

func BenchmarkE6EarlyStop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E6EarlyStop(8)
	}
}

func BenchmarkE7Truth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E7Truth(40)
	}
}

func BenchmarkE8Response(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E8Response(8)
	}
}

func BenchmarkE9Binary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E9Binary(3)
	}
}

func BenchmarkE10Scale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E10Scale(3)
	}
}

func BenchmarkAblationVoting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationVoting(8)
	}
}

func BenchmarkAblationPMF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationPMF(8)
	}
}

func BenchmarkAblationOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationOrdering(8)
	}
}

// ---- micro-benchmarks of the hot paths ----

var benchScn = struct {
	scn  *crowdplanner.Scenario
	init bool
}{}

func scenario(b *testing.B) *crowdplanner.Scenario {
	b.Helper()
	if !benchScn.init {
		benchScn.scn = crowdplanner.BuildScenario(crowdplanner.SmallScenarioConfig())
		benchScn.init = true
	}
	return benchScn.scn
}

func BenchmarkDijkstra(b *testing.B) {
	scn := scenario(b)
	n := roadnet.NodeID(scn.Graph.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.NodeID(i) % n
		dst := (src + n/2) % n
		_, _, _ = routing.ShortestPath(scn.Graph, src, dst, routing.TravelTimeCost, routing.At(0, 8, 0))
	}
}

func BenchmarkAStar(b *testing.B) {
	// Goal-directed variant of BenchmarkDijkstra: same ODs, same cost,
	// heuristic derived from TravelTimeCost.MinCostPerMeter(). This is what
	// the serving path (proposeRoutes, the oracle) now runs.
	scn := scenario(b)
	n := roadnet.NodeID(scn.Graph.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.NodeID(i) % n
		dst := (src + n/2) % n
		_, _, _ = routing.AStar(scn.Graph, src, dst, routing.TravelTimeCost, routing.At(0, 8, 0))
	}
}

func BenchmarkKShortest(b *testing.B) {
	scn := scenario(b)
	n := roadnet.NodeID(scn.Graph.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := roadnet.NodeID(i) % n
		dst := (src + n/2) % n
		_, _, _ = routing.KShortest(scn.Graph, src, dst, 4, routing.DistanceCost, 0)
	}
}

func BenchmarkMineMFP(b *testing.B) {
	scn := scenario(b)
	trip := scn.Data.Trips[0]
	m := popular.NewMFP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = m.Mine(scn.Data, trip.Route.Source(), trip.Route.Dest(), trip.Depart)
	}
}

func BenchmarkMineMPR(b *testing.B) {
	scn := scenario(b)
	trip := scn.Data.Trips[0]
	m := popular.NewMPR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = m.Mine(scn.Data, trip.Route.Source(), trip.Route.Dest(), trip.Depart)
	}
}

func BenchmarkTaskGenerate(b *testing.B) {
	scn := scenario(b)
	trip := scn.Data.Trips[0]
	req := crowdplanner.Request{From: trip.Route.Source(), To: trip.Route.Dest(), Depart: trip.Depart}
	rawCands, err := scn.System.Candidates(context.Background(), req)
	if err != nil {
		b.Fatal(err)
	}
	cands := task.MergeIndistinguishable(rawCands)
	if len(cands) < 2 {
		b.Skip("candidates agree for this OD")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = task.Generate(int64(i), scn.Landmarks, cands, task.DefaultConfig())
	}
}

func BenchmarkTopKEligible(b *testing.B) {
	scn := scenario(b)
	var ids []landmark.ID
	for _, l := range scn.Landmarks.TopBySignificance(4) {
		ids = append(ids, l.ID)
	}
	mstar := scn.System.Familiarity()
	cfg := scn.System.Config().Select
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = worker.TopKEligible(scn.Pool, mstar, ids, 7, cfg)
	}
}

func BenchmarkPMFFit(b *testing.B) {
	m := worker.NewMatrix(100, 150)
	for i := 0; i < 100; i++ {
		for j := 0; j < 150; j++ {
			if (i*31+j*17)%11 == 0 {
				m.Set(i, j, float64((i+j)%5)*0.3+0.2)
			}
		}
	}
	cfg := worker.DefaultPMFConfig()
	cfg.Iters = 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = worker.FitPMF(m, cfg)
	}
}

func BenchmarkRecommendEndToEnd(b *testing.B) {
	// Steady state: truths accumulate, so repeats hit the reuse path.
	scn := scenario(b)
	trips := scn.Data.Trips
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trips[i%len(trips)]
		if tr.Route.Empty() {
			continue
		}
		_, _ = scn.System.Recommend(context.Background(), crowdplanner.Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		})
	}
}

func BenchmarkRecommendColdEndToEnd(b *testing.B) {
	// Cold path: truth reuse and the route cache disabled, every request
	// runs the full candidate generation + evaluation (+ possibly crowd)
	// pipeline from scratch.
	scn := scenario(b)
	cfg := scn.System.Config()
	cfg.ReuseTruth = false
	cfg.RouteCacheCapacity = 0
	sys := crowdplanner.NewSystem(cfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
		&populationOracle{scn})
	trips := scn.Data.Trips
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trips[i%len(trips)]
		if tr.Route.Empty() {
			continue
		}
		_, _ = sys.Recommend(context.Background(), crowdplanner.Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		})
	}
}

func BenchmarkRecommendColdCached(b *testing.B) {
	// Cold truths, warm route cache: truth reuse disabled so every request
	// runs the full evaluation, but repeat OD pairs hit the candidate
	// cache and skip Dijkstra/Yen/mining. Compare against
	// BenchmarkRecommendColdEndToEnd for the cache's effect.
	scn := scenario(b)
	cfg := scn.System.Config()
	cfg.ReuseTruth = false
	sys := crowdplanner.NewSystem(cfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
		&populationOracle{scn})
	trips := scn.Data.Trips
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trips[i%len(trips)]
		if tr.Route.Empty() {
			continue
		}
		_, _ = sys.Recommend(context.Background(), crowdplanner.Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		})
	}
}

func BenchmarkRecommendParallel(b *testing.B) {
	// Parallel throughput on the evaluation path with a warm route cache:
	// the same workload as BenchmarkRecommendColdCached (the serial
	// baseline), issued from GOMAXPROCS goroutines. Truth reuse is off, so
	// every request runs candidate evaluation; the route cache absorbs the
	// graph searches and fine-grained locking lets the rest scale with
	// cores — per-op wall time should be well under half the serial
	// baseline's.
	scn := scenario(b)
	cfg := scn.System.Config()
	cfg.ReuseTruth = false
	sys := crowdplanner.NewSystem(cfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
		&populationOracle{scn})
	trips := scn.Data.Trips
	// Pre-warm: one pass over the distinct ODs fills the route cache.
	for _, tr := range trips {
		if tr.Route.Empty() {
			continue
		}
		_, _ = sys.Recommend(context.Background(), crowdplanner.Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		})
	}
	var ctr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr := trips[int(ctr.Add(1))%len(trips)]
			if tr.Route.Empty() {
				continue
			}
			_, _ = sys.Recommend(context.Background(), crowdplanner.Request{
				From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
			})
		}
	})
}

// populationOracle adapts the scenario's dataset as the crowd's knowledge
// for the cold benchmark.
type populationOracle struct{ scn *crowdplanner.Scenario }

func (o *populationOracle) BestRoute(from, to roadnet.NodeID, t routing.SimTime) (roadnet.Route, error) {
	return o.scn.Data.GroundTruth(from, to, t, 40)
}
