package crowdplanner_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"crowdplanner"
)

func TestFacadeEndToEnd(t *testing.T) {
	scn := crowdplanner.BuildScenario(crowdplanner.SmallScenarioConfig())
	trip := scn.Data.Trips[0]
	resp, err := scn.System.Recommend(context.Background(), crowdplanner.Request{
		From:   trip.Route.Source(),
		To:     trip.Route.Dest(),
		Depart: crowdplanner.At(1, 8, 30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Route.Empty() {
		t.Fatal("empty route")
	}
	switch resp.Stage {
	case crowdplanner.StageReuse, crowdplanner.StageAgreement,
		crowdplanner.StageConfidence, crowdplanner.StageCrowd,
		crowdplanner.StageFallback:
	default:
		t.Errorf("unknown stage %v", resp.Stage)
	}
}

func TestFacadeAt(t *testing.T) {
	tm := crowdplanner.At(1, 8, 30)
	if tm.Day() != 1 || tm.HourOfDay() != 8.5 {
		t.Errorf("At = %v", tm)
	}
}

func TestFacadeHTTPHandler(t *testing.T) {
	scn := crowdplanner.BuildScenario(crowdplanner.SmallScenarioConfig())
	srv := httptest.NewServer(crowdplanner.NewHTTPHandler(scn.System))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d", resp.StatusCode)
	}

	trip := scn.Data.Trips[0]
	body, _ := json.Marshal(map[string]any{
		"from": trip.Route.Source(), "to": trip.Route.Dest(), "depart_min": 510,
	})
	rec, err := http.Post(srv.URL+"/api/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Body.Close()
	if rec.StatusCode != http.StatusOK {
		t.Fatalf("recommend status = %d", rec.StatusCode)
	}
}

func TestDefaultConfigs(t *testing.T) {
	if crowdplanner.DefaultConfig().EtaConfidence <= 0 {
		t.Error("bad default config")
	}
	small := crowdplanner.SmallScenarioConfig()
	def := crowdplanner.DefaultScenarioConfig()
	if small.City.Cols >= def.City.Cols {
		t.Error("small scenario should be smaller")
	}
}
