// Package client is the typed Go SDK for the CrowdPlanner /v1 HTTP API.
//
// It covers the whole surface: synchronous recommendation, the batch
// endpoint, and the asynchronous crowd-task lifecycle (publish a request,
// poll the ticket, submit worker answers, expire on deadline), plus the
// inventory endpoints (health, truths, landmarks, top workers, sources).
//
// Transient failures are retried with exponential backoff: GETs on 429,
// any 5xx, and transport errors; mutating POSTs only on 429/503, where the
// server rejected the request before doing work (a 500 or a dropped
// connection may have committed server-side, and re-POSTing an async
// recommend would publish a duplicate crowd task). Every call takes a
// context and stops — retries included — as soon as it is cancelled.
// Server-reported errors surface as *APIError carrying the typed /v1 error
// code.
//
//	c := client.New("http://localhost:8080")
//	rec, err := c.Recommend(ctx, client.RecommendRequest{From: 3, To: 317, DepartMin: 510})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to a CrowdPlanner server's /v1 API.
type Client struct {
	baseURL    string
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets how many times a transiently-failed call is retried (see
// the package doc for which method/status combinations qualify), and the
// base backoff. The wait before attempt n doubles the base per attempt and
// is then jittered to half-to-full of that value ("equal jitter"), so a
// fleet of clients rejected together does not come back as one synchronized
// retry storm. When the server supplied a Retry-After on a 429/503, that
// takes precedence over the computed backoff (plus a small jitter).
// WithRetry(0, 0) disables retries.
func WithRetry(maxRetries int, backoff time.Duration) Option {
	return func(c *Client) {
		c.maxRetries = maxRetries
		c.backoff = backoff
	}
}

// New returns a client for the server at baseURL (scheme://host[:port],
// without the /v1 prefix). Defaults: the shared http.DefaultClient, 3
// retries, 100ms initial backoff.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL:    trimTrailingSlash(baseURL),
		hc:         http.DefaultClient,
		maxRetries: 3,
		backoff:    100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func trimTrailingSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// APIError is a non-2xx reply from the server, carrying the typed /v1 error
// code and the request ID for log correlation.
type APIError struct {
	StatusCode int    // HTTP status
	Code       string // /v1 error code, e.g. "bad_request", "task_closed"
	Message    string
	RequestID  string
	// RetryAfter is the server's Retry-After hint (429/503 shed-load and
	// degraded-mode responses), zero when absent. The retry loop honors it;
	// callers handling the error themselves should too.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("crowdplanner: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
	}
	return fmt.Sprintf("crowdplanner: %s (HTTP %d)", e.Message, e.StatusCode)
}

// IsCode reports whether err is an *APIError with the given /v1 error code.
func IsCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// retryable reports whether a status warrants another attempt. GETs retry
// on 429 and any 5xx (and on transport errors). Mutating POSTs retry only
// when the server clearly rejected the request before doing work — 429 and
// 503 — because a 500/502/504 (or a dropped connection mid-response) may
// have landed server-side: blindly re-POSTing recommend/async would publish
// a duplicate crowd task whose claimed workers are never released.
func retryable(method string, status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	}
	return method == http.MethodGet && status >= 500
}

// do performs one API call with retries: marshal body once, POST/GET with
// the context attached, decode into out on 2xx, *APIError otherwise.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return fmt.Errorf("crowdplanner: encoding request: %w", err)
		}
	}
	var retryAfter time.Duration // server's Retry-After from the last reply
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.retryDelay(attempt, retryAfter)); err != nil {
				return err
			}
		}
		retryAfter = 0
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
		if err != nil {
			return fmt.Errorf("crowdplanner: building request: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// A transport error on a POST may have landed server-side; only
			// idempotent requests are safe to resend blindly.
			if method == http.MethodGet && attempt < c.maxRetries {
				continue
			}
			return fmt.Errorf("crowdplanner: %s %s: %w", method, path, err)
		}
		done, err := c.handleResponse(method, resp, out)
		if done || attempt >= c.maxRetries {
			return err
		}
		var ae *APIError
		if errors.As(err, &ae) {
			retryAfter = ae.RetryAfter
		}
	}
}

// retryDelay computes the wait before retry attempt n (1-based). A server
// Retry-After wins outright, plus up to 10% of the base backoff as jitter
// so a fleet told "retry in 1s" fans back in over ~100ms instead of as one
// spike. Otherwise: equal jitter over the doubled base — a uniform draw
// from [d/2, d) where d = backoff<<(n-1) — which preserves the exponential
// envelope while decorrelating concurrent clients.
func (c *Client) retryDelay(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter + jitter(c.backoff/10)
	}
	d := c.backoff << (attempt - 1)
	if d <= 0 {
		return 0
	}
	return d/2 + jitter(d/2)
}

// jitter draws uniformly from [0, d).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d)))
}

// handleResponse consumes resp. done is false when the caller should retry.
func (c *Client) handleResponse(method string, resp *http.Response, out any) (done bool, err error) {
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			return true, nil
		}
		if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
			return true, fmt.Errorf("crowdplanner: decoding response: %w", derr)
		}
		return true, nil
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	ae := &APIError{
		StatusCode: resp.StatusCode,
		RequestID:  resp.Header.Get("X-Request-ID"),
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
	var envelope struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if jerr := json.Unmarshal(raw, &envelope); jerr == nil && envelope.Error.Code != "" {
		ae.Code = envelope.Error.Code
		ae.Message = envelope.Error.Message
		if envelope.Error.RequestID != "" {
			ae.RequestID = envelope.Error.RequestID
		}
	} else {
		ae.Message = string(bytes.TrimSpace(raw))
	}
	return !retryable(method, resp.StatusCode), ae
}

// parseRetryAfter decodes a Retry-After header: delta-seconds or an
// HTTP-date (RFC 9110 §10.2.3). Unparseable or past values yield zero.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ---- Recommendation ----

// RecommendRequest is one route request.
type RecommendRequest struct {
	From        int64   `json:"from"`
	To          int64   `json:"to"`
	DepartMin   float64 `json:"depart_min"` // minutes since Monday 00:00
	DeadlineMin float64 `json:"deadline_min,omitempty"`
}

// Recommendation is a resolved route with its provenance.
type Recommendation struct {
	Route      []int64     `json:"route"`
	Stage      string      `json:"stage"` // reuse|agreement|confidence|crowd|fallback
	Confidence float64     `json:"confidence"`
	LengthM    float64     `json:"length_m"`
	TravelMin  float64     `json:"travel_min"`
	Candidates []Candidate `json:"candidates,omitempty"`
	Task       *TaskInfo   `json:"task,omitempty"`
}

// Candidate summarizes one provider's route proposal.
type Candidate struct {
	Source  string  `json:"source"`
	Nodes   int     `json:"nodes"`
	LengthM float64 `json:"length_m"`
	Prior   float64 `json:"prior"`
}

// TaskInfo summarizes the crowd task a synchronous recommendation ran.
type TaskInfo struct {
	ID                int64   `json:"id"`
	QuestionLandmarks []int32 `json:"question_landmarks"`
	ExpectedQuestions float64 `json:"expected_questions"`
	QuestionsUsed     int     `json:"questions_used"`
	AnswersUsed       int     `json:"answers_used"`
	WorkersAssigned   int     `json:"workers_assigned"`
}

// Recommend runs one request through the full pipeline, simulating the
// crowd synchronously if it is needed.
func (c *Client) Recommend(ctx context.Context, req RecommendRequest) (*Recommendation, error) {
	var out Recommendation
	if err := c.do(ctx, http.MethodPost, "/v1/recommend", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BatchResult is one item's outcome in a batch call.
type BatchResult struct {
	Index  int             `json:"index"`
	Status int             `json:"status"`
	Result *Recommendation `json:"result,omitempty"`
	Error  *BatchError     `json:"error,omitempty"`
}

// BatchError is a per-item failure inside an otherwise-successful batch.
type BatchError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// BatchResponse is the full batch reply.
type BatchResponse struct {
	Results   []BatchResult `json:"results"`
	Succeeded int           `json:"succeeded"`
	Failed    int           `json:"failed"`
}

// RecommendBatch fans up to the server's configured limit of requests
// through the concurrent core in one HTTP round trip. Per-item failures are
// reported in Results without failing the call.
func (c *Client) RecommendBatch(ctx context.Context, items []RecommendRequest) (*BatchResponse, error) {
	var out BatchResponse
	in := struct {
		Items []RecommendRequest `json:"items"`
	}{items}
	if err := c.do(ctx, http.MethodPost, "/v1/recommend/batch", in, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- Trajectory ingestion ----

// TrajTrip is one observed trip to ingest: the map-matched route node
// sequence, its departure time, and the driver who drove it.
type TrajTrip struct {
	Driver    int32   `json:"driver"`
	DepartMin float64 `json:"depart_min"` // minutes since Monday 00:00
	Nodes     []int64 `json:"nodes"`
}

// IngestRejection reports why one trip of a batch was refused.
type IngestRejection struct {
	Index  int    `json:"index"`
	Reason string `json:"reason"`
}

// IngestReport summarizes one ingestion batch.
type IngestReport struct {
	Accepted   int               `json:"accepted"`
	Rejected   []IngestRejection `json:"rejected"`
	TotalTrips int               `json:"total_trips"`
}

// IngestTrips streams observed trips into the server's live mining corpus
// via POST /v1/trajectories. Accepted trips are visible to the popular-route
// miners immediately and survive a restart on a durable backend. Per-trip
// validation failures are reported in the result without failing the call.
// Like the other mutating POSTs it retries only on 429/503 — re-sending a
// batch the server may already have applied would ingest the trips twice.
func (c *Client) IngestTrips(ctx context.Context, trips []TrajTrip) (*IngestReport, error) {
	in := struct {
		Trips []TrajTrip `json:"trips"`
	}{trips}
	var out IngestReport
	if err := c.do(ctx, http.MethodPost, "/v1/trajectories", in, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- Asynchronous task lifecycle ----

// Ticket is a published crowd task awaiting worker answers.
type Ticket struct {
	TaskID          int64   `json:"task_id"`
	State           string  `json:"state"` // open|resolved|expired
	CurrentQuestion *int32  `json:"current_question,omitempty"`
	AssignedWorkers []int32 `json:"assigned_workers"`
}

// AsyncResult is the reply to an async recommend: exactly one of Resolved
// (the TR module answered immediately) and Ticket (a crowd task was
// published) is set.
type AsyncResult struct {
	Resolved *Recommendation `json:"resolved,omitempty"`
	Ticket   *Ticket         `json:"ticket,omitempty"`
}

// RecommendAsync resolves via the traditional module or publishes a crowd
// task whose ticket must be driven with SubmitAnswer (or WaitForResult).
func (c *Client) RecommendAsync(ctx context.Context, req RecommendRequest) (*AsyncResult, error) {
	var out AsyncResult
	if err := c.do(ctx, http.MethodPost, "/v1/recommend/async", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TaskState is a snapshot of a published task.
type TaskState struct {
	Ticket *Ticket         `json:"ticket"`
	Result *Recommendation `json:"result,omitempty"`
}

// Task fetches the state (and, once closed, the result) of a task.
func (c *Client) Task(ctx context.Context, taskID int64) (*TaskState, error) {
	var out TaskState
	if err := c.do(ctx, http.MethodGet, "/v1/tasks/"+strconv.FormatInt(taskID, 10), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AnswerResult reports a task's state after an answer or expiry; Resolved is
// set once the task closes.
type AnswerResult struct {
	State    string          `json:"state"`
	Resolved *Recommendation `json:"resolved,omitempty"`
}

// SubmitAnswer records one worker's yes/no answer to the task's current
// question. Typed failures: not_assigned (403), already_answered or
// task_closed (409).
func (c *Client) SubmitAnswer(ctx context.Context, taskID int64, workerID int32, yes bool) (*AnswerResult, error) {
	in := struct {
		Worker int32 `json:"worker"`
		Yes    bool  `json:"yes"`
	}{workerID, yes}
	var out AnswerResult
	if err := c.do(ctx, http.MethodPost, "/v1/tasks/"+strconv.FormatInt(taskID, 10)+"/answer", in, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ExpireTask force-closes an open task (deadline passed); the provider
// consensus route is returned with low confidence.
func (c *Client) ExpireTask(ctx context.Context, taskID int64) (*AnswerResult, error) {
	var out AnswerResult
	if err := c.do(ctx, http.MethodPost, "/v1/tasks/"+strconv.FormatInt(taskID, 10)+"/expire", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WorkerTask is one open question directed at a worker.
type WorkerTask struct {
	TaskID   int64 `json:"task_id"`
	Landmark int32 `json:"landmark"`
}

// WorkerTasks lists the open questions assigned to a worker — what the
// paper's mobile client polls on behalf of its user.
func (c *Client) WorkerTasks(ctx context.Context, workerID int32) ([]WorkerTask, error) {
	var out []WorkerTask
	path := "/v1/workers/" + strconv.FormatInt(int64(workerID), 10) + "/tasks"
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitForResult polls a task until it closes (resolved or expired) and
// returns the final recommendation. pollEvery <= 0 defaults to 100ms. The
// context bounds the wait; its error is returned on cancellation.
func (c *Client) WaitForResult(ctx context.Context, taskID int64, pollEvery time.Duration) (*Recommendation, error) {
	if pollEvery <= 0 {
		pollEvery = 100 * time.Millisecond
	}
	for {
		st, err := c.Task(ctx, taskID)
		if err != nil {
			return nil, err
		}
		if st.Result != nil {
			return st.Result, nil
		}
		if err := sleepCtx(ctx, pollEvery); err != nil {
			return nil, err
		}
	}
}

// ---- Inventory ----

// Health is the GET /v1/health reply.
type Health struct {
	Status     string                     `json:"status"`
	Nodes      int                        `json:"nodes"`
	Edges      int                        `json:"edges"`
	Landmarks  int                        `json:"landmarks"`
	Workers    int                        `json:"workers"`
	Truths     int                        `json:"truths"`
	Trips      int                        `json:"trips"`
	OpenTasks  int                        `json:"open_tasks"`
	UptimeSec  float64                    `json:"uptime_sec"`
	RouteCache RouteCacheStats            `json:"route_cache"`
	Endpoints  map[string]EndpointMetrics `json:"endpoints"`
}

// RouteCacheStats mirrors the server's candidate-cache counters.
type RouteCacheStats struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	Size          int     `json:"size"`
	Capacity      int     `json:"capacity"`
}

// EndpointMetrics is one endpoint's serving counters.
type EndpointMetrics struct {
	Count     uint64  `json:"count"`
	Errors4xx uint64  `json:"errors_4xx"`
	Errors5xx uint64  `json:"errors_5xx"`
	AvgMs     float64 `json:"avg_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// Health fetches liveness, inventory sizes, cache counters, and the
// per-endpoint serving metrics.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/v1/health", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Page addresses one slice of a paginated listing. The zero value means the
// server defaults (limit 50, offset 0).
type Page struct {
	Limit  int
	Offset int
}

func (p Page) query() string {
	q := url.Values{}
	if p.Limit > 0 {
		q.Set("limit", strconv.Itoa(p.Limit))
	}
	if p.Offset > 0 {
		q.Set("offset", strconv.Itoa(p.Offset))
	}
	if enc := q.Encode(); enc != "" {
		return "?" + enc
	}
	return ""
}

// Truth is one verified-truth entry.
type Truth struct {
	From       int64   `json:"from"`
	To         int64   `json:"to"`
	Slot       int     `json:"slot"`
	Confidence float64 `json:"confidence"`
	Crowd      bool    `json:"crowd"`
	Nodes      int     `json:"nodes"`
}

// TruthPage is one page of the truth database.
type TruthPage struct {
	Items  []Truth `json:"items"`
	Total  int     `json:"total"`
	Limit  int     `json:"limit"`
	Offset int     `json:"offset"`
}

// Truths pages through the verified-truth database.
func (c *Client) Truths(ctx context.Context, page Page) (*TruthPage, error) {
	var out TruthPage
	if err := c.do(ctx, http.MethodGet, "/v1/truths"+page.query(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Landmark is one landmark, ordered by significance.
type Landmark struct {
	ID           int32   `json:"id"`
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	Significance float64 `json:"significance"`
	X            float64 `json:"x"`
	Y            float64 `json:"y"`
}

// LandmarkPage is one page of the landmark listing.
type LandmarkPage struct {
	Items  []Landmark `json:"items"`
	Total  int        `json:"total"`
	Limit  int        `json:"limit"`
	Offset int        `json:"offset"`
}

// Landmarks pages through the landmarks by descending significance.
func (c *Client) Landmarks(ctx context.Context, page Page) (*LandmarkPage, error) {
	var out LandmarkPage
	if err := c.do(ctx, http.MethodGet, "/v1/landmarks"+page.query(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RankedWorker is one eligible worker for a landmark set.
type RankedWorker struct {
	ID     int32   `json:"id"`
	Score  float64 `json:"score"`
	Reward float64 `json:"reward"`
}

// TopWorkers ranks the k most eligible workers for the given landmarks.
func (c *Client) TopWorkers(ctx context.Context, landmarks []int32, k int) ([]RankedWorker, error) {
	parts := make([]string, len(landmarks))
	for i, l := range landmarks {
		parts[i] = strconv.FormatInt(int64(l), 10)
	}
	q := url.Values{}
	q.Set("landmarks", strings.Join(parts, ","))
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	var out []RankedWorker
	if err := c.do(ctx, http.MethodGet, "/v1/workers/top?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SourceStat is one provider's precision scoreboard entry.
type SourceStat struct {
	Source    string  `json:"source"`
	Wins      int     `json:"wins"`
	Total     int     `json:"total"`
	Precision float64 `json:"precision"`
}

// Sources fetches the per-provider precision scoreboard.
func (c *Client) Sources(ctx context.Context) ([]SourceStat, error) {
	var out []SourceStat
	if err := c.do(ctx, http.MethodGet, "/v1/sources", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
