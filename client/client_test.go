package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"crowdplanner/internal/core"
	"crowdplanner/internal/server"
)

var (
	worldOnce sync.Once
	world     *core.Scenario
)

func smallWorld(t *testing.T) *core.Scenario {
	t.Helper()
	worldOnce.Do(func() {
		world = core.BuildScenario(core.SmallScenarioConfig())
	})
	return world
}

// liveServer serves the shared scenario's system.
func liveServer(t *testing.T) (*httptest.Server, *core.Scenario) {
	t.Helper()
	w := smallWorld(t)
	srv := httptest.NewServer(server.New(w.System).Handler())
	t.Cleanup(srv.Close)
	return srv, w
}

// crowdServer serves a crowd-forced system so async requests publish tickets.
func crowdServer(t *testing.T) (*httptest.Server, *core.Scenario) {
	t.Helper()
	w := smallWorld(t)
	cfg := w.System.Config()
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	sys := core.New(cfg, w.Graph, w.Landmarks, w.Data, w.Pool,
		&core.PopulationOracle{Data: w.Data, Sample: 30})
	srv := httptest.NewServer(server.New(sys).Handler())
	t.Cleanup(srv.Close)
	return srv, w
}

func TestClientRecommendAndErrors(t *testing.T) {
	srv, w := liveServer(t)
	c := New(srv.URL)
	ctx := context.Background()

	trip := w.Data.Trips[0]
	rec, err := c.Recommend(ctx, RecommendRequest{
		From: int64(trip.Route.Source()), To: int64(trip.Route.Dest()), DepartMin: float64(trip.Depart),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Route) < 2 || rec.Stage == "" || rec.LengthM <= 0 {
		t.Errorf("recommendation = %+v", rec)
	}

	// Server-side validation surfaces as a typed *APIError.
	_, err = c.Recommend(ctx, RecommendRequest{From: 3, To: 3})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.StatusCode != http.StatusBadRequest || ae.Code != "bad_request" || ae.RequestID == "" {
		t.Errorf("APIError = %+v", ae)
	}
	if !IsCode(err, "bad_request") || IsCode(err, "not_found") {
		t.Error("IsCode misclassified")
	}
}

func TestClientBatch(t *testing.T) {
	srv, w := liveServer(t)
	c := New(srv.URL)

	var items []RecommendRequest
	for i := 0; i < 10; i++ {
		trip := w.Data.Trips[i%len(w.Data.Trips)]
		items = append(items, RecommendRequest{
			From: int64(trip.Route.Source()), To: int64(trip.Route.Dest()), DepartMin: float64(trip.Depart),
		})
	}
	items[5] = RecommendRequest{From: 1, To: 1} // one invalid item
	out, err := c.RecommendBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(items) || out.Succeeded != len(items)-1 || out.Failed != 1 {
		t.Fatalf("batch = succeeded %d failed %d of %d", out.Succeeded, out.Failed, len(out.Results))
	}
	if out.Results[5].Error == nil || out.Results[5].Error.Code != "bad_request" {
		t.Errorf("invalid item result = %+v", out.Results[5])
	}
}

func TestClientInventory(t *testing.T) {
	srv, w := liveServer(t)
	c := New(srv.URL)
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Nodes != w.Graph.NumNodes() || h.Workers != w.Pool.Len() {
		t.Errorf("health = %+v", h)
	}

	lms, err := c.Landmarks(ctx, Page{Limit: 4, Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(lms.Items) != 4 || lms.Total != w.Landmarks.Len() {
		t.Errorf("landmarks = %+v", lms)
	}

	top := w.Landmarks.TopBySignificance(3)
	workers, err := c.TopWorkers(ctx, []int32{int32(top[0].ID), int32(top[1].ID), int32(top[2].ID)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) == 0 || len(workers) > 4 {
		t.Errorf("top workers = %d", len(workers))
	}

	if _, err := c.Truths(ctx, Page{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sources(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClientAsyncLifecycle drives the full crowd-task protocol through the
// SDK: publish, list the workers' open questions, answer until the task
// resolves, and fetch the final result two ways (poll + WaitForResult).
func TestClientAsyncLifecycle(t *testing.T) {
	srv, w := crowdServer(t)
	c := New(srv.URL)
	ctx := context.Background()

	trip := w.Data.Trips[0]
	req := RecommendRequest{
		From: int64(trip.Route.Source()), To: int64(trip.Route.Dest()), DepartMin: float64(trip.Depart),
	}
	async, err := c.RecommendAsync(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if async.Resolved != nil {
		t.Skipf("TR resolved directly (stage %s)", async.Resolved.Stage)
	}
	ticket := async.Ticket
	if ticket.State != "open" || ticket.CurrentQuestion == nil || len(ticket.AssignedWorkers) == 0 {
		t.Fatalf("bad ticket %+v", ticket)
	}

	// The assigned workers see the open question in their queues.
	open, err := c.WorkerTasks(ctx, ticket.AssignedWorkers[0])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, wt := range open {
		if wt.TaskID == ticket.TaskID && wt.Landmark == *ticket.CurrentQuestion {
			found = true
		}
	}
	if !found {
		t.Error("assigned worker does not see the open question")
	}

	// Answer until the early-stop component closes the task.
	for rounds := 0; rounds < 200; rounds++ {
		st, err := c.Task(ctx, ticket.TaskID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Ticket.State != "open" {
			break
		}
		for _, wid := range st.Ticket.AssignedWorkers {
			if _, err := c.SubmitAnswer(ctx, ticket.TaskID, wid, true); err != nil {
				if IsCode(err, "already_answered") || IsCode(err, "task_closed") {
					break // question advanced or task closed under us
				}
				t.Fatal(err)
			}
		}
	}

	final, err := c.WaitForResult(ctx, ticket.TaskID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Stage != "crowd" || len(final.Route) < 2 {
		t.Errorf("final = %+v", final)
	}
	// The polled state agrees.
	st, err := c.Task(ctx, ticket.TaskID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ticket.State != "resolved" || st.Result == nil {
		t.Errorf("state after resolve = %+v", st)
	}
}

func TestClientExpire(t *testing.T) {
	srv, w := crowdServer(t)
	c := New(srv.URL)
	ctx := context.Background()

	trip := w.Data.Trips[2]
	async, err := c.RecommendAsync(ctx, RecommendRequest{
		From: int64(trip.Route.Source()), To: int64(trip.Route.Dest()), DepartMin: float64(trip.Depart),
	})
	if err != nil {
		t.Fatal(err)
	}
	if async.Ticket == nil {
		t.Skip("TR resolved directly")
	}
	res, err := c.ExpireTask(ctx, async.Ticket.TaskID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "expired" || res.Resolved == nil {
		t.Errorf("expire = %+v", res)
	}
	// Double-expiry is a typed conflict.
	if _, err := c.ExpireTask(ctx, async.Ticket.TaskID); !IsCode(err, "task_closed") {
		t.Errorf("double expire err = %v, want task_closed", err)
	}
	// WaitForResult returns immediately on a closed task.
	if _, err := c.WaitForResult(ctx, async.Ticket.TaskID, time.Millisecond); err != nil {
		t.Errorf("WaitForResult on expired task: %v", err)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		switch n {
		case 1:
			http.Error(w, "boom", http.StatusInternalServerError)
		case 2:
			http.Error(w, "slow down", http.StatusTooManyRequests)
		default:
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
		}
	}))
	defer fake.Close()

	c := New(fake.URL, WithRetry(3, time.Millisecond))
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("health = %+v", h)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (500, 429, then success)", attempts)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"not_found","message":"nope","request_id":"r1"}}`)
	}))
	defer fake.Close()

	c := New(fake.URL, WithRetry(5, time.Millisecond))
	_, err := c.Task(context.Background(), 42)
	if !IsCode(err, "not_found") {
		t.Fatalf("err = %v, want not_found", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (4xx is terminal)", attempts)
	}
}

func TestClientRetriesGiveUpAndReportLastError(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always down", http.StatusServiceUnavailable)
	}))
	defer fake.Close()

	c := New(fake.URL, WithRetry(2, time.Millisecond))
	_, err := c.Health(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
}

func TestClientWaitForResultHonorsContext(t *testing.T) {
	// A task that never closes: WaitForResult must stop with the context.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ticket":{"task_id":1,"state":"open","assigned_workers":[1]}}`)
	}))
	defer fake.Close()

	c := New(fake.URL, WithRetry(0, 0))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.WaitForResult(ctx, 1, 5*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("WaitForResult did not stop promptly")
	}
}

func TestClientPOSTRetryPolicy(t *testing.T) {
	// A 500 on a mutating POST is terminal (the work may have committed
	// server-side); a 503 means the server refused it, so retrying is safe.
	var mu sync.Mutex
	attempts := map[string]int{}
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts[r.URL.Path]++
		n := attempts[r.URL.Path]
		mu.Unlock()
		switch {
		case r.URL.Path == "/v1/tasks/1/answer":
			http.Error(w, "boom", http.StatusInternalServerError)
		case n == 1:
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
		default:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"state":"open"}`)
		}
	}))
	defer fake.Close()
	c := New(fake.URL, WithRetry(3, time.Millisecond))

	var ae *APIError
	if _, err := c.SubmitAnswer(context.Background(), 1, 1, true); !errors.As(err, &ae) || ae.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err = %v, want terminal 500", err)
	}
	if _, err := c.SubmitAnswer(context.Background(), 2, 1, true); err != nil {
		t.Fatalf("503-then-ok should succeed, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts["/v1/tasks/1/answer"] != 1 {
		t.Errorf("500 POST attempts = %d, want 1", attempts["/v1/tasks/1/answer"])
	}
	if attempts["/v1/tasks/2/answer"] != 2 {
		t.Errorf("503 POST attempts = %d, want 2", attempts["/v1/tasks/2/answer"])
	}
}

// TestClientIngestTrips streams trips through the SDK and verifies the
// report plus the corpus growth on /v1/health. Runs on a private world:
// ingestion mutates the corpus.
func TestClientIngestTrips(t *testing.T) {
	w := core.BuildScenario(core.SmallScenarioConfig())
	srv := httptest.NewServer(server.New(w.System).Handler())
	t.Cleanup(srv.Close)
	c := New(srv.URL)
	ctx := context.Background()

	var nodes []int64
	var depart float64
	for _, tr := range w.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		for _, n := range tr.Route.Nodes {
			nodes = append(nodes, int64(n))
		}
		depart = float64(tr.Depart)
		break
	}
	before := w.System.CorpusSize()

	rep, err := c.IngestTrips(ctx, []TrajTrip{
		{Driver: 7, DepartMin: depart + 15, Nodes: nodes},
		{Driver: 8, DepartMin: 510, Nodes: []int64{0}}, // invalid: single node
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 1 || len(rep.Rejected) != 1 || rep.Rejected[0].Index != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.TotalTrips != before+1 {
		t.Fatalf("total = %d, want %d", rep.TotalTrips, before+1)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Trips != before+1 {
		t.Fatalf("health trips = %d, want %d", h.Trips, before+1)
	}
}
