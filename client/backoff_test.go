package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in       string
		min, max time.Duration
	}{
		{"", 0, 0},
		{"2", 2 * time.Second, 2 * time.Second},
		{"0", 0, 0},
		{"-1", 0, 0},
		{"garbage", 0, 0},
		// An HTTP-date ~3s out parses to roughly that long from now.
		{time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat), time.Second, 3 * time.Second},
		// A date in the past means "now": no wait.
		{time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0, 0},
	}
	for _, c := range cases {
		got := parseRetryAfter(c.in)
		if got < c.min || got > c.max {
			t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", c.in, got, c.min, c.max)
		}
	}
}

func TestRetryDelayEqualJitter(t *testing.T) {
	c := New("http://example", WithRetry(4, 100*time.Millisecond))
	for attempt := 1; attempt <= 4; attempt++ {
		d := c.backoff << (attempt - 1)
		for i := 0; i < 50; i++ {
			got := c.retryDelay(attempt, 0)
			if got < d/2 || got >= d {
				t.Fatalf("attempt %d delay = %v, want in [%v, %v)", attempt, got, d/2, d)
			}
		}
	}
	// Disabled backoff never sleeps.
	z := New("http://example", WithRetry(1, 0))
	if got := z.retryDelay(1, 0); got != 0 {
		t.Fatalf("zero-backoff delay = %v", got)
	}
}

func TestRetryDelayHonorsServerHint(t *testing.T) {
	c := New("http://example", WithRetry(3, 100*time.Millisecond))
	for i := 0; i < 50; i++ {
		got := c.retryDelay(1, 2*time.Second)
		// The hint wins over the computed backoff, decorated with up to 10%
		// of the base backoff as fan-in jitter.
		if got < 2*time.Second || got >= 2*time.Second+10*time.Millisecond {
			t.Fatalf("hinted delay = %v, want in [2s, 2.01s)", got)
		}
	}
}

func TestAPIErrorCarriesRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":{"code":"overloaded","message":"load shed","request_id":"rid-1"}}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(0, 0))
	_, err := c.Health(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.StatusCode != http.StatusTooManyRequests || ae.Code != "overloaded" {
		t.Fatalf("APIError = %+v", ae)
	}
	if ae.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s", ae.RetryAfter)
	}
}

// TestRetryUsesServerHint: a 429 with a Retry-After of 0 seconds… cannot be
// sent (the header's floor is 1s), so drive the hint path through a
// transport-visible retry: first response 429 + Retry-After, second 200, and
// a base backoff large enough that honoring the (smaller) hint is clearly
// distinguishable from the default exponential wait.
func TestRetryUsesServerHint(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":{"code":"rate_limited","message":"slow down"}}`))
			return
		}
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	// Base backoff of 30s would make the default equal-jitter wait ≥ 15s;
	// the 1s server hint must win.
	c := New(ts.URL, WithRetry(1, 30*time.Second))
	start := time.Now()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if elapsed < time.Second || elapsed > 10*time.Second {
		t.Fatalf("retry waited %v, want ~1s (the server hint, not the 30s backoff)", elapsed)
	}
}
