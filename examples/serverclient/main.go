// Serverclient: runs the CrowdPlanner HTTP server in-process and drives it
// with the typed Go SDK (the client package) — health and inventory, a
// synchronous recommendation, a batch call, and the full asynchronous
// crowd-task lifecycle (publish, poll, answer, resolve) that real mobile
// clients speak.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"crowdplanner"
	"crowdplanner/client"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	scn := crowdplanner.BuildScenario(crowdplanner.SmallScenarioConfig())
	srv := httptest.NewServer(crowdplanner.NewHTTPHandler(scn.System))
	defer srv.Close()
	c := client.New(srv.URL)
	fmt.Printf("server listening on %s\n\n", srv.URL)

	// Liveness and inventory.
	h, err := c.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /v1/health\n  status=%s nodes=%d landmarks=%d workers=%d truths=%d\n\n",
		h.Status, h.Nodes, h.Landmarks, h.Workers, h.Truths)

	// One synchronous recommendation.
	trip := scn.Data.Trips[0]
	req := client.RecommendRequest{
		From:      int64(trip.Route.Source()),
		To:        int64(trip.Route.Dest()),
		DepartMin: float64(crowdplanner.At(1, 8, 30)),
	}
	rec, err := c.Recommend(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/recommend %d->%d\n  stage=%s confidence=%.2f length=%.1fkm travel=%.1fmin (%d nodes)\n\n",
		req.From, req.To, rec.Stage, rec.Confidence, rec.LengthM/1000, rec.TravelMin, len(rec.Route))

	// A batch: several ODs through the concurrent core in one round trip.
	var items []client.RecommendRequest
	for _, t := range scn.Data.Trips[1:6] {
		if t.Route.Empty() {
			continue
		}
		items = append(items, client.RecommendRequest{
			From: int64(t.Route.Source()), To: int64(t.Route.Dest()), DepartMin: float64(t.Depart),
		})
	}
	batch, err := c.RecommendBatch(ctx, items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/recommend/batch (%d items)\n  succeeded=%d failed=%d\n", len(items), batch.Succeeded, batch.Failed)
	for _, res := range batch.Results {
		if res.Result != nil {
			fmt.Printf("  [%d] stage=%-10s %.1fkm\n", res.Index, res.Result.Stage, res.Result.LengthM/1000)
		} else {
			fmt.Printf("  [%d] error %s: %s\n", res.Index, res.Error.Code, res.Error.Message)
		}
	}

	// Paginated listings.
	lms, err := c.Landmarks(ctx, client.Page{Limit: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /v1/landmarks?limit=3 (total %d)\n", lms.Total)
	for _, l := range lms.Items {
		fmt.Printf("  #%d %-22s %-12s significance=%.3f\n", l.ID, l.Name, l.Kind, l.Significance)
	}
	truths, err := c.Truths(ctx, client.Page{Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /v1/truths?limit=5 (total %d)\n", truths.Total)
	for _, tr := range truths.Items {
		fmt.Printf("  %d->%d slot=%d confidence=%.2f crowd=%v\n", tr.From, tr.To, tr.Slot, tr.Confidence, tr.Crowd)
	}

	// The asynchronous lifecycle needs the crowd: force it by disabling the
	// TR module's shortcuts on a second system over the same substrates.
	cfg := scn.System.Config()
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	crowdSys := crowdplanner.NewSystem(cfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
		&crowdplanner.PopulationOracle{Data: scn.Data, Sample: 30})
	asrv := httptest.NewServer(crowdplanner.NewHTTPHandler(crowdSys))
	defer asrv.Close()
	ac := client.New(asrv.URL)

	fmt.Printf("\nPOST /v1/recommend/async %d->%d\n", req.From, req.To)
	async, err := ac.RecommendAsync(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	if async.Resolved != nil {
		fmt.Printf("  resolved immediately: stage=%s\n", async.Resolved.Stage)
		return
	}
	ticket := async.Ticket
	fmt.Printf("  ticket: task=%d state=%s workers=%v question=%v\n",
		ticket.TaskID, ticket.State, ticket.AssignedWorkers, *ticket.CurrentQuestion)

	// The assigned workers' clients poll their queue and answer each open
	// question until the early-stop component closes the task.
	answers := 0
	for {
		st, err := ac.Task(ctx, ticket.TaskID)
		if err != nil {
			log.Fatal(err)
		}
		if st.Ticket.State != "open" {
			break
		}
		for _, wid := range st.Ticket.AssignedWorkers {
			open, err := ac.WorkerTasks(ctx, wid)
			if err != nil {
				log.Fatal(err)
			}
			for _, wt := range open {
				if wt.TaskID != ticket.TaskID {
					continue
				}
				if _, err := ac.SubmitAnswer(ctx, ticket.TaskID, wid, true); err != nil {
					// The question can advance or close between poll and
					// answer; those are typed, expected conflicts.
					if client.IsCode(err, "already_answered") || client.IsCode(err, "task_closed") {
						continue
					}
					log.Fatal(err)
				}
				answers++
			}
		}
	}
	result, err := ac.WaitForResult(ctx, ticket.TaskID, 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resolved after %d answers: stage=%s confidence=%.2f (%d nodes)\n",
		answers, result.Stage, result.Confidence, len(result.Route))
}
