// Serverclient: runs the CrowdPlanner HTTP server in-process and exercises
// it as a client would — health check, a recommendation request, and the
// truth listing — demonstrating the two-layer architecture of the paper.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"crowdplanner"
)

func main() {
	scn := crowdplanner.BuildScenario(crowdplanner.SmallScenarioConfig())
	srv := httptest.NewServer(crowdplanner.NewHTTPHandler(scn.System))
	defer srv.Close()
	fmt.Printf("server listening on %s\n\n", srv.URL)

	get := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		return b
	}

	fmt.Println("GET /api/health")
	fmt.Printf("  %s\n", get("/api/health"))

	trip := scn.Data.Trips[0]
	reqBody, _ := json.Marshal(map[string]any{
		"from":       trip.Route.Source(),
		"to":         trip.Route.Dest(),
		"depart_min": float64(crowdplanner.At(1, 8, 30)),
	})
	fmt.Println("\nPOST /api/recommend")
	fmt.Printf("  body: %s\n", reqBody)
	resp, err := http.Post(srv.URL+"/api/recommend", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		log.Fatal(err)
	}
	var rec struct {
		Stage      string  `json:"stage"`
		Confidence float64 `json:"confidence"`
		LengthM    float64 `json:"length_m"`
		TravelMin  float64 `json:"travel_min"`
		Route      []int32 `json:"route"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("  stage=%s confidence=%.2f length=%.1fkm travel=%.1fmin route has %d nodes\n",
		rec.Stage, rec.Confidence, rec.LengthM/1000, rec.TravelMin, len(rec.Route))

	fmt.Println("\nGET /api/landmarks?top=5")
	fmt.Printf("  %s\n", get("/api/landmarks?top=5"))

	fmt.Println("\nGET /api/truths")
	fmt.Printf("  %s\n", get("/api/truths"))
}
