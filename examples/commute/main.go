// Commute: the paper's motivating scenario. The web service's shortest and
// fastest routes disagree with what experienced drivers actually do, and the
// disagreement changes between morning and evening rush. CrowdPlanner
// resolves each case and we compare everyone against the population ground
// truth.
package main

import (
	"context"
	"fmt"
	"log"

	"crowdplanner"
	"crowdplanner/internal/core"
	"crowdplanner/internal/popular"
	"crowdplanner/internal/routing"
)

func main() {
	scn := crowdplanner.BuildScenario(crowdplanner.DefaultScenarioConfig())
	g := scn.Graph

	// A well-supported commuter OD pair from the corpus.
	trip := scn.Data.Trips[0]
	from, to := trip.Route.Source(), trip.Route.Dest()

	for _, slot := range []struct {
		name   string
		depart crowdplanner.SimTime
	}{
		{"morning rush (Mon 08:00)", crowdplanner.At(0, 8, 0)},
		{"evening rush (Mon 17:30)", crowdplanner.At(0, 17, 30)},
	} {
		fmt.Printf("=== %s ===\n", slot.name)
		truth, err := scn.Data.GroundTruth(from, to, slot.depart, 60)
		if err != nil {
			log.Fatal(err)
		}

		shortest, _, _ := routing.ShortestPath(g, from, to, routing.DistanceCost, slot.depart)
		fastest, _, _ := routing.ShortestPath(g, from, to, routing.TravelTimeCost, slot.depart)
		fmt.Printf("  %-14s %5.1f km  %5.1f min  similarity to drivers' choice %.2f\n",
			"ws-shortest", shortest.Length(g)/1000,
			routing.TravelMinutes(g, shortest, slot.depart), shortest.Similarity(truth))
		fmt.Printf("  %-14s %5.1f km  %5.1f min  similarity to drivers' choice %.2f\n",
			"ws-fastest", fastest.Length(g)/1000,
			routing.TravelMinutes(g, fastest, slot.depart), fastest.Similarity(truth))

		for _, m := range []popular.Miner{popular.NewMPR(), popular.NewLDR(), popular.NewMFP()} {
			r, _, err := m.Mine(scn.Data, from, to, slot.depart)
			if err != nil {
				fmt.Printf("  %-14s (not enough data: %v)\n", m.Name(), err)
				continue
			}
			fmt.Printf("  %-14s %5.1f km  %5.1f min  similarity to drivers' choice %.2f\n",
				m.Name(), r.Length(g)/1000,
				routing.TravelMinutes(g, r, slot.depart), r.Similarity(truth))
		}

		resp, err := scn.System.Recommend(context.Background(), core.Request{From: from, To: to, Depart: slot.depart})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %5.1f km  %5.1f min  similarity to drivers' choice %.2f  (stage: %s)\n\n",
			"CrowdPlanner", resp.Route.Length(g)/1000,
			routing.TravelMinutes(g, resp.Route, slot.depart),
			resp.Route.Similarity(truth), resp.Stage)
	}
}
