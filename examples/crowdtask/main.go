// Crowdtask: a look inside the CR module. Builds a task whose candidate
// routes disagree, prints the selected discriminative landmarks, walks the
// ID3 question tree, and shows which workers the rated-voting selection
// picks and why.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"crowdplanner"
	"crowdplanner/internal/core"
	"crowdplanner/internal/task"
	"crowdplanner/internal/worker"
)

func main() {
	scn := crowdplanner.BuildScenario(crowdplanner.SmallScenarioConfig())
	sys := scn.System

	// Find a request whose candidates genuinely disagree.
	var cands []task.Candidate
	var chosen core.Request
	for _, trip := range scn.Data.Trips {
		if trip.Route.Empty() {
			continue
		}
		req := core.Request{From: trip.Route.Source(), To: trip.Route.Dest(), Depart: trip.Depart}
		rawCands, err := sys.Candidates(context.Background(), req)
		if err != nil {
			log.Fatal(err)
		}
		cs := task.MergeIndistinguishable(rawCands)
		if len(cs) >= 3 {
			cands, chosen = cs, req
			break
		}
	}
	if cands == nil {
		log.Fatal("no disagreeing candidate set found")
	}

	fmt.Printf("request: %d → %d at %v\n", chosen.From, chosen.To, chosen.Depart)
	fmt.Printf("candidates (%d):\n", len(cands))
	for i, c := range cands {
		fmt.Printf("  [%d] %-20s %.1f km, passes %d landmarks\n",
			i, c.Source, c.Route.Length(scn.Graph)/1000, len(c.LRoute.Landmarks))
	}

	tk, err := task.Generate(1, scn.Landmarks, cands, task.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected question landmarks (objective %.3f — mean significance):\n", tk.Objective)
	for _, q := range tk.Questions {
		l := scn.Landmarks.Get(q)
		fmt.Printf("  %-16s significance %.3f\n", l.Name, l.Significance)
	}
	fmt.Printf("expected questions: %.2f of %d (worst case %d)\n",
		tk.ExpectedQuestions(), len(tk.Questions), tk.MaxQuestions())

	fmt.Println("\nID3 question tree:")
	printTree(scn, tk.Tree, 0)

	fmt.Println("\ntop-5 eligible workers (rated voting):")
	ranked := worker.TopKEligible(scn.Pool, sys.Familiarity(), tk.Questions, 5, sys.Config().Select)
	for _, r := range ranked {
		cov := worker.Coverage(sys.Familiarity(), int(r.Worker.ID), tk.Questions)
		fmt.Printf("  worker %-4d score %.2f  knows %2.0f%% of the question landmarks  (λ=%.3f/min)\n",
			r.Worker.ID, r.Score, cov*100, r.Worker.Lambda)
	}
}

func printTree(scn *crowdplanner.Scenario, n *task.TreeNode, depth int) {
	indent := strings.Repeat("  ", depth+1)
	if n.IsLeaf() {
		fmt.Printf("%s→ candidate %d\n", indent, n.Leaf())
		return
	}
	l := scn.Landmarks.Get(n.Landmark)
	fmt.Printf("%sQ: does the best route pass %s? (sig %.2f)\n", indent, l.Name, l.Significance)
	fmt.Printf("%s yes:\n", indent)
	printTree(scn, n.Yes, depth+1)
	fmt.Printf("%s no:\n", indent)
	printTree(scn, n.No, depth+1)
}
