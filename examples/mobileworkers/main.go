// Mobileworkers: the paper's deployment protocol end to end. The server
// publishes a crowd task over HTTP; simulated mobile clients — one per
// assigned worker — poll for their open question and answer it according to
// their own local knowledge; the early-stop component resolves the task as
// soon as it is confident.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"crowdplanner"
	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/core"
	"crowdplanner/internal/landmark"
)

func main() {
	scn := crowdplanner.BuildScenario(crowdplanner.SmallScenarioConfig())
	// Force the crowd path so the demo always publishes a task.
	cfg := scn.System.Config()
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	sys := core.New(cfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
		&core.PopulationOracle{Data: scn.Data, Sample: 40})
	srv := httptest.NewServer(crowdplanner.NewHTTPHandler(sys))
	defer srv.Close()

	trip := scn.Data.Trips[0]
	fmt.Printf("publishing request %d → %d ...\n", trip.Route.Source(), trip.Route.Dest())
	body, _ := json.Marshal(map[string]any{
		"from": trip.Route.Source(), "to": trip.Route.Dest(),
		"depart_min": float64(trip.Depart),
	})
	resp, err := http.Post(srv.URL+"/api/recommend/async", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var pub struct {
		Resolved *json.RawMessage `json:"resolved"`
		Ticket   *struct {
			TaskID          int64   `json:"task_id"`
			CurrentQuestion *int32  `json:"current_question"`
			AssignedWorkers []int32 `json:"assigned_workers"`
		} `json:"ticket"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if pub.Ticket == nil {
		fmt.Println("the TR module resolved the request without the crowd")
		return
	}
	fmt.Printf("task %d published to workers %v\n\n", pub.Ticket.TaskID, pub.Ticket.AssignedWorkers)

	// Each worker's "knowledge" comes from their true familiarity: they
	// answer yes when they believe the drivers' preferred route passes the
	// landmark. Here we let them consult the population truth (perfectly
	// informed workers) to keep the demo deterministic.
	oracleRoute, err := (&core.PopulationOracle{Data: scn.Data, Sample: 40}).
		BestRoute(trip.Route.Source(), trip.Route.Dest(), trip.Depart)
	if err != nil {
		log.Fatal(err)
	}
	lr := calibrate.Calibrate(scn.Graph, scn.Landmarks, oracleRoute, sys.Config().Calibrate)
	truth := lr.IDSet()

	for round := 1; ; round++ {
		// Poll the task state (as a coordinator would).
		st, err := http.Get(fmt.Sprintf("%s/api/tasks/%d", srv.URL, pub.Ticket.TaskID))
		if err != nil {
			log.Fatal(err)
		}
		var state struct {
			Ticket struct {
				State           string  `json:"state"`
				CurrentQuestion *int32  `json:"current_question"`
				AssignedWorkers []int32 `json:"assigned_workers"`
			} `json:"ticket"`
			Result *struct {
				Stage   string  `json:"stage"`
				Route   []int32 `json:"route"`
				LengthM float64 `json:"length_m"`
			} `json:"result"`
		}
		if err := json.NewDecoder(st.Body).Decode(&state); err != nil {
			log.Fatal(err)
		}
		st.Body.Close()
		if state.Ticket.State != "open" {
			fmt.Printf("\ntask %s — stage %s, route %d nodes, %.1f km\n",
				state.Ticket.State, state.Result.Stage,
				len(state.Result.Route), state.Result.LengthM/1000)
			return
		}
		q := *state.Ticket.CurrentQuestion
		l := scn.Landmarks.Get(landmark.ID(q))
		fmt.Printf("round %d — question: does the best route pass %s?\n", round, l.Name)

		for _, wid := range state.Ticket.AssignedWorkers {
			ans, _ := json.Marshal(map[string]any{"worker": wid, "yes": truth[landmark.ID(q)]})
			r, err := http.Post(
				fmt.Sprintf("%s/api/tasks/%d/answer", srv.URL, pub.Ticket.TaskID),
				"application/json", bytes.NewReader(ans))
			if err != nil {
				log.Fatal(err)
			}
			var reply struct {
				State    string           `json:"state"`
				Resolved *json.RawMessage `json:"resolved"`
			}
			if r.StatusCode == http.StatusOK {
				_ = json.NewDecoder(r.Body).Decode(&reply)
			}
			r.Body.Close()
			if r.StatusCode == http.StatusConflict {
				continue // question advanced while we were answering
			}
			fmt.Printf("  worker %d answered %v\n", wid, truth[landmark.ID(q)])
			if reply.Resolved != nil {
				fmt.Println("  → early stop: question chain resolved the task")
				break
			}
			// If the question advanced, move to the next round.
			break
		}
	}
}
