// Persistence: verified crowd knowledge — and ingested trajectories —
// survive a restart.
//
// The program runs the same deterministic world twice against one data
// directory. The first "process" resolves a request the hard way — candidate
// generation, evaluation, possibly the crowd — and streams a freshly
// observed trip into the live mining corpus; both commits land in the
// write-ahead log. The second "process" (a fresh system, as after a crash or
// deploy) replays the log on boot, answers the same request via StageReuse
// without recomputing anything, and the miners see the ingested trip again.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"crowdplanner"
)

func main() {
	dir, err := os.MkdirTemp("", "crowdplanner-persistence-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("data directory: %s\n\n", dir)

	// ---- first life: earn the knowledge ----
	sys1, scn := boot(dir)
	trip := scn.Data.Trips[0]
	req := crowdplanner.Request{
		From: trip.Route.Source(), To: trip.Route.Dest(), Depart: crowdplanner.At(1, 8, 30),
	}
	resp, err := sys1.System.Recommend(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first life:  %d→%d resolved by %-9s (confidence %.2f, %d truths stored)\n",
		req.From, req.To, resp.Stage, resp.Confidence, sys1.System.TruthDB().Len())

	// Stream one freshly observed trip into the live mining corpus: it is
	// visible to the popular-route miners immediately, and its WAL record
	// makes it durable.
	observed := crowdplanner.Trajectory{Driver: trip.Driver, Depart: req.Depart, Route: trip.Route}
	rep := sys1.System.IngestTrips([]crowdplanner.Trajectory{observed})
	fmt.Printf("first life:  ingested %d trip(s); corpus now %d trips\n",
		rep.Accepted, rep.TotalTrips)

	// Die without a snapshot — the WAL alone carries the state.
	if err := sys1.Store.Close(); err != nil {
		log.Fatal(err)
	}

	// ---- second life: reuse it ----
	sys2, scn2 := boot(dir)
	defer sys2.Store.Close()
	stats, _ := sys2.System.StoreStats()
	fmt.Printf("second life: restored %d truths and %d ingested trip(s) from the WAL\n",
		stats.LoadedTruths, stats.LoadedTrips)
	if len(scn2.Data.IngestedTrips()) != rep.Accepted {
		log.Fatal("ingested trips did not survive the restart")
	}

	again, err := sys2.System.Recommend(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second life: %d→%d resolved by %-9s (confidence %.2f)\n",
		req.From, req.To, again.Stage, again.Confidence)
	if again.Stage != crowdplanner.StageReuse {
		log.Fatalf("expected reuse after restart, got %s", again.Stage)
	}
	if !again.Route.Equal(resp.Route) {
		log.Fatal("restored route differs from the verified one")
	}
	fmt.Println("\nthe crowd's verdict outlived the process ✓")

	// Checkpoint: fold the WAL into a compact snapshot for the next boot.
	if st, err := sys2.System.Snapshot(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("snapshot written (%d total); WAL compacted to %d records\n",
			st.Snapshots, st.WALRecords)
	}
}

// booted bundles one "process": the scenario's system plus its store handle.
type booted struct {
	System *crowdplanner.System
	Store  *crowdplanner.DiskStore
}

func boot(dir string) (booted, *crowdplanner.Scenario) {
	ds, err := crowdplanner.OpenDiskStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := crowdplanner.SmallScenarioConfig()
	cfg.System.Store = ds
	scn := crowdplanner.BuildScenario(cfg)
	if _, err := scn.System.LoadFromStore(context.Background()); err != nil {
		log.Fatal(err)
	}
	return booted{System: scn.System, Store: ds}, scn
}
