// Quickstart: build a synthetic city, ask CrowdPlanner for a route, and
// print how the request was resolved.
package main

import (
	"context"
	"fmt"
	"log"

	"crowdplanner"
)

func main() {
	// A small deterministic world: 100-intersection city, 80 drivers,
	// simulated check-ins and a 120-worker crowd.
	scn := crowdplanner.BuildScenario(crowdplanner.SmallScenarioConfig())
	sys := scn.System
	fmt.Printf("city: %d intersections, %d road segments\n",
		scn.Graph.NumNodes(), scn.Graph.NumEdges())
	fmt.Printf("corpus: %d historical trips, %d landmarks, %d workers\n\n",
		len(scn.Data.Trips), scn.Landmarks.Len(), scn.Pool.Len())

	// Ask for a route between a well-travelled OD pair on Tuesday 08:30.
	trip := scn.Data.Trips[0]
	req := crowdplanner.Request{
		From:   trip.Route.Source(),
		To:     trip.Route.Dest(),
		Depart: crowdplanner.At(1, 8, 30),
	}
	resp, err := sys.Recommend(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("request: node %d → node %d departing Tue 08:30\n", req.From, req.To)
	fmt.Printf("resolved by: %s (confidence %.2f)\n", resp.Stage, resp.Confidence)
	fmt.Printf("route: %d intersections, %.1f km\n",
		len(resp.Route.Nodes), resp.Route.Length(scn.Graph)/1000)
	if len(resp.Candidates) > 0 {
		fmt.Println("\ncandidates considered:")
		for _, c := range resp.Candidates {
			fmt.Printf("  %-22s %5.1f km\n", c.Source, c.Route.Length(scn.Graph)/1000)
		}
	}
	if resp.Task != nil {
		fmt.Printf("\ncrowd task: %d question landmarks, expected %.1f questions\n",
			len(resp.Task.Questions), resp.Task.ExpectedQuestions())
	}

	// Ask again: the verified answer is reused without any computation.
	resp2, err := sys.Recommend(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame request again → resolved by: %s (the truth database remembers)\n", resp2.Stage)
}
