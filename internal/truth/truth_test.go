package truth

import (
	"math"
	"sync"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// corridor builds two parallel 3-hop corridors between shared endpoints.
func corridor() *roadnet.Graph {
	g := roadnet.NewGraph(8, 20)
	g.AddNode(geo.Point{X: 0, Y: 0})     // 0 source
	g.AddNode(geo.Point{X: 100, Y: 50})  // 1 top
	g.AddNode(geo.Point{X: 200, Y: 50})  // 2 top
	g.AddNode(geo.Point{X: 300, Y: 0})   // 3 dest
	g.AddNode(geo.Point{X: 100, Y: -50}) // 4 bottom
	g.AddNode(geo.Point{X: 200, Y: -50}) // 5 bottom
	g.AddNode(geo.Point{X: 10, Y: 10})   // 6 near source
	g.AddNode(geo.Point{X: 290, Y: 10})  // 7 near dest
	g.AddRoad(0, 1, roadnet.Local, 0, 0)
	g.AddRoad(1, 2, roadnet.Local, 0, 0)
	g.AddRoad(2, 3, roadnet.Local, 0, 0)
	g.AddRoad(0, 4, roadnet.Local, 0, 0)
	g.AddRoad(4, 5, roadnet.Local, 0, 0)
	g.AddRoad(5, 3, roadnet.Local, 0, 0)
	g.AddRoad(6, 0, roadnet.Local, 0, 0)
	g.AddRoad(7, 3, roadnet.Local, 0, 0)
	return g
}

func top() roadnet.Route    { return roadnet.NewRoute(0, 1, 2, 3) }
func bottom() roadnet.Route { return roadnet.NewRoute(0, 4, 5, 3) }

func TestStoreLookup(t *testing.T) {
	db := NewDB(24)
	tm := routing.At(0, 9, 30)
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 0.9})
	e, ok := db.Lookup(0, 3, tm)
	if !ok || !e.Route.Equal(top()) {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	// Same OD, different hour slot: miss.
	if _, ok := db.Lookup(0, 3, routing.At(0, 15, 0)); ok {
		t.Error("different slot should miss")
	}
	// Different OD: miss.
	if _, ok := db.Lookup(0, 2, tm); ok {
		t.Error("different OD should miss")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestLookupReturnsLatest(t *testing.T) {
	db := NewDB(24)
	tm := routing.At(0, 9, 0)
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 0.5})
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: bottom(), Confidence: 0.9})
	e, ok := db.Lookup(0, 3, tm)
	if !ok || !e.Route.Equal(bottom()) {
		t.Error("Lookup should return the most recent truth")
	}
}

func TestStoreNormalizesSlot(t *testing.T) {
	db := NewDB(24)
	db.Store(Entry{From: 0, To: 3, Slot: 25, Route: top(), Confidence: 1})
	if _, ok := db.Lookup(0, 3, routing.At(0, 1, 30)); !ok {
		t.Error("slot 25 should normalize to slot 1")
	}
	db.Store(Entry{From: 1, To: 3, Slot: -1, Route: top(), Confidence: 1})
	if _, ok := db.Lookup(1, 3, routing.At(0, 23, 30)); !ok {
		t.Error("slot -1 should normalize to slot 23")
	}
}

func TestNearSpatialAndSlotFilters(t *testing.T) {
	g := corridor()
	db := NewDB(24)
	tm := routing.At(0, 9, 0)
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 1})

	// Query from nearby endpoints (nodes 6,7 are ~15 m away).
	got := db.Near(g, 6, 7, tm, 100, 0)
	if len(got) != 1 {
		t.Fatalf("Near = %d entries, want 1", len(got))
	}
	// Radius too small: no match.
	if got := db.Near(g, 6, 7, tm, 5, 0); len(got) != 0 {
		t.Errorf("tight radius should miss, got %d", len(got))
	}
	// Slot out of tolerance.
	if got := db.Near(g, 6, 7, routing.At(0, 14, 0), 100, 1); len(got) != 0 {
		t.Errorf("slot 14 vs 9 with tol 1 should miss, got %d", len(got))
	}
	// Wider tolerance hits.
	if got := db.Near(g, 6, 7, routing.At(0, 11, 0), 100, 2); len(got) != 1 {
		t.Errorf("slot 11 vs 9 with tol 2 should hit, got %d", len(got))
	}
}

func TestNearOrdering(t *testing.T) {
	g := corridor()
	db := NewDB(24)
	tm := routing.At(0, 9, 0)
	// Exact endpoints and offset endpoints.
	db.Store(Entry{From: 6, To: 7, Slot: tm.Slot(24), Route: roadnet.NewRoute(6, 0, 1, 2, 3, 7), Confidence: 1})
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 1})
	got := db.Near(g, 0, 3, tm, 200, 0)
	if len(got) != 2 {
		t.Fatalf("Near = %d", len(got))
	}
	if got[0].From != 0 {
		t.Error("exact-endpoint truth should sort first")
	}
}

func TestConfidenceFavorsSimilarRoute(t *testing.T) {
	g := corridor()
	db := NewDB(24)
	tm := routing.At(0, 9, 0)
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 1})

	cTop := db.Confidence(g, top(), tm, 100, 1)
	cBottom := db.Confidence(g, bottom(), tm, 100, 1)
	if cTop != 1 {
		t.Errorf("confidence of exact truth route = %v, want 1", cTop)
	}
	if cBottom != 0 {
		t.Errorf("confidence of disjoint route = %v, want 0", cBottom)
	}
}

func TestConfidenceNoEvidence(t *testing.T) {
	g := corridor()
	db := NewDB(24)
	if got := db.Confidence(g, top(), 0, 100, 1); got != 0 {
		t.Errorf("empty DB confidence = %v", got)
	}
	if got := db.Confidence(g, roadnet.Route{}, 0, 100, 1); got != 0 {
		t.Errorf("empty route confidence = %v", got)
	}
}

func TestConfidenceWeighsByDistanceAndTruthConfidence(t *testing.T) {
	g := corridor()
	tm := routing.At(0, 9, 0)

	// Two truths: a near one (exact endpoints) supporting top and a far one
	// supporting bottom. The near one should dominate.
	db := NewDB(24)
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 1})
	db.Store(Entry{From: 6, To: 7, Slot: tm.Slot(24), Route: roadnet.NewRoute(6, 0, 4, 5, 3, 7), Confidence: 1})
	cTop := db.Confidence(g, top(), tm, 200, 1)
	if cTop <= 0.5 {
		t.Errorf("near truth should dominate: confidence = %v", cTop)
	}

	// Confidence weighting: a low-confidence contrary truth barely moves
	// the score relative to a high-confidence supporting truth. The
	// contrary truth sits in the neighboring slot (same key would replace)
	// and slotTol = 1 brings both into scope.
	db2 := NewDB(24)
	db2.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 1})
	db2.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24) + 1, Route: bottom(), Confidence: 0.05})
	got := db2.Confidence(g, top(), tm, 100, 1)
	if got < 0.9 {
		t.Errorf("low-confidence contrary truth should barely matter: %v", got)
	}
}

func TestStoreReplacesSameKey(t *testing.T) {
	tm := routing.At(0, 9, 0)
	db := NewDB(24)
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 0.6})
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: bottom(), Confidence: 0.9})
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (same-key store must replace)", db.Len())
	}
	e, ok := db.Lookup(0, 3, tm)
	if !ok || !e.Route.Equal(bottom()) || e.Confidence != 0.9 {
		t.Errorf("Lookup = %+v, %v; want the replacing entry", e, ok)
	}
	// A different slot is a different key.
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24) + 1, Route: top(), Confidence: 0.7})
	if db.Len() != 2 {
		t.Errorf("Len = %d, want 2", db.Len())
	}
}

func TestSlotDist(t *testing.T) {
	cases := []struct{ a, b, slots, want int }{
		{0, 23, 24, 1},
		{0, 12, 24, 12},
		{5, 5, 24, 0},
		{2, 20, 24, 6},
	}
	for _, c := range cases {
		if got := slotDist(c.a, c.b, c.slots); got != c.want {
			t.Errorf("slotDist(%d,%d,%d) = %d, want %d", c.a, c.b, c.slots, got, c.want)
		}
	}
}

func TestEntriesCopy(t *testing.T) {
	db := NewDB(24)
	db.Store(Entry{From: 0, To: 3, Route: top(), Confidence: 1})
	es := db.Entries()
	if len(es) != 1 {
		t.Fatalf("Entries = %d", len(es))
	}
	es[0].From = 99
	if db.Entries()[0].From == 99 {
		t.Error("Entries must return a copy")
	}
}

func TestNewDBDefaultSlots(t *testing.T) {
	db := NewDB(0)
	if db.Slots() != 24 {
		t.Errorf("default slots = %d", db.Slots())
	}
}

func TestConcurrentAccess(t *testing.T) {
	g := corridor()
	db := NewDB(24)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				db.Store(Entry{From: 0, To: 3, Slot: j % 24, Route: top(), Confidence: 0.8})
				db.Lookup(0, 3, routing.At(0, j%24, 0))
				db.Confidence(g, top(), routing.At(0, j%24, 0), 100, 1)
			}
		}(i)
	}
	wg.Wait()
	// 8 goroutines × 50 stores collapse onto 24 distinct (from,to,slot)
	// keys: same-key stores replace.
	if db.Len() != 24 {
		t.Errorf("Len = %d, want 24", db.Len())
	}
}

func TestConfidenceRange(t *testing.T) {
	g := corridor()
	db := NewDB(24)
	tm := routing.At(0, 9, 0)
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 0.7})
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: bottom(), Confidence: 0.7})
	for _, r := range []roadnet.Route{top(), bottom()} {
		c := db.Confidence(g, r, tm, 100, 1)
		if c < 0 || c > 1 || math.IsNaN(c) {
			t.Errorf("confidence out of range: %v", c)
		}
	}
}

// TestConfidenceBatchMatchesSingle pins the batched scorer's contract:
// ConfidenceBatch returns bit-identical scores to calling Confidence per
// candidate — same Near ordering, same accumulation sequence — including for
// empty candidates, repeated routes, and candidates whose OD pairs differ
// (each distinct pair gets its own Near scan, cached within the call).
func TestConfidenceBatchMatchesSingle(t *testing.T) {
	g := corridor()
	db := NewDB(24)
	tm := routing.At(0, 9, 0)
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: top(), Confidence: 0.9})
	db.Store(Entry{From: 0, To: 3, Slot: tm.Slot(24), Route: bottom(), Confidence: 0.6})
	db.Store(Entry{From: 6, To: 7, Slot: tm.Slot(24), Route: roadnet.NewRoute(6, 0, 1, 2, 3, 7), Confidence: 1})

	cands := []roadnet.Route{
		top(),
		bottom(),
		{},                                 // empty: no evidence, scores 0
		roadnet.NewRoute(6, 0, 4, 5, 3, 7), // different OD pair
		top(),                              // repeat: served from the per-call Near cache
	}
	got := db.ConfidenceBatch(g, cands, tm, 200, 1)
	if len(got) != len(cands) {
		t.Fatalf("batch returned %d scores for %d candidates", len(got), len(cands))
	}
	for i, c := range cands {
		want := db.Confidence(g, c, tm, 200, 1)
		if got[i] != want {
			t.Errorf("candidate %d: batch = %v, single = %v", i, got[i], want)
		}
	}
	if got[2] != 0 {
		t.Errorf("empty candidate scored %v, want 0", got[2])
	}
	if got[0] != got[4] {
		t.Errorf("repeated candidate diverged: %v vs %v", got[0], got[4])
	}
	if got[0] == 0 {
		t.Error("exact truth route scored 0; the fixture should provide evidence")
	}
}
