// Package truth implements CrowdPlanner's verified-truth database: routes
// already confirmed to be the best between two places at a departure time.
// The control logic consults it twice per request: first to *reuse* a truth
// outright (an exact-enough hit returns immediately, no candidates needed),
// then to score fresh candidate routes by similarity to nearby truths (the
// route evaluation component's confidence score).
package truth

import (
	"math"
	"sort"
	"sync"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// Entry is one verified truth: the best route between From and To when
// departing within time slot Slot, plus bookkeeping about how it was
// verified.
type Entry struct {
	From, To   roadnet.NodeID
	Slot       int // departure-time slot, see routing.SimTime.Slot
	Route      roadnet.Route
	Confidence float64 // how sure the system was when storing (0..1]
	Crowd      bool    // true if verified by crowd workers, false if by agreement
	StoredAt   routing.SimTime
}

// DB is the truth store. It is safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	slots   int
	entries []Entry
	// byOD accelerates exact-node lookups; spatial matching scans (the
	// store is small relative to the request stream).
	byOD map[odSlot][]int
}

type odSlot struct {
	from, to roadnet.NodeID
	slot     int
}

// NewDB creates a truth database quantizing departure times into the given
// number of daily slots (the paper's "time tag"). 24 gives hourly tags.
func NewDB(slots int) *DB {
	if slots <= 0 {
		slots = 24
	}
	return &DB{slots: slots, byOD: make(map[odSlot][]int)}
}

// Slots returns the configured slot count.
func (db *DB) Slots() int { return db.slots }

// Len returns the number of stored truths.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Store records a verified truth. Storing a second truth for the same
// (from, to, slot) key replaces the first: the latest verification
// supersedes earlier ones (Lookup already returned only the newest), and
// keeping duplicates would grow the store — and every Near scan — linearly
// with the request stream instead of with distinct OD+slot keys.
func (db *DB) Store(e Entry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e.Slot = ((e.Slot % db.slots) + db.slots) % db.slots
	k := odSlot{e.From, e.To, e.Slot}
	if idxs := db.byOD[k]; len(idxs) > 0 {
		db.entries[idxs[len(idxs)-1]] = e
		return
	}
	db.entries = append(db.entries, e)
	db.byOD[k] = append(db.byOD[k], len(db.entries)-1)
}

// Lookup returns the most recently stored truth for the exact OD pair and
// the slot of t, if any. This implements the reuse-truth component's hit
// path.
func (db *DB) Lookup(from, to roadnet.NodeID, t routing.SimTime) (Entry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	k := odSlot{from, to, t.Slot(db.slots)}
	idxs := db.byOD[k]
	if len(idxs) == 0 {
		return Entry{}, false
	}
	return db.entries[idxs[len(idxs)-1]], true
}

// Near returns truths whose endpoints are within radius meters of the
// requested endpoints and whose slot is within slotTol slots (circularly) of
// t's slot, ordered by decreasing endpoint proximity.
func (db *DB) Near(g *roadnet.Graph, from, to roadnet.NodeID, t routing.SimTime, radius float64, slotTol int) []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	slot := t.Slot(db.slots)
	fp := g.Node(from).Pt
	tp := g.Node(to).Pt
	type scored struct {
		e Entry
		d float64
	}
	var out []scored
	for _, e := range db.entries {
		if slotDist(e.Slot, slot, db.slots) > slotTol {
			continue
		}
		df := geo.Dist(g.Node(e.From).Pt, fp)
		dt := geo.Dist(g.Node(e.To).Pt, tp)
		if df > radius || dt > radius {
			continue
		}
		out = append(out, scored{e: e, d: df + dt})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].d < out[j].d })
	res := make([]Entry, len(out))
	for i, s := range out {
		res[i] = s.e
	}
	return res
}

// slotDist is the circular distance between two slots.
func slotDist(a, b, slots int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > slots/2 {
		d = slots - d
	}
	return d
}

// Confidence scores a candidate route against the verified truths near its
// OD pair, implementing the route evaluation component: each nearby truth
// votes with weight decaying in endpoint distance, and its vote is the
// route-similarity between the candidate and the truth's route. The result
// is in [0,1]; 0 means no nearby truths (no evidence), not "bad".
func (db *DB) Confidence(g *roadnet.Graph, candidate roadnet.Route, t routing.SimTime, radius float64, slotTol int) float64 {
	if candidate.Empty() {
		return 0
	}
	near := db.Near(g, candidate.Source(), candidate.Dest(), t, radius, slotTol)
	if len(near) == 0 {
		return 0
	}
	fp := g.Node(candidate.Source()).Pt
	tp := g.Node(candidate.Dest()).Pt
	var num, den float64
	for _, e := range near {
		df := geo.Dist(g.Node(e.From).Pt, fp)
		dt := geo.Dist(g.Node(e.To).Pt, tp)
		// Weight: exponential decay with combined endpoint distance, scaled
		// by the truth's own confidence.
		w := math.Exp(-(df+dt)/(radius+1)) * e.Confidence
		num += w * candidate.Similarity(e.Route)
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Entries returns a copy of all stored truths, oldest first.
func (db *DB) Entries() []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Entry, len(db.entries))
	copy(out, db.entries)
	return out
}
