// Package truth implements CrowdPlanner's verified-truth database: routes
// already confirmed to be the best between two places at a departure time.
// The control logic consults it twice per request: first to *reuse* a truth
// outright (an exact-enough hit returns immediately, no candidates needed),
// then to score fresh candidate routes by similarity to nearby truths (the
// route evaluation component's confidence score).
package truth

import (
	"math"
	"sort"
	"sync"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// Entry is one verified truth: the best route between From and To when
// departing within time slot Slot, plus bookkeeping about how it was
// verified.
type Entry struct {
	From, To   roadnet.NodeID
	Slot       int // departure-time slot, see routing.SimTime.Slot
	Route      roadnet.Route
	Confidence float64 // how sure the system was when storing (0..1]
	Crowd      bool    // true if verified by crowd workers, false if by agreement
	StoredAt   routing.SimTime
}

// DB is the truth store. It is safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	slots   int
	entries []Entry
	// byOD accelerates exact-node lookups.
	byOD map[odSlot][]int
	// Spatial index for Near/Confidence: entry indices bucketed by the grid
	// cell of the truth's *from* endpoint (see EnableSpatialIndex). Both
	// endpoints must fall within the query radius, so indexing one endpoint
	// already bounds the scan to nearby buckets; the to-endpoint filter runs
	// on the survivors. Nil until bound to a graph — queries then fall back
	// to the full linear scan.
	locate  func(roadnet.NodeID) geo.Point
	cell    float64
	buckets map[cellKey][]int
}

type odSlot struct {
	from, to roadnet.NodeID
	slot     int
}

// cellKey addresses one grid cell by integer coordinates — so the index
// needs no bounding box up front (truth endpoints follow the road network,
// which the DB does not know at construction time) — plus the time slot:
// Near always filters by slot tolerance, so folding the slot into the bucket
// key keeps slot-mismatched truths out of the candidate set entirely.
type cellKey struct{ cx, cy, slot int32 }

// NewDB creates a truth database quantizing departure times into the given
// number of daily slots (the paper's "time tag"). 24 gives hourly tags.
func NewDB(slots int) *DB {
	if slots <= 0 {
		slots = 24
	}
	return &DB{slots: slots, byOD: make(map[odSlot][]int)}
}

// EnableSpatialIndex binds the DB to the graph's node positions and buckets
// truths by the grid cell of their from-endpoint, turning Near (and with it
// Confidence) from a full-store scan into a lookup that touches only the
// buckets overlapping the query radius. cell is the bucket edge length in
// meters; pass the radius the system queries with (Config.TruthRadius) so a
// query touches ~9 buckets. Non-positive cell defaults to 500m. Existing
// entries are re-indexed, so the call may follow a bulk restore.
func (db *DB) EnableSpatialIndex(g *roadnet.Graph, cell float64) {
	if cell <= 0 {
		cell = 500
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.locate = func(id roadnet.NodeID) geo.Point { return g.Node(id).Pt }
	db.cell = cell
	db.buckets = make(map[cellKey][]int)
	for i, e := range db.entries {
		k := db.cellOf(db.locate(e.From), e.Slot)
		db.buckets[k] = append(db.buckets[k], i)
	}
}

// cellOf maps a point and slot to the bucket key (floor division,
// negative-safe).
func (db *DB) cellOf(p geo.Point, slot int) cellKey {
	return cellKey{
		cx:   int32(math.Floor(p.X / db.cell)),
		cy:   int32(math.Floor(p.Y / db.cell)),
		slot: int32(slot),
	}
}

// Slots returns the configured slot count.
func (db *DB) Slots() int { return db.slots }

// Len returns the number of stored truths.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Store records a verified truth. Storing a second truth for the same
// (from, to, slot) key replaces the first: the latest verification
// supersedes earlier ones (Lookup already returned only the newest), and
// keeping duplicates would grow the store — and every Near scan — linearly
// with the request stream instead of with distinct OD+slot keys.
func (db *DB) Store(e Entry) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e.Slot = ((e.Slot % db.slots) + db.slots) % db.slots
	k := odSlot{e.From, e.To, e.Slot}
	if idxs := db.byOD[k]; len(idxs) > 0 {
		// Replacement keeps the entry index and the from-endpoint, so the
		// spatial bucket needs no update.
		db.entries[idxs[len(idxs)-1]] = e
		return
	}
	db.entries = append(db.entries, e)
	db.byOD[k] = append(db.byOD[k], len(db.entries)-1)
	if db.buckets != nil {
		ck := db.cellOf(db.locate(e.From), e.Slot)
		db.buckets[ck] = append(db.buckets[ck], len(db.entries)-1)
	}
}

// Lookup returns the most recently stored truth for the exact OD pair and
// the slot of t, if any. This implements the reuse-truth component's hit
// path.
func (db *DB) Lookup(from, to roadnet.NodeID, t routing.SimTime) (Entry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	k := odSlot{from, to, t.Slot(db.slots)}
	idxs := db.byOD[k]
	if len(idxs) == 0 {
		return Entry{}, false
	}
	return db.entries[idxs[len(idxs)-1]], true
}

// Near returns truths whose endpoints are within radius meters of the
// requested endpoints and whose slot is within slotTol slots (circularly) of
// t's slot, ordered by decreasing endpoint proximity. With the spatial index
// bound (EnableSpatialIndex) only the buckets overlapping the query radius
// are scanned; otherwise the whole store is.
func (db *DB) Near(g *roadnet.Graph, from, to roadnet.NodeID, t routing.SimTime, radius float64, slotTol int) []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	slot := t.Slot(db.slots)
	fp := g.Node(from).Pt
	tp := g.Node(to).Pt
	type scored struct {
		idx int
		d   float64
	}
	var out []scored
	score := func(i int) {
		e := &db.entries[i]
		if slotDist(e.Slot, slot, db.slots) > slotTol {
			return
		}
		df := geo.Dist(g.Node(e.From).Pt, fp)
		dt := geo.Dist(g.Node(e.To).Pt, tp)
		if df > radius || dt > radius {
			return
		}
		out = append(out, scored{idx: i, d: df + dt})
	}
	if db.buckets != nil && radius >= 0 {
		// Only the buckets covering [fp±radius] in the slot window can hold
		// matches. Visit order doesn't matter: the final sort breaks distance
		// ties by entry index, which is exactly the order the stable sort
		// over a full scan yields.
		lo := db.cellOf(geo.Point{X: fp.X - radius, Y: fp.Y - radius}, 0)
		hi := db.cellOf(geo.Point{X: fp.X + radius, Y: fp.Y + radius}, 0)
		for _, sl := range slotWindow(slot, slotTol, db.slots) {
			for cy := lo.cy; cy <= hi.cy; cy++ {
				for cx := lo.cx; cx <= hi.cx; cx++ {
					for _, i := range db.buckets[cellKey{cx, cy, sl}] {
						score(i)
					}
				}
			}
		}
	} else {
		for i := range db.entries {
			score(i)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d < out[j].d
		}
		return out[i].idx < out[j].idx
	})
	res := make([]Entry, len(out))
	for i, s := range out {
		res[i] = db.entries[s.idx]
	}
	return res
}

// slotWindow lists the distinct slots within tol circular steps of slot, in
// ascending order (the bucket scan's visit order is immaterial, but a fixed
// order keeps iteration deterministic).
func slotWindow(slot, tol, slots int) []int32 {
	if tol < 0 {
		tol = 0
	}
	if 2*tol+1 >= slots {
		out := make([]int32, slots)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	out := make([]int32, 0, 2*tol+1)
	for ds := -tol; ds <= tol; ds++ {
		out = append(out, int32(((slot+ds)%slots+slots)%slots))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// slotDist is the circular distance between two slots.
func slotDist(a, b, slots int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > slots/2 {
		d = slots - d
	}
	return d
}

// Confidence scores a candidate route against the verified truths near its
// OD pair, implementing the route evaluation component: each nearby truth
// votes with weight decaying in endpoint distance, and its vote is the
// route-similarity between the candidate and the truth's route. The result
// is in [0,1]; 0 means no nearby truths (no evidence), not "bad".
func (db *DB) Confidence(g *roadnet.Graph, candidate roadnet.Route, t routing.SimTime, radius float64, slotTol int) float64 {
	if candidate.Empty() {
		return 0
	}
	near := db.Near(g, candidate.Source(), candidate.Dest(), t, radius, slotTol)
	return scoreAgainst(g, candidate, near, radius)
}

// ConfidenceBatch scores several candidate routes in one pass, running Near
// once per distinct OD pair instead of once per candidate. The recommendation
// fan-out is the motivating caller: all its candidates share the request's OD
// pair, so the truth lookup — the dominant cost of scoring — collapses from
// one scan per candidate to one scan total. Scores are identical to calling
// Confidence per candidate (same Near ordering, same accumulation sequence).
func (db *DB) ConfidenceBatch(g *roadnet.Graph, candidates []roadnet.Route, t routing.SimTime, radius float64, slotTol int) []float64 {
	out := make([]float64, len(candidates))
	type od struct{ from, to roadnet.NodeID }
	var nearCache map[od][]Entry
	for i, c := range candidates {
		if c.Empty() {
			continue
		}
		key := od{c.Source(), c.Dest()}
		near, ok := nearCache[key]
		if !ok {
			near = db.Near(g, key.from, key.to, t, radius, slotTol)
			if nearCache == nil {
				nearCache = make(map[od][]Entry, 1)
			}
			nearCache[key] = near
		}
		out[i] = scoreAgainst(g, c, near, radius)
	}
	return out
}

// scoreAgainst is the shared scoring kernel of Confidence and
// ConfidenceBatch: each nearby truth votes with weight decaying in endpoint
// distance, and its vote is the route-similarity between the candidate and
// the truth's route.
func scoreAgainst(g *roadnet.Graph, candidate roadnet.Route, near []Entry, radius float64) float64 {
	if len(near) == 0 {
		return 0
	}
	fp := g.Node(candidate.Source()).Pt
	tp := g.Node(candidate.Dest()).Pt
	var num, den float64
	for _, e := range near {
		df := geo.Dist(g.Node(e.From).Pt, fp)
		dt := geo.Dist(g.Node(e.To).Pt, tp)
		// Weight: exponential decay with combined endpoint distance, scaled
		// by the truth's own confidence.
		w := math.Exp(-(df+dt)/(radius+1)) * e.Confidence
		num += w * candidate.Similarity(e.Route)
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Entries returns a copy of all stored truths, oldest first.
func (db *DB) Entries() []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Entry, len(db.entries))
	copy(out, db.entries)
	return out
}

// EntriesRange copies the entries in [offset, offset+limit), oldest first,
// and returns the total count — the pagination accessor for GET /v1/truths,
// which must not deep-copy the whole store per page. Offsets beyond the end
// yield an empty (non-nil) slice; a non-positive limit yields everything
// from offset.
func (db *DB) EntriesRange(offset, limit int) ([]Entry, int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := len(db.entries)
	if offset < 0 {
		offset = 0
	}
	lo := min(offset, total)
	hi := total
	if limit > 0 {
		hi = min(lo+limit, total)
	}
	out := make([]Entry, hi-lo)
	copy(out, db.entries[lo:hi])
	return out, total
}
