package truth

import (
	"math/rand"
	"reflect"
	"testing"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// seedCity fills a database with n truths over a generated city, optionally
// index-bound, always deterministically.
func seedCity(tb testing.TB, db *DB, g *roadnet.Graph, n int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	nn := roadnet.NodeID(g.NumNodes())
	for i := 0; i < n; i++ {
		from := roadnet.NodeID(rng.Intn(int(nn)))
		to := roadnet.NodeID(rng.Intn(int(nn)))
		if from == to {
			to = (to + 1) % nn
		}
		db.Store(Entry{
			From: from, To: to, Slot: rng.Intn(24),
			Route:      roadnet.NewRoute(from, to),
			Confidence: 0.5 + rng.Float64()/2,
			Crowd:      i%3 == 0,
		})
	}
}

// TestIndexedNearMatchesLinear is the correctness anchor for the spatial
// index: for many random queries the indexed Near must return exactly what
// the linear scan returns, in the same order.
func TestIndexedNearMatchesLinear(t *testing.T) {
	g := roadnet.Generate(roadnet.DefaultGenConfig())
	linear := NewDB(24)
	indexed := NewDB(24)
	indexed.EnableSpatialIndex(g, 600)
	seedCity(t, linear, g, 3000)
	seedCity(t, indexed, g, 3000)

	rng := rand.New(rand.NewSource(9))
	nn := g.NumNodes()
	for q := 0; q < 200; q++ {
		from := roadnet.NodeID(rng.Intn(nn))
		to := roadnet.NodeID(rng.Intn(nn))
		tm := routing.At(rng.Intn(7), rng.Intn(24), 0)
		radius := []float64{150, 600, 2000}[q%3]
		want := linear.Near(g, from, to, tm, radius, 1)
		got := indexed.Near(g, from, to, tm, radius, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d (from=%d to=%d r=%.0f): indexed %d entries, linear %d",
				q, from, to, radius, len(got), len(want))
		}
	}
}

// TestIndexBindsExistingEntries: EnableSpatialIndex after a bulk load (the
// boot-time restore order) must index what is already stored.
func TestIndexBindsExistingEntries(t *testing.T) {
	g := roadnet.Generate(roadnet.DefaultGenConfig())
	linear := NewDB(24)
	late := NewDB(24)
	seedCity(t, linear, g, 500)
	seedCity(t, late, g, 500)
	late.EnableSpatialIndex(g, 600)

	tm := routing.At(0, 9, 0)
	want := linear.Near(g, 0, roadnet.NodeID(g.NumNodes()-1), tm, 1500, 2)
	got := late.Near(g, 0, roadnet.NodeID(g.NumNodes()-1), tm, 1500, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("late-bound index: %d entries, linear %d", len(got), len(want))
	}
}

// TestIndexedConfidenceMatchesLinear: Confidence rides on Near and must be
// bit-identical with and without the index.
func TestIndexedConfidenceMatchesLinear(t *testing.T) {
	g := roadnet.Generate(roadnet.DefaultGenConfig())
	linear := NewDB(24)
	indexed := NewDB(24)
	indexed.EnableSpatialIndex(g, 600)
	seedCity(t, linear, g, 2000)
	seedCity(t, indexed, g, 2000)

	rng := rand.New(rand.NewSource(11))
	nn := roadnet.NodeID(g.NumNodes())
	for q := 0; q < 50; q++ {
		from := roadnet.NodeID(rng.Intn(int(nn)))
		to := roadnet.NodeID(rng.Intn(int(nn)))
		if from == to {
			continue
		}
		cand := roadnet.NewRoute(from, to)
		tm := routing.At(rng.Intn(7), rng.Intn(24), 0)
		want := linear.Confidence(g, cand, tm, 600, 1)
		got := indexed.Confidence(g, cand, tm, 600, 1)
		if got != want {
			t.Fatalf("query %d: confidence %v != %v", q, got, want)
		}
	}
}

func TestEntriesRange(t *testing.T) {
	db := NewDB(24)
	g := corridor()
	_ = g
	for i := 0; i < 10; i++ {
		db.Store(Entry{From: 0, To: 3, Slot: i, Route: top(), Confidence: 0.9})
	}
	page, total := db.EntriesRange(4, 3)
	if total != 10 || len(page) != 3 {
		t.Fatalf("range(4,3): %d entries, total %d", len(page), total)
	}
	if page[0].Slot != 4 || page[2].Slot != 6 {
		t.Fatalf("page slots = %d..%d, want 4..6", page[0].Slot, page[2].Slot)
	}
	if page, total := db.EntriesRange(20, 5); total != 10 || page == nil || len(page) != 0 {
		t.Fatalf("past-the-end range = %v (total %d), want empty non-nil", page, total)
	}
	if page, _ := db.EntriesRange(8, 0); len(page) != 2 {
		t.Fatalf("limit<=0 should return the tail, got %d", len(page))
	}
	if page, _ := db.EntriesRange(-2, 2); len(page) != 2 || page[0].Slot != 0 {
		t.Fatalf("negative offset should clamp to 0, got %+v", page)
	}
}

// ---- acceptance benchmarks: grid index vs linear scan at 100k truths ----

func seededDB(b *testing.B, g *roadnet.Graph, indexed bool) *DB {
	b.Helper()
	db := NewDB(24)
	if indexed {
		db.EnableSpatialIndex(g, 600)
	}
	seedCity(b, db, g, 100_000)
	return db
}

var benchGraph *roadnet.Graph

func benchCity(b *testing.B) *roadnet.Graph {
	b.Helper()
	if benchGraph == nil {
		benchGraph = roadnet.Generate(roadnet.DefaultGenConfig())
	}
	return benchGraph
}

func benchNear(b *testing.B, indexed bool) {
	g := benchCity(b)
	db := seededDB(b, g, indexed)
	nn := roadnet.NodeID(g.NumNodes())
	tm := routing.At(0, 8, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := roadnet.NodeID(i) % nn
		to := (from + nn/2) % nn
		_ = db.Near(g, from, to, tm, 600, 1)
	}
}

func BenchmarkTruthNear100k(b *testing.B)       { benchNear(b, true) }
func BenchmarkTruthNearLinear100k(b *testing.B) { benchNear(b, false) }

func benchConfidence(b *testing.B, indexed bool) {
	g := benchCity(b)
	db := seededDB(b, g, indexed)
	nn := roadnet.NodeID(g.NumNodes())
	tm := routing.At(0, 8, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := roadnet.NodeID(i) % nn
		to := (from + nn/3) % nn
		_ = db.Confidence(g, roadnet.NewRoute(from, to), tm, 600, 1)
	}
}

func BenchmarkConfidence100k(b *testing.B)       { benchConfidence(b, true) }
func BenchmarkConfidenceLinear100k(b *testing.B) { benchConfidence(b, false) }
