package crowd

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"crowdplanner/internal/landmark"
)

func TestRunTaskCtxCancelledBeforeStart(t *testing.T) {
	tk, truths := buildTask(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(1))
	run, err := RunTaskCtx(ctx, tk, mkWorkers(1, 1, 1), truths[0], constFam(5), DefaultAnswerModel(), 0.9, rng, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if run.QuestionsUsed != 0 || run.AnswersUsed != 0 {
		t.Errorf("cancelled run did work: %+v", run)
	}
}

func TestRunTaskCtxCancelledBetweenQuestions(t *testing.T) {
	tk, truths := buildTask(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rng := rand.New(rand.NewSource(1))
	// Cancel from the per-question hook: the walk must stop before asking
	// the next question, returning the partial run.
	run, err := RunTaskCtx(ctx, tk, mkWorkers(1, 1, 1), truths[0], constFam(0), DefaultAnswerModel(), 0, rng,
		func(_ landmark.ID, _ []Answer, _ int) { cancel() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if run.QuestionsUsed != 1 {
		t.Errorf("questions used = %d, want exactly 1", run.QuestionsUsed)
	}
}
