package crowd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/geo"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/task"
	"crowdplanner/internal/worker"
)

func TestAnswerModelAccuracy(t *testing.T) {
	m := DefaultAnswerModel()
	if got := m.Accuracy(0); math.Abs(got-m.Base) > 1e-9 {
		t.Errorf("acc(0) = %v, want base %v", got, m.Base)
	}
	if m.Accuracy(1) <= m.Accuracy(0.1) {
		t.Error("accuracy should increase with familiarity")
	}
	if got := m.Accuracy(100); got > m.Max+1e-9 {
		t.Errorf("acc(100) = %v exceeds max %v", got, m.Max)
	}
	if got := m.Accuracy(-5); math.Abs(got-m.Base) > 1e-9 {
		t.Errorf("negative familiarity should clamp to base: %v", got)
	}
}

func mkWorkers(lambdas ...float64) []worker.Ranked {
	out := make([]worker.Ranked, len(lambdas))
	for i, l := range lambdas {
		out[i] = worker.Ranked{Worker: &worker.Worker{ID: worker.ID(i), Lambda: l}, Score: 1}
	}
	return out
}

func constFam(f float64) FamiliarityFn {
	return func(int, landmark.ID) float64 { return f }
}

func TestAskQuestionOrderAndAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	workers := mkWorkers(1, 0.1, 10)
	answers := AskQuestion(workers, 0, true, constFam(5), DefaultAnswerModel(), rng)
	if len(answers) != 3 {
		t.Fatalf("answers = %d", len(answers))
	}
	for i := 1; i < len(answers); i++ {
		if answers[i].AtMin < answers[i-1].AtMin {
			t.Error("answers must arrive in time order")
		}
	}
	// With high familiarity nearly all answers should be correct over many
	// trials.
	correct, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		for _, a := range AskQuestion(workers, 0, true, constFam(5), DefaultAnswerModel(), rng) {
			total++
			if a.Yes {
				correct++
			}
		}
	}
	if rate := float64(correct) / float64(total); rate < 0.85 {
		t.Errorf("high-familiarity accuracy = %v", rate)
	}
	// With zero familiarity the rate should sit near the base.
	correct, total = 0, 0
	for trial := 0; trial < 300; trial++ {
		for _, a := range AskQuestion(workers, 0, true, constFam(0), DefaultAnswerModel(), rng) {
			total++
			if a.Yes {
				correct++
			}
		}
	}
	rate := float64(correct) / float64(total)
	if rate < 0.45 || rate > 0.67 {
		t.Errorf("zero-familiarity accuracy = %v, want ≈0.55", rate)
	}
}

func TestAggregateMajority(t *testing.T) {
	answers := []Answer{
		{Yes: true, EstAcc: 0.8},
		{Yes: true, EstAcc: 0.8},
		{Yes: false, EstAcc: 0.8},
	}
	yes, conf, used := Aggregate(answers, 0)
	if !yes {
		t.Error("majority yes should win")
	}
	if used != 3 {
		t.Errorf("no early stop should consume all: used=%d", used)
	}
	if conf <= 0.5 || conf > 1 {
		t.Errorf("confidence = %v", conf)
	}
}

func TestAggregateEarlyStopSavesAnswers(t *testing.T) {
	var answers []Answer
	for i := 0; i < 9; i++ {
		answers = append(answers, Answer{Yes: true, EstAcc: 0.9})
	}
	yes, conf, used := Aggregate(answers, 0.95)
	if !yes {
		t.Error("unanimous yes should win")
	}
	if used >= 9 {
		t.Errorf("early stop should consume fewer than all 9: used=%d", used)
	}
	if conf < 0.95 {
		t.Errorf("stop confidence = %v below threshold", conf)
	}
	// Without early stop, everything is consumed.
	_, _, usedAll := Aggregate(answers, 0)
	if usedAll != 9 {
		t.Errorf("usedAll = %d", usedAll)
	}
}

func TestAggregateConflictKeepsCollecting(t *testing.T) {
	answers := []Answer{
		{Yes: true, EstAcc: 0.8},
		{Yes: false, EstAcc: 0.8},
		{Yes: true, EstAcc: 0.8},
		{Yes: false, EstAcc: 0.8},
	}
	_, conf, used := Aggregate(answers, 0.99)
	if used != 4 {
		t.Errorf("conflicting stream should consume all: %d", used)
	}
	if conf > 0.9 {
		t.Errorf("confidence after conflict = %v", conf)
	}
}

func TestAggregateNoAnswers(t *testing.T) {
	yes, conf, used := Aggregate(nil, 0.9)
	if used != 0 {
		t.Errorf("used = %d", used)
	}
	if !yes || math.Abs(conf-0.5) > 1e-9 {
		t.Errorf("empty aggregate = %v %v", yes, conf)
	}
}

func TestClampAcc(t *testing.T) {
	if clampAcc(0.1) != 0.51 || clampAcc(0.999) != 0.99 || clampAcc(0.8) != 0.8 {
		t.Error("clampAcc bounds wrong")
	}
}

// buildTask creates a 4-candidate task over 4 landmarks.
func buildTask(t *testing.T) (*task.Task, map[int]map[landmark.ID]bool) {
	t.Helper()
	ls := []*landmark.Landmark{
		{ID: 0, Pt: geo.Point{X: 0}, Significance: 0.9},
		{ID: 1, Pt: geo.Point{X: 10}, Significance: 0.8},
		{ID: 2, Pt: geo.Point{X: 20}, Significance: 0.7},
		{ID: 3, Pt: geo.Point{X: 30}, Significance: 0.6},
	}
	set := landmark.NewSet(ls)
	mk := func(src string, ids ...landmark.ID) task.Candidate {
		return task.Candidate{Source: src, LRoute: calibrate.LandmarkRoute{Landmarks: ids}}
	}
	cands := []task.Candidate{
		mk("c0", 0, 3),
		mk("c1", 1, 3),
		mk("c2", 0, 1, 3),
		mk("c3", 3),
	}
	tk, err := task.Generate(1, set, cands, task.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	truths := map[int]map[landmark.ID]bool{}
	for i, c := range cands {
		truths[i] = c.LRoute.IDSet()
	}
	return tk, truths
}

func TestRunTaskResolvesWithGoodWorkers(t *testing.T) {
	tk, truths := buildTask(t)
	rng := rand.New(rand.NewSource(7))
	workers := mkWorkers(1, 1, 1, 1, 1)
	hits := 0
	trials := 0
	for truthIdx := 0; truthIdx < 4; truthIdx++ {
		for rep := 0; rep < 25; rep++ {
			run := RunTask(tk, workers, truths[truthIdx], constFam(5), DefaultAnswerModel(), 0.9, rng)
			trials++
			if run.Resolved == truthIdx {
				hits++
			}
			if run.QuestionsUsed < 1 || run.QuestionsUsed > len(tk.Questions) {
				t.Errorf("questions used = %d", run.QuestionsUsed)
			}
			if run.AnswersUsed > run.AnswersAsked {
				t.Error("used answers exceed asked")
			}
		}
	}
	if rate := float64(hits) / float64(trials); rate < 0.9 {
		t.Errorf("resolution accuracy with expert workers = %v", rate)
	}
}

func TestRunTaskEarlyStopReducesAnswers(t *testing.T) {
	tk, truths := buildTask(t)
	workers := mkWorkers(1, 1, 1, 1, 1, 1, 1, 1, 1)
	sumWith, sumWithout := 0, 0
	for rep := 0; rep < 40; rep++ {
		rng := rand.New(rand.NewSource(int64(rep)))
		runWith := RunTask(tk, workers, truths[0], constFam(5), DefaultAnswerModel(), 0.9, rng)
		rng = rand.New(rand.NewSource(int64(rep)))
		runWithout := RunTask(tk, workers, truths[0], constFam(5), DefaultAnswerModel(), 0, rng)
		sumWith += runWith.AnswersUsed
		sumWithout += runWithout.AnswersUsed
	}
	if sumWith >= sumWithout {
		t.Errorf("early stop should save answers: %d vs %d", sumWith, sumWithout)
	}
}

func TestRunTaskAccuracyDropsWithUnfamiliarWorkers(t *testing.T) {
	tk, truths := buildTask(t)
	expert := mkWorkers(1, 1, 1, 1, 1)
	novice := mkWorkers(1, 1, 1, 1, 1)
	expertHits, noviceHits, trials := 0, 0, 0
	for rep := 0; rep < 60; rep++ {
		for truthIdx := 0; truthIdx < 4; truthIdx++ {
			rngE := rand.New(rand.NewSource(int64(rep*4 + truthIdx)))
			rngN := rand.New(rand.NewSource(int64(rep*4 + truthIdx)))
			trials++
			if RunTask(tk, expert, truths[truthIdx], constFam(5), DefaultAnswerModel(), 0.9, rngE).Resolved == truthIdx {
				expertHits++
			}
			if RunTask(tk, novice, truths[truthIdx], constFam(0), DefaultAnswerModel(), 0.9, rngN).Resolved == truthIdx {
				noviceHits++
			}
		}
	}
	if expertHits <= noviceHits {
		t.Errorf("experts (%d) should beat novices (%d) of %d", expertHits, noviceHits, trials)
	}
}

func TestReward(t *testing.T) {
	pool := &worker.Pool{Workers: []*worker.Worker{
		{ID: 0}, {ID: 1},
	}}
	answers := []Answer{
		{Worker: 0, Correct: true},
		{Worker: 1, Correct: false},
		{Worker: 0, Correct: true}, // beyond used: not rewarded
	}
	Reward(pool, 5, answers, 2, DefaultRewardConfig())
	if pool.Workers[0].Reward != 3 { // 1 + 2 bonus
		t.Errorf("worker0 reward = %v", pool.Workers[0].Reward)
	}
	if pool.Workers[1].Reward != 1 { // answer only
		t.Errorf("worker1 reward = %v", pool.Workers[1].Reward)
	}
	if h := pool.Workers[0].History[5]; h.Correct != 1 || h.Wrong != 0 {
		t.Errorf("history = %+v", h)
	}
	if h := pool.Workers[1].History[5]; h.Wrong != 1 {
		t.Errorf("history = %+v", h)
	}
	// Unknown worker IDs are skipped without panicking.
	Reward(pool, 5, []Answer{{Worker: 99}}, 1, DefaultRewardConfig())
}

func TestPropertyAggregateConfidence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		answers := make([]Answer, n)
		for i := range answers {
			answers[i] = Answer{
				Yes:    rng.Intn(2) == 0,
				EstAcc: 0.5 + rng.Float64()*0.49,
			}
		}
		stop := 0.5 + rng.Float64()*0.49
		yes, conf, used := Aggregate(answers, stop)
		_ = yes
		if conf < 0.5-1e-9 || conf > 1+1e-9 {
			return false
		}
		if used < 1 || used > n {
			return false
		}
		// Early stop can only reduce the consumed count.
		_, _, usedAll := Aggregate(answers, 0)
		return used <= usedAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
