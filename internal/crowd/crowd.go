// Package crowd simulates the human side of CrowdPlanner and implements the
// server-side aggregation: simulated workers answer binary landmark
// questions with accuracy increasing in their familiarity, the early-stop
// component aggregates answers Bayesianly and cuts data collection once
// confident (paper's early stop), and the rewarding component credits
// workers (paper's rewarding component).
//
// The simulated crowd substitutes for the paper's "hundreds of volunteers";
// see DESIGN.md for the substitution rationale: the evaluated comparisons
// (eligible vs random workers, binary vs multiple choice, early stop on/off)
// only require that answer accuracy correlates with familiarity, which is
// the paper's own modelling assumption.
package crowd

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"crowdplanner/internal/landmark"
	"crowdplanner/internal/task"
	"crowdplanner/internal/worker"
)

// AnswerModel maps a worker's familiarity with a landmark to the probability
// of answering a binary question about it correctly. Accuracy saturates:
// acc(f) = Max − (Max − Base)·e^{−Gain·f}; zero familiarity answers at Base
// (barely better than guessing).
type AnswerModel struct {
	Base float64 // accuracy at zero familiarity
	Max  float64 // asymptotic accuracy
	Gain float64 // how fast familiarity converts to accuracy
}

// DefaultAnswerModel starts at 55% and saturates at 95%.
func DefaultAnswerModel() AnswerModel {
	return AnswerModel{Base: 0.55, Max: 0.95, Gain: 1.2}
}

// Accuracy returns the answer accuracy for familiarity f.
func (m AnswerModel) Accuracy(f float64) float64 {
	if f < 0 {
		f = 0
	}
	return m.Max - (m.Max-m.Base)*math.Exp(-m.Gain*f)
}

// Answer is one worker's reply to one binary question.
type Answer struct {
	Worker  worker.ID
	Yes     bool
	AtMin   float64 // arrival time in minutes after the question was issued
	EstAcc  float64 // the system's accuracy estimate for this worker/landmark
	Correct bool    // bookkeeping for rewards; not visible to aggregation logic
}

// FamiliarityFn looks up the accumulated familiarity of a worker (by pool
// index) with a landmark.
type FamiliarityFn func(workerIdx int, l landmark.ID) float64

// AskQuestion simulates the selected workers answering the binary question
// "does the best route pass landmark l?" whose true answer is truth.
// Answers are returned in arrival-time order.
func AskQuestion(workers []worker.Ranked, l landmark.ID, truth bool, fam FamiliarityFn, model AnswerModel, rng *rand.Rand) []Answer {
	answers := make([]Answer, 0, len(workers))
	for _, r := range workers {
		w := r.Worker
		f := fam(int(w.ID), l)
		acc := model.Accuracy(f)
		correct := rng.Float64() < acc
		yes := truth == correct
		at := rng.ExpFloat64()
		if w.Lambda > 0 {
			at /= w.Lambda
		} else {
			at = math.Inf(1)
		}
		answers = append(answers, Answer{
			Worker: w.ID, Yes: yes, AtMin: at, EstAcc: acc, Correct: correct,
		})
	}
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].AtMin != answers[j].AtMin {
			return answers[i].AtMin < answers[j].AtMin
		}
		return answers[i].Worker < answers[j].Worker
	})
	return answers
}

// Aggregate fuses answers into a yes/no decision with Bayesian log-odds:
// each answer multiplies the odds by acc/(1−acc) towards its vote. When
// earlyStop > 0.5, aggregation stops as soon as the posterior for either
// side reaches earlyStop (the paper's early-stop component); earlyStop <= 0.5
// consumes every answer. Returns the decision, the posterior confidence of
// that decision, and how many answers were consumed.
func Aggregate(answers []Answer, earlyStop float64) (yes bool, confidence float64, used int) {
	logOdds := 0.0
	for i, a := range answers {
		acc := clampAcc(a.EstAcc)
		llr := math.Log(acc / (1 - acc))
		if a.Yes {
			logOdds += llr
		} else {
			logOdds -= llr
		}
		used = i + 1
		if earlyStop > 0.5 {
			p := 1 / (1 + math.Exp(-logOdds))
			if p >= earlyStop || p <= 1-earlyStop {
				break
			}
		}
	}
	p := 1 / (1 + math.Exp(-logOdds))
	if p >= 0.5 {
		return true, p, used
	}
	return false, 1 - p, used
}

func clampAcc(a float64) float64 {
	if a < 0.51 {
		return 0.51
	}
	if a > 0.99 {
		return 0.99
	}
	return a
}

// TaskRun records how a crowd task resolved.
type TaskRun struct {
	Resolved      int     // winning candidate index
	QuestionsUsed int     // tree questions issued
	AnswersUsed   int     // total worker answers consumed (after early stop)
	AnswersAsked  int     // total worker answers collected (without early stop)
	ElapsedMin    float64 // simulated wall time: sum over questions of the slowest consumed answer
	MinConfidence float64 // smallest per-question aggregation confidence
}

// QuestionHook observes each answered question: the landmark asked, the
// collected answers (arrival order) and how many were consumed before early
// stop. The rewarding component hangs off this hook.
type QuestionHook func(l landmark.ID, answers []Answer, used int)

// RunTask walks the task's ID3 tree: at every internal node the assigned
// workers answer the node's question, Aggregate decides the branch, and the
// walk continues until a leaf resolves the task. truthSet is the landmark
// membership of the (simulated) true best route.
func RunTask(t *task.Task, workers []worker.Ranked, truthSet map[landmark.ID]bool, fam FamiliarityFn, model AnswerModel, earlyStop float64, rng *rand.Rand) TaskRun {
	return RunTaskHooked(t, workers, truthSet, fam, model, earlyStop, rng, nil)
}

// RunTaskHooked is RunTask with a per-question observer (may be nil).
func RunTaskHooked(t *task.Task, workers []worker.Ranked, truthSet map[landmark.ID]bool, fam FamiliarityFn, model AnswerModel, earlyStop float64, rng *rand.Rand, hook QuestionHook) TaskRun {
	run, _ := RunTaskCtx(context.Background(), t, workers, truthSet, fam, model, earlyStop, rng, hook)
	return run
}

// RunTaskCtx is RunTaskHooked under a context: cancellation (or a passed
// deadline) is observed between questions, so a caller whose client has
// disconnected stops simulating the crowd. On cancellation it returns the
// partial run together with ctx.Err(); rewards already granted for completed
// questions stand.
func RunTaskCtx(ctx context.Context, t *task.Task, workers []worker.Ranked, truthSet map[landmark.ID]bool, fam FamiliarityFn, model AnswerModel, earlyStop float64, rng *rand.Rand, hook QuestionHook) (TaskRun, error) {
	run := TaskRun{MinConfidence: 1}
	node := t.Tree
	for node != nil && !node.IsLeaf() {
		if err := ctx.Err(); err != nil {
			return run, err
		}
		truth := truthSet[node.Landmark]
		answers := AskQuestion(workers, node.Landmark, truth, fam, model, rng)
		yes, conf, used := Aggregate(answers, earlyStop)
		run.QuestionsUsed++
		run.AnswersUsed += used
		run.AnswersAsked += len(answers)
		if used > 0 {
			run.ElapsedMin += answers[used-1].AtMin
		}
		if conf < run.MinConfidence {
			run.MinConfidence = conf
		}
		if hook != nil {
			hook(node.Landmark, answers, used)
		}
		if yes {
			node = node.Yes
		} else {
			node = node.No
		}
	}
	if node != nil {
		run.Resolved = node.Leaf()
	}
	return run, nil
}

// RewardConfig prices worker contributions (the paper's rewarding
// component: "according to their workload and the quality of their
// answers").
type RewardConfig struct {
	PerAnswer    float64 // workload component
	CorrectBonus float64 // quality component
}

// DefaultRewardConfig pays 1 point per answer plus 2 for correct ones.
func DefaultRewardConfig() RewardConfig { return RewardConfig{PerAnswer: 1, CorrectBonus: 2} }

// RewardEvent reports one applied credit: the worker, the landmark
// answered, whether the answer was judged correct, and the worker's state
// *after* the credit (reward balance and the landmark's answer tally). The
// serving core forwards these to the storage layer as worker-state WAL
// events; carrying absolute post-state keeps their replay idempotent.
type RewardEvent struct {
	Worker   worker.ID
	Landmark landmark.ID
	Correct  bool
	Balance  float64        // reward balance after the credit
	Tally    worker.History // per-landmark history after the credit
}

// Reward credits the workers who contributed the consumed answers and
// updates their per-landmark history, closing the loop that sharpens future
// familiarity scores. Only the first `used` answers (the ones actually
// consumed before early stop) are rewarded. The returned events mirror the
// mutations applied, in application order.
func Reward(pool *worker.Pool, l landmark.ID, answers []Answer, used int, cfg RewardConfig) []RewardEvent {
	events := make([]RewardEvent, 0, used)
	for i := 0; i < used && i < len(answers); i++ {
		a := answers[i]
		w := pool.Get(a.Worker)
		if w == nil {
			continue
		}
		w.Reward += cfg.PerAnswer
		if a.Correct {
			w.Reward += cfg.CorrectBonus
		}
		w.RecordAnswer(l, a.Correct)
		events = append(events, RewardEvent{
			Worker: a.Worker, Landmark: l, Correct: a.Correct,
			Balance: w.Reward, Tally: w.History[l],
		})
	}
	return events
}
