package traj

import (
	"math/rand"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// Sample is one GPS fix of a trajectory.
type Sample struct {
	Pt geo.Point
	T  routing.SimTime
}

// Trajectory is a recorded trip: the raw GPS samples plus, once map-matched,
// the route through the road network.
type Trajectory struct {
	Driver  DriverID
	Depart  routing.SimTime
	Samples []Sample
	Route   roadnet.Route // map-matched node sequence; may be empty pre-matching
}

// GPSConfig controls how routes are turned into noisy GPS traces.
type GPSConfig struct {
	SampleEveryM float64 // nominal distance between fixes, meters
	NoiseStdM    float64 // gaussian noise per fix, meters
	DropProb     float64 // probability a fix is dropped (urban canyon)
}

// DefaultGPSConfig matches commodity vehicle trackers: a fix every ~120 m
// with ~8 m noise and occasional dropouts.
func DefaultGPSConfig() GPSConfig {
	return GPSConfig{SampleEveryM: 120, NoiseStdM: 8, DropProb: 0.05}
}

// Trace converts a route driven from depart into a noisy GPS trajectory.
func Trace(g *roadnet.Graph, d *Driver, r roadnet.Route, depart routing.SimTime, cfg GPSConfig, rng *rand.Rand) Trajectory {
	pl := r.Polyline(g)
	total := pl.Length()
	minutes := routing.TravelMinutes(g, r, depart)
	tr := Trajectory{Driver: d.ID, Depart: depart, Route: r.Clone()}
	if total == 0 {
		tr.Samples = []Sample{{Pt: pl[0], T: depart}}
		return tr
	}
	step := cfg.SampleEveryM
	if step <= 0 {
		step = 120
	}
	for pos := 0.0; ; pos += step {
		clamped := pos
		last := false
		if clamped >= total {
			clamped = total
			last = true
		}
		if !last && rng != nil && rng.Float64() < cfg.DropProb {
			continue
		}
		p := pl.PointAt(clamped)
		if rng != nil && cfg.NoiseStdM > 0 {
			p.X += rng.NormFloat64() * cfg.NoiseStdM
			p.Y += rng.NormFloat64() * cfg.NoiseStdM
		}
		frac := clamped / total
		tr.Samples = append(tr.Samples, Sample{Pt: p, T: depart.Add(minutes * frac)})
		if last {
			break
		}
	}
	return tr
}

// maxSnapM is the acceptance radius for snapping a GPS fix to an
// intersection. Mid-edge fixes (further than this from any node) are
// discarded and bridged by shortest path instead; without the threshold a
// fix halfway along a long highway segment would snap to an off-route city
// node and make the matched route weave.
const maxSnapM = 100

// MapMatch snaps a GPS trajectory back onto the road network, returning the
// inferred route. Fixes within maxSnapM of an intersection snap to it (the
// first and last fix always anchor to their nearest node), consecutive
// repeats are deduplicated, and non-adjacent node pairs are bridged with the
// shortest path — a standard lightweight point-to-node matcher, sufficient
// because the synthetic GPS noise (≈8 m) is far below node spacing (≈250 m).
func MapMatch(g *roadnet.Graph, samples []Sample) (roadnet.Route, error) {
	if len(samples) == 0 {
		return roadnet.Route{}, routing.ErrNoRoute
	}
	var snapped []roadnet.NodeID
	for i, s := range samples {
		n, ok := g.NearestNode(s.Pt)
		if !ok {
			return roadnet.Route{}, routing.ErrNoRoute
		}
		endpoint := i == 0 || i == len(samples)-1
		if !endpoint && geo.Dist(s.Pt, g.Node(n).Pt) > maxSnapM {
			continue
		}
		if len(snapped) == 0 || snapped[len(snapped)-1] != n {
			snapped = append(snapped, n)
		}
	}
	// Bridge gaps.
	nodes := []roadnet.NodeID{snapped[0]}
	for i := 1; i < len(snapped); i++ {
		prev := nodes[len(nodes)-1]
		next := snapped[i]
		if prev == next {
			continue
		}
		if _, ok := g.FindEdge(prev, next); ok {
			nodes = append(nodes, next)
			continue
		}
		bridge, _, err := routing.AStar(g, prev, next, routing.DistanceCost, 0)
		if err != nil {
			return roadnet.Route{}, err
		}
		nodes = append(nodes, bridge.Nodes[1:]...)
	}
	// A trajectory that collapses to a single node has no edges; report it
	// as unroutable rather than returning an invalid route.
	if len(nodes) < 2 {
		return roadnet.Route{}, routing.ErrNoRoute
	}
	return roadnet.Route{Nodes: nodes}, nil
}
