package traj

import (
	"math/rand"
	"reflect"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// ---- satellite regressions: corpus generation and sampling ----

// TestGroundTruthOrderInvariant is the regression test for the biased
// "sampling" fix: drivers[:sampleDrivers] polled a fixed prefix, so the
// verdict depended on the Drivers slice order. The hash-keyed subsample must
// return the same route for a shuffled copy of the population.
func TestGroundTruthOrderInvariant(t *testing.T) {
	g := testGraph()
	drivers := NewPopulation(g, DefaultPopulationConfig())
	ds := &Dataset{Graph: g, Drivers: drivers}

	shuffled := append([]*Driver(nil), drivers...)
	rand.New(rand.NewSource(13)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	dsShuffled := &Dataset{Graph: g, Drivers: shuffled}

	for _, od := range [][2]roadnet.NodeID{{0, 77}, {5, 91}, {12, 60}} {
		want, err := ds.GroundTruth(od[0], od[1], routing.At(0, 8, 30), 40)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dsShuffled.GroundTruth(od[0], od[1], routing.At(0, 8, 30), 40)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("OD %v: shuffled population polled a different sample: %v vs %v", od, got, want)
		}
	}
}

// TestSampleByIDNotPrefix: the subsample must actually spread over the
// population instead of reproducing the old prefix behaviour.
func TestSampleByIDNotPrefix(t *testing.T) {
	g := testGraph()
	drivers := NewPopulation(g, DefaultPopulationConfig())
	picked := sampleByID(drivers, 40)
	if len(picked) != 40 {
		t.Fatalf("picked %d drivers, want 40", len(picked))
	}
	seen := map[DriverID]bool{}
	beyondPrefix := false
	for _, d := range picked {
		if seen[d.ID] {
			t.Fatalf("driver %d picked twice", d.ID)
		}
		seen[d.ID] = true
		if int(d.ID) >= 40 {
			beyondPrefix = true
		}
	}
	if !beyondPrefix {
		t.Fatal("sample is exactly the old prefix; expected spread over the population")
	}
}

// TestRandomODsShortfall: a graph too small/dense to satisfy MinODDistM must
// report how many requested ODs never materialized instead of silently
// returning fewer.
func TestRandomODsShortfall(t *testing.T) {
	g := roadnet.NewGraph(3, 6)
	g.AddNode(geo.Point{X: 0, Y: 0})
	g.AddNode(geo.Point{X: 100, Y: 0})
	g.AddNode(geo.Point{X: 200, Y: 0})
	g.AddRoad(0, 1, roadnet.Local, 0, 0)
	g.AddRoad(1, 2, roadnet.Local, 0, 0)

	rng := rand.New(rand.NewSource(3))
	// Impossible distance constraint: every OD fails, full shortfall.
	ods, shortfall := RandomODs(g, 10, 1e6, rng)
	if len(ods) != 0 || shortfall != 10 {
		t.Fatalf("impossible constraint: %d ODs, shortfall %d; want 0 and 10", len(ods), shortfall)
	}
	// Only 6 distinct ordered pairs exist; asking for 30 must report 24 short.
	ods, shortfall = RandomODs(g, 30, 0, rng)
	if len(ods)+shortfall != 30 {
		t.Fatalf("ods %d + shortfall %d != requested 30", len(ods), shortfall)
	}
	if shortfall < 24 {
		t.Fatalf("shortfall = %d, want >= 24 (only 6 distinct pairs exist)", shortfall)
	}
}

// TestGenerateDatasetExactTotal is the trip-count-drift regression: the
// largest-remainder allocation must realize exactly NumODs*TripsPerOD trips
// (per-OD rounding plus the old >=1 clamp used to drift the corpus size).
func TestGenerateDatasetExactTotal(t *testing.T) {
	g := testGraph()
	drivers := NewPopulation(g, PopulationConfig{NumDrivers: 30, Seed: 5, FracCommuter: 1})
	for _, cfg := range []DatasetConfig{
		{NumODs: 10, TripsPerOD: 8, ZipfSkew: 1, MinODDistM: 1000, GPS: DefaultGPSConfig(), Seed: 6},
		{NumODs: 7, TripsPerOD: 13, ZipfSkew: 2.5, MinODDistM: 800, GPS: DefaultGPSConfig(), Seed: 7},
		{NumODs: 12, TripsPerOD: 5, ZipfSkew: 0, MinODDistM: 500, GPS: DefaultGPSConfig(), Seed: 8},
	} {
		ds := GenerateDataset(g, drivers, cfg)
		if ds.ODShortfall != 0 {
			t.Fatalf("cfg %+v: unexpected OD shortfall %d", cfg, ds.ODShortfall)
		}
		if got, want := len(ds.Trips), cfg.NumODs*cfg.TripsPerOD; got != want {
			t.Errorf("cfg skew=%v: %d trips, want exactly %d", cfg.ZipfSkew, got, want)
		}
	}
}

// TestGenerateDatasetShortfallAccounted: when ODs under-deliver, the full
// trip budget is still spread over the realized ODs and the shortfall is
// surfaced on the dataset.
func TestGenerateDatasetShortfallAccounted(t *testing.T) {
	g := roadnet.NewGraph(4, 10)
	g.AddNode(geo.Point{X: 0, Y: 0})
	g.AddNode(geo.Point{X: 2000, Y: 0})
	g.AddNode(geo.Point{X: 0, Y: 2000})
	g.AddNode(geo.Point{X: 2000, Y: 2000})
	g.AddRoad(0, 1, roadnet.Local, 0, 0)
	g.AddRoad(0, 2, roadnet.Local, 0, 0)
	g.AddRoad(1, 3, roadnet.Local, 0, 0)
	g.AddRoad(2, 3, roadnet.Local, 0, 0)

	drivers := NewPopulation(g, PopulationConfig{NumDrivers: 10, Seed: 2, FracCommuter: 1})
	cfg := DatasetConfig{
		// Only 12 distinct ordered pairs exist; 20 are requested.
		NumODs: 20, TripsPerOD: 5, ZipfSkew: 1, MinODDistM: 0,
		GPS: DefaultGPSConfig(), Seed: 4,
	}
	ds := GenerateDataset(g, drivers, cfg)
	if ds.ODShortfall < 8 {
		t.Fatalf("shortfall = %d, want >= 8", ds.ODShortfall)
	}
	if got, want := len(ds.Trips), cfg.NumODs*cfg.TripsPerOD; got != want {
		t.Errorf("trips = %d, want the full budget %d despite the OD shortfall", got, want)
	}
}

// TestApportionExact: property check on the largest-remainder helper.
func TestApportionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		weights := make([]float64, n)
		var wsum float64
		for i := range weights {
			weights[i] = rng.Float64() + 1e-6
			wsum += weights[i]
		}
		total := rng.Intn(500)
		shares := apportion(total, weights, wsum)
		sum := 0
		for _, s := range shares {
			if s < 0 {
				t.Fatalf("negative share %d", s)
			}
			sum += s
		}
		if sum != total {
			t.Fatalf("trial %d: shares sum %d, want %d", trial, sum, total)
		}
	}
}

// ---- mining index: traj-level equivalence and ingestion semantics ----

// corpus builds a small generated dataset for index tests.
func corpus(t *testing.T, seed int64) *Dataset {
	t.Helper()
	g := testGraph()
	drivers := NewPopulation(g, PopulationConfig{NumDrivers: 40, Seed: seed, FracCommuter: 1})
	return GenerateDataset(g, drivers, DatasetConfig{
		NumODs: 12, TripsPerOD: 10, ZipfSkew: 1, MinODDistM: 1000,
		PeakBias: 0.5, GPS: DefaultGPSConfig(), Seed: seed + 1,
	})
}

// TestTripsBetweenIndexedMatchesScan: the endpoint-pair grid must reproduce
// the linear scan exactly (same trips, same corpus order) across radii,
// including radius 0 (exact endpoints).
func TestTripsBetweenIndexedMatchesScan(t *testing.T) {
	plain := corpus(t, 21)
	indexed := corpus(t, 21)
	indexed.EnableMiningIndex()

	rng := rand.New(rand.NewSource(5))
	nn := plain.Graph.NumNodes()
	for q := 0; q < 120; q++ {
		var from, to roadnet.NodeID
		if q%2 == 0 && len(plain.Trips) > 0 {
			r := plain.Trips[rng.Intn(len(plain.Trips))].Route
			if r.Empty() {
				continue
			}
			from, to = r.Source(), r.Dest()
		} else {
			from = roadnet.NodeID(rng.Intn(nn))
			to = roadnet.NodeID(rng.Intn(nn))
		}
		radius := []float64{0, 150, 300, 800}[q%4]
		want := plain.TripsBetween(from, to, radius)
		got := indexed.TripsBetween(from, to, radius)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d (%d→%d r=%.0f): indexed %d trips, scan %d", q, from, to, radius, len(got), len(want))
		}
	}
}

// TestFootmarksNearHourMatchesScan: the per-slot aggregate + boundary-filter
// assembly must equal a direct per-trip scan for arbitrary fractional hours
// and window widths (including degenerate ones).
func TestFootmarksNearHourMatchesScan(t *testing.T) {
	ds := corpus(t, 31)
	ds.EnableMiningIndex()

	scan := func(hour, window float64) map[Transition]int {
		freq := map[Transition]int{}
		for _, tr := range ds.Trips {
			if HourDist(tr.Depart.HourOfDay(), hour) > window {
				continue
			}
			RouteTransitions(tr.Route, func(tn Transition) { freq[tn]++ })
		}
		return freq
	}
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 100; q++ {
		hour := rng.Float64() * 24
		window := []float64{0, 0.25, 1, 2, 2.5, 6, 11.9, 12, 13}[q%9]
		got, ok := ds.FootmarksNearHour(hour, window)
		if !ok {
			t.Fatal("index reported disabled")
		}
		want := scan(hour, window)
		if len(want) == 0 {
			want = map[Transition]int{}
		}
		if len(got) == 0 {
			got = map[Transition]int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("hour=%v window=%v: %d transitions vs scan %d", hour, window, len(got), len(want))
		}
	}
}

// TestIngestUpdatesIndexes: trips added after EnableMiningIndex must appear
// in every index-backed query exactly as if they had been present at build
// time.
func TestIngestUpdatesIndexes(t *testing.T) {
	full := corpus(t, 41)
	half := corpus(t, 41)
	cut := len(half.Trips) / 2
	rest := append([]Trajectory(nil), half.Trips[cut:]...)
	half.Trips = half.Trips[:cut]
	half.sealed, half.base = false, 0 // re-seal at the cut for this test
	half.EnableMiningIndex()
	if seq := half.IngestTrips(rest); seq != 0 {
		t.Fatalf("first ingested seq = %d, want 0", seq)
	}
	full.EnableMiningIndex()

	if half.NumTrips() != full.NumTrips() {
		t.Fatalf("trip counts differ: %d vs %d", half.NumTrips(), full.NumTrips())
	}
	if got := len(half.IngestedTrips()); got != len(rest) {
		t.Fatalf("IngestedTrips = %d, want %d", got, len(rest))
	}
	if got := len(full.IngestedTrips()); got != 0 {
		t.Fatalf("build-time corpus reported %d ingested trips", got)
	}

	gc, go_, _ := full.TransitionTotals()
	hc, ho, _ := half.TransitionTotals()
	if !reflect.DeepEqual(gc, hc) || !reflect.DeepEqual(go_, ho) {
		t.Fatal("transition totals diverge between ingest and build-time indexing")
	}
	for hour := 0.0; hour < 24; hour += 1.7 {
		a, _ := full.FootmarksNearHour(hour, 2)
		b, _ := half.FootmarksNearHour(hour, 2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("footmarks at hour %v diverge", hour)
		}
	}
	for _, tr := range rest[:3] {
		if tr.Route.Empty() {
			continue
		}
		a := full.TripsBetween(tr.Route.Source(), tr.Route.Dest(), 300)
		b := half.TripsBetween(tr.Route.Source(), tr.Route.Dest(), 300)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("TripsBetween diverges for ingested OD %d→%d", tr.Route.Source(), tr.Route.Dest())
		}
	}
}

// TestIngestSeqContiguous: sequence numbers count the ingested stream, not
// the base corpus, and advance contiguously across batches.
func TestIngestSeqContiguous(t *testing.T) {
	ds := corpus(t, 51)
	ds.EnableMiningIndex()
	tr := ds.Trips[0]
	if seq := ds.IngestTrips([]Trajectory{tr, tr}); seq != 0 {
		t.Fatalf("first batch seq = %d, want 0", seq)
	}
	if seq := ds.IngestTrips([]Trajectory{tr}); seq != 2 {
		t.Fatalf("second batch seq = %d, want 2", seq)
	}
	if got := len(ds.IngestedTrips()); got != 3 {
		t.Fatalf("ingested = %d, want 3", got)
	}
}

// TestRestoreTripsSeqGap: replaying a stream with gaps (records lost to an
// absorbed append failure) must not let live ingestion reuse a surviving
// sequence number — a reused Seq would collide with the retained record and
// be silently dropped by the replay dedupe on the next boot.
func TestRestoreTripsSeqGap(t *testing.T) {
	ds := corpus(t, 61)
	ds.EnableMiningIndex()
	tr := ds.Trips[0]

	// Replay a stream where seq 0 was lost: only seqs 1 and 4 survive.
	ds.RestoreTrips([]Trajectory{tr, tr}, []int64{1, 4})
	if seq := ds.IngestTrips([]Trajectory{tr}); seq != 5 {
		t.Fatalf("post-replay ingest seq = %d, want 5 (past the highest survivor)", seq)
	}
	trips, seqs := ds.IngestedStream()
	if len(trips) != 3 || len(seqs) != 3 {
		t.Fatalf("stream = %d trips / %d seqs, want 3/3", len(trips), len(seqs))
	}
	for i, want := range []int64{1, 4, 5} {
		if seqs[i] != want {
			t.Fatalf("seqs = %v, want [1 4 5]", seqs)
		}
	}
}
