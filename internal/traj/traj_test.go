package traj

import (
	"math"
	"math/rand"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

func testGraph() *roadnet.Graph {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 10, 10
	cfg.Seed = 99
	return roadnet.Generate(cfg)
}

func TestNewPopulationDeterministic(t *testing.T) {
	g := testGraph()
	cfg := DefaultPopulationConfig()
	cfg.NumDrivers = 50
	d1 := NewPopulation(g, cfg)
	d2 := NewPopulation(g, cfg)
	if len(d1) != 50 || len(d2) != 50 {
		t.Fatalf("lens = %d, %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].Home != d2[i].Home || d1[i].Prefs != d2[i].Prefs {
			t.Fatalf("driver %d differs between runs", i)
		}
	}
	bbox := g.BBox()
	for _, d := range d1 {
		if !bbox.Contains(d.Home) {
			t.Errorf("driver home %v outside city bbox", d.Home)
		}
		if d.Radius <= 0 || d.TripNoise <= 0 {
			t.Errorf("driver %d has degenerate radius/noise", d.ID)
		}
	}
}

func TestNewPopulationArchetypesVary(t *testing.T) {
	g := testGraph()
	cfg := DefaultPopulationConfig()
	cfg.NumDrivers = 200
	drivers := NewPopulation(g, cfg)
	// At least two materially different preference profiles must exist.
	var minWT, maxWT = math.Inf(1), math.Inf(-1)
	for _, d := range drivers {
		minWT = math.Min(minWT, d.Prefs.WTime)
		maxWT = math.Max(maxWT, d.Prefs.WTime)
	}
	if maxWT-minWT < 0.2 {
		t.Errorf("population lacks preference diversity: WTime range [%v,%v]", minWT, maxWT)
	}
}

func TestPerceivedCostLatentFactors(t *testing.T) {
	g := testGraph()
	d := &Driver{
		Home:   g.Node(0).Pt,
		Radius: 1000,
		Prefs:  Preferences{WTime: 1, WLights: 2, WComfort: 1, WFamiliar: 0.5},
	}
	base := roadnet.Edge{From: 0, To: 1, Length: 500, Class: roadnet.Arterial, SpeedKmh: 60}
	lit := base
	lit.Lights = 1
	tm := routing.At(0, 10, 0)
	if d.PerceivedCost(g, &lit, tm) <= d.PerceivedCost(g, &base, tm) {
		t.Error("a traffic light should increase perceived cost")
	}
	local := base
	local.Class = roadnet.Local
	local.SpeedKmh = 60 // same speed: isolate comfort effect
	if d.PerceivedCost(g, &local, tm) <= d.PerceivedCost(g, &base, tm) {
		t.Error("local roads should feel costlier than arterials at equal speed")
	}
}

func TestRouteForNoiseFree(t *testing.T) {
	g := testGraph()
	drivers := NewPopulation(g, DefaultPopulationConfig())
	d := drivers[0]
	r1, err := d.RouteFor(g, 0, 55, routing.At(0, 9, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.RouteFor(g, 0, 55, routing.At(0, 9, 0), nil)
	if err != nil || !r1.Equal(r2) {
		t.Error("noise-free route should be deterministic")
	}
	if !r1.Valid(g) {
		t.Errorf("route %v invalid", r1)
	}
}

func TestRouteForNoiseVaries(t *testing.T) {
	g := testGraph()
	d := NewPopulation(g, DefaultPopulationConfig())[1]
	d.TripNoise = 0.5 // crank noise to force variation
	rng := rand.New(rand.NewSource(3))
	distinct := map[string]bool{}
	for i := 0; i < 20; i++ {
		r, err := d.RouteFor(g, 0, 87, routing.At(0, 9, 0), rng)
		if err != nil {
			t.Fatal(err)
		}
		distinct[r.String()] = true
	}
	if len(distinct) < 2 {
		t.Error("high trip noise should produce route variation")
	}
}

func TestTraceGeometryAndTimes(t *testing.T) {
	g := testGraph()
	d := NewPopulation(g, DefaultPopulationConfig())[0]
	r, err := d.RouteFor(g, 0, 44, routing.At(0, 9, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	tr := Trace(g, d, r, routing.At(0, 9, 0), DefaultGPSConfig(), rng)
	if len(tr.Samples) < 2 {
		t.Fatalf("too few samples: %d", len(tr.Samples))
	}
	// Timestamps must be non-decreasing and anchored at departure.
	if tr.Samples[0].T < routing.At(0, 9, 0) {
		t.Error("first sample before departure")
	}
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].T < tr.Samples[i-1].T {
			t.Error("timestamps must be non-decreasing")
		}
	}
	// Samples must hug the route geometry within a few sigma.
	pl := r.Polyline(g)
	for _, s := range tr.Samples {
		dist, _ := pl.DistTo(s.Pt)
		if dist > 6*DefaultGPSConfig().NoiseStdM {
			t.Errorf("sample %v is %f m from route", s.Pt, dist)
		}
	}
}

func TestTraceZeroLengthRoute(t *testing.T) {
	g := testGraph()
	d := NewPopulation(g, DefaultPopulationConfig())[0]
	r := roadnet.NewRoute(5)
	tr := Trace(g, d, r, 0, DefaultGPSConfig(), nil)
	if len(tr.Samples) != 1 {
		t.Errorf("samples = %d, want 1", len(tr.Samples))
	}
}

func TestMapMatchRecoversRoute(t *testing.T) {
	g := testGraph()
	d := NewPopulation(g, DefaultPopulationConfig())[0]
	rng := rand.New(rand.NewSource(9))
	ok, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
		if src == dst {
			continue
		}
		r, err := d.RouteFor(g, src, dst, routing.At(0, 10, 0), nil)
		if err != nil || r.Empty() {
			continue
		}
		tr := Trace(g, d, r, routing.At(0, 10, 0), DefaultGPSConfig(), rng)
		matched, err := MapMatch(g, tr.Samples)
		if err != nil {
			continue
		}
		total++
		if matched.Similarity(r) > 0.9 {
			ok++
		}
	}
	if total == 0 {
		t.Fatal("no trials executed")
	}
	if float64(ok)/float64(total) < 0.8 {
		t.Errorf("map matching recovered only %d/%d routes", ok, total)
	}
}

func TestMapMatchEmpty(t *testing.T) {
	g := testGraph()
	if _, err := MapMatch(g, nil); err == nil {
		t.Error("empty samples should error")
	}
	// Single stationary sample collapses to one node -> no edges -> error.
	s := []Sample{{Pt: g.Node(3).Pt}}
	if _, err := MapMatch(g, s); err == nil {
		t.Error("single-node match should error")
	}
}

func TestRandomODs(t *testing.T) {
	g := testGraph()
	rng := rand.New(rand.NewSource(2))
	ods, shortfall := RandomODs(g, 30, 1000, rng)
	if len(ods) != 30 || shortfall != 0 {
		t.Fatalf("got %d ODs (shortfall %d)", len(ods), shortfall)
	}
	seen := map[OD]bool{}
	for _, od := range ods {
		if seen[od] {
			t.Error("duplicate OD")
		}
		seen[od] = true
		if nodeDist(g, od.From, od.To) < 1000 {
			t.Error("OD below min distance")
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	g := testGraph()
	drivers := NewPopulation(g, PopulationConfig{NumDrivers: 40, Seed: 5, FracCommuter: 1})
	cfg := DatasetConfig{
		NumODs: 10, TripsPerOD: 8, ZipfSkew: 1, MinODDistM: 1000,
		PeakBias: 0.5, GPS: DefaultGPSConfig(), Seed: 6,
	}
	ds := GenerateDataset(g, drivers, cfg)
	if len(ds.Trips) < 40 {
		t.Fatalf("trips = %d, want >= 40", len(ds.Trips))
	}
	valid := 0
	for _, tr := range ds.Trips {
		if !tr.Route.Empty() && tr.Route.Valid(g) {
			valid++
		}
	}
	if float64(valid)/float64(len(ds.Trips)) < 0.95 {
		t.Errorf("only %d/%d trips have valid matched routes", valid, len(ds.Trips))
	}
	// Zipf skew: the most popular OD should have several times the trips of
	// the least popular.
	counts := map[OD]int{}
	for _, tr := range ds.Trips {
		if tr.Route.Empty() {
			continue
		}
		counts[OD{tr.Route.Source(), tr.Route.Dest()}]++
	}
	max, min := 0, 1<<30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 2*min {
		t.Errorf("expected Zipf skew: max=%d min=%d", max, min)
	}
}

func TestTripsBetween(t *testing.T) {
	g := testGraph()
	drivers := NewPopulation(g, PopulationConfig{NumDrivers: 20, Seed: 5, FracCommuter: 1})
	ds := GenerateDataset(g, drivers, DatasetConfig{
		NumODs: 5, TripsPerOD: 6, MinODDistM: 800, GPS: DefaultGPSConfig(), Seed: 8,
	})
	if len(ds.Trips) == 0 {
		t.Fatal("no trips")
	}
	first := ds.Trips[0].Route
	got := ds.TripsBetween(first.Source(), first.Dest(), 300)
	if len(got) == 0 {
		t.Error("TripsBetween should find the generating trips")
	}
	for _, tr := range got {
		if geo.Dist(g.Node(tr.Route.Source()).Pt, g.Node(first.Source()).Pt) > 300 {
			t.Error("returned trip outside radius")
		}
	}
}

func TestGroundTruthStable(t *testing.T) {
	g := testGraph()
	drivers := NewPopulation(g, DefaultPopulationConfig())
	ds := &Dataset{Graph: g, Drivers: drivers}
	r1, err := ds.GroundTruth(0, 77, routing.At(0, 8, 0), 50)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ds.GroundTruth(0, 77, routing.At(0, 8, 0), 50)
	if err != nil || !r1.Equal(r2) {
		t.Error("ground truth should be deterministic")
	}
	if !r1.Valid(g) {
		t.Errorf("ground truth %v invalid", r1)
	}
	if r1.Source() != 0 || r1.Dest() != 77 {
		t.Errorf("ground truth endpoints wrong: %v", r1)
	}
}
