// Package traj simulates the historical trajectory dataset the paper mines.
//
// The paper's premise (after Ceikute & Jensen [3]) is that experienced
// drivers optimise latent criteria — traffic lights, road class comfort,
// familiarity — that distance/time-optimising web services do not capture.
// This package reifies that premise: every simulated driver carries latent
// preference weights and drives the route optimal under *their* cost, with
// small per-trip noise. The population mode of those choices defines the
// measurable ground-truth "best" route that CrowdPlanner and all baselines
// are scored against.
package traj

import (
	"math"
	"math/rand"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// DriverID identifies a simulated driver.
type DriverID int32

// Preferences are a driver's latent route-choice weights. A driver's
// perceived cost of an edge is:
//
//	time(e,t)·WTime + length(e)/1000·WDist + lights(e)·WLights +
//	time(e,t)·classDiscomfort(e)·WComfort
//
// plus familiarity: edges far from the driver's home zone feel costlier.
type Preferences struct {
	WTime     float64 // weight on travel minutes
	WDist     float64 // weight on kilometers
	WLights   float64 // per-light penalty (minutes-equivalent)
	WComfort  float64 // multiplier on class discomfort
	WFamiliar float64 // penalty multiplier for unfamiliar areas
}

// Driver is a simulated driver with latent preferences and a home zone.
type Driver struct {
	ID        DriverID
	Home      geo.Point
	Radius    float64 // familiarity radius around home, meters
	Prefs     Preferences
	TripNoise float64 // stddev of multiplicative per-edge noise per trip
}

// classDiscomfort expresses how uncomfortable a road class feels per minute
// driven; experienced drivers prefer arterials over rat-runs.
func classDiscomfort(c roadnet.RoadClass) float64 {
	switch c {
	case roadnet.Local:
		return 0.5
	case roadnet.Collector:
		return 0.2
	case roadnet.Arterial:
		return 0.0
	case roadnet.Highway:
		return 0.05
	default:
		return 0.5
	}
}

// PerceivedCost returns the driver's subjective cost for an edge at time t.
// It is deterministic; per-trip noise is applied by RouteFor.
func (d *Driver) PerceivedCost(g *roadnet.Graph, e *roadnet.Edge, t routing.SimTime) float64 {
	tt := routing.TravelTimeCost.Cost(e, t)
	cost := d.Prefs.WTime*tt +
		d.Prefs.WDist*e.Length/1000 +
		d.Prefs.WLights*float64(e.Lights) +
		d.Prefs.WComfort*classDiscomfort(e.Class)*tt
	if d.Prefs.WFamiliar > 0 && d.Radius > 0 {
		mid := geo.Midpoint(g.Node(e.From).Pt, g.Node(e.To).Pt)
		dist := geo.Dist(mid, d.Home)
		if dist > d.Radius {
			// Unfamiliar area: cost inflates smoothly with distance beyond
			// the familiarity radius.
			cost *= 1 + d.Prefs.WFamiliar*math.Min(1.5, (dist-d.Radius)/d.Radius)
		}
	}
	return cost
}

// minCostPerMeter is the driver's admissible per-meter lower bound on
// PerceivedCost over g: the time term is at least WTime·(the travel-time
// model's per-meter bound for g), the distance term WDist/1000 per length
// meter scaled by the graph's length ratio, and the comfort and familiarity
// terms only ever add cost (the familiarity factor multiplies by >= 1). It
// lets the noise-free preferred-route search run goal-directed; per-trip
// noise is multiplicative with factors below 1, so the bound does not hold
// for noisy searches and they stay plain Dijkstra.
func (d *Driver) minCostPerMeter(g *roadnet.Graph) float64 {
	return d.Prefs.WTime*routing.TravelTimeCost.MinCostPerMeter(g) +
		d.Prefs.WDist/1000*g.MinLengthRatio()
}

// RouteFor returns the route this driver would take from src to dst at time
// t. rng supplies the per-trip noise; pass nil for the noise-free preferred
// route.
func (d *Driver) RouteFor(g *roadnet.Graph, src, dst roadnet.NodeID, t routing.SimTime, rng *rand.Rand) (roadnet.Route, error) {
	noisy := rng != nil && d.TripNoise > 0
	fn := func(e *roadnet.Edge, tm routing.SimTime) float64 {
		c := d.PerceivedCost(g, e, tm)
		if noisy {
			// Multiplicative noise keeps costs positive. The noise is drawn
			// per edge per call, modelling day-to-day whim.
			c *= math.Exp(rng.NormFloat64() * d.TripNoise)
		}
		return c
	}
	cost := routing.CostFn(fn)
	if !noisy {
		cost = routing.BoundedCostFn(fn, d.minCostPerMeter(g))
	}
	r, _, err := routing.AStar(g, src, dst, cost, t)
	return r, err
}

// PopulationConfig configures driver-population generation.
type PopulationConfig struct {
	NumDrivers int
	Seed       int64
	// Archetype mixture weights; they need not sum to 1 (normalized).
	FracCommuter float64 // time-focused, familiar with arterials
	FracRelaxed  float64 // comfort-focused, avoids lights
	FracEconomic float64 // distance-focused
}

// DefaultPopulationConfig returns a balanced population of 300 drivers.
func DefaultPopulationConfig() PopulationConfig {
	return PopulationConfig{
		NumDrivers:   300,
		Seed:         7,
		FracCommuter: 0.5,
		FracRelaxed:  0.3,
		FracEconomic: 0.2,
	}
}

// NewPopulation generates drivers with homes distributed over the network
// bounding box and archetype-based latent preferences with individual
// variation.
func NewPopulation(g *roadnet.Graph, cfg PopulationConfig) []*Driver {
	rng := rand.New(rand.NewSource(cfg.Seed))
	bbox := g.BBox()
	total := cfg.FracCommuter + cfg.FracRelaxed + cfg.FracEconomic
	if total <= 0 {
		total = 1
		cfg.FracCommuter = 1
	}
	drivers := make([]*Driver, cfg.NumDrivers)
	for i := range drivers {
		home := geo.Point{
			X: bbox.Min.X + rng.Float64()*bbox.Width(),
			Y: bbox.Min.Y + rng.Float64()*bbox.Height(),
		}
		u := rng.Float64() * total
		var p Preferences
		jitter := func(base, spread float64) float64 {
			return math.Max(0, base+rng.NormFloat64()*spread)
		}
		switch {
		case u < cfg.FracCommuter:
			p = Preferences{
				WTime:     jitter(1.0, 0.15),
				WDist:     jitter(0.1, 0.05),
				WLights:   jitter(0.8, 0.3),
				WComfort:  jitter(0.6, 0.2),
				WFamiliar: jitter(0.3, 0.1),
			}
		case u < cfg.FracCommuter+cfg.FracRelaxed:
			p = Preferences{
				WTime:     jitter(0.5, 0.1),
				WDist:     jitter(0.1, 0.05),
				WLights:   jitter(1.6, 0.4),
				WComfort:  jitter(1.2, 0.3),
				WFamiliar: jitter(0.5, 0.15),
			}
		default:
			p = Preferences{
				WTime:     jitter(0.3, 0.1),
				WDist:     jitter(1.2, 0.2),
				WLights:   jitter(0.3, 0.15),
				WComfort:  jitter(0.2, 0.1),
				WFamiliar: jitter(0.2, 0.1),
			}
		}
		drivers[i] = &Driver{
			ID:        DriverID(i),
			Home:      home,
			Radius:    1500 + rng.Float64()*2500,
			Prefs:     p,
			TripNoise: 0.05 + rng.Float64()*0.1,
		}
	}
	return drivers
}
