package traj

import (
	"math"
	"sort"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// The mining index turns the trajectory corpus from a frozen slice the
// popular-route miners re-scan on every cache miss into a live, queryable
// store: an endpoint grid index answers TripsBetween from a handful of
// buckets, and per-time-slot footmark frequency graphs answer the MPR/MFP
// aggregate queries without touching individual trips at all. The same
// pattern that gave truth.DB.Near its grid-bucket speedup (PR 3) applied to
// the corpus itself.
//
// Concurrency: the index supports live ingestion (IngestTrips) concurrent
// with mining queries. The Dataset's RWMutex guards the trip slice and the
// bucket maps; the frequency graphs are copy-on-write — an ingest batch
// clones the graphs it touches and swaps the pointers, so a miner that
// grabbed a graph under the read lock can keep using it lock-free.
//
// Determinism: every query returns exactly what the corresponding linear
// scan over the corpus returns — same trips in the same (corpus) order, same
// frequency-map contents — which is what lets the miners pin bit-identical
// routes against their scan baselines.

// Transition is one observed hop between consecutive route nodes — the
// "footmark" unit of the frequency graphs shared with package popular.
type Transition struct {
	From, To roadnet.NodeID
}

// RouteTransitions visits the consecutive node pairs of a route — the one
// definition shared by the index and the miners' scan baselines.
func RouteTransitions(r roadnet.Route, fn func(t Transition)) {
	for i := 1; i < len(r.Nodes); i++ {
		fn(Transition{From: r.Nodes[i-1], To: r.Nodes[i]})
	}
}

// footmarkSlots is the granularity of the per-time-slot frequency graphs:
// 15-minute buckets over the day. MFP's window filter is continuous, so
// queries combine whole-slot aggregates for fully covered slots with an
// exact per-trip filter on the (at most two) boundary slots — finer slots
// shrink the boundary fraction (the only per-trip work left) at the cost of
// merging a few more precomputed maps, which is far cheaper.
const footmarkSlots = 96

// slotHours is the width of one footmark slot in hours.
const slotHours = 24.0 / footmarkSlots

// footmarkGraph is an immutable transition-frequency snapshot. Once
// published on the index it is never mutated; ingestion replaces it.
type footmarkGraph struct {
	counts map[Transition]int
	out    map[roadnet.NodeID]int // outgoing-transition totals per node
}

func newFootmarkGraph() *footmarkGraph {
	return &footmarkGraph{counts: map[Transition]int{}, out: map[roadnet.NodeID]int{}}
}

// clone deep-copies the graph so an ingest batch can extend it without
// disturbing readers holding the old pointer.
func (f *footmarkGraph) clone() *footmarkGraph {
	c := &footmarkGraph{
		counts: make(map[Transition]int, len(f.counts)),
		out:    make(map[roadnet.NodeID]int, len(f.out)),
	}
	//cplint:ordered-irrelevant -- map-to-map copy; key-addressed writes have no observable order
	for k, v := range f.counts {
		c.counts[k] = v
	}
	//cplint:ordered-irrelevant -- map-to-map copy; key-addressed writes have no observable order
	for k, v := range f.out {
		c.out[k] = v
	}
	return c
}

func (f *footmarkGraph) add(r roadnet.Route) {
	RouteTransitions(r, func(t Transition) {
		f.counts[t]++
		f.out[t.From]++
	})
}

// cellCoord addresses one grid cell along one axis pair by integer
// coordinates (floor division, negative-safe) — the unbounded-grid trick of
// truth.cellKey, since trip endpoints follow the road network, which the
// index does not need to know the extent of.
type cellCoord struct{ cx, cy int32 }

// cellKey buckets a trip by the grid cells of *both* route endpoints.
// TripsBetween filters on both endpoints, so keying on the pair makes the
// candidate set essentially the match set; keying on the source alone would
// hand back everything leaving the query's neighbourhood (in a dense corpus
// that is a large fraction of all trips) only to discard it on the
// destination filter.
type cellKey struct{ src, dst cellCoord }

// miningIndex is the per-dataset index state. All fields are guarded by the
// owning Dataset's mutex except the footmark graphs, which are
// copy-on-write (see above).
type miningIndex struct {
	cell float64 // endpoint bucket edge length, meters; immutable
	//cplint:guardedby Dataset.mu
	endpoints map[cellKey][]int // trip indices by endpoint-pair cell, ascending

	// The graph *pointers* are guarded like everything else; the graphs they
	// point at are immutable snapshots, safe to keep using after release.
	//cplint:guardedby Dataset.mu
	global *footmarkGraph // every trip (MPR's transfer network)
	//cplint:guardedby Dataset.mu
	slotTrips [footmarkSlots][]int // trip indices by depart-hour slot
	//cplint:guardedby Dataset.mu
	slots [footmarkSlots]*footmarkGraph // per-slot aggregates (MFP)
}

// defaultIndexCellM sizes endpoint buckets to the LDR match radius, so a
// radius query touches ~3 cells per endpoint axis (81 bucket keys total,
// most of them empty).
const defaultIndexCellM = 300

func newMiningIndex(cell float64) *miningIndex {
	if cell <= 0 {
		cell = defaultIndexCellM
	}
	idx := &miningIndex{cell: cell, endpoints: map[cellKey][]int{}, global: newFootmarkGraph()}
	for s := range idx.slots {
		idx.slots[s] = newFootmarkGraph()
	}
	return idx
}

func (idx *miningIndex) coordOf(p geo.Point) cellCoord {
	return cellCoord{
		cx: int32(math.Floor(p.X / idx.cell)),
		cy: int32(math.Floor(p.Y / idx.cell)),
	}
}

// tripCell is the bucket key of a route: the cell pair of its endpoints.
func (idx *miningIndex) tripCell(g *roadnet.Graph, r roadnet.Route) cellKey {
	return cellKey{
		src: idx.coordOf(g.Node(r.Source()).Pt),
		dst: idx.coordOf(g.Node(r.Dest()).Pt),
	}
}

// departSlot maps a departure hour-of-day to its footmark slot.
func departSlot(hour float64) int {
	s := int(hour / slotHours)
	if s < 0 {
		s = 0
	}
	if s >= footmarkSlots {
		s = footmarkSlots - 1
	}
	return s
}

// addTrip indexes trip i. For ingestion the footmark graphs must already
// have been cloned for this batch (addBatch handles that); at build time the
// fresh graphs are mutated in place.
func (idx *miningIndex) addTrip(g *roadnet.Graph, i int, tr *Trajectory) {
	if tr.Route.Empty() {
		// Unmatched trips contribute no footmarks and no endpoints, exactly
		// as the linear scans skip them.
		return
	}
	ck := idx.tripCell(g, tr.Route)
	idx.endpoints[ck] = append(idx.endpoints[ck], i)
	idx.global.add(tr.Route)
	s := departSlot(tr.Depart.HourOfDay())
	idx.slotTrips[s] = append(idx.slotTrips[s], i)
	idx.slots[s].add(tr.Route)
}

// addBatch indexes newly ingested trips [start, start+len(trips)) under
// copy-on-write: the global graph and every touched slot graph are cloned
// once per batch, extended, and swapped in.
func (idx *miningIndex) addBatch(g *roadnet.Graph, start int, trips []Trajectory) {
	global := idx.global.clone()
	cloned := map[int]*footmarkGraph{}
	for i := range trips {
		tr := &trips[i]
		if tr.Route.Empty() {
			continue
		}
		ck := idx.tripCell(g, tr.Route)
		idx.endpoints[ck] = append(idx.endpoints[ck], start+i)
		global.add(tr.Route)
		s := departSlot(tr.Depart.HourOfDay())
		idx.slotTrips[s] = append(idx.slotTrips[s], start+i)
		fg, ok := cloned[s]
		if !ok {
			fg = idx.slots[s].clone()
			cloned[s] = fg
		}
		fg.add(tr.Route)
	}
	idx.global = global
	//cplint:ordered-irrelevant -- each slot pointer is swapped independently under its own key
	for s, fg := range cloned {
		idx.slots[s] = fg
	}
}

// HourDist is the circular distance in hours between two hours-of-day —
// the one definition shared by the index's boundary-slot filter and the
// miners' window filters, so the two can never drift apart.
func HourDist(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d > 12 {
		d = 24 - d
	}
	return d
}

// slotCoverage classifies footmark slot s (hours [s, s+1)·slotHours)
// against the circular window of half-width w around hour: slotFull means
// every departure in the slot is inside the window, slotPartial means some
// may be, slotOutside means none is.
type slotCover int

const (
	slotOutside slotCover = iota
	slotPartial
	slotFull
)

func slotCoverage(s int, hour, w float64) slotCover {
	if w >= 12 {
		return slotFull // circular distance never exceeds 12
	}
	lo, hi := float64(s)*slotHours, float64(s+1)*slotHours
	d0, d1 := HourDist(lo, hour), HourDist(hi, hour)
	// Minimum distance over [lo, hi]: zero when the query hour lies inside
	// the slot (mod 24), otherwise attained at an endpoint.
	minD := math.Min(d0, d1)
	inSlot := hour >= lo && hour <= hi
	if !inSlot {
		// The day is circular; hour==hour+24 aliases only at the seam, and
		// slots never straddle it, so the plain containment test above is
		// exact.
		if minD > w {
			return slotOutside
		}
	}
	// Maximum distance over [lo, hi]: attained at an endpoint unless the
	// antipode hour+12 lies strictly inside the slot, where it peaks at 12.
	anti := math.Mod(hour+12, 24)
	if anti > lo && anti < hi {
		return slotPartial // max distance is 12 > w
	}
	if math.Max(d0, d1) <= w {
		return slotFull
	}
	return slotPartial
}

// ---- Dataset query/ingestion surface ----

// EnableMiningIndex builds the corpus indexes over the current trips: the
// endpoint grid behind TripsBetween and the footmark frequency graphs behind
// the MPR/MFP aggregate queries. It also seals the ingestion base: trips
// present now belong to the immutable generated world; trips added later via
// IngestTrips are the live stream (and what a storage backend persists).
// Datasets without the index keep the linear-scan behaviour — the miners'
// benchmark baseline.
func (ds *Dataset) EnableMiningIndex() {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.sealBaseLocked()
	idx := newMiningIndex(defaultIndexCellM)
	for i := range ds.Trips {
		idx.addTrip(ds.Graph, i, &ds.Trips[i])
	}
	ds.idx = idx
}

// MiningIndexed reports whether the mining index is enabled.
func (ds *Dataset) MiningIndexed() bool {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.idx != nil
}

// sealBaseLocked pins the boundary between the generated corpus and the
// ingested stream. Idempotent; caller holds ds.mu.
func (ds *Dataset) sealBaseLocked() {
	if !ds.sealed {
		ds.sealed = true
		ds.base = len(ds.Trips)
	}
}

// IngestTrips appends trips to the corpus and updates the mining indexes
// incrementally (copy-on-write for the frequency graphs, so concurrent
// miners are never blocked mid-query). It returns the ingestion sequence
// number of the first appended trip (the batch gets contiguous numbers) —
// stable identifiers the storage layer uses to replay the stream
// idempotently. Validation is the caller's job (core.System.IngestTrips
// checks route connectivity against the graph).
func (ds *Dataset) IngestTrips(trips []Trajectory) int64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	first := ds.nextSeq
	for range trips {
		ds.ingSeqs = append(ds.ingSeqs, ds.nextSeq)
		ds.nextSeq++
	}
	ds.appendLocked(trips)
	return first
}

// RestoreTrips re-enters a replayed ingestion stream with its original
// sequence numbers (one per trip, ascending) and advances the next-sequence
// counter past the highest, so live ingestion after a replay never reuses a
// number — even when the replayed stream has gaps from records lost to an
// absorbed append failure. Boot-time only; seqs and trips must be the same
// length.
func (ds *Dataset) RestoreTrips(trips []Trajectory, seqs []int64) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.ingSeqs = append(ds.ingSeqs, seqs...)
	for _, s := range seqs {
		if s >= ds.nextSeq {
			ds.nextSeq = s + 1
		}
	}
	ds.appendLocked(trips)
}

// appendLocked seals the base, appends the trips, and extends the indexes.
// Caller holds ds.mu and has recorded the trips' sequence numbers.
func (ds *Dataset) appendLocked(trips []Trajectory) {
	ds.sealBaseLocked()
	start := len(ds.Trips)
	ds.Trips = append(ds.Trips, trips...)
	if ds.idx != nil {
		ds.idx.addBatch(ds.Graph, start, ds.Trips[start:])
	}
}

// NumTrips returns the current corpus size (generated plus ingested).
func (ds *Dataset) NumTrips() int {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return len(ds.Trips)
}

// IngestedTrips returns a copy of the trips ingested after the base corpus
// was sealed, in ingestion order.
func (ds *Dataset) IngestedTrips() []Trajectory {
	trips, _ := ds.IngestedStream()
	return trips
}

// IngestedStream returns the ingested trips together with their durable
// sequence numbers — what a snapshot persists. The numbers are the ones the
// trips were first logged under (replayed trips keep theirs), so a snapshot
// and a stale WAL record of the same trip always agree and the replay
// dedupe stays sound.
func (ds *Dataset) IngestedStream() ([]Trajectory, []int64) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if !ds.sealed || ds.base >= len(ds.Trips) {
		return nil, nil
	}
	trips := make([]Trajectory, len(ds.Trips)-ds.base)
	copy(trips, ds.Trips[ds.base:])
	seqs := make([]int64, len(ds.ingSeqs))
	copy(seqs, ds.ingSeqs)
	return trips, seqs
}

// ForEachTrip visits every trip in corpus order under the read lock — the
// safe iteration primitive for the miners' linear-scan baselines while
// ingestion may be running.
func (ds *Dataset) ForEachTrip(fn func(tr *Trajectory)) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	for i := range ds.Trips {
		fn(&ds.Trips[i])
	}
}

// TransitionTotals returns the corpus-wide transition counts and per-node
// outgoing totals — MPR's transfer network — from the index. ok is false
// when the index is not enabled (callers fall back to scanning). The maps
// are immutable snapshots: callers must not mutate them, and may keep using
// them after the call (ingestion publishes fresh maps instead of touching
// these).
func (ds *Dataset) TransitionTotals() (counts map[Transition]int, out map[roadnet.NodeID]int, ok bool) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if ds.idx == nil {
		return nil, nil, false
	}
	return ds.idx.global.counts, ds.idx.global.out, true
}

// FootmarksNearHour returns the transition-frequency graph of trips whose
// departure hour is within window hours (circularly) of hour — MFP's
// time-period footmark graph. ok is false when the index is not enabled.
// The result is freshly allocated and owned by the caller; its contents are
// bit-identical to a linear scan applying the same hourDist filter. Fully
// covered hour slots contribute their precomputed aggregates; only the
// boundary slots are filtered trip by trip.
func (ds *Dataset) FootmarksNearHour(hour, window float64) (map[Transition]int, bool) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if ds.idx == nil {
		return nil, false
	}
	freq := map[Transition]int{}
	for s := 0; s < footmarkSlots; s++ {
		switch slotCoverage(s, hour, window) {
		case slotOutside:
		case slotFull:
			//cplint:ordered-irrelevant -- commutative += accumulation into a key-addressed map
			for t, c := range ds.idx.slots[s].counts {
				freq[t] += c
			}
		case slotPartial:
			for _, i := range ds.idx.slotTrips[s] {
				tr := &ds.Trips[i]
				if HourDist(tr.Depart.HourOfDay(), hour) > window {
					continue
				}
				RouteTransitions(tr.Route, func(t Transition) { freq[t]++ })
			}
		}
	}
	return freq, true
}

// tripsBetweenIndexed answers TripsBetween from the endpoint-pair grid:
// only the buckets whose source cell overlaps [from ± radius] and whose
// destination cell overlaps [to ± radius] are visited, then the exact
// distance filter runs on the survivors and the trip indices are sorted so
// the result order matches the linear scan's corpus order exactly. Caller
// holds ds.mu (read).
func (ds *Dataset) tripsBetweenIndexed(from, to roadnet.NodeID, radius float64) []Trajectory {
	fp := ds.Graph.Node(from).Pt
	tp := ds.Graph.Node(to).Pt
	r := math.Max(radius, 0)
	slo := ds.idx.coordOf(geo.Point{X: fp.X - r, Y: fp.Y - r})
	shi := ds.idx.coordOf(geo.Point{X: fp.X + r, Y: fp.Y + r})
	dlo := ds.idx.coordOf(geo.Point{X: tp.X - r, Y: tp.Y - r})
	dhi := ds.idx.coordOf(geo.Point{X: tp.X + r, Y: tp.Y + r})
	var matched []int
	for scy := slo.cy; scy <= shi.cy; scy++ {
		for scx := slo.cx; scx <= shi.cx; scx++ {
			for dcy := dlo.cy; dcy <= dhi.cy; dcy++ {
				for dcx := dlo.cx; dcx <= dhi.cx; dcx++ {
					key := cellKey{src: cellCoord{scx, scy}, dst: cellCoord{dcx, dcy}}
					for _, i := range ds.idx.endpoints[key] {
						tr := &ds.Trips[i]
						s := ds.Graph.Node(tr.Route.Source()).Pt
						d := ds.Graph.Node(tr.Route.Dest()).Pt
						if distOK(s, fp, radius) && distOK(d, tp, radius) {
							matched = append(matched, i)
						}
					}
				}
			}
		}
	}
	if len(matched) == 0 {
		return nil // the scan's no-match shape
	}
	sort.Ints(matched) // corpus order, matching the linear scan
	out := make([]Trajectory, 0, len(matched))
	for _, i := range matched {
		out = append(out, ds.Trips[i])
	}
	return out
}
