package traj

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// OD is an origin-destination pair.
type OD struct {
	From roadnet.NodeID
	To   roadnet.NodeID
}

// Dataset is a corpus of historical trajectories over one road network,
// the substitute for the paper's "large-scale real trajectory dataset".
// Unlike the paper's frozen dataset it can grow at runtime: IngestTrips
// appends to the corpus and keeps the mining indexes (see index.go) current,
// concurrently with miner queries.
//
// Direct access to the Trips slice is safe only before serving starts (or on
// datasets that never ingest); concurrent readers go through NumTrips,
// ForEachTrip, TripsBetween and the index query methods, which take the
// dataset's lock.
type Dataset struct {
	Graph   *roadnet.Graph
	Drivers []*Driver
	Trips   []Trajectory

	// ODShortfall counts requested ODs that could not be materialized under
	// the MinODDistM constraint (see RandomODs); the trip budget is
	// redistributed over the realized ODs, so the corpus size still matches
	// NumODs*TripsPerOD.
	ODShortfall int

	mu sync.RWMutex
	//cplint:guardedby mu
	idx *miningIndex
	//cplint:guardedby mu
	sealed bool
	//cplint:guardedby mu
	base int // trips[:base] = generated world; trips[base:] = ingested
	// Ingestion-stream bookkeeping: ingSeqs[i] is the durable sequence
	// number of trips[base+i], and nextSeq the number the next ingested trip
	// gets. Seqs are NOT derivable from slice position — a crash can lose
	// the tail of the persisted stream (an absorbed append failure), after
	// which replay leaves gaps that live ingestion must not re-fill, or a
	// stale Seq would collide with a retained record and be dropped by the
	// replay dedupe.
	//cplint:guardedby mu
	ingSeqs []int64
	//cplint:guardedby mu
	nextSeq int64
}

// DatasetConfig controls synthetic corpus generation.
type DatasetConfig struct {
	NumODs     int     // distinct OD pairs in the corpus
	TripsPerOD int     // average trips per OD pair (Zipf-skewed around this)
	ZipfSkew   float64 // >0 skews trips towards popular ODs; 0 = uniform
	MinODDistM float64 // minimum straight-line OD distance
	PeakBias   float64 // 0..1 fraction of departures in rush hours
	GPS        GPSConfig
	Seed       int64
}

// DefaultDatasetConfig produces a moderately dense corpus.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{
		NumODs:     60,
		TripsPerOD: 25,
		ZipfSkew:   1.0,
		MinODDistM: 1500,
		PeakBias:   0.6,
		GPS:        DefaultGPSConfig(),
		Seed:       21,
	}
}

// RandomODs draws distinct OD node pairs at least minDist apart. The graph
// may be too small or too dense to satisfy the constraint n times before the
// attempt cap trips; rather than silently under-delivering, the shortfall
// (n minus the ODs actually drawn) is returned so callers can account for
// the missing pairs.
func RandomODs(g *roadnet.Graph, n int, minDist float64, rng *rand.Rand) (ods []OD, shortfall int) {
	seen := map[OD]bool{}
	attempts := 0
	for len(ods) < n && attempts < n*200 {
		attempts++
		a := roadnet.NodeID(rng.Intn(g.NumNodes()))
		b := roadnet.NodeID(rng.Intn(g.NumNodes()))
		if a == b {
			continue
		}
		if dist := nodeDist(g, a, b); dist < minDist {
			continue
		}
		od := OD{From: a, To: b}
		if seen[od] {
			continue
		}
		seen[od] = true
		ods = append(ods, od)
	}
	return ods, n - len(ods)
}

func nodeDist(g *roadnet.Graph, a, b roadnet.NodeID) float64 {
	pa, pb := g.Node(a).Pt, g.Node(b).Pt
	dx, dy := pa.X-pb.X, pa.Y-pb.Y
	return math.Hypot(dx, dy)
}

// randomDepart draws a departure time: rush hour with probability peakBias,
// otherwise uniform over the day. Weekdays only, matching commuter data.
func randomDepart(rng *rand.Rand, peakBias float64) routing.SimTime {
	day := rng.Intn(5)
	if rng.Float64() < peakBias {
		// Morning or evening rush, gaussian around the peak.
		var center float64
		if rng.Intn(2) == 0 {
			center = 8
		} else {
			center = 17.5
		}
		h := center + rng.NormFloat64()*0.75
		if h < 0 {
			h = 0
		}
		if h > 23.5 {
			h = 23.5
		}
		return routing.At(day, 0, 0).Add(h * 60)
	}
	return routing.At(day, 0, 0).Add(rng.Float64() * 24 * 60)
}

// GenerateDataset simulates the trajectory corpus: ODs are drawn, trips per
// OD follow a Zipf-like skew, each trip is driven by a random driver under
// their latent preferences with per-trip noise, then recorded as noisy GPS
// and map-matched back onto the network.
func GenerateDataset(g *roadnet.Graph, drivers []*Driver, cfg DatasetConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ods, shortfall := RandomODs(g, cfg.NumODs, cfg.MinODDistM, rng)
	ds := &Dataset{Graph: g, Drivers: drivers, ODShortfall: shortfall}
	if len(ods) == 0 {
		ds.sealed, ds.base = true, 0
		return ds
	}

	// Zipf-like trip counts: OD i gets weight 1/(i+1)^skew. The full trip
	// budget (NumODs*TripsPerOD, even when RandomODs under-delivered ODs) is
	// apportioned by largest remainder, so the allocations sum to the budget
	// exactly — per-OD rounding used to drift the realized corpus away from
	// the configured size.
	weights := make([]float64, len(ods))
	var wsum float64
	for i := range ods {
		w := 1.0
		if cfg.ZipfSkew > 0 {
			w = 1 / math.Pow(float64(i+1), cfg.ZipfSkew)
		}
		weights[i] = w
		wsum += w
	}
	totalTrips := cfg.TripsPerOD * cfg.NumODs
	for i, nTrips := range apportion(totalTrips, weights, wsum) {
		od := ods[i]
		for k := 0; k < nTrips; k++ {
			d := drivers[rng.Intn(len(drivers))]
			depart := randomDepart(rng, cfg.PeakBias)
			route, err := d.RouteFor(g, od.From, od.To, depart, rng)
			if err != nil {
				continue
			}
			tr := Trace(g, d, route, depart, cfg.GPS, rng)
			matched, err := MapMatch(g, tr.Samples)
			if err == nil {
				tr.Route = matched
			}
			ds.Trips = append(ds.Trips, tr)
		}
	}
	ds.sealed, ds.base = true, len(ds.Trips)
	return ds
}

// apportion splits total into integer shares proportional to weights using
// the largest-remainder method: floors first, then the leftover units go to
// the largest fractional remainders (ties to the lower index, so the split
// is deterministic). The shares always sum to total.
func apportion(total int, weights []float64, wsum float64) []int {
	shares := make([]int, len(weights))
	type frac struct {
		i int
		r float64
	}
	rem := make([]frac, 0, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / wsum
		shares[i] = int(math.Floor(exact))
		assigned += shares[i]
		rem = append(rem, frac{i: i, r: exact - math.Floor(exact)})
	}
	sort.Slice(rem, func(a, b int) bool {
		if rem[a].r != rem[b].r {
			return rem[a].r > rem[b].r
		}
		return rem[a].i < rem[b].i
	})
	for k := 0; k < total-assigned; k++ {
		shares[rem[k%len(rem)].i]++
	}
	return shares
}

// TripsBetween returns the trips whose matched route starts within radius of
// from and ends within radius of to, in corpus order. Radius 0 requires
// exact endpoints. With the mining index enabled only the endpoint buckets
// overlapping the query radius are visited; the result is identical to the
// full scan either way.
func (ds *Dataset) TripsBetween(from, to roadnet.NodeID, radius float64) []Trajectory {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if ds.idx != nil {
		return ds.tripsBetweenIndexed(from, to, radius)
	}
	var out []Trajectory
	fp := ds.Graph.Node(from).Pt
	tp := ds.Graph.Node(to).Pt
	for _, tr := range ds.Trips {
		if tr.Route.Empty() {
			continue
		}
		s := ds.Graph.Node(tr.Route.Source()).Pt
		d := ds.Graph.Node(tr.Route.Dest()).Pt
		if distOK(s, fp, radius) && distOK(d, tp, radius) {
			out = append(out, tr)
		}
	}
	return out
}

func distOK(a, b geo.Point, radius float64) bool {
	if radius <= 0 {
		return a == b
	}
	return geo.Dist(a, b) <= radius
}

// GroundTruth returns the population-preferred route for the OD at time t:
// every driver's noise-free preferred route is computed and the most common
// choice (the mode) wins. sampleDrivers caps the poll size; 0 polls everyone.
// This is the measurable stand-in for "the route most experienced drivers
// prefer" that all recommenders are scored against.
//
// The capped poll is a deterministic subsample keyed on driver IDs (see
// sampleByID), not a prefix of the Drivers slice: drivers[:sampleDrivers]
// always polled the same fixed drivers, biasing the "population" mode toward
// whoever happened to be generated first and making the verdict depend on
// slice order.
func (ds *Dataset) GroundTruth(from, to roadnet.NodeID, t routing.SimTime, sampleDrivers int) (roadnet.Route, error) {
	drivers := ds.Drivers
	if sampleDrivers > 0 && sampleDrivers < len(drivers) {
		drivers = sampleByID(drivers, sampleDrivers)
	}
	type bucket struct {
		route roadnet.Route
		votes int
	}
	counts := map[string]*bucket{}
	for _, d := range drivers {
		r, err := d.RouteFor(ds.Graph, from, to, t, nil)
		if err != nil {
			continue
		}
		k := r.String()
		if b, ok := counts[k]; ok {
			b.votes++
		} else {
			counts[k] = &bucket{route: r, votes: 1}
		}
	}
	if len(counts) == 0 {
		return roadnet.Route{}, routing.ErrNoRoute
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic tie-break
	best := counts[keys[0]]
	for _, k := range keys[1:] {
		if counts[k].votes > best.votes {
			best = counts[k]
		}
	}
	return best.route, nil
}

// sampleByID picks k drivers deterministically by ranking them on a hash of
// their ID (splitmix64 finalizer over a fixed salt). The selection is a
// function of the IDs alone — shuffling the Drivers slice, or regenerating
// the population in a different order, polls the same drivers — and it
// spreads the poll across the whole population instead of a fixed prefix.
func sampleByID(drivers []*Driver, k int) []*Driver {
	type scored struct {
		h uint64
		d *Driver
	}
	all := make([]scored, len(drivers))
	for i, d := range drivers {
		z := uint64(d.ID) + 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		all[i] = scored{h: z ^ (z >> 31), d: d}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].h != all[b].h {
			return all[a].h < all[b].h
		}
		return all[a].d.ID < all[b].d.ID
	})
	out := make([]*Driver, k)
	for i := range out {
		out[i] = all[i].d
	}
	return out
}
