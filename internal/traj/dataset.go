package traj

import (
	"math"
	"math/rand"
	"sort"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// OD is an origin-destination pair.
type OD struct {
	From roadnet.NodeID
	To   roadnet.NodeID
}

// Dataset is a corpus of historical trajectories over one road network,
// the substitute for the paper's "large-scale real trajectory dataset".
type Dataset struct {
	Graph   *roadnet.Graph
	Drivers []*Driver
	Trips   []Trajectory
}

// DatasetConfig controls synthetic corpus generation.
type DatasetConfig struct {
	NumODs     int     // distinct OD pairs in the corpus
	TripsPerOD int     // average trips per OD pair (Zipf-skewed around this)
	ZipfSkew   float64 // >0 skews trips towards popular ODs; 0 = uniform
	MinODDistM float64 // minimum straight-line OD distance
	PeakBias   float64 // 0..1 fraction of departures in rush hours
	GPS        GPSConfig
	Seed       int64
}

// DefaultDatasetConfig produces a moderately dense corpus.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{
		NumODs:     60,
		TripsPerOD: 25,
		ZipfSkew:   1.0,
		MinODDistM: 1500,
		PeakBias:   0.6,
		GPS:        DefaultGPSConfig(),
		Seed:       21,
	}
}

// RandomODs draws distinct OD node pairs at least minDist apart.
func RandomODs(g *roadnet.Graph, n int, minDist float64, rng *rand.Rand) []OD {
	var ods []OD
	seen := map[OD]bool{}
	attempts := 0
	for len(ods) < n && attempts < n*200 {
		attempts++
		a := roadnet.NodeID(rng.Intn(g.NumNodes()))
		b := roadnet.NodeID(rng.Intn(g.NumNodes()))
		if a == b {
			continue
		}
		if dist := nodeDist(g, a, b); dist < minDist {
			continue
		}
		od := OD{From: a, To: b}
		if seen[od] {
			continue
		}
		seen[od] = true
		ods = append(ods, od)
	}
	return ods
}

func nodeDist(g *roadnet.Graph, a, b roadnet.NodeID) float64 {
	pa, pb := g.Node(a).Pt, g.Node(b).Pt
	dx, dy := pa.X-pb.X, pa.Y-pb.Y
	return math.Hypot(dx, dy)
}

// randomDepart draws a departure time: rush hour with probability peakBias,
// otherwise uniform over the day. Weekdays only, matching commuter data.
func randomDepart(rng *rand.Rand, peakBias float64) routing.SimTime {
	day := rng.Intn(5)
	if rng.Float64() < peakBias {
		// Morning or evening rush, gaussian around the peak.
		var center float64
		if rng.Intn(2) == 0 {
			center = 8
		} else {
			center = 17.5
		}
		h := center + rng.NormFloat64()*0.75
		if h < 0 {
			h = 0
		}
		if h > 23.5 {
			h = 23.5
		}
		return routing.At(day, 0, 0).Add(h * 60)
	}
	return routing.At(day, 0, 0).Add(rng.Float64() * 24 * 60)
}

// GenerateDataset simulates the trajectory corpus: ODs are drawn, trips per
// OD follow a Zipf-like skew, each trip is driven by a random driver under
// their latent preferences with per-trip noise, then recorded as noisy GPS
// and map-matched back onto the network.
func GenerateDataset(g *roadnet.Graph, drivers []*Driver, cfg DatasetConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ods := RandomODs(g, cfg.NumODs, cfg.MinODDistM, rng)
	ds := &Dataset{Graph: g, Drivers: drivers}

	// Zipf-like trip counts: OD i gets weight 1/(i+1)^skew.
	weights := make([]float64, len(ods))
	var wsum float64
	for i := range ods {
		w := 1.0
		if cfg.ZipfSkew > 0 {
			w = 1 / math.Pow(float64(i+1), cfg.ZipfSkew)
		}
		weights[i] = w
		wsum += w
	}
	totalTrips := cfg.TripsPerOD * len(ods)
	for i, od := range ods {
		nTrips := int(math.Round(float64(totalTrips) * weights[i] / wsum))
		if nTrips < 1 {
			nTrips = 1
		}
		for k := 0; k < nTrips; k++ {
			d := drivers[rng.Intn(len(drivers))]
			depart := randomDepart(rng, cfg.PeakBias)
			route, err := d.RouteFor(g, od.From, od.To, depart, rng)
			if err != nil {
				continue
			}
			tr := Trace(g, d, route, depart, cfg.GPS, rng)
			matched, err := MapMatch(g, tr.Samples)
			if err == nil {
				tr.Route = matched
			}
			ds.Trips = append(ds.Trips, tr)
		}
	}
	return ds
}

// TripsBetween returns the trips whose matched route starts within radius of
// from and ends within radius of to. Radius 0 requires exact endpoints.
func (ds *Dataset) TripsBetween(from, to roadnet.NodeID, radius float64) []Trajectory {
	var out []Trajectory
	fp := ds.Graph.Node(from).Pt
	tp := ds.Graph.Node(to).Pt
	for _, tr := range ds.Trips {
		if tr.Route.Empty() {
			continue
		}
		s := ds.Graph.Node(tr.Route.Source()).Pt
		d := ds.Graph.Node(tr.Route.Dest()).Pt
		if distOK(s, fp, radius) && distOK(d, tp, radius) {
			out = append(out, tr)
		}
	}
	return out
}

func distOK(a, b geo.Point, radius float64) bool {
	if radius <= 0 {
		return a == b
	}
	return geo.Dist(a, b) <= radius
}

// GroundTruth returns the population-preferred route for the OD at time t:
// every driver's noise-free preferred route is computed and the most common
// choice (the mode) wins. sampleDrivers caps the poll size; 0 polls everyone.
// This is the measurable stand-in for "the route most experienced drivers
// prefer" that all recommenders are scored against.
func (ds *Dataset) GroundTruth(from, to roadnet.NodeID, t routing.SimTime, sampleDrivers int) (roadnet.Route, error) {
	drivers := ds.Drivers
	if sampleDrivers > 0 && sampleDrivers < len(drivers) {
		drivers = drivers[:sampleDrivers]
	}
	type bucket struct {
		route roadnet.Route
		votes int
	}
	counts := map[string]*bucket{}
	for _, d := range drivers {
		r, err := d.RouteFor(ds.Graph, from, to, t, nil)
		if err != nil {
			continue
		}
		k := r.String()
		if b, ok := counts[k]; ok {
			b.votes++
		} else {
			counts[k] = &bucket{route: r, votes: 1}
		}
	}
	if len(counts) == 0 {
		return roadnet.Route{}, routing.ErrNoRoute
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic tie-break
	best := counts[keys[0]]
	for _, k := range keys[1:] {
		if counts[k].votes > best.votes {
			best = counts[k]
		}
	}
	return best.route, nil
}
