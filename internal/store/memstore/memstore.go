// Package memstore is the process-local storage backend: it implements the
// full store.Store contract over in-memory structures. Because Load replays
// its in-memory snapshot and log exactly like diskstore replays its files,
// it is the reference implementation of the replay semantics and the
// zero-configuration choice for tests of storage-aware code. It retains
// every appended record until the next snapshot, so it is NOT the default
// for systems without persistence — that is store.Discard, which retains
// nothing.
package memstore

import (
	"errors"
	"sync"

	"crowdplanner/internal/store"
)

// Store is an in-memory store.Store. It is safe for concurrent use.
type Store struct {
	mu sync.Mutex
	//cplint:guardedby mu
	closed bool

	//cplint:guardedby mu
	snap *store.State // last snapshot (owned), nil before the first

	// The in-memory "WAL": everything appended since the last snapshot.
	//cplint:guardedby mu
	truths []store.TruthRecord
	//cplint:guardedby mu
	events []store.WorkerEvent
	//cplint:guardedby mu
	trips []store.TrajRecord
	//cplint:guardedby mu
	taskOpen []store.TaskRecord
	//cplint:guardedby mu
	taskDecis []taskDecision
	//cplint:guardedby mu
	taskClose []int64

	//cplint:guardedby mu
	stats store.Stats
}

type taskDecision struct {
	id    int64
	index int
	yes   bool
}

// New returns an empty in-memory store.
func New() *Store {
	return &Store{stats: store.Stats{Backend: "mem"}}
}

var errClosed = errors.New("memstore: store is closed")

// AppendTruth implements store.TruthLog.
func (s *Store) AppendTruth(r store.TruthRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	r.Nodes = append([]int32(nil), r.Nodes...)
	s.truths = append(s.truths, r)
	s.stats.TruthAppends++
	s.stats.WALRecords++
	return nil
}

// AppendWorkerEvents implements store.WorkerLog.
func (s *Store) AppendWorkerEvents(evs []store.WorkerEvent) error {
	if len(evs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	s.events = append(s.events, evs...)
	s.stats.WorkerEvents += uint64(len(evs))
	s.stats.WALRecords++
	return nil
}

// AppendTrips implements store.TrajLog.
func (s *Store) AppendTrips(recs []store.TrajRecord) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	for _, r := range recs {
		r.Nodes = append([]int32(nil), r.Nodes...)
		s.trips = append(s.trips, r)
	}
	s.stats.TrajAppends += uint64(len(recs))
	s.stats.WALRecords++
	return nil
}

// AppendTaskOpen implements store.TaskLog.
func (s *Store) AppendTaskOpen(r store.TaskRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	r.Assigned = append([]int32(nil), r.Assigned...)
	r.Decisions = append([]bool(nil), r.Decisions...)
	s.taskOpen = append(s.taskOpen, r)
	s.stats.TaskEvents++
	s.stats.WALRecords++
	return nil
}

// AppendTaskDecision implements store.TaskLog.
func (s *Store) AppendTaskDecision(id int64, index int, yes bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	s.taskDecis = append(s.taskDecis, taskDecision{id, index, yes})
	s.stats.TaskEvents++
	s.stats.WALRecords++
	return nil
}

// AppendTaskClose implements store.TaskLog.
func (s *Store) AppendTaskClose(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	s.taskClose = append(s.taskClose, id)
	s.stats.TaskEvents++
	s.stats.WALRecords++
	return nil
}

// Load implements store.Store: it replays the last snapshot plus everything
// appended since into a fresh State.
func (s *Store) Load() (*store.State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	if s.snap == nil && s.stats.WALRecords == 0 {
		return nil, nil
	}
	st := &store.State{}
	open := map[int64]*store.TaskRecord{}
	if s.snap != nil {
		st.NextTaskID = s.snap.NextTaskID
		st.Truths = append(st.Truths, s.snap.Truths...)
		st.Workers = cloneWorkers(s.snap.Workers)
		st.Trips = append(st.Trips, s.snap.Trips...)
		for _, t := range s.snap.OpenTasks {
			tc := cloneTask(t)
			open[t.ID] = &tc
		}
	}
	st.Truths = append(st.Truths, s.truths...)
	st.WorkerEvents = append(st.WorkerEvents, s.events...)
	st.Trips = append(st.Trips, s.trips...)
	for _, t := range s.taskOpen {
		tc := cloneTask(t)
		open[t.ID] = &tc
		if t.ID >= st.NextTaskID {
			st.NextTaskID = t.ID
		}
	}
	for _, d := range s.taskDecis {
		if t := open[d.id]; t != nil {
			t.Decisions = store.SetDecision(t.Decisions, d.index, d.yes)
		}
	}
	for _, id := range s.taskClose {
		delete(open, id)
	}
	//cplint:ordered-irrelevant -- st.FoldEvents below sorts OpenTasks by ID before anyone reads them
	for _, t := range open {
		st.OpenTasks = append(st.OpenTasks, *t)
	}
	st.FoldEvents() // deterministic ordering (events list stays empty for mem)
	st.DedupeTrips()
	s.stats.LoadedTruths = len(st.Truths)
	s.stats.LoadedWorkers = len(st.Workers)
	s.stats.LoadedTasks = len(st.OpenTasks)
	s.stats.LoadedTrips = len(st.Trips)
	return st, nil
}

// Snapshot implements store.Store: the state captured under the append
// mutex replaces the snapshot and the in-memory log is compacted away.
func (s *Store) Snapshot(capture func() *store.State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	st := capture()
	st.FoldEvents()
	st.DedupeTrips()
	s.snap = st
	s.truths, s.events, s.trips = nil, nil, nil
	s.taskOpen, s.taskDecis, s.taskClose = nil, nil, nil
	s.stats.WALRecords = 0
	s.stats.Snapshots++
	return nil
}

// Stats implements store.Store.
func (s *Store) Stats() store.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close implements store.Store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func cloneWorkers(ws []store.WorkerState) []store.WorkerState {
	out := make([]store.WorkerState, len(ws))
	for i, w := range ws {
		w.History = append([]store.HistoryEntry(nil), w.History...)
		out[i] = w
	}
	return out
}

func cloneTask(t store.TaskRecord) store.TaskRecord {
	t.Assigned = append([]int32(nil), t.Assigned...)
	t.Decisions = append([]bool(nil), t.Decisions...)
	return t
}
