package memstore

import (
	"reflect"
	"testing"

	"crowdplanner/internal/store"
)

// The in-memory backend must honour the same replay contract as diskstore:
// snapshot + appended log fold into one State on Load.
func TestReplayContract(t *testing.T) {
	s := New()
	if st, err := s.Load(); err != nil || st != nil {
		t.Fatalf("fresh store: state=%v err=%v", st, err)
	}

	tr := store.TruthRecord{From: 1, To: 2, Slot: 8, Nodes: []int32{1, 5, 2}, Confidence: 0.9, Crowd: true}
	if err := s.AppendTruth(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTaskOpen(store.TaskRecord{ID: 4, From: 1, To: 9, Assigned: []int32{2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTaskDecision(4, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWorkerEvents([]store.WorkerEvent{{Worker: 2, Landmark: 7, Correct: true, RewardBalance: 3, TallyCorrect: 1}}); err != nil {
		t.Fatal(err)
	}

	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Truths) != 1 || !reflect.DeepEqual(st.Truths[0], tr) {
		t.Fatalf("truths = %+v", st.Truths)
	}
	if len(st.OpenTasks) != 1 || !reflect.DeepEqual(st.OpenTasks[0].Decisions, []bool{false}) {
		t.Fatalf("open tasks = %+v", st.OpenTasks)
	}
	if len(st.Workers) != 1 || st.Workers[0].Reward != 3 {
		t.Fatalf("workers = %+v", st.Workers)
	}

	// Snapshot compacts; state persists across the compaction.
	if err := s.Snapshot(func() *store.State { return st }); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.WALRecords != 0 || got.Snapshots != 1 {
		t.Fatalf("stats after snapshot = %+v", got)
	}
	if err := s.AppendTaskClose(4); err != nil {
		t.Fatal(err)
	}
	st2, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Truths) != 1 || len(st2.OpenTasks) != 0 {
		t.Fatalf("post-compaction state = %+v", st2)
	}
	if st2.NextTaskID != 4 {
		t.Fatalf("next task id = %d, want 4", st2.NextTaskID)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTruth(tr); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

// TestTrajReplayContract mirrors the diskstore trip semantics: batches
// replay in Seq order, survive snapshot compaction, and overlapping records
// dedupe by Seq.
func TestTrajReplayContract(t *testing.T) {
	s := New()
	trip := func(seq int) store.TrajRecord {
		return store.TrajRecord{Seq: int64(seq), Driver: 2, DepartMin: 500, Nodes: []int32{0, 1}}
	}
	if err := s.AppendTrips([]store.TrajRecord{trip(0), trip(1)}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Load()
	if err != nil || len(st.Trips) != 2 {
		t.Fatalf("load: %v, trips %+v", err, st.Trips)
	}
	if err := s.Snapshot(func() *store.State { return st }); err != nil {
		t.Fatal(err)
	}
	// Overlapping re-append (snapshot already folded trip 1) plus a new one.
	if err := s.AppendTrips([]store.TrajRecord{trip(1), trip(2)}); err != nil {
		t.Fatal(err)
	}
	st2, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Trips) != 3 {
		t.Fatalf("trips after overlap = %+v, want 3 deduped", st2.Trips)
	}
	for i, tr := range st2.Trips {
		if tr.Seq != int64(i) {
			t.Fatalf("trip order = %+v", st2.Trips)
		}
	}
	if got := s.Stats(); got.LoadedTrips != 3 || got.TrajAppends != 4 {
		t.Fatalf("stats = %+v", got)
	}
}
