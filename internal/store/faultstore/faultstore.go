// Package faultstore wraps any store.Store with deterministic, scripted
// fault injection: append/snapshot failures, simulated process kills at
// exact append ordinals, injected latency, and torn-write helpers that
// corrupt a WAL tail the way a real crash mid-write would.
//
// The wrapper exists for the resilience test tier (crash-recovery torture
// tests, circuit-breaker and degraded-mode tests) and for manual chaos runs;
// it is never part of a production assembly. Fault schedules are pure
// functions of (operation, ordinal) — optionally seeded for pseudo-random
// flakiness — so a failing run replays bit-identically from its plan.
//
// Every delegated operation the inner store acknowledges is recorded in an
// ack log. A torture test kills the store at append point k, reopens the
// real backend, and asserts the reloaded state is exactly the acked prefix:
// nothing acknowledged may be lost, nothing unacknowledged may appear as
// committed.
package faultstore

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"crowdplanner/internal/store"
)

// Op identifies one class of store operation for fault-plan dispatch.
type Op int

// The operation classes a Plan can target. The append ordinal passed to
// Decide counts every append-class op in one shared sequence (the order the
// core committed them), so "kill at append 7" is well defined across types.
const (
	OpTruth Op = iota
	OpWorkerEvents
	OpTrips
	OpTaskOpen
	OpTaskDecision
	OpTaskClose
	OpSnapshot
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpTruth:
		return "truth"
	case OpWorkerEvents:
		return "worker_events"
	case OpTrips:
		return "trips"
	case OpTaskOpen:
		return "task_open"
	case OpTaskDecision:
		return "task_decision"
	case OpTaskClose:
		return "task_close"
	case OpSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// IsAppend reports whether the op is an append-class operation (counted in
// the shared append ordinal sequence).
func (o Op) IsAppend() bool { return o != OpSnapshot }

// Decision is a Plan's verdict for one operation.
type Decision struct {
	// Err fails the operation with this error without delegating to the
	// inner store (a sick disk: the record is NOT durable).
	Err error
	// Kill simulates a process death immediately BEFORE the operation
	// reaches the inner store: the op fails with ErrKilled, is not durable,
	// and every subsequent operation also fails with ErrKilled.
	Kill bool
	// KillAfter simulates a process death immediately AFTER the inner store
	// acknowledged the operation: the op IS durable (and acked), but every
	// subsequent operation fails with ErrKilled.
	KillAfter bool
	// Latency is slept before delegating (store slowdowns under load).
	Latency time.Duration
}

// Plan decides the fate of each operation. n is the 1-based ordinal of the
// operation within its class sequence: appends share one sequence (see Op);
// snapshots count their own.
type Plan interface {
	Decide(op Op, n int) Decision
}

// PlanFunc adapts a function to the Plan interface.
type PlanFunc func(op Op, n int) Decision

// Decide implements Plan.
func (f PlanFunc) Decide(op Op, n int) Decision { return f(op, n) }

// Healthy returns the no-fault plan (useful as a heal target for SetPlan).
func Healthy() Plan { return PlanFunc(func(Op, int) Decision { return Decision{} }) }

// KillAtAppend kills the process right before the n-th append (1-based):
// appends 1..n-1 land, append n and everything after fail with ErrKilled.
func KillAtAppend(n int) Plan {
	return PlanFunc(func(op Op, k int) Decision {
		if op.IsAppend() && k == n {
			return Decision{Kill: true}
		}
		return Decision{}
	})
}

// KillAfterAppend kills the process right after the n-th append (1-based)
// is acknowledged: appends 1..n land, everything after fails with ErrKilled.
func KillAfterAppend(n int) Plan {
	return PlanFunc(func(op Op, k int) Decision {
		if op.IsAppend() && k == n {
			return Decision{KillAfter: true}
		}
		return Decision{}
	})
}

// FailAppends fails every append with err (snapshots still work — the
// operator's heal lever). A nil err uses ErrInjected.
func FailAppends(err error) Plan {
	if err == nil {
		err = ErrInjected
	}
	return PlanFunc(func(op Op, _ int) Decision {
		if op.IsAppend() {
			return Decision{Err: err}
		}
		return Decision{}
	})
}

// FailAppendRange fails appends with ordinals in [from, to] (1-based,
// inclusive) — a transient storage outage that later heals.
func FailAppendRange(from, to int, err error) Plan {
	if err == nil {
		err = ErrInjected
	}
	return PlanFunc(func(op Op, k int) Decision {
		if op.IsAppend() && k >= from && k <= to {
			return Decision{Err: err}
		}
		return Decision{}
	})
}

// FailSnapshots fails every snapshot with err (appends still work).
func FailSnapshots(err error) Plan {
	if err == nil {
		err = ErrInjected
	}
	return PlanFunc(func(op Op, _ int) Decision {
		if op == OpSnapshot {
			return Decision{Err: err}
		}
		return Decision{}
	})
}

// FlakyAppends fails each append independently with probability p, decided
// by a stateless seeded hash of the ordinal — deterministic for a fixed
// (seed, p) regardless of goroutine interleaving.
func FlakyAppends(seed int64, p float64) Plan {
	return PlanFunc(func(op Op, k int) Decision {
		if op.IsAppend() && unitHash(seed, uint64(k)) < p {
			return Decision{Err: ErrInjected}
		}
		return Decision{}
	})
}

// WithLatency adds a fixed latency to every operation of the wrapped plan.
func WithLatency(p Plan, d time.Duration) Plan {
	return PlanFunc(func(op Op, n int) Decision {
		dec := p.Decide(op, n)
		dec.Latency += d
		return dec
	})
}

// unitHash maps (seed, n) to [0,1) via the splitmix64 finalizer: a
// replayable per-ordinal coin without any shared RNG state.
func unitHash(seed int64, n uint64) float64 {
	z := uint64(seed) + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Sentinel errors reported by injected faults.
var (
	// ErrInjected is the default scripted failure.
	ErrInjected = errors.New("faultstore: injected failure")
	// ErrKilled is returned by every operation after a scripted kill: the
	// simulated process is dead as far as persistence is concerned.
	ErrKilled = errors.New("faultstore: process killed by plan")
)

// Injected counts the faults the wrapper actually delivered.
type Injected struct {
	Failures   uint64 // operations failed by plan (Err decisions)
	Kills      uint64 // kill transitions (at most 1 per store)
	AfterKill  uint64 // operations rejected because the store is killed
	DelayedOps uint64 // operations that slept injected latency
}

// Store wraps an inner store.Store with a fault plan. Safe for concurrent
// use; the plan can be swapped at runtime with SetPlan (healing a scripted
// outage mid-test).
type Store struct {
	inner store.Store

	mu sync.Mutex
	//cplint:guardedby mu
	plan Plan
	//cplint:guardedby mu
	appends int // append-class ops decided so far (shared ordinal sequence)
	//cplint:guardedby mu
	snapshots int // snapshot ops decided so far
	//cplint:guardedby mu
	killed bool
	//cplint:guardedby mu
	acks []Op // ops the inner store acknowledged, in commit order
	//cplint:guardedby mu
	inj Injected
}

// New wraps inner with the given plan (nil means Healthy).
func New(inner store.Store, plan Plan) *Store {
	if plan == nil {
		plan = Healthy()
	}
	return &Store{inner: inner, plan: plan}
}

// SetPlan swaps the fault plan at runtime. Ordinals keep counting; a killed
// store stays dead (reopen the real backend to simulate a restart).
func (s *Store) SetPlan(p Plan) {
	if p == nil {
		p = Healthy()
	}
	s.mu.Lock()
	s.plan = p
	s.mu.Unlock()
}

// AckLog returns a copy of the acknowledged-operation log: every op the
// inner store durably accepted, in order. This is the ground truth a
// crash-recovery test compares the reloaded state against.
func (s *Store) AckLog() []Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Op(nil), s.acks...)
}

// InjectedStats returns the fault counters.
func (s *Store) InjectedStats() Injected {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj
}

// Killed reports whether a scripted kill has fired.
func (s *Store) Killed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// decide runs one operation's plan consultation under the lock: bump the
// per-class ordinal, ask the plan, and record kill/failure bookkeeping. A
// non-nil error means the operation is rejected before reaching the inner
// store.
func (s *Store) decide(op Op) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		s.inj.AfterKill++
		return Decision{}, ErrKilled
	}
	var n int
	if op.IsAppend() {
		s.appends++
		n = s.appends
	} else {
		s.snapshots++
		n = s.snapshots
	}
	dec := s.plan.Decide(op, n)
	switch {
	case dec.Kill:
		s.killed = true
		s.inj.Kills++
		return dec, ErrKilled
	case dec.Err != nil:
		s.inj.Failures++
		return dec, dec.Err
	}
	if dec.Latency > 0 {
		s.inj.DelayedOps++
	}
	return dec, nil
}

// ack records a completed inner call's outcome under the lock.
func (s *Store) ack(op Op, err error, killAfter bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.acks = append(s.acks, op)
	}
	if killAfter {
		s.killed = true
		s.inj.Kills++
	}
}

// do runs one operation through the plan: decide under the lock, release it
// across the injected sleep and the inner call (the inner store serializes
// itself; holding our mutex across its I/O would also invert the snapshot
// lock order), then re-lock to record the acknowledgement.
func (s *Store) do(op Op, call func() error) error {
	dec, err := s.decide(op)
	if err != nil {
		return err
	}
	if dec.Latency > 0 {
		time.Sleep(dec.Latency)
	}
	err = call()
	s.ack(op, err, dec.KillAfter)
	return err
}

// AppendTruth implements store.TruthLog.
func (s *Store) AppendTruth(r store.TruthRecord) error {
	return s.do(OpTruth, func() error { return s.inner.AppendTruth(r) })
}

// AppendWorkerEvents implements store.WorkerLog.
func (s *Store) AppendWorkerEvents(evs []store.WorkerEvent) error {
	return s.do(OpWorkerEvents, func() error { return s.inner.AppendWorkerEvents(evs) })
}

// AppendTrips implements store.TrajLog.
func (s *Store) AppendTrips(recs []store.TrajRecord) error {
	return s.do(OpTrips, func() error { return s.inner.AppendTrips(recs) })
}

// AppendTaskOpen implements store.TaskLog.
func (s *Store) AppendTaskOpen(r store.TaskRecord) error {
	return s.do(OpTaskOpen, func() error { return s.inner.AppendTaskOpen(r) })
}

// AppendTaskDecision implements store.TaskLog.
func (s *Store) AppendTaskDecision(id int64, index int, yes bool) error {
	return s.do(OpTaskDecision, func() error { return s.inner.AppendTaskDecision(id, index, yes) })
}

// AppendTaskClose implements store.TaskLog.
func (s *Store) AppendTaskClose(id int64) error {
	return s.do(OpTaskClose, func() error { return s.inner.AppendTaskClose(id) })
}

// Snapshot implements store.Store. Scripted failures fire before the inner
// snapshot runs; a killed store refuses outright.
func (s *Store) Snapshot(capture func() *store.State) error {
	return s.do(OpSnapshot, func() error { return s.inner.Snapshot(capture) })
}

// Load delegates to the inner store (load-time faults are modeled by
// corrupting the backing files with TearTail/AppendGarbage instead — that
// is where real crashes bite).
func (s *Store) Load() (*store.State, error) { return s.inner.Load() }

// Stats delegates to the inner store, so health endpoints report the real
// backend under test.
func (s *Store) Stats() store.Stats { return s.inner.Stats() }

// Close delegates to the inner store even when killed: tests must be able
// to release file handles before reopening the directory.
func (s *Store) Close() error { return s.inner.Close() }

// VerifyWorld forwards to the inner store when it pins world fingerprints
// (store.WorldVerifier); wrapping must not disable the mismatch check.
func (s *Store) VerifyWorld(fingerprint uint64) error {
	if v, ok := s.inner.(store.WorldVerifier); ok {
		return v.VerifyWorld(fingerprint)
	}
	return nil
}

// TearTail truncates the last n bytes of a file — the shape of a torn write
// at the WAL tail after a crash mid-append. Returns the bytes removed.
func TearTail(path string, n int64) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if n > fi.Size() {
		n = fi.Size()
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		return 0, err
	}
	return n, nil
}

// AppendGarbage appends raw bytes to a file — the shape of a partially
// written record whose length header landed but whose payload did not.
func AppendGarbage(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
