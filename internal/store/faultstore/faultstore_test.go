package faultstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crowdplanner/internal/store"
	"crowdplanner/internal/store/memstore"
)

// appendN drives n truth appends, returning how many succeeded.
func appendN(t *testing.T, s *Store, n int) int {
	t.Helper()
	ok := 0
	for i := 0; i < n; i++ {
		if err := s.AppendTruth(store.TruthRecord{From: int32(i), To: int32(i + 1), Nodes: []int32{int32(i), int32(i + 1)}}); err == nil {
			ok++
		}
	}
	return ok
}

func TestHealthyPassThrough(t *testing.T) {
	s := New(memstore.New(), nil)
	if got := appendN(t, s, 5); got != 5 {
		t.Fatalf("healthy appends succeeded = %d, want 5", got)
	}
	if got := len(s.AckLog()); got != 5 {
		t.Fatalf("ack log = %d entries, want 5", got)
	}
	if inj := s.InjectedStats(); inj.Failures != 0 || inj.Kills != 0 {
		t.Fatalf("injected on healthy plan: %+v", inj)
	}
}

func TestKillAtAppendStopsEverythingAfter(t *testing.T) {
	s := New(memstore.New(), KillAtAppend(3))
	if got := appendN(t, s, 6); got != 2 {
		t.Fatalf("appends succeeded = %d, want 2 (killed before the 3rd)", got)
	}
	if !s.Killed() {
		t.Fatal("store not killed")
	}
	if err := s.AppendTruth(store.TruthRecord{}); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill append err = %v, want ErrKilled", err)
	}
	if err := s.Snapshot(func() *store.State { return &store.State{} }); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill snapshot err = %v, want ErrKilled", err)
	}
	if got := len(s.AckLog()); got != 2 {
		t.Fatalf("ack log = %d, want 2", got)
	}
}

func TestKillAfterAppendKeepsTheRecord(t *testing.T) {
	s := New(memstore.New(), KillAfterAppend(3))
	if got := appendN(t, s, 6); got != 3 {
		t.Fatalf("appends succeeded = %d, want 3 (killed after the 3rd)", got)
	}
	if got := len(s.AckLog()); got != 3 {
		t.Fatalf("ack log = %d, want 3", got)
	}
}

func TestFailAppendRangeHeals(t *testing.T) {
	boom := errors.New("boom")
	s := New(memstore.New(), FailAppendRange(2, 4, boom))
	got := 0
	for i := 0; i < 6; i++ {
		err := s.AppendTruth(store.TruthRecord{From: int32(i)})
		if i >= 1 && i <= 3 {
			if !errors.Is(err, boom) {
				t.Fatalf("append %d err = %v, want boom", i+1, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("append %d err = %v", i+1, err)
		}
		got++
	}
	if got != 3 {
		t.Fatalf("healthy appends = %d, want 3", got)
	}
	if inj := s.InjectedStats(); inj.Failures != 3 {
		t.Fatalf("failures = %d, want 3", inj.Failures)
	}
}

func TestFlakyAppendsDeterministic(t *testing.T) {
	run := func() []bool {
		s := New(memstore.New(), FlakyAppends(42, 0.5))
		out := make([]bool, 40)
		for i := range out {
			out[i] = s.AppendTruth(store.TruthRecord{From: int32(i)}) == nil
		}
		return out
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flaky plan not deterministic at append %d", i+1)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("flaky p=0.5 failed %d/%d appends; expected a mix", fails, len(a))
	}
}

func TestSetPlanHealsMidStream(t *testing.T) {
	s := New(memstore.New(), FailAppends(nil))
	if err := s.AppendTruth(store.TruthRecord{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	s.SetPlan(Healthy())
	if err := s.AppendTruth(store.TruthRecord{}); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if got := len(s.AckLog()); got != 1 {
		t.Fatalf("ack log = %d, want 1", got)
	}
}

func TestSnapshotFaultsAndOrdinals(t *testing.T) {
	s := New(memstore.New(), FailSnapshots(nil))
	// Appends are unaffected by a snapshot-only plan.
	if got := appendN(t, s, 2); got != 2 {
		t.Fatalf("appends = %d, want 2", got)
	}
	if err := s.Snapshot(func() *store.State { return &store.State{} }); !errors.Is(err, ErrInjected) {
		t.Fatalf("snapshot err = %v, want ErrInjected", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	s := New(memstore.New(), WithLatency(Healthy(), 10*time.Millisecond))
	start := time.Now()
	if err := s.AppendTruth(store.TruthRecord{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("append took %v, want >= 10ms injected latency", d)
	}
	if inj := s.InjectedStats(); inj.DelayedOps != 1 {
		t.Fatalf("delayed ops = %d, want 1", inj.DelayedOps)
	}
}

func TestAckLogRecordsOpTypes(t *testing.T) {
	s := New(memstore.New(), nil)
	if err := s.AppendTruth(store.TruthRecord{}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTrips([]store.TrajRecord{{Seq: 0, Nodes: []int32{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTaskOpen(store.TaskRecord{ID: 1}); err != nil {
		t.Fatal(err)
	}
	want := []Op{OpTruth, OpTrips, OpTaskOpen}
	got := s.AckLog()
	if len(got) != len(want) {
		t.Fatalf("ack log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ack[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTearTailAndAppendGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := TearTail(path, 4)
	if err != nil || n != 4 {
		t.Fatalf("TearTail = (%d, %v), want (4, nil)", n, err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "012345" {
		t.Fatalf("after tear: %q", b)
	}
	if err := AppendGarbage(path, []byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if len(b) != 8 {
		t.Fatalf("after garbage: %d bytes, want 8", len(b))
	}
	// Tearing more than the file holds clamps to the file size.
	if n, err := TearTail(path, 100); err != nil || n != 8 {
		t.Fatalf("over-tear = (%d, %v), want (8, nil)", n, err)
	}
}
