package diskstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"

	"crowdplanner/internal/store"
)

// Primitive little-endian append helpers. All on-disk integers are fixed
// width: the format favours auditability over compactness (truth routes
// dominate the bytes either way).

func putI32(b []byte, v int32) []byte  { return binary.LittleEndian.AppendUint32(b, uint32(v)) }
func putI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// reader decodes the primitive sequence, latching the first error; callers
// check r.err once after a batch of reads.
type reader struct {
	buf []byte
	pos int
	err error
}

var errShort = errors.New("short payload")

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.err = errShort
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}
func (r *reader) i32() int32 { return int32(r.u32()) }
func (r *reader) i64() int64 {
	if b := r.take(8); b != nil {
		return int64(binary.LittleEndian.Uint64(b))
	}
	return 0
}
func (r *reader) f64() float64 {
	if b := r.take(8); b != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	return 0
}
func (r *reader) bool() bool {
	if b := r.take(1); b != nil {
		return b[0] != 0
	}
	return false
}

// encodeTruth appends a TruthRecord's wire form to b.
func encodeTruth(b []byte, t store.TruthRecord) []byte {
	b = putI32(b, t.From)
	b = putI32(b, t.To)
	b = putI32(b, t.Slot)
	b = putF64(b, t.Confidence)
	b = putBool(b, t.Crowd)
	b = putF64(b, t.StoredAtMin)
	b = putU32(b, uint32(len(t.Nodes)))
	for _, n := range t.Nodes {
		b = putI32(b, n)
	}
	return b
}

func decodeTruth(r *reader) store.TruthRecord {
	t := store.TruthRecord{
		From: r.i32(), To: r.i32(), Slot: r.i32(),
		Confidence: r.f64(), Crowd: r.bool(), StoredAtMin: r.f64(),
	}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		t.Nodes = append(t.Nodes, r.i32())
	}
	return t
}

// encodeTraj appends one TrajRecord's wire form to b.
func encodeTraj(b []byte, t store.TrajRecord) []byte {
	b = putI64(b, t.Seq)
	b = putI32(b, t.Driver)
	b = putF64(b, t.DepartMin)
	b = putU32(b, uint32(len(t.Nodes)))
	for _, n := range t.Nodes {
		b = putI32(b, n)
	}
	return b
}

func decodeTraj(r *reader) store.TrajRecord {
	t := store.TrajRecord{Seq: r.i64(), Driver: r.i32(), DepartMin: r.f64()}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		t.Nodes = append(t.Nodes, r.i32())
	}
	return t
}

// encodeTask appends a TaskRecord's wire form to b.
func encodeTask(b []byte, t store.TaskRecord) []byte {
	b = putI64(b, t.ID)
	b = putI32(b, t.From)
	b = putI32(b, t.To)
	b = putF64(b, t.DepartMin)
	b = putF64(b, t.DeadlineMin)
	b = putU32(b, uint32(len(t.Assigned)))
	for _, w := range t.Assigned {
		b = putI32(b, w)
	}
	b = putU32(b, uint32(len(t.Decisions)))
	for _, d := range t.Decisions {
		b = putBool(b, d)
	}
	return b
}

func decodeTask(r *reader) store.TaskRecord {
	t := store.TaskRecord{
		ID: r.i64(), From: r.i32(), To: r.i32(),
		DepartMin: r.f64(), DeadlineMin: r.f64(),
	}
	na := int(r.u32())
	for i := 0; i < na && r.err == nil; i++ {
		t.Assigned = append(t.Assigned, r.i32())
	}
	nd := int(r.u32())
	for i := 0; i < nd && r.err == nil; i++ {
		t.Decisions = append(t.Decisions, r.bool())
	}
	return t
}

// encodeSnapshot serializes the (already folded and sorted) state payload.
func encodeSnapshot(st *store.State) []byte {
	var b []byte
	b = putI64(b, st.NextTaskID)
	b = putU32(b, uint32(len(st.Truths)))
	for _, t := range st.Truths {
		b = encodeTruth(b, t)
	}
	b = putU32(b, uint32(len(st.Workers)))
	for _, w := range st.Workers {
		b = putI32(b, w.ID)
		b = putF64(b, w.Reward)
		b = putU32(b, uint32(len(w.History)))
		for _, h := range w.History {
			b = putI32(b, h.Landmark)
			b = putI32(b, h.Correct)
			b = putI32(b, h.Wrong)
		}
	}
	b = putU32(b, uint32(len(st.OpenTasks)))
	for _, t := range st.OpenTasks {
		b = encodeTask(b, t)
	}
	// Ingested trajectories: the format-2 addition. Format-1 snapshots end
	// after the open tasks; the decoder keys off the header version.
	b = putU32(b, uint32(len(st.Trips)))
	for _, t := range st.Trips {
		b = encodeTraj(b, t)
	}
	return b
}

// decodeSnapshot validates header + CRC and fills st/open. Format version 1
// (pre-trajectory-ingestion) is still read: it simply carries no trips.
func decodeSnapshot(data []byte, st *store.State, open map[int64]*store.TaskRecord) error {
	version, err := checkHeader(data, snapshotMagic, "snapshot")
	if err != nil {
		return err
	}
	if len(data) < 12 {
		return errors.New("diskstore: snapshot: missing checksum")
	}
	payload := data[8 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return errors.New("diskstore: snapshot: checksum mismatch")
	}
	r := &reader{buf: payload}
	st.NextTaskID = r.i64()
	nt := int(r.u32())
	for i := 0; i < nt && r.err == nil; i++ {
		st.Truths = append(st.Truths, decodeTruth(r))
	}
	nw := int(r.u32())
	for i := 0; i < nw && r.err == nil; i++ {
		w := store.WorkerState{ID: r.i32(), Reward: r.f64()}
		nh := int(r.u32())
		for j := 0; j < nh && r.err == nil; j++ {
			w.History = append(w.History, store.HistoryEntry{
				Landmark: r.i32(), Correct: r.i32(), Wrong: r.i32(),
			})
		}
		st.Workers = append(st.Workers, w)
	}
	nk := int(r.u32())
	for i := 0; i < nk && r.err == nil; i++ {
		t := decodeTask(r)
		if r.err == nil {
			open[t.ID] = &t
		}
	}
	if version >= 2 {
		np := int(r.u32())
		for i := 0; i < np && r.err == nil; i++ {
			t := decodeTraj(r)
			if r.err == nil {
				st.Trips = append(st.Trips, t)
			}
		}
	}
	if r.err != nil {
		return errors.New("diskstore: snapshot: truncated payload")
	}
	return nil
}
