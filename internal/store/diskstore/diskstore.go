// Package diskstore is the durable storage backend: a full snapshot file
// plus an append-only write-ahead log, both in a single data directory.
//
// On-disk layout:
//
//	<dir>/snapshot.cps  — full state at the last snapshot
//	<dir>/wal.cpl       — every commit since that snapshot
//
// Both files open with an 8-byte versioned header (6 magic bytes + a
// little-endian uint16 format version) so future migrations can detect and
// convert old formats. The snapshot payload carries a CRC32 trailer; every
// WAL record is [type:1][len:4][payload][crc32(type+payload):4]. All
// multi-byte integers are little-endian.
//
// Durability: appends are written in one write(2) and fsync'd by default
// (see WithoutSync); snapshots are written to a temp file, fsync'd, and
// atomically renamed, after which the WAL is atomically replaced by an empty
// one (compaction). A crash mid-append leaves a torn final record; Load
// detects it via length/CRC and recovers the valid prefix, reporting
// Stats.Truncated. Snapshots capture the state inside the append mutex, so
// a concurrent commit either makes it into the snapshot (and its record is
// compacted away) or lands in the fresh post-compaction WAL — never in the
// discarded one. A crash between the snapshot rename and the WAL reset
// replays already-snapshotted records on top of the snapshot, which is
// harmless because every record type replays idempotently: truths are
// replace-on-key, worker events carry absolute post-state, task decisions
// carry their position, and task open/close are map put/delete.
//
// Serialization is deterministic: workers sort by ID, histories by landmark,
// open tasks by task ID, and no timestamps or sequence numbers enter the
// payload — snapshotting the same State twice yields byte-identical files,
// which the determinism tests pin down.
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"crowdplanner/internal/store"
)

const (
	snapshotName = "snapshot.cps"
	walName      = "wal.cpl"
	worldName    = "world.cpw"

	// formatVersion is what new files are written with. Version 2 added the
	// ingested-trajectory stream (a trips section in the snapshot, the
	// recTrips WAL record). Version-1 files remain readable: they simply
	// carry no trips.
	formatVersion    = 2
	minFormatVersion = 1
)

var (
	snapshotMagic = [6]byte{'C', 'P', 'S', 'N', 'A', 'P'}
	walMagic      = [6]byte{'C', 'P', 'W', 'A', 'L', 0}
	worldMagic    = [6]byte{'C', 'P', 'W', 'R', 'L', 'D'}
)

// WAL record types.
const (
	recTruth        = byte(1)
	recWorkerEvents = byte(2)
	recTaskOpen     = byte(3)
	recTaskDecision = byte(4)
	recTaskClose    = byte(5)
	recTrips        = byte(6) // format version 2: a batch of ingested trajectories
)

// Store is a disk-backed store.Store. It is safe for concurrent use.
type Store struct {
	dir  string
	sync bool

	mu sync.Mutex
	//cplint:guardedby mu
	wal *os.File
	//cplint:guardedby mu
	closed bool
	//cplint:guardedby mu
	stats store.Stats
}

// Option configures a Store.
type Option func(*Store)

// WithoutSync disables the fsync after each append (snapshots still sync).
// Throughput rises at the cost of losing the last few commits on power
// failure; crash consistency (torn-record recovery) is unaffected.
func WithoutSync() Option { return func(s *Store) { s.sync = false } }

// Open creates or opens the data directory and its WAL.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: create dir: %w", err)
	}
	s := &Store{dir: dir, sync: true, stats: store.Stats{Backend: "disk"}}
	for _, o := range opts {
		o(s)
	}
	wal, size, err := openWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	s.wal = wal
	s.stats.WALBytes = size
	return s, nil
}

// openWAL opens the log for appending, writing the header if the file is new
// (or empty, e.g. after a crash between create and header write).
func openWAL(path string) (*os.File, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("diskstore: open wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("diskstore: stat wal: %w", err)
	}
	size := fi.Size()
	if size < int64(len(walMagic))+2 {
		if err := writeHeader(f, walMagic); err != nil {
			f.Close()
			return nil, 0, err
		}
		size = int64(len(walMagic)) + 2
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("diskstore: seek wal: %w", err)
	}
	return f, size, nil
}

func writeHeader(w io.Writer, magic [6]byte) error {
	var hdr [8]byte
	copy(hdr[:], magic[:])
	binary.LittleEndian.PutUint16(hdr[6:], formatVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("diskstore: write header: %w", err)
	}
	return nil
}

// checkHeader validates magic and version and returns the file's format
// version (any in [minFormatVersion, formatVersion] is readable).
func checkHeader(data []byte, magic [6]byte, what string) (uint16, error) {
	if len(data) < 8 {
		return 0, fmt.Errorf("diskstore: %s: short header (%d bytes)", what, len(data))
	}
	for i, b := range magic {
		if data[i] != b {
			return 0, fmt.Errorf("diskstore: %s: bad magic %q", what, data[:6])
		}
	}
	v := binary.LittleEndian.Uint16(data[6:8])
	if v < minFormatVersion || v > formatVersion {
		return 0, fmt.Errorf("diskstore: %s: unsupported format version %d (want %d..%d)", what, v, minFormatVersion, formatVersion)
	}
	return v, nil
}

var errClosed = errors.New("diskstore: store is closed")

// append writes one WAL record: [type][len][payload][crc].
func (s *Store) append(typ byte, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	rec := make([]byte, 0, 1+4+len(payload)+4)
	rec = append(rec, typ)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(payload)
	rec = binary.LittleEndian.AppendUint32(rec, crc.Sum32())
	if _, err := s.wal.Write(rec); err != nil {
		return fmt.Errorf("diskstore: append: %w", err)
	}
	if s.sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("diskstore: sync: %w", err)
		}
	}
	s.stats.WALBytes += int64(len(rec))
	s.stats.WALRecords++
	return nil
}

// AppendTruth implements store.TruthLog.
func (s *Store) AppendTruth(r store.TruthRecord) error {
	if err := s.append(recTruth, encodeTruth(nil, r)); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.TruthAppends++
	s.mu.Unlock()
	return nil
}

// AppendWorkerEvents implements store.WorkerLog.
func (s *Store) AppendWorkerEvents(evs []store.WorkerEvent) error {
	if len(evs) == 0 {
		return nil
	}
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(evs)))
	for _, ev := range evs {
		b = putI32(b, ev.Worker)
		b = putI32(b, ev.Landmark)
		b = putBool(b, ev.Correct)
		b = putF64(b, ev.RewardBalance)
		b = putI32(b, ev.TallyCorrect)
		b = putI32(b, ev.TallyWrong)
	}
	if err := s.append(recWorkerEvents, b); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.WorkerEvents += uint64(len(evs))
	s.mu.Unlock()
	return nil
}

// AppendTrips implements store.TrajLog: one WAL record per batch.
func (s *Store) AppendTrips(recs []store.TrajRecord) error {
	if len(recs) == 0 {
		return nil
	}
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(recs)))
	for _, t := range recs {
		b = encodeTraj(b, t)
	}
	if err := s.append(recTrips, b); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.TrajAppends += uint64(len(recs))
	s.mu.Unlock()
	return nil
}

// AppendTaskOpen implements store.TaskLog.
func (s *Store) AppendTaskOpen(r store.TaskRecord) error {
	return s.appendTask(recTaskOpen, encodeTask(nil, r))
}

// AppendTaskDecision implements store.TaskLog.
func (s *Store) AppendTaskDecision(id int64, index int, yes bool) error {
	return s.appendTask(recTaskDecision, putBool(putU32(putI64(nil, id), uint32(index)), yes))
}

// AppendTaskClose implements store.TaskLog.
func (s *Store) AppendTaskClose(id int64) error {
	return s.appendTask(recTaskClose, putI64(nil, id))
}

func (s *Store) appendTask(typ byte, payload []byte) error {
	if err := s.append(typ, payload); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.TaskEvents++
	s.mu.Unlock()
	return nil
}

// Load implements store.Store: snapshot first, then WAL replay. A torn or
// corrupt tail record stops the replay and sets Stats.Truncated; the valid
// prefix is recovered. A corrupt snapshot (bad header, version, CRC or
// payload) is an error — silently serving without the snapshotted state
// would un-verify crowd knowledge.
func (s *Store) Load() (*store.State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	st := &store.State{}
	open := map[int64]*store.TaskRecord{}
	haveSnapshot := false

	snap, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	switch {
	case err == nil:
		if err := decodeSnapshot(snap, st, open); err != nil {
			return nil, err
		}
		haveSnapshot = true
	case os.IsNotExist(err):
		// First boot with no snapshot yet.
	default:
		return nil, fmt.Errorf("diskstore: read snapshot: %w", err)
	}

	wal, err := os.ReadFile(filepath.Join(s.dir, walName))
	if err != nil {
		return nil, fmt.Errorf("diskstore: read wal: %w", err)
	}
	records, validLen, truncated, err := s.replayWAL(wal, st, open)
	if err != nil {
		return nil, err
	}
	if truncated {
		// Cut the torn tail off so subsequent appends extend the valid
		// prefix instead of hiding behind unreadable bytes.
		if err := s.wal.Truncate(validLen); err != nil {
			return nil, fmt.Errorf("diskstore: truncate torn wal tail: %w", err)
		}
		if _, err := s.wal.Seek(0, io.SeekEnd); err != nil {
			return nil, fmt.Errorf("diskstore: seek after truncate: %w", err)
		}
		s.stats.WALBytes = validLen
	}
	s.stats.Truncated = truncated
	s.stats.WALRecords = records

	if !haveSnapshot && records == 0 {
		return nil, nil
	}
	//cplint:ordered-irrelevant -- st.FoldEvents below sorts OpenTasks by ID before anyone reads them
	for _, t := range open {
		st.OpenTasks = append(st.OpenTasks, *t)
	}
	st.FoldEvents()
	st.DedupeTrips()
	s.stats.LoadedTruths = len(st.Truths)
	s.stats.LoadedWorkers = len(st.Workers)
	s.stats.LoadedTasks = len(st.OpenTasks)
	s.stats.LoadedTrips = len(st.Trips)
	return st, nil
}

// replayWAL applies every intact record in data to st/open. It returns the
// number of intact records, the byte length of the valid prefix (header
// included), and whether a torn tail was skipped.
func (s *Store) replayWAL(data []byte, st *store.State, open map[int64]*store.TaskRecord) (records uint64, validLen int64, truncated bool, err error) {
	if _, err := checkHeader(data, walMagic, "wal"); err != nil {
		// A WAL too short to hold its header is tail damage from a crash at
		// creation; anything else (wrong magic/version) is a real error.
		if len(data) < 8 {
			return 0, int64(len(data)), true, nil
		}
		return 0, 0, false, err
	}
	pos := 8
	for pos < len(data) {
		if pos+5 > len(data) {
			return records, int64(pos), true, nil
		}
		typ := data[pos]
		n := int(binary.LittleEndian.Uint32(data[pos+1 : pos+5]))
		if pos+5+n+4 > len(data) {
			return records, int64(pos), true, nil
		}
		payload := data[pos+5 : pos+5+n]
		crc := crc32.NewIEEE()
		crc.Write([]byte{typ})
		crc.Write(payload)
		if crc.Sum32() != binary.LittleEndian.Uint32(data[pos+5+n:pos+9+n]) {
			return records, int64(pos), true, nil
		}
		if err := applyRecord(typ, payload, st, open); err != nil {
			// An intact record we cannot decode means a format bug, not tail
			// damage: fail loudly.
			return records, 0, false, err
		}
		records++
		pos += 9 + n
	}
	return records, int64(pos), false, nil
}

// applyRecord folds one WAL record into the state being loaded.
func applyRecord(typ byte, payload []byte, st *store.State, open map[int64]*store.TaskRecord) error {
	r := &reader{buf: payload}
	switch typ {
	case recTruth:
		t := decodeTruth(r)
		if r.err == nil {
			st.Truths = append(st.Truths, t)
		}
	case recWorkerEvents:
		n := int(r.u32())
		for i := 0; i < n && r.err == nil; i++ {
			st.WorkerEvents = append(st.WorkerEvents, store.WorkerEvent{
				Worker: r.i32(), Landmark: r.i32(), Correct: r.bool(),
				RewardBalance: r.f64(), TallyCorrect: r.i32(), TallyWrong: r.i32(),
			})
		}
	case recTrips:
		n := int(r.u32())
		for i := 0; i < n && r.err == nil; i++ {
			t := decodeTraj(r)
			if r.err == nil {
				st.Trips = append(st.Trips, t)
			}
		}
	case recTaskOpen:
		t := decodeTask(r)
		if r.err == nil {
			open[t.ID] = &t
			if t.ID > st.NextTaskID {
				st.NextTaskID = t.ID
			}
		}
	case recTaskDecision:
		id, index, yes := r.i64(), int(r.u32()), r.bool()
		if r.err == nil {
			if t := open[id]; t != nil {
				t.Decisions = store.SetDecision(t.Decisions, index, yes)
			}
		}
	case recTaskClose:
		id := r.i64()
		if r.err == nil {
			delete(open, id)
		}
	default:
		return fmt.Errorf("diskstore: unknown wal record type %d", typ)
	}
	if r.err != nil {
		return fmt.Errorf("diskstore: decode wal record type %d: %w", typ, r.err)
	}
	return nil
}

// Snapshot implements store.Store: capture the state under the append mutex
// (so no commit can land in the doomed WAL after the capture), write it to a
// temp file, fsync, atomically rename it over the snapshot, then atomically
// reset the WAL.
func (s *Store) Snapshot(capture func() *store.State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	st := capture()
	st.FoldEvents()

	payload := encodeSnapshot(st)
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: create snapshot temp: %w", err)
	}
	werr := writeHeader(f, snapshotMagic)
	if werr == nil {
		_, werr = f.Write(payload)
	}
	if werr == nil {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
		_, werr = f.Write(tail[:])
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskstore: write snapshot: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("diskstore: install snapshot: %w", err)
	}

	// Compact: swap in a fresh WAL. The snapshot now owns everything the old
	// log held; a crash before the swap only means harmless double-replay.
	walTmp := filepath.Join(s.dir, walName+".tmp")
	nf, err := os.OpenFile(walTmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: create wal temp: %w", err)
	}
	if err := writeHeader(nf, walMagic); err != nil {
		nf.Close()
		os.Remove(walTmp)
		return err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(walTmp)
		return fmt.Errorf("diskstore: sync wal temp: %w", err)
	}
	if err := os.Rename(walTmp, filepath.Join(s.dir, walName)); err != nil {
		nf.Close()
		return fmt.Errorf("diskstore: install wal: %w", err)
	}
	old := s.wal
	s.wal = nf
	old.Close()
	s.syncDir()
	s.stats.WALBytes = 8
	s.stats.WALRecords = 0
	s.stats.Snapshots++
	return nil
}

// VerifyWorld implements store.WorldVerifier: the first call on a fresh
// data directory pins the world fingerprint in <dir>/world.cpw; subsequent
// opens must present the same fingerprint. This catches a -data-dir reused
// across scenarios even when the node-ID ranges happen to line up (same
// city size, different seed) — replaying another world's truths and task
// decisions would serve wrong routes as crowd-verified.
func (s *Store) VerifyWorld(fingerprint uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	path := filepath.Join(s.dir, worldName)
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		var b []byte
		b = append(b, worldMagic[:]...)
		b = binary.LittleEndian.AppendUint16(b, formatVersion)
		b = binary.LittleEndian.AppendUint64(b, fingerprint)
		b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[8:16]))
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, b, 0o644); err != nil {
			return fmt.Errorf("diskstore: write world file: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("diskstore: install world file: %w", err)
		}
		s.syncDir()
		return nil
	case err != nil:
		return fmt.Errorf("diskstore: read world file: %w", err)
	}
	if _, err := checkHeader(data, worldMagic, "world file"); err != nil {
		return err
	}
	if len(data) < 20 {
		return errors.New("diskstore: world file: truncated")
	}
	if crc32.ChecksumIEEE(data[8:16]) != binary.LittleEndian.Uint32(data[16:20]) {
		return errors.New("diskstore: world file: checksum mismatch")
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != fingerprint {
		return fmt.Errorf("diskstore: data directory belongs to a different world (fingerprint %x, this scenario is %x) — point -data-dir somewhere else or delete %s", got, fingerprint, s.dir)
	}
	return nil
}

// syncDir fsyncs the data directory so renames are durable; best-effort
// (some filesystems reject directory fsync).
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Stats implements store.Store.
func (s *Store) Stats() store.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close implements store.Store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("diskstore: sync on close: %w", err)
	}
	return s.wal.Close()
}
