package diskstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crowdplanner/internal/store"
)

func testTruth(i int) store.TruthRecord {
	return store.TruthRecord{
		From: int32(i), To: int32(i + 100), Slot: int32(i % 24),
		Nodes:      []int32{int32(i), int32(i + 1), int32(i + 2)},
		Confidence: 0.5 + float64(i%5)/10, Crowd: i%2 == 0,
		StoredAtMin: float64(480 + i),
	}
}

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEmptyLoad(t *testing.T) {
	s := open(t, t.TempDir())
	defer s.Close()
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("fresh store loaded non-nil state: %+v", st)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.AppendTruth(testTruth(i)); err != nil {
			t.Fatal(err)
		}
	}
	evs := []store.WorkerEvent{
		{Worker: 7, Landmark: 3, Correct: true, RewardBalance: 3, TallyCorrect: 1},
		{Worker: 9, Landmark: 3, Correct: false, RewardBalance: 1, TallyWrong: 1},
	}
	if err := s.AppendWorkerEvents(evs); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTaskOpen(store.TaskRecord{ID: 5, From: 1, To: 2, DepartMin: 510, Assigned: []int32{7, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTaskDecision(5, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTaskOpen(store.TaskRecord{ID: 6, From: 3, To: 4, DepartMin: 520, Assigned: []int32{9}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTaskClose(6); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := open(t, dir)
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("loaded nil state")
	}
	if len(st.Truths) != 3 || !reflect.DeepEqual(st.Truths[1], testTruth(1)) {
		t.Fatalf("truths = %+v", st.Truths)
	}
	// Worker events fold into absolute worker states on load.
	if len(st.Workers) != 2 {
		t.Fatalf("workers = %+v", st.Workers)
	}
	if st.Workers[0].ID != 7 || st.Workers[0].Reward != 3 ||
		!reflect.DeepEqual(st.Workers[0].History, []store.HistoryEntry{{Landmark: 3, Correct: 1}}) {
		t.Fatalf("worker 7 = %+v", st.Workers[0])
	}
	if len(st.OpenTasks) != 1 || st.OpenTasks[0].ID != 5 {
		t.Fatalf("open tasks = %+v", st.OpenTasks)
	}
	if got := st.OpenTasks[0].Decisions; len(got) != 1 || !got[0] {
		t.Fatalf("decisions = %v", got)
	}
	if st.NextTaskID != 6 {
		t.Fatalf("next task id = %d, want 6", st.NextTaskID)
	}
	if tr := s2.Stats().Truncated; tr {
		t.Fatal("clean WAL reported truncated")
	}
}

// TestTruncatedWALTail simulates a crash mid-append: the last record is cut
// short at every possible byte boundary, and the valid prefix must load.
func TestTruncatedWALTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.AppendTruth(testTruth(0)); err != nil {
		t.Fatal(err)
	}
	sizeAfterOne, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTruth(testTruth(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	whole, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	for cut := int(sizeAfterOne.Size()) + 1; cut < len(whole); cut++ {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, walName), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := open(t, dir2)
		st, err := s2.Load()
		if err != nil {
			t.Fatalf("cut=%d: load: %v", cut, err)
		}
		if len(st.Truths) != 1 || !reflect.DeepEqual(st.Truths[0], testTruth(0)) {
			t.Fatalf("cut=%d: truths = %+v", cut, st.Truths)
		}
		if !s2.Stats().Truncated {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		// The recovered store must keep accepting appends.
		if err := s2.AppendTruth(testTruth(9)); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		s2.Close()
	}
}

// TestCorruptWALRecordCRC flips a payload bit in the final record: the CRC
// must reject it and recovery keeps the prefix.
func TestCorruptWALRecordCRC(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.AppendTruth(testTruth(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTruth(testTruth(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF // inside the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Truths) != 1 {
		t.Fatalf("truths = %+v, want the intact prefix only", st.Truths)
	}
	if !s2.Stats().Truncated {
		t.Fatal("corrupt tail not reported as truncated")
	}
}

// TestCorruptSnapshotHeader: a damaged snapshot must fail the load loudly,
// not silently boot empty.
func TestCorruptSnapshotHeader(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Snapshot(func() *store.State {
		return &store.State{Truths: []store.TruthRecord{testTruth(0)}}
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"bad magic":      func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c },
		"bad version":    func(b []byte) []byte { c := append([]byte(nil), b...); c[6], c[7] = 0xFF, 0xFF; return c },
		"short header":   func(b []byte) []byte { return b[:4] },
		"payload damage": func(b []byte) []byte { c := append([]byte(nil), b...); c[20] ^= 0xFF; return c },
	} {
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := open(t, dir)
		if _, err := s2.Load(); err == nil {
			t.Errorf("%s: load succeeded, want error", name)
		}
		s2.Close()
	}
}

// TestReplayAfterCompaction: snapshot (compacting the WAL), append more, and
// verify the load sees snapshot state plus the post-snapshot tail.
func TestReplayAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 4; i++ {
		if err := s.AppendTruth(testTruth(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(func() *store.State { return st }); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.WALRecords != 0 || got.Snapshots != 1 {
		t.Fatalf("post-snapshot stats = %+v", got)
	}
	// Appends after compaction land in the fresh WAL.
	if err := s.AppendTruth(testTruth(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWorkerEvents([]store.WorkerEvent{{Worker: 1, Landmark: 2, Correct: true, RewardBalance: 3, TallyCorrect: 1}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := open(t, dir)
	defer s2.Close()
	st2, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Truths) != 5 {
		t.Fatalf("truths after compaction+append = %d, want 5", len(st2.Truths))
	}
	if !reflect.DeepEqual(st2.Truths[4], testTruth(10)) {
		t.Fatalf("tail truth = %+v", st2.Truths[4])
	}
	if len(st2.Workers) != 1 || st2.Workers[0].Reward != 3 {
		t.Fatalf("workers = %+v", st2.Workers)
	}
}

// TestSnapshotDeterminism: a snapshot→restore round trip must re-snapshot to
// byte-identical files, even when worker state arrives in scrambled order
// (the map-iteration hazard the sorted serialization exists to kill).
func TestSnapshotDeterminism(t *testing.T) {
	mkState := func(workerOrder []int32) *store.State {
		st := &store.State{NextTaskID: 12}
		for i := 0; i < 5; i++ {
			st.Truths = append(st.Truths, testTruth(i))
		}
		for _, id := range workerOrder {
			st.Workers = append(st.Workers, store.WorkerState{
				ID: id, Reward: float64(id) * 1.5,
				History: []store.HistoryEntry{
					{Landmark: id + 1, Correct: 2, Wrong: 1},
					{Landmark: id, Correct: 1, Wrong: 0},
				},
			})
		}
		st.OpenTasks = []store.TaskRecord{
			{ID: 11, From: 2, To: 9, DepartMin: 500, Assigned: []int32{4, 2}, Decisions: []bool{true, false}},
			{ID: 3, From: 1, To: 5, DepartMin: 480, Assigned: []int32{1}},
		}
		return st
	}

	write := func(st *store.State) []byte {
		dir := t.TempDir()
		s := open(t, dir)
		if err := s.Snapshot(func() *store.State { return st }); err != nil {
			t.Fatal(err)
		}
		s.Close()
		b, err := os.ReadFile(filepath.Join(dir, snapshotName))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	a := write(mkState([]int32{3, 1, 4, 2}))
	b := write(mkState([]int32{4, 2, 1, 3}))
	if !bytes.Equal(a, b) {
		t.Fatal("snapshots of equivalent states differ byte-wise")
	}

	// Round trip: load the snapshot back and re-snapshot.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), a, 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir)
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(func() *store.State { return st }); err != nil {
		t.Fatal(err)
	}
	s.Close()
	c, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("snapshot→restore→snapshot is not byte-identical")
	}
}

// TestFoldOnSnapshot: unfolded worker events passed to Snapshot overwrite
// the absolute worker states (events carry post-state; later wins).
func TestFoldOnSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	st := &store.State{
		Workers: []store.WorkerState{{ID: 2, Reward: 1, History: []store.HistoryEntry{{Landmark: 5, Correct: 1}}}},
		WorkerEvents: []store.WorkerEvent{
			{Worker: 2, Landmark: 5, Correct: true, RewardBalance: 4, TallyCorrect: 2},
			{Worker: 8, Landmark: 1, Correct: false, RewardBalance: 1, TallyWrong: 1},
		},
	}
	if err := s.Snapshot(func() *store.State { return st }); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := open(t, dir)
	defer s2.Close()
	got, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := []store.WorkerState{
		{ID: 2, Reward: 4, History: []store.HistoryEntry{{Landmark: 5, Correct: 2}}},
		{ID: 8, Reward: 1, History: []store.HistoryEntry{{Landmark: 1, Wrong: 1}}},
	}
	if !reflect.DeepEqual(got.Workers, want) {
		t.Fatalf("workers = %+v, want %+v", got.Workers, want)
	}
}

// TestSnapshotCaptureBarrier: a record appended while a snapshot is being
// taken must never vanish — it either folds into the snapshot or lands in
// the fresh WAL.
func TestSnapshotCaptureBarrier(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.AppendTruth(testTruth(0)); err != nil {
		t.Fatal(err)
	}
	// Start an append from inside the capture callback: it must block until
	// the compaction finished and then land in the new WAL.
	appended := make(chan error, 1)
	err := s.Snapshot(func() *store.State {
		go func() { appended <- s.AppendTruth(testTruth(1)) }()
		return &store.State{Truths: []store.TruthRecord{testTruth(0)}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-appended; err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := open(t, dir)
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Truths) != 2 {
		t.Fatalf("truths after racing snapshot = %d, want 2 (none lost)", len(st.Truths))
	}
}

// ---- storage-path benchmarks ----

func benchAppend(b *testing.B, sync bool) {
	var opts []Option
	if !sync {
		opts = append(opts, WithoutSync())
	}
	s, err := Open(b.TempDir(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rec := testTruth(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AppendTruth(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendFsync(b *testing.B)   { benchAppend(b, true) }
func BenchmarkWALAppendNoFsync(b *testing.B) { benchAppend(b, false) }

func BenchmarkLoad10kTruths(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, WithoutSync())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if err := s.AppendTruth(testTruth(i)); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		st, err := s.Load()
		if err != nil || len(st.Truths) != 10_000 {
			b.Fatalf("load: %v (%d truths)", err, len(st.Truths))
		}
		s.Close()
	}
}

// testTrip builds a deterministic TrajRecord.
func testTrip(seq int) store.TrajRecord {
	return store.TrajRecord{
		Seq: int64(seq), Driver: int32(seq % 5), DepartMin: 500 + float64(seq),
		Nodes: []int32{int32(seq), int32(seq + 1), int32(seq + 2)},
	}
}

// TestTrajRoundTrip: ingested-trip batches survive WAL replay, snapshot
// compaction, and — crucially — the snapshot-plus-stale-WAL overlap, where
// the Seq-keyed dedupe must keep each trip exactly once.
func TestTrajRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.AppendTrips([]store.TrajRecord{testTrip(0), testTrip(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTrips([]store.TrajRecord{testTrip(2)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := open(t, dir)
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trips) != 3 {
		t.Fatalf("loaded %d trips, want 3", len(st.Trips))
	}
	for i, tr := range st.Trips {
		if !reflect.DeepEqual(tr, testTrip(i)) {
			t.Fatalf("trip %d = %+v", i, tr)
		}
	}
	// Snapshot with the trips, then append an overlapping record (as if a
	// crash hit between the snapshot rename and the WAL reset).
	if err := s2.Snapshot(func() *store.State {
		return &store.State{Trips: []store.TrajRecord{testTrip(0), testTrip(1), testTrip(2)}}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s2.AppendTrips([]store.TrajRecord{testTrip(2), testTrip(3)}); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3 := open(t, dir)
	defer s3.Close()
	st, err = s3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trips) != 4 {
		t.Fatalf("after overlap replay: %d trips, want 4 (dedupe by Seq)", len(st.Trips))
	}
	for i, tr := range st.Trips {
		if tr.Seq != int64(i) {
			t.Fatalf("trip order wrong: %+v", st.Trips)
		}
	}
	if got := s3.Stats().LoadedTrips; got != 4 {
		t.Fatalf("stats loaded_trips = %d, want 4", got)
	}
}

// TestFormatV1SnapshotStillLoads: a snapshot written with format version 1
// (no trips section) must load under the version-2 reader.
func TestFormatV1SnapshotStillLoads(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Snapshot(func() *store.State {
		return &store.State{NextTaskID: 9, Truths: []store.TruthRecord{testTruth(0)}}
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Rewrite the snapshot as a v1 file: header version 1, payload cut
	// before the trips section, CRC recomputed.
	path := filepath.Join(dir, "snapshot.cps")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := data[8 : len(data)-4]
	payload = payload[:len(payload)-4] // drop the (empty) trips count
	v1 := make([]byte, 0, 8+len(payload)+4)
	v1 = append(v1, data[:6]...)
	v1 = binary.LittleEndian.AppendUint16(v1, 1)
	v1 = append(v1, payload...)
	v1 = binary.LittleEndian.AppendUint32(v1, crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.NextTaskID != 9 || len(st.Truths) != 1 || len(st.Trips) != 0 {
		t.Fatalf("v1 snapshot loaded wrong: %+v", st)
	}
}
