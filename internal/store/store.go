// Package store defines CrowdPlanner's pluggable storage layer: narrow
// persistence interfaces for the system's mutable state — verified truths,
// worker registry mutations (reward balances, answer histories) and pending
// crowd tasks — decoupled from the in-memory structures that serve requests.
//
// The serving core remains the source of truth at runtime; a Store is a
// durability sink and boot-time source. Writes are logged *as they commit*
// (write-ahead semantics for the next restart, not a transaction layer), a
// Snapshot captures the full state and lets the backend compact its log, and
// Load replays snapshot + log into a State the core re-applies on boot.
//
// Two backends implement the contract: memstore (process-local, the
// adaptation of the pre-storage-layer behaviour; state evaporates with the
// process) and diskstore (snapshot + append-only WAL with a versioned
// on-disk format, CRC-guarded records and fsync'd appends).
//
// Record types use plain integers and floats rather than the domain types of
// the truth/worker/task packages: the storage layer owns its wire vocabulary
// so on-disk compatibility does not ride on in-memory refactors.
package store

import (
	"sort"
	"sync"
)

// TruthRecord is the persisted form of one verified truth.
type TruthRecord struct {
	From, To    int32
	Slot        int32
	Nodes       []int32 // the verified route's node sequence
	Confidence  float64
	Crowd       bool
	StoredAtMin float64 // simulated departure time, minutes since Monday 00:00
}

// TrajRecord is the persisted form of one ingested trajectory. Seq is the
// trip's position in the ingestion stream (0-based, assigned by the corpus
// under its write lock): replay orders records by Seq and drops duplicates,
// so a record that survives in the WAL after a concurrent snapshot already
// captured it re-applies harmlessly — the same idempotence contract as every
// other record type.
type TrajRecord struct {
	Seq       int64
	Driver    int32
	DepartMin float64 // simulated departure time, minutes since Monday 00:00
	Nodes     []int32 // the map-matched route's node sequence
}

// WorkerEvent is one committed mutation of a worker's mutable state: an
// answer recorded against a landmark together with the reward it earned.
// Events carry the *absolute* post-event state (reward balance and the
// landmark's answer tally), not deltas: replaying an event is idempotent, so
// a record that survives in the log after a concurrent snapshot already
// folded it re-applies harmlessly instead of double-counting.
type WorkerEvent struct {
	Worker   int32
	Landmark int32
	Correct  bool // whether this answer was judged correct (observability)
	// Post-event absolute state.
	RewardBalance            float64
	TallyCorrect, TallyWrong int32
}

// WorkerState is a worker's full mutable state at snapshot time.
type WorkerState struct {
	ID      int32
	Reward  float64
	History []HistoryEntry // sorted by Landmark for deterministic serialization
}

// HistoryEntry is one worker's answer tally for one landmark.
type HistoryEntry struct {
	Landmark       int32
	Correct, Wrong int32
}

// TaskRecord captures an open asynchronous crowd task well enough to
// re-publish it after a restart: the originating request, the assigned
// workers, and the yes/no branch decisions already taken down the question
// tree (decision log records carry their index, so replay is idempotent).
// The task itself (candidates, tree) is regenerated deterministically from
// the substrates; answers to the question in flight at crash time are not
// persisted — the current question is simply re-asked (at-least-once
// question semantics, see DESIGN.md).
type TaskRecord struct {
	ID          int64
	From, To    int32
	DepartMin   float64
	DeadlineMin float64
	Assigned    []int32
	Decisions   []bool
}

// State is the full persisted state handed between the core and a Store:
// Snapshot consumes one, Load produces one.
//
// On Load, Truths holds every committed truth in commit order (later entries
// supersede earlier ones for the same key), Workers holds the final absolute
// per-worker state (snapshot plus logged events, folded via FoldEvents), and
// OpenTasks holds the still-open tasks with their decision prefixes folded
// in. WorkerEvents only carries unfolded events transiently inside backends.
type State struct {
	NextTaskID   int64
	Truths       []TruthRecord
	Workers      []WorkerState
	WorkerEvents []WorkerEvent
	OpenTasks    []TaskRecord
	// Trips holds the ingested trajectory stream. On Load the order is
	// snapshot-then-WAL; consumers sort by Seq and dedupe (see TrajRecord).
	Trips []TrajRecord
}

// FoldEvents merges WorkerEvents into Workers and clears the event list,
// producing the absolute worker states a snapshot persists. Events carry
// absolute post-state, so folding sets values (in event order; later wins).
// Workers are sorted by ID and histories by landmark, so folding is
// deterministic.
func (s *State) FoldEvents() {
	if len(s.WorkerEvents) == 0 {
		s.sortWorkers()
		return
	}
	byID := make(map[int32]*WorkerState, len(s.Workers))
	for i := range s.Workers {
		byID[s.Workers[i].ID] = &s.Workers[i]
	}
	for _, ev := range s.WorkerEvents {
		w := byID[ev.Worker]
		if w == nil {
			s.Workers = append(s.Workers, WorkerState{ID: ev.Worker})
			w = &s.Workers[len(s.Workers)-1]
			byID[ev.Worker] = w
		}
		w.Reward = ev.RewardBalance
		hi := -1
		for i := range w.History {
			if w.History[i].Landmark == ev.Landmark {
				hi = i
				break
			}
		}
		if hi < 0 {
			w.History = append(w.History, HistoryEntry{Landmark: ev.Landmark})
			hi = len(w.History) - 1
		}
		w.History[hi].Correct = ev.TallyCorrect
		w.History[hi].Wrong = ev.TallyWrong
	}
	s.WorkerEvents = nil
	s.sortWorkers()
}

// SetDecision writes a task decision at its 0-based position, growing the
// slice as needed — the idempotent replay primitive shared by the backends.
func SetDecision(decisions []bool, index int, yes bool) []bool {
	if index < 0 {
		return decisions
	}
	for len(decisions) <= index {
		decisions = append(decisions, false)
	}
	decisions[index] = yes
	return decisions
}

func (s *State) sortWorkers() {
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].ID < s.Workers[j].ID })
	for i := range s.Workers {
		h := s.Workers[i].History
		sort.Slice(h, func(a, b int) bool { return h[a].Landmark < h[b].Landmark })
	}
	sort.Slice(s.OpenTasks, func(i, j int) bool { return s.OpenTasks[i].ID < s.OpenTasks[j].ID })
	sort.SliceStable(s.Trips, func(i, j int) bool { return s.Trips[i].Seq < s.Trips[j].Seq })
}

// DedupeTrips sorts Trips by Seq and drops duplicate sequence numbers
// (keeping the first occurrence — snapshot copies precede re-replayed WAL
// copies of the same trip). Backends call it on Load so consumers always see
// each ingested trip exactly once, in ingestion order.
func (s *State) DedupeTrips() {
	if len(s.Trips) == 0 {
		return
	}
	sort.SliceStable(s.Trips, func(i, j int) bool { return s.Trips[i].Seq < s.Trips[j].Seq })
	out := s.Trips[:1]
	for _, t := range s.Trips[1:] {
		if t.Seq != out[len(out)-1].Seq {
			out = append(out, t)
		}
	}
	s.Trips = out
}

// TruthLog persists truth commits.
type TruthLog interface {
	// AppendTruth logs one committed truth. Implementations must not call
	// back into the core.
	AppendTruth(TruthRecord) error
}

// WorkerLog persists worker-state mutations.
type WorkerLog interface {
	// AppendWorkerEvents logs a batch of committed answer/reward events
	// (typically one crowd question's worth).
	AppendWorkerEvents([]WorkerEvent) error
}

// TrajLog persists the ingested-trajectory stream.
type TrajLog interface {
	// AppendTrips logs a batch of ingested trajectories (already validated
	// by the core). Implementations must not call back into the core.
	AppendTrips([]TrajRecord) error
}

// TaskLog persists the asynchronous task lifecycle.
type TaskLog interface {
	// AppendTaskOpen logs publication of a pending task (Decisions empty).
	AppendTaskOpen(TaskRecord) error
	// AppendTaskDecision logs the yes/no branch taken at decision position
	// `index` (0-based) of the task's tree walk. Carrying the index makes
	// replay idempotent: a record re-applied on top of a snapshot that
	// already folded it sets the same slot to the same value.
	AppendTaskDecision(id int64, index int, yes bool) error
	// AppendTaskClose logs that the task resolved or expired; its truth (if
	// any) is logged separately through AppendTruth.
	AppendTaskClose(id int64) error
}

// Store is the full storage backend contract.
//
// Appends must be called without holding any lock the Snapshot capture
// callback acquires: backends run the callback inside their own append
// mutex (so a commit is either fully captured and compacted, or lands in
// the post-compaction log), which would deadlock if an in-flight append
// held a lock the capture needs.
type Store interface {
	TruthLog
	WorkerLog
	TaskLog
	TrajLog

	// Load reads the persisted state, folded (FoldEvents already applied, so
	// WorkerEvents is empty and Workers carry the final absolute values). It
	// returns (nil, nil) when the backend holds no state (first boot).
	Load() (*State, error)
	// Snapshot atomically captures the state via the callback and durably
	// persists it, compacting any log. The callback runs under the
	// backend's append mutex, so no append can slip between the capture and
	// the compaction (which would lose it). The store owns the returned
	// State afterwards.
	Snapshot(capture func() *State) error
	// Stats reports backend counters for observability.
	Stats() Stats
	// Close releases backend resources. Appends after Close are errors.
	Close() error
}

// WorldVerifier is optionally implemented by backends that can pin the
// world (scenario) their storage was written by. The core calls VerifyWorld
// with a fingerprint of the current substrates before replaying: a backend
// seeing the fingerprint for the first time records it; a mismatch with the
// recorded one is an error — replaying another world's truths and task
// decisions would serve wrong routes as crowd-verified.
type WorldVerifier interface {
	VerifyWorld(fingerprint uint64) error
}

// Discard returns the backend used when no Store is configured: appends are
// counted for observability but nothing is retained. There is nothing to
// restore in a process-local deployment, so retaining records (as memstore
// does for its replay contract) would only grow memory without bound in
// long-lived servers and benchmarks.
func Discard() Store {
	return &discard{stats: Stats{Backend: "none"}}
}

type discard struct {
	mu sync.Mutex
	//cplint:guardedby mu
	stats Stats
}

func (d *discard) count(f func(*Stats)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f(&d.stats)
	return nil
}

func (d *discard) AppendTruth(TruthRecord) error {
	return d.count(func(s *Stats) { s.TruthAppends++ })
}

func (d *discard) AppendWorkerEvents(evs []WorkerEvent) error {
	return d.count(func(s *Stats) { s.WorkerEvents += uint64(len(evs)) })
}

func (d *discard) AppendTrips(recs []TrajRecord) error {
	return d.count(func(s *Stats) { s.TrajAppends += uint64(len(recs)) })
}

func (d *discard) AppendTaskOpen(TaskRecord) error {
	return d.count(func(s *Stats) { s.TaskEvents++ })
}

func (d *discard) AppendTaskDecision(int64, int, bool) error {
	return d.count(func(s *Stats) { s.TaskEvents++ })
}

func (d *discard) AppendTaskClose(int64) error {
	return d.count(func(s *Stats) { s.TaskEvents++ })
}

func (d *discard) Load() (*State, error) { return nil, nil }

func (d *discard) Snapshot(func() *State) error {
	// Nothing to persist; counting keeps the admin endpoint observable.
	return d.count(func(s *Stats) { s.Snapshots++ })
}

func (d *discard) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *discard) Close() error { return nil }

// Stats are backend observability counters, surfaced on GET /v1/health.
type Stats struct {
	Backend string `json:"backend"`
	// Appends since process start.
	TruthAppends  uint64 `json:"truth_appends"`
	WorkerEvents  uint64 `json:"worker_events"`
	TaskEvents    uint64 `json:"task_events"`
	TrajAppends   uint64 `json:"traj_appends"` // ingested trips logged
	Snapshots     uint64 `json:"snapshots"`
	WALRecords    uint64 `json:"wal_records"` // records currently in the live log
	WALBytes      int64  `json:"wal_bytes"`
	LoadedTruths  int    `json:"loaded_truths"`
	LoadedWorkers int    `json:"loaded_workers"`
	LoadedTasks   int    `json:"loaded_tasks"`
	LoadedTrips   int    `json:"loaded_trips"`
	// Truncated reports that Load hit a torn or corrupt record tail in the
	// WAL and recovered the valid prefix (expected after a crash mid-append).
	Truncated bool `json:"wal_truncated,omitempty"`
}
