// Package routecache implements the serving-path cache in front of the
// route generation component: a sharded, bounded LRU keyed by origin,
// destination and departure-time slot. Repeat OD pairs within the same time
// slot skip Dijkstra, Yen's k-shortest and the popular-route miners
// entirely. Entries are invalidated when a new verified truth lands for
// their key, keeping the cache consistent with the truth database's view of
// an OD pair (see DESIGN.md §6).
//
// The cache is safe for concurrent use: keys hash to independent shards,
// each with its own mutex, so parallel request handlers contend only when
// they collide on a shard. Counters are maintained with atomics and exposed
// via Stats for the /api/health endpoint.
package routecache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies one cached entry: an OD pair plus a departure-time slot
// (the same quantization the truth database uses for its time tags).
type Key struct {
	From, To int64
	Slot     int
}

// hash mixes the key fields into a shard index seed (splitmix-style).
//
//cplint:hotpath
func (k Key) hash() uint64 {
	h := uint64(k.From)*0x9E3779B97F4A7C15 + uint64(k.To)*0xC2B2AE3D27D4EB4F + uint64(k.Slot)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return h
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Size          int
	Capacity      int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

const defaultShards = 16

// Cache is a sharded, bounded LRU from Key to V. A nil *Cache is a valid,
// permanently empty cache (every lookup misses, every store is dropped), so
// callers can disable caching without branching.
type Cache[V any] struct {
	shards [defaultShards]shard[V]

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

type shard[V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[Key]*list.Element
}

type entry[V any] struct {
	key Key
	val V
}

// New creates a cache bounded to roughly capacity entries (rounded up to a
// multiple of the shard count). capacity <= 0 returns nil: the disabled
// cache.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + defaultShards - 1) / defaultShards
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i] = shard[V]{
			cap: perShard,
			ll:  list.New(),
			m:   make(map[Key]*list.Element, perShard),
		}
	}
	return c
}

//cplint:hotpath
func (c *Cache[V]) shard(k Key) *shard[V] {
	return &c.shards[k.hash()%defaultShards]
}

// Get returns the cached value for k and marks it most recently used.
// Cache hits sit on every recommendation request, so the lookup is part of
// the allocation-free serving budget.
//
//cplint:hotpath
func (c *Cache[V]) Get(k Key) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	el, ok := sh.m[k]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return zero, false
	}
	sh.ll.MoveToFront(el)
	v := el.Value.(*entry[V]).val
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores v under k, evicting the shard's least recently used entry when
// the shard is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache[V]) Put(k Key, v V) {
	if c == nil {
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[k]; ok {
		el.Value.(*entry[V]).val = v
		sh.ll.MoveToFront(el)
		return
	}
	if sh.ll.Len() >= sh.cap {
		oldest := sh.ll.Back()
		if oldest != nil {
			sh.ll.Remove(oldest)
			delete(sh.m, oldest.Value.(*entry[V]).key)
			c.evictions.Add(1)
		}
	}
	sh.m[k] = sh.ll.PushFront(&entry[V]{key: k, val: v})
}

// Invalidate drops the entry for k, if present. It returns whether an entry
// was dropped.
func (c *Cache[V]) Invalidate(k Key) bool {
	if c == nil {
		return false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.m[k]
	if !ok {
		return false
	}
	sh.ll.Remove(el)
	delete(sh.m, k)
	c.invalidations.Add(1)
	return true
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters. A nil cache reports all zeros.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Size:          c.Len(),
		Capacity:      c.shards[0].cap * defaultShards,
	}
}
