package routecache

import (
	"fmt"
	"sync"
	"testing"
)

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache[int]
	if _, ok := c.Get(Key{1, 2, 3}); ok {
		t.Error("nil cache returned a hit")
	}
	c.Put(Key{1, 2, 3}, 7) // must not panic
	if c.Invalidate(Key{1, 2, 3}) {
		t.Error("nil cache invalidated an entry")
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d", c.Len())
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil cache Stats = %+v", s)
	}
	if New[int](0) != nil || New[int](-5) != nil {
		t.Error("New with non-positive capacity should return nil")
	}
}

func TestGetPutInvalidate(t *testing.T) {
	c := New[string](64)
	k := Key{From: 4, To: 9, Slot: 8}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "route-a")
	v, ok := c.Get(k)
	if !ok || v != "route-a" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// Same OD, different slot is a distinct entry.
	if _, ok := c.Get(Key{From: 4, To: 9, Slot: 9}); ok {
		t.Error("slot should be part of the key")
	}
	// Overwrite refreshes the value.
	c.Put(k, "route-b")
	if v, _ := c.Get(k); v != "route-b" {
		t.Errorf("after overwrite Get = %q", v)
	}
	if !c.Invalidate(k) {
		t.Error("Invalidate missed an existing entry")
	}
	if _, ok := c.Get(k); ok {
		t.Error("hit after invalidation")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Invalidations != 1 {
		t.Errorf("stats = %+v, want 2 hits, 1 invalidation", st)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Errorf("hit rate = %v, want in (0,1)", st.HitRate())
	}
}

func TestBoundedLRUEviction(t *testing.T) {
	c := New[int](16) // 1 entry per shard
	n := 400
	for i := 0; i < n; i++ {
		c.Put(Key{From: int64(i), To: int64(i + 1), Slot: i % 24}, i)
	}
	if got := c.Len(); got > 16 {
		t.Errorf("cache grew past capacity: %d > 16", got)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions recorded despite overflow")
	}
	if st.Size != c.Len() {
		t.Errorf("Stats.Size = %d, Len = %d", st.Size, c.Len())
	}
	if st.Capacity != 16 {
		t.Errorf("Stats.Capacity = %d, want 16", st.Capacity)
	}
}

func TestLRURecencyWithinShard(t *testing.T) {
	c := New[int](32) // 2 entries per shard
	// Find three keys mapping to the same shard.
	var ks []Key
	want := Key{From: 0, To: 0, Slot: 0}.hash() % defaultShards
	for i := 1; len(ks) < 3; i++ {
		k := Key{From: int64(i), To: int64(2 * i), Slot: i % 24}
		if k.hash()%defaultShards == want {
			ks = append(ks, k)
		}
	}
	c.Put(ks[0], 0)
	c.Put(ks[1], 1)
	c.Get(ks[0]) // make ks[0] most recent; ks[1] is now LRU
	c.Put(ks[2], 2)
	if _, ok := c.Get(ks[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(ks[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(ks[2]); !ok {
		t.Error("new entry missing")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{From: int64(i % 40), To: int64((i + g) % 40), Slot: i % 24}
				if v, ok := c.Get(k); ok && v < 0 {
					t.Errorf("corrupt value %d", v)
				}
				c.Put(k, i)
				if i%7 == 0 {
					c.Invalidate(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 256 {
		t.Errorf("cache exceeded capacity under contention: %d", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no lookups recorded")
	}
}

func TestShardDistribution(t *testing.T) {
	// Sequential node IDs must not all land on one shard.
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		k := Key{From: int64(i), To: int64(i + 1), Slot: 8}
		seen[k.hash()%defaultShards] = true
	}
	if len(seen) < defaultShards/2 {
		t.Errorf("keys cover only %d/%d shards", len(seen), defaultShards)
	}
}

func ExampleCache() {
	c := New[string](128)
	k := Key{From: 3, To: 317, Slot: 8}
	c.Put(k, "3->9->317")
	if v, ok := c.Get(k); ok {
		fmt.Println(v)
	}
	// Output: 3->9->317
}
