// Package experiments regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded results). Each experiment builds its workload
// deterministically, runs the relevant system components, and returns a
// printable Table whose rows correspond to the series the paper would plot.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"crowdplanner/internal/core"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// Table is one experiment result: a titled grid of cells.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f2, f3 and d format cells.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }

// Worlds are shared across experiments and built once.
var (
	worldOnce sync.Once
	world     *core.Scenario
)

// World returns the shared mid-size scenario used by most experiments: a
// 16x16 city, 240 drivers, ~1300 trips, 160 landmarks, 240 workers.
func World() *core.Scenario {
	worldOnce.Do(func() {
		cfg := core.DefaultScenarioConfig()
		cfg.City.Cols, cfg.City.Rows = 16, 16
		cfg.City.Seed = 101
		cfg.Population.NumDrivers = 240
		cfg.Population.Seed = 102
		cfg.Dataset.NumODs = 45
		cfg.Dataset.TripsPerOD = 28
		cfg.Dataset.Seed = 103
		cfg.Landmarks.NumPoints = 150
		cfg.Landmarks.NumLines = 10
		cfg.Landmarks.NumRegions = 6
		cfg.Landmarks.Seed = 104
		cfg.Checkins.NumUsers = 300
		cfg.Checkins.Seed = 105
		cfg.Workers.NumWorkers = 240
		cfg.Workers.Seed = 106
		cfg.System.PMF.Iters = 60
		world = core.BuildScenario(cfg)
	})
	return world
}

// crowdForcedConfig disables the TR gates so every request reaches the CR
// module — used by the worker/early-stop experiments that study the crowd
// path in isolation.
func crowdForcedConfig(base core.Config) core.Config {
	base.AgreementSim = 1.01
	base.EtaConfidence = 1.01
	base.ReuseTruth = false
	return base
}

// denseMinTrips is the minimum corpus support for an OD pair to count as
// "dense" in the experiments.
const denseMinTrips = 10

// denseODs picks the n best-supported OD pairs of the corpus (dense) with
// their modal departure time. Only ODs with at least denseMinTrips trips
// qualify; if fewer exist the best-supported remainder is used.
func denseODs(scn *core.Scenario, n int) []core.Request {
	type odKey struct{ from, to roadnet.NodeID }
	counts := map[odKey]int{}
	depart := map[odKey]routing.SimTime{}
	for _, tr := range scn.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		k := odKey{tr.Route.Source(), tr.Route.Dest()}
		counts[k]++
		depart[k] = tr.Depart
	}
	type scored struct {
		k odKey
		c int
	}
	var all []scored
	for k, c := range counts {
		all = append(all, scored{k, c})
	}
	// Deterministic order: by count desc, then node IDs.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := all[j], all[j-1]
			if a.c > b.c || (a.c == b.c && (a.k.from < b.k.from || (a.k.from == b.k.from && a.k.to < b.k.to))) {
				all[j], all[j-1] = all[j-1], all[j]
			} else {
				break
			}
		}
	}
	var out []core.Request
	for i := 0; i < len(all) && len(out) < n; i++ {
		if all[i].c < denseMinTrips && len(out) > 0 {
			break
		}
		k := all[i].k
		out = append(out, core.Request{From: k.from, To: k.to, Depart: depart[k]})
	}
	return out
}

// sparseODs draws OD pairs that have little or no trajectory support.
func sparseODs(scn *core.Scenario, n int, seed int64) []core.Request {
	rng := newRng(seed)
	ods, _ := traj.RandomODs(scn.Graph, n*3, 1500, rng) // shortfall fine: only n are kept
	var out []core.Request
	for _, od := range ods {
		if len(out) >= n {
			break
		}
		if len(scn.Data.TripsBetween(od.From, od.To, 300)) > 2 {
			continue // too well supported to count as sparse
		}
		out = append(out, core.Request{
			From: od.From, To: od.To, Depart: routing.At(rng.Intn(5), 8+rng.Intn(10), 0),
		})
	}
	return out
}
