package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// cellFloat parses a table cell as float.
func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{ID: "T", Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.Notes = append(tbl.Notes, "a note")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T: demo ==", "a ", "bb", "1", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWorldBuildsOnce(t *testing.T) {
	w1 := World()
	w2 := World()
	if w1 != w2 {
		t.Error("World should be cached")
	}
	if w1.Graph.NumNodes() < 200 {
		t.Errorf("world too small: %d nodes", w1.Graph.NumNodes())
	}
}

func TestDenseAndSparseODs(t *testing.T) {
	scn := World()
	dense := denseODs(scn, 10)
	if len(dense) != 10 {
		t.Fatalf("dense = %d", len(dense))
	}
	// Dense ODs must have real support.
	for _, req := range dense[:3] {
		if len(scn.Data.TripsBetween(req.From, req.To, 300)) < 3 {
			t.Error("dense OD lacks trips")
		}
	}
	sparse := sparseODs(scn, 8, 42)
	for _, req := range sparse {
		if len(scn.Data.TripsBetween(req.From, req.To, 300)) > 2 {
			t.Error("sparse OD has too many trips")
		}
	}
}

func TestE1AccuracyShape(t *testing.T) {
	tbl := E1Accuracy(12)
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 methods", len(tbl.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tbl.Rows {
		byName[r[0]] = r
	}
	cp := byName["CrowdPlanner"]
	if cp == nil {
		t.Fatal("no CrowdPlanner row")
	}
	cpDense := cellFloat(t, cp[1])
	// CrowdPlanner must beat both web-service baselines on dense data —
	// the paper's headline claim.
	for _, base := range []string{"ws-shortest", "ws-fastest"} {
		if b := cellFloat(t, byName[base][1]); b > cpDense+1e-9 {
			t.Errorf("%s (%v) beats CrowdPlanner (%v) on dense", base, b, cpDense)
		}
	}
	// Miners must answer fewer sparse requests than CrowdPlanner.
	cpSparseAns := cellFloat(t, cp[7])
	for _, miner := range []string{"MPR", "LDR", "MFP"} {
		if a := cellFloat(t, byName[miner][7]); a > cpSparseAns+1e-9 {
			t.Errorf("%s answers more sparse requests (%v) than CrowdPlanner (%v)", miner, a, cpSparseAns)
		}
	}
}

func TestE2QuestionsShape(t *testing.T) {
	tbl := E2Questions(8)
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range tbl.Rows {
		id3 := cellFloat(t, r[2])
		random := cellFloat(t, r[4])
		all := cellFloat(t, r[5])
		if id3 > all+1e-9 {
			t.Errorf("n=%s: ID3 %v exceeds ask-all %v", r[0], id3, all)
		}
		if id3 > random+0.35 {
			t.Errorf("n=%s: ID3 %v materially worse than random %v", r[0], id3, random)
		}
	}
	// Expected questions must grow with n for ID3.
	first := cellFloat(t, tbl.Rows[0][2])
	last := cellFloat(t, tbl.Rows[len(tbl.Rows)-1][2])
	if last < first {
		t.Errorf("ID3 questions should grow with n: %v -> %v", first, last)
	}
}

func TestE3SelectionShape(t *testing.T) {
	tbl := E3Selection(2)
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Brute force must be slowest at the largest size.
	lastRow := tbl.Rows[len(tbl.Rows)-1]
	bf := cellFloat(t, lastRow[1])
	greedy := cellFloat(t, lastRow[3])
	if bf < greedy {
		t.Errorf("brute force (%v µs) should cost more than greedy (%v µs) at m=21", bf, greedy)
	}
}

func TestE5PMFShape(t *testing.T) {
	tbl := E5PMF()
	if len(tbl.Rows) < 4 {
		t.Fatal("missing rows")
	}
	// In the density sweep PMF must beat the baseline once the matrix has
	// signal (>= 5% density); at 2% the held-out entries are near the
	// information floor and PMF only needs to stay comparable.
	for i, r := range tbl.Rows[:4] {
		pmf := cellFloat(t, r[2])
		base := cellFloat(t, r[3])
		if i == 0 {
			if pmf > base*1.15 {
				t.Errorf("density %s: PMF RMSE %v far above baseline %v", r[0], pmf, base)
			}
			continue
		}
		if pmf >= base {
			t.Errorf("density %s: PMF RMSE %v not below baseline %v", r[0], pmf, base)
		}
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry smoke run is slow")
	}
	var buf bytes.Buffer
	// Tiny scale: every experiment must run end to end without error.
	if err := RunAll(&buf, []string{"E2", "E3", "E5"}, 0.1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E2", "E3", "E5"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("output missing experiment %s", id)
		}
	}
}

func TestRunAllUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, []string{"E99"}, 1); err == nil {
		t.Error("unknown ID should error")
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E1"); !ok {
		t.Error("E1 should exist")
	}
	if _, ok := Find("nope"); ok {
		t.Error("nope should not exist")
	}
	if len(Registry()) != 13 {
		t.Errorf("registry size = %d, want 13", len(Registry()))
	}
}

func TestScaled(t *testing.T) {
	if scaled(10, 0.5) != 5 || scaled(10, 0.01) != 1 || scaled(3, 2) != 6 {
		t.Error("scaled arithmetic wrong")
	}
}
