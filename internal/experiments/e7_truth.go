package experiments

import (
	"context"

	"crowdplanner/internal/core"
	"crowdplanner/internal/roadnet"
)

// requestStream draws a Zipf-skewed stream of requests over dense ODs with
// some sparse stragglers, simulating repeating commuter demand. Endpoints
// and departure times are jittered: users ask from nearby intersections at
// nearby times, so the truth DB sees near-misses (mid-range confidence
// scores), not only exact repeats.
func requestStream(scn *core.Scenario, n int, seed int64) []core.Request {
	rng := newRng(seed)
	dense := denseODs(scn, 20)
	sparse := sparseODs(scn, 10, seed+1)
	jitterNode := func(id roadnet.NodeID) roadnet.NodeID {
		if rng.Float64() < 0.5 {
			return id
		}
		near := scn.Graph.NodesWithin(scn.Graph.Node(id).Pt, 300)
		if len(near) == 0 {
			return id
		}
		return near[rng.Intn(len(near))]
	}
	var out []core.Request
	for len(out) < n {
		if rng.Float64() < 0.85 && len(dense) > 0 {
			// Zipf over the dense ODs: rank r chosen with weight 1/(r+1).
			r := 0
			for r+1 < len(dense) && rng.Float64() > 1/float64(r+2) {
				r++
			}
			req := dense[r]
			req.From = jitterNode(req.From)
			req.To = jitterNode(req.To)
			if req.From == req.To {
				continue
			}
			// Jitter the departure within the same hour to exercise slot
			// matching.
			req.Depart = req.Depart.Add(float64(rng.Intn(40) - 20))
			out = append(out, req)
		} else if len(sparse) > 0 {
			out = append(out, sparse[rng.Intn(len(sparse))])
		}
	}
	return out
}

// E7Truth reproduces the TR-resolution figure (reconstructed E7): how the
// confidence threshold η splits a 300-request stream across resolution
// stages and what it does to accuracy, plus the truth-reuse hit rate over
// stream quarters. Expected shape: higher η pushes more requests to the
// crowd and slightly raises accuracy; the reuse rate climbs as the truth DB
// warms up.
func E7Truth(streamLen int) []*Table {
	scn := World()
	stages := &Table{
		ID:     "E7a",
		Title:  "resolution stages and accuracy vs confidence threshold η (reuse disabled)",
		Header: []string{"η", "agree%", "conf%", "crowd%", "fallback%", "meanSim"},
	}
	for _, eta := range []float64{0.3, 0.5, 0.75, 0.9} {
		cfg := scn.System.Config()
		cfg.EtaConfidence = eta
		// Reuse is disabled so repeated requests exercise the confidence
		// gate (with reuse on, exact repeats short-circuit before η ever
		// matters; E7b measures that effect instead).
		cfg.ReuseTruth = false
		sys := core.New(cfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
			&core.PopulationOracle{Data: scn.Data, Sample: cfg.OracleSample})
		counts := map[core.Stage]int{}
		var simSum float64
		var simN int
		for _, req := range requestStream(scn, streamLen, 7000) {
			resp, err := sys.Recommend(context.Background(), req)
			if err != nil {
				continue
			}
			counts[resp.Stage]++
			if truth, err := scn.Data.GroundTruth(req.From, req.To, req.Depart, 40); err == nil {
				simSum += resp.Route.Similarity(truth)
				simN++
			}
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		pct := func(s core.Stage) string { return f2(float64(counts[s]) / float64(total) * 100) }
		meanSim := 0.0
		if simN > 0 {
			meanSim = simSum / float64(simN)
		}
		stages.AddRow(f2(eta), pct(core.StageAgreement),
			pct(core.StageConfidence), pct(core.StageCrowd), pct(core.StageFallback), f3(meanSim))
	}
	stages.Notes = append(stages.Notes,
		"expected shape: higher η diverts confidence-stage traffic to the crowd")

	reuse := &Table{
		ID:     "E7b",
		Title:  "truth-reuse hit rate over stream quarters (η = 0.75)",
		Header: []string{"quarter", "requests", "reuse%", "crowd%"},
	}
	cfg := scn.System.Config()
	sys := core.New(cfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
		&core.PopulationOracle{Data: scn.Data, Sample: cfg.OracleSample})
	stream := requestStream(scn, streamLen, 7001)
	quarter := len(stream) / 4
	for q := 0; q < 4; q++ {
		lo, hi := q*quarter, (q+1)*quarter
		if q == 3 {
			hi = len(stream)
		}
		var reuses, crowds, total int
		for _, req := range stream[lo:hi] {
			resp, err := sys.Recommend(context.Background(), req)
			if err != nil {
				continue
			}
			total++
			switch resp.Stage {
			case core.StageReuse:
				reuses++
			case core.StageCrowd:
				crowds++
			}
		}
		if total == 0 {
			continue
		}
		reuse.AddRow(d(q+1), d(total),
			f2(float64(reuses)/float64(total)*100),
			f2(float64(crowds)/float64(total)*100))
	}
	reuse.Notes = append(reuse.Notes,
		"expected shape: reuse rate climbs across quarters as truths accumulate; crowd rate falls")
	return []*Table{stages, reuse}
}
