package experiments

import (
	"context"

	"crowdplanner/internal/core"
	"crowdplanner/internal/popular"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// E1Accuracy reproduces the headline comparison (reconstructed Table E1):
// recommendation quality per source — web-service shortest and fastest,
// the three popular-route miners, TR-only CrowdPlanner (crowd disabled) and
// full CrowdPlanner — on dense vs sparse trajectory regions. Quality is the
// mean route similarity to the population ground truth and the win rate
// (similarity ≥ 0.9). Expected shape (paper §VI): CrowdPlanner best
// everywhere; MFP the strongest miner on dense data; miners degrade badly on
// sparse data while CrowdPlanner holds.
func E1Accuracy(odsPerRegime int) *Table {
	scn := World()
	tbl := &Table{
		ID:    "E1",
		Title: "recommendation accuracy by source (dense vs sparse regions)",
		Header: []string{
			"method",
			"dense meanSim", "dense sim|ans", "dense win%", "dense answered%",
			"sparse meanSim", "sparse win%", "sparse answered%",
		},
	}

	dense := denseODs(scn, odsPerRegime)
	sparse := sparseODs(scn, odsPerRegime, 777)

	type method struct {
		name string
		rec  func(req core.Request) (roadnet.Route, bool)
	}
	gt := func(req core.Request) (roadnet.Route, bool) {
		r, err := scn.Data.GroundTruth(req.From, req.To, req.Depart, scn.System.Config().OracleSample)
		return r, err == nil
	}

	mkMiner := func(m popular.Miner) func(core.Request) (roadnet.Route, bool) {
		return func(req core.Request) (roadnet.Route, bool) {
			r, _, err := m.Mine(scn.Data, req.From, req.To, req.Depart)
			return r, err == nil
		}
	}
	mkCost := func(cost routing.CostFunc) func(core.Request) (roadnet.Route, bool) {
		return func(req core.Request) (roadnet.Route, bool) {
			r, _, err := routing.ShortestPath(scn.Graph, req.From, req.To, cost, req.Depart)
			return r, err == nil
		}
	}
	// TR-only: full pipeline but the crowd path falls back to best prior.
	trCfg := scn.System.Config()
	trCfg.ReuseTruth = false
	trCfg.WorkersPerTask = 0 // no workers => StageFallback instead of crowd
	trOnly := core.New(trCfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
		&core.PopulationOracle{Data: scn.Data, Sample: trCfg.OracleSample})
	// Full CrowdPlanner on a fresh truth DB.
	cpCfg := scn.System.Config()
	cpCfg.ReuseTruth = false
	cp := core.New(cpCfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
		&core.PopulationOracle{Data: scn.Data, Sample: cpCfg.OracleSample})

	mkSystem := func(s *core.System) func(core.Request) (roadnet.Route, bool) {
		return func(req core.Request) (roadnet.Route, bool) {
			resp, err := s.Recommend(context.Background(), req)
			if err != nil {
				return roadnet.Route{}, false
			}
			return resp.Route, true
		}
	}

	methods := []method{
		{"ws-shortest", mkCost(routing.DistanceCost)},
		{"ws-fastest", mkCost(routing.TravelTimeCost)},
		{"MPR", mkMiner(popular.NewMPR())},
		{"LDR", mkMiner(popular.NewLDR())},
		{"MFP", mkMiner(popular.NewMFP())},
		{"TR-only", mkSystem(trOnly)},
		{"CrowdPlanner", mkSystem(cp)},
	}

	evaluate := func(rec func(core.Request) (roadnet.Route, bool), reqs []core.Request) (meanSim, simIfAns, winRate, answered float64) {
		var simSum float64
		var wins, ok, total int
		for _, req := range reqs {
			truth, hasGT := gt(req)
			if !hasGT {
				continue
			}
			total++
			r, found := rec(req)
			if !found || r.Empty() {
				continue
			}
			ok++
			sim := r.Similarity(truth)
			simSum += sim
			if sim >= 0.9 {
				wins++
			}
		}
		if total == 0 {
			return 0, 0, 0, 0
		}
		// Unanswered requests score 0 similarity in meanSim: a recommender
		// that declines sparse requests pays for it, as in the paper's
		// motivation. simIfAns conditions on having answered, which is how
		// the paper grades the miners themselves.
		if ok > 0 {
			simIfAns = simSum / float64(ok)
		}
		return simSum / float64(total), simIfAns, float64(wins) / float64(total), float64(ok) / float64(total)
	}

	for _, m := range methods {
		dSim, dCond, dWin, dAns := evaluate(m.rec, dense)
		sSim, _, sWin, sAns := evaluate(m.rec, sparse)
		tbl.AddRow(m.name, f3(dSim), f3(dCond), f2(dWin*100), f2(dAns*100), f3(sSim), f2(sWin*100), f2(sAns*100))
	}
	tbl.Notes = append(tbl.Notes,
		"win = similarity to population ground truth >= 0.9; unanswered requests count as similarity 0 in meanSim",
		"sim|ans conditions on the method having answered (how the paper grades the miners)",
		"expected shape: CrowdPlanner tops both regimes; MFP best miner on sim|ans; miners collapse on sparse")
	return tbl
}
