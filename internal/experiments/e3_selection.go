package experiments

import (
	"fmt"
	"time"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/geo"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/task"
)

// syntheticSelection builds a selection instance with exactly m beneficial
// landmarks over n candidates, with random membership and significances.
func syntheticSelection(n, m int, seed int64) (*landmark.Set, []task.Candidate) {
	rng := newRng(seed)
	for {
		ls := make([]*landmark.Landmark, m)
		for i := range ls {
			ls[i] = &landmark.Landmark{
				ID:           landmark.ID(i),
				Pt:           geo.Point{X: float64(i) * 100},
				Significance: rng.Float64(),
			}
		}
		set := landmark.NewSet(ls)
		cands := make([]task.Candidate, n)
		for c := range cands {
			var ids []landmark.ID
			for j := 0; j < m; j++ {
				if rng.Intn(2) == 1 {
					ids = append(ids, landmark.ID(j))
				}
			}
			cands[c] = task.Candidate{
				Source: fmt.Sprintf("c%d", c),
				LRoute: calibrate.LandmarkRoute{Landmarks: ids},
			}
		}
		// Keep only instances where all m landmarks are beneficial and the
		// candidates are distinguishable, so the search space size is
		// exactly m.
		if bc, err := task.BeneficialCount(set, cands); err == nil && bc == m {
			return set, cands
		}
	}
}

// E3Selection reproduces the selection-efficiency figure (reconstructed E3):
// runtime of BruteForce vs ILS vs GreedySelect as the number of beneficial
// landmarks grows, at 4 candidates. All three return the same objective
// value (verified by the task package property tests); the figure is about
// cost. Expected shape: BruteForce grows exponentially, ILS slower than
// Greedy, Greedy flattest.
func E3Selection(reps int) *Table {
	tbl := &Table{
		ID:     "E3",
		Title:  "landmark-selection runtime (µs) vs #beneficial landmarks (4 candidates)",
		Header: []string{"landmarks", "BruteForce µs", "ILS µs", "Greedy µs", "objective"},
	}
	for _, m := range []int{6, 9, 12, 15, 18, 21} {
		var bf, ils, greedy time.Duration
		var objective float64
		for rep := 0; rep < reps; rep++ {
			set, cands := syntheticSelection(4, m, int64(1000*m+rep))
			t0 := time.Now()
			_, v1, err1 := task.SelectOnly(set, cands, task.BruteForce)
			bf += time.Since(t0)
			t0 = time.Now()
			_, _, err2 := task.SelectOnly(set, cands, task.ILS)
			ils += time.Since(t0)
			t0 = time.Now()
			_, _, err3 := task.SelectOnly(set, cands, task.Greedy)
			greedy += time.Since(t0)
			if err1 == nil && err2 == nil && err3 == nil {
				objective += v1
			}
		}
		fr := float64(reps)
		tbl.AddRow(d(m),
			f2(float64(bf.Microseconds())/fr),
			f2(float64(ils.Microseconds())/fr),
			f2(float64(greedy.Microseconds())/fr),
			f3(objective/fr))
	}
	tbl.Notes = append(tbl.Notes,
		"all algorithms return identical objective values (enforced by property tests)",
		"expected shape: BruteForce exponential, Greedy cheapest")
	return tbl
}
