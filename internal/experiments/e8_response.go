package experiments

import (
	"crowdplanner/internal/worker"
)

// E8Response reproduces the response-time figure (reconstructed E8): the
// effect of the η_time filter on on-time answer delivery. For each
// threshold, the top-7 eligible workers are selected under that filter and
// their (simulated) exponential response times are checked against the
// deadline. Expected shape: stricter filters raise the on-time rate and the
// task completion rate, at the cost of shrinking the eligible pool.
func E8Response(numTasks int) *Table {
	scn := World()
	tasks := prepareCrowdTasks(scn, numTasks)
	const k = 7
	// A 30-minute deadline is tight against the ~15-minute mean response,
	// so the filter visibly separates fast and slow workers.
	const deadline = 30.0
	tbl := &Table{
		ID:     "E8",
		Title:  "response-time filter: on-time answers vs η_time (deadline 30 min)",
		Header: []string{"η_time", "assigned/task", "on-time%", "tasks complete%"},
	}
	for _, eta := range []float64{0, 0.3, 0.5, 0.7, 0.9} {
		cfg := scn.System.Config().Select
		cfg.EtaTime = eta
		cfg.DeadlineMinutes = deadline
		var assigned, onTime, complete, total int
		for i, ct := range tasks {
			rng := newRng(80_000 + int64(i))
			ws := worker.TopKEligible(scn.Pool, scn.System.Familiarity(), ct.tk.Questions, k, cfg)
			if len(ws) == 0 {
				total++
				continue
			}
			total++
			allIn := true
			for _, r := range ws {
				assigned++
				t := rng.ExpFloat64()
				if r.Worker.Lambda > 0 {
					t /= r.Worker.Lambda
				} else {
					allIn = false
					continue
				}
				if t <= deadline {
					onTime++
				} else {
					allIn = false
				}
			}
			if allIn {
				complete++
			}
		}
		if total == 0 {
			continue
		}
		onTimePct := 0.0
		if assigned > 0 {
			onTimePct = float64(onTime) / float64(assigned) * 100
		}
		tbl.AddRow(f2(eta), f2(float64(assigned)/float64(total)),
			f2(onTimePct), f2(float64(complete)/float64(total)*100))
	}
	tbl.Notes = append(tbl.Notes,
		"on-time = exponential response sample within the deadline; complete = every assigned worker on time",
		"expected shape: on-time and completion rates rise with η_time")
	return tbl
}
