package experiments

import (
	"context"

	"math/rand"
	"sort"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/core"
	"crowdplanner/internal/crowd"
	"crowdplanner/internal/geo"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/task"
	"crowdplanner/internal/worker"
)

// workerStrategy picks k workers for a task.
type workerStrategy func(scn *core.Scenario, tk *task.Task, k int, rng *rand.Rand) []worker.Ranked

// crowdTask is a prepared crowd task with its simulated truth.
type crowdTask struct {
	tk       *task.Task
	truthSet map[landmark.ID]bool
	bestIdx  int // candidate with max similarity to the population truth
}

// buildCrowdTask assembles a crowdTask from a candidate set: generates the
// question tree and attaches the population ground truth. Returns nil when
// the task cannot be built (indistinguishable candidates, no ground truth).
func buildCrowdTask(scn *core.Scenario, cs candSet) *crowdTask {
	cands := task.MergeIndistinguishable(cs.cands)
	if len(cands) < 2 {
		return nil
	}
	tk, err := task.Generate(1, scn.Landmarks, cands, task.DefaultConfig())
	if err != nil {
		return nil
	}
	truthRoute, err := scn.Data.GroundTruth(cs.req.From, cs.req.To, cs.req.Depart, scn.System.Config().OracleSample)
	if err != nil {
		return nil
	}
	lr := calibrate.Calibrate(scn.Graph, scn.Landmarks, truthRoute, scn.System.Config().Calibrate)
	best, bestSim := 0, -1.0
	for i, c := range cands {
		if s := c.Route.Similarity(truthRoute); s > bestSim {
			bestSim, best = s, i
		}
	}
	return &crowdTask{tk: tk, truthSet: lr.IDSet(), bestIdx: best}
}

// prepareCrowdTasks builds crowd tasks (candidates that disagree) from dense
// ODs, with the population ground truth attached.
func prepareCrowdTasks(scn *core.Scenario, want int) []crowdTask {
	var out []crowdTask
	for _, req := range denseODs(scn, want*3) {
		if len(out) >= want {
			break
		}
		cands, _ := scn.System.Candidates(context.Background(), req)
		ct := buildCrowdTask(scn, candSet{req: req, cands: cands})
		if ct == nil {
			continue
		}
		out = append(out, *ct)
	}
	return out
}

// famFn adapts the workers' *actual* knowledge matrix for the answer
// simulation (selection strategies consult the system's estimate instead).
func famFn(scn *core.Scenario) crowd.FamiliarityFn {
	mtrue := scn.System.TrueFamiliarity()
	return func(workerIdx int, l landmark.ID) float64 {
		if v, ok := mtrue.Get(workerIdx, int(l)); ok {
			return v
		}
		return 0
	}
}

// Strategies under comparison.
func eligibleStrategy(scn *core.Scenario, tk *task.Task, k int, _ *rand.Rand) []worker.Ranked {
	return worker.TopKEligible(scn.Pool, scn.System.Familiarity(), tk.Questions, k, scn.System.Config().Select)
}

func randomStrategy(scn *core.Scenario, _ *task.Task, k int, rng *rand.Rand) []worker.Ranked {
	perm := rng.Perm(scn.Pool.Len())
	var out []worker.Ranked
	for _, i := range perm {
		if len(out) >= k {
			break
		}
		out = append(out, worker.Ranked{Worker: scn.Pool.Workers[i], Score: 0})
	}
	return out
}

func nearestHomeStrategy(scn *core.Scenario, tk *task.Task, k int, _ *rand.Rand) []worker.Ranked {
	// Center of the task's question landmarks.
	var cx, cy float64
	var n int
	for _, lid := range tk.Questions {
		if l := scn.Landmarks.Get(lid); l != nil {
			cx += l.Pt.X
			cy += l.Pt.Y
			n++
		}
	}
	if n > 0 {
		cx /= float64(n)
		cy /= float64(n)
	}
	center := geo.Point{X: cx, Y: cy}
	type scored struct {
		w *worker.Worker
		d float64
	}
	all := make([]scored, scn.Pool.Len())
	for i, w := range scn.Pool.Workers {
		all[i] = scored{w: w, d: geo.Dist(w.Profile.Home, center)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].w.ID < all[b].w.ID
	})
	var out []worker.Ranked
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, worker.Ranked{Worker: all[i].w, Score: -all[i].d})
	}
	return out
}

// runStrategy measures a strategy: fraction of tasks resolved to the best
// candidate and mean per-answer correctness.
func runStrategy(scn *core.Scenario, tasks []crowdTask, strat workerStrategy, k int, seed int64) (pickedBest, answerAcc float64) {
	fam := famFn(scn)
	model := scn.System.Config().Answers
	var best, total int
	var correct, answers int
	for i, ct := range tasks {
		rng := newRng(seed + int64(i))
		workers := strat(scn, ct.tk, k, rng)
		if len(workers) == 0 {
			total++
			continue
		}
		run := crowd.RunTaskHooked(ct.tk, workers, ct.truthSet, fam, model, 0, rng,
			func(_ landmark.ID, as []crowd.Answer, used int) {
				for _, a := range as[:used] {
					answers++
					if a.Correct {
						correct++
					}
				}
			})
		total++
		if run.Resolved == ct.bestIdx {
			best++
		}
	}
	if total == 0 {
		return 0, 0
	}
	pickedBest = float64(best) / float64(total)
	if answers > 0 {
		answerAcc = float64(correct) / float64(answers)
	}
	return pickedBest, answerAcc
}

// E4Workers reproduces the worker-selection figure (reconstructed E4): task
// resolution accuracy and raw answer accuracy for top-k eligible selection
// vs random workers vs nearest-home workers, as k grows. Expected shape:
// eligible > nearest-home > random at every k; all improve with k.
func E4Workers(numTasks int) *Table {
	scn := World()
	tasks := prepareCrowdTasks(scn, numTasks)
	tbl := &Table{
		ID:    "E4",
		Title: "worker selection: task accuracy / answer accuracy vs k",
		Header: []string{"k", "eligible task%", "eligible ans%",
			"nearest task%", "nearest ans%", "random task%", "random ans%"},
	}
	for _, k := range []int{1, 3, 5, 7, 9} {
		eb, ea := runStrategy(scn, tasks, eligibleStrategy, k, 10_000)
		nb, na := runStrategy(scn, tasks, nearestHomeStrategy, k, 10_000)
		rb, ra := runStrategy(scn, tasks, randomStrategy, k, 10_000)
		tbl.AddRow(d(k), f2(eb*100), f2(ea*100), f2(nb*100), f2(na*100), f2(rb*100), f2(ra*100))
	}
	tbl.Notes = append(tbl.Notes,
		"task% = resolved to the candidate closest to population truth; ans% = raw per-answer correctness",
		"expected shape: eligible >= nearest-home >= random at every k")
	return tbl
}
