package experiments

import (
	"math"
	"math/rand"

	"crowdplanner/internal/crowd"
	"crowdplanner/internal/worker"
)

// multipleChoiceRun simulates the baseline the paper argues against
// (§III, citing [20]): showing all n candidate routes on a map as one
// multiple-choice question. Two modelling choices, both documented in
// EXPERIMENTS.md: (1) identifying the best of n routes requires keeping the
// favourite through n−1 pairwise comparisons, so a worker with binary
// accuracy a answers the n-way question correctly with probability a^(n−1);
// (2) errors are *correlated* — workers who get it wrong overwhelmingly
// pick the same most-plausible-looking alternative (the decoy), which is
// precisely what makes n-way map comparisons hard. Plurality voting fuses
// the picks.
func multipleChoiceRun(ct crowdTask, workers []worker.Ranked, fam crowd.FamiliarityFn, model crowd.AnswerModel, rng *rand.Rand) (resolved int) {
	n := len(ct.tk.Candidates)
	if n == 0 {
		return 0
	}
	decoy := (ct.bestIdx + 1) % n
	votes := make([]int, n)
	for _, r := range workers {
		// Mean familiarity over the task's question landmarks stands in for
		// the worker's familiarity with the differences among routes.
		var f float64
		if len(ct.tk.Questions) > 0 {
			for _, q := range ct.tk.Questions {
				f += fam(int(r.Worker.ID), q)
			}
			f /= float64(len(ct.tk.Questions))
		}
		a := model.Accuracy(f)
		pCorrect := math.Pow(a, float64(n-1))
		switch {
		case rng.Float64() < pCorrect:
			votes[ct.bestIdx]++
		case rng.Float64() < 0.8: // correlated confusion towards the decoy
			votes[decoy]++
		default:
			wrong := rng.Intn(n - 1)
			if wrong >= ct.bestIdx {
				wrong++
			}
			votes[wrong]++
		}
	}
	best := 0
	for i, v := range votes {
		if v > votes[best] {
			best = i
		}
	}
	return best
}

// E9Binary reproduces the question-format table (reconstructed E9): binary
// question trees vs a single multiple-choice question, by candidate count.
// Expected shape (paper §III, [20]): comparable at n = 2 (a binary question
// *is* a 2-way choice), binary pulling ahead as n grows.
func E9Binary(tasksPerSize int) *Table {
	scn := World()
	fam := famFn(scn)
	model := scn.System.Config().Answers
	const k = 7
	tbl := &Table{
		ID:    "E9",
		Title: "binary question tree vs multiple choice (7 workers)",
		Header: []string{"n candidates", "tasks", "binary acc%", "binary-ES acc%", "MC acc%",
			"binary answers", "binary-ES answers", "MC answers"},
	}
	for n := 2; n <= 6; n++ {
		sets := candidateSetsOfSize(scn, n, tasksPerSize)
		var cts []crowdTask
		for _, cs := range sets {
			if ct := buildCrowdTask(scn, cs); ct != nil {
				cts = append(cts, *ct)
			}
		}
		if len(cts) == 0 {
			continue
		}
		var binHits, esHits, mcHits int
		var binAnswers, esAnswers, mcAnswers float64
		for i, ct := range cts {
			workers := eligibleStrategy(scn, ct.tk, k, nil)
			if len(workers) == 0 {
				continue
			}
			// Full aggregation (consume every answer).
			rngB := newRng(90_000 + int64(i))
			run := crowd.RunTask(ct.tk, workers, ct.truthSet, fam, model, 0, rngB)
			binAnswers += float64(run.AnswersUsed)
			if run.Resolved == ct.bestIdx {
				binHits++
			}
			// With early stop at 0.95 (the production setting).
			rngE := newRng(90_000 + int64(i))
			runES := crowd.RunTask(ct.tk, workers, ct.truthSet, fam, model, 0.95, rngE)
			esAnswers += float64(runES.AnswersUsed)
			if runES.Resolved == ct.bestIdx {
				esHits++
			}
			rngM := newRng(90_000 + int64(i))
			if multipleChoiceRun(ct, workers, fam, model, rngM) == ct.bestIdx {
				mcHits++
			}
			mcAnswers += float64(len(workers))
		}
		total := float64(len(cts))
		tbl.AddRow(d(n), d(len(cts)),
			f2(float64(binHits)/total*100), f2(float64(esHits)/total*100), f2(float64(mcHits)/total*100),
			f2(binAnswers/total), f2(esAnswers/total), f2(mcAnswers/total))
	}
	tbl.Notes = append(tbl.Notes,
		"MC = one n-way map question per worker (per-worker accuracy a^(n-1)), plurality vote",
		"binary = ID3 tree consuming all answers; binary-ES = same with early stop 0.95",
		"expected shape: binary >= MC with the gap widening as n grows; early stop trades a little accuracy for ~half the answers")
	return tbl
}
