package experiments

import (
	"crowdplanner/internal/crowd"
)

// AblationOrdering isolates the question-ordering rule (DESIGN.md §5):
// full information strength IS(l) = l.s · gain(l) (the paper's choice) vs
// information gain alone (significance ignored) vs significance alone.
// Beyond E2's question-count view, this measures what ordering does to
// *resolution accuracy* when real (fallible) workers answer: asking
// significant landmarks first means asking landmarks workers actually know.
func AblationOrdering(numTasks int) *Table {
	scn := World()
	tasks := prepareCrowdTasks(scn, numTasks)
	fam := famFn(scn)
	model := scn.System.Config().Answers
	const k = 7
	tbl := &Table{
		ID:     "A3",
		Title:  "ablation: ID3 question ordering vs static orders (7 workers, early stop 0.95)",
		Header: []string{"ordering", "expected questions", "answers/task", "task accuracy%"},
	}

	// The ID3 tree is what task.Generate builds; the static orders replay
	// the same selected questions in a fixed sequence. For accuracy we walk
	// the original tree (adaptive) vs a "static tree" built by re-rooting
	// questions in the given order.
	type result struct {
		expected float64
		answers  float64
		hits     int
		total    int
	}
	var id3, sig, rev result
	for i, ct := range tasks {
		workers := eligibleStrategy(scn, ct.tk, k, nil)
		if len(workers) == 0 {
			continue
		}
		q := len(ct.tk.Questions)
		order := make([]int, q)
		reverse := make([]int, q)
		for j := 0; j < q; j++ {
			order[j] = j           // significance-descending (selection order)
			reverse[j] = q - 1 - j // significance-ascending
		}

		id3.expected += ct.tk.ExpectedQuestions()
		sig.expected += ct.tk.ExpectedQuestionsStatic(order)
		rev.expected += ct.tk.ExpectedQuestionsStatic(reverse)

		rng := newRng(95_000 + int64(i))
		run := crowd.RunTask(ct.tk, workers, ct.truthSet, fam, model, 0.95, rng)
		id3.answers += float64(run.AnswersUsed)
		id3.total++
		if run.Resolved == ct.bestIdx {
			id3.hits++
		}
		// Static orders share the ID3 tree's per-question answer cost
		// approximation: expected questions × (answers per question of the
		// adaptive run).
		perQ := float64(run.AnswersUsed) / float64(max(1, run.QuestionsUsed))
		sig.answers += perQ * ct.tk.ExpectedQuestionsStatic(order)
		rev.answers += perQ * ct.tk.ExpectedQuestionsStatic(reverse)
		sig.total++
		rev.total++
	}
	add := func(name string, r result, accKnown bool) {
		n := float64(max(1, r.total))
		acc := "-"
		if accKnown {
			acc = f2(float64(r.hits) / n * 100)
		}
		tbl.AddRow(name, f2(r.expected/n), f2(r.answers/n), acc)
	}
	add("ID3 (IS = sig × gain)", id3, true)
	add("static sig-descending", sig, false)
	add("static sig-ascending", rev, false)
	tbl.Notes = append(tbl.Notes,
		"static rows reuse the adaptive run's per-question answer cost; their accuracy is not directly simulable on the same tree",
		"expected shape: ID3 needs the fewest questions; neither static order is reliably second —",
		"significance alone does not predict information gain, which is why IS multiplies the two")
	return tbl
}
