package experiments

import (
	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/core"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/task"
)

// candSet is a candidate set together with the request it answers.
type candSet struct {
	req   core.Request
	cands []task.Candidate
}

// candidateSetsOfSize builds task candidate sets with exactly n
// landmark-distinguishable candidates, drawn from the k-shortest travel-time
// routes of dense OD pairs.
func candidateSetsOfSize(scn *core.Scenario, n, want int) []candSet {
	var out []candSet
	for _, req := range denseODs(scn, want*4) {
		if len(out) >= want {
			break
		}
		routes, _, err := routing.KShortest(scn.Graph, req.From, req.To, n+3, routing.TravelTimeCost, req.Depart)
		if err != nil {
			continue
		}
		var cands []task.Candidate
		for i, r := range routes {
			cands = append(cands, task.Candidate{
				Source: "alt",
				Route:  r,
				LRoute: calibrate.Calibrate(scn.Graph, scn.Landmarks, r, scn.System.Config().Calibrate),
				Prior:  1 / float64(i+2), // earlier (cheaper) routes more likely best
			})
		}
		cands = task.MergeIndistinguishable(cands)
		if len(cands) < n {
			continue
		}
		out = append(out, candSet{req: req, cands: cands[:n]})
	}
	return out
}

// E2Questions reproduces the question-count figure (reconstructed E2): the
// expected number of binary questions per task as the candidate-set size
// grows, for ID3 ordering vs a static significance-descending order vs
// random static orders vs asking everything. Expected shape: ID3 lowest,
// ask-all highest, gap widening with n.
func E2Questions(tasksPerSize int) *Table {
	scn := World()
	tbl := &Table{
		ID:     "E2",
		Title:  "expected #questions per task vs candidate-set size",
		Header: []string{"n candidates", "tasks", "ID3", "sig-order", "random-order", "ask-all"},
	}
	rng := newRng(2024)
	for n := 2; n <= 6; n++ {
		sets := candidateSetsOfSize(scn, n, tasksPerSize)
		var id3, sig, random, all float64
		var count int
		for _, cs := range sets {
			tk, err := task.Generate(1, scn.Landmarks, cs.cands, task.DefaultConfig())
			if err != nil {
				continue
			}
			count++
			id3 += tk.ExpectedQuestions()
			q := len(tk.Questions)
			all += float64(q)
			// Static significance-descending order (selection order).
			order := make([]int, q)
			for i := range order {
				order[i] = i
			}
			sig += tk.ExpectedQuestionsStatic(order)
			// Average of 5 random static orders.
			var racc float64
			for rep := 0; rep < 5; rep++ {
				perm := rng.Perm(q)
				racc += tk.ExpectedQuestionsStatic(perm)
			}
			random += racc / 5
		}
		if count == 0 {
			continue
		}
		fc := float64(count)
		tbl.AddRow(d(n), d(count), f2(id3/fc), f2(sig/fc), f2(random/fc), f2(all/fc))
	}
	tbl.Notes = append(tbl.Notes,
		"ID3 = information-strength ordered tree (paper §III-C); static orders stop once one candidate remains",
		"expected shape: ID3 lowest, ask-all highest, gap grows with n")
	return tbl
}
