package experiments

import "math/rand"

// newRng returns a deterministic PRNG for the given seed; centralized so
// experiments never touch the global source.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
