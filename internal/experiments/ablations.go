package experiments

import (
	"math/rand"

	"crowdplanner/internal/core"
	"crowdplanner/internal/task"
	"crowdplanner/internal/worker"
)

// AblationVoting isolates the worker-scoring rule (DESIGN.md §5): rated
// voting (the paper's choice) vs the naive familiarity sum it argues
// against. Expected shape: rated voting resolves more tasks correctly
// because it prefers workers who cover all question landmarks.
func AblationVoting(numTasks int) *Table {
	scn := World()
	tasks := prepareCrowdTasks(scn, numTasks)
	tbl := &Table{
		ID:     "A1",
		Title:  "ablation: rated voting vs familiarity-sum worker scoring (sparse estimate)",
		Header: []string{"k", "rated task%", "sum task%", "rated coverage", "sum coverage"},
	}
	// The voting rule only matters when knowledge is uneven, so both
	// strategies run on the sparse (non-PMF) estimate; the PMF-densified
	// matrix gives nearly everyone some familiarity and hides the rule.
	mstar := scn.System.TrueFamiliarity()
	coverage := func(ws []worker.Ranked, tk *task.Task) float64 {
		if len(ws) == 0 {
			return 0
		}
		var sum float64
		for _, r := range ws {
			sum += worker.Coverage(mstar, int(r.Worker.ID), tk.Questions)
		}
		return sum / float64(len(ws))
	}
	ratedStrategy := func(scn *core.Scenario, tk *task.Task, k int, _ *rand.Rand) []worker.Ranked {
		return worker.TopKEligible(scn.Pool, mstar, tk.Questions, k, scn.System.Config().Select)
	}
	sumStrategy := func(scn *core.Scenario, tk *task.Task, k int, _ *rand.Rand) []worker.Ranked {
		return worker.SumFamiliarityTopK(scn.Pool, mstar, tk.Questions, k, scn.System.Config().Select)
	}
	for _, k := range []int{3, 5, 7} {
		rb, _ := runStrategy(scn, tasks, ratedStrategy, k, 30_000)
		sb, _ := runStrategy(scn, tasks, sumStrategy, k, 30_000)
		var rc, sc float64
		for _, ct := range tasks {
			rc += coverage(ratedStrategy(scn, ct.tk, k, nil), ct.tk)
			sc += coverage(sumStrategy(scn, ct.tk, k, nil), ct.tk)
		}
		n := float64(len(tasks))
		tbl.AddRow(d(k), f2(rb*100), f2(sb*100), f2(rc/n), f2(sc/n))
	}
	tbl.Notes = append(tbl.Notes,
		"coverage = mean fraction of question landmarks an assigned worker knows",
		"expected shape: rated voting >= sum on coverage, translating into task accuracy")
	return tbl
}

// AblationPMF isolates the PMF densification step (DESIGN.md §5): worker
// selection with and without latent-factor inference. Expected shape: PMF
// widens the candidate worker pool and nudges task accuracy up, most
// visibly at small k.
func AblationPMF(numTasks int) *Table {
	scn := World()
	tasks := prepareCrowdTasks(scn, numTasks)
	tbl := &Table{
		ID:     "A2",
		Title:  "ablation: PMF densification on vs off",
		Header: []string{"k", "PMF task%", "noPMF task%", "PMF pool", "noPMF pool"},
	}

	// Build a no-PMF familiarity matrix.
	cfgNo := scn.System.Config()
	cfgNo.UsePMF = false
	noPMF := core.New(cfgNo, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
		&core.PopulationOracle{Data: scn.Data, Sample: cfgNo.OracleSample})
	mNo := noPMF.Familiarity()
	mYes := scn.System.Familiarity()

	noStrategy := func(s *core.Scenario, tk *task.Task, k int, _ *rand.Rand) []worker.Ranked {
		return worker.TopKEligible(s.Pool, mNo, tk.Questions, k, s.System.Config().Select)
	}
	for _, k := range []int{3, 5, 7} {
		yb, _ := runStrategy(scn, tasks, eligibleStrategy, k, 31_000)
		nb, _ := runStrategy(scn, tasks, noStrategy, k, 31_000)
		// Candidate-pool width: how many workers have any knowledge of the
		// task landmarks under each matrix.
		var yPool, nPool float64
		for _, ct := range tasks {
			yPool += float64(len(worker.TopKEligible(scn.Pool, mYes, ct.tk.Questions, scn.Pool.Len(), scn.System.Config().Select)))
			nPool += float64(len(worker.TopKEligible(scn.Pool, mNo, ct.tk.Questions, scn.Pool.Len(), scn.System.Config().Select)))
		}
		n := float64(len(tasks))
		tbl.AddRow(d(k), f2(yb*100), f2(nb*100), f2(yPool/n), f2(nPool/n))
	}
	tbl.Notes = append(tbl.Notes,
		"pool = workers with any familiarity on the task's landmarks",
		"expected shape: PMF widens the candidate pool (the paper's stated motivation: avoid biasing tasks to a few well-known workers); task accuracy stays comparable")
	return tbl
}
