package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Spec describes a runnable experiment.
type Spec struct {
	ID    string
	Title string
	// Run executes the experiment at the given scale (1 = the scale used in
	// EXPERIMENTS.md; smaller values shrink workloads for smoke runs).
	Run func(scale float64) []*Table
}

// scaled multiplies a base count by scale with a floor of 1.
func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		return 1
	}
	return n
}

// Select resolves experiment IDs to their specs in registry order — every
// experiment when ids is empty. Unknown IDs are an error.
func Select(ids []string) ([]Spec, error) {
	all := len(ids) == 0
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	var selected []Spec
	for _, s := range Registry() {
		// Checking `all`, not `len(want) == 0`: the latter becomes true once
		// every requested ID is consumed, which used to sweep in every
		// experiment after the last requested one.
		if all || want[s.ID] {
			selected = append(selected, s)
			delete(want, s.ID)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("experiments: unknown experiment IDs %v", unknown)
	}
	return selected, nil
}

// Registry lists every experiment in DESIGN.md §4 order.
func Registry() []Spec {
	return []Spec{
		{"E1", "recommendation accuracy by source", func(s float64) []*Table {
			return []*Table{E1Accuracy(scaled(30, s))}
		}},
		{"E2", "expected questions per task", func(s float64) []*Table {
			return []*Table{E2Questions(scaled(25, s))}
		}},
		{"E3", "landmark selection efficiency", func(s float64) []*Table {
			return []*Table{E3Selection(scaled(5, s))}
		}},
		{"E4", "worker selection strategies", func(s float64) []*Table {
			return []*Table{E4Workers(scaled(40, s))}
		}},
		{"E5", "PMF familiarity prediction", func(float64) []*Table {
			return []*Table{E5PMF()}
		}},
		{"E6", "early stop", func(s float64) []*Table {
			return []*Table{E6EarlyStop(scaled(40, s))}
		}},
		{"E7", "truth reuse and TR resolution", func(s float64) []*Table {
			return E7Truth(scaled(300, s))
		}},
		{"E8", "response-time filtering", func(s float64) []*Table {
			return []*Table{E8Response(scaled(40, s))}
		}},
		{"E9", "binary vs multiple choice", func(s float64) []*Table {
			return []*Table{E9Binary(scaled(15, s))}
		}},
		{"E10", "scalability", func(s float64) []*Table {
			return []*Table{E10Scale(scaled(25, s))}
		}},
		{"A1", "ablation: voting rule", func(s float64) []*Table {
			return []*Table{AblationVoting(scaled(30, s))}
		}},
		{"A2", "ablation: PMF densification", func(s float64) []*Table {
			return []*Table{AblationPMF(scaled(30, s))}
		}},
		{"A3", "ablation: question ordering", func(s float64) []*Table {
			return []*Table{AblationOrdering(scaled(30, s))}
		}},
	}
}

// Find returns the spec with the given ID.
func Find(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// RunAll executes the selected experiments (nil = all) at the given scale,
// printing each table to w. IDs are run in registry order regardless of the
// order given.
func RunAll(w io.Writer, ids []string, scale float64) error {
	selected, err := Select(ids)
	if err != nil {
		return err
	}
	for _, s := range selected {
		fmt.Fprintf(w, "# %s — %s\n", s.ID, s.Title)
		for _, tbl := range s.Run(scale) {
			tbl.Fprint(w)
		}
	}
	return nil
}
