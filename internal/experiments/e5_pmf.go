package experiments

import (
	"math"

	"crowdplanner/internal/worker"
)

// syntheticFamiliarity builds a ground-truth low-rank familiarity matrix
// (rank trueRank) plus noise, and an observed matrix at the given density.
// Returns the observed matrix and an evaluation function computing RMSE of
// a predictor on the held-out (unobserved) entries.
func syntheticFamiliarity(workers, landmarks, trueRank int, density float64, seed int64) (*worker.Matrix, func(predict func(w, l int) float64) float64) {
	rng := newRng(seed)
	W := make([][]float64, workers)
	for i := range W {
		W[i] = make([]float64, trueRank)
		for k := range W[i] {
			W[i][k] = math.Abs(rng.NormFloat64()) * 0.6
		}
	}
	L := make([][]float64, landmarks)
	for j := range L {
		L[j] = make([]float64, trueRank)
		for k := range L[j] {
			L[j][k] = math.Abs(rng.NormFloat64()) * 0.6
		}
	}
	full := make([][]float64, workers)
	for i := range full {
		full[i] = make([]float64, landmarks)
		for j := range full[i] {
			var dot float64
			for k := 0; k < trueRank; k++ {
				dot += W[i][k] * L[j][k]
			}
			full[i][j] = dot + math.Abs(rng.NormFloat64())*0.05
		}
	}
	obs := worker.NewMatrix(workers, landmarks)
	held := map[[2]int]float64{}
	for i := 0; i < workers; i++ {
		for j := 0; j < landmarks; j++ {
			if rng.Float64() < density {
				obs.Set(i, j, full[i][j])
			} else {
				held[[2]int{i, j}] = full[i][j]
			}
		}
	}
	eval := func(predict func(w, l int) float64) float64 {
		var sum float64
		var n int
		for k, v := range held {
			dd := v - predict(k[0], k[1])
			sum += dd * dd
			n++
		}
		if n == 0 {
			return 0
		}
		return math.Sqrt(sum / float64(n))
	}
	return obs, eval
}

// E5PMF reproduces the familiarity-prediction figure (reconstructed E5):
// held-out RMSE of PMF densification vs the observed-only baseline
// (predicting the observed global mean) across matrix densities, plus a
// latent-dimensionality sweep. Expected shape: PMF beats the baseline at
// every density; more factors help up to the true rank, then flatten.
func E5PMF() *Table {
	const workers, landmarks, trueRank = 150, 250, 6
	tbl := &Table{
		ID:     "E5",
		Title:  "familiarity prediction: held-out RMSE, PMF vs observed-mean baseline",
		Header: []string{"density%", "factors", "PMF RMSE", "baseline RMSE", "improvement%"},
	}
	for _, density := range []float64{0.02, 0.05, 0.10, 0.20} {
		obs, eval := syntheticFamiliarity(workers, landmarks, trueRank, density, int64(density*1e6))
		// Observed-mean baseline.
		var mean float64
		var n int
		obs.Each(func(_, _ int, v float64) { mean += v; n++ })
		if n > 0 {
			mean /= float64(n)
		}
		base := eval(func(_, _ int) float64 { return mean })
		cfg := worker.DefaultPMFConfig()
		model := worker.FitPMF(obs, cfg)
		pmf := eval(model.Predict)
		improvement := 0.0
		if base > 0 {
			improvement = (base - pmf) / base * 100
		}
		tbl.AddRow(f2(density*100), d(cfg.Factors), f3(pmf), f3(base), f2(improvement))
	}
	// Factor sweep at 10% density.
	obs, eval := syntheticFamiliarity(workers, landmarks, trueRank, 0.10, 4242)
	for _, factors := range []int{2, 4, 8, 16} {
		cfg := worker.DefaultPMFConfig()
		cfg.Factors = factors
		model := worker.FitPMF(obs, cfg)
		tbl.AddRow("10.00", d(factors), f3(eval(model.Predict)), "-", "-")
	}
	tbl.Notes = append(tbl.Notes,
		"ground truth is a rank-6 latent matrix plus noise; held-out = unobserved entries",
		"expected shape: PMF beats the mean baseline once density reaches ~5% (2% is near the information floor); gains saturate near the true rank")
	return tbl
}
