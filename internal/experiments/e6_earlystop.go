package experiments

import (
	"crowdplanner/internal/crowd"
)

// E6EarlyStop reproduces the early-stop figure (reconstructed E6): answers
// consumed and task accuracy as the stop-confidence threshold sweeps from
// off (consume all answers) to 0.99, with 9 workers per task. Expected
// shape: lower thresholds save more answers; accuracy degrades only
// mildly until the threshold gets close to 0.5.
func E6EarlyStop(numTasks int) *Table {
	scn := World()
	tasks := prepareCrowdTasks(scn, numTasks)
	fam := famFn(scn)
	model := scn.System.Config().Answers
	const k = 9
	tbl := &Table{
		ID:     "E6",
		Title:  "early stop: answers used and accuracy vs confidence threshold (9 workers)",
		Header: []string{"threshold", "answers/task", "saved%", "task accuracy%", "elapsed min"},
	}
	thresholds := []float64{0, 0.7, 0.8, 0.9, 0.95, 0.99}
	for _, th := range thresholds {
		var used, asked, elapsed float64
		var best, total int
		for i, ct := range tasks {
			rng := newRng(60_000 + int64(i))
			workers := eligibleStrategy(scn, ct.tk, k, rng)
			if len(workers) == 0 {
				continue
			}
			run := crowd.RunTask(ct.tk, workers, ct.truthSet, fam, model, th, rng)
			used += float64(run.AnswersUsed)
			asked += float64(run.AnswersAsked)
			elapsed += run.ElapsedMin
			total++
			if run.Resolved == ct.bestIdx {
				best++
			}
		}
		if total == 0 {
			continue
		}
		ft := float64(total)
		saved := 0.0
		if asked > 0 {
			saved = (asked - used) / asked * 100
		}
		label := f2(th)
		if th == 0 {
			label = "off"
		}
		tbl.AddRow(label, f2(used/ft), f2(saved), f2(float64(best)/ft*100), f2(elapsed/ft))
	}
	tbl.Notes = append(tbl.Notes,
		"threshold off = consume every answer; elapsed = sum over questions of slowest consumed answer",
		"expected shape: answer savings grow as the threshold drops; accuracy stays flat until ~0.7")
	return tbl
}
