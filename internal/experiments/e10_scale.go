package experiments

import (
	"context"

	"time"

	"crowdplanner/internal/core"
)

// buildScaledWorld generates a scenario with the given city side length,
// scaling the other substrates proportionally.
func buildScaledWorld(side int, seed int64) *core.Scenario {
	cfg := core.DefaultScenarioConfig()
	cfg.City.Cols, cfg.City.Rows = side, side
	cfg.City.Seed = seed
	cfg.Population.NumDrivers = side * 12
	cfg.Population.Seed = seed + 1
	cfg.Dataset.NumODs = side * 2
	cfg.Dataset.TripsPerOD = 18
	cfg.Dataset.Seed = seed + 2
	cfg.Landmarks.NumPoints = side * side / 2
	cfg.Landmarks.NumLines = side / 2
	cfg.Landmarks.NumRegions = side / 3
	cfg.Landmarks.Seed = seed + 3
	cfg.Checkins.NumUsers = side * 15
	cfg.Checkins.Seed = seed + 4
	cfg.Workers.NumWorkers = side * 15
	cfg.Workers.Seed = seed + 5
	cfg.System.PMF.Iters = 40
	return core.BuildScenario(cfg)
}

// E10Scale reproduces the scalability figure (reconstructed E10):
// end-to-end request latency and throughput as the city (and worker pool)
// grows. Expected shape: latency grows roughly linearly in network size
// (Dijkstra-dominated); throughput falls correspondingly.
func E10Scale(requestsPerSize int) *Table {
	tbl := &Table{
		ID:     "E10",
		Title:  "end-to-end scalability vs city size",
		Header: []string{"city", "nodes", "workers", "build s", "mean latency ms", "req/s"},
	}
	for _, side := range []int{10, 14, 18, 22} {
		t0 := time.Now()
		scn := buildScaledWorld(side, int64(side)*1000)
		build := time.Since(t0)
		reqs := denseODs(scn, requestsPerSize)
		if len(reqs) == 0 {
			continue
		}
		// Fresh system so the truth DB starts cold each run.
		cfg := scn.System.Config()
		sys := core.New(cfg, scn.Graph, scn.Landmarks, scn.Data, scn.Pool,
			&core.PopulationOracle{Data: scn.Data, Sample: cfg.OracleSample})
		t0 = time.Now()
		var done int
		for _, req := range reqs {
			if _, err := sys.Recommend(context.Background(), req); err == nil {
				done++
			}
		}
		elapsed := time.Since(t0)
		if done == 0 {
			continue
		}
		latency := float64(elapsed.Milliseconds()) / float64(done)
		tbl.AddRow(
			f2(float64(side))+"x"+f2(float64(side)),
			d(scn.Graph.NumNodes()), d(scn.Pool.Len()),
			f2(build.Seconds()), f2(latency),
			f2(float64(done)/elapsed.Seconds()))
	}
	tbl.Notes = append(tbl.Notes,
		"latency includes candidate generation (5 providers), truth scoring and the simulated crowd",
		"expected shape: latency grows near-linearly with network size")
	return tbl
}
