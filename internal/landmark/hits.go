package landmark

import (
	"math"
)

// HITSConfig tunes significance inference.
type HITSConfig struct {
	MaxIters int
	Epsilon  float64 // L1 convergence threshold
}

// DefaultHITSConfig converges comfortably on city-scale visit graphs.
func DefaultHITSConfig() HITSConfig {
	return HITSConfig{MaxIters: 60, Epsilon: 1e-9}
}

// InferSignificance runs the HITS-like algorithm of [26] on the bipartite
// traveller↔landmark visit graph and stores each landmark's significance
// (its normalized authority score, scaled so the most significant landmark
// scores 1.0). Landmarks with no visits get significance 0.
//
// Iteration: authority(l) = Σ_{u→l} hub(u); hub(u) = Σ_{u→l} authority(l);
// both vectors are L2-normalized each round. Multiple visits by the same
// traveller reinforce the link, mirroring repeated check-ins.
func (s *Set) InferSignificance(visits []Visit, cfg HITSConfig) {
	n := len(s.all)
	if n == 0 {
		return
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = DefaultHITSConfig().MaxIters
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = DefaultHITSConfig().Epsilon
	}

	// Compact traveller indexing.
	travellerIdx := map[int32]int{}
	for _, v := range visits {
		if _, ok := travellerIdx[v.Traveller]; !ok {
			travellerIdx[v.Traveller] = len(travellerIdx)
		}
	}
	m := len(travellerIdx)
	if m == 0 {
		for _, l := range s.all {
			l.Significance = 0
		}
		return
	}

	type link struct{ u, l int }
	links := make([]link, 0, len(visits))
	for _, v := range visits {
		if int(v.Landmark) < 0 || int(v.Landmark) >= n {
			continue
		}
		links = append(links, link{u: travellerIdx[v.Traveller], l: int(v.Landmark)})
	}

	auth := make([]float64, n)
	hub := make([]float64, m)
	for i := range auth {
		auth[i] = 1
	}
	for i := range hub {
		hub[i] = 1
	}
	normalize := func(v []float64) {
		var sum float64
		for _, x := range v {
			sum += x * x
		}
		norm := math.Sqrt(sum)
		if norm == 0 {
			return
		}
		for i := range v {
			v[i] /= norm
		}
	}
	prev := make([]float64, n)
	for iter := 0; iter < cfg.MaxIters; iter++ {
		copy(prev, auth)
		for i := range auth {
			auth[i] = 0
		}
		for _, lk := range links {
			auth[lk.l] += hub[lk.u]
		}
		normalize(auth)
		for i := range hub {
			hub[i] = 0
		}
		for _, lk := range links {
			hub[lk.u] += auth[lk.l]
		}
		normalize(hub)
		var delta float64
		for i := range auth {
			delta += math.Abs(auth[i] - prev[i])
		}
		if delta < cfg.Epsilon {
			break
		}
	}

	// Scale significance so the top landmark scores 1.
	var maxAuth float64
	for _, a := range auth {
		if a > maxAuth {
			maxAuth = a
		}
	}
	for i, l := range s.all {
		if maxAuth > 0 {
			l.Significance = auth[i] / maxAuth
		} else {
			l.Significance = 0
		}
	}
}
