package landmark

import (
	"fmt"
	"math/rand"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// GenConfig configures synthetic landmark generation.
type GenConfig struct {
	NumPoints  int // POI landmarks
	NumLines   int // street-like landmarks
	NumRegions int // suburb/block-like landmarks
	Seed       int64
}

// DefaultGenConfig scales landmark counts to a mid-size city.
func DefaultGenConfig() GenConfig {
	return GenConfig{NumPoints: 180, NumLines: 12, NumRegions: 8, Seed: 13}
}

// Generate places landmarks near the road network: POIs jittered around
// random intersections, line landmarks along arterial edges, region
// landmarks over random neighbourhoods. Deterministic for a given config.
func Generate(g *roadnet.Graph, cfg GenConfig) *Set {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var ls []*Landmark
	nextID := ID(0)
	add := func(l *Landmark) {
		l.ID = nextID
		nextID++
		ls = append(ls, l)
	}

	categories := []Category{
		CatGeneric, CatGeneric, CatGeneric, CatMall, CatStadium,
		CatPark, CatSchool, CatHospital, CatStation, CatMuseum,
	}
	for i := 0; i < cfg.NumPoints; i++ {
		n := g.Node(roadnet.NodeID(rng.Intn(g.NumNodes())))
		cat := categories[rng.Intn(len(categories))]
		add(&Landmark{
			Name:     fmt.Sprintf("%s-%d", cat, i),
			Kind:     PointKind,
			Category: cat,
			Pt: geo.Point{
				X: n.Pt.X + rng.NormFloat64()*40,
				Y: n.Pt.Y + rng.NormFloat64()*40,
			},
		})
	}

	// Line landmarks anchor at the midpoint of arterial edges.
	var arterials []*roadnet.Edge
	for i := 0; i < g.NumEdges(); i++ {
		if e := g.Edge(roadnet.EdgeID(i)); e.Class == roadnet.Arterial {
			arterials = append(arterials, e)
		}
	}
	for i := 0; i < cfg.NumLines && len(arterials) > 0; i++ {
		e := arterials[rng.Intn(len(arterials))]
		mid := geo.Midpoint(g.Node(e.From).Pt, g.Node(e.To).Pt)
		add(&Landmark{
			Name:     fmt.Sprintf("avenue-%d", i),
			Kind:     LineKind,
			Category: CatGeneric,
			Pt:       mid,
			Extent:   e.Length / 2,
		})
	}

	bbox := g.BBox()
	for i := 0; i < cfg.NumRegions; i++ {
		add(&Landmark{
			Name:     fmt.Sprintf("suburb-%d", i),
			Kind:     RegionKind,
			Category: CatGeneric,
			Pt: geo.Point{
				X: bbox.Min.X + rng.Float64()*bbox.Width(),
				Y: bbox.Min.Y + rng.Float64()*bbox.Height(),
			},
			Extent: 300 + rng.Float64()*500,
		})
	}
	return NewSet(ls)
}

// Visit is one traveller-landmark interaction: a check-in at a point of
// interest or a trajectory passing a landmark. Visits are the hyperlinks of
// the HITS graph.
type Visit struct {
	Traveller int32
	Landmark  ID
}

// CheckinConfig configures the synthetic LBSN check-in corpus.
type CheckinConfig struct {
	NumUsers     int
	MeanCheckins float64 // per user
	Seed         int64
}

// DefaultCheckinConfig returns 400 users averaging 30 check-ins each.
func DefaultCheckinConfig() CheckinConfig {
	return CheckinConfig{NumUsers: 400, MeanCheckins: 30, Seed: 17}
}

// GenerateCheckins simulates LBSN check-ins: each user has a gaussian home
// area and checks in at landmarks with probability proportional to category
// popularity and proximity to home. The skew in popularity is what makes
// HITS produce a meaningful significance ranking.
func GenerateCheckins(s *Set, bounds geo.BBox, cfg CheckinConfig) []Visit {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var visits []Visit
	ls := s.All()
	if len(ls) == 0 || cfg.NumUsers <= 0 {
		return nil
	}
	// Precompute category weights.
	weights := make([]float64, len(ls))
	for i, l := range ls {
		weights[i] = l.Category.basePopularity()
	}
	homeSigmaX := bounds.Width() / 6
	homeSigmaY := bounds.Height() / 6
	for u := 0; u < cfg.NumUsers; u++ {
		home := geo.Point{
			X: bounds.Center().X + rng.NormFloat64()*homeSigmaX,
			Y: bounds.Center().Y + rng.NormFloat64()*homeSigmaY,
		}
		n := int(rng.ExpFloat64() * cfg.MeanCheckins)
		if n < 1 {
			n = 1
		}
		// Sample landmarks by weight/distance rejection sampling.
		for k := 0; k < n; k++ {
			for tries := 0; tries < 20; tries++ {
				i := rng.Intn(len(ls))
				d := geo.Dist(home, ls[i].Pt)
				locality := 1.0 / (1.0 + d/2000)
				if rng.Float64() < weights[i]/8*locality {
					visits = append(visits, Visit{Traveller: int32(u), Landmark: ls[i].ID})
					break
				}
			}
		}
	}
	return visits
}
