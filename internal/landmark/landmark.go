// Package landmark models the geographical landmarks CrowdPlanner uses to
// phrase crowd questions, and infers each landmark's significance — how
// widely known it is — with the HITS-like algorithm the paper adopts from
// Zheng et al. [26]: travellers are hubs, landmarks are authorities, and
// check-ins / trajectory visits are the hyperlinks between them.
package landmark

import (
	"fmt"
	"math"
	"sort"

	"crowdplanner/internal/geo"
)

// ID identifies a landmark.
type ID int32

// Kind distinguishes the geometric nature of a landmark (paper Definition 2:
// a point of interest, a street, or a region).
type Kind uint8

// Landmark kinds.
const (
	PointKind Kind = iota
	LineKind
	RegionKind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case PointKind:
		return "point"
	case LineKind:
		return "line"
	case RegionKind:
		return "region"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Category loosely types a point landmark; categories skew simulated
// check-in popularity (a stadium draws more visits than a substation).
type Category uint8

// Landmark categories.
const (
	CatGeneric Category = iota
	CatMall
	CatStadium
	CatPark
	CatSchool
	CatHospital
	CatStation
	CatMuseum
)

var categoryNames = [...]string{
	"generic", "mall", "stadium", "park", "school", "hospital", "station", "museum",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// basePopularity is the relative visit draw of each category.
func (c Category) basePopularity() float64 {
	switch c {
	case CatMall:
		return 6
	case CatStadium:
		return 8
	case CatPark:
		return 3
	case CatSchool:
		return 2
	case CatHospital:
		return 2.5
	case CatStation:
		return 5
	case CatMuseum:
		return 4
	default:
		return 1
	}
}

// Landmark is a stable geographical object (paper Definition 2). Point
// landmarks use Pt; lines and regions are abstracted by their anchor point
// plus Extent (half-length of a line, radius of a region): the paper's task
// generation only needs "is the landmark on/near the route", for which an
// anchor + extent suffices.
type Landmark struct {
	ID       ID
	Name     string
	Kind     Kind
	Category Category
	Pt       geo.Point
	Extent   float64 // meters; 0 for pure points

	// Significance l.s in [0,1], filled in by InferSignificance.
	Significance float64
}

// Set is an indexed collection of landmarks. Construct with NewSet.
type Set struct {
	all  []*Landmark
	grid *geo.Grid
}

// NewSet indexes the given landmarks. The slice is retained.
func NewSet(ls []*Landmark) *Set {
	s := &Set{all: ls}
	if len(ls) == 0 {
		return s
	}
	b := geo.NewBBox(ls[0].Pt)
	for _, l := range ls[1:] {
		b = b.Extend(l.Pt)
	}
	b = b.Buffer(1)
	cell := math.Max(b.Width(), b.Height()) / 48
	if cell <= 0 {
		cell = 1
	}
	s.grid = geo.NewGrid(b, cell)
	for _, l := range ls {
		s.grid.Insert(int32(l.ID), l.Pt)
	}
	return s
}

// Len returns the number of landmarks.
func (s *Set) Len() int { return len(s.all) }

// Get returns the landmark with the given ID, or nil.
func (s *Set) Get(id ID) *Landmark {
	if int(id) < 0 || int(id) >= len(s.all) {
		return nil
	}
	return s.all[id]
}

// All returns the underlying slice; callers must not modify it.
func (s *Set) All() []*Landmark { return s.all }

// Within returns landmarks whose anchor lies within radius r of p, in
// ascending ID order.
func (s *Set) Within(p geo.Point, r float64) []*Landmark {
	if s.grid == nil {
		return nil
	}
	ids := s.grid.Within(p, r)
	out := make([]*Landmark, len(ids))
	for i, id := range ids {
		out[i] = s.all[id]
	}
	return out
}

// Nearest returns the landmark closest to p, or nil for an empty set.
func (s *Set) Nearest(p geo.Point) *Landmark {
	if s.grid == nil || s.grid.Len() == 0 {
		return nil
	}
	id, _, ok := s.grid.Nearest(p)
	if !ok {
		return nil
	}
	return s.all[id]
}

// TopBySignificance returns the n most significant landmarks, most
// significant first (ties broken by ID).
func (s *Set) TopBySignificance(n int) []*Landmark {
	sorted := make([]*Landmark, len(s.all))
	copy(sorted, s.all)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Significance != sorted[j].Significance {
			return sorted[i].Significance > sorted[j].Significance
		}
		return sorted[i].ID < sorted[j].ID
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
