package landmark

import (
	"math"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

func testGraph() *roadnet.Graph {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 10, 10
	cfg.Seed = 3
	return roadnet.Generate(cfg)
}

func TestGenerateCountsAndKinds(t *testing.T) {
	g := testGraph()
	cfg := GenConfig{NumPoints: 50, NumLines: 5, NumRegions: 4, Seed: 1}
	s := Generate(g, cfg)
	if s.Len() != 59 {
		t.Fatalf("Len = %d, want 59", s.Len())
	}
	kinds := map[Kind]int{}
	for _, l := range s.All() {
		kinds[l.Kind]++
		if l.Kind != PointKind && l.Extent <= 0 {
			t.Errorf("%v landmark %q should have extent", l.Kind, l.Name)
		}
	}
	if kinds[PointKind] != 50 || kinds[LineKind] != 5 || kinds[RegionKind] != 4 {
		t.Errorf("kind counts = %v", kinds)
	}
	// IDs must be dense and match slice positions.
	for i, l := range s.All() {
		if int(l.ID) != i {
			t.Errorf("landmark %d has ID %d", i, l.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := testGraph()
	cfg := DefaultGenConfig()
	s1 := Generate(g, cfg)
	s2 := Generate(g, cfg)
	if s1.Len() != s2.Len() {
		t.Fatal("nondeterministic length")
	}
	for i := range s1.All() {
		if s1.All()[i].Pt != s2.All()[i].Pt || s1.All()[i].Category != s2.All()[i].Category {
			t.Fatalf("landmark %d differs", i)
		}
	}
}

func TestSetLookups(t *testing.T) {
	ls := []*Landmark{
		{ID: 0, Pt: geo.Point{X: 0, Y: 0}},
		{ID: 1, Pt: geo.Point{X: 100, Y: 0}},
		{ID: 2, Pt: geo.Point{X: 0, Y: 100}},
	}
	s := NewSet(ls)
	if got := s.Get(1); got == nil || got.ID != 1 {
		t.Errorf("Get(1) = %v", got)
	}
	if s.Get(-1) != nil || s.Get(99) != nil {
		t.Error("out-of-range Get should be nil")
	}
	if got := s.Nearest(geo.Point{X: 90, Y: 5}); got == nil || got.ID != 1 {
		t.Errorf("Nearest = %v", got)
	}
	within := s.Within(geo.Point{X: 0, Y: 0}, 100)
	if len(within) != 3 {
		t.Errorf("Within = %d landmarks", len(within))
	}
	within = s.Within(geo.Point{X: 0, Y: 0}, 50)
	if len(within) != 1 || within[0].ID != 0 {
		t.Errorf("Within(50) = %v", within)
	}
}

func TestEmptySet(t *testing.T) {
	s := NewSet(nil)
	if s.Len() != 0 {
		t.Error("empty set should have Len 0")
	}
	if s.Nearest(geo.Point{}) != nil {
		t.Error("Nearest on empty set should be nil")
	}
	if s.Within(geo.Point{}, 10) != nil {
		t.Error("Within on empty set should be nil")
	}
	s.InferSignificance(nil, DefaultHITSConfig()) // must not panic
}

func TestTopBySignificance(t *testing.T) {
	ls := []*Landmark{
		{ID: 0, Significance: 0.2, Pt: geo.Point{X: 0}},
		{ID: 1, Significance: 0.9, Pt: geo.Point{X: 1}},
		{ID: 2, Significance: 0.5, Pt: geo.Point{X: 2}},
		{ID: 3, Significance: 0.9, Pt: geo.Point{X: 3}},
	}
	s := NewSet(ls)
	top := s.TopBySignificance(3)
	if len(top) != 3 {
		t.Fatalf("top = %d", len(top))
	}
	if top[0].ID != 1 || top[1].ID != 3 || top[2].ID != 2 {
		t.Errorf("order = %d,%d,%d", top[0].ID, top[1].ID, top[2].ID)
	}
	if got := s.TopBySignificance(100); len(got) != 4 {
		t.Errorf("TopBySignificance(100) = %d", len(got))
	}
}

func TestGenerateCheckinsSkew(t *testing.T) {
	g := testGraph()
	s := Generate(g, DefaultGenConfig())
	visits := GenerateCheckins(s, g.BBox(), DefaultCheckinConfig())
	if len(visits) < 1000 {
		t.Fatalf("visits = %d, want >= 1000", len(visits))
	}
	// Category skew: stadiums+malls should out-draw generics per capita.
	perCat := map[Category]int{}
	catCount := map[Category]int{}
	for _, l := range s.All() {
		catCount[l.Category]++
	}
	for _, v := range visits {
		perCat[s.Get(v.Landmark).Category]++
	}
	if catCount[CatStadium] > 0 && catCount[CatGeneric] > 0 {
		stadiumRate := float64(perCat[CatStadium]) / float64(catCount[CatStadium])
		genericRate := float64(perCat[CatGeneric]) / float64(catCount[CatGeneric])
		if stadiumRate <= genericRate {
			t.Errorf("stadium rate %v should exceed generic rate %v", stadiumRate, genericRate)
		}
	}
}

func TestGenerateCheckinsEmpty(t *testing.T) {
	if v := GenerateCheckins(NewSet(nil), geo.BBox{}, DefaultCheckinConfig()); v != nil {
		t.Error("no landmarks should yield no visits")
	}
}

func TestInferSignificance(t *testing.T) {
	// Star graph: landmark 0 visited by all travellers, landmark 1 by one,
	// landmark 2 by none.
	ls := []*Landmark{
		{ID: 0, Pt: geo.Point{X: 0}},
		{ID: 1, Pt: geo.Point{X: 1}},
		{ID: 2, Pt: geo.Point{X: 2}},
	}
	s := NewSet(ls)
	var visits []Visit
	for u := int32(0); u < 10; u++ {
		visits = append(visits, Visit{Traveller: u, Landmark: 0})
	}
	visits = append(visits, Visit{Traveller: 0, Landmark: 1})
	s.InferSignificance(visits, DefaultHITSConfig())
	if ls[0].Significance != 1 {
		t.Errorf("top landmark significance = %v, want 1", ls[0].Significance)
	}
	if ls[1].Significance <= 0 || ls[1].Significance >= 1 {
		t.Errorf("landmark 1 significance = %v, want in (0,1)", ls[1].Significance)
	}
	if ls[2].Significance != 0 {
		t.Errorf("unvisited landmark significance = %v, want 0", ls[2].Significance)
	}
}

func TestInferSignificanceReinforcement(t *testing.T) {
	// Two landmarks with equal visit counts, but landmark 0's visitors are
	// better-connected hubs; HITS should rank 0 at or above 1.
	ls := []*Landmark{
		{ID: 0, Pt: geo.Point{X: 0}},
		{ID: 1, Pt: geo.Point{X: 1}},
		{ID: 2, Pt: geo.Point{X: 2}},
	}
	s := NewSet(ls)
	visits := []Visit{
		{0, 0}, {1, 0}, // landmark 0: travellers 0,1
		{2, 1}, {3, 1}, // landmark 1: travellers 2,3
		{0, 2}, {1, 2}, // travellers 0,1 also visit the popular landmark 2
	}
	s.InferSignificance(visits, DefaultHITSConfig())
	if ls[0].Significance < ls[1].Significance {
		t.Errorf("hub-connected landmark should rank higher: %v vs %v",
			ls[0].Significance, ls[1].Significance)
	}
}

func TestInferSignificanceRange(t *testing.T) {
	g := testGraph()
	s := Generate(g, DefaultGenConfig())
	visits := GenerateCheckins(s, g.BBox(), DefaultCheckinConfig())
	s.InferSignificance(visits, DefaultHITSConfig())
	var top float64
	nonzero := 0
	for _, l := range s.All() {
		if l.Significance < 0 || l.Significance > 1 || math.IsNaN(l.Significance) {
			t.Fatalf("significance out of range: %v", l.Significance)
		}
		if l.Significance > top {
			top = l.Significance
		}
		if l.Significance > 0 {
			nonzero++
		}
	}
	if top != 1 {
		t.Errorf("max significance = %v, want 1", top)
	}
	if nonzero < s.Len()/2 {
		t.Errorf("only %d/%d landmarks have significance", nonzero, s.Len())
	}
}

func TestKindCategoryStrings(t *testing.T) {
	if PointKind.String() != "point" || LineKind.String() != "line" ||
		RegionKind.String() != "region" || Kind(7).String() != "Kind(7)" {
		t.Error("Kind.String mismatch")
	}
	if CatMall.String() != "mall" || Category(200).String() != "Category(200)" {
		t.Error("Category.String mismatch")
	}
}
