package routing

import (
	"math"
	"math/rand"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// The rewritten engine must return bit-identical results to the old one
// (reference_test.go): same node sequences, not just same costs. These
// property tests sweep random OD pairs on a generated city under both cost
// models and several departure times (TravelTimeCost is time-dependent,
// which exercises the settled-at-pop evaluation order and Yen's prefix-cost
// accumulation).

func equivGraph(cols, rows int) *roadnet.Graph {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = cols, rows
	return roadnet.Generate(cfg)
}

func equivCases() []struct {
	name string
	cost CostFunc
	t    SimTime
} {
	return []struct {
		name string
		cost CostFunc
		t    SimTime
	}{
		{"distance", DistanceCost, 0},
		{"traveltime-night", TravelTimeCost, At(0, 3, 0)},
		{"traveltime-peak", TravelTimeCost, At(0, 8, 0)},
	}
}

// TestShortestPathMatchesReference: >=200 random ODs, old vs new Dijkstra,
// node sequences and costs.
func TestShortestPathMatchesReference(t *testing.T) {
	g := equivGraph(14, 14)
	rng := rand.New(rand.NewSource(42))
	for _, tc := range equivCases() {
		checked := 0
		for trial := 0; checked < 220; trial++ {
			src := roadnet.NodeID(rng.Intn(g.NumNodes()))
			dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
			oldR, oldC, oldErr := refShortestPath(g, src, dst, tc.cost, tc.t)
			newR, newC, newErr := ShortestPath(g, src, dst, tc.cost, tc.t)
			if (oldErr == nil) != (newErr == nil) {
				t.Fatalf("%s %d->%d: err mismatch old=%v new=%v", tc.name, src, dst, oldErr, newErr)
			}
			if oldErr != nil {
				continue
			}
			checked++
			if oldC != newC {
				t.Fatalf("%s %d->%d: cost old=%v new=%v", tc.name, src, dst, oldC, newC)
			}
			if !oldR.Equal(newR) {
				t.Fatalf("%s %d->%d: route old=%v new=%v", tc.name, src, dst, oldR, newR)
			}
		}
	}
}

// TestAStarMatchesDijkstraSequences: >=200 random ODs, goal-directed vs
// plain search, node sequences (the acceptance bar for wiring A* into the
// serving path). Also cross-checks against the reference engine's A*.
func TestAStarMatchesDijkstraSequences(t *testing.T) {
	g := equivGraph(14, 14)
	rng := rand.New(rand.NewSource(43))
	for _, tc := range equivCases() {
		if tc.cost.MinCostPerMeter(g) <= 0 {
			t.Fatalf("%s: expected a positive heuristic bound", tc.name)
		}
		checked := 0
		for trial := 0; checked < 220; trial++ {
			src := roadnet.NodeID(rng.Intn(g.NumNodes()))
			dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
			dijR, dijC, dijErr := ShortestPath(g, src, dst, tc.cost, tc.t)
			astR, astC, astErr := AStar(g, src, dst, tc.cost, tc.t)
			if (dijErr == nil) != (astErr == nil) {
				t.Fatalf("%s %d->%d: err mismatch dij=%v astar=%v", tc.name, src, dst, dijErr, astErr)
			}
			if dijErr != nil {
				continue
			}
			checked++
			if math.Abs(dijC-astC) > 1e-9*math.Max(1, dijC) {
				t.Fatalf("%s %d->%d: cost dij=%v astar=%v", tc.name, src, dst, dijC, astC)
			}
			if !dijR.Equal(astR) {
				t.Fatalf("%s %d->%d: route dij=%v astar=%v", tc.name, src, dst, dijR, astR)
			}
			refR, _, refErr := refAStar(g, src, dst, tc.cost, tc.t, tc.cost.MinCostPerMeter(g))
			if refErr != nil || !refR.Equal(astR) {
				t.Fatalf("%s %d->%d: ref astar %v (%v) vs new %v", tc.name, src, dst, refR, refErr, astR)
			}
		}
	}
}

// TestKShortestMatchesReference: >=200 random ODs with k up to 5, old Yen
// (full spur sweep + sort per round) vs Lawler-optimized Yen (deviation
// index + candidate heap + epoch bans + incremental prefix costs). Node
// sequences and costs, route for route.
func TestKShortestMatchesReference(t *testing.T) {
	g := equivGraph(10, 10)
	rng := rand.New(rand.NewSource(44))
	for _, tc := range equivCases() {
		checked := 0
		for trial := 0; checked < 210; trial++ {
			src := roadnet.NodeID(rng.Intn(g.NumNodes()))
			dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
			k := 2 + rng.Intn(4) // 2..5
			oldRs, oldCs, oldErr := refKShortest(g, src, dst, k, tc.cost, tc.t)
			newRs, newCs, newErr := KShortest(g, src, dst, k, tc.cost, tc.t)
			if (oldErr == nil) != (newErr == nil) {
				t.Fatalf("%s %d->%d k=%d: err mismatch old=%v new=%v", tc.name, src, dst, k, oldErr, newErr)
			}
			if oldErr != nil {
				continue
			}
			checked++
			if len(oldRs) != len(newRs) {
				t.Fatalf("%s %d->%d k=%d: %d routes old vs %d new", tc.name, src, dst, k, len(oldRs), len(newRs))
			}
			for j := range oldRs {
				if !oldRs[j].Equal(newRs[j]) {
					t.Fatalf("%s %d->%d k=%d route %d: old=%v new=%v", tc.name, src, dst, k, j, oldRs[j], newRs[j])
				}
				if oldCs[j] != newCs[j] {
					t.Fatalf("%s %d->%d k=%d route %d: cost old=%v new=%v", tc.name, src, dst, k, j, oldCs[j], newCs[j])
				}
			}
		}
	}
}

// TestAStarAdmissibleOnNonStandardGraphs pins the per-graph heuristic
// bounds: an edge faster than every class default (over-limit highway) and
// an edge shorter than the straight line between its endpoints (a tunnel
// priced below crow-flies) would both make the old fixed bounds
// inadmissible; MaxSpeedKmh/MinLengthRatio weaken the heuristic instead, so
// A* still returns Dijkstra's route on every OD.
func TestAStarAdmissibleOnNonStandardGraphs(t *testing.T) {
	// A 2x3 grid, 1km spacing.
	g := roadnet.NewGraph(6, 14)
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			g.AddNode(geo.Point{X: float64(c) * 1000, Y: float64(r) * 1000})
		}
	}
	add := func(a, b roadnet.NodeID, speed, length float64) {
		g.AddEdge(a, b, roadnet.Local, speed, 0, length)
		g.AddEdge(b, a, roadnet.Local, speed, 0, length)
	}
	add(0, 1, 0, 0)   // class default, straight length
	add(1, 2, 130, 0) // over the highway class limit
	add(3, 4, 0, 0)
	add(4, 5, 0, 0)
	add(0, 3, 0, 0)
	add(1, 4, 0, 600) // "tunnel": shorter than the 1000m straight line
	add(2, 5, 0, 0)
	if g.MaxSpeedKmh() != 130 {
		t.Fatalf("MaxSpeedKmh = %v, want 130", g.MaxSpeedKmh())
	}
	if r := g.MinLengthRatio(); r != 0.6 {
		t.Fatalf("MinLengthRatio = %v, want 0.6", r)
	}
	for _, cost := range []CostFunc{DistanceCost, TravelTimeCost} {
		for src := roadnet.NodeID(0); int(src) < g.NumNodes(); src++ {
			for dst := roadnet.NodeID(0); int(dst) < g.NumNodes(); dst++ {
				dr, dc, derr := ShortestPath(g, src, dst, cost, At(0, 8, 0))
				ar, ac, aerr := AStar(g, src, dst, cost, At(0, 8, 0))
				if (derr == nil) != (aerr == nil) {
					t.Fatalf("%d->%d: err mismatch %v vs %v", src, dst, derr, aerr)
				}
				if derr != nil {
					continue
				}
				if !dr.Equal(ar) || math.Abs(dc-ac) > 1e-9*math.Max(1, dc) {
					t.Fatalf("%d->%d: dijkstra %v (%v) vs astar %v (%v)", src, dst, dr, dc, ar, ac)
				}
			}
		}
	}
}

// TestSearchInfiniteEdgeCosts pins the +Inf convention MFP's frequency
// filter relies on: an unreached node has implicit distance +Inf, and a
// strict-improvement relaxation never relaxes through a +Inf edge, so a
// destination behind only-+Inf edges reports ErrNoRoute.
func TestSearchInfiniteEdgeCosts(t *testing.T) {
	g := diamond()
	blockAll := CostFn(func(e *roadnet.Edge, _ SimTime) float64 { return math.Inf(1) })
	if _, _, err := ShortestPath(g, 0, 4, blockAll, 0); err != ErrNoRoute {
		t.Fatalf("all-Inf err = %v, want ErrNoRoute", err)
	}
	// Block only the short branch: search must take the long way around,
	// exactly as the reference engine does.
	blockTop := CostFn(func(e *roadnet.Edge, _ SimTime) float64 {
		if e.From == 1 || e.To == 1 {
			return math.Inf(1)
		}
		return e.Length
	})
	oldR, _, oldErr := refShortestPath(g, 0, 4, blockTop, 0)
	newR, _, newErr := ShortestPath(g, 0, 4, blockTop, 0)
	if oldErr != nil || newErr != nil || !oldR.Equal(newR) {
		t.Fatalf("blocked-branch: old=%v(%v) new=%v(%v)", oldR, oldErr, newR, newErr)
	}
	if !newR.Equal(roadnet.NewRoute(0, 2, 3, 4)) {
		t.Fatalf("blocked-branch route = %v", newR)
	}
}

// TestHeapMatchesContainerHeapOrder drains interleaved pushes and pops
// through the 4-ary value heap and a sorted model, verifying the pop
// sequence is the sorted order of the strict (prio, node) total order.
func TestHeapMatchesContainerHeapOrder(t *testing.T) {
	ws := &searchSpace{}
	rng := rand.New(rand.NewSource(7))
	var model []heapEntry
	popMin := func() heapEntry {
		mi := 0
		for i := range model {
			if entryLess(model[i], model[mi]) {
				mi = i
			}
		}
		e := model[mi]
		model = append(model[:mi], model[mi+1:]...)
		return e
	}
	for round := 0; round < 200; round++ {
		for p := rng.Intn(8); p > 0; p-- {
			e := heapEntry{prio: float64(rng.Intn(50)), node: roadnet.NodeID(rng.Intn(1000))}
			ws.heapPush(e)
			model = append(model, e)
		}
		for p := rng.Intn(6); p > 0 && len(model) > 0; p-- {
			got, want := ws.heapPop(), popMin()
			if got != want {
				t.Fatalf("round %d: pop %v, want %v", round, got, want)
			}
		}
	}
	for len(model) > 0 {
		got, want := ws.heapPop(), popMin()
		if got != want {
			t.Fatalf("drain: pop %v, want %v", got, want)
		}
	}
	if len(ws.heap) != 0 {
		t.Fatalf("heap not drained: %d left", len(ws.heap))
	}
}

// TestRootCostsBrokenPrefix is the regression test for the prefixCost fix:
// the old helper silently priced a root with a missing edge as if the edge
// were free; rootCosts now reports the first broken index so Yen drops —
// rather than underprices — candidates with broken roots.
func TestRootCostsBrokenPrefix(t *testing.T) {
	g := diamond()
	// 0-1-3-4 is a real chain: no broken index, costs accumulate.
	out, broken := rootCosts(g, []roadnet.NodeID{0, 1, 3, 4}, DistanceCost, 0, nil)
	if broken != 3 || len(out) != 4 {
		t.Fatalf("intact chain: broken=%d len=%d", broken, len(out))
	}
	if out[0] != 0 || out[1] <= 0 || out[2] <= out[1] || out[3] <= out[2] {
		t.Fatalf("intact chain costs not increasing: %v", out)
	}
	want := refPrefixCost(g, []roadnet.NodeID{0, 1, 3, 4}, DistanceCost, 0)
	if out[3] != want {
		t.Fatalf("prefix cost %v != reference %v", out[3], want)
	}
	// 0-3 has no direct edge: the old prefixCost returned 0 for the whole
	// prefix (underpricing any candidate built on it); rootCosts flags it.
	out, broken = rootCosts(g, []roadnet.NodeID{0, 3, 4}, DistanceCost, 0, nil)
	if broken != 0 {
		t.Fatalf("broken chain: broken=%d, want 0", broken)
	}
	if len(out) != 1 || out[0] != 0 {
		t.Fatalf("broken chain out=%v, want [0]", out)
	}
	// Broken mid-chain: 0-1 exists, 1-4 does not.
	_, broken = rootCosts(g, []roadnet.NodeID{0, 1, 4}, DistanceCost, 0, nil)
	if broken != 1 {
		t.Fatalf("mid-broken chain: broken=%d, want 1", broken)
	}
}
