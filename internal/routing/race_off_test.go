//go:build !race

package routing

const raceEnabled = false
