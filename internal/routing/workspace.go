package routing

import (
	"sync"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// maxActiveLandmarks caps the per-query active landmark set. Eight covers
// the useful tightness range — beyond that the extra max() terms cost more
// per relaxed edge than they save in popped nodes — and a fixed cap lets the
// single-target state live inline in the workspace with zero allocations.
const maxActiveLandmarks = 8

// searchSpace is the reusable scratch state of one graph search: the
// dist/prev labels, the settled marks, the priority-queue storage, and the
// node/edge ban marks Yen's spur searches use. Acquiring one from the pool
// and stamping it with a fresh epoch replaces the three O(|V|) allocations
// and clears the old engine paid per search — after warm-up a search
// allocates nothing but its result route.
//
// Epoch stamping: seen[v] == epoch means dist[v]/prev[v] are valid for the
// current search (otherwise v is implicitly unreached, dist +Inf);
// done[v] == epoch means v is settled. beginSearch bumps the epoch, which
// invalidates every label in O(1). The ban marks use an independent epoch
// with the same trick so a Yen spur resets its ban set in O(1) too. On the
// (rare) uint32 wraparound the arrays are cleared for real, keeping stale
// stamps from a search 2^32 epochs ago from aliasing the current one.
type searchSpace struct {
	dist []float64
	prev []roadnet.NodeID
	seen []uint32
	done []uint32
	heap []heapEntry

	epoch uint32

	banNode  []uint32
	banEdge  []uint32
	banEpoch uint32

	// path is the route-reconstruction scratch: searchShared leaves the
	// found node sequence here, valid until the next search on this
	// workspace. Public entry points copy it into an exact-size result;
	// Yen appends it straight into its candidate scratch without the
	// intermediate allocation.
	path []roadnet.NodeID

	// targ marks the still-relevant targets of a multi-target (batched)
	// search, epoch-stamped like seen/done: targ[v] == epoch means v is a
	// destination the current batch search must settle.
	targ []uint32

	// hseen/hval memoize the heuristic per node within one search. ALT
	// bounds cost a handful of random loads from large landmark tables per
	// evaluation, and grid nodes are re-improved by several incoming edges;
	// the cache turns those repeats into one array read.
	hseen []uint32
	hval  []float64

	// ALT single-target state: the per-query active landmarks (indices
	// into the Preprocessed slabs) with their forward/reverse distances at
	// the destination, filled by Preprocessed.activate. altHsrc is the
	// heuristic value at the source, kept for the bound-tightness counter.
	altN     int
	altHsrc  float64
	altLands [maxActiveLandmarks]int32
	altFdst  [maxActiveLandmarks]float64
	altRdst  [maxActiveLandmarks]float64

	// Multi-target ALT state (batched searches): per-target active
	// landmark rows and destination distances, maxActiveLandmarks entries
	// per target, plus the target points for the straight-line term. All
	// grown in place and recycled with the workspace.
	mtN     []int32
	mtLands []int32
	mtFdst  []float64
	mtRdst  []float64
	mtPts   []geo.Point
}

// wsPool recycles searchSpaces across searches and goroutines. Workspaces
// are graph-agnostic scratch: ensure() grows them to the current graph's
// size, and stale labels are unreadable by construction (epoch mismatch).
var wsPool sync.Pool

// acquireSpace returns a workspace sized for g, reusing a pooled one when
// available. Pair with releaseSpace.
func acquireSpace(g *roadnet.Graph) *searchSpace {
	n, m := g.NumNodes(), g.NumEdges()
	if v := wsPool.Get(); v != nil {
		ws := v.(*searchSpace)
		if len(ws.seen) >= n && len(ws.banEdge) >= m {
			counters.poolHits.Add(1)
		} else {
			counters.poolMisses.Add(1)
			ws.ensure(n, m)
		}
		return ws
	}
	counters.poolMisses.Add(1)
	ws := &searchSpace{}
	ws.ensure(n, m)
	return ws
}

// releaseSpace returns ws to the pool.
func releaseSpace(ws *searchSpace) { wsPool.Put(ws) }

// ensure grows the workspace to hold nodes/edges entries. Freshly allocated
// stamps are zero, which never equals an active epoch (beginSearch and
// resetBans skip zero), so grown regions read as unseen/unbanned.
func (ws *searchSpace) ensure(nodes, edges int) {
	if len(ws.seen) < nodes {
		ws.dist = make([]float64, nodes)
		ws.prev = make([]roadnet.NodeID, nodes)
		ws.seen = make([]uint32, nodes)
		ws.done = make([]uint32, nodes)
		ws.banNode = make([]uint32, nodes)
		ws.targ = make([]uint32, nodes)
		ws.hseen = make([]uint32, nodes)
		ws.hval = make([]float64, nodes)
	}
	if len(ws.banEdge) < edges {
		ws.banEdge = make([]uint32, edges)
	}
}

// beginSearch starts a new search: bumps the label epoch and empties the
// heap. Returns the active epoch.
//
//cplint:hotpath
func (ws *searchSpace) beginSearch() uint32 {
	ws.epoch++
	if ws.epoch == 0 { // wraparound: clear for real, then skip the zero epoch
		clear(ws.seen)
		clear(ws.done)
		clear(ws.targ)
		clear(ws.hseen)
		ws.epoch = 1
	}
	ws.heap = ws.heap[:0]
	return ws.epoch
}

// resetBans empties the ban set in O(1) by bumping the ban epoch.
//
//cplint:hotpath
func (ws *searchSpace) resetBans() {
	ws.banEpoch++
	if ws.banEpoch == 0 {
		clear(ws.banNode)
		clear(ws.banEdge)
		ws.banEpoch = 1
	}
}

//cplint:hotpath
func (ws *searchSpace) ban(n roadnet.NodeID) { ws.banNode[n] = ws.banEpoch }

//cplint:hotpath
func (ws *searchSpace) banE(e roadnet.EdgeID) { ws.banEdge[e] = ws.banEpoch }

//cplint:hotpath
func (ws *searchSpace) banned(n roadnet.NodeID) bool { return ws.banNode[n] == ws.banEpoch }

//cplint:hotpath
func (ws *searchSpace) bannedE(e roadnet.EdgeID) bool { return ws.banEdge[e] == ws.banEpoch }
