package routing

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// The ALT tier must be invisible in results: landmark-accelerated searches
// return the same node sequences as plain Dijkstra on every query (the
// heuristic is admissible and consistent, so it only changes which nodes get
// settled, never which route wins). These sweeps mirror the PR-5 equivalence
// tests: >=200 random ODs per cost model, node-sequence equality, exact cost
// equality (equal routes sum the same floats in the same order).

func prepFor(g *roadnet.Graph, cost CostFunc) *Preprocessed {
	return Preprocess(g, cost, PrepConfig{Landmarks: 12, Active: 6})
}

// TestALTMatchesDijkstraSequences: landmark-accelerated AStar vs plain
// Dijkstra, both cost models, peak and night departures.
func TestALTMatchesDijkstraSequences(t *testing.T) {
	g := equivGraph(14, 14)
	rng := rand.New(rand.NewSource(45))
	for _, tc := range equivCases() {
		p := prepFor(g, tc.cost)
		checked := 0
		for trial := 0; checked < 220; trial++ {
			src := roadnet.NodeID(rng.Intn(g.NumNodes()))
			dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
			dijR, dijC, dijErr := ShortestPath(g, src, dst, tc.cost, tc.t)
			altR, altC, altErr := p.AStar(src, dst, tc.t)
			if (dijErr == nil) != (altErr == nil) {
				t.Fatalf("%s %d->%d: err mismatch dij=%v alt=%v", tc.name, src, dst, dijErr, altErr)
			}
			if dijErr != nil {
				continue
			}
			checked++
			if !dijR.Equal(altR) {
				t.Fatalf("%s %d->%d: route dij=%v alt=%v", tc.name, src, dst, dijR, altR)
			}
			if dijC != altC {
				t.Fatalf("%s %d->%d: cost dij=%v alt=%v", tc.name, src, dst, dijC, altC)
			}
			spR, spC, spErr := p.ShortestPath(src, dst, tc.t)
			if spErr != nil || !spR.Equal(altR) || spC != altC {
				t.Fatalf("%s %d->%d: Preprocessed.ShortestPath diverged from AStar", tc.name, src, dst)
			}
		}
	}
}

// TestALTKShortestMatchesPlain: ALT-accelerated Yen vs the plain engine,
// route for route — spur searches under landmark bounds must produce the
// same deviations in the same order.
func TestALTKShortestMatchesPlain(t *testing.T) {
	g := equivGraph(10, 10)
	rng := rand.New(rand.NewSource(46))
	for _, tc := range equivCases() {
		p := prepFor(g, tc.cost)
		checked := 0
		for trial := 0; checked < 120; trial++ {
			src := roadnet.NodeID(rng.Intn(g.NumNodes()))
			dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
			k := 2 + rng.Intn(4)
			plainRs, plainCs, plainErr := KShortest(g, src, dst, k, tc.cost, tc.t)
			altRs, altCs, altErr := p.KShortest(src, dst, k, tc.t)
			if (plainErr == nil) != (altErr == nil) {
				t.Fatalf("%s %d->%d k=%d: err mismatch %v vs %v", tc.name, src, dst, k, plainErr, altErr)
			}
			if plainErr != nil {
				continue
			}
			checked++
			if len(plainRs) != len(altRs) {
				t.Fatalf("%s %d->%d k=%d: %d routes plain vs %d alt", tc.name, src, dst, k, len(plainRs), len(altRs))
			}
			for j := range plainRs {
				if !plainRs[j].Equal(altRs[j]) || plainCs[j] != altCs[j] {
					t.Fatalf("%s %d->%d k=%d route %d: plain=%v alt=%v", tc.name, src, dst, k, j, plainRs[j], altRs[j])
				}
			}
		}
	}
}

// TestPreprocessDeterministic: two builds over the same inputs produce
// identical landmark sets and identical tables (farthest-point selection
// breaks all ties toward the lowest node ID).
func TestPreprocessDeterministic(t *testing.T) {
	g := equivGraph(10, 10)
	for _, tc := range equivCases() {
		a := prepFor(g, tc.cost)
		b := prepFor(g, tc.cost)
		if len(a.lands) != len(b.lands) {
			t.Fatalf("%s: landmark counts differ: %d vs %d", tc.name, len(a.lands), len(b.lands))
		}
		for i := range a.lands {
			if a.lands[i] != b.lands[i] {
				t.Fatalf("%s: landmark %d differs: %d vs %d", tc.name, i, a.lands[i], b.lands[i])
			}
		}
		for i := range a.fwd {
			if a.fwd[i] != b.fwd[i] && !(math.IsInf(a.fwd[i], 1) && math.IsInf(b.fwd[i], 1)) {
				t.Fatalf("%s: fwd[%d] differs: %v vs %v", tc.name, i, a.fwd[i], b.fwd[i])
			}
		}
		for i := range a.rev {
			if a.rev[i] != b.rev[i] && !(math.IsInf(a.rev[i], 1) && math.IsInf(b.rev[i], 1)) {
				t.Fatalf("%s: rev[%d] differs: %v vs %v", tc.name, i, a.rev[i], b.rev[i])
			}
		}
		// And the routes built on them agree query for query.
		rng := rand.New(rand.NewSource(47))
		for q := 0; q < 40; q++ {
			src := roadnet.NodeID(rng.Intn(g.NumNodes()))
			dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
			ra, ca, ea := a.AStar(src, dst, tc.t)
			rb, cb, eb := b.AStar(src, dst, tc.t)
			if (ea == nil) != (eb == nil) || (ea == nil && (!ra.Equal(rb) || ca != cb)) {
				t.Fatalf("%s %d->%d: two identical builds disagree", tc.name, src, dst)
			}
		}
	}
}

// TestPreprocessDegenerate: tiny and disconnected graphs must neither panic
// nor corrupt results.
func TestPreprocessDegenerate(t *testing.T) {
	empty := roadnet.NewGraph(0, 0)
	p := Preprocess(empty, DistanceCost, DefaultPrepConfig())
	if s := p.Stats(); s.Landmarks != 0 || s.Nodes != 0 {
		t.Fatalf("empty graph stats = %+v", s)
	}
	if _, _, err := p.AStar(0, 0, 0); err == nil {
		t.Fatal("empty graph AStar: expected node-range error")
	}

	single := roadnet.NewGraph(1, 0)
	single.AddNode(geo.Point{})
	p = Preprocess(single, DistanceCost, DefaultPrepConfig())
	if s := p.Stats(); s.Landmarks != 1 {
		t.Fatalf("single-node landmarks = %d, want 1", s.Landmarks)
	}
	r, c, err := p.AStar(0, 0, 0)
	if err != nil || c != 0 || len(r.Nodes) != 1 || r.Nodes[0] != 0 {
		t.Fatalf("single-node self route = %v cost %v err %v", r, c, err)
	}

	// Two disconnected 2-node components: landmark coverage must spread
	// across components (+Inf farthest-point picks), in-component queries
	// work, cross-component queries report ErrNoRoute.
	disc := roadnet.NewGraph(4, 4)
	for i := 0; i < 4; i++ {
		disc.AddNode(geo.Point{X: float64(i) * 1000})
	}
	disc.AddEdge(0, 1, roadnet.Local, 0, 0, 0)
	disc.AddEdge(1, 0, roadnet.Local, 0, 0, 0)
	disc.AddEdge(2, 3, roadnet.Local, 0, 0, 0)
	disc.AddEdge(3, 2, roadnet.Local, 0, 0, 0)
	p = Preprocess(disc, DistanceCost, PrepConfig{Landmarks: 4, Active: 4})
	comp := map[roadnet.NodeID]bool{}
	for _, l := range p.Landmarks() {
		comp[l] = true
	}
	if !(comp[0] || comp[1]) || !(comp[2] || comp[3]) {
		t.Fatalf("landmarks %v do not cover both components", p.Landmarks())
	}
	if r, _, err := p.AStar(0, 1, 0); err != nil || !r.Equal(roadnet.NewRoute(0, 1)) {
		t.Fatalf("in-component route = %v err %v", r, err)
	}
	if _, _, err := p.AStar(0, 3, 0); err != ErrNoRoute {
		t.Fatalf("cross-component err = %v, want ErrNoRoute", err)
	}
}

// TestEdgeBoundsAdmissible pins the preprocessing metric: every edge's
// lower-bound weight must stay at or below the true cost at every hour of the
// day, for both cost models (TravelTimeCost's congestion factor never drops
// below 1, DistanceCost is time-independent).
func TestEdgeBoundsAdmissible(t *testing.T) {
	g := equivGraph(8, 8)
	for _, cost := range []CostFunc{DistanceCost, TravelTimeCost} {
		w := edgeBounds(g, cost)
		for i := range w {
			e := g.Edge(roadnet.EdgeID(i))
			for halfHour := 0; halfHour < 48; halfHour++ {
				at := At(0, halfHour/2, (halfHour%2)*30)
				if c := cost.Cost(e, at); w[i] > c+1e-12 {
					t.Fatalf("edge %d: bound %v exceeds cost %v at %v", i, w[i], c, at)
				}
			}
		}
	}
}

// TestALTConcurrent is the -race hammer for the preprocessing tier: one
// shared Preprocessed serves single-pair and k-shortest queries from many
// goroutines, each result checked against a serial baseline. The tables are
// immutable after build, so any divergence is a workspace bug.
func TestALTConcurrent(t *testing.T) {
	g := equivGraph(10, 10)
	p := prepFor(g, TravelTimeCost)
	depart := At(0, 8, 0)

	type want struct {
		src, dst roadnet.NodeID
		r        roadnet.Route
		c        float64
		err      bool
	}
	rng := rand.New(rand.NewSource(48))
	cases := make([]want, 0, 24)
	for len(cases) < 24 {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
		w := want{src: src, dst: dst}
		var err error
		if w.r, w.c, err = p.AStar(src, dst, depart); err != nil {
			w.err = true
		}
		cases = append(cases, w)
	}

	const goroutines = 16
	const reps = 40
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for rep := 0; rep < reps; rep++ {
				w := cases[(gi+rep)%len(cases)]
				r, c, err := p.AStar(w.src, w.dst, depart)
				if w.err {
					if err == nil {
						t.Errorf("%d->%d: expected error", w.src, w.dst)
					}
					continue
				}
				if err != nil || !r.Equal(w.r) || c != w.c {
					t.Errorf("%d->%d: concurrent ALT search diverged (%v)", w.src, w.dst, err)
				}
			}
		}(gi)
	}
	wg.Wait()
}

// TestALTWarmAllocations extends the 1-alloc/op contract to the landmark
// tier: a warmed-up preprocessed search allocates only its result route.
func TestALTWarmAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	g := equivGraph(10, 10)
	p := prepFor(g, DistanceCost)
	src, dst := roadnet.NodeID(3), roadnet.NodeID(g.NumNodes()-4)
	if _, _, err := p.AStar(src, dst, 0); err != nil {
		t.Fatal(err)
	}
	ws := acquireSpace(g)
	releaseSpace(ws)
	allocs := testing.AllocsPerRun(50, func() {
		_, _, _ = p.AStar(src, dst, 0)
	})
	if allocs > 1 {
		t.Errorf("warm ALT AStar allocs/op = %v, want <= 1", allocs)
	}
}

// TestPrepStatsAndCounters: PrepStats reflects the build, and the
// process-wide counters (surfaced through /v1/health) advance across builds
// and ALT queries.
func TestPrepStatsAndCounters(t *testing.T) {
	g := equivGraph(8, 8)
	before := CounterSnapshot()
	p := Preprocess(g, TravelTimeCost, PrepConfig{Landmarks: 6, Active: 3})
	s := p.Stats()
	if s.Landmarks != 6 || s.Nodes != g.NumNodes() {
		t.Fatalf("stats = %+v", s)
	}
	if want := int64(2 * 6 * g.NumNodes() * 8); s.TableBytes != want {
		t.Fatalf("TableBytes = %d, want %d", s.TableBytes, want)
	}
	if s.BuildMs < 0 {
		t.Fatalf("BuildMs = %v", s.BuildMs)
	}
	if _, _, err := p.AStar(0, roadnet.NodeID(g.NumNodes()-1), At(0, 8, 0)); err != nil {
		t.Fatal(err)
	}
	after := CounterSnapshot()
	if after.PrepBuilds != before.PrepBuilds+1 {
		t.Errorf("PrepBuilds advanced by %d, want 1", after.PrepBuilds-before.PrepBuilds)
	}
	if after.PrepLandmarks != before.PrepLandmarks+6 {
		t.Errorf("PrepLandmarks advanced by %d, want 6", after.PrepLandmarks-before.PrepLandmarks)
	}
	if after.PrepTableBytes <= before.PrepTableBytes {
		t.Error("PrepTableBytes did not advance")
	}
	if after.ALTSearches != before.ALTSearches+1 {
		t.Errorf("ALTSearches advanced by %d, want 1", after.ALTSearches-before.ALTSearches)
	}
	if after.ALTActiveLandmarks <= before.ALTActiveLandmarks {
		t.Error("ALTActiveLandmarks did not advance")
	}
}
