package routing

import (
	"math"
	"runtime"
	"sync"
	"time"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// This file implements the ALT preprocessing tier (A*, Landmarks, Triangle
// inequality). Preprocess selects a small set of landmarks by farthest-point
// selection and runs forward and reverse one-to-all Dijkstra from each under
// a time-independent lower-bound metric derived from the cost function. At
// query time the triangle inequality turns those tables into a goal-directed
// heuristic that is much tighter than the straight-line bound, while staying
// admissible and consistent — so ALT-accelerated searches return the same
// routes as plain Dijkstra, just after settling far fewer nodes.
//
// Admissibility argument. Let w(e) be the lower-bound weight of edge e:
// w(e) <= Cost(e, t) for every departure time t (free flow, no congestion).
// Let dL(a, b) be the shortest-path distance under w. Any real route from a
// to b costs at least its w-weight, which is at least dL(a, b) — so dL lower
// bounds the true time-dependent cost. By the triangle inequality, for any
// landmark L:
//
//	dL(v, dst) >= dL(L, dst) - dL(L, v)     (forward table)
//	dL(v, dst) >= dL(v, L)  - dL(dst, L)    (reverse table)
//
// Both right-hand sides are computable from the precomputed tables alone, and
// both lower-bound the true cost of reaching dst from v. Their max over the
// active landmarks, maxed again with the straight-line bound, is therefore
// admissible; each term is of the form f(v) + const or -f(v) + const for a
// shortest-path potential f, so the max is also consistent. Consistent
// heuristics settle nodes with final distances at pop under the engine's
// strict (prio, node) order, which is what keeps ALT routes identical to
// Dijkstra's.

// PrepConfig controls landmark preprocessing.
type PrepConfig struct {
	// Landmarks is the number of landmarks to select (capped at the node
	// count). More landmarks tighten bounds but grow the tables linearly.
	Landmarks int
	// Active is the number of landmarks consulted per query, chosen as the
	// ones with the tightest bound at the source. Capped at
	// maxActiveLandmarks.
	Active int
}

// DefaultPrepConfig returns the standard configuration: 64 landmarks with
// the best 8 active per query. The config was swept on the million-node
// benchmark city: query speedup roughly doubles from 16 to 64 landmarks and
// saturates there (128 landmarks with 16 active measured no better — the
// extra max() terms per relaxed edge eat the tighter bound), so 64/8 is the
// knee. Tables cost 16 bytes per node per landmark; shrink Landmarks when
// memory matters more than query latency.
func DefaultPrepConfig() PrepConfig { return PrepConfig{Landmarks: 64, Active: 8} }

// EdgeBounder is an optional CostFunc extension providing a tight per-edge
// lower bound: MinEdgeCost(g, e) <= Cost(e, t) must hold for every t.
// Preprocessing uses it for the landmark metric when available; cost
// functions without it fall back to MinCostPerMeter times the straight-line
// span of the edge, which is admissible but looser (it ignores per-edge
// speed limits, curvature, and light penalties).
type EdgeBounder interface {
	MinEdgeCost(g *roadnet.Graph, e *roadnet.Edge) float64
}

// Preprocessed is a graph wrapper carrying ALT landmark tables for one
// (graph, cost) pair. Build one with Preprocess, then issue queries through
// its methods; the zero value is not usable. A Preprocessed is immutable
// after construction and safe for concurrent queries. It must not be used
// after the graph is mutated (tables would silently go stale).
type Preprocessed struct {
	g    *roadnet.Graph
	cost CostFunc
	mcpm float64

	n      int
	active int
	lands  []roadnet.NodeID
	// fwd and rev are flat row-major slabs, len(lands)*n entries each:
	// fwd[l*n+v] = dL(lands[l], v), rev[l*n+v] = dL(v, lands[l]), +Inf when
	// unreachable under the lower-bound metric.
	fwd []float64
	rev []float64

	buildNs int64
}

// PrepStats describes a Preprocessed instance for observability: counts,
// build wall-time, and the resident size of the distance tables.
type PrepStats struct {
	Landmarks  int     `json:"landmarks"`
	Nodes      int     `json:"nodes"`
	BuildMs    float64 `json:"build_ms"`
	TableBytes int64   `json:"table_bytes"`
}

// Stats returns the instance's preprocessing statistics.
func (p *Preprocessed) Stats() PrepStats {
	return PrepStats{
		Landmarks:  len(p.lands),
		Nodes:      p.n,
		BuildMs:    float64(p.buildNs) / 1e6,
		TableBytes: int64(len(p.fwd)+len(p.rev)) * 8,
	}
}

// Landmarks returns the selected landmark nodes (do not modify).
func (p *Preprocessed) Landmarks() []roadnet.NodeID { return p.lands }

// Graph returns the underlying graph.
func (p *Preprocessed) Graph() *roadnet.Graph { return p.g }

// Preprocess builds ALT landmark tables for g under cost. Selection is
// farthest-point: the first landmark is the node farthest from node 0 under
// the lower-bound metric, and each next landmark maximizes the distance to
// the nearest already-selected landmark. All ties break toward the lowest
// node ID, so two builds over the same inputs produce identical tables.
func Preprocess(g *roadnet.Graph, cost CostFunc, cfg PrepConfig) *Preprocessed {
	start := time.Now() //cplint:ignore wallclock -- build wall-time is observability only (PrepStats.BuildNs / prep_build_ns counter); no search decision reads it
	n := g.NumNodes()
	p := &Preprocessed{g: g, cost: cost, mcpm: cost.MinCostPerMeter(g), n: n}
	if cfg.Landmarks <= 0 {
		cfg.Landmarks = DefaultPrepConfig().Landmarks
	}
	if cfg.Active <= 0 {
		cfg.Active = DefaultPrepConfig().Active
	}
	p.active = min(cfg.Active, maxActiveLandmarks)
	nl := min(cfg.Landmarks, n)
	if nl == 0 {
		p.buildNs = time.Since(start).Nanoseconds() //cplint:ignore wallclock -- observability only, see above
		return p
	}

	w := edgeBounds(g, cost)
	p.fwd = make([]float64, 0, nl*n)
	p.rev = make([]float64, nl*n)

	// Farthest-point selection. minDist[v] tracks the distance from the
	// nearest selected landmark to v (forward metric); the next landmark is
	// its argmax, with +Inf (nodes unreachable from every landmark so far,
	// i.e. other weak components) deliberately sorting first so coverage
	// spreads across components. Each selected landmark's forward row is
	// produced by the same one-to-all run that updates minDist, so selection
	// costs one extra sweep total (the seed run from node 0).
	ms := newMetricSearch(n)
	seed := make([]float64, n)
	ms.oneToAll(g, w, 0, seed, false)
	pick := argmaxDist(seed, nil)
	taken := make(map[roadnet.NodeID]bool, nl)
	minDist := seed // reuse: overwritten below with min over landmark rows
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	for len(p.lands) < nl {
		p.lands = append(p.lands, pick)
		taken[pick] = true
		row := p.fwd[len(p.fwd) : len(p.fwd)+n]
		p.fwd = p.fwd[:len(p.fwd)+n]
		ms.oneToAll(g, w, pick, row, false)
		for v, d := range row {
			if d < minDist[v] {
				minDist[v] = d
			}
		}
		if len(p.lands) == nl {
			break
		}
		pick = argmaxDist(minDist, taken)
	}

	// Reverse rows are independent of selection and of each other (disjoint
	// slab rows), so they fan out across GOMAXPROCS workers, each with its
	// own scratch.
	workers := min(runtime.GOMAXPROCS(0), len(p.lands))
	var wg sync.WaitGroup
	next := make(chan int)
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rms := newMetricSearch(n)
			for li := range next {
				rms.oneToAll(g, w, p.lands[li], p.rev[li*n:(li+1)*n], true)
			}
		}()
	}
	for li := range p.lands {
		next <- li
	}
	close(next)
	wg.Wait()

	p.buildNs = time.Since(start).Nanoseconds() //cplint:ignore wallclock -- observability only, see above
	counters.prepBuilds.Add(1)
	counters.prepLandmarks.Add(uint64(len(p.lands)))
	counters.prepBuildNs.Add(uint64(p.buildNs))
	counters.prepTableBytes.Add(uint64(len(p.fwd)+len(p.rev)) * 8)
	return p
}

// edgeBounds computes the per-edge lower-bound weights the landmark metric
// runs on: the EdgeBounder bound when the cost function provides one, else
// MinCostPerMeter times the straight-line span. Negative or NaN bounds
// clamp to 0 (a zero weight is always admissible).
func edgeBounds(g *roadnet.Graph, cost CostFunc) []float64 {
	w := make([]float64, g.NumEdges())
	eb, hasEB := cost.(EdgeBounder)
	mcpm := cost.MinCostPerMeter(g)
	for i := range w {
		e := g.Edge(roadnet.EdgeID(i))
		var b float64
		if hasEB {
			b = eb.MinEdgeCost(g, e)
		} else if mcpm > 0 {
			b = mcpm * geo.Dist(g.Node(e.From).Pt, g.Node(e.To).Pt)
		}
		if !(b > 0) { // catches negatives and NaN
			b = 0
		}
		w[i] = b
	}
	return w
}

// argmaxDist returns the index of the maximum entry, skipping taken nodes,
// with +Inf sorting above every finite value and ties breaking to the lowest
// index. dist is never empty when called.
func argmaxDist(dist []float64, taken map[roadnet.NodeID]bool) roadnet.NodeID {
	best := roadnet.NodeID(-1)
	bestD := math.Inf(-1)
	for v, d := range dist {
		id := roadnet.NodeID(v)
		if taken[id] {
			continue
		}
		if best == -1 || d > bestD {
			best, bestD = id, d
		}
	}
	return best
}

// metricSearch is the self-contained one-to-all Dijkstra used during
// preprocessing. It runs on precomputed edge weights (no CostFunc calls, no
// time dependence) and owns its scratch, so reverse rows can build in
// parallel without touching the query workspace pool.
type metricSearch struct {
	done []bool
	heap []heapEntry
}

func newMetricSearch(n int) *metricSearch {
	return &metricSearch{done: make([]bool, n), heap: make([]heapEntry, 0, 1024)}
}

// oneToAll fills dist with shortest-path distances from src under w (+Inf
// for unreachable nodes), following Out edges normally and In edges when
// reverse is set (distances *to* src). It is the preprocessing sweep kernel:
// nl+1 forward runs plus nl reverse runs per build, each relaxing every edge,
// so it carries the same allocation-freedom contract as the query kernels.
//
//cplint:hotpath
func (ms *metricSearch) oneToAll(g *roadnet.Graph, w []float64, src roadnet.NodeID, dist []float64, reverse bool) {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	for i := range ms.done {
		ms.done[i] = false
	}
	h := ms.heap[:0]
	dist[src] = 0
	h = metricPush(h, heapEntry{node: src})
	for len(h) > 0 {
		var top heapEntry
		top, h = metricPop(h)
		u := top.node
		if ms.done[u] {
			continue
		}
		ms.done[u] = true
		du := dist[u]
		edges := g.Out(u)
		if reverse {
			edges = g.In(u)
		}
		for _, eid := range edges {
			e := g.Edge(eid)
			v := e.To
			if reverse {
				v = e.From
			}
			if ms.done[v] {
				continue
			}
			nd := du + w[eid]
			if nd < dist[v] {
				dist[v] = nd
				h = metricPush(h, heapEntry{prio: nd, node: v})
			}
		}
	}
	ms.heap = h[:0]
}

// metricPush / metricPop are the same 4-ary value heap as the query engine,
// operating on a caller-owned slice (preprocessing runs outside the pooled
// workspaces).
//
//cplint:hotpath
func metricPush(h []heapEntry, e heapEntry) []heapEntry {
	//cplint:ignore hotalloc -- sanctioned: the backing array is ms.heap, preallocated to 1024 and reused across every sweep of a build, so growth amortizes to zero steady-state allocations
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	return h
}

//cplint:hotpath
func metricPop(h []heapEntry) (heapEntry, []heapEntry) {
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	if n := len(h); n > 0 {
		i := 0
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			end := min(c+4, n)
			for j := c + 1; j < end; j++ {
				if entryLess(h[j], h[m]) {
					m = j
				}
			}
			if !entryLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top, h
}

// activate selects the query's active landmarks: the p.active landmarks with
// the tightest bound at the source, among those whose forward and reverse
// distances at dst are both finite (a non-finite dst entry would poison the
// kernel's subtractions with Inf-Inf). Ties break toward the lower landmark
// index, keeping activation — and therefore the whole search — deterministic.
func (p *Preprocessed) activate(ws *searchSpace, src, dst roadnet.NodeID) {
	ws.altN = 0
	ws.altHsrc = 0
	if p.n == 0 {
		return
	}
	var scores [maxActiveLandmarks]float64
	si, di := int(src), int(dst)
	for l := range p.lands {
		base := l * p.n
		fdst, rdst := p.fwd[base+di], p.rev[base+di]
		if math.IsInf(fdst, 1) || math.IsInf(rdst, 1) {
			continue
		}
		score := fdst - p.fwd[base+si]
		if b := p.rev[base+si] - rdst; b > score {
			score = b
		}
		// Insert into the running top-Active set (selection by insertion:
		// at most maxActiveLandmarks slots, strictly-better-score moves
		// ahead, equal scores keep the earlier landmark first).
		pos := ws.altN
		for pos > 0 && score > scores[pos-1] {
			pos--
		}
		if pos >= p.active {
			continue
		}
		limit := min(ws.altN+1, p.active)
		for j := limit - 1; j > pos; j-- {
			scores[j] = scores[j-1]
			ws.altLands[j] = ws.altLands[j-1]
			ws.altFdst[j] = ws.altFdst[j-1]
			ws.altRdst[j] = ws.altRdst[j-1]
		}
		scores[pos] = score
		ws.altLands[pos] = int32(l)
		ws.altFdst[pos] = fdst
		ws.altRdst[pos] = rdst
		ws.altN = limit
	}
	if ws.altN > 0 {
		ws.altHsrc = scores[0]
	}
}

// altBound is the ALT heuristic kernel: the tightest lower bound on the
// remaining cost from v to the query's destination, combining the active
// landmarks' triangle-inequality bounds with the straight-line bound the
// caller computed. Runs once per relaxed edge.
//
//cplint:hotpath
func (p *Preprocessed) altBound(ws *searchSpace, v roadnet.NodeID, straight float64) float64 {
	best := straight
	vi := int(v)
	for i := 0; i < ws.altN; i++ {
		base := int(ws.altLands[i]) * p.n
		if b := ws.altFdst[i] - p.fwd[base+vi]; b > best {
			best = b
		}
		if b := p.rev[base+vi] - ws.altRdst[i]; b > best {
			best = b
		}
	}
	return best
}

// AStar returns the same route and cost as the package-level AStar, using
// the landmark tables for a tighter (still admissible and consistent)
// heuristic. Safe for concurrent use.
func (p *Preprocessed) AStar(src, dst roadnet.NodeID, t SimTime) (roadnet.Route, float64, error) {
	ws := acquireSpace(p.g)
	r, c, err := search(p.g, src, dst, p.cost, t, p.mcpm, ws, false, p)
	releaseSpace(ws)
	return r, c, err
}

// ShortestPath is an alias for AStar: with an admissible heuristic the two
// return identical results, so the preprocessed tier always goes
// goal-directed.
func (p *Preprocessed) ShortestPath(src, dst roadnet.NodeID, t SimTime) (roadnet.Route, float64, error) {
	return p.AStar(src, dst, t)
}

// KShortest mirrors the package-level KShortest with every spur search
// ALT-accelerated. Banning nodes and edges only removes paths, so the
// landmark bounds stay admissible for spur searches, exactly like the
// straight-line bound.
func (p *Preprocessed) KShortest(src, dst roadnet.NodeID, k int, t SimTime) ([]roadnet.Route, []float64, error) {
	return kShortest(p.g, src, dst, k, p.cost, t, p)
}
