package routing

import (
	"testing"

	"crowdplanner/internal/roadnet"
)

// Benchmarks of the rewritten engine against the preserved old engine
// (reference_test.go), on the same generated city and OD sweep. The `Ref`
// variants are the old container/heap + per-search-allocation +
// sort-per-round implementations; the plain variants are the pooled
// epoch-stamped engine. `go test -bench 'Dijkstra|AStar|KShortest' -benchmem
// ./internal/routing/` shows the speedup and the allocation reduction.

func benchGraph(b *testing.B) *roadnet.Graph {
	b.Helper()
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 16, 16
	return roadnet.Generate(cfg)
}

func benchODs(g *roadnet.Graph, i int) (roadnet.NodeID, roadnet.NodeID) {
	n := roadnet.NodeID(g.NumNodes())
	src := roadnet.NodeID(i) % n
	return src, (src + n/2) % n
}

func BenchmarkDijkstra(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := benchODs(g, i)
		_, _, _ = ShortestPath(g, src, dst, TravelTimeCost, At(0, 8, 0))
	}
}

func BenchmarkDijkstraRef(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := benchODs(g, i)
		_, _, _ = refShortestPath(g, src, dst, TravelTimeCost, At(0, 8, 0))
	}
}

func BenchmarkAStar(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := benchODs(g, i)
		_, _, _ = AStar(g, src, dst, TravelTimeCost, At(0, 8, 0))
	}
}

func BenchmarkAStarRef(b *testing.B) {
	g := benchGraph(b)
	mcpm := TravelTimeCost.MinCostPerMeter(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := benchODs(g, i)
		_, _, _ = refAStar(g, src, dst, TravelTimeCost, At(0, 8, 0), mcpm)
	}
}

func BenchmarkKShortest(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := benchODs(g, i)
		_, _, _ = KShortest(g, src, dst, 4, DistanceCost, 0)
	}
}

func BenchmarkKShortestRef(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := benchODs(g, i)
		_, _, _ = refKShortest(g, src, dst, 4, DistanceCost, 0)
	}
}

// The ALT and batch benchmarks below exercise the preprocessing tier on the
// same city and OD sweep. On a 16x16 toy grid the landmark bound barely
// beats the straight-line bound — the scale story lives in cpbench's
// -routing-grid sweep — but these pin the query-side overhead and give CI a
// 1x smoke over the prep code paths.

func benchPrep(b *testing.B, g *roadnet.Graph) *Preprocessed {
	b.Helper()
	return Preprocess(g, TravelTimeCost, PrepConfig{Landmarks: 16, Active: 8})
}

func BenchmarkALTAStar(b *testing.B) {
	g := benchGraph(b)
	p := benchPrep(b, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := benchODs(g, i)
		_, _, _ = p.AStar(src, dst, At(0, 8, 0))
	}
}

// benchTargets fans each source out to 8 spread-out destinations.
func benchTargets(g *roadnet.Graph, src roadnet.NodeID) []roadnet.NodeID {
	n := roadnet.NodeID(g.NumNodes())
	dsts := make([]roadnet.NodeID, 8)
	for j := range dsts {
		dsts[j] = (src + n/2 + roadnet.NodeID(j)*n/16) % n
	}
	return dsts
}

func BenchmarkShortestPaths(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, _ := benchODs(g, i)
		_, _, _ = ShortestPaths(g, src, benchTargets(g, src), TravelTimeCost, At(0, 8, 0))
	}
}

func BenchmarkALTShortestPaths(b *testing.B) {
	g := benchGraph(b)
	p := benchPrep(b, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, _ := benchODs(g, i)
		_, _, _ = p.ShortestPaths(src, benchTargets(g, src), At(0, 8, 0))
	}
}
