package routing

import (
	"container/heap"

	"crowdplanner/internal/roadnet"
)

// KShortest returns up to k loopless minimum-cost routes from src to dst in
// increasing cost order, using Yen's algorithm with Lawler's optimization.
// It returns ErrNoRoute when not even one route exists. The routes are
// distinct node sequences.
//
// Lawler's optimization: when the i-th accepted route deviated from its
// parent at index d, spurring it at any index below d would reproduce
// candidates already generated when the shared prefix was processed (the ban
// set for that prefix only grows when a route deviating at that index is
// accepted — and that route is itself re-spurred there). Skipping those
// indices turns O(L) spur searches per round into O(L - d) while generating
// the exact same candidate pool round for round, so the output — routes and
// costs both — is bit-identical to unoptimized Yen.
func KShortest(g *roadnet.Graph, src, dst roadnet.NodeID, k int, cost CostFunc, t SimTime) ([]roadnet.Route, []float64, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	counters.kshortest.Add(1)
	ws := acquireSpace(g)
	defer releaseSpace(ws)

	// Goal-directed throughout: banning nodes/edges only removes paths, so
	// the cost function's per-meter bound stays admissible for every spur
	// search, and each one settles a fraction of the graph.
	mcpm := cost.MinCostPerMeter(g)

	best, bestCost, err := search(g, src, dst, cost, t, mcpm, ws, false)
	if err != nil {
		return nil, nil, err
	}
	routes := []roadnet.Route{best}
	costs := []float64{bestCost}
	devs := []int{0} // deviation index of each accepted route

	var cands candHeap
	seen := map[string]bool{routeKey(best): true}

	for len(routes) < k {
		prevRoute := routes[len(routes)-1].Nodes
		// Root-prefix costs along the previous route, computed once and
		// shared by every spur index (the old engine re-walked the prefix
		// per index; the accumulation sequence — and hence every float —
		// is identical). broken is the index of the first missing edge:
		// spur indices beyond it would price their root wrong, so their
		// candidates are dropped rather than underpriced (see rootCosts).
		prefix, broken := rootCosts(g, prevRoute, cost, t)
		for i := devs[len(routes)-1]; i < len(prevRoute)-1; i++ {
			if i > broken {
				break
			}
			spurNode := prevRoute[i]
			rootNodes := prevRoute[:i+1]

			ws.resetBans()
			// Ban edges that would recreate an already-found route sharing
			// this root.
			for _, r := range routes {
				if len(r.Nodes) > i+1 && equalPrefix(r.Nodes, rootNodes) {
					if eid, ok := g.FindEdge(r.Nodes[i], r.Nodes[i+1]); ok {
						ws.banE(eid)
					}
				}
			}
			// Ban root nodes (except the spur node) to keep routes loopless.
			for _, n := range rootNodes[:len(rootNodes)-1] {
				ws.ban(n)
			}

			spurRoute, spurCost, err := search(g, spurNode, dst, cost, t, mcpm, ws, true)
			if err != nil {
				continue
			}
			total := make([]roadnet.NodeID, 0, i+len(spurRoute.Nodes))
			total = append(total, rootNodes[:i]...)
			total = append(total, spurRoute.Nodes...)
			key := nodesKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			// Cost of root prefix plus spur. The prefix is priced under the
			// same departure time; for time-dependent costs this is an
			// approximation, consistent with how Yen is normally applied.
			heap.Push(&cands, yenCand{nodes: total, key: key, cost: prefix[i] + spurCost, dev: i})
		}
		if cands.Len() == 0 {
			break
		}
		next := heap.Pop(&cands).(yenCand)
		routes = append(routes, roadnet.Route{Nodes: next.nodes})
		costs = append(costs, next.cost)
		devs = append(devs, next.dev)
	}
	return routes, costs, nil
}

// rootCosts returns prefix costs along nodes: out[i] is the cost of the path
// nodes[0..i] (i edges), accumulated under the same clock-advance rule the
// old per-index prefixCost used. broken is the index of the first node pair
// with no connecting edge (len(nodes)-1 when the whole chain exists): a spur
// index i > broken has a root whose cost cannot be computed, and its
// candidates must be dropped — the old engine silently priced such roots as
// if the missing edges were free, underpricing the candidate.
func rootCosts(g *roadnet.Graph, nodes []roadnet.NodeID, cost CostFunc, t SimTime) (out []float64, broken int) {
	out = make([]float64, len(nodes))
	broken = len(nodes) - 1
	var total float64
	for i := 1; i < len(nodes); i++ {
		eid, ok := g.FindEdge(nodes[i-1], nodes[i])
		if !ok {
			broken = i - 1
			return out[:i], broken
		}
		total += cost.Cost(g.Edge(eid), t.Add(total))
		out[i] = total
	}
	return out, broken
}

func equalPrefix(nodes, prefix []roadnet.NodeID) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i := range prefix {
		if nodes[i] != prefix[i] {
			return false
		}
	}
	return true
}

// routeKey renders a route as a compact string key for dedup maps.
func routeKey(r roadnet.Route) string { return nodesKey(r.Nodes) }

func nodesKey(nodes []roadnet.NodeID) string {
	b := make([]byte, 0, len(nodes)*4)
	for _, n := range nodes {
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return string(b)
}

// yenCand is one not-yet-accepted candidate route. Candidates are kept in a
// min-heap ordered by (cost, key) — the same strict total order the old
// engine's full sort.Slice per round selected by — so popping the heap
// yields the same route the sort would have put first, without re-sorting
// the whole pool every round. Unlike the search queue (heap.go, the hot
// path), the candidate heap sees only O(k·L) operations per call, so it
// rides on container/heap rather than duplicating the sift code.
type yenCand struct {
	nodes []roadnet.NodeID
	key   string
	cost  float64
	dev   int
}

type candHeap []yenCand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].key < h[j].key
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(yenCand)) }
func (h *candHeap) Pop() any {
	s := *h
	c := s[len(s)-1]
	s[len(s)-1] = yenCand{} // release the route backing array
	*h = s[:len(s)-1]
	return c
}
