package routing

import (
	"math/bits"
	"sync"

	"crowdplanner/internal/roadnet"
)

// KShortest returns up to k loopless minimum-cost routes from src to dst in
// increasing cost order, using Yen's algorithm with Lawler's optimization.
// It returns ErrNoRoute when not even one route exists. The routes are
// distinct node sequences.
//
// Lawler's optimization: when the i-th accepted route deviated from its
// parent at index d, spurring it at any index below d would reproduce
// candidates already generated when the shared prefix was processed (the ban
// set for that prefix only grows when a route deviating at that index is
// accepted — and that route is itself re-spurred there). Skipping those
// indices turns O(L) spur searches per round into O(L - d) while generating
// the exact same candidate pool round for round, so the output — routes and
// costs both — is bit-identical to unoptimized Yen.
func KShortest(g *roadnet.Graph, src, dst roadnet.NodeID, k int, cost CostFunc, t SimTime) ([]roadnet.Route, []float64, error) {
	return kShortest(g, src, dst, k, cost, t, nil)
}

// kShortest is the shared Yen core; prep != nil runs every spur search with
// the landmark heuristic (Preprocessed.KShortest).
//
// All per-candidate state lives in a pooled yenState: candidate node
// sequences append into one slab, dedup is an open-chain hash set over slab
// ranges (replacing the string-keyed map that dominated the old allocation
// profile), and the candidate heap is an inline value heap ordered by
// (cost, little-endian-byte-lexicographic sequence) — the exact order the
// old string keys compared in, so the accepted routes are bit-identical.
func kShortest(g *roadnet.Graph, src, dst roadnet.NodeID, k int, cost CostFunc, t SimTime, prep *Preprocessed) ([]roadnet.Route, []float64, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	counters.kshortest.Add(1)
	ws := acquireSpace(g)
	defer releaseSpace(ws)
	ys := acquireYen()
	defer releaseYen(ys)

	// Goal-directed throughout: banning nodes/edges only removes paths, so
	// the cost function's per-meter bound — and any landmark bound — stays
	// admissible for every spur search, and each one settles a fraction of
	// the graph.
	mcpm := cost.MinCostPerMeter(g)

	bestPath, bestCost, err := searchShared(g, src, dst, cost, t, mcpm, ws, false, prep)
	if err != nil {
		return nil, nil, err
	}
	routes := []roadnet.Route{materializeRoute(bestPath)}
	costs := []float64{bestCost}
	devs := []int{0} // deviation index of each accepted route
	ys.add(bestPath)

	for len(routes) < k {
		prevRoute := routes[len(routes)-1].Nodes
		// Root-prefix costs along the previous route, computed once and
		// shared by every spur index (the old engine re-walked the prefix
		// per index; the accumulation sequence — and hence every float —
		// is identical). broken is the index of the first missing edge:
		// spur indices beyond it would price their root wrong, so their
		// candidates are dropped rather than underpriced (see rootCosts).
		prefix, broken := rootCosts(g, prevRoute, cost, t, ys.prefix)
		ys.prefix = prefix
		for i := devs[len(routes)-1]; i < len(prevRoute)-1; i++ {
			if i > broken {
				break
			}
			spurNode := prevRoute[i]
			rootNodes := prevRoute[:i+1]

			ws.resetBans()
			// Ban edges that would recreate an already-found route sharing
			// this root.
			for _, r := range routes {
				if len(r.Nodes) > i+1 && equalPrefix(r.Nodes, rootNodes) {
					if eid, ok := g.FindEdge(r.Nodes[i], r.Nodes[i+1]); ok {
						ws.banE(eid)
					}
				}
			}
			// Ban root nodes (except the spur node) to keep routes loopless.
			for _, n := range rootNodes[:len(rootNodes)-1] {
				ws.ban(n)
			}

			spurPath, spurCost, err := searchShared(g, spurNode, dst, cost, t, mcpm, ws, true, prep)
			if err != nil {
				continue
			}
			// Assemble root[:i] + spur into the scratch (spurPath is backed
			// by ws.path and consumed before the next search), then dedup.
			ys.tmp = ys.tmp[:0]
			ys.tmp = append(ys.tmp, rootNodes[:i]...)
			ys.tmp = append(ys.tmp, spurPath...)
			off, ln, added := ys.add(ys.tmp)
			if !added {
				continue
			}
			// Cost of root prefix plus spur. The prefix is priced under the
			// same departure time; for time-dependent costs this is an
			// approximation, consistent with how Yen is normally applied.
			ys.pushCand(yenCand{cost: prefix[i] + spurCost, off: off, ln: ln, dev: int32(i)})
		}
		if len(ys.cands) == 0 {
			break
		}
		next := ys.popCand()
		routes = append(routes, materializeRoute(ys.slab[next.off:next.off+next.ln]))
		costs = append(costs, next.cost)
		devs = append(devs, int(next.dev))
	}
	return routes, costs, nil
}

// materializeRoute copies a workspace- or slab-backed node sequence into a
// caller-owned Route.
func materializeRoute(nodes []roadnet.NodeID) roadnet.Route {
	out := make([]roadnet.NodeID, len(nodes))
	copy(out, nodes)
	return roadnet.Route{Nodes: out}
}

// rootCosts returns prefix costs along nodes: out[i] is the cost of the path
// nodes[0..i] (i edges), accumulated under the same clock-advance rule the
// old per-index prefixCost used. broken is the index of the first node pair
// with no connecting edge (len(nodes)-1 when the whole chain exists): a spur
// index i > broken has a root whose cost cannot be computed, and its
// candidates must be dropped — the old engine silently priced such roots as
// if the missing edges were free, underpricing the candidate. buf, when
// large enough, is reused as the output's backing array (Yen passes its
// pooled prefix buffer; pass nil for a fresh slice).
func rootCosts(g *roadnet.Graph, nodes []roadnet.NodeID, cost CostFunc, t SimTime, buf []float64) (out []float64, broken int) {
	if cap(buf) < len(nodes) {
		buf = make([]float64, len(nodes))
	}
	out = buf[:len(nodes)]
	clear(out)
	broken = len(nodes) - 1
	var total float64
	for i := 1; i < len(nodes); i++ {
		eid, ok := g.FindEdge(nodes[i-1], nodes[i])
		if !ok {
			broken = i - 1
			return out[:i], broken
		}
		total += cost.Cost(g.Edge(eid), t.Add(total))
		out[i] = total
	}
	return out, broken
}

func equalPrefix(nodes, prefix []roadnet.NodeID) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i := range prefix {
		if nodes[i] != prefix[i] {
			return false
		}
	}
	return true
}

// yenCand is one not-yet-accepted candidate route, referencing its node
// sequence as a [off, off+ln) range of the yenState slab. Candidates are
// kept in a min-heap ordered by (cost, sequence) — the same strict total
// order the old engine's full sort.Slice per round selected by — so popping
// the heap yields the same route the sort would have put first.
type yenCand struct {
	cost float64
	off  int32
	ln   int32
	dev  int32
}

// yenState is the pooled per-call scratch of one KShortest run: the sequence
// slab with its dedup hash set, the candidate heap, and the prefix-cost and
// assembly buffers. Everything is length-reset on reuse, so a warm KShortest
// allocates only its results.
type yenState struct {
	slab []roadnet.NodeID // all deduped candidate sequences, back to back
	off  []int32          // per-sequence start offset in slab
	ln   []int32          // per-sequence length
	hs   []uint64         // per-sequence hash (also used on table growth)
	next []int32          // per-sequence chain link, -1 ends a bucket
	tab  []int32          // hash buckets: index of chain head, -1 empty

	tmp    []roadnet.NodeID // candidate assembly scratch
	cands  []yenCand        // candidate min-heap
	prefix []float64        // rootCosts buffer
}

var yenPool sync.Pool

func acquireYen() *yenState {
	if v := yenPool.Get(); v != nil {
		ys := v.(*yenState)
		ys.reset()
		return ys
	}
	ys := &yenState{tab: make([]int32, 64)}
	for i := range ys.tab {
		ys.tab[i] = -1
	}
	return ys
}

func releaseYen(ys *yenState) { yenPool.Put(ys) }

func (ys *yenState) reset() {
	ys.slab = ys.slab[:0]
	ys.off = ys.off[:0]
	ys.ln = ys.ln[:0]
	ys.hs = ys.hs[:0]
	ys.next = ys.next[:0]
	for i := range ys.tab {
		ys.tab[i] = -1
	}
	ys.tmp = ys.tmp[:0]
	ys.cands = ys.cands[:0]
}

// hashNodes is FNV-1a over the node IDs (one 32-bit word each) — the dedup
// key function replacing the old per-candidate string rendering.
//
//cplint:hotpath
func hashNodes(nodes []roadnet.NodeID) uint64 {
	h := uint64(1469598103934665603)
	for _, n := range nodes {
		h = (h ^ uint64(uint32(n))) * 1099511628211
	}
	return h
}

// add inserts nodes into the dedup set, returning its slab range and whether
// it was newly added (false: an identical sequence was already present, and
// the returned range is the existing copy's).
//
//cplint:hotpath
func (ys *yenState) add(nodes []roadnet.NodeID) (int32, int32, bool) {
	h := hashNodes(nodes)
	b := h & uint64(len(ys.tab)-1)
	for idx := ys.tab[b]; idx != -1; idx = ys.next[idx] {
		if ys.hs[idx] == h && ys.seqEqual(idx, nodes) {
			return ys.off[idx], ys.ln[idx], false
		}
	}
	if len(ys.off) >= len(ys.tab)-len(ys.tab)/4 {
		//cplint:ignore hotalloc -- hash-table doubling: amortized across the pooled state's lifetime, runs O(log candidates) times ever
		ys.growTab()
		b = h & uint64(len(ys.tab)-1)
	}
	off := int32(len(ys.slab))
	idx := int32(len(ys.off))
	ys.slab = append(ys.slab, nodes...)
	ys.off = append(ys.off, off)
	ys.ln = append(ys.ln, int32(len(nodes)))
	ys.hs = append(ys.hs, h)
	ys.next = append(ys.next, ys.tab[b])
	ys.tab[b] = idx
	return off, int32(len(nodes)), true
}

//cplint:hotpath
func (ys *yenState) seqEqual(idx int32, nodes []roadnet.NodeID) bool {
	if int(ys.ln[idx]) != len(nodes) {
		return false
	}
	seq := ys.slab[ys.off[idx] : ys.off[idx]+ys.ln[idx]]
	for i := range seq {
		if seq[i] != nodes[i] {
			return false
		}
	}
	return true
}

// growTab doubles the bucket table and relinks every stored sequence from
// its saved hash. Offsets are stable, so only the chain links move.
func (ys *yenState) growTab() {
	nt := make([]int32, len(ys.tab)*2)
	for i := range nt {
		nt[i] = -1
	}
	mask := uint64(len(nt) - 1)
	for i := range ys.hs {
		b := ys.hs[i] & mask
		ys.next[i] = nt[b]
		nt[b] = int32(i)
	}
	ys.tab = nt
}

// lessSeqLE orders node sequences by the lexicographic order of their
// little-endian 4-byte renderings — exactly how the old string keys
// compared, which is what keeps the candidate tie-break (and therefore the
// accepted routes) bit-identical to the string-keyed engine. For one node,
// LE-byte lexicographic order is numeric order of the byte-reversed value.
//
//cplint:hotpath
func lessSeqLE(a, b []roadnet.NodeID) bool {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return bits.ReverseBytes32(uint32(a[i])) < bits.ReverseBytes32(uint32(b[i]))
		}
	}
	return len(a) < len(b)
}

//cplint:hotpath
func (ys *yenState) candLess(a, b yenCand) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return lessSeqLE(ys.slab[a.off:a.off+a.ln], ys.slab[b.off:b.off+b.ln])
}

// pushCand / popCand are an inline binary value heap over ys.cands: same
// strict total order as the old container/heap candidate queue, minus the
// interface boxing its Push/Pop paid per candidate.
//
//cplint:hotpath
func (ys *yenState) pushCand(c yenCand) {
	h := append(ys.cands, c)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !ys.candLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	ys.cands = h
}

//cplint:hotpath
func (ys *yenState) popCand() yenCand {
	h := ys.cands
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	ys.cands = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && ys.candLess(h[r], h[l]) {
			m = r
		}
		if !ys.candLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
