package routing

import (
	"sort"

	"crowdplanner/internal/roadnet"
)

// KShortest returns up to k loopless minimum-cost routes from src to dst in
// increasing cost order, using Yen's algorithm. It returns ErrNoRoute when
// not even one route exists. The routes are distinct node sequences.
func KShortest(g *roadnet.Graph, src, dst roadnet.NodeID, k int, cost CostFunc, t SimTime) ([]roadnet.Route, []float64, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	best, bestCost, err := ShortestPath(g, src, dst, cost, t)
	if err != nil {
		return nil, nil, err
	}
	routes := []roadnet.Route{best}
	costs := []float64{bestCost}

	type candidate struct {
		route roadnet.Route
		cost  float64
	}
	var cands []candidate

	seen := map[string]bool{routeKey(best): true}

	for len(routes) < k {
		prevRoute := routes[len(routes)-1]
		// Spur from every node of the previous route except the last.
		for i := 0; i < len(prevRoute.Nodes)-1; i++ {
			spurNode := prevRoute.Nodes[i]
			rootNodes := prevRoute.Nodes[:i+1]

			ban := &banSet{
				nodes: make(map[roadnet.NodeID]bool),
				edges: make(map[roadnet.EdgeID]bool),
			}
			// Ban edges that would recreate an already-found route sharing
			// this root.
			for _, r := range routes {
				if len(r.Nodes) > i && equalPrefix(r.Nodes, rootNodes) {
					if eid, ok := g.FindEdge(r.Nodes[i], r.Nodes[i+1]); ok {
						ban.edges[eid] = true
					}
				}
			}
			// Ban root nodes (except the spur node) to keep routes loopless.
			for _, n := range rootNodes[:len(rootNodes)-1] {
				ban.nodes[n] = true
			}

			spurRoute, spurCost, err := shortest(g, spurNode, dst, cost, t, nil, ban)
			if err != nil {
				continue
			}
			total := make([]roadnet.NodeID, 0, i+len(spurRoute.Nodes))
			total = append(total, rootNodes[:i]...)
			total = append(total, spurRoute.Nodes...)
			cand := roadnet.Route{Nodes: total}
			key := routeKey(cand)
			if seen[key] {
				continue
			}
			seen[key] = true
			// Cost of root prefix plus spur. Recompute the prefix under the
			// same departure time; for time-dependent costs this is an
			// approximation, consistent with how Yen is normally applied.
			rootCost := prefixCost(g, rootNodes, cost, t)
			cands = append(cands, candidate{route: cand, cost: rootCost + spurCost})
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].cost != cands[b].cost {
				return cands[a].cost < cands[b].cost
			}
			return routeKey(cands[a].route) < routeKey(cands[b].route)
		})
		next := cands[0]
		cands = cands[1:]
		routes = append(routes, next.route)
		costs = append(costs, next.cost)
	}
	return routes, costs, nil
}

// prefixCost sums edge costs along nodes (which includes the spur node as its
// last element, contributing no edge).
func prefixCost(g *roadnet.Graph, nodes []roadnet.NodeID, cost CostFunc, t SimTime) float64 {
	var total float64
	for i := 1; i < len(nodes); i++ {
		if eid, ok := g.FindEdge(nodes[i-1], nodes[i]); ok {
			total += cost(g.Edge(eid), t.Add(total))
		}
	}
	return total
}

func equalPrefix(nodes, prefix []roadnet.NodeID) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i := range prefix {
		if nodes[i] != prefix[i] {
			return false
		}
	}
	return true
}

// routeKey renders a route as a compact string key for dedup maps.
func routeKey(r roadnet.Route) string {
	b := make([]byte, 0, len(r.Nodes)*4)
	for _, n := range r.Nodes {
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return string(b)
}
