package routing

import (
	"errors"
	"math"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// ErrNoRoute is returned when the destination is unreachable from the source.
var ErrNoRoute = errors.New("routing: no route between the given nodes")

// ShortestPath returns the minimum-cost route from src to dst under cost,
// departing at time t, along with the total cost.
func ShortestPath(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime) (roadnet.Route, float64, error) {
	ws := acquireSpace(g)
	r, c, err := search(g, src, dst, cost, t, 0, ws, false)
	releaseSpace(ws)
	return r, c, err
}

// AStar returns the same route and cost as ShortestPath but goal-directed:
// it uses the straight-line distance to dst, scaled by the cost function's
// MinCostPerMeter lower bound, as an admissible and consistent heuristic.
// Cost functions without a bound (MinCostPerMeter() == 0) fall back to plain
// Dijkstra, so AStar is always a safe drop-in for ShortestPath.
func AStar(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime) (roadnet.Route, float64, error) {
	ws := acquireSpace(g)
	r, c, err := search(g, src, dst, cost, t, cost.MinCostPerMeter(g), ws, false)
	releaseSpace(ws)
	return r, c, err
}

// search is the shared Dijkstra/A* core over a caller-supplied workspace.
// mcpm > 0 enables the goal-directed heuristic; useBans honors the
// workspace's current node/edge ban set (Yen spur searches).
//
// The search is bit-identical to the old container/heap engine: the same
// lazy-deletion queue discipline under the same strict (prio, node) order,
// the same strict-improvement relaxation (an unreached node has implicit
// distance +Inf, so +Inf or NaN edge costs never relax), and the same
// settled-at-pop cost evaluation time t+dist[u]. With a consistent
// heuristic, nodes are likewise settled with final distances when popped, so
// A* computes the same dist values — and, absent exact cost ties between
// distinct optimal paths, the same prev tree — as Dijkstra.
//
// The annotated suppressions below are the complete sanctioned-allocation
// budget: one result slice per successful search (the PR 5 benchmark's
// 1 alloc/op), plus two error/degenerate returns off the hot loop.
//
//cplint:hotpath
func search(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime, mcpm float64, ws *searchSpace, useBans bool) (roadnet.Route, float64, error) {
	n := g.NumNodes()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		//cplint:ignore hotalloc -- argument-validation failure path: runs once per bad query, never inside the relaxation loop
		return roadnet.Route{}, 0, errors.New("routing: node out of range")
	}
	if useBans && (ws.banned(src) || ws.banned(dst)) {
		return roadnet.Route{}, 0, ErrNoRoute
	}
	counters.searches.Add(1)
	if mcpm > 0 {
		counters.astar.Add(1)
	}
	if src == dst {
		//cplint:ignore hotalloc -- degenerate src==dst return: allocates the one-node result route, the same one-allocation budget as the normal exit
		return roadnet.NewRoute(src), 0, nil
	}

	epoch := ws.beginSearch()
	var pushes uint64
	var dstPt geo.Point
	if mcpm > 0 {
		dstPt = g.Node(dst).Pt
	}

	ws.dist[src] = 0
	ws.prev[src] = -1
	ws.seen[src] = epoch
	start := heapEntry{node: src}
	if mcpm > 0 {
		start.prio = geo.Dist(g.Node(src).Pt, dstPt) * mcpm
	}
	ws.heapPush(start)
	pushes++

	found := false
	for len(ws.heap) > 0 {
		u := ws.heapPop().node
		if ws.done[u] == epoch {
			continue
		}
		ws.done[u] = epoch
		if u == dst {
			found = true
			break
		}
		du := ws.dist[u]
		td := t.Add(du)
		for _, eid := range g.Out(u) {
			if useBans && ws.bannedE(eid) {
				continue
			}
			e := g.Edge(eid)
			v := e.To
			if ws.done[v] == epoch {
				continue
			}
			if useBans && ws.banned(v) {
				continue
			}
			c := cost.Cost(e, td)
			if c < 0 {
				c = 0
			}
			nd := du + c
			dv := math.Inf(1)
			if ws.seen[v] == epoch {
				dv = ws.dist[v]
			}
			if !(nd < dv) {
				continue
			}
			ws.seen[v] = epoch
			ws.dist[v] = nd
			ws.prev[v] = u
			prio := nd
			if mcpm > 0 {
				prio += geo.Dist(g.Node(v).Pt, dstPt) * mcpm
			}
			ws.heapPush(heapEntry{prio: prio, node: v})
			pushes++
		}
	}
	counters.heapPushes.Add(pushes)

	if !found {
		return roadnet.Route{}, 0, ErrNoRoute
	}
	// Reconstruct: count the path length, then fill one exact allocation
	// backwards. Every node on the chain was settled this epoch, so the
	// prev pointers are valid and terminate at src (prev[src] == -1).
	steps := 0
	for at := dst; at != -1; at = ws.prev[at] {
		steps++
		if at == src {
			break
		}
	}
	//cplint:ignore hotalloc -- the sanctioned allocation: one exact-length result slice per search (1 alloc/op in BenchmarkShortestPath), handed to the caller so it cannot be pooled
	nodes := make([]roadnet.NodeID, steps)
	i := steps - 1
	for at := dst; at != -1; at = ws.prev[at] {
		nodes[i] = at
		i--
		if at == src {
			break
		}
	}
	return roadnet.Route{Nodes: nodes}, ws.dist[dst], nil
}
