package routing

import (
	"errors"
	"math"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// ErrNoRoute is returned when the destination is unreachable from the source.
var ErrNoRoute = errors.New("routing: no route between the given nodes")

// errNodeRange is the argument-validation failure, hoisted to package level
// so the hot search kernel stays allocation-free even on bad queries.
var errNodeRange = errors.New("routing: node out of range")

// ShortestPath returns the minimum-cost route from src to dst under cost,
// departing at time t, along with the total cost.
func ShortestPath(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime) (roadnet.Route, float64, error) {
	ws := acquireSpace(g)
	r, c, err := search(g, src, dst, cost, t, 0, ws, false, nil)
	releaseSpace(ws)
	return r, c, err
}

// AStar returns the same route and cost as ShortestPath but goal-directed:
// it uses the straight-line distance to dst, scaled by the cost function's
// MinCostPerMeter lower bound, as an admissible and consistent heuristic.
// Cost functions without a bound (MinCostPerMeter() == 0) fall back to plain
// Dijkstra, so AStar is always a safe drop-in for ShortestPath. For the
// tighter landmark-based heuristic, build a Preprocessed wrapper and use its
// AStar method.
func AStar(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime) (roadnet.Route, float64, error) {
	ws := acquireSpace(g)
	r, c, err := search(g, src, dst, cost, t, cost.MinCostPerMeter(g), ws, false, nil)
	releaseSpace(ws)
	return r, c, err
}

// search wraps searchShared, copying the workspace-backed node sequence into
// the one exact-length result slice handed to the caller.
//
//cplint:hotpath
func search(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime, mcpm float64, ws *searchSpace, useBans bool, prep *Preprocessed) (roadnet.Route, float64, error) {
	path, c, err := searchShared(g, src, dst, cost, t, mcpm, ws, useBans, prep)
	if err != nil {
		return roadnet.Route{}, 0, err
	}
	//cplint:ignore hotalloc -- the sanctioned allocation: one exact-length result slice per search (1 alloc/op in BenchmarkShortestPath), handed to the caller so it cannot be pooled
	nodes := make([]roadnet.NodeID, len(path))
	copy(nodes, path)
	return roadnet.Route{Nodes: nodes}, c, nil
}

// searchShared is the shared Dijkstra/A*/ALT core over a caller-supplied
// workspace. mcpm > 0 enables the straight-line goal-directed heuristic;
// prep != nil additionally consults the landmark tables (the heuristic
// becomes max(landmark bound, straight-line bound), still admissible and
// consistent); useBans honors the workspace's current node/edge ban set
// (Yen spur searches).
//
// On success the returned node sequence is backed by ws.path: valid until
// the next search on ws, owned by the workspace. Callers that keep it must
// copy (search does); callers that consume it immediately (Yen, the batch
// API) skip the intermediate allocation entirely.
//
// The search is bit-identical to the old container/heap engine: the same
// lazy-deletion queue discipline under the same strict (prio, node) order,
// the same strict-improvement relaxation (an unreached node has implicit
// distance +Inf, so +Inf or NaN edge costs never relax), and the same
// settled-at-pop cost evaluation time t+dist[u]. With a consistent
// heuristic, nodes are likewise settled with final distances when popped, so
// A* — straight-line or landmark — computes the same dist values — and,
// absent exact cost ties between distinct optimal paths, the same prev
// tree — as Dijkstra.
//
//cplint:hotpath
func searchShared(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime, mcpm float64, ws *searchSpace, useBans bool, prep *Preprocessed) ([]roadnet.NodeID, float64, error) {
	n := g.NumNodes()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return nil, 0, errNodeRange
	}
	if useBans && (ws.banned(src) || ws.banned(dst)) {
		return nil, 0, ErrNoRoute
	}
	counters.searches.Add(1)
	if mcpm > 0 {
		counters.astar.Add(1)
	}
	if src == dst {
		ws.path = ws.path[:0]
		ws.path = append(ws.path, src)
		return ws.path, 0, nil
	}

	var dstPt geo.Point
	heur := mcpm > 0 || prep != nil
	if heur {
		dstPt = g.Node(dst).Pt
	}
	if prep != nil {
		prep.activate(ws, src, dst)
		if ws.altN > 0 {
			counters.altSearches.Add(1)
			counters.altActive.Add(uint64(ws.altN))
			if ws.altHsrc > geo.Dist(g.Node(src).Pt, dstPt)*mcpm {
				counters.altTightened.Add(1)
			}
		}
	}

	epoch := ws.beginSearch()
	var pushes uint64

	ws.dist[src] = 0
	ws.prev[src] = -1
	ws.seen[src] = epoch
	start := heapEntry{node: src}
	if heur {
		h := geo.Dist(g.Node(src).Pt, dstPt) * mcpm
		if prep != nil {
			h = prep.altBound(ws, src, h)
		}
		start.prio = h
	}
	ws.heapPush(start)
	pushes++

	found := false
	for len(ws.heap) > 0 {
		u := ws.heapPop().node
		if ws.done[u] == epoch {
			continue
		}
		ws.done[u] = epoch
		if u == dst {
			found = true
			break
		}
		du := ws.dist[u]
		td := t.Add(du)
		for _, eid := range g.Out(u) {
			if useBans && ws.bannedE(eid) {
				continue
			}
			e := g.Edge(eid)
			v := e.To
			if ws.done[v] == epoch {
				continue
			}
			if useBans && ws.banned(v) {
				continue
			}
			c := cost.Cost(e, td)
			if c < 0 {
				c = 0
			}
			nd := du + c
			dv := math.Inf(1)
			if ws.seen[v] == epoch {
				dv = ws.dist[v]
			}
			if !(nd < dv) {
				continue
			}
			ws.seen[v] = epoch
			ws.dist[v] = nd
			ws.prev[v] = u
			prio := nd
			if heur {
				// Memoized per search: grid nodes are typically improved
				// by several incoming edges, and the ALT bound costs a
				// handful of random landmark-table loads per evaluation.
				var h float64
				if ws.hseen[v] == epoch {
					h = ws.hval[v]
				} else {
					h = geo.Dist(g.Node(v).Pt, dstPt) * mcpm
					if prep != nil {
						h = prep.altBound(ws, v, h)
					}
					ws.hseen[v] = epoch
					ws.hval[v] = h
				}
				prio += h
			}
			ws.heapPush(heapEntry{prio: prio, node: v})
			pushes++
		}
	}
	counters.heapPushes.Add(pushes)

	if !found {
		return nil, 0, ErrNoRoute
	}
	// Reconstruct into the workspace scratch, backwards then reversed in
	// place. Every node on the chain was settled this epoch, so the prev
	// pointers are valid and terminate at src (prev[src] == -1).
	ws.path = ws.path[:0]
	for at := dst; at != -1; at = ws.prev[at] {
		ws.path = append(ws.path, at)
		if at == src {
			break
		}
	}
	path := ws.path
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, ws.dist[dst], nil
}
