package routing

import (
	"container/heap"
	"errors"
	"math"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// ErrNoRoute is returned when the destination is unreachable from the source.
var ErrNoRoute = errors.New("routing: no route between the given nodes")

// pqItem is a priority-queue entry for Dijkstra/A*.
type pqItem struct {
	node roadnet.NodeID
	prio float64
	idx  int
}

type priorityQueue []*pqItem

func (pq priorityQueue) Len() int { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool {
	if pq[i].prio != pq[j].prio {
		return pq[i].prio < pq[j].prio
	}
	return pq[i].node < pq[j].node // deterministic tie-break
}
func (pq priorityQueue) Swap(i, j int) {
	pq[i], pq[j] = pq[j], pq[i]
	pq[i].idx = i
	pq[j].idx = j
}
func (pq *priorityQueue) Push(x any) {
	it := x.(*pqItem)
	it.idx = len(*pq)
	*pq = append(*pq, it)
}
func (pq *priorityQueue) Pop() any {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

// banSet marks nodes and edges excluded from a search; used by Yen's
// algorithm for spur computations. A nil *banSet bans nothing.
type banSet struct {
	nodes map[roadnet.NodeID]bool
	edges map[roadnet.EdgeID]bool
}

func (b *banSet) bansNode(n roadnet.NodeID) bool { return b != nil && b.nodes[n] }
func (b *banSet) bansEdge(e roadnet.EdgeID) bool { return b != nil && b.edges[e] }

// ShortestPath returns the minimum-cost route from src to dst under cost,
// departing at time t, along with the total cost.
func ShortestPath(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime) (roadnet.Route, float64, error) {
	return shortest(g, src, dst, cost, t, nil, nil)
}

// AStar returns the same result as ShortestPath but uses the straight-line
// distance heuristic. The heuristic is only admissible for cost functions
// whose per-meter cost is at least minCostPerMeter; pass 0 to fall back to
// plain Dijkstra.
func AStar(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime, minCostPerMeter float64) (roadnet.Route, float64, error) {
	if minCostPerMeter <= 0 {
		return shortest(g, src, dst, cost, t, nil, nil)
	}
	dstPt := g.Node(dst).Pt
	h := func(n roadnet.NodeID) float64 {
		return geo.Dist(g.Node(n).Pt, dstPt) * minCostPerMeter
	}
	return shortest(g, src, dst, cost, t, h, nil)
}

// shortest is the shared Dijkstra/A* core. h may be nil (Dijkstra); ban may
// be nil (no exclusions).
func shortest(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime, h func(roadnet.NodeID) float64, ban *banSet) (roadnet.Route, float64, error) {
	n := g.NumNodes()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return roadnet.Route{}, 0, errors.New("routing: node out of range")
	}
	if ban.bansNode(src) || ban.bansNode(dst) {
		return roadnet.Route{}, 0, ErrNoRoute
	}
	if src == dst {
		return roadnet.NewRoute(src), 0, nil
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	prev := make([]roadnet.NodeID, n)
	for i := range prev {
		prev[i] = -1
	}
	done := make([]bool, n)

	dist[src] = 0
	pq := priorityQueue{}
	heap.Init(&pq)
	start := &pqItem{node: src, prio: 0}
	if h != nil {
		start.prio = h(src)
	}
	heap.Push(&pq, start)

	for pq.Len() > 0 {
		it := heap.Pop(&pq).(*pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.Out(u) {
			if ban.bansEdge(eid) {
				continue
			}
			e := g.Edge(eid)
			v := e.To
			if done[v] || ban.bansNode(v) {
				continue
			}
			c := cost(e, t.Add(dist[u]))
			if c < 0 {
				c = 0
			}
			nd := dist[u] + c
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				prio := nd
				if h != nil {
					prio += h(v)
				}
				heap.Push(&pq, &pqItem{node: v, prio: prio})
			}
		}
	}

	if math.IsInf(dist[dst], 1) {
		return roadnet.Route{}, 0, ErrNoRoute
	}
	// Reconstruct.
	var rev []roadnet.NodeID
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	nodes := make([]roadnet.NodeID, len(rev))
	for i, nd := range rev {
		nodes[len(rev)-1-i] = nd
	}
	return roadnet.Route{Nodes: nodes}, dist[dst], nil
}
