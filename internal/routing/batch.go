package routing

import (
	"math"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// This file implements the batched search API: one-to-many queries that run
// a single search per source until every target settles, instead of one full
// search per (src, dst) pair. The plain (non-preprocessed) variant runs pure
// Dijkstra, so its prev tree is the prefix of the single-pair tree and the
// returned routes are exactly — including tie-breaks — what a loop of
// ShortestPath calls would return. The Preprocessed variant adds a
// min-over-targets ALT heuristic: the minimum of per-target consistent
// bounds is itself consistent, so every target is still settled with its
// final distance, and routes match single-pair results absent exact cost
// ties.

// ShortestPaths returns the minimum-cost route and cost from src to each of
// dsts, departing at t, in one search: a single Dijkstra that stops as soon
// as every distinct target has settled. routes[i]/costs[i] correspond to
// dsts[i] (duplicates are fine and served from the same search). An
// unreachable target yields an empty route and a +Inf cost — per-target
// reachability is data, not an error; the error return covers only invalid
// nodes.
func ShortestPaths(g *roadnet.Graph, src roadnet.NodeID, dsts []roadnet.NodeID, cost CostFunc, t SimTime) ([]roadnet.Route, []float64, error) {
	ws := acquireSpace(g)
	defer releaseSpace(ws)
	return batchSearch(g, src, dsts, cost, t, ws, nil)
}

// ShortestPaths is the batched one-to-many query over the landmark tables:
// same results as the package-level ShortestPaths (absent exact cost ties),
// goal-directed toward the nearest unsettled target.
func (p *Preprocessed) ShortestPaths(src roadnet.NodeID, dsts []roadnet.NodeID, t SimTime) ([]roadnet.Route, []float64, error) {
	ws := acquireSpace(p.g)
	defer releaseSpace(ws)
	return batchSearch(p.g, src, dsts, p.cost, t, ws, p)
}

// Matrix returns the many-to-many cost table costs[i][j] = cost of the best
// route srcs[i] → dsts[j] departing at t (+Inf when unreachable). Targets
// are bucketed per source: each row is one batched search, so the whole
// table costs len(srcs) searches instead of len(srcs)·len(dsts).
func Matrix(g *roadnet.Graph, srcs, dsts []roadnet.NodeID, cost CostFunc, t SimTime) ([][]float64, error) {
	return matrix(g, srcs, dsts, cost, t, nil)
}

// Matrix is the many-to-many cost table over the landmark tables; see the
// package-level Matrix.
func (p *Preprocessed) Matrix(srcs, dsts []roadnet.NodeID, t SimTime) ([][]float64, error) {
	return matrix(p.g, srcs, dsts, p.cost, t, p)
}

func matrix(g *roadnet.Graph, srcs, dsts []roadnet.NodeID, cost CostFunc, t SimTime, prep *Preprocessed) ([][]float64, error) {
	n := g.NumNodes()
	for _, s := range srcs {
		if int(s) >= n || s < 0 {
			return nil, errNodeRange
		}
	}
	ws := acquireSpace(g)
	defer releaseSpace(ws)
	out := make([][]float64, len(srcs))
	for i, src := range srcs {
		if err := settleTargets(g, src, dsts, cost, t, ws, prep); err != nil {
			return nil, err
		}
		row := make([]float64, len(dsts))
		for j, d := range dsts {
			if ws.done[d] == ws.epoch {
				row[j] = ws.dist[d]
			} else {
				row[j] = math.Inf(1)
			}
		}
		out[i] = row
	}
	return out, nil
}

// batchSearch runs one multi-target search and materializes per-target
// routes off the settled prev tree.
func batchSearch(g *roadnet.Graph, src roadnet.NodeID, dsts []roadnet.NodeID, cost CostFunc, t SimTime, ws *searchSpace, prep *Preprocessed) ([]roadnet.Route, []float64, error) {
	if err := settleTargets(g, src, dsts, cost, t, ws, prep); err != nil {
		return nil, nil, err
	}
	routes := make([]roadnet.Route, len(dsts))
	costs := make([]float64, len(dsts))
	epoch := ws.epoch
	for i, d := range dsts {
		if ws.done[d] != epoch {
			costs[i] = math.Inf(1)
			continue
		}
		costs[i] = ws.dist[d]
		steps := 0
		for at := d; at != -1; at = ws.prev[at] {
			steps++
			if at == src {
				break
			}
		}
		nodes := make([]roadnet.NodeID, steps)
		k := steps - 1
		for at := d; at != -1; at = ws.prev[at] {
			nodes[k] = at
			k--
			if at == src {
				break
			}
		}
		routes[i] = roadnet.Route{Nodes: nodes}
	}
	return routes, costs, nil
}

// settleTargets runs the search: marks dsts in the workspace's epoch-stamped
// target set and relaxes until every distinct target settles (or the queue
// drains — leftover targets are unreachable). On return, ws holds the
// search's epoch-stamped dist/prev/done labels for the caller to read.
func settleTargets(g *roadnet.Graph, src roadnet.NodeID, dsts []roadnet.NodeID, cost CostFunc, t SimTime, ws *searchSpace, prep *Preprocessed) error {
	n := g.NumNodes()
	if int(src) >= n || src < 0 {
		return errNodeRange
	}
	for _, d := range dsts {
		if int(d) >= n || d < 0 {
			return errNodeRange
		}
	}
	counters.searches.Add(1)
	counters.batchSearches.Add(1)
	counters.batchTargets.Add(uint64(len(dsts)))

	epoch := ws.beginSearch()
	remaining := 0
	for _, d := range dsts {
		if ws.targ[d] != epoch {
			ws.targ[d] = epoch
			remaining++
		}
	}
	if prep != nil {
		prep.activateMulti(ws, src, dsts)
	}
	relaxAll(g, src, cost, t, ws, prep, remaining, epoch)
	return nil
}

// relaxAll is the multi-target relaxation loop: plain Dijkstra when prep is
// nil, ALT with the min-over-targets bound otherwise. Identical queue
// discipline to the single-pair kernel — strict (prio, node) order, lazy
// deletion, strict-improvement relaxation, settled-at-pop cost times.
//
//cplint:hotpath
func relaxAll(g *roadnet.Graph, src roadnet.NodeID, cost CostFunc, t SimTime, ws *searchSpace, prep *Preprocessed, remaining int, epoch uint32) {
	var pushes uint64
	ws.dist[src] = 0
	ws.prev[src] = -1
	ws.seen[src] = epoch
	start := heapEntry{node: src}
	if prep != nil {
		start.prio = prep.mtBound(ws, src)
	}
	ws.heapPush(start)
	pushes++

	for remaining > 0 && len(ws.heap) > 0 {
		u := ws.heapPop().node
		if ws.done[u] == epoch {
			continue
		}
		ws.done[u] = epoch
		if ws.targ[u] == epoch {
			remaining--
			if remaining == 0 {
				break
			}
		}
		du := ws.dist[u]
		td := t.Add(du)
		for _, eid := range g.Out(u) {
			e := g.Edge(eid)
			v := e.To
			if ws.done[v] == epoch {
				continue
			}
			c := cost.Cost(e, td)
			if c < 0 {
				c = 0
			}
			nd := du + c
			dv := math.Inf(1)
			if ws.seen[v] == epoch {
				dv = ws.dist[v]
			}
			if !(nd < dv) {
				continue
			}
			ws.seen[v] = epoch
			ws.dist[v] = nd
			ws.prev[v] = u
			prio := nd
			if prep != nil {
				// Same per-search heuristic memoization as the single-pair
				// kernel; the multi-target bound is even pricier per call.
				if ws.hseen[v] == epoch {
					prio += ws.hval[v]
				} else {
					h := prep.mtBound(ws, v)
					ws.hseen[v] = epoch
					ws.hval[v] = h
					prio += h
				}
			}
			ws.heapPush(heapEntry{prio: prio, node: v})
			pushes++
		}
	}
	counters.heapPushes.Add(pushes)
}

// activateMulti fills the workspace's multi-target ALT state: for each
// distinct position in dsts, the active landmark rows and destination
// distances (as in activate), plus the target point for the straight-line
// term. Settled targets are not evicted mid-search — keeping them only
// loosens the bound toward min over a superset, which stays admissible and
// consistent for every remaining target.
func (p *Preprocessed) activateMulti(ws *searchSpace, src roadnet.NodeID, dsts []roadnet.NodeID) {
	nt := len(dsts)
	ws.mtN = ws.mtN[:0]
	ws.mtLands = ws.mtLands[:0]
	ws.mtFdst = ws.mtFdst[:0]
	ws.mtRdst = ws.mtRdst[:0]
	ws.mtPts = ws.mtPts[:0]
	for j := 0; j < nt; j++ {
		p.activate(ws, src, dsts[j])
		ws.mtN = append(ws.mtN, int32(ws.altN))
		ws.mtPts = append(ws.mtPts, p.g.Node(dsts[j]).Pt)
		for i := 0; i < maxActiveLandmarks; i++ {
			if i < ws.altN {
				ws.mtLands = append(ws.mtLands, ws.altLands[i])
				ws.mtFdst = append(ws.mtFdst, ws.altFdst[i])
				ws.mtRdst = append(ws.mtRdst, ws.altRdst[i])
			} else {
				ws.mtLands = append(ws.mtLands, 0)
				ws.mtFdst = append(ws.mtFdst, 0)
				ws.mtRdst = append(ws.mtRdst, 0)
			}
		}
	}
	ws.altN = 0 // single-target state was scratch for the copies above
}

// mtBound is the multi-target ALT kernel: the minimum over targets of each
// target's max(landmark bound, straight-line bound). Each per-target bound
// is admissible and consistent for its target; their min is consistent and
// vanishes at every target, so multi-target A* still settles each target
// with its final distance.
//
//cplint:hotpath
func (p *Preprocessed) mtBound(ws *searchSpace, v roadnet.NodeID) float64 {
	best := math.Inf(1)
	vi := int(v)
	vPt := p.g.Node(v).Pt
	for j := range ws.mtN {
		b := geo.Dist(vPt, ws.mtPts[j]) * p.mcpm
		base := j * maxActiveLandmarks
		for i := 0; i < int(ws.mtN[j]); i++ {
			lb := int(ws.mtLands[base+i]) * p.n
			if d := ws.mtFdst[base+i] - p.fwd[lb+vi]; d > b {
				b = d
			}
			if d := p.rev[lb+vi] - ws.mtRdst[base+i]; d > b {
				b = d
			}
		}
		if b < best {
			best = b
		}
	}
	if math.IsInf(best, 1) { // no targets: degenerate, no guidance
		return 0
	}
	return best
}
