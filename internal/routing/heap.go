package routing

import (
	"crowdplanner/internal/roadnet"
)

// heapEntry is one priority-queue entry: a node and the priority it was
// pushed with (g-cost for Dijkstra, g+h for A*). Entries are plain values —
// no per-push boxing, no index bookkeeping — and the queue uses lazy
// deletion: a node may appear several times with decreasing priorities, and
// stale pops are skipped via the done stamp.
type heapEntry struct {
	prio float64
	node roadnet.NodeID
}

// entryLess orders entries by priority with the node ID as a deterministic
// tie-break, the same strict total order the old container/heap engine used.
// Under a strict total order every pop extracts the unique minimum of the
// queue's contents, so any correct heap yields the same pop sequence — which
// is what keeps the rewritten engine bit-identical to the old one.
//
//cplint:hotpath
func entryLess(a, b heapEntry) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.node < b.node
}

// heapPush inserts e. The heap is 4-ary: shallower than a binary heap (fewer
// levels to sift through on push, the dominant operation in Dijkstra) with
// all four children adjacent in one cache line pair. The append lands in the
// workspace's pooled backing array, which amortizes to zero growth.
//
//cplint:hotpath
func (ws *searchSpace) heapPush(e heapEntry) {
	h := append(ws.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	ws.heap = h
}

// heapPop removes and returns the minimum entry.
//
//cplint:hotpath
func (ws *searchSpace) heapPop() heapEntry {
	h := ws.heap
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	ws.heap = h
	if n := len(h); n > 0 {
		i := 0
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if entryLess(h[j], h[m]) {
					m = j
				}
			}
			if !entryLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}
