package routing

import (
	"crowdplanner/internal/roadnet"
)

// CostFunc assigns a non-negative cost to traversing an edge when departing
// at time t. Route search minimizes the sum of edge costs. Implementations
// must be deterministic for a (edge, t) pair.
type CostFunc func(e *roadnet.Edge, t SimTime) float64

// DistanceCost returns edge length in meters. Minimizing it yields the
// shortest route, the first of the two web-service-style providers.
func DistanceCost(e *roadnet.Edge, _ SimTime) float64 { return e.Length }

// lightPenaltyMinutes is the expected delay per traffic light used by the
// travel-time model.
const lightPenaltyMinutes = 0.5

// TravelTimeCost returns the expected traversal time of the edge in minutes
// at departure time t, including congestion and traffic-light delay.
// Minimizing it yields the fastest route, the second web-service provider.
func TravelTimeCost(e *roadnet.Edge, t SimTime) float64 {
	major := e.Class >= roadnet.Arterial
	factor := CongestionFactor(t.HourOfDay(), major)
	return e.BaseTravelMinutes()*factor + float64(e.Lights)*lightPenaltyMinutes
}

// TravelMinutes returns the total expected travel time of route r in minutes
// departing at t, advancing the clock edge by edge so congestion evolves
// along the trip.
func TravelMinutes(g *roadnet.Graph, r roadnet.Route, depart SimTime) float64 {
	var total float64
	now := depart
	for i := 1; i < len(r.Nodes); i++ {
		eid, ok := g.FindEdge(r.Nodes[i-1], r.Nodes[i])
		if !ok {
			continue
		}
		dt := TravelTimeCost(g.Edge(eid), now)
		total += dt
		now = now.Add(dt)
	}
	return total
}
