package routing

import (
	"crowdplanner/internal/roadnet"
)

// CostFunc assigns a non-negative cost to traversing an edge when departing
// at time t. Route search minimizes the sum of edge costs. Implementations
// must be deterministic for an (edge, t) pair.
//
// MinCostPerMeter is the hook that makes goal-directed (A*) search free for
// callers: it returns a lower bound b, for the given graph, such that
// Cost(e, t) >= b·dist(e.From, e.To) (straight-line) for every edge and
// time. Then h(n) = b·dist(n, dst) is an admissible and consistent
// heuristic and AStar returns the same route as ShortestPath. The built-in
// cost models derive b from the graph's construction-time stats
// (MaxSpeedKmh, MinLengthRatio), so the bound holds for any graph however
// it was built — over-limit edges or edges shorter than the crow flies
// weaken the heuristic instead of breaking admissibility. Return 0 when no
// bound is known; goal-directed search then degrades to plain Dijkstra.
type CostFunc interface {
	Cost(e *roadnet.Edge, t SimTime) float64
	MinCostPerMeter(g *roadnet.Graph) float64
}

// CostFn adapts an ad-hoc cost function with no known per-meter lower bound
// (AStar falls back to Dijkstra for it).
func CostFn(f func(e *roadnet.Edge, t SimTime) float64) CostFunc {
	return costFn{f: f}
}

// BoundedCostFn adapts a cost function together with a caller-guaranteed
// admissible lower bound: f(e, t) >= minPerMeter·dist(e.From, e.To)
// (straight-line meters) must hold for every edge and time, or searches may
// return suboptimal routes.
func BoundedCostFn(f func(e *roadnet.Edge, t SimTime) float64, minPerMeter float64) CostFunc {
	return costFn{f: f, mcpm: minPerMeter}
}

type costFn struct {
	f    func(e *roadnet.Edge, t SimTime) float64
	mcpm float64
}

func (c costFn) Cost(e *roadnet.Edge, t SimTime) float64 { return c.f(e, t) }
func (c costFn) MinCostPerMeter(*roadnet.Graph) float64  { return c.mcpm }

// DistanceCost returns edge length in meters. Minimizing it yields the
// shortest route, the first of the two web-service-style providers. Its
// per-meter bound is the graph's length ratio (1 when every edge is at
// least as long as the straight line between its endpoints).
var DistanceCost CostFunc = distanceCost{}

type distanceCost struct{}

func (distanceCost) Cost(e *roadnet.Edge, _ SimTime) float64 { return e.Length }
func (distanceCost) MinCostPerMeter(g *roadnet.Graph) float64 {
	return g.MinLengthRatio()
}

// MinEdgeCost implements EdgeBounder: the distance cost is time-independent,
// so the edge's own length is an exact per-edge bound — landmark distances
// under it equal true distance-cost distances, giving ALT its tightest
// possible triangle-inequality bounds.
func (distanceCost) MinEdgeCost(_ *roadnet.Graph, e *roadnet.Edge) float64 { return e.Length }

// lightPenaltyMinutes is the expected delay per traffic light used by the
// travel-time model.
const lightPenaltyMinutes = 0.5

// TravelTimeCost returns the expected traversal time of the edge in minutes
// at departure time t, including congestion and traffic-light delay.
// Minimizing it yields the fastest route, the second web-service provider.
// Its per-meter lower bound is free flow at the graph's fastest speed limit
// with no lights — 60/(1000·MaxSpeedKmh) minutes per meter — scaled by the
// graph's length ratio (congestion factors are always >= 1 and lights only
// add, so the bound is admissible).
var TravelTimeCost CostFunc = travelTimeCost{}

type travelTimeCost struct{}

func (travelTimeCost) Cost(e *roadnet.Edge, t SimTime) float64 {
	major := e.Class >= roadnet.Arterial
	factor := CongestionFactor(t.HourOfDay(), major)
	return e.BaseTravelMinutes()*factor + float64(e.Lights)*lightPenaltyMinutes
}

func (travelTimeCost) MinCostPerMeter(g *roadnet.Graph) float64 {
	maxKmh := g.MaxSpeedKmh()
	if maxKmh <= 0 {
		return 0
	}
	return 60 / (1000 * maxKmh) * g.MinLengthRatio()
}

// MinEdgeCost implements EdgeBounder: free flow on this edge at its own
// speed limit plus its light penalty. CongestionFactor is always >= 1 (base
// 1.0 plus non-negative peaks), so BaseTravelMinutes·factor + lights >=
// BaseTravelMinutes + lights at every departure time — a per-edge bound far
// tighter than the graph-wide fastest-speed-limit per-meter rate, which is
// what makes travel-time ALT effective on graphs with mixed road classes.
func (travelTimeCost) MinEdgeCost(_ *roadnet.Graph, e *roadnet.Edge) float64 {
	return e.BaseTravelMinutes() + float64(e.Lights)*lightPenaltyMinutes
}

// TravelMinutes returns the total expected travel time of route r in minutes
// departing at t, advancing the clock edge by edge so congestion evolves
// along the trip.
func TravelMinutes(g *roadnet.Graph, r roadnet.Route, depart SimTime) float64 {
	var total float64
	now := depart
	for i := 1; i < len(r.Nodes); i++ {
		eid, ok := g.FindEdge(r.Nodes[i-1], r.Nodes[i])
		if !ok {
			continue
		}
		dt := TravelTimeCost.Cost(g.Edge(eid), now)
		total += dt
		now = now.Add(dt)
	}
	return total
}
