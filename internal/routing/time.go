// Package routing implements route search over a roadnet.Graph: Dijkstra and
// A* single-pair search, Yen's k-shortest paths, and cost models (shortest
// distance, time-of-day-aware fastest time). These play the role of the
// "map web services" candidate-route source in the paper's route generation
// component.
package routing

import (
	"fmt"
	"math"
)

// SimTime is a simulated departure time measured in minutes since Monday
// 00:00. The simulation uses a weekly cycle, which is all the paper's
// time-tagged truth needs.
type SimTime float64

// MinutesPerDay and MinutesPerWeek define the simulated calendar.
const (
	MinutesPerDay  = 24 * 60
	MinutesPerWeek = 7 * MinutesPerDay
)

// At constructs a SimTime from a day (0=Monday) and a 24h clock time.
func At(day, hour, minute int) SimTime {
	return SimTime(day*MinutesPerDay + hour*60 + minute)
}

// Normalize wraps t into [0, MinutesPerWeek).
func (t SimTime) Normalize() SimTime {
	m := math.Mod(float64(t), MinutesPerWeek)
	if m < 0 {
		m += MinutesPerWeek
	}
	return SimTime(m)
}

// HourOfDay returns the (fractional) hour of day in [0, 24).
func (t SimTime) HourOfDay() float64 {
	n := float64(t.Normalize())
	return math.Mod(n, MinutesPerDay) / 60
}

// Day returns the day of week, 0=Monday .. 6=Sunday.
func (t SimTime) Day() int {
	return int(float64(t.Normalize()) / MinutesPerDay)
}

// Add returns t shifted by m minutes.
func (t SimTime) Add(m float64) SimTime { return SimTime(float64(t) + m) }

// Slot quantizes the time into one of slots equal buckets over the day,
// ignoring the day of week. The paper tags truths with a departure-time tag;
// slots are the granularity of those tags.
func (t SimTime) Slot(slots int) int {
	if slots <= 0 {
		return 0
	}
	return int(t.HourOfDay() / 24 * float64(slots))
}

// String implements fmt.Stringer with a day/hh:mm rendering.
func (t SimTime) String() string {
	days := [...]string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	n := t.Normalize()
	h := int(n.HourOfDay())
	m := int(math.Mod(float64(n), 60))
	return fmt.Sprintf("%s %02d:%02d", days[n.Day()], h, m)
}

// CongestionFactor returns the travel-time multiplier for the given hour of
// day: 1.0 free flow at night, rising to rush-hour peaks around 08:00 and
// 17:30. Congestion is deliberately asymmetric across road classes — the
// morning commute overloads the major arterials and highways while the
// evening spread-out traffic clogs the minor streets — so the best route
// between two places genuinely changes with the time of day. This is the
// phenomenon that motivates time-period popular-route mining (Luo et al.
// [13]) and the truth database's time tags.
func CongestionFactor(hour float64, major bool) float64 {
	peak := func(center, width, height float64) float64 {
		d := hour - center
		return height * math.Exp(-d*d/(2*width*width))
	}
	base := 1.0 + peak(8, 1.2, 0.5) + peak(17.5, 1.5, 0.5)
	if major {
		base += peak(8, 1.0, 0.9) // morning commute jams the arterials
	} else {
		base += peak(17.5, 1.2, 0.9) // evening errands jam the side streets
	}
	return base
}
