package routing

// This file preserves the pre-rewrite engine — container/heap priority queue
// with boxed *pqItem entries, per-search O(|V|) array allocation and
// clearing, map-based ban sets, and unoptimized Yen with a full sort per
// round — as the equivalence baseline. The rewritten engine must return
// bit-identical routes and costs; see equivalence_test.go. The only change
// from the historical code is cost(e, t) → cost.Cost(e, t) for the CostFunc
// interface.

import (
	"container/heap"
	"math"
	"sort"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

type refPQItem struct {
	node roadnet.NodeID
	prio float64
	idx  int
}

type refPQ []*refPQItem

func (pq refPQ) Len() int { return len(pq) }
func (pq refPQ) Less(i, j int) bool {
	if pq[i].prio != pq[j].prio {
		return pq[i].prio < pq[j].prio
	}
	return pq[i].node < pq[j].node
}
func (pq refPQ) Swap(i, j int) {
	pq[i], pq[j] = pq[j], pq[i]
	pq[i].idx = i
	pq[j].idx = j
}
func (pq *refPQ) Push(x any) {
	it := x.(*refPQItem)
	it.idx = len(*pq)
	*pq = append(*pq, it)
}
func (pq *refPQ) Pop() any {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

type refBanSet struct {
	nodes map[roadnet.NodeID]bool
	edges map[roadnet.EdgeID]bool
}

func (b *refBanSet) bansNode(n roadnet.NodeID) bool { return b != nil && b.nodes[n] }
func (b *refBanSet) bansEdge(e roadnet.EdgeID) bool { return b != nil && b.edges[e] }

func refShortestPath(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime) (roadnet.Route, float64, error) {
	return refShortest(g, src, dst, cost, t, nil, nil)
}

func refAStar(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime, minCostPerMeter float64) (roadnet.Route, float64, error) {
	if minCostPerMeter <= 0 {
		return refShortest(g, src, dst, cost, t, nil, nil)
	}
	dstPt := g.Node(dst).Pt
	h := func(n roadnet.NodeID) float64 {
		return geo.Dist(g.Node(n).Pt, dstPt) * minCostPerMeter
	}
	return refShortest(g, src, dst, cost, t, h, nil)
}

func refShortest(g *roadnet.Graph, src, dst roadnet.NodeID, cost CostFunc, t SimTime, h func(roadnet.NodeID) float64, ban *refBanSet) (roadnet.Route, float64, error) {
	n := g.NumNodes()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return roadnet.Route{}, 0, ErrNoRoute
	}
	if ban.bansNode(src) || ban.bansNode(dst) {
		return roadnet.Route{}, 0, ErrNoRoute
	}
	if src == dst {
		return roadnet.NewRoute(src), 0, nil
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	prev := make([]roadnet.NodeID, n)
	for i := range prev {
		prev[i] = -1
	}
	done := make([]bool, n)

	dist[src] = 0
	pq := refPQ{}
	heap.Init(&pq)
	start := &refPQItem{node: src, prio: 0}
	if h != nil {
		start.prio = h(src)
	}
	heap.Push(&pq, start)

	for pq.Len() > 0 {
		it := heap.Pop(&pq).(*refPQItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.Out(u) {
			if ban.bansEdge(eid) {
				continue
			}
			e := g.Edge(eid)
			v := e.To
			if done[v] || ban.bansNode(v) {
				continue
			}
			c := cost.Cost(e, t.Add(dist[u]))
			if c < 0 {
				c = 0
			}
			nd := dist[u] + c
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				prio := nd
				if h != nil {
					prio += h(v)
				}
				heap.Push(&pq, &refPQItem{node: v, prio: prio})
			}
		}
	}

	if math.IsInf(dist[dst], 1) {
		return roadnet.Route{}, 0, ErrNoRoute
	}
	var rev []roadnet.NodeID
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	nodes := make([]roadnet.NodeID, len(rev))
	for i, nd := range rev {
		nodes[len(rev)-1-i] = nd
	}
	return roadnet.Route{Nodes: nodes}, dist[dst], nil
}

func refKShortest(g *roadnet.Graph, src, dst roadnet.NodeID, k int, cost CostFunc, t SimTime) ([]roadnet.Route, []float64, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	best, bestCost, err := refShortestPath(g, src, dst, cost, t)
	if err != nil {
		return nil, nil, err
	}
	routes := []roadnet.Route{best}
	costs := []float64{bestCost}

	type candidate struct {
		route roadnet.Route
		cost  float64
	}
	var cands []candidate

	seen := map[string]bool{routeKey(best): true}

	for len(routes) < k {
		prevRoute := routes[len(routes)-1]
		for i := 0; i < len(prevRoute.Nodes)-1; i++ {
			spurNode := prevRoute.Nodes[i]
			rootNodes := prevRoute.Nodes[:i+1]

			ban := &refBanSet{
				nodes: make(map[roadnet.NodeID]bool),
				edges: make(map[roadnet.EdgeID]bool),
			}
			for _, r := range routes {
				if len(r.Nodes) > i && equalPrefix(r.Nodes, rootNodes) {
					if eid, ok := g.FindEdge(r.Nodes[i], r.Nodes[i+1]); ok {
						ban.edges[eid] = true
					}
				}
			}
			for _, n := range rootNodes[:len(rootNodes)-1] {
				ban.nodes[n] = true
			}

			spurRoute, spurCost, err := refShortest(g, spurNode, dst, cost, t, nil, ban)
			if err != nil {
				continue
			}
			total := make([]roadnet.NodeID, 0, i+len(spurRoute.Nodes))
			total = append(total, rootNodes[:i]...)
			total = append(total, spurRoute.Nodes...)
			cand := roadnet.Route{Nodes: total}
			key := routeKey(cand)
			if seen[key] {
				continue
			}
			seen[key] = true
			rootCost := refPrefixCost(g, rootNodes, cost, t)
			cands = append(cands, candidate{route: cand, cost: rootCost + spurCost})
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].cost != cands[b].cost {
				return cands[a].cost < cands[b].cost
			}
			return routeKey(cands[a].route) < routeKey(cands[b].route)
		})
		next := cands[0]
		cands = cands[1:]
		routes = append(routes, next.route)
		costs = append(costs, next.cost)
	}
	return routes, costs, nil
}

// routeKey renders a route as a compact string key for dedup maps. The
// production engine replaced string keys with the yenState slab set; the
// reference keeps them, and lessSeqLE is pinned against this rendering (see
// equivalence_test.go).
func routeKey(r roadnet.Route) string { return nodesKey(r.Nodes) }

func nodesKey(nodes []roadnet.NodeID) string {
	b := make([]byte, 0, len(nodes)*4)
	for _, n := range nodes {
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return string(b)
}

func refPrefixCost(g *roadnet.Graph, nodes []roadnet.NodeID, cost CostFunc, t SimTime) float64 {
	var total float64
	for i := 1; i < len(nodes); i++ {
		if eid, ok := g.FindEdge(nodes[i-1], nodes[i]); ok {
			total += cost.Cost(g.Edge(eid), t.Add(total))
		}
	}
	return total
}
