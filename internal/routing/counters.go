package routing

import "sync/atomic"

// Stats is a snapshot of the engine's lifetime counters, surfaced under the
// `routing` section of GET /v1/health (mirroring the route-cache stats).
type Stats struct {
	// Searches counts single-pair searches run, including Yen spur
	// searches; AStarSearches is the goal-directed subset.
	Searches      uint64 `json:"searches"`
	AStarSearches uint64 `json:"astar_searches"`
	// KShortestCalls counts KShortest invocations (each runs many spurs).
	KShortestCalls uint64 `json:"kshortest_calls"`
	// HeapPushes counts priority-queue pushes across all searches — the
	// engine's unit of raw work.
	HeapPushes uint64 `json:"heap_pushes"`
	// PoolHits counts searches served by a recycled, already-sized
	// workspace (the allocation-free steady state); PoolMisses counts
	// fresh or resized workspaces.
	PoolHits   uint64 `json:"pool_hits"`
	PoolMisses uint64 `json:"pool_misses"`
}

var counters struct {
	searches   atomic.Uint64
	astar      atomic.Uint64
	kshortest  atomic.Uint64
	heapPushes atomic.Uint64
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
}

// CounterSnapshot returns the current values of the engine counters. They
// are process-lifetime totals across every graph and caller.
func CounterSnapshot() Stats {
	return Stats{
		Searches:       counters.searches.Load(),
		AStarSearches:  counters.astar.Load(),
		KShortestCalls: counters.kshortest.Load(),
		HeapPushes:     counters.heapPushes.Load(),
		PoolHits:       counters.poolHits.Load(),
		PoolMisses:     counters.poolMisses.Load(),
	}
}
