package routing

import "sync/atomic"

// Stats is a snapshot of the engine's lifetime counters, surfaced under the
// `routing` section of GET /v1/health (mirroring the route-cache stats).
type Stats struct {
	// Searches counts single-pair searches run, including Yen spur
	// searches; AStarSearches is the goal-directed subset.
	Searches      uint64 `json:"searches"`
	AStarSearches uint64 `json:"astar_searches"`
	// KShortestCalls counts KShortest invocations (each runs many spurs).
	KShortestCalls uint64 `json:"kshortest_calls"`
	// HeapPushes counts priority-queue pushes across all searches — the
	// engine's unit of raw work.
	HeapPushes uint64 `json:"heap_pushes"`
	// PoolHits counts searches served by a recycled, already-sized
	// workspace (the allocation-free steady state); PoolMisses counts
	// fresh or resized workspaces.
	PoolHits   uint64 `json:"pool_hits"`
	PoolMisses uint64 `json:"pool_misses"`
	// BatchSearches counts batched one-to-many searches (ShortestPaths /
	// Matrix rows); BatchTargets sums their target-list lengths, so
	// BatchTargets/BatchSearches is the average fan-out a single search
	// absorbed.
	BatchSearches uint64 `json:"batch_searches"`
	BatchTargets  uint64 `json:"batch_targets"`
	// PrepBuilds counts landmark preprocessing runs; PrepLandmarks sums
	// landmarks selected across builds, PrepBuildNs sums build wall-time,
	// and PrepTableBytes sums the distance-table footprints.
	PrepBuilds     uint64 `json:"prep_builds"`
	PrepLandmarks  uint64 `json:"prep_landmarks"`
	PrepBuildNs    uint64 `json:"prep_build_ns"`
	PrepTableBytes uint64 `json:"prep_table_bytes"`
	// ALTSearches counts searches that ran with at least one active
	// landmark; ALTActiveLandmarks sums the active-set sizes (average =
	// sum/searches); ALTTightened counts queries where the landmark bound
	// at the source beat the straight-line bound — the fraction of queries
	// the tables actually helped.
	ALTSearches        uint64 `json:"alt_searches"`
	ALTActiveLandmarks uint64 `json:"alt_active_landmarks"`
	ALTTightened       uint64 `json:"alt_tightened"`
}

var counters struct {
	searches   atomic.Uint64
	astar      atomic.Uint64
	kshortest  atomic.Uint64
	heapPushes atomic.Uint64
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64

	batchSearches atomic.Uint64
	batchTargets  atomic.Uint64

	prepBuilds     atomic.Uint64
	prepLandmarks  atomic.Uint64
	prepBuildNs    atomic.Uint64
	prepTableBytes atomic.Uint64

	altSearches  atomic.Uint64
	altActive    atomic.Uint64
	altTightened atomic.Uint64
}

// CounterSnapshot returns the current values of the engine counters. They
// are process-lifetime totals across every graph and caller.
func CounterSnapshot() Stats {
	return Stats{
		Searches:       counters.searches.Load(),
		AStarSearches:  counters.astar.Load(),
		KShortestCalls: counters.kshortest.Load(),
		HeapPushes:     counters.heapPushes.Load(),
		PoolHits:       counters.poolHits.Load(),
		PoolMisses:     counters.poolMisses.Load(),

		BatchSearches: counters.batchSearches.Load(),
		BatchTargets:  counters.batchTargets.Load(),

		PrepBuilds:     counters.prepBuilds.Load(),
		PrepLandmarks:  counters.prepLandmarks.Load(),
		PrepBuildNs:    counters.prepBuildNs.Load(),
		PrepTableBytes: counters.prepTableBytes.Load(),

		ALTSearches:        counters.altSearches.Load(),
		ALTActiveLandmarks: counters.altActive.Load(),
		ALTTightened:       counters.altTightened.Load(),
	}
}
