package routing

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// The batched one-to-many API must be a pure optimization: route for route,
// ShortestPaths(g, src, dsts) returns exactly what a loop of single-pair
// ShortestPath calls would — the plain variant shares Dijkstra's prefix
// property (identical even under cost ties), the preprocessed variant uses a
// consistent min-over-targets bound (identical absent exact ties, like the
// other heuristic searches).

// randomTargets draws a target set with deliberate degeneracies: duplicates,
// and sometimes the source itself.
func randomTargets(rng *rand.Rand, g *roadnet.Graph, src roadnet.NodeID, n int) []roadnet.NodeID {
	dsts := make([]roadnet.NodeID, 0, n)
	for len(dsts) < n {
		switch rng.Intn(6) {
		case 0:
			dsts = append(dsts, src)
		case 1:
			if len(dsts) > 0 {
				dsts = append(dsts, dsts[rng.Intn(len(dsts))])
				continue
			}
			fallthrough
		default:
			dsts = append(dsts, roadnet.NodeID(rng.Intn(g.NumNodes())))
		}
	}
	return dsts
}

// checkBatchAgainstSingle compares a batch result against a loop of
// single-pair calls. exact demands route-for-route identity (the plain batch
// shares Dijkstra's settle order, so it matches even under exact cost ties);
// otherwise a divergent route is accepted only if it is a genuinely optimal
// tie: same endpoints, an intact edge chain, and the same cost (the
// preprocessed batch's min-over-targets heuristic can reorder settling among
// exactly-tied routes).
func checkBatchAgainstSingle(t *testing.T, name string, g *roadnet.Graph, src roadnet.NodeID, dsts []roadnet.NodeID,
	cost CostFunc, at SimTime, routes []roadnet.Route, costs []float64, exact bool) {
	t.Helper()
	if len(routes) != len(dsts) || len(costs) != len(dsts) {
		t.Fatalf("%s: %d routes / %d costs for %d targets", name, len(routes), len(costs), len(dsts))
	}
	for i, d := range dsts {
		r, c, err := ShortestPath(g, src, d, cost, at)
		if err == ErrNoRoute {
			if len(routes[i].Nodes) != 0 || !math.IsInf(costs[i], 1) {
				t.Fatalf("%s target %d (%d): unreachable but batch returned %v cost %v",
					name, i, d, routes[i], costs[i])
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s target %d (%d): single-pair error %v", name, i, d, err)
		}
		if r.Equal(routes[i]) {
			if c != costs[i] {
				t.Fatalf("%s target %d (%d): cost single=%v batch=%v", name, i, d, c, costs[i])
			}
			continue
		}
		if exact {
			t.Fatalf("%s target %d (%d): route single=%v batch=%v", name, i, d, r, routes[i])
		}
		got := routes[i].Nodes
		if len(got) == 0 || got[0] != src || got[len(got)-1] != d {
			t.Fatalf("%s target %d (%d): batch route %v has wrong endpoints", name, i, d, routes[i])
		}
		walked, broken := rootCosts(g, got, cost, at, nil)
		if broken != len(got)-1 {
			t.Fatalf("%s target %d (%d): batch route %v broken at %d", name, i, d, routes[i], broken)
		}
		tol := 1e-9 * math.Max(1, c)
		if math.Abs(costs[i]-c) > tol || math.Abs(walked[len(walked)-1]-c) > tol {
			t.Fatalf("%s target %d (%d): batch route %v cost %v (walked %v), single %v",
				name, i, d, routes[i], costs[i], walked[len(walked)-1], c)
		}
	}
}

// TestShortestPathsMatchesSinglePair: random graphs, both cost models, peak
// and night departures, target sets with duplicates and src itself.
func TestShortestPathsMatchesSinglePair(t *testing.T) {
	g := equivGraph(12, 12)
	rng := rand.New(rand.NewSource(50))
	for _, tc := range equivCases() {
		p := prepFor(g, tc.cost)
		for round := 0; round < 60; round++ {
			src := roadnet.NodeID(rng.Intn(g.NumNodes()))
			dsts := randomTargets(rng, g, src, 1+rng.Intn(12))
			routes, costs, err := ShortestPaths(g, src, dsts, tc.cost, tc.t)
			if err != nil {
				t.Fatalf("%s: plain batch error %v", tc.name, err)
			}
			checkBatchAgainstSingle(t, tc.name+"/plain", g, src, dsts, tc.cost, tc.t, routes, costs, true)

			routes, costs, err = p.ShortestPaths(src, dsts, tc.t)
			if err != nil {
				t.Fatalf("%s: prep batch error %v", tc.name, err)
			}
			checkBatchAgainstSingle(t, tc.name+"/prep", g, src, dsts, tc.cost, tc.t, routes, costs, false)
		}
	}
}

// TestShortestPathsUnreachable: targets in another component come back as
// empty route + +Inf cost while reachable targets in the same call resolve.
func TestShortestPathsUnreachable(t *testing.T) {
	g := twoIslands()
	routes, costs, err := ShortestPaths(g, 0, []roadnet.NodeID{1, 3, 0}, DistanceCost, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !routes[0].Equal(roadnet.NewRoute(0, 1)) || math.IsInf(costs[0], 1) {
		t.Fatalf("reachable target: %v / %v", routes[0], costs[0])
	}
	if len(routes[1].Nodes) != 0 || !math.IsInf(costs[1], 1) {
		t.Fatalf("unreachable target: %v / %v", routes[1], costs[1])
	}
	if len(routes[2].Nodes) != 1 || costs[2] != 0 {
		t.Fatalf("self target: %v / %v", routes[2], costs[2])
	}
}

// TestShortestPathsValidation: invalid source or target is an error (not a
// per-target +Inf — a bad node ID is a caller bug, not unreachability), and
// an empty target list is a no-op success.
func TestShortestPathsValidation(t *testing.T) {
	g := twoIslands()
	if _, _, err := ShortestPaths(g, 99, []roadnet.NodeID{0}, DistanceCost, 0); err == nil {
		t.Error("bad src: expected error")
	}
	if _, _, err := ShortestPaths(g, 0, []roadnet.NodeID{1, 99}, DistanceCost, 0); err == nil {
		t.Error("bad dst: expected error")
	}
	routes, costs, err := ShortestPaths(g, 0, nil, DistanceCost, 0)
	if err != nil || len(routes) != 0 || len(costs) != 0 {
		t.Errorf("empty dsts: %v / %v / %v", routes, costs, err)
	}
}

// twoIslands is two disconnected 2-node components with symmetric edges.
func twoIslands() *roadnet.Graph {
	g := roadnet.NewGraph(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode(geo.Point{X: float64(i) * 1000})
	}
	g.AddEdge(0, 1, roadnet.Local, 0, 0, 0)
	g.AddEdge(1, 0, roadnet.Local, 0, 0, 0)
	g.AddEdge(2, 3, roadnet.Local, 0, 0, 0)
	g.AddEdge(3, 2, roadnet.Local, 0, 0, 0)
	return g
}

// TestMatrixMatchesPairwise: the many-to-many table equals the pairwise
// single-pair costs, +Inf where unreachable, for plain and preprocessed.
func TestMatrixMatchesPairwise(t *testing.T) {
	g := equivGraph(8, 8)
	rng := rand.New(rand.NewSource(51))
	for _, tc := range equivCases() {
		p := prepFor(g, tc.cost)
		srcs := make([]roadnet.NodeID, 5)
		dsts := make([]roadnet.NodeID, 7)
		for i := range srcs {
			srcs[i] = roadnet.NodeID(rng.Intn(g.NumNodes()))
		}
		for j := range dsts {
			dsts[j] = roadnet.NodeID(rng.Intn(g.NumNodes()))
		}
		plain, err := Matrix(g, srcs, dsts, tc.cost, tc.t)
		if err != nil {
			t.Fatalf("%s: Matrix error %v", tc.name, err)
		}
		prepped, err := p.Matrix(srcs, dsts, tc.t)
		if err != nil {
			t.Fatalf("%s: prep Matrix error %v", tc.name, err)
		}
		for i, src := range srcs {
			for j, dst := range dsts {
				_, c, err := ShortestPath(g, src, dst, tc.cost, tc.t)
				want := c
				if err == ErrNoRoute {
					want = math.Inf(1)
				} else if err != nil {
					t.Fatal(err)
				}
				if plain[i][j] != want && !(math.IsInf(plain[i][j], 1) && math.IsInf(want, 1)) {
					t.Fatalf("%s [%d][%d]: plain matrix %v, want %v", tc.name, i, j, plain[i][j], want)
				}
				// Exactly-tied optimal routes may settle in a different
				// order under the prep heuristic; costs agree to rounding.
				if diff := math.Abs(prepped[i][j] - want); diff > 1e-9*math.Max(1, want) &&
					!(math.IsInf(prepped[i][j], 1) && math.IsInf(want, 1)) {
					t.Fatalf("%s [%d][%d]: prep matrix %v, want %v", tc.name, i, j, prepped[i][j], want)
				}
			}
		}
	}
}

// TestBatchConcurrent is the -race hammer for the batched API: goroutines
// share one Preprocessed and the workspace pool, issuing the same batched
// queries and comparing against serial baselines.
func TestBatchConcurrent(t *testing.T) {
	g := equivGraph(10, 10)
	p := prepFor(g, TravelTimeCost)
	depart := At(0, 8, 0)
	rng := rand.New(rand.NewSource(52))

	type want struct {
		src    roadnet.NodeID
		dsts   []roadnet.NodeID
		routes []roadnet.Route
		costs  []float64
	}
	cases := make([]want, 0, 12)
	for len(cases) < 12 {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		w := want{src: src, dsts: randomTargets(rng, g, src, 8)}
		var err error
		if w.routes, w.costs, err = p.ShortestPaths(src, w.dsts, depart); err != nil {
			t.Fatal(err)
		}
		cases = append(cases, w)
	}

	const goroutines = 12
	const reps = 25
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for rep := 0; rep < reps; rep++ {
				w := cases[(gi+rep)%len(cases)]
				var routes []roadnet.Route
				var costs []float64
				var err error
				if rep%2 == 0 {
					routes, costs, err = p.ShortestPaths(w.src, w.dsts, depart)
				} else {
					routes, costs, err = ShortestPaths(g, w.src, w.dsts, TravelTimeCost, depart)
				}
				if err != nil {
					t.Errorf("src %d: concurrent batch error %v", w.src, err)
					continue
				}
				for i := range w.routes {
					if !routes[i].Equal(w.routes[i]) || costs[i] != w.costs[i] {
						t.Errorf("src %d target %d: concurrent batch diverged", w.src, i)
					}
				}
			}
		}(gi)
	}
	wg.Wait()

	before := CounterSnapshot()
	if _, _, err := p.ShortestPaths(0, []roadnet.NodeID{1, 2, 3}, depart); err != nil {
		t.Fatal(err)
	}
	after := CounterSnapshot()
	if after.BatchSearches != before.BatchSearches+1 {
		t.Errorf("BatchSearches advanced by %d, want 1", after.BatchSearches-before.BatchSearches)
	}
	if after.BatchTargets != before.BatchTargets+3 {
		t.Errorf("BatchTargets advanced by %d, want 3", after.BatchTargets-before.BatchTargets)
	}
}
