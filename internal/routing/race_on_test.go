//go:build race

package routing

// raceEnabled reports whether the race detector is active; its
// instrumentation adds allocations to sync.Pool operations, so allocation
// assertions are skipped under -race (the race job checks safety, the
// regular job checks the allocation contract).
const raceEnabled = true
