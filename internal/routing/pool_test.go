package routing

import (
	"math/rand"
	"sync"
	"testing"

	"crowdplanner/internal/roadnet"
)

// TestConcurrentPoolSharing is the -race hammer for workspace reuse: many
// goroutines run ShortestPath/AStar/KShortest concurrently, all drawing
// workspaces from the shared pool, and every result is cross-checked against
// a fresh-workspace baseline computed serially up front (and, for a sample,
// against the old reference engine, which allocates all of its state per
// call and so cannot be perturbed by pooling bugs). A workspace leaking
// state across epochs or a race on the pool shows up as a diverged route.
func TestConcurrentPoolSharing(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 10, 10
	g := roadnet.Generate(cfg)

	type want struct {
		src, dst roadnet.NodeID
		sp       roadnet.Route
		spCost   float64
		as       roadnet.Route
		ks       []roadnet.Route
		ksCosts  []float64
		err      bool
	}
	rng := rand.New(rand.NewSource(9))
	var cases []want
	for len(cases) < 24 {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
		w := want{src: src, dst: dst}
		var err error
		w.sp, w.spCost, err = ShortestPath(g, src, dst, TravelTimeCost, At(0, 8, 0))
		if err != nil {
			w.err = true
			cases = append(cases, w)
			continue
		}
		if w.as, _, err = AStar(g, src, dst, TravelTimeCost, At(0, 8, 0)); err != nil {
			t.Fatalf("baseline astar %d->%d: %v", src, dst, err)
		}
		if w.ks, w.ksCosts, err = KShortest(g, src, dst, 4, TravelTimeCost, At(0, 8, 0)); err != nil {
			t.Fatalf("baseline kshortest %d->%d: %v", src, dst, err)
		}
		// Cross-check the baseline itself against the fresh-state
		// reference engine: the pooled baseline must not be self-consistent
		// garbage.
		refR, refC, refErr := refShortestPath(g, src, dst, TravelTimeCost, At(0, 8, 0))
		if refErr != nil || !refR.Equal(w.sp) || refC != w.spCost {
			t.Fatalf("baseline %d->%d diverges from reference: %v/%v vs %v/%v (%v)",
				src, dst, w.sp, w.spCost, refR, refC, refErr)
		}
		cases = append(cases, w)
	}

	const goroutines = 16
	const reps = 30
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for rep := 0; rep < reps; rep++ {
				w := cases[(gi+rep)%len(cases)]
				sp, spCost, err := ShortestPath(g, w.src, w.dst, TravelTimeCost, At(0, 8, 0))
				if w.err {
					if err == nil {
						t.Errorf("%d->%d: expected error", w.src, w.dst)
					}
					continue
				}
				if err != nil || !sp.Equal(w.sp) || spCost != w.spCost {
					t.Errorf("%d->%d: concurrent ShortestPath diverged (%v)", w.src, w.dst, err)
					continue
				}
				as, _, err := AStar(g, w.src, w.dst, TravelTimeCost, At(0, 8, 0))
				if err != nil || !as.Equal(w.as) {
					t.Errorf("%d->%d: concurrent AStar diverged (%v)", w.src, w.dst, err)
					continue
				}
				ks, ksCosts, err := KShortest(g, w.src, w.dst, 4, TravelTimeCost, At(0, 8, 0))
				if err != nil || len(ks) != len(w.ks) {
					t.Errorf("%d->%d: concurrent KShortest count diverged (%v)", w.src, w.dst, err)
					continue
				}
				for j := range ks {
					if !ks[j].Equal(w.ks[j]) || ksCosts[j] != w.ksCosts[j] {
						t.Errorf("%d->%d: concurrent KShortest route %d diverged", w.src, w.dst, j)
					}
				}
			}
		}(gi)
	}
	wg.Wait()
}

// TestWarmSearchAllocations pins the allocation contract of the rewrite: a
// warmed-up single-pair search allocates only its result route (the nodes
// slice), nothing for search state — the workspace comes from the pool and
// the heap storage is recycled in place.
func TestWarmSearchAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 10, 10
	g := roadnet.Generate(cfg)
	src, dst := roadnet.NodeID(3), roadnet.NodeID(g.NumNodes()-4)
	if _, _, err := ShortestPath(g, src, dst, DistanceCost, 0); err != nil {
		t.Fatal(err)
	}
	// Warm up the pool (and pin a workspace so GC between testing runs
	// can't empty it mid-measurement).
	ws := acquireSpace(g)
	releaseSpace(ws)
	allocs := testing.AllocsPerRun(50, func() {
		_, _, _ = ShortestPath(g, src, dst, DistanceCost, 0)
	})
	// One allocation for the result nodes slice; everything else reused.
	if allocs > 1 {
		t.Errorf("warm ShortestPath allocs/op = %v, want <= 1", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		_, _, _ = AStar(g, src, dst, DistanceCost, 0)
	})
	if allocs > 1 {
		t.Errorf("warm AStar allocs/op = %v, want <= 1", allocs)
	}
}

// TestKShortestWarmAllocations pins the Yen allocation rework: the old
// engine allocated ~156 times per k=4 call (string route keys for dedup, a
// fresh route slice per spur, container/heap boxing); the pooled slab +
// integer-sequence dedup brings a warm call down to the k result routes plus
// a few fixed slices. The bound 3k+4 leaves room for map/slice growth noise
// while still catching any per-spur allocation regression by an order of
// magnitude.
func TestKShortestWarmAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool")
	}
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 10, 10
	g := roadnet.Generate(cfg)
	src, dst := roadnet.NodeID(3), roadnet.NodeID(g.NumNodes()-4)
	for _, k := range []int{2, 4, 8} {
		if _, _, err := KShortest(g, src, dst, k, DistanceCost, 0); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			_, _, _ = KShortest(g, src, dst, k, DistanceCost, 0)
		})
		if limit := float64(3*k + 4); allocs > limit {
			t.Errorf("warm KShortest k=%d allocs/op = %v, want <= %v", k, allocs, limit)
		}
	}
}

// TestPoolCountersMove sanity-checks the health counters: searches, heap
// pushes and pool hits must all advance across a batch of warm searches.
func TestPoolCountersMove(t *testing.T) {
	g := diamond()
	before := CounterSnapshot()
	for i := 0; i < 10; i++ {
		if _, _, err := ShortestPath(g, 0, 4, DistanceCost, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := KShortest(g, 0, 4, 3, DistanceCost, 0); err != nil {
		t.Fatal(err)
	}
	after := CounterSnapshot()
	if after.Searches <= before.Searches {
		t.Error("Searches did not advance")
	}
	if after.HeapPushes <= before.HeapPushes {
		t.Error("HeapPushes did not advance")
	}
	if after.KShortestCalls != before.KShortestCalls+1 {
		t.Errorf("KShortestCalls advanced by %d, want 1", after.KShortestCalls-before.KShortestCalls)
	}
	if after.PoolHits <= before.PoolHits {
		t.Error("PoolHits did not advance across warm searches")
	}
}
