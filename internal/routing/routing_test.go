package routing

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/roadnet"
)

// diamond builds:
//
//	    1
//	  /   \
//	0       3 --- 4
//	  \   /
//	    2
//
// with 0-1-3 shorter than 0-2-3.
func diamond() *roadnet.Graph {
	g := roadnet.NewGraph(5, 10)
	g.AddNode(geo.Point{X: 0, Y: 0})     // 0
	g.AddNode(geo.Point{X: 100, Y: 50})  // 1
	g.AddNode(geo.Point{X: 100, Y: -80}) // 2
	g.AddNode(geo.Point{X: 200, Y: 0})   // 3
	g.AddNode(geo.Point{X: 300, Y: 0})   // 4
	g.AddRoad(0, 1, roadnet.Local, 0, 0)
	g.AddRoad(1, 3, roadnet.Local, 0, 0)
	g.AddRoad(0, 2, roadnet.Local, 0, 0)
	g.AddRoad(2, 3, roadnet.Local, 0, 0)
	g.AddRoad(3, 4, roadnet.Local, 0, 0)
	return g
}

func TestSimTime(t *testing.T) {
	tm := At(1, 8, 30) // Tuesday 08:30
	if tm.Day() != 1 {
		t.Errorf("Day = %d", tm.Day())
	}
	if h := tm.HourOfDay(); math.Abs(h-8.5) > 1e-9 {
		t.Errorf("HourOfDay = %v", h)
	}
	if s := tm.String(); s != "Tue 08:30" {
		t.Errorf("String = %q", s)
	}
	if got := SimTime(-60).Normalize(); float64(got) != MinutesPerWeek-60 {
		t.Errorf("Normalize(-60) = %v", got)
	}
	if got := SimTime(MinutesPerWeek + 5).Normalize(); float64(got) != 5 {
		t.Errorf("Normalize(week+5) = %v", got)
	}
	if got := At(0, 12, 0).Slot(24); got != 12 {
		t.Errorf("Slot = %d", got)
	}
	if got := At(0, 12, 0).Slot(0); got != 0 {
		t.Errorf("Slot(0) = %d", got)
	}
	if got := At(0, 0, 10).Add(15); float64(got) != 25 {
		t.Errorf("Add = %v", got)
	}
}

func TestCongestionFactor(t *testing.T) {
	night := CongestionFactor(3, false)
	peak := CongestionFactor(8, false)
	if night >= peak {
		t.Errorf("night %v should be below peak %v", night, peak)
	}
	if night < 1 || night > 1.2 {
		t.Errorf("night factor = %v, want ~1", night)
	}
	majorPeak := CongestionFactor(8, true)
	if majorPeak <= peak {
		t.Error("major roads should congest more at peak")
	}
}

func TestShortestPathDistance(t *testing.T) {
	g := diamond()
	r, c, err := ShortestPath(g, 0, 4, DistanceCost, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := roadnet.NewRoute(0, 1, 3, 4)
	if !r.Equal(want) {
		t.Errorf("route = %v, want %v", r, want)
	}
	if math.Abs(c-r.Length(g)) > 1e-9 {
		t.Errorf("cost %v != length %v", c, r.Length(g))
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := diamond()
	r, c, err := ShortestPath(g, 2, 2, DistanceCost, 0)
	if err != nil || c != 0 || len(r.Nodes) != 1 {
		t.Errorf("same-node: %v %v %v", r, c, err)
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	g := roadnet.NewGraph(2, 0)
	g.AddNode(geo.Point{})
	g.AddNode(geo.Point{X: 100})
	_, _, err := ShortestPath(g, 0, 1, DistanceCost, 0)
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
	_, _, err = ShortestPath(g, 0, 5, DistanceCost, 0)
	if err == nil {
		t.Error("out-of-range node should error")
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 12, 12
	g := roadnet.Generate(cfg)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
		r1, c1, err1 := ShortestPath(g, src, dst, DistanceCost, 0)
		r2, c2, err2 := AStar(g, src, dst, DistanceCost, 0)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("err mismatch: %v vs %v", err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(c1-c2) > 1e-6 {
			t.Fatalf("trial %d: dijkstra %v vs astar %v", trial, c1, c2)
		}
		if !r1.Equal(r2) {
			t.Fatalf("trial %d: dijkstra route %v vs astar route %v", trial, r1, r2)
		}
	}
}

func TestAStarFallsBackWithoutHeuristic(t *testing.T) {
	// CostFn carries no lower bound, so AStar degrades to plain Dijkstra.
	g := diamond()
	unbounded := CostFn(func(e *roadnet.Edge, _ SimTime) float64 { return e.Length })
	if b := unbounded.MinCostPerMeter(g); b != 0 {
		t.Fatalf("CostFn bound = %v, want 0", b)
	}
	r, _, err := AStar(g, 0, 4, unbounded, 0)
	if err != nil || !r.Equal(roadnet.NewRoute(0, 1, 3, 4)) {
		t.Errorf("fallback route = %v, err %v", r, err)
	}
}

func TestTravelTimeCostPrefersFastRoads(t *testing.T) {
	fast := &roadnet.Edge{Length: 1000, Class: roadnet.Highway, SpeedKmh: 100}
	slow := &roadnet.Edge{Length: 1000, Class: roadnet.Local, SpeedKmh: 40}
	tNight := At(0, 3, 0)
	if TravelTimeCost.Cost(fast, tNight) >= TravelTimeCost.Cost(slow, tNight) {
		t.Error("highway should be faster than local at night")
	}
	lit := &roadnet.Edge{Length: 1000, Class: roadnet.Local, SpeedKmh: 40, Lights: 2}
	if TravelTimeCost.Cost(lit, tNight) <= TravelTimeCost.Cost(slow, tNight) {
		t.Error("lights should add delay")
	}
}

func TestTravelMinutesPeakSlower(t *testing.T) {
	g := diamond()
	r, _, err := ShortestPath(g, 0, 4, DistanceCost, 0)
	if err != nil {
		t.Fatal(err)
	}
	night := TravelMinutes(g, r, At(0, 3, 0))
	peak := TravelMinutes(g, r, At(0, 8, 0))
	if night >= peak {
		t.Errorf("night %v should be below peak %v", night, peak)
	}
}

func TestKShortest(t *testing.T) {
	g := diamond()
	routes, costs, err := KShortest(g, 0, 4, 3, DistanceCost, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) < 2 {
		t.Fatalf("got %d routes, want >= 2", len(routes))
	}
	if !routes[0].Equal(roadnet.NewRoute(0, 1, 3, 4)) {
		t.Errorf("first route = %v", routes[0])
	}
	if !routes[1].Equal(roadnet.NewRoute(0, 2, 3, 4)) {
		t.Errorf("second route = %v", routes[1])
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] < costs[i-1]-1e-9 {
			t.Errorf("costs not non-decreasing: %v", costs)
		}
	}
	// All routes distinct and valid.
	seen := map[string]bool{}
	for _, r := range routes {
		if !r.Valid(g) {
			t.Errorf("invalid route %v", r)
		}
		k := r.String()
		if seen[k] {
			t.Errorf("duplicate route %v", r)
		}
		seen[k] = true
	}
}

func TestKShortestLoopless(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 8, 8
	g := roadnet.Generate(cfg)
	routes, _, err := KShortest(g, 0, roadnet.NodeID(g.NumNodes()-1), 5, DistanceCost, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range routes {
		visited := map[roadnet.NodeID]bool{}
		for _, n := range r.Nodes {
			if visited[n] {
				t.Fatalf("route %v revisits node %d", r, n)
			}
			visited[n] = true
		}
	}
}

func TestKShortestEdgeCases(t *testing.T) {
	g := diamond()
	routes, costs, err := KShortest(g, 0, 4, 0, DistanceCost, 0)
	if routes != nil || costs != nil || err != nil {
		t.Error("k=0 should be empty, no error")
	}
	// Unreachable.
	iso := roadnet.NewGraph(2, 0)
	iso.AddNode(geo.Point{})
	iso.AddNode(geo.Point{X: 1})
	if _, _, err := KShortest(iso, 0, 1, 3, DistanceCost, 0); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v", err)
	}
	// Asking for more routes than exist terminates.
	routes, _, err = KShortest(g, 0, 4, 100, DistanceCost, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) > 20 {
		t.Errorf("suspiciously many routes: %d", len(routes))
	}
}

func TestShortestPathDeterministic(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 10, 10
	g := roadnet.Generate(cfg)
	r1, _, err := ShortestPath(g, 3, 97, TravelTimeCost, At(0, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r2, _, err := ShortestPath(g, 3, 97, TravelTimeCost, At(0, 8, 0))
		if err != nil || !r1.Equal(r2) {
			t.Fatalf("non-deterministic result: %v vs %v (%v)", r1, r2, err)
		}
	}
}

func TestFastestDiffersFromShortestSomewhere(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	g := roadnet.Generate(cfg)
	rng := rand.New(rand.NewSource(11))
	diff := 0
	for trial := 0; trial < 40; trial++ {
		src := roadnet.NodeID(rng.Intn(g.NumNodes()))
		dst := roadnet.NodeID(rng.Intn(g.NumNodes()))
		rs, _, err1 := ShortestPath(g, src, dst, DistanceCost, At(0, 8, 0))
		rf, _, err2 := ShortestPath(g, src, dst, TravelTimeCost, At(0, 8, 0))
		if err1 != nil || err2 != nil {
			continue
		}
		if !rs.Equal(rf) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("expected fastest and shortest to differ for some OD pairs")
	}
}

// TestConcurrentSearchesAreIndependent is the regression test for the
// parallel candidate fan-out in core: ShortestPath and KShortest run
// concurrently over one shared graph (they keep all search state on the
// stack/heap of the call), so simultaneous searches must neither race nor
// perturb each other's results.
func TestConcurrentSearchesAreIndependent(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 10, 10
	g := roadnet.Generate(cfg)
	type result struct {
		sp roadnet.Route
		ks []roadnet.Route
	}
	serial := func(src, dst roadnet.NodeID) result {
		// Unreachable pairs yield a zero result; determinism still makes
		// the concurrent run match the serial baseline exactly.
		sp, _, err := ShortestPath(g, src, dst, TravelTimeCost, At(0, 8, 0))
		if err != nil {
			return result{}
		}
		ks, _, err := KShortest(g, src, dst, 3, TravelTimeCost, At(0, 8, 0))
		if err != nil {
			return result{sp: sp}
		}
		return result{sp, ks}
	}
	type od struct{ src, dst roadnet.NodeID }
	ods := []od{{0, 99}, {9, 90}, {5, 77}, {33, 66}, {12, 88}, {40, 59}, {7, 93}, {21, 84}}
	want := make([]result, len(ods))
	for i, o := range ods {
		want[i] = serial(o.src, o.dst)
	}

	var wg sync.WaitGroup
	for rep := 0; rep < 8; rep++ {
		for i, o := range ods {
			wg.Add(1)
			go func(i int, o od) {
				defer wg.Done()
				got := serial(o.src, o.dst)
				if !got.sp.Equal(want[i].sp) {
					t.Errorf("OD %v: concurrent ShortestPath diverged", o)
				}
				if len(got.ks) != len(want[i].ks) {
					t.Errorf("OD %v: concurrent KShortest count diverged", o)
					return
				}
				for k := range got.ks {
					if !got.ks[k].Equal(want[i].ks[k]) {
						t.Errorf("OD %v: concurrent KShortest route %d diverged", o, k)
					}
				}
			}(i, o)
		}
	}
	wg.Wait()
}
