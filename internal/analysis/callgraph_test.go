package analysis_test

import (
	"go/types"
	"sort"
	"strings"
	"testing"

	"crowdplanner/internal/analysis"
)

// loadChainFixture loads the three-package lockappend_chain testdata module
// through one Loader, the identity-sharing setup BuildCallGraph requires.
func loadChainFixture(t *testing.T) []*analysis.Package {
	t.Helper()
	loader := analysis.NewLoader("")
	dirs := map[string]string{
		"crowdplanner/internal/core/chaincore":   "testdata/mod/lockappend_chain/chaincore",
		"crowdplanner/internal/traj/chainingest": "testdata/mod/lockappend_chain/chainingest",
		"crowdplanner/internal/store/chainwal":   "testdata/mod/lockappend_chain/chainwal",
	}
	var paths []string
	for path, dir := range dirs {
		loader.RegisterFixture(path, dir)
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.LoadDir(dirs[path], path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// findFunc locates a declared function node by its display name.
func findFunc(t *testing.T, g *analysis.CallGraph, display string) *analysis.CallNode {
	t.Helper()
	for _, n := range g.Nodes() {
		if analysis.FuncDisplay(n.Func) == display {
			return n
		}
	}
	t.Fatalf("function %s not in call graph", display)
	return nil
}

// TestCallGraphCrossPackageEdges checks that static calls resolve across
// package boundaries: chaincore.System.FlushLocked → chainingest.Ingest →
// chainwal.Log.Append all share one graph.
func TestCallGraphCrossPackageEdges(t *testing.T) {
	pkgs := loadChainFixture(t)
	g := analysis.BuildCallGraph(pkgs)

	flush := findFunc(t, g, "chaincore.System.FlushLocked")
	var callees []string
	for _, site := range flush.Out {
		if site.Callee != nil && !site.Dynamic {
			callees = append(callees, analysis.FuncDisplay(site.Callee))
		}
	}
	joined := strings.Join(callees, ", ")
	if !strings.Contains(joined, "chainingest.Ingest") {
		t.Errorf("FlushLocked callees = %s, want chainingest.Ingest among them", joined)
	}

	ingest := findFunc(t, g, "chainingest.Ingest")
	found := false
	for _, site := range ingest.Out {
		if site.Callee != nil && analysis.FuncDisplay(site.Callee) == "chainwal.Log.Append" {
			found = true
			if site.Dynamic {
				t.Error("concrete-receiver method call marked Dynamic")
			}
		}
	}
	if !found {
		t.Error("Ingest does not call chainwal.Log.Append in the graph")
	}
}

// TestReachRendersShortestChain checks BFS reachability and chain rendering
// from a direct-hit classifier.
func TestReachRendersShortestChain(t *testing.T) {
	pkgs := loadChainFixture(t)
	g := analysis.BuildCallGraph(pkgs)

	reach := g.Reach(func(site analysis.CallSite) string {
		if site.Callee != nil && site.Callee.Name() == "Append" {
			return "append hit"
		}
		return ""
	}, nil)

	ingest := findFunc(t, g, "chainingest.Ingest")
	if _, ok := reach.Reaches(ingest.Func); !ok {
		t.Fatal("Ingest contains the hit but does not reach it")
	}
	if got := reach.Chain(ingest.Func); got != "chainingest.Ingest → append hit" {
		t.Errorf("Chain(Ingest) = %q", got)
	}

	flush := findFunc(t, g, "chaincore.System.FlushLocked")
	if got := reach.Chain(flush.Func); got != "chaincore.System.FlushLocked → chainingest.Ingest → append hit" {
		t.Errorf("Chain(FlushLocked) = %q", got)
	}

	// Transform performs no I/O and calls nothing that does.
	transform := findFunc(t, g, "chainingest.Transform")
	if desc, ok := reach.Reaches(transform.Func); ok {
		t.Errorf("Transform unexpectedly reaches %q", desc)
	}
}

// TestReachThroughFilter checks that functions rejected by the through
// filter are not expanded: blocking traversal at chainingest makes the hit
// invisible from chaincore.
func TestReachThroughFilter(t *testing.T) {
	pkgs := loadChainFixture(t)
	g := analysis.BuildCallGraph(pkgs)

	reach := g.Reach(func(site analysis.CallSite) string {
		if site.Callee != nil && site.Callee.Name() == "Append" {
			return "append hit"
		}
		return ""
	}, func(f *types.Func) bool {
		return f.Pkg() == nil || f.Pkg().Name() != "chainingest"
	})

	flush := findFunc(t, g, "chaincore.System.FlushLocked")
	if desc, ok := reach.Reaches(flush.Func); ok {
		t.Errorf("FlushLocked reaches %q through an opaque package", desc)
	}
}
