package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Loader discovers, parses, and type-checks packages of the surrounding
// module. It shells out to `go list -json` for package discovery (the one
// piece of toolchain knowledge — build tags, module resolution — not worth
// reimplementing), parses with go/parser, and type-checks module packages
// itself in dependency order so intra-module imports resolve to already
// checked packages; only standard-library imports fall through to the
// go/importer source importer. Everything is stdlib: the module stays free
// of external dependencies, x/tools included.
//
// Checking is parallel across the topological levels of the package DAG:
// packages with no unchecked intra-module dependencies check concurrently
// (shared FileSet — internally locked — and a serialized stdlib importer),
// then the next level, and so on. A package that fails to parse or
// type-check no longer aborts the load: it is reported as a LoadError, its
// dependents fail with their own import errors, and everything else is
// analyzed normally — one syntax error must not hide every real finding in
// the rest of the tree.
//
// Test files (*_test.go) are not analyzed: the invariants guard production
// determinism and lock discipline, and tests legitimately use wall clocks,
// throwaway goroutines, and unsorted iteration.
type Loader struct {
	// Dir is the working directory for `go list`; empty means the process
	// working directory. It must sit inside the module under analysis.
	Dir string

	fset *token.FileSet
	std  types.ImporterFrom

	mu       sync.Mutex                // guards checked, failed, pkgs, timings, inflight
	checked  map[string]*types.Package // import path -> checked module package
	failed   map[string]error          // import path -> why it could not load
	pkgs     map[string]*Package       // import path -> full analysis package
	timings  []Timing                  // per-package check wall time
	fixtures map[string]string         // import path -> fixture directory
	inflight map[string]chan struct{}  // paths being loaded on demand

	stdMu  sync.Mutex // serializes the (not thread-safe) source importer
	modMu  sync.Mutex // guards module
	module string     // module path, e.g. "crowdplanner"
}

// LoadError is one package that could not be loaded: a parse failure, a type
// error, or a dependency that failed before it.
type LoadError struct {
	Path string // import path of the broken package
	Pos  token.Position
	Err  error
}

func (e LoadError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s: %v", e.Path, e.Pos, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Path, e.Err)
}

// NewLoader returns a loader rooted at dir ("" = current directory).
func NewLoader(dir string) *Loader {
	// The source importer reads stdlib from $GOROOT/src through go/build;
	// with cgo disabled go/build selects the pure-Go file sets (netgo &c.),
	// which always type-check. Analyzed module code is cgo-free either way.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Dir:      dir,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		checked:  make(map[string]*types.Package),
		failed:   make(map[string]error),
		pkgs:     make(map[string]*Package),
		fixtures: make(map[string]string),
		inflight: make(map[string]chan struct{}),
	}
}

// RegisterFixture maps an import path to a source directory, letting
// testdata fixture packages import each other under scoping paths that are
// invisible to `go list` (the analysistest module harness uses this to build
// multi-package fixture modules).
func (l *Loader) RegisterFixture(asPath, dir string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fixtures[asPath] = dir
}

// Timings returns the per-package check durations recorded by the last Load,
// sorted by decreasing duration.
func (l *Loader) Timings() []Timing {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]Timing(nil), l.timings...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// goList runs `go list -json` over the patterns and decodes the stream.
func (l *Loader) goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// modulePath resolves (and caches) the path of the module rooted at l.Dir.
func (l *Loader) modulePath() (string, error) {
	l.modMu.Lock()
	defer l.modMu.Unlock()
	if l.module != "" {
		return l.module, nil
	}
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = l.Dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	l.module = strings.TrimSpace(string(out))
	return l.module, nil
}

// Load discovers the packages matching the patterns, type-checks them (and
// any module-internal dependencies) level-parallel in dependency order, and
// returns the loadable ones in deterministic import-path order plus a
// LoadError per package that failed. The returned error is non-nil only when
// discovery itself failed and nothing could be attempted.
func (l *Loader) Load(patterns ...string) ([]*Package, []LoadError, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, nil, err
	}
	byPath := make(map[string]*listPkg, len(listed))
	for _, p := range listed {
		if len(p.GoFiles) > 0 { // test-only or empty packages: nothing to analyze
			byPath[p.ImportPath] = p
		}
	}

	// Topological levels over the intra-listing import edges: level 0 has no
	// unchecked listed dependencies, level n+1 depends only on levels ≤ n.
	// `go list` output is acyclic, so the peeling terminates.
	depth := make(map[string]int, len(byPath))
	var level func(p *listPkg) int
	level = func(p *listPkg) int {
		if d, ok := depth[p.ImportPath]; ok {
			return d
		}
		depth[p.ImportPath] = 0 // breaks would-be cycles defensively
		d := 0
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				if ld := level(dep) + 1; ld > d {
					d = ld
				}
			}
		}
		depth[p.ImportPath] = d
		return d
	}
	maxDepth := 0
	for _, p := range byPath {
		if d := level(p); d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]*listPkg, maxDepth+1)
	for _, p := range byPath {
		d := depth[p.ImportPath]
		levels[d] = append(levels[d], p)
	}

	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, lvl := range levels {
		var wg sync.WaitGroup
		for _, p := range lvl {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				l.checkRecorded(p.ImportPath, p.Dir, p.GoFiles)
			}()
		}
		wg.Wait()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Package
	var errs []LoadError
	for path := range byPath {
		if pkg, ok := l.pkgs[path]; ok {
			out = append(out, pkg)
		} else if err := l.failed[path]; err != nil {
			errs = append(errs, loadError(path, err))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	sort.Slice(errs, func(i, j int) bool { return errs[i].Path < errs[j].Path })
	return out, errs, nil
}

// loadError shapes a raw check error into a positioned LoadError.
func loadError(path string, err error) LoadError {
	le := LoadError{Path: path, Err: err}
	var sl scanner.ErrorList
	var te types.Error
	switch {
	case asErrorList(err, &sl) && len(sl) > 0:
		le.Pos = sl[0].Pos
		le.Err = fmt.Errorf("%s", sl[0].Msg)
	case asTypesError(err, &te):
		le.Pos = te.Fset.Position(te.Pos)
		le.Err = fmt.Errorf("%s", te.Msg)
	}
	return le
}

func asErrorList(err error, out *scanner.ErrorList) bool {
	for err != nil {
		if sl, ok := err.(scanner.ErrorList); ok {
			*out = sl
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func asTypesError(err error, out *types.Error) bool {
	for err != nil {
		if te, ok := err.(types.Error); ok {
			*out = te
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// checkRecorded runs check and records the outcome (package, failure, and
// timing) under the loader lock. It is the concurrency-safe entry used by
// the level-parallel loop; repeated calls for one path are cheap no-ops.
func (l *Loader) checkRecorded(path, dir string, goFiles []string) {
	l.mu.Lock()
	_, done := l.pkgs[path]
	_, bad := l.failed[path]
	l.mu.Unlock()
	if done || bad {
		return
	}
	start := time.Now()
	_, err := l.check(path, dir, goFiles)
	elapsed := time.Since(start)
	l.mu.Lock()
	l.timings = append(l.timings, Timing{Name: path, Duration: elapsed})
	if err != nil {
		l.failed[path] = err
	}
	l.mu.Unlock()
}

// LoadDir parses and type-checks the .go files of a single directory under
// the given import path, resolving intra-module and registered-fixture
// imports by loading them on demand. The analysistest harness uses it to
// check testdata fixture packages under scoping paths the analyzers react to
// (fixture directories are invisible to `go list ./...`).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.pkgs[asPath]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	l.mu.Unlock()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !e.IsDir() {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(asPath, dir, files)
}

// check parses and type-checks one package and caches the result. Callers at
// the same topological level never check each other's packages, so the only
// shared state is the file set (internally locked), the caches (l.mu), and
// the stdlib importer (stdMu).
func (l *Loader) check(path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, f := range goFiles {
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, f), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.mu.Lock()
	l.checked[path] = tpkg
	l.pkgs[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// loaderImporter resolves imports during type-checking: registered fixture
// and module-internal paths come from the loader's already-checked set
// (loading on demand under odMu), everything else from the stdlib source
// importer (serialized — the source importer is not safe for concurrent
// use).
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	l.mu.Lock()
	p, ok := l.checked[path]
	ferr := l.failed[path]
	fixDir, isFixture := l.fixtures[path]
	l.mu.Unlock()
	if ok {
		return p, nil
	}
	if ferr != nil {
		return nil, fmt.Errorf("import %q: package failed to load", path)
	}
	if isFixture {
		pkg, err := l.loadOnDemand(path, func() (*Package, error) { return l.LoadDir(fixDir, path) })
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if mod, err := l.modulePath(); err == nil && mod != "" &&
		(path == mod || strings.HasPrefix(path, mod+"/")) {
		pkg, err := l.loadOnDemand(path, func() (*Package, error) {
			listed, err := l.goList([]string{path})
			if err != nil {
				return nil, err
			}
			if len(listed) != 1 {
				return nil, fmt.Errorf("import %q: expected one package, got %d", path, len(listed))
			}
			return l.check(listed[0].ImportPath, listed[0].Dir, listed[0].GoFiles)
		})
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.ImportFrom(path, dir, mode)
}

// loadOnDemand gates module/fixture loads triggered from inside a type-check
// (rare: topological scheduling pre-checks listed dependencies, so this fires
// mostly for fixtures and patterns that exclude a dependency). The per-path
// inflight channel keeps two goroutines from checking the same package into
// two distinct *types.Package objects — object identity across importers is
// what the call graph keys on — while letting one goroutine recurse through
// a chain of fixture imports without self-deadlock.
func (l *Loader) loadOnDemand(path string, load func() (*Package, error)) (*Package, error) {
	for {
		l.mu.Lock()
		if pkg, ok := l.pkgs[path]; ok {
			l.mu.Unlock()
			return pkg, nil
		}
		if err := l.failed[path]; err != nil {
			l.mu.Unlock()
			return nil, err
		}
		if ch, ok := l.inflight[path]; ok {
			l.mu.Unlock()
			<-ch // another goroutine is loading it; wait and re-read
			continue
		}
		ch := make(chan struct{})
		l.inflight[path] = ch
		l.mu.Unlock()

		pkg, err := load()
		l.mu.Lock()
		delete(l.inflight, path)
		if err != nil && l.failed[path] == nil {
			l.failed[path] = err
		}
		l.mu.Unlock()
		close(ch)
		return pkg, err
	}
}
