package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Loader discovers, parses, and type-checks packages of the surrounding
// module. It shells out to `go list -json` for package discovery (the one
// piece of toolchain knowledge — build tags, module resolution — not worth
// reimplementing), parses with go/parser, and type-checks module packages
// itself in dependency order so intra-module imports resolve to already
// checked packages; only standard-library imports fall through to the
// go/importer source importer. Everything is stdlib: the module stays free
// of external dependencies, x/tools included.
//
// Test files (*_test.go) are not analyzed: the invariants guard production
// determinism and lock discipline, and tests legitimately use wall clocks,
// throwaway goroutines, and unsorted iteration.
type Loader struct {
	// Dir is the working directory for `go list`; empty means the process
	// working directory. It must sit inside the module under analysis.
	Dir string

	fset    *token.FileSet
	std     types.ImporterFrom
	checked map[string]*types.Package // import path -> checked module package
	module  string                    // module path, e.g. "crowdplanner"
}

// NewLoader returns a loader rooted at dir ("" = current directory).
func NewLoader(dir string) *Loader {
	// The source importer reads stdlib from $GOROOT/src through go/build;
	// with cgo disabled go/build selects the pure-Go file sets (netgo &c.),
	// which always type-check. Analyzed module code is cgo-free either way.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Dir:     dir,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		checked: make(map[string]*types.Package),
	}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// goList runs `go list -json` over the patterns and decodes the stream.
func (l *Loader) goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// modulePath resolves (and caches) the path of the module rooted at l.Dir.
func (l *Loader) modulePath() (string, error) {
	if l.module != "" {
		return l.module, nil
	}
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = l.Dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	l.module = strings.TrimSpace(string(out))
	return l.module, nil
}

// Load discovers the packages matching the patterns, type-checks them (and
// any module-internal dependencies) in dependency order, and returns them in
// deterministic import-path order. Any parse or type error aborts the load:
// cplint refuses to lint code that does not compile.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listPkg, len(listed))
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}
	// Dependency-first order. `go list` output is acyclic, so a plain DFS
	// suffices; only intra-module edges matter (stdlib goes via l.std).
	var order []*listPkg
	state := make(map[string]int)
	var visit func(p *listPkg)
	visit = func(p *listPkg) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		order = append(order, p)
	}
	for _, p := range listed {
		visit(p)
	}

	var out []*Package
	for _, p := range order {
		if len(p.GoFiles) == 0 {
			continue // test-only or empty package: nothing to analyze
		}
		pkg, err := l.check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks the .go files of a single directory under
// the given import path, resolving intra-module imports by loading them on
// demand. The analysistest harness uses it to check testdata fixture
// packages under scoping paths the analyzers react to (fixture directories
// are invisible to `go list ./...`).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !e.IsDir() {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(asPath, dir, files)
}

// check parses and type-checks one package.
func (l *Loader) check(path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, f := range goFiles {
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, f), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	l.checked[path] = tpkg
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter resolves imports during type-checking: module-internal
// paths come from the loader's already-checked set (loading on demand for
// LoadDir fixtures), everything else from the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	if mod, err := l.modulePath(); err == nil && mod != "" &&
		(path == mod || strings.HasPrefix(path, mod+"/")) {
		listed, err := l.goList([]string{path})
		if err != nil {
			return nil, err
		}
		if len(listed) != 1 {
			return nil, fmt.Errorf("import %q: expected one package, got %d", path, len(listed))
		}
		pkg, err := l.check(listed[0].ImportPath, listed[0].Dir, listed[0].GoFiles)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
