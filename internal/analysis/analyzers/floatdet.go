package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdplanner/internal/analysis"
)

// Floatdet flags floating-point reductions whose result depends on an
// iteration or scheduling order the language randomizes — the numeric cousin
// of detorder. Float addition is not associative: summing the same multiset
// of values in two different orders can round differently, so a fold that is
// provably "commutative" for integers still breaks bit-identical replay for
// floats. In deterministic packages (the replay set detorder scopes), two
// shapes are findings:
//
//   - a float `+=`/`-=`/`*=` or min/max fold whose right-hand side is
//     data-flow tainted by a range-over-map definition (directly inside the
//     range, or through locals collected from one) with no visible sort
//     before the fold — map iteration order is randomized per run, so the
//     rounded total varies. The same applies to folds fed by channel
//     receives, whose order follows goroutine scheduling.
//   - a float accumulator captured by a `go` literal and updated inside it —
//     even under a mutex the additions interleave in scheduler order, so the
//     merged sum differs run to run. Indexed partials (each goroutine owns
//     partial[i], merged sequentially afterwards) are the sanctioned shape
//     and are not flagged.
//
// Taint tracking uses the CFG-based def-use chains (dataflow.go) through the
// shared ModulePass CFG cache, so collect-then-fold across locals is caught,
// and the collect-SORT-fold idiom is exempt exactly like detorder: any call
// into package sort (or slices.Sort*) positioned before the fold makes the
// iteration order visible and pinned.
var Floatdet = &analysis.Analyzer{
	Name:      "floatdet",
	Doc:       "float folds in deterministic packages must not be fed by randomized map/channel order or merged across goroutines",
	RunModule: runFloatdet,
}

func runFloatdet(pass *analysis.ModulePass) {
	for _, n := range pass.Graph.Nodes() {
		if !isDeterministic(n.Pkg.Path) {
			continue
		}
		checkFloatFolds(pass, n)
	}
}

// isFloat reports whether t's core type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// floatFold is one order-sensitive accumulation site: the accumulator
// expression, the value expression feeding it, and how ("+=", "min/max").
type floatFold struct {
	assign *ast.AssignStmt
	acc    ast.Expr
	value  ast.Expr
	kind   string
}

// foldAt classifies stmt as a float fold: a compound assignment with a float
// accumulator, or `acc = min(acc, v)` / `acc = math.Min(acc, v)` style
// re-assignment through a min/max call.
func foldAt(info *types.Info, stmt *ast.AssignStmt) (floatFold, bool) {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return floatFold{}, false
	}
	acc, value := stmt.Lhs[0], stmt.Rhs[0]
	if !isFloat(info.TypeOf(acc)) {
		return floatFold{}, false
	}
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		return floatFold{assign: stmt, acc: acc, value: value, kind: stmt.Tok.String()}, true
	case token.ASSIGN:
		call, ok := ast.Unparen(value).(*ast.CallExpr)
		if !ok || !isMinMaxCall(info, call) {
			return floatFold{}, false
		}
		// One argument must be the accumulator itself — that is what makes
		// it a fold rather than a fresh computation.
		accStr := exprString(acc)
		for _, arg := range call.Args {
			if exprString(arg) == accStr {
				return floatFold{assign: stmt, acc: acc, value: value, kind: "min/max"}, true
			}
		}
	}
	return floatFold{}, false
}

// isMinMaxCall recognizes the builtin min/max and math.Min/math.Max.
func isMinMaxCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return b.Name() == "min" || b.Name() == "max"
		}
	}
	f := calleeFunc(info, call)
	return f != nil && isPkgFunc(f, "math", "Min", "Max")
}

func checkFloatFolds(pass *analysis.ModulePass, n *analysis.CallNode) {
	info := n.Pkg.Info
	body := n.Decl.Body
	cfg := pass.CFG(n.Pkg, body)
	du := cfg.DefUse(info)

	// Sort calls, for the collect-sort-fold exemption.
	var sortCalls []ast.Node
	ast.Inspect(body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			if f := calleeFunc(info, call); f != nil && isSortCall(f) {
				sortCalls = append(sortCalls, call)
			}
		}
		return true
	})
	sortedBefore := func(pos token.Pos) bool {
		for _, s := range sortCalls {
			if s.End() <= pos {
				return true
			}
		}
		return false
	}

	rangeOver := func(d *analysis.Def, want func(types.Type) bool) bool {
		rs, ok := d.Node.(*ast.RangeStmt)
		if !ok {
			return false
		}
		t := info.TypeOf(rs.X)
		return t != nil && want(t.Underlying())
	}
	isMapDef := func(d *analysis.Def) bool {
		return rangeOver(d, func(t types.Type) bool { _, ok := t.(*types.Map); return ok })
	}
	isChanDef := func(d *analysis.Def) bool {
		return rangeOver(d, func(t types.Type) bool { _, ok := t.(*types.Chan); return ok })
	}

	// Shape 1: folds fed by randomized iteration order. Function-literal
	// interiors are skipped — the go-literal shape below covers the one that
	// matters, and the top-level CFG does not model literal control flow.
	ast.Inspect(body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		stmt, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		fold, ok := foldAt(info, stmt)
		if !ok || sortedBefore(stmt.Pos()) {
			return true
		}
		switch {
		case du.Tainted(fold.value, nil, isMapDef):
			pass.Reportf(stmt.Pos(),
				"float %s fold into %s is fed by range-over-map values in deterministic package %q: float addition is not associative, so the randomized iteration order changes the rounded result — fold over sorted keys, or accumulate in integers",
				fold.kind, exprString(fold.acc), internalSegment(n.Pkg.Path))
		case du.Tainted(fold.value, nil, isChanDef):
			pass.Reportf(stmt.Pos(),
				"float %s fold into %s is fed by channel receives in deterministic package %q: receive order follows goroutine scheduling — collect per-sender partials into indexed slots and fold them sequentially",
				fold.kind, exprString(fold.acc), internalSegment(n.Pkg.Path))
		}
		return true
	})

	// Shape 2: a captured float accumulator updated from a go literal.
	ast.Inspect(body, func(node ast.Node) bool {
		gs, ok := node.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			stmt, ok := inner.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fold, ok := foldAt(info, stmt)
			if !ok {
				return true
			}
			if _, indexed := ast.Unparen(fold.acc).(*ast.IndexExpr); indexed {
				return true // partial[i] is the sanctioned per-goroutine slot
			}
			if !capturedFromOutside(info, fold.acc, lit) {
				return true
			}
			pass.Reportf(stmt.Pos(),
				"float accumulator %s is merged from a go statement in deterministic package %q: goroutine interleaving orders the additions, so the sum rounds differently run to run — give each goroutine its own indexed partial and fold them deterministically",
				exprString(fold.acc), internalSegment(n.Pkg.Path))
			return true
		})
		return true
	})
}

// capturedFromOutside reports whether e's base variable is declared outside
// the literal — a captured accumulator shared with the spawning function.
func capturedFromOutside(info *types.Info, e ast.Expr, lit *ast.FuncLit) bool {
	id := analysis.BaseIdent(e)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}
