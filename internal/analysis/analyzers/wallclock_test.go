package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analyzers.Wallclock,
		"../testdata/src/wallclock", "crowdplanner/internal/routing/wallclockfixture")
}

// TestWallclockAllowlist checks wall-clock reads stay legal in the
// measurement-oriented package families (experiments, server, calibrate).
func TestWallclockAllowlist(t *testing.T) {
	analysistest.Run(t, analyzers.Wallclock,
		"../testdata/src/wallclock_allow", "crowdplanner/internal/experiments/allowfixture")
}
