package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdplanner/internal/analysis"
)

// Poolescape enforces the pooled-workspace ownership discipline the PR 5/8
// routing engine depends on: a value acquired from a sync.Pool — directly via
// Get or through an acquire-wrapper like routing.acquireSpace — is recycled
// by the corresponding Put, so nothing aliasing it (the object, a field
// slice, a re-slice of one) may outlive that Put. Concretely, on any path
// that also reaches the Put (before or after it — both orders mean the alias
// outlives the recycle), an alias must not be:
//
//   - returned to the caller (result routes must be fresh copies — the
//     make+copy in routing.search is the sanctioned shape)
//   - stored to caller-visible or package-level memory
//   - sent on a channel
//   - captured by a go statement or a stored closure
//
// The analysis composes the dataflow tier with call-graph summaries, so the
// real tree's wrappers resolve without annotations: acquireSpace/acquireYen
// are recognized as pool sources (they return a Get-rooted alias),
// releaseSpace/releaseYen as Puts (they pass a parameter to Pool.Put), and
// searchShared/rootCosts as alias-returning helpers (their result aliases a
// parameter), all by fixpoint over the call graph, nested wrappers included.
// Element-copying appends (append(dst, pooled...) with value elements) and
// stores into the pooled object itself (ws.path = ...) do not alias out.
//
// Functions with pool roots but no Put transfer ownership to their caller
// (the acquire-wrapper shape) and are checked at the caller's Put instead.
// Closures passed directly as call arguments are assumed synchronous and not
// flagged — a documented gap, matching hotalloc's treatment of dynamic sites.
var Poolescape = &analysis.Analyzer{
	Name:      "poolescape",
	Doc:       "values aliasing a sync.Pool object must not escape (return/heap store/channel send/go or stored closure) on any path reaching the Put",
	RunModule: runPoolescape,
}

// poolSummary is the per-function interprocedural summary the fixpoint
// computes: how the function participates in pool ownership when viewed from
// a call site.
type poolSummary struct {
	// returnsPooled: some result aliases a pool object acquired inside the
	// function (the acquire-wrapper shape) — callers treat the call as a root.
	returnsPooled bool
	// putsParams: parameter indices the function hands to sync.Pool.Put
	// (directly or through another put-wrapper) — callers treat the call as
	// the Put of the corresponding argument.
	putsParams map[int]bool
	// returnsParamAlias: parameter indices some result aliases — callers
	// propagate aliasing through the call (searchShared returning ws.path).
	returnsParamAlias map[int]bool
	// escapesParams: parameter indices the function itself escapes (heap
	// store, channel send, go/stored closure) — passing an alias there is an
	// escape at the call site.
	escapesParams map[int]bool
}

func (s *poolSummary) equal(o *poolSummary) bool {
	if o == nil {
		return false
	}
	return s.returnsPooled == o.returnsPooled &&
		sameIntSet(s.putsParams, o.putsParams) &&
		sameIntSet(s.returnsParamAlias, o.returnsParamAlias) &&
		sameIntSet(s.escapesParams, o.escapesParams)
}

func sameIntSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func runPoolescape(pass *analysis.ModulePass) {
	g := pass.Graph
	summaries := make(map[*types.Func]*poolSummary)

	// Summary fixpoint: wrappers can nest (a helper calling releaseSpace is
	// itself a put-wrapper), so iterate until no summary changes.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			s := computePoolSummary(n, summaries)
			if !s.equal(summaries[n.Func]) {
				summaries[n.Func] = s
				changed = true
			}
		}
	}

	// Finding pass: for every function that acquires a pool object and also
	// releases it, check every escape of every alias against Put
	// reachability on the CFG.
	for _, n := range g.Nodes() {
		checkPoolOwner(pass, n, summaries)
	}
}

// poolRoots returns the top-level call expressions in n that acquire a pool
// object: sync.Pool.Get sites and calls to returnsPooled wrappers. Calls
// inside nested literals are excluded — they run on another activation.
func poolRoots(n *analysis.CallNode, summaries map[*types.Func]*poolSummary) []*ast.CallExpr {
	var roots []*ast.CallExpr
	for _, site := range n.Out {
		if site.InLiteral || site.Callee == nil || site.Dynamic {
			continue
		}
		if isMethodOn(site.Callee, "sync", "Pool", "Get") {
			roots = append(roots, site.Call)
			continue
		}
		if s := summaries[site.Callee]; s != nil && s.returnsPooled {
			roots = append(roots, site.Call)
		}
	}
	return roots
}

// latticeFor builds the alias lattice for one root predicate over n's body,
// with the interprocedural hook: calls to alias-returning wrappers propagate,
// and append only propagates through its destination (or through variadic
// expansion when the elements themselves carry references).
func latticeFor(n *analysis.CallNode, isRoot func(ast.Expr) bool, summaries map[*types.Func]*poolSummary) *analysis.AliasLattice {
	info := n.Pkg.Info
	al := &analysis.AliasLattice{Info: info, IsRoot: isRoot}
	al.CallAliases = func(call *ast.CallExpr, argAliases func(ast.Expr) bool) bool {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "append":
					if len(call.Args) == 0 {
						return false
					}
					if argAliases(call.Args[0]) {
						return true
					}
					// append(dst, pooled...) shares backing only when the
					// appended elements themselves carry references; copying
					// value elements (node IDs, floats) severs the alias.
					if call.Ellipsis.IsValid() {
						last := call.Args[len(call.Args)-1]
						if argAliases(last) {
							if st, ok := info.TypeOf(last).Underlying().(*types.Slice); ok {
								return analysis.RefLike(st.Elem())
							}
							return true
						}
					}
					return false
				}
				return false
			}
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return false
		}
		if s := summaries[callee]; s != nil {
			for i, arg := range call.Args {
				if s.returnsParamAlias[i] && argAliases(arg) {
					return true
				}
			}
		}
		return false
	}
	return al
}

// computePoolSummary derives one function's summary given the current
// summaries of everything else.
func computePoolSummary(n *analysis.CallNode, summaries map[*types.Func]*poolSummary) *poolSummary {
	s := &poolSummary{
		putsParams:        make(map[int]bool),
		returnsParamAlias: make(map[int]bool),
		escapesParams:     make(map[int]bool),
	}
	info := n.Pkg.Info

	// Acquire-wrapper shape: a lattice rooted at this function's own pool
	// roots, checked against its returns.
	if roots := poolRoots(n, summaries); len(roots) > 0 {
		rootSet := make(map[*ast.CallExpr]bool, len(roots))
		for _, r := range roots {
			rootSet[r] = true
		}
		al := latticeFor(n, func(e ast.Expr) bool {
			c, ok := e.(*ast.CallExpr)
			return ok && rootSet[c]
		}, summaries)
		al.Compute(cfgOf(n))
		if returnsAlias(n.Decl.Body, al) {
			s.returnsPooled = true
		}
	}

	// Per-parameter behavior: root the lattice at the parameter and observe
	// what the body does with its aliases.
	for i, pv := range paramVars(info, n.Decl) {
		if pv == nil || !analysis.RefLike(pv.Type()) {
			continue
		}
		al := latticeFor(n, func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			return ok && identObj(info, id) == pv
		}, summaries)
		al.Compute(cfgOf(n))
		if hasPut(n, al, summaries) != nil {
			s.putsParams[i] = true
		}
		if returnsAlias(n.Decl.Body, al) {
			s.returnsParamAlias[i] = true
		}
		if len(findPoolEscapes(n, al, summaries, false)) > 0 {
			s.escapesParams[i] = true
		}
	}
	return s
}

// cfgOf builds a throwaway CFG for summary lattices. Summaries are
// flow-insensitive, so the uncached graph is only iteration order; the cached
// (timed) CFG from ModulePass is reserved for the finding pass.
func cfgOf(n *analysis.CallNode) *analysis.CFG {
	return analysis.NewCFG(n.Decl.Body)
}

// paramVars lists the declared parameter objects in order (nil for _).
func paramVars(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// returnsAlias reports whether any top-level return statement returns an
// aliasing expression. Returns inside nested literals belong to the literal.
func returnsAlias(body *ast.BlockStmt, al *analysis.AliasLattice) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if al.Aliases(r) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// poolPut is one release point: the call that hands an alias back to the
// pool, and whether it is deferred (executes at function exit).
type poolPut struct {
	call     *ast.CallExpr
	deferred bool
}

// hasPut returns the Puts of the rooted object in n: direct sync.Pool.Put
// calls and calls to put-wrapper callees whose putsParams position receives
// an alias. nil when the function never releases the object.
func hasPut(n *analysis.CallNode, al *analysis.AliasLattice, summaries map[*types.Func]*poolSummary) []poolPut {
	var puts []poolPut
	for _, site := range n.Out {
		if site.InLiteral || site.Callee == nil || site.Dynamic {
			continue
		}
		if isMethodOn(site.Callee, "sync", "Pool", "Put") {
			if len(site.Call.Args) == 1 && al.Aliases(site.Call.Args[0]) {
				puts = append(puts, poolPut{call: site.Call, deferred: site.InDefer})
			}
			continue
		}
		if s := summaries[site.Callee]; s != nil {
			for i, arg := range site.Call.Args {
				if s.putsParams[i] && al.Aliases(arg) {
					puts = append(puts, poolPut{call: site.Call, deferred: site.InDefer})
					break
				}
			}
		}
	}
	return puts
}

// poolEscape is one point where an alias leaves the function's control.
type poolEscape struct {
	pos  token.Pos
	desc string
}

// findPoolEscapes scans n's body for escapes of the lattice's aliases. When
// includeReturns is false (parameter-summary mode) returns are excluded —
// returning a parameter alias is the searchShared shape, reported separately
// through returnsParamAlias.
func findPoolEscapes(n *analysis.CallNode, al *analysis.AliasLattice, summaries map[*types.Func]*poolSummary, includeReturns bool) []poolEscape {
	info := n.Pkg.Info
	var escapes []poolEscape
	add := func(pos token.Pos, desc string) {
		escapes = append(escapes, poolEscape{pos: pos, desc: desc})
	}
	// storedClosure flags an expression that is a function literal capturing
	// an alias — aliasing leaks when such a literal is stored or returned.
	storedClosure := func(e ast.Expr) bool {
		lit, ok := ast.Unparen(e).(*ast.FuncLit)
		return ok && closureCapturesAlias(info, lit, al)
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false // escapes inside a literal are attributed at its use
		case *ast.ReturnStmt:
			if !includeReturns {
				return true
			}
			for _, r := range x.Results {
				if al.Aliases(r) {
					add(r.Pos(), "is returned to the caller")
				} else if storedClosure(r) {
					add(r.Pos(), "is captured by a returned closure")
				}
			}
		case *ast.SendStmt:
			if al.Aliases(x.Value) {
				add(x.Value.Pos(), "is sent on a channel")
			} else if storedClosure(x.Value) {
				add(x.Value.Pos(), "is captured by a closure sent on a channel")
			}
		case *ast.GoStmt:
			for _, arg := range x.Call.Args {
				if al.Aliases(arg) {
					add(arg.Pos(), "is passed to a goroutine")
				}
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok && closureCapturesAlias(info, lit, al) {
				add(x.Pos(), "is captured by a go closure")
			}
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				leaks := al.Aliases(rhs)
				closure := !leaks && storedClosure(rhs)
				if !leaks && !closure {
					continue
				}
				if dst := heapStoreDest(info, al, lhs, n.Decl); dst != "" {
					if closure {
						add(rhs.Pos(), "is captured by a closure stored to "+dst)
					} else {
						add(rhs.Pos(), "is stored to "+dst)
					}
				}
			}
		case *ast.CallExpr:
			callee := calleeFunc(info, x)
			if callee == nil {
				return true
			}
			if s := summaries[callee]; s != nil {
				for i, arg := range x.Args {
					if s.escapesParams[i] && al.Aliases(arg) {
						add(arg.Pos(), "is passed to "+analysis.FuncDisplay(callee)+", which lets it escape")
					}
				}
			}
		}
		return true
	})
	return escapes
}

// heapStoreDest classifies an assignment destination: "" when the store
// stays inside the function's own control (a local variable — the lattice
// tracks it — or the pooled object itself, where internal bookkeeping like
// ws.path = append(...) is the designed shape). Anything else — package
// state, another parameter's object, memory behind a call result — names
// where the alias leaked.
func heapStoreDest(info *types.Info, al *analysis.AliasLattice, lhs ast.Expr, fd *ast.FuncDecl) string {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return ""
		}
		if v, ok := identObj(info, id).(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "package variable " + v.Name()
			}
			return "" // local (or parameter rebinding): lattice propagation
		}
		return ""
	}
	base := analysis.BaseIdent(lhs)
	if base == nil {
		return "memory behind " + exprString(lhs)
	}
	if al.Aliases(base) {
		return "" // store into the pooled object itself: internal
	}
	v, ok := identObj(info, base).(*types.Var)
	if !ok {
		return ""
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return "package variable " + v.Name()
	}
	if isParamOf(info, fd, v) {
		return "caller-visible object " + v.Name()
	}
	// A store through a plain local (b.s = alias): the lattice marks b and
	// the escape is caught where b itself leaks.
	return ""
}

// isParamOf reports whether v is one of fd's declared parameters (receiver
// included — storing into the receiver's object is caller-visible too).
func isParamOf(info *types.Info, fd *ast.FuncDecl, v *types.Var) bool {
	for _, pv := range paramVars(info, fd) {
		if pv == v {
			return true
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if info.Defs[name] == v {
					return true
				}
			}
		}
	}
	return false
}

// closureCapturesAlias reports whether a function literal's body references
// an aliasing variable from the enclosing function.
func closureCapturesAlias(info *types.Info, lit *ast.FuncLit, al *analysis.AliasLattice) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if al.Aliases(id) {
				found = true
			}
		}
		return true
	})
	return found
}

// checkPoolOwner runs the finding pass on one function: for each pool root
// acquired here, if the function also releases it, every escape on a path
// that reaches the Put (in either order — both mean the alias outlives the
// recycle) is a finding.
func checkPoolOwner(pass *analysis.ModulePass, n *analysis.CallNode, summaries map[*types.Func]*poolSummary) {
	roots := poolRoots(n, summaries)
	if len(roots) == 0 {
		return
	}
	cfg := pass.CFG(n.Pkg, n.Decl.Body)
	for _, root := range roots {
		al := latticeFor(n, func(e ast.Expr) bool {
			c, ok := e.(*ast.CallExpr)
			return ok && c == root
		}, summaries)
		al.Compute(cfg)
		puts := hasPut(n, al, summaries)
		if len(puts) == 0 {
			continue // ownership transferred to the caller (acquire-wrapper)
		}
		escapes := findPoolEscapes(n, al, summaries, true)
		for _, e := range escapes {
			eb := cfg.BlockOf(e.pos)
			for _, put := range puts {
				pb := cfg.Exit
				if !put.deferred {
					pb = cfg.BlockOf(put.call.Pos())
				}
				if eb == nil || pb == nil ||
					cfg.ReachableFrom(eb, pb) || cfg.ReachableFrom(pb, eb) {
					pass.Reportf(e.pos,
						"value aliasing the pooled object from %s %s, and %s releases it back to the pool (%s) — the alias outlives the Put and the next Get will hand out memory the escapee still references; copy into a fresh buffer instead",
						exprString(root), e.desc, analysis.FuncDisplay(n.Func), putDesc(put))
					break
				}
			}
		}
	}
}

func putDesc(p poolPut) string {
	s := exprString(p.call.Fun)
	if p.deferred {
		return "deferred " + s
	}
	return s
}
