package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

// TestFloatdet checks order-sensitive float folds: direct and collected
// map-range feeds, math.Max and builtin-min folds, channel-receive merges,
// and goroutine-shared accumulators are findings; sorted-key folds, integer
// accumulation, and indexed per-goroutine partials pass; and the whole
// analyzer is scoped to deterministic packages (floatneg repeats the
// positive shapes under an experiments path without findings).
func TestFloatdet(t *testing.T) {
	analysistest.RunModule(t, analyzers.Floatdet,
		"../testdata/mod/floatdet", map[string]string{
			"crowdplanner/internal/popular/floatfix":     "floatfix",
			"crowdplanner/internal/experiments/floatneg": "floatneg",
		})
}
