package analyzers

import (
	"go/ast"
	"go/types"

	"crowdplanner/internal/analysis"
)

// Wallclock flags reads of the wall clock (time.Now/Since/Until) and draws
// from the global math/rand source inside deterministic packages. Replays
// are keyed by (seed, event log); a wall-clock read or an unseeded random
// draw injects state the log does not capture. Seeded generators
// (rand.New(rand.NewSource(seed))) and explicit SimTime values are the
// sanctioned alternatives.
//
// Metrics, middleware, and the experiments harness measure real elapsed
// time by design, so those package families are allowlisted.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now or global math/rand in deterministic packages (seeded sources only)",
	Run:  runWallclock,
}

// wallclockAllow lists internal package families exempt even if they were
// ever folded into the deterministic set: they exist to observe real time.
var wallclockAllow = map[string]bool{
	"experiments": true, // benchmark harness: wall-clock timings are the output
	"server":      true, // metrics & middleware: request latencies are real time
	"calibrate":   true, // fits against measured data
}

// globalRandFuncs are the math/rand (and v2) package-level functions that
// draw from the shared, non-replayable source. Constructors (New, NewSource,
// NewZipf, NewPCG, NewChaCha8) are fine: they are how seeded RNGs are built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func runWallclock(pass *analysis.Pass) {
	path := pass.Pkg.Path
	if !isDeterministic(path) || wallclockAllow[internalSegment(path)] {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(info, call)
			if f == nil {
				return true
			}
			switch {
			case isPkgFunc(f, "time", "Now", "Since", "Until"):
				pass.Reportf(call.Pos(),
					"time.%s in deterministic package %q: wall-clock reads break replay; thread a routing.SimTime (or take the instant as a parameter)",
					f.Name(), internalSegment(path))
			case isGlobalRand(f):
				pass.Reportf(call.Pos(),
					"%s.%s draws from the global math/rand source in deterministic package %q: use rand.New(rand.NewSource(seed)) threaded from Config.Seed",
					f.Pkg().Path(), f.Name(), internalSegment(path))
			}
			return true
		})
	}
}

// isGlobalRand reports whether f is a math/rand or math/rand/v2
// package-level function drawing from the shared source.
func isGlobalRand(f *types.Func) bool {
	if f.Pkg() == nil || !globalRandFuncs[f.Name()] {
		return false
	}
	if p := f.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
