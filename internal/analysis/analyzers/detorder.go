package analyzers

import (
	"go/ast"
	"go/types"

	"crowdplanner/internal/analysis"
)

// Detorder flags `range` over a map in deterministic packages. Go randomizes
// map iteration order per run, so any map range whose visit order can leak
// into results, stored state, or the event log breaks bit-identical replay.
//
// A map range is accepted without annotation when it visibly feeds a sort:
// some call into package sort or a slices.Sort* variant appears later in the
// same top-level function (the collect-then-sort idiom). Everything else
// needs `//cplint:ordered-irrelevant -- <why>` — e.g. a commutative
// reduction (sum/max), or a drain where each element is processed through
// an order-insensitive sink.
var Detorder = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "map iteration in deterministic packages must feed a sort or justify order-irrelevance",
	Run:  runDetorder,
}

func runDetorder(pass *analysis.Pass) {
	if !isDeterministic(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(file) {
			// Collect sort-call positions once per function; a map range is
			// "sorted away" if any sort call follows it.
			var sortEnds []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if f := calleeFunc(info, call); f != nil && isSortCall(f) {
					sortEnds = append(sortEnds, call)
				}
				return true
			})
			sortAfter := func(n ast.Node) bool {
				for _, s := range sortEnds {
					if s.Pos() > n.End() {
						return true
					}
				}
				return false
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if sortAfter(rs) {
					return true
				}
				pass.Reportf(rs.Pos(),
					"range over map %s in deterministic package %q: iteration order is randomized per run; collect and sort the keys, or annotate //cplint:ordered-irrelevant -- <why order cannot leak>",
					exprString(rs.X), internalSegment(pass.Pkg.Path))
				return true
			})
		}
	}
}

// isSortCall recognizes the stdlib sorting entry points: anything in package
// sort, plus the slices.Sort* family.
func isSortCall(f *types.Func) bool {
	if f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		name := f.Name()
		return len(name) >= 4 && name[:4] == "Sort"
	}
	return false
}
