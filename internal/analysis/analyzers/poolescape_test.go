package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

// TestPoolescape checks every escape kind (return, package store, channel
// send, go closure, escaping callee, stored closure, direct object escape)
// against a cross-package acquire/release/fill wrapper set resolved purely
// through call-graph summaries, plus the sanctioned negative shapes: fresh
// copies, element-copying appends, internal workspace stores, ownership
// transfer, and an explicit suppression.
func TestPoolescape(t *testing.T) {
	analysistest.RunModule(t, analyzers.Poolescape,
		"../testdata/mod/poolescape", map[string]string{
			"crowdplanner/internal/routing/wspool":  "wspool",
			"crowdplanner/internal/routing/pooluse": "pooluse",
		})
}
