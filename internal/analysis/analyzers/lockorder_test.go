package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

// TestLockorderCycle checks the two-package, two-mutex cycle: one edge from
// direct nesting, the reverse edge through a cross-package helper call, plus
// a re-acquisition self-deadlock. Consistent nesting alone must not fire.
func TestLockorderCycle(t *testing.T) {
	analysistest.RunModule(t, analyzers.Lockorder,
		"../testdata/mod/lockorder_cycle", map[string]string{
			"crowdplanner/internal/core/lockpair": "lockpair",
			"crowdplanner/internal/core/lockuse":  "lockuse",
		})
}
