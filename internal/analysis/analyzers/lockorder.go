package analyzers

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"crowdplanner/internal/analysis"
)

// Lockorder builds a module-wide mutex acquisition-order graph and reports
// every cycle as a potential deadlock. Mutexes are identified canonically
// (core.System.mu, truth.DB.mu — one identity per declared field, see
// mutexKey); an edge A → B means some execution acquires B while holding A,
// either directly in one function or through a chain of statically resolved
// calls (held-set analysis over the call graph). Two goroutines walking a
// cycle from different ends block each other forever, so any cycle —
// including the one-node cycle of re-acquiring a held non-reentrant mutex —
// is a finding, reported once with the witness path for every edge on it.
//
// The held-set analysis is a linear source-order scan per function (the same
// approximation lockappend's regions use): an early return between Lock and
// a later Unlock over-approximates the held set, and calls through
// interfaces or function values are not expanded. Documented order for the
// core (DESIGN §6): mu before poolMu; this analyzer is what turns that
// sentence into a build failure.
var Lockorder = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "mutex acquisition-order graph over the module call graph must be acyclic (deadlock freedom)",
	RunModule: runLockorder,
}

// acqVia records how a function comes to acquire a mutex: directly at pos,
// or by calling via (whose own summary continues the chain).
type acqVia struct {
	pos token.Pos   // the direct acquisition site (in whichever function holds it)
	via *types.Func // next hop, nil when the acquire is in this function
}

// lockEdge is one acquisition-order edge with its first witness.
type lockEdge struct {
	from, to string
	// witness fields: fn is the function whose region witnesses the edge.
	fn      *types.Func
	heldPos token.Pos // where from was acquired
	acqPos  token.Pos // the call/acquire site establishing to
	chain   string    // rendered path from the region to the acquire of to
}

func runLockorder(pass *analysis.ModulePass) {
	g := pass.Graph

	// Per-function lock events and call sites, in source order.
	type fnScan struct {
		events []lockEvent
		calls  []regionCall
	}
	scans := make(map[*types.Func]fnScan)
	for _, n := range g.Nodes() {
		ev, calls := scanLockBody(n.Pkg.Info, n.Decl.Body)
		if len(ev) > 0 || len(calls) > 0 {
			scans[n.Func] = fnScan{events: ev, calls: calls}
		}
	}

	// mayAcquire fixpoint: every mutex a function may acquire, directly or
	// through statically resolved calls, with the first-discovered chain.
	may := make(map[*types.Func]map[string]acqVia)
	for _, n := range g.Nodes() {
		sc, ok := scans[n.Func]
		if !ok {
			continue
		}
		for _, ev := range sc.events {
			if !ev.acquire || ev.key == "" {
				continue
			}
			if may[n.Func] == nil {
				may[n.Func] = make(map[string]acqVia)
			}
			if _, seen := may[n.Func][ev.key]; !seen {
				may[n.Func][ev.key] = acqVia{pos: ev.pos}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			sc, ok := scans[n.Func]
			if !ok {
				continue
			}
			for _, c := range sc.calls {
				callee := calleeNodeFunc(g, c.callee)
				if callee == nil {
					continue
				}
				for key, sub := range may[callee] {
					if _, seen := may[n.Func][key]; seen {
						continue
					}
					if may[n.Func] == nil {
						may[n.Func] = make(map[string]acqVia)
					}
					may[n.Func][key] = acqVia{pos: sub.pos, via: callee}
					changed = true
				}
			}
		}
	}

	// Edge construction: scan each function's merged event/call stream with
	// a running held set.
	edges := make(map[[2]string]lockEdge)
	addEdge := func(e lockEdge) {
		k := [2]string{e.from, e.to}
		if _, ok := edges[k]; !ok {
			edges[k] = e
		}
	}
	for _, n := range g.Nodes() {
		sc, ok := scans[n.Func]
		if !ok {
			continue
		}
		held := make(map[string]lockEvent)
		ci := 0
		for _, ev := range sc.events {
			// Process call sites preceding this event.
			for ; ci < len(sc.calls) && sc.calls[ci].pos < ev.pos; ci++ {
				emitCallEdges(g, n.Func, sc.calls[ci], held, may, addEdge)
			}
			if ev.key == "" {
				continue
			}
			if ev.acquire {
				for _, h := range sortedHeld(held) {
					addEdge(lockEdge{from: h.key, to: ev.key, fn: n.Func,
						heldPos: h.pos, acqPos: ev.pos,
						chain: analysis.FuncDisplay(n.Func)})
				}
				if _, re := held[ev.key]; !re {
					held[ev.key] = ev
				}
			} else if !ev.deferred {
				delete(held, ev.key)
			}
		}
		for ; ci < len(sc.calls); ci++ {
			emitCallEdges(g, n.Func, sc.calls[ci], held, may, addEdge)
		}
	}

	reportLockCycles(pass, edges)
}

// calleeNodeFunc resolves a region call to a call-graph node function, nil
// for dynamic/unanalyzed callees.
func calleeNodeFunc(g *analysis.CallGraph, f *types.Func) *types.Func {
	if node := g.Node(f); node != nil {
		return node.Func
	}
	return nil
}

// emitCallEdges adds held → may-acquire edges for one call site.
func emitCallEdges(g *analysis.CallGraph, fn *types.Func, c regionCall,
	held map[string]lockEvent, may map[*types.Func]map[string]acqVia,
	addEdge func(lockEdge)) {
	callee := calleeNodeFunc(g, c.callee)
	if callee == nil || len(held) == 0 {
		return
	}
	sub := may[callee]
	if len(sub) == 0 {
		return
	}
	for _, key := range sortedKeys(sub) {
		chain := analysis.FuncDisplay(fn) + " → " + renderAcqChain(callee, key, may)
		for _, h := range sortedHeld(held) {
			addEdge(lockEdge{from: h.key, to: key, fn: fn,
				heldPos: h.pos, acqPos: c.pos, chain: chain})
		}
	}
}

// renderAcqChain renders the call chain from f to its acquisition of key.
func renderAcqChain(f *types.Func, key string, may map[*types.Func]map[string]acqVia) string {
	out := analysis.FuncDisplay(f)
	for i := 0; i < 64; i++ { // chain length bound; fixpoint chains are finite
		v, ok := may[f][key]
		if !ok || v.via == nil {
			return out
		}
		f = v.via
		out += " → " + analysis.FuncDisplay(f)
	}
	return out
}

func sortedHeld(held map[string]lockEvent) []lockEvent {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockEvent, len(keys))
	for i, k := range keys {
		out[i] = held[k]
	}
	return out
}

func sortedKeys(m map[string]acqVia) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reportLockCycles finds cycles in the acquisition-order graph and reports
// each once, listing the witness path of every edge on it.
func reportLockCycles(pass *analysis.ModulePass, edges map[[2]string]lockEdge) {
	adj := make(map[string][]string)
	var nodes []string
	seenNode := make(map[string]bool)
	addNode := func(n string) {
		if !seenNode[n] {
			seenNode[n] = true
			nodes = append(nodes, n)
		}
	}
	var keys [][2]string
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		addNode(k[0])
		addNode(k[1])
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	sort.Strings(nodes)

	// Self-deadlocks first: A → A means a region holding A reaches another
	// acquire of A, and Go mutexes are not reentrant.
	for _, n := range nodes {
		if e, ok := edges[[2]string{n, n}]; ok {
			pass.Reportf(e.acqPos,
				"potential self-deadlock: %s may be re-acquired while already held (held since line %d; re-acquired via %s) — Go mutexes are not reentrant",
				n, pass.Position(e.heldPos).Line, e.chain)
		}
	}

	// Multi-mutex cycles: DFS from each node in sorted order; report each
	// cycle once, canonicalized by its smallest node.
	reported := make(map[string]bool)
	var path []string
	onPath := make(map[string]bool)
	var dfs func(n, root string)
	dfs = func(n, root string) {
		path = append(path, n)
		onPath[n] = true
		for _, m := range adj[n] {
			if m == n {
				continue // self-loops reported above
			}
			if m == root {
				reportCycle(pass, edges, append(append([]string(nil), path...), root), reported)
				continue
			}
			if !onPath[m] && m > root { // canonical: only walk nodes above the root
				dfs(m, root)
			}
		}
		onPath[n] = false
		path = path[:len(path)-1]
	}
	for _, n := range nodes {
		dfs(n, n)
	}
}

// reportCycle emits one finding for the cycle described by nodes (first ==
// last), keyed so each distinct cycle is reported once.
func reportCycle(pass *analysis.ModulePass, edges map[[2]string]lockEdge, nodes []string, reported map[string]bool) {
	key := strings.Join(nodes, "→")
	if reported[key] {
		return
	}
	reported[key] = true
	var parts []string
	var first lockEdge
	for i := 0; i+1 < len(nodes); i++ {
		e := edges[[2]string{nodes[i], nodes[i+1]}]
		if i == 0 {
			first = e
		}
		parts = append(parts, fmt.Sprintf("%s acquires %s at %s while holding %s (line %d)",
			e.chain, e.to, posShort(pass, e.acqPos), e.from, pass.Position(e.heldPos).Line))
	}
	pass.Reportf(first.acqPos,
		"potential deadlock: lock-order cycle %s — %s; two goroutines entering from different ends block forever (pick one global order and document it)",
		strings.Join(nodes, " → "), strings.Join(parts, "; "))
}

// posShort renders file:line with the directory stripped.
func posShort(pass *analysis.ModulePass, pos token.Pos) string {
	p := pass.Position(pos)
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
