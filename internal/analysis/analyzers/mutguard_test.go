package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

// TestMutguard checks the guardedby contract end to end: locked and
// inferred-held accesses pass (including a cross-package lock region and a
// comparator literal defined inside one), unlocked reads/writes, go-closure
// escapes, and writes under RLock are findings with example call chains, the
// constructor exemption applies, and the directive vocabulary itself is
// validated (unresolvable spec, missing spec, embedded fields, prose-only
// contracts, misplaced directives).
func TestMutguard(t *testing.T) {
	analysistest.RunModule(t, analyzers.Mutguard,
		"../testdata/mod/mutguard", map[string]string{
			"crowdplanner/internal/fix/guarded":  "guarded",
			"crowdplanner/internal/fix/guarduse": "guarduse",
		})
}
