package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"crowdplanner/internal/analysis"
)

// Lockappend enforces the PR 3 WAL discipline: no storage append/fsync, file
// I/O, or network call may run while a sync.Mutex or sync.RWMutex is held.
// Blocking I/O under a core lock turns every fsync into a stall of the whole
// serving path (and in the worst case a deadlock against the store's own
// mutex). The walBatch pattern — collect records under the lock, flush after
// unlocking — is the sanctioned shape.
//
// Detection is package-local but transitive: each function gets an I/O
// summary (direct calls into crowdplanner/internal/store append/sync/load
// methods, os file operations, net dials, http round-trips), summaries
// propagate over same-package static calls to a fixpoint, and any call whose
// summary is non-empty is flagged when it appears between a Lock/RLock and
// the matching Unlock (a deferred unlock holds to function end). Calls
// inside nested function literals are skipped: their execution time is not
// tied to the region. Cross-package calls (other than into the store layer)
// are not expanded.
//
// The store packages themselves are exempt — serializing file writes under
// the store's own append mutex is their job, not a violation.
var Lockappend = &analysis.Analyzer{
	Name: "lockappend",
	Doc:  "no store append/fsync/file/network I/O reachable while a sync mutex is held",
	Run:  runLockappend,
}

// storePathPrefix scopes "calls into the storage layer". Matched by path
// suffix segment so the real tree and fixtures both resolve.
const storePkgSegment = "store"

func runLockappend(pass *analysis.Pass) {
	if internalSegment(pass.Pkg.Path) == storePkgSegment {
		return
	}
	info := pass.Pkg.Info

	// Pass 1: direct I/O per declared function, and the same-package static
	// call graph.
	type fnInfo struct {
		decl    *ast.FuncDecl
		io      string                    // description of first direct I/O, "" if none
		ioPos   token.Pos                 // where it happens
		callees map[*types.Func]token.Pos // same-package static calls
	}
	fns := make(map[*types.Func]*fnInfo)
	for _, file := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(file) {
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: fd, callees: make(map[*types.Func]token.Pos)}
			fns[obj] = fi
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(info, call)
				if f == nil {
					return true
				}
				if desc := directIO(f); desc != "" && fi.io == "" {
					fi.io, fi.ioPos = desc, call.Pos()
				}
				if f.Pkg() == pass.Pkg.Types {
					if _, seen := fi.callees[f]; !seen {
						fi.callees[f] = call.Pos()
					}
				}
				return true
			})
		}
	}

	// Pass 2: propagate reachability to a fixpoint. reach[f] explains how f
	// gets to I/O ("appends via flush → store.TruthLog.Append").
	reach := make(map[*types.Func]string)
	for f, fi := range fns {
		if fi.io != "" {
			reach[f] = fi.io
		}
	}
	for changed := true; changed; {
		changed = false
		for f, fi := range fns {
			if _, done := reach[f]; done {
				continue
			}
			for callee := range fi.callees {
				if via, ok := reach[callee]; ok {
					reach[f] = callee.Name() + " → " + via
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: scan lock regions.
	for _, file := range pass.Pkg.Files {
		for _, fd := range enclosingFuncs(file) {
			checkLockRegions(pass, info, fd, reach)
		}
	}
}

// lockEvent is one Lock/RLock/Unlock/RUnlock call in a function body.
type lockEvent struct {
	pos      token.Pos
	recv     string // rendered receiver expression, e.g. "s.mu"
	acquire  bool
	deferred bool
}

// checkLockRegions finds held-lock spans in fd and reports I/O calls inside.
func checkLockRegions(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl, reach map[*types.Func]string) {
	var events []lockEvent
	type ioSite struct {
		pos  token.Pos
		desc string
	}
	var ios []ioSite

	// Walk the body outside function literals: a call inside a nested
	// literal does not execute at its textual position.
	var walk func(n ast.Node, inDefer bool)
	walk = func(root ast.Node, inDefer bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				walk(x.Call, true)
				return false
			case *ast.CallExpr:
				f := calleeFunc(info, x)
				if f == nil {
					return true
				}
				if kind, isLock := mutexOp(f); isLock {
					recv := ""
					if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
						recv = exprString(sel.X)
					}
					events = append(events, lockEvent{
						pos: x.Pos(), recv: recv,
						acquire:  kind == "Lock" || kind == "RLock",
						deferred: inDefer,
					})
					return true
				}
				if desc := directIO(f); desc != "" {
					ios = append(ios, ioSite{x.Pos(), desc})
				} else if via, ok := reach[f]; ok {
					ios = append(ios, ioSite{x.Pos(), f.Name() + " → " + via})
				}
			}
			return true
		})
	}
	walk(fd.Body, false)

	for _, acq := range events {
		if !acq.acquire {
			continue
		}
		// Region end: first plain release of the same receiver after the
		// acquire; if only deferred releases (or none) exist, the lock is
		// held to function end.
		end := fd.Body.End()
		for _, rel := range events {
			if !rel.acquire && !rel.deferred && rel.recv == acq.recv && rel.pos > acq.pos && rel.pos < end {
				end = rel.pos
			}
		}
		for _, io := range ios {
			if io.pos > acq.pos && io.pos < end {
				pass.Reportf(io.pos,
					"%s reachable while %s is locked (acquired at line %d): appends never run under core locks — buffer under the lock, flush after unlocking, or annotate why this cannot block",
					io.desc, acq.recv, pass.Pkg.Fset.Position(acq.pos).Line)
			}
		}
	}
}

// mutexOp classifies f as a sync.Mutex/RWMutex lock-family method.
func mutexOp(f *types.Func) (string, bool) {
	switch {
	case isMethodOn(f, "sync", "Mutex", "Lock", "Unlock"),
		isMethodOn(f, "sync", "RWMutex", "Lock", "Unlock", "RLock", "RUnlock"):
		return f.Name(), true
	}
	return "", false
}

// directIO describes why a call is blocking I/O, or returns "".
func directIO(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	path := f.Pkg().Path()
	name := f.Name()
	sig, _ := f.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	// Storage-layer appends, snapshots, and loads: any method of a type
	// declared in the store package tree whose name says it touches the log.
	if internalSegment(path) == storePkgSegment && isMethod {
		if strings.HasPrefix(name, "Append") ||
			name == "Snapshot" || name == "Sync" || name == "Load" || name == "Close" {
			return "store append/IO (" + recvTypeName(sig) + "." + name + ")"
		}
		return ""
	}
	switch path {
	case "os":
		if !isMethod {
			switch name {
			case "OpenFile", "Open", "Create", "WriteFile", "ReadFile",
				"Rename", "Remove", "RemoveAll", "Mkdir", "MkdirAll":
				return "file I/O (os." + name + ")"
			}
			return ""
		}
		if isMethodOn(f, "os", "File",
			"Write", "WriteString", "WriteAt", "Read", "ReadAt", "Sync", "Close") {
			return "file I/O (os.File." + name + ")"
		}
	case "net":
		if isPkgFunc(f, "net", "Dial", "DialTimeout", "Listen", "ListenPacket") {
			return "network I/O (net." + name + ")"
		}
	case "net/http":
		if isPkgFunc(f, "net/http", "Get", "Post", "PostForm", "Head") ||
			isMethodOn(f, "net/http", "Client", "Do", "Get", "Post", "PostForm", "Head") {
			return "network I/O (http." + name + ")"
		}
	}
	return ""
}

// recvTypeName names a method's receiver type for diagnostics.
func recvTypeName(sig *types.Signature) string {
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return rt.String()
}
