package analyzers

import (
	"go/token"
	"go/types"
	"strings"

	"crowdplanner/internal/analysis"
)

// Lockappend enforces the PR 3 WAL discipline: no storage append/fsync, file
// I/O, or network call may run while a sync.Mutex or sync.RWMutex is held.
// Blocking I/O under a core lock turns every fsync into a stall of the whole
// serving path (and in the worst case a deadlock against the store's own
// mutex). The walBatch pattern — collect records under the lock, flush after
// unlocking — is the sanctioned shape.
//
// Detection is module-wide and transitive: the shared call graph propagates
// each function's I/O summary across package boundaries, so a mutex-held
// region in core that calls into internal/traj which calls a store append is
// flagged at the region, with the full call chain in the finding
// (core.IngestTrips → traj.ingest → store append/IO (Log.Append)).
// Reachability follows statically resolved calls only; calls through
// interfaces and function values are not expanded (conservative unknown
// callees) — except that a call to a store-layer interface method is itself
// classified as I/O by its declared contract, which is how calls through the
// store.Store interface are caught without knowing the backend. Calls inside
// nested function literals are skipped both as region contents and as
// summary contributors: their execution time is not tied to the enclosing
// function.
//
// The store packages themselves are exempt — serializing file writes under
// the store's own append mutex is their job, not a violation.
var Lockappend = &analysis.Analyzer{
	Name:      "lockappend",
	Doc:       "no store append/fsync/file/network I/O reachable (module-wide) while a sync mutex is held",
	RunModule: runLockappend,
}

// storePkgSegment scopes "calls into the storage layer". Matched by the path
// segment after internal/ so the real tree and fixtures both resolve.
const storePkgSegment = "store"

func inStoreLayer(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	return internalSegment(f.Pkg().Path()) == storePkgSegment
}

func runLockappend(pass *analysis.ModulePass) {
	// Module-wide I/O reachability. Direct hits use the declared callee even
	// at dynamic sites (a store.Store interface call appends by contract);
	// traversal stops at the store layer — its interior I/O is its own
	// business, callers are charged at the boundary call.
	reach := pass.Graph.Reach(
		func(site analysis.CallSite) string { return directIO(site.Callee) },
		func(f *types.Func) bool { return !inStoreLayer(f) },
	)

	for _, pkg := range pass.Pkgs {
		if internalSegment(pkg.Path) == storePkgSegment {
			continue
		}
		for _, file := range pkg.Files {
			for _, fd := range enclosingFuncs(file) {
				events, calls := scanLockBody(pkg.Info, fd.Body)
				if len(events) == 0 {
					continue
				}
				// Classify each call site once: direct I/O by declared
				// callee, else the rendered call chain to the I/O it reaches.
				type ioSite struct {
					pos  token.Pos
					desc string
				}
				var ios []ioSite
				for _, c := range calls {
					if desc := directIO(c.callee); desc != "" {
						ios = append(ios, ioSite{c.pos, desc})
					} else if _, ok := reach.Reaches(c.callee); ok {
						ios = append(ios, ioSite{c.pos, reach.Chain(c.callee)})
					}
				}
				for _, acq := range events {
					if !acq.acquire {
						continue
					}
					end := regionEnd(acq, events, fd.Body.End())
					for _, io := range ios {
						if io.pos > acq.pos && io.pos < end {
							pass.Reportf(io.pos,
								"%s reachable while %s is locked (acquired at line %d): appends never run under core locks — buffer under the lock, flush after unlocking, or annotate why this cannot block",
								io.desc, acq.recv, pass.Position(acq.pos).Line)
						}
					}
				}
			}
		}
	}
}

// directIO describes why a call is blocking I/O, or returns "".
func directIO(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	path := f.Pkg().Path()
	name := f.Name()
	sig, _ := f.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	// Storage-layer appends, snapshots, and loads: any method of a type
	// declared in the store package tree whose name says it touches the log.
	if internalSegment(path) == storePkgSegment && isMethod {
		if strings.HasPrefix(name, "Append") ||
			name == "Snapshot" || name == "Sync" || name == "Load" || name == "Close" {
			return "store append/IO (" + recvTypeName(sig) + "." + name + ")"
		}
		return ""
	}
	switch path {
	case "os":
		if !isMethod {
			switch name {
			case "OpenFile", "Open", "Create", "WriteFile", "ReadFile",
				"Rename", "Remove", "RemoveAll", "Mkdir", "MkdirAll":
				return "file I/O (os." + name + ")"
			}
			return ""
		}
		if isMethodOn(f, "os", "File",
			"Write", "WriteString", "WriteAt", "Read", "ReadAt", "Sync", "Close") {
			return "file I/O (os.File." + name + ")"
		}
	case "net":
		if isPkgFunc(f, "net", "Dial", "DialTimeout", "Listen", "ListenPacket") {
			return "network I/O (net." + name + ")"
		}
	case "net/http":
		if isPkgFunc(f, "net/http", "Get", "Post", "PostForm", "Head") ||
			isMethodOn(f, "net/http", "Client", "Do", "Get", "Post", "PostForm", "Head") {
			return "network I/O (http." + name + ")"
		}
	}
	return ""
}

// recvTypeName names a method's receiver type for diagnostics.
func recvTypeName(sig *types.Signature) string {
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return rt.String()
}
