package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"crowdplanner/internal/analysis"
)

// Hotalloc enforces allocation-freedom for functions annotated
// //cplint:hotpath. The PR 5 routing rework got the search inner loop from
// 283 allocations per query down to one sanctioned slice; this analyzer
// turns that benchmark result into an invariant — a future edit that slips a
// fmt.Sprintf or a fresh closure into the search kernel fails cplint instead
// of failing a profiler run three releases later.
//
// Flagged allocation sites, chosen to match what Go's escape analysis cannot
// keep on the stack in practice:
//
//   - slice and map composite literals, and &T{...} (address-taken literals)
//   - make and new
//   - append whose destination is not a reused (field-selector) slice — the
//     pooled-workspace pattern appends to s.buf, which amortizes; appending
//     to a fresh local grows fresh backing arrays
//   - non-constant string concatenation, and string ↔ []byte/[]rune
//     conversions
//   - function literals that capture variables (closure headers escape)
//   - calls to known-allocating stdlib helpers (fmt.Sprintf, errors.New,
//     strings.Join, sort.Slice, strconv.Itoa, ...)
//
// The check is transitive over statically resolved calls: a hotpath function
// calling a helper that allocates is flagged at the call, with the chain to
// the allocation. Calls to functions that are themselves annotated hotpath
// are not re-flagged (each hotpath function is checked at its own sites),
// and dynamic sites (interface dispatch — e.g. a cost.Cost implementation —
// and function values) are not expanded: a documented gap, not a license.
//
// A //cplint:hotpath comment that is not the doc comment of a function
// declaration marks nothing and is itself reported.
var Hotalloc = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "functions annotated //cplint:hotpath must be allocation-free (transitively, over static calls)",
	RunModule: runHotalloc,
}

const hotpathDirective = "//cplint:hotpath"

// allocSite is one direct allocation with a human description.
type allocSite struct {
	pos  token.Pos
	desc string
}

// allocEntry summarizes a function that can reach an allocation: the first
// direct site (by source order at the seed) and the next hop toward it.
type allocEntry struct {
	site allocSite
	via  *types.Func // nil when the allocation is in this function
}

func runHotalloc(pass *analysis.ModulePass) {
	g := pass.Graph

	// Hotpath annotations, and misplaced ones.
	hot := make(map[*types.Func]bool)
	for _, n := range g.Nodes() {
		if hasHotpathDoc(n.Decl.Doc) {
			hot[n.Func] = true
		}
	}
	reportDanglingHotpath(pass)

	// Direct allocation sites per function, in source order.
	direct := make(map[*types.Func][]allocSite)
	for _, n := range g.Nodes() {
		if sites := allocSites(n.Pkg.Info, n.Decl); len(sites) > 0 {
			direct[n.Func] = sites
		}
	}

	// Transitive alloc-reachability over static, non-deferred-irrelevant
	// edges (deferred calls still run on the hot path's exit; included).
	reach := make(map[*types.Func]allocEntry)
	for _, n := range g.Nodes() {
		if sites := direct[n.Func]; len(sites) > 0 {
			reach[n.Func] = allocEntry{site: sites[0]}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if _, done := reach[n.Func]; done {
				continue
			}
			for _, site := range n.Out {
				if site.Dynamic || site.InLiteral || site.Callee == nil {
					continue
				}
				callee := g.Node(site.Callee)
				if callee == nil {
					continue
				}
				if sub, ok := reach[callee.Func]; ok {
					reach[n.Func] = allocEntry{site: sub.site, via: callee.Func}
					changed = true
					break
				}
			}
		}
	}

	// Report. Direct sites first (source order), then allocating calls.
	for _, n := range g.Nodes() {
		if !hot[n.Func] {
			continue
		}
		for _, s := range direct[n.Func] {
			pass.Reportf(s.pos,
				"%s in //cplint:hotpath function %s: hot kernels must be allocation-free — reuse a pooled buffer, hoist to setup, or annotate why this site is sanctioned",
				s.desc, analysis.FuncDisplay(n.Func))
		}
		for _, site := range n.Out {
			if site.Dynamic || site.InLiteral || site.Callee == nil {
				continue
			}
			callee := g.Node(site.Callee)
			if callee == nil || hot[callee.Func] {
				continue // hotpath callees are checked at their own sites
			}
			if entry, ok := reach[callee.Func]; ok {
				pass.Reportf(site.Call.Pos(),
					"call from //cplint:hotpath function %s reaches an allocation: %s — make the callee allocation-free (and annotate it hotpath) or hoist this call out of the kernel",
					analysis.FuncDisplay(n.Func), renderAllocChain(callee.Func, entry, reach))
			}
		}
	}
}

// renderAllocChain renders "helper → deeper → <desc>" starting at f.
func renderAllocChain(f *types.Func, entry allocEntry, reach map[*types.Func]allocEntry) string {
	out := analysis.FuncDisplay(f)
	for i := 0; entry.via != nil && i < 64; i++ {
		f = entry.via
		out += " → " + analysis.FuncDisplay(f)
		entry = reach[f]
	}
	return out + " → " + entry.site.desc
}

// isHotpathComment matches the directive in either comment form
// (//cplint:hotpath or /*cplint:hotpath*/), mirroring how the suppression
// parser normalizes annotation text.
func isHotpathComment(c *ast.Comment) bool {
	text := c.Text
	if strings.HasPrefix(text, "/*") {
		text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
	} else {
		text = strings.TrimPrefix(text, "//")
	}
	return strings.TrimSpace(text) == strings.TrimPrefix(hotpathDirective, "//")
}

// hasHotpathDoc reports whether a doc comment group carries the hotpath
// directive on a line of its own.
func hasHotpathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if isHotpathComment(c) {
			return true
		}
	}
	return false
}

// reportDanglingHotpath flags hotpath comments that are not part of a
// function declaration's doc comment — they mark nothing.
func reportDanglingHotpath(pass *analysis.ModulePass) {
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			attached := make(map[*ast.CommentGroup]bool)
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
					attached[fd.Doc] = true
				}
			}
			for _, cg := range file.Comments {
				if attached[cg] {
					continue
				}
				for _, c := range cg.List {
					if isHotpathComment(c) {
						pass.Reportf(c.Pos(),
							"misplaced //cplint:hotpath: the directive must be part of a function declaration's doc comment; here it marks nothing")
					}
				}
			}
		}
	}
}

// allocSites scans fd's body for direct allocation sites, in source order.
// Nested function literals are scanned too — code inside them still executes
// on the hot path when the literal is invoked, and the literal itself is
// flagged when it captures.
func allocSites(info *types.Info, fd *ast.FuncDecl) []allocSite {
	var sites []allocSite
	add := func(pos token.Pos, desc string) {
		sites = append(sites, allocSite{pos: pos, desc: desc})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[x]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				add(x.Pos(), "slice literal allocates a backing array")
			case *types.Map:
				add(x.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					add(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				tv, ok := info.Types[x]
				if ok && tv.Value == nil && isStringType(tv.Type) {
					add(x.Pos(), "string concatenation allocates")
				}
			}
		case *ast.FuncLit:
			if v := capturedVar(info, x); v != "" {
				add(x.Pos(), "function literal capturing "+v+" allocates a closure")
			}
		case *ast.CallExpr:
			classifyAllocCall(info, x, add)
		}
		return true
	})
	return sites
}

// classifyAllocCall flags allocating calls: make/new, append to a non-reused
// destination, allocating string conversions, and known-allocating stdlib
// helpers.
func classifyAllocCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				// Appending to a field slice (s.buf) is the sanctioned pooled-
				// workspace pattern: capacity amortizes across calls. Appending
				// to anything else grows fresh backing arrays.
				if len(call.Args) > 0 {
					if _, reused := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); !reused {
						add(call.Pos(), "append to a non-reused slice may allocate")
					}
				}
			}
			return
		}
	}
	// Conversion: string ↔ []byte / []rune copies.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		if src, ok := info.Types[call.Args[0]]; ok && allocatingConversion(src.Type, dst) {
			add(call.Pos(), "string conversion copies its data")
			return
		}
	}
	if f := calleeFunc(info, call); f != nil && f.Pkg() != nil {
		name := f.Pkg().Path() + "." + f.Name()
		sig, _ := f.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil {
			switch name {
			case "fmt.Sprintf", "fmt.Sprint", "fmt.Sprintln", "fmt.Errorf",
				"errors.New", "strings.Join", "strings.Repeat", "strings.Split",
				"strings.Fields", "sort.Slice", "sort.SliceStable",
				"strconv.Itoa", "strconv.FormatInt", "strconv.FormatFloat",
				"strconv.Quote":
				add(call.Pos(), name+" allocates")
				return
			}
		}
		// A variadic call with arguments in the variadic position allocates
		// the ...T slice at the call site (passing an existing slice with ...
		// does not).
		if sig != nil && sig.Variadic() && call.Ellipsis == token.NoPos &&
			len(call.Args) >= sig.Params().Len() {
			add(call.Pos(), "variadic call to "+f.Name()+" allocates its argument slice")
		}
	}
}

// allocatingConversion reports whether converting src to dst copies data:
// string ↔ []byte or []rune in either direction.
func allocatingConversion(src, dst types.Type) bool {
	return (isStringType(src) && isByteOrRuneSlice(dst)) ||
		(isByteOrRuneSlice(src) && isStringType(dst))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// capturedVar returns the name of one variable the literal captures from its
// enclosing function, "" when it captures nothing. Package-level variables
// and struct fields are not captures (no closure header needed for globals;
// fields ride on their receiver).
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: referenced directly, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}
