package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

// Sentinel runs in every package; check it under a non-deterministic path
// to pin that breadth.
func TestSentinel(t *testing.T) {
	analysistest.Run(t, analyzers.Sentinel,
		"../testdata/src/sentinel", "crowdplanner/internal/server/sentinelfixture")
}
