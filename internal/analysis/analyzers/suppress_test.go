package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

// TestSuppression exercises the framework's annotation layer through a
// sentinel-violating fixture: placement, the mandatory reason string,
// unknown analyzer names, and malformed directives.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, analyzers.Sentinel,
		"../testdata/src/suppress", "crowdplanner/internal/server/suppressfixture")
}
