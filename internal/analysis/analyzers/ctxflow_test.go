package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analyzers.Ctxflow,
		"../testdata/src/ctxflow", "crowdplanner/internal/server/ctxflowfixture")
}
