// Package analyzers holds cplint's catalogue of project-specific checks.
// Each analyzer mechanizes one invariant an earlier PR established by hand:
//
//	detorder    — sorted iteration in deterministic packages (PR 1/PR 4)
//	lockappend  — no storage/file/network I/O reachable under core mutexes,
//	              module-wide over the call graph (PR 3)
//	ctxflow     — context.Context propagation through request paths (PR 2)
//	wallclock   — no wall clock / global RNG in deterministic packages (PR 1)
//	sentinel    — sentinel errors compared with errors.Is, not == (PR 2)
//	lockorder   — mutex acquisition-order graph must be acyclic (PR 3/PR 6)
//	goroleak    — goroutines outside main must observe a termination signal
//	hotalloc    — //cplint:hotpath functions stay allocation-free (PR 5)
//	cplint      — well-formedness of the annotations themselves (framework)
//
// lockappend, lockorder, goroleak, and hotalloc are interprocedural: they
// run once per module over the shared static call graph (see
// analysis.CallGraph) instead of once per package.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs names the internal packages whose behavior must replay
// bit-identically from (seed, event log): everything on the simulation,
// mining, and persistence paths. The set is matched against the first path
// segment after "internal/", so fixture packages checked under e.g.
// "crowdplanner/internal/truth/fixture" scope the same way the real tree
// does, and store subpackages (memstore, diskstore) inherit store's rules.
var deterministicPkgs = map[string]bool{
	"core":     true,
	"routing":  true,
	"traj":     true,
	"popular":  true,
	"truth":    true,
	"task":     true,
	"worker":   true,
	"landmark": true,
	"crowd":    true,
	"store":    true,
}

// internalSegment extracts the package-family segment after "internal/"
// from an import path, or "" if the path has no internal element.
func internalSegment(path string) string {
	const marker = "internal/"
	i := strings.Index(path, marker)
	if i < 0 {
		return ""
	}
	rest := path[i+len(marker):]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	return rest
}

// isDeterministic reports whether the import path belongs to the
// deterministic-replay family.
func isDeterministic(path string) bool {
	return deterministicPkgs[internalSegment(path)]
}

// calleeFunc resolves the function or method a call expression invokes,
// following embedded-field method selections. Returns nil for calls through
// function values, type conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether f is a package-level function of pkgPath with
// one of the given names.
func isPkgFunc(f *types.Func, pkgPath string, names ...string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isMethodOn reports whether f is a method named one of names declared on
// (a pointer to) type pkgPath.typeName.
func isMethodOn(f *types.Func, pkgPath, typeName string, names ...string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != typeName {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// enclosingFuncs returns the file's top-level function declarations; used to
// scope per-function searches.
func enclosingFuncs(file *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// exprString renders a (small) expression for diagnostics and for matching
// lock receivers across Lock/Unlock call sites.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
