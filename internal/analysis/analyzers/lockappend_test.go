package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

func TestLockappend(t *testing.T) {
	analysistest.Run(t, analyzers.Lockappend,
		"../testdata/src/lockappend", "crowdplanner/internal/core/lockappendfixture")
}

// TestLockappendStoreExempt checks the storage layer may serialize its own
// file writes under its append mutex.
func TestLockappendStoreExempt(t *testing.T) {
	analysistest.Run(t, analyzers.Lockappend,
		"../testdata/src/lockappend_store", "crowdplanner/internal/store/walfixture")
}

// TestLockappendCrossPackageChain checks the module-wide case: the locked
// region lives in a core package, the append two static hops away behind a
// helper package, and the finding renders the full call chain.
func TestLockappendCrossPackageChain(t *testing.T) {
	analysistest.RunModule(t, analyzers.Lockappend,
		"../testdata/mod/lockappend_chain", map[string]string{
			"crowdplanner/internal/core/chaincore":   "chaincore",
			"crowdplanner/internal/traj/chainingest": "chainingest",
			"crowdplanner/internal/store/chainwal":   "chainwal",
		})
}
