package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

func TestLockappend(t *testing.T) {
	analysistest.Run(t, analyzers.Lockappend,
		"../testdata/src/lockappend", "crowdplanner/internal/core/lockappendfixture")
}

// TestLockappendStoreExempt checks the storage layer may serialize its own
// file writes under its append mutex.
func TestLockappendStoreExempt(t *testing.T) {
	analysistest.Run(t, analyzers.Lockappend,
		"../testdata/src/lockappend_store", "crowdplanner/internal/store/walfixture")
}
