package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"crowdplanner/internal/analysis"
)

// Mutguard turns the tree's prose lock contracts ("pending is guarded by
// mu") into a machine-checked invariant. A struct field annotated
//
//	//cplint:guardedby <mutex>
//
// may only be read or written while that mutex is held. The mutex spec is a
// sibling field name (`mu`), a same-package `Type.field`, or a package-level
// variable; it must resolve to a sync.Mutex or sync.RWMutex, and the
// canonical identity matches lockorder's mutexKey scheme, so the held-region
// machinery is shared.
//
// Held regions come from two sources. Locally, a region opens at Lock/RLock
// and closes at the matching unlock (deferred unlocks hold to function end —
// scanLockBody/regionEnd, reused from lockappend/lockorder). Indirectly, a
// helper that is only ever called with the mutex held inherits it: the
// held-on-entry set of each function is the intersection, over every static
// call site, of what is held at that site (caller's local regions plus the
// caller's own held-on-entry set), iterated to fixpoint. Call sites inside
// go statements contribute nothing (the goroutine runs after the caller's
// region may have closed), and a function with no analyzed callers — an
// exported entry point — starts with nothing held. Findings in helpers
// include an example lock-free call chain.
//
// Precision rules:
//
//   - writes require the exclusive lock: a write under RLock is a finding
//     (torn readers), a read under either mode passes
//   - accesses to freshly constructed objects (reached from a composite
//     literal or new() in the same function — constructors) are exempt: the
//     object is not shared yet
//   - composite-literal field keys (Store{closed: true}) are initialization,
//     not access
//   - function literals inherit the held set at their definition point
//     (synchronous-call assumption: sort.Slice comparators under a lock),
//     except go-spawned literals, which start empty
//
// Like lockorder, mutex identity aggregates by declared field (every
// core.System.mu is one lock): holding a.mu while touching b.field of
// another instance passes — the standard static-analysis aggregation.
//
// A field whose comment says "guarded by" in prose without carrying the
// directive is itself a finding: the contract exists but is not enforced.
var Mutguard = &analysis.Analyzer{
	Name:      "mutguard",
	Doc:       "//cplint:guardedby fields may only be accessed while the named mutex is held (module-wide, with held-on-entry inference)",
	RunModule: runMutguard,
}

const guardedbyDirective = "cplint:guardedby"

// guardedField is one field carrying a guardedby contract.
type guardedField struct {
	fieldVar *types.Var
	fieldKey string // "pkg.Type.field", for messages
	mutexKey string // canonical identity of the required mutex (mutexKey scheme)
	mutexStr string // the directive's spelling, for messages
}

// heldSet maps canonical mutex keys to whether the hold is exclusive
// (Lock) rather than shared (RLock). A nil heldSet is ⊤ — the optimistic
// fixpoint start, "everything held" — distinct from the empty set.
type heldSet map[string]bool

func intersectHeld(a, b heldSet) heldSet {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(heldSet)
	for k, ex := range a {
		if bex, ok := b[k]; ok {
			out[k] = ex && bex
		}
	}
	return out
}

func unionHeld(a, b heldSet) heldSet {
	if a == nil || b == nil {
		return nil // ⊤
	}
	out := make(heldSet, len(a)+len(b))
	for k, ex := range a {
		out[k] = ex
	}
	for k, ex := range b {
		out[k] = out[k] || ex
	}
	return out
}

func sameHeld(a, b heldSet) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, ex := range a {
		if bex, ok := b[k]; !ok || bex != ex {
			return false
		}
	}
	return true
}

func runMutguard(pass *analysis.ModulePass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	g := pass.Graph

	// goCalls: call expressions that are the subject of a go statement, per
	// function — the call graph records them as plain sites, so spot them on
	// the AST.
	goCalls := make(map[*ast.CallExpr]bool)
	for _, n := range g.Nodes() {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if gs, ok := node.(*ast.GoStmt); ok {
				goCalls[gs.Call] = true
			}
			return true
		})
	}

	// Local lock events per function.
	events := make(map[*types.Func][]lockEvent)
	for _, n := range g.Nodes() {
		evs, _ := scanLockBody(n.Pkg.Info, n.Decl.Body)
		events[n.Func] = evs
	}

	// Held-on-entry fixpoint. Start optimistic (⊤ = nil) and shrink: each
	// round recomputes every function's entry set as the intersection over
	// its eligible call sites of (caller local held at site ∪ caller entry).
	// Information propagates at most one call-chain hop per round, so the
	// node count bounds the rounds any stable system needs; the explicit cap
	// guarantees termination even for a pathological oscillation.
	entry := make(map[*types.Func]heldSet)
	for changed, round := true, 0; changed && round <= len(g.Nodes()); round++ {
		changed = false
		contrib := make(map[*types.Func]heldSet)
		seen := make(map[*types.Func]bool)
		for _, n := range g.Nodes() {
			for _, site := range n.Out {
				if site.Callee == nil || site.Dynamic || site.InLiteral {
					continue
				}
				callee := g.Node(site.Callee)
				if callee == nil {
					continue
				}
				var h heldSet
				if goCalls[site.Call] {
					h = heldSet{} // spawned: caller's region may be gone
				} else {
					h = unionHeld(localHeldAt(events[n.Func], site.Call.Pos(), n.Decl.Body.End()), entry[n.Func])
				}
				if !seen[callee.Func] {
					seen[callee.Func] = true
					contrib[callee.Func] = h
				} else {
					contrib[callee.Func] = intersectHeld(contrib[callee.Func], h)
				}
			}
		}
		for _, n := range g.Nodes() {
			var next heldSet
			if seen[n.Func] {
				next = contrib[n.Func]
			} else {
				next = heldSet{} // no analyzed caller: entry point, nothing held
			}
			if next == nil {
				next = heldSet{} // every contribution was ⊤ (cycle): settle empty
			}
			if !sameHeld(entry[n.Func], next) {
				entry[n.Func] = next
				changed = true
			}
		}
	}

	// Reverse edges for chain rendering.
	callers := make(map[*types.Func][]*analysis.CallNode)
	for _, n := range g.Nodes() {
		for _, site := range n.Out {
			if site.Callee == nil || site.Dynamic || site.InLiteral {
				continue
			}
			if g.Node(site.Callee) != nil {
				callers[site.Callee] = append(callers[site.Callee], n)
			}
		}
	}

	// Access pass.
	for _, n := range g.Nodes() {
		checkGuardedAccesses(pass, n, guarded, events[n.Func], entry[n.Func], callers, goCalls)
	}
	reportMisplacedGuardedby(pass)
}

// localHeldAt returns the mutexes locally held at pos: every acquire whose
// region (to its plain release, or to end for deferred releases) spans pos.
func localHeldAt(events []lockEvent, pos, end token.Pos) heldSet {
	h := make(heldSet)
	for _, acq := range events {
		if !acq.acquire || acq.deferred || acq.key == "" {
			continue
		}
		if acq.pos < pos && pos < regionEnd(acq, events, end) {
			h[acq.key] = h[acq.key] || !acq.read
		}
	}
	return h
}

// collectGuardedFields walks every package's struct declarations for
// guardedby directives and "guarded by" prose, reporting malformed
// directives and unenforced prose contracts.
func collectGuardedFields(pass *analysis.ModulePass) map[*types.Var]*guardedField {
	out := make(map[*types.Var]*guardedField)
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						collectFieldDirective(pass, pkg, ts, st, field, out)
					}
				}
			}
		}
	}
	return out
}

func collectFieldDirective(pass *analysis.ModulePass, pkg *analysis.Package, ts *ast.TypeSpec, st *ast.StructType, field *ast.Field, out map[*types.Var]*guardedField) {
	spec, dirPos, found := fieldGuardedbySpec(field)
	if !found {
		if pos, prose := fieldGuardedProse(field); prose && len(field.Names) > 0 {
			pass.Reportf(pos,
				"field %s.%s documents a lock contract in prose (\"guarded by\") but carries no //cplint:guardedby directive — convert it so mutguard enforces the contract",
				ts.Name.Name, field.Names[0].Name)
		}
		return
	}
	if len(field.Names) == 0 {
		pass.Reportf(dirPos, "//cplint:guardedby on an embedded field is not supported; name the field")
		return
	}
	if spec == "" {
		pass.Reportf(dirPos, "//cplint:guardedby needs a mutex: '//cplint:guardedby <mutex>' where <mutex> is a sibling field, Type.field, or a package-level variable")
		return
	}
	mkey, ok := resolveMutexSpec(pkg, ts, st, spec)
	if !ok {
		pass.Reportf(dirPos,
			"//cplint:guardedby %s does not resolve to a sync.Mutex or sync.RWMutex (looked for a sibling field of %s, a same-package Type.field, and a package-level variable)",
			spec, ts.Name.Name)
		return
	}
	for _, name := range field.Names {
		v, ok := pkg.Info.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		out[v] = &guardedField{
			fieldVar: v,
			fieldKey: pkg.Types.Name() + "." + ts.Name.Name + "." + name.Name,
			mutexKey: mkey,
			mutexStr: spec,
		}
	}
}

// fieldGuardedbySpec extracts the directive's mutex spec from a field's doc
// or trailing comment. found reports whether the directive is present at all
// (spec may be empty — malformed). Only the first whitespace-separated token
// is the spec; anything after it is free-form prose.
func fieldGuardedbySpec(field *ast.Field) (spec string, pos token.Pos, found bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := commentDirectiveText(c)
			if !strings.HasPrefix(text, guardedbyDirective) {
				continue
			}
			rest := strings.TrimPrefix(text, guardedbyDirective)
			if rest != "" && !strings.HasPrefix(rest, " ") {
				continue // some other directive sharing the prefix
			}
			spec, _, _ = strings.Cut(strings.TrimSpace(rest), " ")
			return spec, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// commentDirectiveText normalizes one comment to its directive text.
func commentDirectiveText(c *ast.Comment) string {
	text := c.Text
	if strings.HasPrefix(text, "/*") {
		text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
	} else {
		text = strings.TrimPrefix(text, "//")
	}
	return strings.TrimSpace(text)
}

// fieldGuardedProse reports whether the field's comments contain a "guarded
// by" prose contract.
func fieldGuardedProse(field *ast.Field) (token.Pos, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if strings.Contains(strings.ToLower(cg.Text()), "guarded by") {
			return cg.Pos(), true
		}
	}
	return token.NoPos, false
}

// resolveMutexSpec resolves a directive's mutex spec to a canonical mutex
// key under the same scheme mutexKey uses for lock call sites.
func resolveMutexSpec(pkg *analysis.Package, ts *ast.TypeSpec, st *ast.StructType, spec string) (string, bool) {
	pkgName := pkg.Types.Name()
	if typeName, fieldName, qualified := strings.Cut(spec, "."); qualified {
		obj := pkg.Types.Scope().Lookup(typeName)
		if obj == nil {
			return "", false
		}
		named := namedOf(obj.Type())
		if named == nil {
			return "", false
		}
		stru, ok := named.Underlying().(*types.Struct)
		if !ok {
			return "", false
		}
		for i := 0; i < stru.NumFields(); i++ {
			f := stru.Field(i)
			if f.Name() == fieldName && isMutexVar(f.Type()) {
				return pkgName + "." + typeName + "." + fieldName, true
			}
		}
		return "", false
	}
	// Sibling field of the same struct.
	for _, sib := range st.Fields.List {
		for _, name := range sib.Names {
			if name.Name == spec {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok && isMutexVar(v.Type()) {
					return pkgName + "." + ts.Name.Name + "." + spec, true
				}
				return "", false
			}
		}
	}
	// Package-level mutex variable.
	if obj := pkg.Types.Scope().Lookup(spec); obj != nil {
		if v, ok := obj.(*types.Var); ok && isMutexVar(v.Type()) {
			return pkgName + "." + spec, true
		}
	}
	return "", false
}

func isMutexVar(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && isSyncMutexType(named)
}

// guardedAccess is one read or write of a guarded field.
type guardedAccess struct {
	sel   *ast.SelectorExpr
	gf    *guardedField
	write bool
}

// checkGuardedAccesses verifies every guarded-field access in n against the
// held set at that point: local regions plus the function's held-on-entry
// set. Function literals are checked with the held set at their definition
// point (go-spawned literals: nothing).
func checkGuardedAccesses(pass *analysis.ModulePass, n *analysis.CallNode, guarded map[*types.Var]*guardedField, evs []lockEvent, entryHeld heldSet, callers map[*types.Func][]*analysis.CallNode, goCalls map[*ast.CallExpr]bool) {
	info := n.Pkg.Info
	fresh := freshLattice(info, n)
	bodyEnd := n.Decl.Body.End()

	report := func(a guardedAccess, held heldSet) {
		verb := "read"
		if a.write {
			verb = "write to"
		}
		if ex, ok := held[a.gf.mutexKey]; ok {
			if a.write && !ex {
				pass.Reportf(a.sel.Pos(),
					"%s %s while holding %s only for reading (RLock): writes need the exclusive lock — concurrent readers can observe the torn update",
					verb, a.gf.fieldKey, a.gf.mutexStr)
			}
			return
		}
		chain := lockFreeChain(n.Func, a.gf.mutexKey, callers, pass, 0)
		suffix := ""
		if chain != "" {
			suffix = " (example lock-free path: " + chain + ")"
		}
		pass.Reportf(a.sel.Pos(),
			"%s %s outside its //cplint:guardedby region: %s is not held in %s%s — acquire it, or move the access into a caller's locked region",
			verb, a.gf.fieldKey, a.gf.mutexStr, analysis.FuncDisplay(n.Func), suffix)
	}

	check := func(root ast.Node, heldCtx func(pos token.Pos) heldSet) {
		for _, a := range guardedAccessesIn(info, root, guarded) {
			if fresh.Aliases(a.sel.X) {
				continue // freshly constructed object: not shared yet
			}
			report(a, heldCtx(a.sel.Pos()))
		}
	}

	// Top level: local regions plus held-on-entry.
	check(n.Decl.Body, func(pos token.Pos) heldSet {
		return unionHeld(localHeldAt(evs, pos, bodyEnd), entryHeld)
	})

	// Function literals: context at the definition point (or nothing when
	// go-spawned), plus the literal's own regions.
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		var lit *ast.FuncLit
		spawned := false
		switch x := node.(type) {
		case *ast.GoStmt:
			if l, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				lit, spawned = l, true
			}
		case *ast.FuncLit:
			lit = x
		}
		if lit == nil {
			return true
		}
		outer := heldSet{}
		if !spawned {
			outer = unionHeld(localHeldAt(evs, lit.Pos(), bodyEnd), entryHeld)
		}
		litEvs, _ := scanLockBody(info, lit.Body)
		check(lit.Body, func(pos token.Pos) heldSet {
			return unionHeld(localHeldAt(litEvs, pos, lit.Body.End()), outer)
		})
		return !spawned // the GoStmt branch already consumed its literal
	})
}

// guardedAccessesIn collects guarded-field selector accesses in root,
// classifying writes via the parent node (assignment LHS, inc/dec, address-
// taken). Nested function literals are excluded — callers scan them with
// their own held context. Composite-literal keys never appear as selectors,
// so initialization is exempt by construction.
func guardedAccessesIn(info *types.Info, root ast.Node, guarded map[*types.Var]*guardedField) []guardedAccess {
	var out []guardedAccess
	var stack []ast.Node
	skipLits := root
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != skipLits {
			return false
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		gf, ok := guarded[v]
		if !ok {
			return true
		}
		out = append(out, guardedAccess{sel: sel, gf: gf, write: isWriteContext(stack, sel)})
		return true
	})
	return out
}

// isWriteContext reports whether the selector at the top of the stack is
// written: an assignment LHS (plain or compound), an inc/dec operand, or an
// address-taken operand (the pointer can be written through).
func isWriteContext(stack []ast.Node, sel *ast.SelectorExpr) bool {
	// stack ends with sel; walk up through any parens.
	i := len(stack) - 2
	cur := ast.Node(sel)
	for i >= 0 {
		if p, ok := stack[i].(*ast.ParenExpr); ok {
			cur = p
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	switch p := stack[i].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == cur {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(p.X) == cur
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// freshLattice builds the constructor-exemption lattice: objects reachable
// from composite literals or new() created in this function are not shared
// yet, so unlocked initialization of their guarded fields is fine.
func freshLattice(info *types.Info, n *analysis.CallNode) *analysis.AliasLattice {
	al := &analysis.AliasLattice{Info: info, IsRoot: func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					return b.Name() == "new"
				}
			}
		}
		return false
	}}
	al.Compute(analysis.NewCFG(n.Decl.Body))
	return al
}

// lockFreeChain renders an example caller chain along which mkey is not
// held, ending at f — evidence for why a helper's held-on-entry set lacks
// the mutex. "" when f has no analyzed callers (it is itself an entry
// point).
func lockFreeChain(f *types.Func, mkey string, callers map[*types.Func][]*analysis.CallNode, pass *analysis.ModulePass, depth int) string {
	if depth >= 6 {
		return analysis.FuncDisplay(f)
	}
	cs := callers[f]
	if len(cs) == 0 {
		return ""
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Decl.Pos() < cs[j].Decl.Pos() })
	// Pick the first caller that does not locally hold the mutex anywhere —
	// a deterministic witness; fall back to the first caller.
	witness := cs[0]
	for _, c := range cs {
		evs, _ := scanLockBody(c.Pkg.Info, c.Decl.Body)
		holds := false
		for _, ev := range evs {
			if ev.acquire && ev.key == mkey {
				holds = true
				break
			}
		}
		if !holds {
			witness = c
			break
		}
	}
	prefix := lockFreeChain(witness.Func, mkey, callers, pass, depth+1)
	if prefix == "" {
		prefix = analysis.FuncDisplay(witness.Func)
	}
	return prefix + " → " + analysis.FuncDisplay(f)
}

// reportMisplacedGuardedby flags guardedby comments that are not attached to
// a struct field — they guard nothing.
func reportMisplacedGuardedby(pass *analysis.ModulePass) {
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			attached := make(map[*ast.CommentGroup]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if field.Doc != nil {
						attached[field.Doc] = true
					}
					if field.Comment != nil {
						attached[field.Comment] = true
					}
				}
				return true
			})
			for _, cg := range file.Comments {
				if attached[cg] {
					continue
				}
				for _, c := range cg.List {
					if strings.HasPrefix(commentDirectiveText(c), guardedbyDirective) {
						pass.Reportf(c.Pos(),
							"misplaced //cplint:guardedby: the directive must be a struct field's doc or trailing comment; here it guards nothing")
					}
				}
			}
		}
	}
}
