package analyzers

import (
	"go/ast"
	"go/types"

	"crowdplanner/internal/analysis"
)

// Ctxflow enforces the PR 2 context-propagation discipline with two checks:
//
//  1. An exported function or method that accepts a context.Context must
//     observe it — reference the parameter at least once (pass it along,
//     check ctx.Err(), select on ctx.Done()). An ignored or blank ctx
//     parameter advertises cancellation support the function does not have.
//
//  2. Inside any function that already receives a context.Context or an
//     *http.Request, calls to context.Background() / context.TODO() are
//     flagged: a caller context is in scope and must be derived from
//     (handlers use r.Context()). Detached work that intentionally outlives
//     the request keeps Background with an annotation saying so.
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "exported funcs must observe their ctx; no context.Background/TODO where a caller context is in scope",
	Run:  runCtxflow,
}

func runCtxflow(pass *analysis.Pass) {
	info := pass.Pkg.Info
	isCtx := func(t types.Type) bool { return isNamedType(t, "context", "Context") }
	isReq := func(t types.Type) bool { return isNamedType(t, "net/http", "Request") }

	for _, file := range pass.Pkg.Files {
		// Check 1: exported declarations must observe their ctx parameter.
		for _, fd := range enclosingFuncs(file) {
			if !fd.Name.IsExported() || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				ft := info.TypeOf(field.Type)
				if ft == nil || !isCtx(ft) {
					continue
				}
				if len(field.Names) == 0 {
					pass.Reportf(field.Pos(),
						"exported %s takes an unnamed context.Context it can never observe; name it and use it, or drop the parameter",
						fd.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if name.Name == "_" {
						pass.Reportf(name.Pos(),
							"exported %s discards its context.Context parameter; name it and use it, or drop the parameter",
							fd.Name.Name)
						continue
					}
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					used := false
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
							used = true
							return false
						}
						return !used
					})
					if !used {
						pass.Reportf(name.Pos(),
							"exported %s accepts %s but never observes it; check %s.Err()/%s.Done() or pass it to callees (callers expect cancellation to propagate)",
							fd.Name.Name, name.Name, name.Name, name.Name)
					}
				}
			}
		}

		// Check 2: Background/TODO where a caller context is available.
		// funcHasCaller reports whether the literal/declared function's own
		// parameters include a ctx or *http.Request.
		paramsHaveCaller := func(ft *ast.FuncType) bool {
			if ft.Params == nil {
				return false
			}
			for _, field := range ft.Params.List {
				t := info.TypeOf(field.Type)
				if t == nil {
					continue
				}
				if isCtx(t) || isReq(t) {
					return true
				}
			}
			return false
		}
		var checkBody func(body ast.Node)
		checkBody = func(body ast.Node) {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if f := calleeFunc(info, call); isPkgFunc(f, "context", "Background", "TODO") {
					pass.Reportf(call.Pos(),
						"context.%s() called where a caller context is in scope: derive from the incoming ctx (handlers: r.Context()); if this work must outlive the caller, annotate why",
						f.Name())
				}
				return true
			})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && paramsHaveCaller(fn.Type) {
					checkBody(fn.Body)
					return false // body covered, including nested literals
				}
			case *ast.FuncLit:
				if paramsHaveCaller(fn.Type) {
					checkBody(fn.Body)
					return false
				}
			}
			return true
		})
	}
}
