package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, analyzers.Detorder,
		"../testdata/src/detorder", "crowdplanner/internal/truth/detorderfixture")
}

// TestDetorderScope checks the same violation shapes stay silent outside
// the deterministic package families.
func TestDetorderScope(t *testing.T) {
	analysistest.Run(t, analyzers.Detorder,
		"../testdata/src/detorder_scope", "crowdplanner/internal/geo/scopefixture")
}
