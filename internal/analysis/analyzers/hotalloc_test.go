package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

// TestHotalloc checks one finding per flagged allocation kind inside a
// //cplint:hotpath function, the transitive chain through a helper package,
// the sanctioned pooled-append + suppressed-make shape, and the
// misplaced-directive diagnostic.
func TestHotalloc(t *testing.T) {
	analysistest.RunModule(t, analyzers.Hotalloc,
		"../testdata/mod/hotalloc", map[string]string{
			"crowdplanner/internal/routing/allochelp": "allochelp",
			"crowdplanner/internal/routing/hotuse":    "hotuse",
		})
}
