package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Shared machinery for the lock-discipline analyzers (lockappend,
// lockorder): canonical mutex identity, and a per-function scan producing
// lock events and call sites in source order.

// lockEvent is one Lock/RLock/Unlock/RUnlock call in a function body.
type lockEvent struct {
	pos      token.Pos
	key      string // canonical mutex identity (see mutexKey)
	recv     string // rendered receiver expression, e.g. "s.mu", for messages
	acquire  bool
	read     bool // RLock/RUnlock: a shared (read) region, not exclusive
	deferred bool
}

// regionCall is one non-lock call site in a function body, outside nested
// function literals.
type regionCall struct {
	pos    token.Pos
	callee *types.Func // nil for unresolvable calls
}

// mutexOp classifies f as a sync.Mutex/RWMutex lock-family method.
func mutexOp(f *types.Func) (string, bool) {
	switch {
	case isMethodOn(f, "sync", "Mutex", "Lock", "Unlock"),
		isMethodOn(f, "sync", "RWMutex", "Lock", "Unlock", "RLock", "RUnlock"):
		return f.Name(), true
	}
	return "", false
}

// mutexKey names the mutex a lock-family call operates on, canonically
// enough to match acquisition sites across functions and packages. Field
// mutexes become "pkg.Type.field" — one identity per declared field, the
// standard static-lock-analysis aggregation (all instances of core.System.mu
// share an identity) — package-level mutexes "pkg.var", embedded mutexes
// "pkg.Type.(embedded)". Receivers that cannot be canonicalized (locals,
// complex expressions) fall back to a position-qualified rendering, which
// still matches textually identical sites within one function.
func mutexKey(info *types.Info, recv ast.Expr) string {
	recv = ast.Unparen(recv)
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		// s.mu, p.owner.mu: qualify the field by its owner's named type.
		if tv, ok := info.Types[x.X]; ok {
			if named := namedOf(tv.Type); named != nil {
				return qualifiedType(named) + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name() // package-level mutex
			}
			// Embedded mutex reached through the enclosing value (w.Lock()
			// where w's type embeds sync.Mutex): identify by the named type.
			if named := namedOf(v.Type()); named != nil && !isSyncMutexType(named) {
				return qualifiedType(named) + ".(embedded)"
			}
			// Function-local mutex: position-qualified so distinct locals in
			// different functions never alias.
			return fmt.Sprintf("local %s@%d", v.Name(), v.Pos())
		}
	}
	return exprString(recv)
}

// namedOf strips pointers and returns the named type beneath t, nil if none.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func qualifiedType(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

func isSyncMutexType(named *types.Named) bool {
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// scanLockBody walks body (a function or function-literal body) outside
// nested function literals, returning the lock events and the other call
// sites in source order. Deferred calls are recorded at their textual
// position; deferred unlocks are marked so region logic can treat the lock
// as held to function end.
func scanLockBody(info *types.Info, body ast.Node) (events []lockEvent, calls []regionCall) {
	var walk func(n ast.Node, inDefer bool)
	walk = func(root ast.Node, inDefer bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false // literal interiors do not run with the region
			case *ast.DeferStmt:
				walk(x.Call, true)
				return false
			case *ast.CallExpr:
				f := calleeFunc(info, x)
				if f == nil {
					return true
				}
				if kind, isLock := mutexOp(f); isLock {
					recv := ""
					key := ""
					if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
						recv = exprString(sel.X)
						key = mutexKey(info, sel.X)
					}
					events = append(events, lockEvent{
						pos: x.Pos(), key: key, recv: recv,
						acquire:  kind == "Lock" || kind == "RLock",
						read:     kind == "RLock" || kind == "RUnlock",
						deferred: inDefer,
					})
					return true
				}
				calls = append(calls, regionCall{pos: x.Pos(), callee: f})
			}
			return true
		})
	}
	walk(body, false)
	return events, calls
}

// regionEnd returns where the region opened by acq closes: the first plain
// (non-deferred) release of the same mutex after the acquire, or end when
// only deferred releases (or none) exist — a deferred unlock holds the lock
// to function end.
func regionEnd(acq lockEvent, events []lockEvent, end token.Pos) token.Pos {
	for _, rel := range events {
		if !rel.acquire && !rel.deferred && rel.key == acq.key && rel.pos > acq.pos && rel.pos < end {
			end = rel.pos
		}
	}
	return end
}
