package analyzers_test

import (
	"testing"

	"crowdplanner/internal/analysis/analysistest"
	"crowdplanner/internal/analysis/analyzers"
)

// TestGoroleak checks the leaked/observed goroutine pairs: observation
// through a cross-package static call chain, literal bodies with and without
// a signal, WaitGroup accounting, the unprovable function-value spawn, and
// the package-main exemption.
func TestGoroleak(t *testing.T) {
	analysistest.RunModule(t, analyzers.Goroleak,
		"../testdata/mod/goroleak", map[string]string{
			"crowdplanner/internal/worker/leakhelper": "leakhelper",
			"crowdplanner/internal/worker/leakuse":    "leakuse",
			"crowdplanner/internal/worker/leakmain":   "leakmain",
		})
}
