package analyzers

import (
	"go/ast"
	"go/types"

	"crowdplanner/internal/analysis"
)

// Goroleak requires every goroutine launched outside package main to have a
// provable termination signal: the spawned body must observe a
// context.Context (Done/Err/Deadline), receive from a channel (directly,
// via range, or via select), or account itself to a sync.WaitGroup
// (Done/Wait). A goroutine with none of those runs until process exit,
// holding its captures alive — in a server that ingests trajectory streams
// for days, "one goroutine per request that never returns" is a slow OOM
// with no stack trace pointing at the launch site.
//
// Observation summaries propagate through statically resolved calls: a
// goroutine whose body calls helper() is fine if helper (transitively)
// observes a signal. The propagation is lenient about nested function
// literals — an observation inside one still counts, since requiring proof
// that the literal runs would flag every worker that installs its receive
// loop via a closure. Calls through interfaces or function values cannot be
// expanded, so a goroutine whose only hope of termination sits behind one is
// reported: unprovable counts as leaked until annotated with a reason.
var Goroleak = &analysis.Analyzer{
	Name:      "goroleak",
	Doc:       "goroutines outside package main must observe ctx/channel/WaitGroup termination signals",
	RunModule: runGoroleak,
}

func runGoroleak(pass *analysis.ModulePass) {
	g := pass.Graph

	// Fixpoint over observation summaries: does this function (or anything it
	// statically calls) observe a termination signal?
	obs := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if obs[n.Func] {
				continue
			}
			if observesSignal(g, n.Pkg.Info, n.Decl.Body, obs) {
				obs[n.Func] = true
				changed = true
			}
		}
	}

	for _, pkg := range pass.Pkgs {
		if pkg.Types.Name() == "main" {
			continue // main wires shutdown by hand; its goroutines die with it
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if goroutineObserves(g, pkg.Info, gs, obs) {
					return true
				}
				pass.Reportf(gs.Pos(),
					"goroutine has no provable termination signal: its body never observes a context (Done/Err/Deadline), receives from a channel, or touches a sync.WaitGroup — plumb ctx or a done channel through, or annotate why it cannot leak")
				return true
			})
		}
	}
}

// goroutineObserves decides whether the goroutine launched by gs provably
// observes a termination signal.
func goroutineObserves(g *analysis.CallGraph, info *types.Info, gs *ast.GoStmt, obs map[*types.Func]bool) bool {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return observesSignal(g, info, fun.Body, obs)
	default:
		f := calleeFunc(info, gs.Call)
		if f == nil {
			return false // function value: unprovable
		}
		if isSignalObservation(f) {
			return true // e.g. go wg.Wait()
		}
		node := g.Node(f)
		return node != nil && obs[node.Func]
	}
}

// observesSignal reports whether root contains a direct termination-signal
// observation or a statically resolved call to a function that does. Nested
// function literals are included (lenient).
func observesSignal(g *analysis.CallGraph, info *types.Info, root ast.Node, obs map[*types.Func]bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true // channel receive
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true // range over channel drains until close
				}
			}
		case *ast.SelectStmt:
			found = true // select blocks on its channels; treat as observing
		case *ast.CallExpr:
			f := calleeFunc(info, x)
			if f == nil {
				return true
			}
			if isSignalObservation(f) {
				found = true
				return false
			}
			if node := g.Node(f); node != nil && obs[node.Func] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// isSignalObservation classifies f as a direct termination-signal API:
// context.Context's Done/Err/Deadline, or sync.WaitGroup's Done/Wait.
func isSignalObservation(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if f.Pkg().Path() == "context" {
		switch f.Name() {
		case "Done", "Err", "Deadline":
			return true
		}
		return false
	}
	return isMethodOn(f, "sync", "WaitGroup", "Done", "Wait")
}
