package analyzers

import (
	"fmt"
	"strings"

	"crowdplanner/internal/analysis"
)

// Annotations is the framework-level annotation checker: malformed
// //cplint: comments (unknown directive, unknown analyzer, missing reason)
// are reported under this name by the suppression machinery itself, which
// runs unconditionally. The entry exists so -list documents the name and so
// the catalogue matches the set of names findings can carry; it has no Run
// of its own.
var Annotations = &analysis.Analyzer{
	Name: "cplint",
	Doc:  "well-formedness of //cplint: annotations (framework check, always on)",
}

// All returns the full analyzer catalogue in stable (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Annotations, Ctxflow, Detorder,
		Floatdet, Goroleak, Hotalloc,
		Lockappend, Lockorder, Mutguard, Poolescape, Sentinel, Wallclock,
	}
}

// Names lists every analyzer name; this is the suppression vocabulary.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	return out
}

// Select resolves a comma-separated -only list against the catalogue.
func Select(only string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(only) == "" {
		return All(), nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(only, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run cplint -list)", n)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}
