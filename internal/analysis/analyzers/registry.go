package analyzers

import (
	"fmt"
	"strings"

	"crowdplanner/internal/analysis"
)

// All returns the full analyzer catalogue in stable (alphabetical) order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Ctxflow, Detorder, Lockappend, Sentinel, Wallclock}
}

// Names lists every analyzer name; this is the suppression vocabulary.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	return out
}

// Select resolves a comma-separated -only list against the catalogue.
func Select(only string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(only) == "" {
		return All(), nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(only, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run cplint -list)", n)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}
