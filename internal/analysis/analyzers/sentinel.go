package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdplanner/internal/analysis"
)

// Sentinel flags `err == ErrX` / `err != ErrX` comparisons against
// package-level sentinel error values. The /v1 error envelope (PR 2)
// classifies core sentinels with errors.Is so wrapped errors
// (fmt.Errorf("...: %w", ErrX)) still map to the right HTTP status; a raw
// `==` silently stops matching the moment anyone adds context to the error.
// Comparisons with nil are untouched.
var Sentinel = &analysis.Analyzer{
	Name: "sentinel",
	Doc:  "sentinel errors must be classified with errors.Is, not ==/!=",
	Run:  runSentinel,
}

func runSentinel(pass *analysis.Pass) {
	info := pass.Pkg.Info
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	// sentinelVar reports whether e names a package-level error variable
	// following the ErrX (or io.EOF-style) sentinel convention.
	sentinelVar := func(e ast.Expr) (string, bool) {
		var id *ast.Ident
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		default:
			return "", false
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "", false
		}
		name := v.Name()
		if !(len(name) > 3 && name[:3] == "Err") && name != "EOF" {
			return "", false
		}
		if !types.Implements(v.Type(), errorIface) {
			return "", false
		}
		return name, true
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			name, ok := sentinelVar(be.X)
			if !ok {
				name, ok = sentinelVar(be.Y)
			}
			if !ok {
				return true
			}
			pass.Reportf(be.Pos(),
				"sentinel error %s compared with %s: use errors.Is so wrapped errors (%%w) still classify",
				name, be.Op)
			return true
		})
	}
}
