package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the dataflow half of the tier: per-block def-use chains
// (reaching definitions over the CFG, with a taint-style use-def walk) and a
// conservative local may-alias lattice (the set of variables whose value may
// be reachable from a root expression via field/index/slice operations).
// Both are intraprocedural; interprocedural analyzers (poolescape, mutguard)
// compose them with call-graph summaries.

// Def is one definition of a variable inside a function body: an assignment,
// a short declaration, an inc/dec, or a range statement binding its
// per-iteration variables.
type Def struct {
	Var *types.Var
	// Node is the defining node; *ast.RangeStmt for loop-variable defs, the
	// *ast.AssignStmt / *ast.IncDecStmt / *ast.ValueSpec otherwise.
	Node ast.Node
	// Rhs lists the expressions the defined value derives from (the ranged
	// container for range defs; both operands for compound assignments).
	// Empty for defs with no useful source (var declarations without values).
	Rhs []ast.Expr
}

// DefUse holds the reaching-definitions solution for one function body.
type DefUse struct {
	cfg  *CFG
	info *types.Info
	// blockDefs lists each block's defs in execution order.
	blockDefs [][]*Def
	// in maps, per block, each variable to the defs reaching block entry.
	in []map[*types.Var][]*Def
}

// DefUse computes reaching definitions over the CFG. Nested function
// literals are opaque: their interiors neither define nor observe the
// enclosing function's chains (a capture-and-mutate closure is exactly the
// kind of site the analyzers flag by other means).
func (c *CFG) DefUse(info *types.Info) *DefUse {
	du := &DefUse{cfg: c, info: info}
	du.blockDefs = make([][]*Def, len(c.Blocks))
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			du.blockDefs[b.Index] = append(du.blockDefs[b.Index], collectDefs(info, n)...)
		}
	}

	// gen/kill per block: gen is the last def per variable, kill every
	// variable the block defines.
	gen := make([]map[*types.Var]*Def, len(c.Blocks))
	kill := make([]map[*types.Var]bool, len(c.Blocks))
	for i, defs := range du.blockDefs {
		gen[i] = make(map[*types.Var]*Def)
		kill[i] = make(map[*types.Var]bool)
		for _, d := range defs {
			gen[i][d.Var] = d
			kill[i][d.Var] = true
		}
	}

	du.in = make([]map[*types.Var][]*Def, len(c.Blocks))
	out := make([]map[*types.Var][]*Def, len(c.Blocks))
	for i := range out {
		du.in[i] = make(map[*types.Var][]*Def)
		out[i] = make(map[*types.Var][]*Def)
	}
	// Union fixpoint, iterating blocks in index order until stable.
	for changed := true; changed; {
		changed = false
		for _, b := range c.Blocks {
			i := b.Index
			// in[b] = union of out[pred]; predecessors found via successor
			// scan (the CFG stores forward edges only).
			for _, p := range c.Blocks {
				isPred := false
				for _, s := range p.Succs {
					if s == b {
						isPred = true
						break
					}
				}
				if !isPred {
					continue
				}
				for v, defs := range out[p.Index] {
					for _, d := range defs {
						if !containsDef(du.in[i][v], d) {
							du.in[i][v] = append(du.in[i][v], d)
							changed = true
						}
					}
				}
			}
			// out[b] = gen[b] ∪ (in[b] − kill[b]).
			for v, defs := range du.in[i] {
				if kill[i][v] {
					continue
				}
				for _, d := range defs {
					if !containsDef(out[i][v], d) {
						out[i][v] = append(out[i][v], d)
						changed = true
					}
				}
			}
			for v, d := range gen[i] {
				if !containsDef(out[i][v], d) {
					out[i][v] = append(out[i][v], d)
					changed = true
				}
			}
		}
	}
	return du
}

func containsDef(defs []*Def, d *Def) bool {
	for _, x := range defs {
		if x == d {
			return true
		}
	}
	return false
}

// DefsFor returns the definitions that may reach the given use: defs earlier
// in the use's own block when present, the block-entry reaching set
// otherwise. A use with no recorded defs (parameter, package-level variable,
// captured outer variable) returns nil.
func (du *DefUse) DefsFor(use *ast.Ident) []*Def {
	v, ok := du.info.Uses[use].(*types.Var)
	if !ok {
		return nil
	}
	b := du.cfg.BlockOf(use.Pos())
	if b == nil {
		return nil
	}
	// Scan the block's defs in order; the last def positioned before the
	// use's enclosing node shadows everything earlier and the in-set.
	var local *Def
	for _, d := range du.blockDefs[b.Index] {
		if d.Var == v && d.Node.Pos() < use.Pos() && !within(use.Pos(), d.Node) {
			local = d
		}
	}
	if local != nil {
		return []*Def{local}
	}
	return du.in[b.Index][v]
}

// within reports whether pos falls inside node's source span.
func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos <= node.End()
}

// Tainted reports whether expr's value may derive from a flagged source,
// walking use-def chains through local variables: srcExpr flags source
// sub-expressions directly (a map index, a channel receive), srcDef flags
// defining nodes (a range statement over a map). Either may be nil. The walk
// is bounded by a visited set over defs, so loop-carried chains terminate.
func (du *DefUse) Tainted(expr ast.Expr, srcExpr func(ast.Expr) bool, srcDef func(*Def) bool) bool {
	visited := make(map[*Def]bool)
	var walkExpr func(e ast.Expr) bool
	walkExpr = func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if sub, ok := n.(ast.Expr); ok && srcExpr != nil && srcExpr(sub) {
				found = true
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			for _, d := range du.DefsFor(id) {
				if visited[d] {
					continue
				}
				visited[d] = true
				if srcDef != nil && srcDef(d) {
					found = true
					return false
				}
				for _, rhs := range d.Rhs {
					if walkExpr(rhs) {
						found = true
						return false
					}
				}
			}
			return true
		})
		return found
	}
	return walkExpr(expr)
}

// collectDefs extracts the defs one CFG node contributes, in order. Nested
// function literals are skipped.
func collectDefs(info *types.Info, node ast.Node) []*Def {
	var defs []*Def
	varOf := func(id *ast.Ident) *types.Var {
		if id == nil || id.Name == "_" {
			return nil
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, _ := obj.(*types.Var)
		return v
	}
	add := func(id *ast.Ident, node ast.Node, rhs ...ast.Expr) {
		if v := varOf(id); v != nil {
			defs = append(defs, &Def{Var: v, Node: node, Rhs: rhs})
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// Only the statement's own bindings; the body belongs to other
			// blocks (and a RangeStmt node in a block is the head only).
			if k, ok := x.Key.(*ast.Ident); ok {
				add(k, x, x.X)
			}
			if v, ok := x.Value.(*ast.Ident); ok {
				add(v, x, x.X)
			}
			return false
		case *ast.AssignStmt:
			switch {
			case x.Tok == token.ASSIGN || x.Tok == token.DEFINE:
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if len(x.Rhs) == len(x.Lhs) {
						add(id, x, x.Rhs[i])
					} else {
						add(id, x, x.Rhs...)
					}
				}
			default: // compound: x op= y defines x from both operands
				if id, ok := x.Lhs[0].(*ast.Ident); ok {
					add(id, x, x.Rhs[0], x.Lhs[0])
				}
			}
		case *ast.IncDecStmt:
			if id, ok := x.X.(*ast.Ident); ok {
				add(id, x, x.X)
			}
		case *ast.ValueSpec:
			for i, id := range x.Names {
				if len(x.Values) == len(x.Names) {
					add(id, x, x.Values[i])
				} else if len(x.Values) > 0 {
					add(id, x, x.Values...)
				} else {
					add(id, x)
				}
			}
		}
		return true
	})
	return defs
}

// AliasLattice computes, over one CFG, the conservative set of local
// variables whose value may alias an object rooted at a flagged expression:
// anything reachable from a root via field selection, indexing, slicing,
// type assertion, address-taking, or composite-literal embedding. May-alias
// is a union lattice, iterated to fixpoint, so conditional aliasing counts.
type AliasLattice struct {
	Info *types.Info
	// IsRoot flags root expressions (a sync.Pool Get call, a parameter
	// identifier, a composite literal — whatever the analysis tracks).
	IsRoot func(ast.Expr) bool
	// CallAliases, when non-nil, reports whether a call's results alias,
	// given a callback testing whether argument expressions do (the hook
	// interprocedural analyzers feed with callee summaries).
	CallAliases func(call *ast.CallExpr, argAliases func(ast.Expr) bool) bool

	vars map[*types.Var]bool
}

// Vars returns the fixpoint alias set. Valid after Compute.
func (al *AliasLattice) Vars() map[*types.Var]bool { return al.vars }

// Compute runs the fixpoint over the CFG's blocks.
func (al *AliasLattice) Compute(c *CFG) {
	al.vars = make(map[*types.Var]bool)
	for changed := true; changed; {
		changed = false
		for _, b := range c.Blocks {
			for _, n := range b.Nodes {
				if al.transfer(n) {
					changed = true
				}
			}
		}
	}
}

// transfer applies one node's assignments to the alias set, reporting
// whether the set grew. Function-literal interiors are included: code inside
// a literal runs with access to the same locals, and a store made there
// still aliases.
func (al *AliasLattice) transfer(node ast.Node) bool {
	changed := false
	mark := func(v *types.Var) {
		if v != nil && !al.vars[v] && RefLike(v.Type()) {
			al.vars[v] = true
			changed = true
		}
	}
	// markLHS records that an aliasing value was stored at lhs: a plain
	// identifier becomes an alias; a store through a field/index of a local
	// (x.f = alias) makes the local itself reach the root.
	markLHS := func(lhs ast.Expr) {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if v := identVar(al.Info, x); v != nil {
				mark(v)
			}
		default:
			if base := BaseIdent(lhs); base != nil {
				if v := identVar(al.Info, base); v != nil {
					mark(v)
				}
			}
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
				return true // compound ops are arithmetic, never reference-valued
			}
			if len(x.Rhs) == len(x.Lhs) {
				for i, rhs := range x.Rhs {
					if al.Aliases(rhs) {
						markLHS(x.Lhs[i])
					}
				}
			} else if len(x.Rhs) == 1 {
				if al.Aliases(x.Rhs[0]) {
					for _, lhs := range x.Lhs {
						markLHS(lhs)
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range x.Names {
				switch {
				case len(x.Values) == len(x.Names) && al.Aliases(x.Values[i]):
					mark(identVar(al.Info, id))
				case len(x.Values) == 1 && al.Aliases(x.Values[0]):
					mark(identVar(al.Info, id))
				}
			}
		case *ast.RangeStmt:
			// Ranging over an aliasing container: the value variable holds
			// (possibly reference-typed) elements of the rooted object.
			if al.Aliases(x.X) {
				if k, ok := x.Key.(*ast.Ident); ok {
					mark(identVar(al.Info, k))
				}
				if v, ok := x.Value.(*ast.Ident); ok {
					mark(identVar(al.Info, v))
				}
			}
		}
		return true
	})
	return changed
}

// Aliases reports whether the expression's value may alias a tracked root:
// it is a root, an aliased variable, or derived from one through
// field/index/slice/assert/address operations or a composite literal. Only
// reference-carrying types can alias (loading a float out of a pooled slab
// yields a plain value).
func (al *AliasLattice) Aliases(e ast.Expr) bool {
	if e == nil {
		return false
	}
	e = ast.Unparen(e)
	if al.IsRoot != nil && al.IsRoot(e) {
		return true
	}
	if t := al.Info.TypeOf(e); t != nil && !RefLike(t) {
		return false
	}
	switch x := e.(type) {
	case *ast.Ident:
		v := identVar(al.Info, x)
		return v != nil && al.vars[v]
	case *ast.SelectorExpr:
		return al.Aliases(x.X)
	case *ast.IndexExpr:
		return al.Aliases(x.X)
	case *ast.SliceExpr:
		return al.Aliases(x.X)
	case *ast.StarExpr:
		return al.Aliases(x.X)
	case *ast.TypeAssertExpr:
		return al.Aliases(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return al.Aliases(x.X)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if al.Aliases(el) {
				return true
			}
		}
	case *ast.CallExpr:
		if al.CallAliases != nil {
			return al.CallAliases(x, al.Aliases)
		}
	}
	return false
}

// identVar resolves an identifier to its variable object (use or def).
func identVar(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// BaseIdent peels selectors, indexes, slices, stars, and parens down to the
// base identifier of an lvalue or access path, nil when the base is not an
// identifier (a call result, say).
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// RefLike reports whether values of t can carry a reference to shared
// backing memory: pointers, slices, maps, channels, functions, interfaces,
// and composites containing one. Plain numerics, strings, and booleans
// cannot (string bytes are immutable, so sharing them is unobservable).
func RefLike(t types.Type) bool {
	return refLikeDepth(t, 0)
}

func refLikeDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return true // unknown or absurdly nested: stay conservative
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLikeDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return refLikeDepth(u.Elem(), depth+1)
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
