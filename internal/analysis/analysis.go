// Package analysis is CrowdPlanner's project-invariant static-analysis
// framework: the machinery behind cmd/cplint. It type-checks the module with
// nothing but the standard library (go/parser + go/types, package discovery
// via `go list -json`, stdlib imports via the source importer) and runs a
// catalogue of project-specific analyzers over the typed syntax trees.
//
// The analyzers exist because CrowdPlanner's correctness rests on invariants
// that ordinary tests only sample: bit-identical deterministic replay (sorted
// iteration, seeded RNG), "appends never run under core locks" (the PR 3 WAL
// discipline), full context.Context propagation through /v1, and sentinel
// errors classified via errors.Is. This package makes those reviewer-memory
// rules mechanical.
//
// Findings can be suppressed per line with an annotation that must carry a
// written reason:
//
//	//cplint:ignore <analyzer>[,<analyzer>] -- <reason>
//	//cplint:ordered-irrelevant -- <reason>      (shorthand for detorder)
//
// A suppression comment applies to diagnostics on its own line and on the
// line directly below it, so both trailing and standalone placement work. An
// annotation without a reason is itself reported and suppresses nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Package is one type-checked package ready for analysis: the parsed files
// (with comments), the go/types results, and identity/location metadata.
type Package struct {
	// Path is the import path the package was checked under. Analyzers use
	// it to scope themselves (e.g. detorder only fires in deterministic
	// packages).
	Path string
	// Dir is the directory the source files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Diagnostic is one finding, positioned at a concrete file:line:col.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the classic compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Exactly one of Run and RunModule is
// set (both nil marks a framework-level entry that is documented in -list
// but executed by the framework itself, like the annotation checker). Run
// inspects a single package; RunModule runs once over the whole analyzed
// package set with a shared call graph — the shape interprocedural checks
// (cross-package lock discipline, goroutine lifetimes) need. Neither may
// retain its pass.
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by `cplint -list`.
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass carries one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one (analyzer, module) execution: every analyzed
// package plus the call graph built over them.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *CallGraph
	cfgs     *cfgCache
	fset     *token.FileSet
	report   func(Diagnostic)
}

// CFG returns the control-flow graph for a function body belonging to pkg.
// Graphs are built on first request and cached across every module analyzer
// in one Run, so three analyzers walking the same function pay for one
// construction; build time is attributed to pkg for the -timing report.
func (p *ModulePass) CFG(pkg *Package, body *ast.BlockStmt) *CFG {
	return p.cfgs.get(pkg.Path, body)
}

// cfgCache shares built CFGs across module analyzers and records
// construction time per package path.
type cfgCache struct {
	cfgs    map[*ast.BlockStmt]*CFG
	timings map[string]time.Duration
}

func newCFGCache() *cfgCache {
	return &cfgCache{cfgs: make(map[*ast.BlockStmt]*CFG), timings: make(map[string]time.Duration)}
}

func (c *cfgCache) get(pkgPath string, body *ast.BlockStmt) *CFG {
	if cfg, ok := c.cfgs[body]; ok {
		return cfg
	}
	start := time.Now()
	cfg := NewCFG(body)
	c.timings[pkgPath] += time.Since(start)
	c.cfgs[body] = cfg
	return cfg
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves pos against the shared file set.
func (p *ModulePass) Position(pos token.Pos) token.Position { return p.fset.Position(pos) }

// Result is the outcome of running analyzers over packages.
type Result struct {
	// Diagnostics holds the unsuppressed findings, sorted by position then
	// analyzer name, with exact duplicates removed.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by well-formed annotations.
	Suppressed int
	// AnalyzerTimings reports per-analyzer wall time (summed over packages
	// for per-package analyzers), in catalogue order. Surfaced by -timing.
	AnalyzerTimings []Timing
	// CallGraphTime is the time spent building the shared call graph, zero
	// when no module analyzer ran.
	CallGraphTime time.Duration
	// CFGTimings reports, per package path, the wall time spent building
	// control-flow graphs (each graph built once, shared across analyzers),
	// sorted by path. Empty when no analyzer requested a CFG.
	CFGTimings []Timing
	// CFGTime is the total CFG construction time across all packages.
	CFGTime time.Duration
}

// Timing is one named duration for the -timing report.
type Timing struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration"`
}

// Run executes every analyzer over every package, applies the per-line
// suppression annotations, and returns the surviving findings. Module
// analyzers run once over the whole set, sharing one call graph (built only
// if some selected analyzer needs it). known lists every analyzer name the
// suppression vocabulary accepts — pass the full registry even when only a
// subset runs, so `cplint -only wallclock` does not misreport annotations
// that reference other analyzers.
func Run(pkgs []*Package, analyzers []*Analyzer, known []string) Result {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	var res Result
	var graph *CallGraph
	var cfgs *cfgCache
	for _, a := range analyzers {
		if a.RunModule != nil && graph == nil {
			start := time.Now()
			graph = BuildCallGraph(pkgs)
			res.CallGraphTime = time.Since(start)
			cfgs = newCFGCache()
		}
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	for _, a := range analyzers {
		start := time.Now()
		switch {
		case a.RunModule != nil:
			a.RunModule(&ModulePass{Analyzer: a, Pkgs: pkgs, Graph: graph, cfgs: cfgs, fset: fset, report: report})
		case a.Run != nil:
			for _, pkg := range pkgs {
				a.Run(&Pass{Analyzer: a, Pkg: pkg, report: report})
			}
		}
		res.AnalyzerTimings = append(res.AnalyzerTimings, Timing{Name: a.Name, Duration: time.Since(start)})
	}
	if cfgs != nil {
		paths := make([]string, 0, len(cfgs.timings))
		for p := range cfgs.timings {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			res.CFGTimings = append(res.CFGTimings, Timing{Name: p, Duration: cfgs.timings[p]})
			res.CFGTime += cfgs.timings[p]
		}
	}
	sup := applySuppressions(diags, pkgs, known)
	res.Diagnostics, res.Suppressed = sup.Diagnostics, sup.Suppressed
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	res.Diagnostics = dedupe(res.Diagnostics)
	return res
}

// dedupe drops adjacent identical findings from a sorted slice. Two lock
// regions over the same receiver, say, may both cover one I/O call; the user
// needs the finding once.
func dedupe(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
