// Package analysis is CrowdPlanner's project-invariant static-analysis
// framework: the machinery behind cmd/cplint. It type-checks the module with
// nothing but the standard library (go/parser + go/types, package discovery
// via `go list -json`, stdlib imports via the source importer) and runs a
// catalogue of project-specific analyzers over the typed syntax trees.
//
// The analyzers exist because CrowdPlanner's correctness rests on invariants
// that ordinary tests only sample: bit-identical deterministic replay (sorted
// iteration, seeded RNG), "appends never run under core locks" (the PR 3 WAL
// discipline), full context.Context propagation through /v1, and sentinel
// errors classified via errors.Is. This package makes those reviewer-memory
// rules mechanical.
//
// Findings can be suppressed per line with an annotation that must carry a
// written reason:
//
//	//cplint:ignore <analyzer>[,<analyzer>] -- <reason>
//	//cplint:ordered-irrelevant -- <reason>      (shorthand for detorder)
//
// A suppression comment applies to diagnostics on its own line and on the
// line directly below it, so both trailing and standalone placement work. An
// annotation without a reason is itself reported and suppresses nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one type-checked package ready for analysis: the parsed files
// (with comments), the go/types results, and identity/location metadata.
type Package struct {
	// Path is the import path the package was checked under. Analyzers use
	// it to scope themselves (e.g. detorder only fires in deterministic
	// packages).
	Path string
	// Dir is the directory the source files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Diagnostic is one finding, positioned at a concrete file:line:col.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the classic compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run inspects a single package and
// reports findings through the pass; it must not retain the pass.
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by `cplint -list`.
	Doc string
	Run func(*Pass)
}

// Pass carries one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of running analyzers over packages.
type Result struct {
	// Diagnostics holds the unsuppressed findings, sorted by position then
	// analyzer name, with exact duplicates removed.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by well-formed annotations.
	Suppressed int
}

// Run executes every analyzer over every package, applies the per-line
// suppression annotations, and returns the surviving findings. known lists
// every analyzer name the suppression vocabulary accepts — pass the full
// registry even when only a subset runs, so `cplint -only wallclock` does not
// misreport annotations that reference other analyzers.
func Run(pkgs []*Package, analyzers []*Analyzer, known []string) Result {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	res := applySuppressions(diags, pkgs, known)
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	res.Diagnostics = dedupe(res.Diagnostics)
	return res
}

// dedupe drops adjacent identical findings from a sorted slice. Two lock
// regions over the same receiver, say, may both cover one I/O call; the user
// needs the finding once.
func dedupe(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
