package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody wraps a function body in a file, parses it, and builds its CFG.
// Block lookup in the tests is by source substring: markAt maps the first
// occurrence of a marker to a token.Pos, BlockOf resolves it to a block.
func parseBody(t *testing.T, body string) (*CFG, func(marker string) *CFGBlock) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	fd := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	cfg := NewCFG(fd.Body)
	tf := fset.File(file.Pos())
	markAt := func(marker string) *CFGBlock {
		t.Helper()
		off := strings.Index(src, marker)
		if off < 0 {
			t.Fatalf("marker %q not in source", marker)
		}
		b := cfg.BlockOf(tf.Pos(off))
		if b == nil {
			t.Fatalf("marker %q (offset %d) resolves to no block", marker, off)
		}
		return b
	}
	return cfg, markAt
}

func TestCFGStraightLine(t *testing.T) {
	cfg, at := parseBody(t, "x := 1\ny := x\n_ = y")
	entry := cfg.Entry()
	if at("x := 1") != entry || at("y := x") != entry || at("_ = y") != entry {
		t.Fatalf("straight-line statements split across blocks")
	}
	if !cfg.ReachableFrom(entry, cfg.Exit) {
		t.Fatalf("entry does not reach exit")
	}
}

func TestCFGIfElse(t *testing.T) {
	cfg, at := parseBody(t, `x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
x = 4`)
	cond, then, els, follow := at("x > 0"), at("x = 2"), at("x = 3"), at("x = 4")
	if then == els {
		t.Fatalf("then and else share a block")
	}
	for _, dst := range []*CFGBlock{then, els, follow} {
		if !cfg.ReachableFrom(cond, dst) {
			t.Fatalf("cond does not reach block %d", dst.Index)
		}
	}
	if !cfg.ReachableFrom(then, follow) || !cfg.ReachableFrom(els, follow) {
		t.Fatalf("branches do not rejoin at follow")
	}
	if cfg.ReachableFrom(then, els) || cfg.ReachableFrom(els, then) {
		t.Fatalf("branches reach each other")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	_, at := parseBody(t, `x := 1
if x > 0 {
	x = 2
}
x = 4`)
	cond, follow := at("x > 0"), at("x = 4")
	// The false edge: follow must be a direct successor of the cond block.
	direct := false
	for _, s := range cond.Succs {
		if s == follow {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("if without else lacks direct cond→follow edge")
	}
}

func TestCFGForLoop(t *testing.T) {
	cfg, at := parseBody(t, `sum := 0
for i := 0; i < 10; i++ {
	sum += i
}
_ = sum`)
	head, body, post, follow := at("i < 10"), at("sum += i"), at("i++"), at("_ = sum")
	if !cfg.ReachableFrom(body, post) || !cfg.ReachableFrom(post, head) {
		t.Fatalf("loop back edge body→post→head missing")
	}
	if !cfg.ReachableFrom(head, follow) {
		t.Fatalf("conditional loop head does not reach follow")
	}
	if !cfg.ReachableFrom(body, body) {
		t.Fatalf("loop body not reachable from itself via back edge")
	}
}

func TestCFGForeverLoopBlocksFollow(t *testing.T) {
	cfg, at := parseBody(t, `x := 0
for {
	x++
}
x = 9`)
	body, follow := at("x++"), at("x = 9")
	if cfg.ReachableFrom(cfg.Entry(), follow) {
		t.Fatalf("code after `for {}` must be unreachable from entry")
	}
	if cfg.ReachableFrom(cfg.Entry(), cfg.Exit) {
		t.Fatalf("function with only `for {}` must not reach exit")
	}
	if !cfg.ReachableFrom(body, body) {
		t.Fatalf("forever loop body lost its back edge")
	}
}

func TestCFGForeverLoopWithBreak(t *testing.T) {
	cfg, at := parseBody(t, `x := 0
for {
	if x > 3 {
		break
	}
	x++
}
x = 9`)
	if !cfg.ReachableFrom(cfg.Entry(), at("x = 9")) {
		t.Fatalf("break does not make follow reachable")
	}
}

func TestCFGRange(t *testing.T) {
	cfg, at := parseBody(t, `m := map[int]int{}
total := 0
for k, v := range m {
	total += k + v
}
_ = total`)
	head, body, follow := at("range m"), at("total += k"), at("_ = total")
	if !cfg.ReachableFrom(head, body) || !cfg.ReachableFrom(body, head) {
		t.Fatalf("range head/body edges missing")
	}
	if !cfg.ReachableFrom(head, follow) {
		t.Fatalf("range head does not reach follow (empty container path)")
	}
	if body == head {
		t.Fatalf("range body merged into head block")
	}
	// The body statement must resolve to the body block even though the
	// RangeStmt node in the head spans the whole loop.
	if at("total += k + v") != body {
		t.Fatalf("BlockOf resolved a body position to the wrong block")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg, at := parseBody(t, `x := 1
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
default:
	x = 30
}
x = 99`)
	c1, c2, def, follow := at("x = 10"), at("x = 20"), at("x = 30"), at("x = 99")
	if !cfg.ReachableFrom(c1, c2) {
		t.Fatalf("fallthrough edge from case 1 to case 2 missing")
	}
	if cfg.ReachableFrom(c2, def) {
		t.Fatalf("case 2 must not reach default (no fallthrough there)")
	}
	for _, c := range []*CFGBlock{c1, c2, def} {
		if !cfg.ReachableFrom(c, follow) {
			t.Fatalf("clause block %d does not reach follow", c.Index)
		}
	}
}

func TestCFGSwitchNoDefault(t *testing.T) {
	cfg, at := parseBody(t, `x := 1
switch x {
case 1:
	x = 10
}
x = 99`)
	head, follow := at("x {"), at("x = 99") // "x {" marks the tag expression

	direct := false
	for _, s := range head.Succs {
		if s == follow {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("switch without default lacks head→follow edge")
	}
	_ = cfg
}

func TestCFGTypeSwitch(t *testing.T) {
	cfg, at := parseBody(t, `var v any = 1
switch y := v.(type) {
case int:
	_ = y
	v = "int"
case string:
	v = "string"
}
v = nil`)
	ci, cs, follow := at(`v = "int"`), at(`v = "string"`), at("v = nil")
	if !cfg.ReachableFrom(ci, follow) || !cfg.ReachableFrom(cs, follow) {
		t.Fatalf("type-switch clauses do not reach follow")
	}
	if cfg.ReachableFrom(ci, cs) {
		t.Fatalf("type-switch clauses reach each other")
	}
}

func TestCFGSelect(t *testing.T) {
	cfg, at := parseBody(t, `a := make(chan int)
b := make(chan int)
select {
case v := <-a:
	_ = v
case b <- 1:
	_ = a
default:
	_ = b
}
a = nil`)
	recv, send, def, follow := at("v := <-a"), at("b <- 1"), at("_ = b"), at("a = nil")
	for _, c := range []*CFGBlock{recv, send, def} {
		if !cfg.ReachableFrom(cfg.Entry(), c) || !cfg.ReachableFrom(c, follow) {
			t.Fatalf("select clause block %d not wired head→clause→follow", c.Index)
		}
	}
	if recv == send || send == def {
		t.Fatalf("select clauses merged")
	}
}

func TestCFGEmptySelectBlocksForever(t *testing.T) {
	cfg, at := parseBody(t, `x := 0
_ = x
select {}
x = 1`)
	if cfg.ReachableFrom(cfg.Entry(), at("x = 1")) {
		t.Fatalf("code after select{} must be unreachable")
	}
	if cfg.ReachableFrom(cfg.Entry(), cfg.Exit) {
		t.Fatalf("select{} must not fall through to exit")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg, at := parseBody(t, `x := 0
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if i == j {
			break outer
		}
		x++
	}
}
x = 7`)
	brk, follow, innerBody := at("break outer"), at("x = 7"), at("x++")
	direct := false
	for _, s := range brk.Succs {
		if s == follow {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("labeled break does not edge directly to the outer follow")
	}
	if cfg.ReachableFrom(brk, innerBody) {
		t.Fatalf("labeled break must terminate its block")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	cfg, at := parseBody(t, `x := 0
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if i == j {
			continue outer
		}
		x++
	}
}
x = 7`)
	cont, outerPost, innerBody := at("continue outer"), at("i++"), at("x++")
	direct := false
	for _, s := range cont.Succs {
		if s == outerPost {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("labeled continue does not edge to the outer loop's post block")
	}
	if cfg.ReachableFrom(cont, innerBody) {
		// continue outer skips the rest of the inner body... but the outer
		// loop re-enters it, so reachability holds transitively — the direct
		// successor check above is the real assertion. Nothing to verify here.
		_ = innerBody
	}
}

func TestCFGGoto(t *testing.T) {
	cfg, at := parseBody(t, `x := 0
loop:
x++
if x < 3 {
	goto loop
}
goto done
x = 99
done:
_ = x`)
	gotoStmt, target, dead, done := at("goto loop"), at("x++"), at("x = 99"), at("_ = x")
	direct := false
	for _, s := range gotoStmt.Succs {
		if s == target {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("backward goto does not edge to its label block")
	}
	if cfg.ReachableFrom(cfg.Entry(), dead) {
		t.Fatalf("statement after unconditional goto must be unreachable")
	}
	if !cfg.ReachableFrom(cfg.Entry(), done) {
		t.Fatalf("forward goto target must be reachable")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	cfg, at := parseBody(t, `x := 1
if x > 0 {
	return
}
x = 2`)
	ret := at("return")
	if cfg.ReachableFrom(ret, at("x = 2")) {
		t.Fatalf("return block reaches following code")
	}
	direct := false
	for _, s := range ret.Succs {
		if s == cfg.Exit {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("return lacks direct edge to exit")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	cfg, at := parseBody(t, `x := 1
if x > 0 {
	panic("boom")
}
x = 2`)
	pan := at(`panic("boom")`)
	if cfg.ReachableFrom(pan, at("x = 2")) {
		t.Fatalf("panic block reaches following code")
	}
	direct := false
	for _, s := range pan.Succs {
		if s == cfg.Exit {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("panic lacks direct edge to exit")
	}
}

func TestCFGDeferRegistrationOrder(t *testing.T) {
	cfg, _ := parseBody(t, `defer println("first")
x := 1
if x > 0 {
	defer println("second")
}
defer println("third")`)
	if len(cfg.Defers) != 3 {
		t.Fatalf("got %d defers, want 3", len(cfg.Defers))
	}
	wantOrder := []string{`"first"`, `"second"`, `"third"`}
	for i, d := range cfg.Defers {
		call := d.Call
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Value != wantOrder[i] {
			t.Fatalf("Defers[%d] = %v, want arg %s (registration order)", i, call.Args[0], wantOrder[i])
		}
	}
}

func TestCFGBlockIndexesConsistent(t *testing.T) {
	cfg, _ := parseBody(t, `for i := 0; i < 4; i++ {
	switch i {
	case 0:
		continue
	case 1:
		break
	default:
		return
	}
}`)
	for i, b := range cfg.Blocks {
		if b.Index != i {
			t.Fatalf("Blocks[%d].Index = %d", i, b.Index)
		}
		for _, s := range b.Succs {
			if cfg.Blocks[s.Index] != s {
				t.Fatalf("successor of block %d has stale index", i)
			}
		}
	}
	if cfg.Entry() != cfg.Blocks[0] {
		t.Fatalf("entry is not Blocks[0]")
	}
}
