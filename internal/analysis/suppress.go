package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// suppression is one parsed, well-formed //cplint: annotation.
type suppression struct {
	file      string
	line      int
	analyzers []string
	reason    string
}

// covers reports whether the suppression silences analyzer findings on the
// given line: its own line (trailing comment) or the line directly below
// (standalone comment above the flagged statement).
func (s *suppression) covers(analyzer string, line int) bool {
	if line != s.line && line != s.line+1 {
		return false
	}
	for _, a := range s.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// parseAnnotations walks a package's comments for cplint annotations.
// Malformed annotations (unknown directive, unknown analyzer name, missing
// " -- reason") become diagnostics under the reserved analyzer name
// "cplint" and suppress nothing — a silent typo must not silently disable a
// check.
func parseAnnotations(pkg *Package, known []string) (sups []suppression, malformed []Diagnostic) {
	isKnown := func(name string) bool {
		for _, k := range known {
			if k == name {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, msg string) {
		malformed = append(malformed, Diagnostic{
			Analyzer: "cplint",
			Pos:      pkg.Fset.Position(pos),
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if strings.HasPrefix(c.Text, "/*") {
					text = strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "cplint:") {
					continue
				}
				directive, reason, hasReason := strings.Cut(text, " -- ")
				if !hasReason {
					// A trailing "--" with nothing after it is an empty
					// reason, not part of the directive.
					if d, ok := strings.CutSuffix(text, " --"); ok {
						directive, reason, hasReason = d, "", true
					}
				}
				directive = strings.TrimSpace(directive)
				reason = strings.TrimSpace(reason)
				var names []string
				switch {
				case directive == "cplint:hotpath" && reason == "" && !hasReason:
					// Not a suppression: marks the next function declaration
					// as an allocation-free hot path (see the hotalloc
					// analyzer, which also validates placement).
					continue
				case strings.HasPrefix(directive, "cplint:guardedby") && reason == "" && !hasReason:
					// Not a suppression: declares the mutex guarding a struct
					// field (see the mutguard analyzer, which validates the
					// spelling, placement, and mutex resolution).
					continue
				case directive == "cplint:ordered-irrelevant":
					names = []string{"detorder"}
				case strings.HasPrefix(directive, "cplint:ignore "):
					unknown := false
					for _, n := range strings.Split(strings.TrimPrefix(directive, "cplint:ignore "), ",") {
						n = strings.TrimSpace(n)
						if n == "" {
							continue
						}
						if !isKnown(n) {
							report(c.Pos(), "cplint annotation names unknown analyzer "+
								strconv.Quote(n)+"; known: "+strings.Join(known, ", "))
							unknown = true
							break
						}
						names = append(names, n)
					}
					if unknown {
						continue
					}
				default:
					report(c.Pos(), "malformed cplint annotation "+strconv.Quote(text)+
						": expected 'cplint:ignore <analyzer> -- <reason>' or 'cplint:ordered-irrelevant -- <reason>'")
					continue
				}
				if len(names) == 0 {
					report(c.Pos(), "cplint:ignore lists no analyzers")
					continue
				}
				if !hasReason || reason == "" {
					report(c.Pos(), "cplint annotation requires a written justification: append ' -- <why this is safe>'")
					continue
				}
				sups = append(sups, suppression{
					file:      pkg.Fset.Position(c.Pos()).Filename,
					line:      pkg.Fset.Position(c.Pos()).Line,
					analyzers: names,
					reason:    reason,
				})
			}
		}
	}
	return sups, malformed
}

// applySuppressions filters findings through the packages' annotations and
// appends the malformed-annotation diagnostics.
func applySuppressions(diags []Diagnostic, pkgs []*Package, known []string) Result {
	type fileKey string
	sups := make(map[fileKey][]suppression)
	var res Result
	for _, pkg := range pkgs {
		ss, malformed := parseAnnotations(pkg, known)
		for _, s := range ss {
			sups[fileKey(s.file)] = append(sups[fileKey(s.file)], s)
		}
		res.Diagnostics = append(res.Diagnostics, malformed...)
	}
	for _, d := range diags {
		suppressed := false
		for _, s := range sups[fileKey(d.Pos.Filename)] {
			if s.covers(d.Analyzer, d.Pos.Line) {
				suppressed = true
				break
			}
		}
		if suppressed {
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	return res
}
