package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural layer: a module-wide static call graph
// over the type-checked package set, with reachability and path-reporting
// utilities. Module-level analyzers (lockappend, lockorder, goroleak,
// hotalloc) use it to prove cross-package invariants a per-package pass
// cannot see — a mutex-held region in core that reaches a WAL append three
// packages away, a lock-order cycle split across files, a goroutine whose
// cancellation signal is observed only inside a helper package.
//
// Resolution model. Edges exist for statically resolvable calls only:
// package-level functions, and method calls whose receiver's static type is
// concrete (go/types resolves those to the implementing method, which is the
// devirtualization "where the concrete type is locally evident"). Calls
// through interface values and function values get conservative unknown-
// callee sites (Dynamic): the graph records that *something* is called there
// but refuses to guess what. Analyzers choose per invariant whether an
// unknown callee is safe (lockappend: not expanded, documented gap) or a
// finding (goroleak: an unprovable goroutine is a leak until shown
// otherwise). Generic functions are keyed by their origin object, so calls
// to different instantiations meet at one node.

// CallSite is one call expression inside a declared function.
type CallSite struct {
	// Callee is the resolved target, nil for calls through function values.
	// For interface-dispatch sites it is the interface method (useful for
	// naming the site), with Dynamic set.
	Callee *types.Func
	Call   *ast.CallExpr
	// Dynamic marks sites the graph cannot resolve to one implementation:
	// interface dispatch and function-value calls.
	Dynamic bool
	// InLiteral marks sites textually inside a nested function literal: they
	// do not execute when the enclosing declaration runs, only when (if
	// ever) the literal is invoked.
	InLiteral bool
	// InDefer marks sites whose execution is deferred to function exit.
	InDefer bool
}

// CallNode is one declared function or method of an analyzed package.
type CallNode struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out lists the node's call sites in source order, nested literals
	// included (marked InLiteral).
	Out []CallSite
}

// CallGraph is the module-wide static call graph over a set of analyzed
// packages. Nodes exist for every function declaration in the set; callees
// living outside the set (stdlib, unanalyzed packages) appear only as
// CallSite.Callee objects with no node of their own.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
	// order holds the nodes sorted by declaration position, the iteration
	// order every graph algorithm uses so results are deterministic.
	order []*CallNode
	// callers is the reverse adjacency: for each node, the call sites that
	// target it (caller resolved via site bookkeeping below).
	callers map[*types.Func][]callerRef
}

// callerRef is one reverse edge: caller invokes the target at Site.
type callerRef struct {
	caller *types.Func
	site   CallSite
}

// BuildCallGraph constructs the call graph for the given packages. The
// packages must come from one Loader so that types.Func objects are shared
// across package boundaries (an import resolves to the already-checked
// package object, not a reparse).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes:   make(map[*types.Func]*CallNode),
		callers: make(map[*types.Func][]callerRef),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				obj = origin(obj)
				node := &CallNode{Func: obj, Decl: fd, Pkg: pkg}
				collectSites(pkg.Info, fd.Body, node)
				g.nodes[obj] = node
				g.order = append(g.order, node)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		return g.order[i].Decl.Pos() < g.order[j].Decl.Pos()
	})
	for _, n := range g.order {
		for _, site := range n.Out {
			if site.Callee == nil || site.Dynamic || site.InLiteral {
				continue
			}
			if _, ok := g.nodes[site.Callee]; ok {
				g.callers[site.Callee] = append(g.callers[site.Callee],
					callerRef{caller: n.Func, site: site})
			}
		}
	}
	return g
}

// collectSites walks body recording every call expression, tracking literal
// nesting and defer context.
func collectSites(info *types.Info, body ast.Node, node *CallNode) {
	var walk func(n ast.Node, inLit, inDefer bool)
	walk = func(root ast.Node, inLit, inDefer bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				walk(x.Body, true, false)
				return false
			case *ast.DeferStmt:
				walk(x.Call, inLit, true)
				return false
			case *ast.GoStmt:
				// The spawned call itself runs on another goroutine; its
				// arguments evaluate here. Record the call site normally —
				// analyzers that care about go statements walk the AST.
				return true
			case *ast.CallExpr:
				site := resolveSite(info, x)
				site.InLiteral = inLit
				site.InDefer = inDefer
				node.Out = append(node.Out, site)
				return true
			}
			return true
		})
	}
	walk(body, false, false)
}

// resolveSite classifies one call expression: static callee, interface
// dispatch, or function value. Type conversions and builtins yield a
// non-dynamic site with a nil callee (they call nothing).
func resolveSite(info *types.Info, call *ast.CallExpr) CallSite {
	site := CallSite{Call: call}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fn].(type) {
		case *types.Func:
			site.Callee = origin(obj)
		case *types.Var:
			site.Dynamic = true // call through a function-typed variable
		case *types.TypeName, *types.Builtin, nil:
			// conversion or builtin: no callee
		default:
			site.Dynamic = true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func:
				site.Callee = origin(obj)
				if types.IsInterface(sel.Recv()) {
					site.Dynamic = true // interface dispatch: callee unknown
				}
			case *types.Var:
				site.Dynamic = true // function-typed field
			}
			return site
		}
		// Package-qualified reference (pkg.Func, pkg.Var, pkg.Type).
		switch obj := info.Uses[fn.Sel].(type) {
		case *types.Func:
			site.Callee = origin(obj)
		case *types.Var:
			site.Dynamic = true
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body was collected as InLiteral
		// sites; the invocation itself resolves to nothing nameable.
		site.Dynamic = true
	default:
		site.Dynamic = true
	}
	return site
}

// origin maps an instantiated generic function or method back to its
// declaration object, the node key. Safe on nil.
func origin(f *types.Func) *types.Func {
	if f == nil {
		return nil
	}
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

// Node returns the graph node for f (following generic origins), or nil when
// f is not declared in the analyzed set.
func (g *CallGraph) Node(f *types.Func) *CallNode {
	if f == nil {
		return nil
	}
	return g.nodes[origin(f)]
}

// Nodes returns every node in deterministic (declaration position) order.
func (g *CallGraph) Nodes() []*CallNode { return g.order }

// FuncDisplay renders a function for call-chain output: "core.Recommend",
// "diskstore.Store.append", "traj.IngestTrips".
func FuncDisplay(f *types.Func) string {
	if f == nil {
		return "?"
	}
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if f.Pkg() != nil {
		name = f.Pkg().Name() + "." + name
	}
	return name
}

// reachEntry records how one function reaches a target: the description of
// the ultimate hit and the next call site on a shortest chain toward it.
type reachEntry struct {
	desc string
	next CallSite // zero Call for direct hits (the hit is in this function)
	dist int
}

// ReachSet answers "can this function reach a flagged call site, and how".
// Build one with CallGraph.Reach.
type ReachSet struct {
	g       *CallGraph
	entries map[*types.Func]reachEntry
}

// Reach computes, for every function in the graph, whether it can reach a
// call site that direct classifies as a hit (non-empty description), walking
// statically resolved calls only. Sites inside nested function literals are
// not traversed (they do not run with the enclosing function), and functions
// rejected by through are treated as opaque: their interiors are not
// expanded, though call sites targeting them can still be direct hits.
// through == nil means traverse everything. The walk is a breadth-first
// search from the direct hits over reverse edges, so each reaching function
// records a minimal call chain; all tie-breaks follow declaration order,
// keeping reported chains deterministic.
func (g *CallGraph) Reach(direct func(CallSite) string, through func(*types.Func) bool) *ReachSet {
	rs := &ReachSet{g: g, entries: make(map[*types.Func]reachEntry)}
	traverse := func(f *types.Func) bool { return through == nil || through(f) }

	// Seed: functions containing a direct hit (first in source order wins).
	var frontier []*types.Func
	for _, n := range g.order {
		if !traverse(n.Func) {
			continue
		}
		for _, site := range n.Out {
			if site.InLiteral {
				continue
			}
			if desc := direct(site); desc != "" {
				rs.entries[n.Func] = reachEntry{desc: desc, next: site}
				frontier = append(frontier, n.Func)
				break
			}
		}
	}
	// BFS over reverse edges, level by level.
	for dist := 1; len(frontier) > 0; dist++ {
		var next []*types.Func
		for _, f := range frontier {
			for _, ref := range g.callers[f] {
				if _, seen := rs.entries[ref.caller]; seen || !traverse(ref.caller) {
					continue
				}
				rs.entries[ref.caller] = reachEntry{
					desc: rs.entries[f].desc, next: ref.site, dist: dist,
				}
				next = append(next, ref.caller)
			}
		}
		// The per-level order influences nothing (every entry at one level
		// has the same distance, and within a level callers are discovered
		// from deterministically ordered seeds), but sort anyway so any
		// future tie-break stays stable.
		sort.Slice(next, func(i, j int) bool { return posOf(g, next[i]) < posOf(g, next[j]) })
		frontier = next
	}
	return rs
}

func posOf(g *CallGraph, f *types.Func) token.Pos {
	if n := g.nodes[f]; n != nil {
		return n.Decl.Pos()
	}
	return token.NoPos
}

// Reaches reports whether f can reach a hit, with its description.
func (r *ReachSet) Reaches(f *types.Func) (string, bool) {
	e, ok := r.entries[origin(f)]
	return e.desc, ok
}

// Chain renders the full call chain from f to the hit it reaches:
// "core.commitTruth → traj.IngestTrips → store append/IO (Log.Append)".
// Returns "" when f reaches nothing.
func (r *ReachSet) Chain(f *types.Func) string {
	f = origin(f)
	e, ok := r.entries[f]
	if !ok {
		return ""
	}
	out := FuncDisplay(f)
	for e.next.Call != nil && e.next.Callee != nil {
		nxt, ok := r.entries[origin(e.next.Callee)]
		if !ok {
			break // next hop is the hit itself (outside the analyzed set)
		}
		out += " → " + FuncDisplay(e.next.Callee)
		e = nxt
	}
	return out + " → " + e.desc
}

// SiteChain renders the chain for a flagged call site: the site's own callee
// followed by its chain. When the site itself is the hit (direct returns
// non-empty for it), callers should prefer that description; SiteChain
// covers the transitive case.
func (r *ReachSet) SiteChain(site CallSite) (string, bool) {
	if site.Callee == nil || site.Dynamic {
		return "", false
	}
	if _, ok := r.entries[origin(site.Callee)]; !ok {
		return "", false
	}
	return r.Chain(site.Callee), true
}
