package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseTyped parses and type-checks a whole file (no imports allowed — the
// tests stay importer-free) and returns the named function's CFG plus lookup
// helpers keyed by source substrings.
func parseTyped(t *testing.T, src, fn string) (*CFG, *types.Info, func(marker string) token.Pos) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "df_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var body *ast.BlockStmt
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			body = fd.Body
		}
	}
	if body == nil {
		t.Fatalf("function %s not found", fn)
	}
	tf := fset.File(file.Pos())
	posOf := func(marker string) token.Pos {
		t.Helper()
		off := strings.Index(src, marker)
		if off < 0 {
			t.Fatalf("marker %q not in source", marker)
		}
		return tf.Pos(off)
	}
	return NewCFG(body), info, posOf
}

// identAt finds the Ident starting exactly at pos.
func identAt(t *testing.T, cfg *CFG, pos token.Pos) *ast.Ident {
	t.Helper()
	var found *ast.Ident
	ast.Inspect(cfg.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Pos() == pos {
			found = id
		}
		return found == nil
	})
	if found == nil {
		t.Fatalf("no identifier at pos %v", pos)
	}
	return found
}

func TestDefUseShadowingInBlock(t *testing.T) {
	src := `package p
func f() int {
	x := 1
	x = 2
	return x
}`
	cfg, info, posOf := parseTyped(t, src, "f")
	du := cfg.DefUse(info)
	use := identAt(t, cfg, posOf("x\n}"))
	defs := du.DefsFor(use)
	if len(defs) != 1 {
		t.Fatalf("got %d reaching defs, want 1 (later def shadows)", len(defs))
	}
	if as, ok := defs[0].Node.(*ast.AssignStmt); !ok || as.Tok != token.ASSIGN {
		t.Fatalf("reaching def is %T, want the plain assignment", defs[0].Node)
	}
}

func TestDefUseBranchJoin(t *testing.T) {
	src := `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`
	cfg, info, posOf := parseTyped(t, src, "f")
	du := cfg.DefUse(info)
	use := identAt(t, cfg, posOf("x\n}"))
	defs := du.DefsFor(use)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs at join, want 2", len(defs))
	}
}

func TestDefUseRangeDef(t *testing.T) {
	src := `package p
func f(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}`
	cfg, info, posOf := parseTyped(t, src, "f")
	du := cfg.DefUse(info)
	use := identAt(t, cfg, posOf("v\n"))
	defs := du.DefsFor(use)
	if len(defs) != 1 {
		t.Fatalf("got %d defs for range value var, want 1", len(defs))
	}
	if _, ok := defs[0].Node.(*ast.RangeStmt); !ok {
		t.Fatalf("range var def node is %T, want *ast.RangeStmt", defs[0].Node)
	}
	if len(defs[0].Rhs) != 1 {
		t.Fatalf("range def should carry the ranged container as Rhs")
	}
}

func TestTaintedThroughLocals(t *testing.T) {
	src := `package p
func f(m map[int]float64) (float64, float64) {
	var a, b float64
	for _, v := range m {
		w := v * 2
		a += w
		b += 1.0
	}
	return a, b
}`
	cfg, info, posOf := parseTyped(t, src, "f")
	du := cfg.DefUse(info)
	fromRange := func(d *Def) bool {
		_, ok := d.Node.(*ast.RangeStmt)
		return ok
	}
	// a += w: w derives from the range value v — tainted.
	aUse := identAt(t, cfg, posOf("w\n"))
	if !du.Tainted(aUse, nil, fromRange) {
		t.Fatalf("accumulation of range-derived value not reported tainted")
	}
	// b += 1.0: a constant — order-independent, must not be tainted.
	bRhs := identAt(t, cfg, posOf("b += 1.0"))
	_ = bRhs
	lit := findBasicLit(cfg.Body, "1.0")
	if lit == nil {
		t.Fatalf("literal not found")
	}
	if du.Tainted(lit, nil, fromRange) {
		t.Fatalf("constant accumulation reported tainted")
	}
}

func findBasicLit(root ast.Node, val string) ast.Expr {
	var found ast.Expr
	ast.Inspect(root, func(n ast.Node) bool {
		if bl, ok := n.(*ast.BasicLit); ok && bl.Value == val {
			found = bl
		}
		return found == nil
	})
	return found
}

func TestAliasLatticeDerivation(t *testing.T) {
	src := `package p
type ws struct {
	path []int
	dist []float64
}
func get() *ws { return &ws{} }
func f() []int {
	w := get()
	p := w.path
	q := p[1:]
	fresh := make([]int, len(q))
	copy(fresh, q)
	d := w.dist[0]
	_ = d
	return fresh
}`
	cfg, info, posOf := parseTyped(t, src, "f")
	al := &AliasLattice{
		Info: info,
		IsRoot: func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "get"
		},
	}
	al.Compute(cfg)

	varAt := func(marker string) *types.Var {
		id := identAt(t, cfg, posOf(marker))
		return identVar(info, id)
	}
	if !al.Vars()[varAt("w := get()")] {
		t.Fatalf("root-assigned variable not in alias set")
	}
	if !al.Vars()[varAt("p := w.path")] {
		t.Fatalf("field-derived slice not in alias set")
	}
	if !al.Vars()[varAt("q := p[1:]")] {
		t.Fatalf("re-sliced alias not in alias set")
	}
	if al.Vars()[varAt("fresh := make")] {
		t.Fatalf("freshly made+copied slice wrongly in alias set")
	}
	if al.Vars()[varAt("d := w.dist[0]")] {
		t.Fatalf("scalar loaded from aliased slab wrongly in alias set")
	}
	// Expression-level checks.
	retExpr := identAt(t, cfg, posOf("fresh\n}"))
	if al.Aliases(retExpr) {
		t.Fatalf("returning the fresh copy must not count as aliasing")
	}
}

func TestAliasLatticeStoreIntoLocal(t *testing.T) {
	src := `package p
type box struct{ s []int }
func get() []int { return nil }
func f() *box {
	b := &box{}
	b.s = get()
	return b
}`
	cfg, info, posOf := parseTyped(t, src, "f")
	al := &AliasLattice{
		Info: info,
		IsRoot: func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "get"
		},
	}
	al.Compute(cfg)
	b := identVar(info, identAt(t, cfg, posOf("b := &box{}")))
	if !al.Vars()[b] {
		t.Fatalf("local holding a stored alias (b.s = root) not in alias set")
	}
}
