// Package analysistest runs analyzers over testdata fixture packages and
// checks their findings against `// want "regexp"` comments, the same
// harness idiom the x/tools analysis framework uses — reimplemented on the
// stdlib so the module keeps zero external dependencies.
//
// A fixture directory is one Go package (invisible to `go list ./...`
// because it lives under testdata/). It is type-checked under a caller
// chosen import path, which is how scoped analyzers are exercised: check a
// fixture under "crowdplanner/internal/truth/fixture" and detorder treats
// it as deterministic; check the same shapes under an experiments path and
// the allowlist applies.
//
// Expectations attach to the line the comment sits on and may list several
// patterns: `// want "first" "second"`. Suppression annotations are applied
// before matching, so fixtures assert both detection and suppression
// behavior; framework diagnostics about malformed annotations match wants
// like any other finding.
package analysistest

import (
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"crowdplanner/internal/analysis"
	"crowdplanner/internal/analysis/analyzers"
)

// wantRE pulls quoted patterns out of a `want "..." "..."` comment tail.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// commentWantRE finds the want marker inside a comment's text.
var commentWantRE = regexp.MustCompile(`(?:^|\s)want\s+("(?:[^"\\]|\\.)*"(?:\s+"(?:[^"\\]|\\.)*")*)`)

// expectation is one unmatched want pattern.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run loads the fixture package rooted at dir, type-checks it under asPath,
// runs the analyzer (with the framework's suppression layer), and diffs the
// findings against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	loader := analysis.NewLoader("")
	pkg, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	pkgs := []*analysis.Package{pkg}
	res := analysis.Run(pkgs, []*analysis.Analyzer{a}, analyzers.Names())
	diffWants(t, pkgs, res.Diagnostics)
}

// RunModule loads a multi-package fixture module: pkgs maps import paths to
// subdirectories of dir. Every package is registered as a fixture first, so
// the packages may import each other under those paths (which is the point —
// module analyzers are exercised on cross-package shapes per-package
// fixtures cannot express). Findings are diffed against want comments across
// all packages.
func RunModule(t *testing.T, a *analysis.Analyzer, dir string, pkgs map[string]string) {
	t.Helper()
	loader := analysis.NewLoader("")
	paths := make([]string, 0, len(pkgs))
	for path, sub := range pkgs {
		loader.RegisterFixture(path, filepath.Join(dir, sub))
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var loaded []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.LoadDir(filepath.Join(dir, pkgs[path]), path)
		if err != nil {
			t.Fatalf("loading fixture %s (%s): %v", pkgs[path], path, err)
		}
		loaded = append(loaded, pkg)
	}
	res := analysis.Run(loaded, []*analysis.Analyzer{a}, analyzers.Names())
	diffWants(t, loaded, res.Diagnostics)
}

// diffWants collects the packages' want comments and diffs diags against
// them: every diagnostic must match a want on its line, every want must be
// consumed by a diagnostic.
func diffWants(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := commentWantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range wantRE.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(q[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q[1], err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
