package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow layer of the dataflow tier: a CFG constructor
// over go/ast function bodies, covering every Go control-flow construct —
// if/else, all three for forms, range, switch and type switch (including
// fallthrough), select, labeled break and continue, goto, defer, and the
// panic/return edges into a single synthetic exit block. Dataflow analyses
// (dataflow.go) and the poolescape/mutguard/floatdet analyzers run over it.
//
// The model is deliberately simple: basic blocks hold AST nodes (statements
// and the control expressions that execute with them) in execution order, and
// edges are may-follow successors. Deferred calls are recorded separately in
// registration order — they execute at the exit block in reverse — and a
// statement that cannot complete normally (return, panic, break, goto)
// terminates its block with the appropriate edge. Blocks left without
// predecessors by a terminator (dead code after return) still build, so
// analyses see every node; reachability queries skip them naturally.

// CFGBlock is one basic block: a maximal sequence of nodes that execute
// together, plus the blocks control may transfer to next.
type CFGBlock struct {
	Index int
	// Nodes holds the block's statements and control expressions in
	// execution order. Composite statements contribute only the parts that
	// execute with this block (an if contributes its Init and Cond; the
	// branches are their own blocks). A RangeStmt appears as itself in its
	// loop-head block, where its per-iteration variables are defined.
	Nodes []ast.Node
	Succs []*CFGBlock
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Body *ast.BlockStmt
	// Blocks lists every block; Blocks[0] is the entry block. Exit is the
	// single synthetic exit: returns, panics, and normal fall-off-the-end
	// all edge into it.
	Blocks []*CFGBlock
	Exit   *CFGBlock
	// Defers holds the defer statements in registration order; they run at
	// Exit in reverse. A deferred call therefore executes on every path
	// that passes its registration point, after the rest of the function.
	Defers []*ast.DeferStmt
}

// Entry returns the function-entry block.
func (c *CFG) Entry() *CFGBlock { return c.Blocks[0] }

// NewCFG builds the control-flow graph of a function body. It never returns
// nil for a non-nil body.
func NewCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{Body: body}
	b := &cfgBuilder{cfg: c, labels: make(map[string]*labelInfo)}
	b.cur = b.newBlock() // entry, Blocks[0]
	c.Exit = b.newBlock()
	b.stmtList(body.List)
	b.edge(b.cur, c.Exit)
	return c
}

// ReachableFrom reports whether dst is reachable from src following successor
// edges (reflexively: a block reaches itself).
func (c *CFG) ReachableFrom(src, dst *CFGBlock) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, len(c.Blocks))
	stack := []*CFGBlock{src}
	seen[src.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == dst {
				return true
			}
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// BlockOf returns the block whose node list contains a node spanning pos, or
// nil. Positions inside a node (sub-expressions) resolve to the node's block;
// when several nodes span pos the smallest wins, so a statement inside a
// range body resolves to its own block, not to the RangeStmt head whose span
// covers the whole loop.
func (c *CFG) BlockOf(pos token.Pos) *CFGBlock {
	var best *CFGBlock
	var bestSpan token.Pos = -1
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				span := n.End() - n.Pos()
				if bestSpan < 0 || span < bestSpan {
					best, bestSpan = b, span
				}
			}
		}
	}
	return best
}

// labelInfo tracks one label's targets: the block its statement starts in
// (goto target), and — when the labeled statement is a loop, switch, or
// select — where labeled break and continue transfer to.
type labelInfo struct {
	start   *CFGBlock // goto target; created on first reference
	breakTo *CFGBlock
	contTo  *CFGBlock
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	cfg *CFG
	cur *CFGBlock

	// breakTo/contTo/fallTo are the innermost unlabeled targets, stacked by
	// the composite-statement builders.
	breakStack []*CFGBlock
	contStack  []*CFGBlock
	fallStack  []*CFGBlock

	labels map[string]*labelInfo
	// pendingLabel is set while building the statement a label names, so the
	// loop/switch builders can register their labeled targets.
	pendingLabel *labelInfo
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

// terminate ends the current block (its edges are already set) and starts a
// fresh one for whatever follows; if nothing follows, the fresh block stays
// empty and unreachable.
func (b *cfgBuilder) terminate() { b.cur = b.newBlock() }

func (b *cfgBuilder) labelFor(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{start: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a loop/switch/select statement,
// registering its break (and optionally continue) targets.
func (b *cfgBuilder) takeLabel(breakTo, contTo *CFGBlock) {
	if b.pendingLabel == nil {
		return
	}
	b.pendingLabel.breakTo = breakTo
	b.pendingLabel.contTo = contTo
	b.pendingLabel = nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.pendingLabel = nil
		b.stmtList(x.List)
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		li := b.labelFor(x.Label.Name)
		b.edge(b.cur, li.start)
		b.cur = li.start
		b.pendingLabel = li
		b.stmt(x.Stmt)
		b.pendingLabel = nil
	case *ast.ReturnStmt:
		b.add(x)
		b.edge(b.cur, b.cfg.Exit)
		b.terminate()
	case *ast.BranchStmt:
		b.branch(x)
	case *ast.DeferStmt:
		b.add(x)
		b.cfg.Defers = append(b.cfg.Defers, x)
	case *ast.ExprStmt:
		b.add(x)
		if isPanicExpr(x.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.terminate()
		}
	case *ast.IfStmt:
		b.ifStmt(x)
	case *ast.ForStmt:
		b.forStmt(x)
	case *ast.RangeStmt:
		b.rangeStmt(x)
	case *ast.SwitchStmt:
		b.switchStmt(x.Init, x.Tag, nil, x.Body, x)
	case *ast.TypeSwitchStmt:
		b.switchStmt(x.Init, nil, x.Assign, x.Body, x)
	case *ast.SelectStmt:
		b.selectStmt(x)
	default:
		// Assign, IncDec, Send, Go, Decl, and anything future: straight-line.
		b.pendingLabel = nil
		b.add(s)
	}
}

func (b *cfgBuilder) branch(x *ast.BranchStmt) {
	var target *CFGBlock
	switch x.Tok {
	case token.BREAK:
		if x.Label != nil {
			target = b.labelFor(x.Label.Name).breakTo
		} else if n := len(b.breakStack); n > 0 {
			target = b.breakStack[n-1]
		}
	case token.CONTINUE:
		if x.Label != nil {
			target = b.labelFor(x.Label.Name).contTo
		} else if n := len(b.contStack); n > 0 {
			target = b.contStack[n-1]
		}
	case token.GOTO:
		target = b.labelFor(x.Label.Name).start
	case token.FALLTHROUGH:
		if n := len(b.fallStack); n > 0 {
			target = b.fallStack[n-1]
		}
	}
	b.add(x)
	if target != nil {
		b.edge(b.cur, target)
	}
	// A branch with no resolvable target (malformed source) just terminates.
	b.terminate()
}

func (b *cfgBuilder) ifStmt(x *ast.IfStmt) {
	b.pendingLabel = nil
	if x.Init != nil {
		b.add(x.Init)
	}
	b.add(x.Cond)
	cond := b.cur
	follow := b.newBlock()

	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(x.Body)
	b.edge(b.cur, follow)

	if x.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(x.Else)
		b.edge(b.cur, follow)
	} else {
		b.edge(cond, follow)
	}
	b.cur = follow
}

func (b *cfgBuilder) forStmt(x *ast.ForStmt) {
	if x.Init != nil {
		b.add(x.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	if x.Cond != nil {
		head.Nodes = append(head.Nodes, x.Cond)
	}
	body := b.newBlock()
	follow := b.newBlock()
	b.edge(head, body)
	if x.Cond != nil {
		b.edge(head, follow) // for {} without cond exits only via break
	}
	contTo := head
	if x.Post != nil {
		post := b.newBlock()
		post.Nodes = append(post.Nodes, x.Post)
		b.edge(post, head)
		contTo = post
	}
	b.takeLabel(follow, contTo)
	b.breakStack = append(b.breakStack, follow)
	b.contStack = append(b.contStack, contTo)
	b.cur = body
	b.stmt(x.Body)
	b.edge(b.cur, contTo)
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.contStack = b.contStack[:len(b.contStack)-1]
	b.cur = follow
}

func (b *cfgBuilder) rangeStmt(x *ast.RangeStmt) {
	head := b.newBlock()
	head.Nodes = append(head.Nodes, x) // the range stmt itself: defines Key/Value per iteration
	b.edge(b.cur, head)
	body := b.newBlock()
	follow := b.newBlock()
	b.edge(head, body)
	b.edge(head, follow)
	b.takeLabel(follow, head)
	b.breakStack = append(b.breakStack, follow)
	b.contStack = append(b.contStack, head)
	b.cur = body
	b.stmt(x.Body)
	b.edge(b.cur, head)
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.contStack = b.contStack[:len(b.contStack)-1]
	b.cur = follow
}

// switchStmt builds expression and type switches: tag/assign evaluate in the
// head block, each clause is its own block, fallthrough chains clause bodies,
// and a missing default edges the head straight to the follow block.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, _ ast.Stmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	follow := b.newBlock()
	b.takeLabel(follow, nil)
	b.breakStack = append(b.breakStack, follow)

	var clauseBlocks []*CFGBlock
	var clauses []ast.Stmt
	if body != nil {
		clauses = body.List
	}
	for range clauses {
		clauseBlocks = append(clauseBlocks, b.newBlock())
	}
	hasDefault := false
	for i, cs := range clauses {
		blk := clauseBlocks[i]
		b.edge(head, blk)
		var caseBody []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			caseBody = cc.Body
		}
		// fallthrough target: the next clause's block (checked by the parser
		// to exist and not be in the last clause).
		if i+1 < len(clauseBlocks) {
			b.fallStack = append(b.fallStack, clauseBlocks[i+1])
		} else {
			b.fallStack = append(b.fallStack, nil)
		}
		b.cur = blk
		b.stmtList(caseBody)
		b.edge(b.cur, follow)
		b.fallStack = b.fallStack[:len(b.fallStack)-1]
	}
	if !hasDefault {
		b.edge(head, follow)
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = follow
}

func (b *cfgBuilder) selectStmt(x *ast.SelectStmt) {
	head := b.cur
	follow := b.newBlock()
	b.takeLabel(follow, nil)
	b.breakStack = append(b.breakStack, follow)
	for _, cs := range x.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, follow)
	}
	// select{} (no clauses) blocks forever: head keeps no successor, so
	// nothing after it is reachable — exactly the runtime behavior.
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = follow
}

// isPanicExpr reports whether e is a direct call to the panic builtin. The
// builder gives such statements a panic-return edge to Exit: deferred calls
// still run, nothing after does.
func isPanicExpr(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
