// Package sentinelfixture exercises the sentinel analyzer (which runs in
// every package, deterministic or not).
package sentinelfixture

import (
	"errors"
	"fmt"
	"io"
)

var ErrNoCandidates = errors.New("no candidates")

func eql(err error) bool {
	return err == ErrNoCandidates // want "sentinel error ErrNoCandidates compared with =="
}

func neq(err error) bool {
	return ErrNoCandidates != err // want "sentinel error ErrNoCandidates compared with !="
}

func stdlibSentinel(err error) bool {
	return err == io.EOF // want "sentinel error EOF compared with =="
}

func good(err error) bool {
	return errors.Is(err, ErrNoCandidates)
}

func nilCompare(err error) bool {
	return err == nil
}

func wrapped() error {
	return fmt.Errorf("mining: %w", ErrNoCandidates)
}

// localVar is not a package-level sentinel; untouched.
func localVar(err error) bool {
	errLocal := errors.New("local")
	return err == errLocal
}
