// Package ctxflowfixture exercises the ctxflow analyzer (which runs in
// every package).
package ctxflowfixture

import (
	"context"
	"net/http"
)

// Ignores advertises cancellation support it does not have.
func Ignores(ctx context.Context, n int) int { // want "accepts ctx but never observes it"
	return n * 2
}

// Blank discards the context outright.
func Blank(_ context.Context) {} // want "discards its context.Context"

// Unnamed cannot even reference its context.
func Unnamed(context.Context) {} // want "unnamed context.Context"

// Observes checks the context: fine.
func Observes(ctx context.Context) error {
	return ctx.Err()
}

// Forwards passes the context along: fine.
func Forwards(ctx context.Context) error {
	return Observes(ctx)
}

// unexportedIgnores is not part of the API surface; check 1 is scoped to
// exported declarations (unexported helpers are the callee's business).
func unexportedIgnores(ctx context.Context) {}

// Handler fabricates a fresh context although r.Context() is in scope.
func Handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "context.Background"
	_ = ctx
	_ = r.Context()
	w.WriteHeader(http.StatusOK)
}

// InnerLit: a literal nested in a ctx-taking function is still on the
// request path.
func InnerLit(ctx context.Context) func() error {
	_ = ctx.Err()
	return func() error {
		inner := context.TODO() // want "context.TODO"
		return inner.Err()
	}
}

// Detached keeps a justified Background for work outliving the request.
func Detached(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	//cplint:ignore ctxflow -- fixture: detached work must outlive the caller by design
	bg := context.Background()
	_ = bg
	return nil
}

// NoCallerCtx has no caller context in scope: Background is the only
// option and is not flagged.
func NoCallerCtx() error {
	ctx := context.Background()
	return ctx.Err()
}
