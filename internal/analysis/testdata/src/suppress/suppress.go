// Package suppressfixture exercises the framework's suppression layer:
// placement (same line, line above), the required reason string, unknown
// analyzer names, and malformed directives. It is run under the sentinel
// analyzer, whose findings are the easiest to stage.
package suppressfixture

import "errors"

var ErrBoom = errors.New("boom")

func suppressedSameLine(err error) bool {
	return err == ErrBoom //cplint:ignore sentinel -- fixture: same-line suppression
}

func suppressedAbove(err error) bool {
	//cplint:ignore sentinel -- fixture: standalone suppression covers the next line
	return err == ErrBoom
}

func missingReason(err error) bool {
	/*cplint:ignore sentinel*/ // want "requires a written justification"
	return err == ErrBoom      // want "sentinel error ErrBoom compared with =="
}

func unknownAnalyzer(err error) bool {
	/*cplint:ignore nosuchcheck -- typo*/ // want "unknown analyzer"
	return err == ErrBoom                 // want "sentinel error ErrBoom compared with =="
}

func wrongAnalyzer(err error) bool {
	//cplint:ignore detorder -- fixture: naming another analyzer must not silence sentinel
	return err == ErrBoom // want "sentinel error ErrBoom compared with =="
}

func malformedDirective(err error) bool {
	/*cplint:frobnicate -- nonsense*/ // want "malformed cplint annotation"
	return err == ErrBoom             // want "sentinel error ErrBoom compared with =="
}

func emptyReason(err error) bool {
	/*cplint:ignore sentinel -- */ // want "requires a written justification"
	return err == ErrBoom          // want "sentinel error ErrBoom compared with =="
}
