// Package scopefixture holds detorder-shaped violations and is checked
// under a NON-deterministic import path: the analyzer must stay silent, so
// this file carries no want comments.
package scopefixture

func keysLeak(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
