// Package detorderfixture exercises the detorder analyzer. It is checked
// under a deterministic import path by the analysistest harness.
package detorderfixture

import (
	"slices"
	"sort"
)

// keysLeak lets map order escape into the returned slice.
func keysLeak(m map[int]string) []int {
	var out []int
	for k := range m { // want "range over map m"
		out = append(out, k)
	}
	return out
}

// keysSorted follows the collect-then-sort idiom: accepted without
// annotation because a sort call follows the range in the same function.
func keysSorted(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// slicesSorted uses the slices.Sort family, also recognized.
func slicesSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// indirectSort sorts through a same-package helper the analyzer cannot see
// into; the range still needs an annotation (or a visible sort call).
func indirectSort(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map m"
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// sliceRange ranges a slice, never flagged.
func sliceRange(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// annotated drains a map with a justified order-irrelevance annotation.
func annotated(m map[int]string) int {
	n := 0
	//cplint:ordered-irrelevant -- counting entries is commutative
	for range m {
		n++
	}
	return n
}

// sortBeforeNotAfter sorts input first, then ranges a map: the sort does
// not follow the range, so the range is still flagged.
func sortBeforeNotAfter(xs []int, m map[int]bool) []int {
	sort.Ints(xs)
	var out []int
	for k := range m { // want "range over map m"
		out = append(out, k)
	}
	return out
}

// namedMapType is flagged through the named type's underlying map.
type counts map[string]int

func namedMap(c counts) []string {
	var out []string
	for k := range c { // want "range over map c"
		out = append(out, k)
	}
	return out
}

func sortStrings(xs []string) {
	sort.Strings(xs)
}
