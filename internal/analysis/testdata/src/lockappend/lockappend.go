// Package lockappendfixture exercises the lockappend analyzer. It imports
// the real storage interfaces so calls into the store layer resolve to the
// package the analyzer scopes on.
package lockappendfixture

import (
	"os"
	"sync"

	"crowdplanner/internal/store"
)

type sys struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	st  store.Store
	buf []store.TruthRecord
}

// appendUnderLock violates the WAL discipline directly: the fsync'd append
// runs while s.mu is held.
func (s *sys) appendUnderLock(rec store.TruthRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.AppendTruth(rec) // want "AppendTruth.* while s.mu is locked"
}

// appendAfterUnlock is the sanctioned walBatch shape: buffer under the
// lock, flush after the plain Unlock closes the region.
func (s *sys) appendAfterUnlock(rec store.TruthRecord) error {
	s.mu.Lock()
	s.buf = append(s.buf, rec)
	s.mu.Unlock()
	return s.flush()
}

// flush performs the appends; it carries an I/O summary.
func (s *sys) flush() error {
	for _, r := range s.buf {
		if err := s.st.AppendTruth(r); err != nil {
			return err
		}
	}
	return nil
}

// transitiveUnderLock reaches the append through a same-package call: the
// fixpoint propagation must see through flush.
func (s *sys) transitiveUnderLock() error {
	s.rw.Lock()
	defer s.rw.Unlock()
	return s.flush() // want "flush .* while s.rw is locked"
}

// fileUnderRLock blocks on file I/O while holding a read lock.
func (s *sys) fileUnderRLock(path string) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return os.WriteFile(path, nil, 0o644) // want "os.WriteFile.* while s.rw is locked"
}

// readUnderLock touches only memory: fine.
func (s *sys) readUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// litEscapesRegion builds a closure under the lock but runs it outside;
// calls inside nested literals are not tied to the region.
func (s *sys) litEscapesRegion(rec store.TruthRecord) error {
	s.mu.Lock()
	run := func() error { return s.st.AppendTruth(rec) }
	s.mu.Unlock()
	return run()
}

// annotated keeps a justified append under the lock.
func (s *sys) annotated(rec store.TruthRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//cplint:ignore lockappend -- fixture: single-owner mutex never contended on the serving path
	return s.st.AppendTruth(rec)
}

// distinctMutexOK: a lock on one receiver does not cover I/O after its own
// unlock even with another mutex still out of scope.
func (s *sys) distinctMutexOK(rec store.TruthRecord) error {
	s.mu.Lock()
	n := len(s.buf)
	s.mu.Unlock()
	_ = n
	return s.st.AppendTruth(rec)
}
