// Package allowfixture holds wallclock-shaped violations and is checked
// under an allowlisted import path (experiments): the analyzer must stay
// silent, so this file carries no want comments.
package allowfixture

import (
	"math/rand"
	"time"
)

func measure() time.Time {
	return time.Now()
}

func jitter() int {
	return rand.Intn(100)
}
