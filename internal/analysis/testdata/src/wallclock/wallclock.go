// Package wallclockfixture exercises the wallclock analyzer under a
// deterministic import path.
package wallclockfixture

import (
	"math/rand"
	"time"
)

func now() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package"
}

func deadline(t1 time.Time) time.Duration {
	return time.Until(t1) // want "time.Until in deterministic package"
}

// parameterized takes the instant as a parameter: the sanctioned shape.
func parameterized(now time.Time, t0 time.Time) time.Duration {
	return now.Sub(t0)
}

func globalDraw() int {
	return rand.Intn(10) // want "global math/rand source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand source"
}

// seeded builds an explicit generator: constructors are not draws.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// annotated keeps a justified wall-clock read.
func annotated() time.Time {
	//cplint:ignore wallclock -- fixture: jitter source outside the replayed state
	return time.Now()
}
