// Package storefixture holds lockappend-shaped code and is checked under
// the store import path: the storage layer legitimately serializes its own
// file writes under its append mutex, so the analyzer must stay silent and
// this file carries no want comments.
package storefixture

import (
	"os"
	"sync"
)

type wal struct {
	mu sync.Mutex
	f  *os.File
}

func (w *wal) append(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(b); err != nil {
		return err
	}
	return w.f.Sync()
}
