// Package wspool is the pooled-workspace half of the poolescape fixture: a
// sync.Pool behind acquire/release wrappers, an alias-returning fill helper
// (the searchShared shape), and an escaping sink — everything the analyzer
// must resolve through call-graph summaries rather than annotations.
package wspool

import "sync"

// Space is the pooled workspace: Buf and path are slab memory recycled with
// the object.
type Space struct {
	Buf  []int
	path []int
}

var pool sync.Pool

// Acquire returns a pooled Space; ownership transfers to the caller (no Put
// here), so callers pair it with Release.
func Acquire() *Space {
	if v := pool.Get(); v != nil {
		return v.(*Space)
	}
	return &Space{Buf: make([]int, 64)}
}

// Release returns s to the pool.
func Release(s *Space) { pool.Put(s) }

// Fill computes into the workspace scratch and returns it: the result is
// backed by s.path, valid until the next Fill on s. Callers that keep it
// must copy.
func Fill(s *Space, n int) []int {
	s.path = s.path[:0]
	for i := 0; i < n; i++ {
		s.path = append(s.path, i)
	}
	return s.path
}

// sink is the package-level escape destination Stash writes to.
var sink []int

// Stash parks its argument in package state — passing a pooled alias here
// escapes it.
func Stash(xs []int) { sink = xs }
