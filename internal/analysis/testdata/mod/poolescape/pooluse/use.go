// Package pooluse exercises poolescape: every escape kind on a path reaching
// the Put (positive cases), and the sanctioned shapes — fresh copies,
// element-copying appends, ownership transfer — that must stay silent.
package pooluse

import "crowdplanner/internal/routing/wspool"

var keep []int

var results = make(chan []int, 1)

var hook func() int

// Good copies the workspace-backed result before releasing: the sanctioned
// shape.
func Good(n int) []int {
	s := wspool.Acquire()
	path := wspool.Fill(s, n)
	out := make([]int, len(path))
	copy(out, path)
	wspool.Release(s)
	return out
}

// GoodDefer is the same shape with a deferred release.
func GoodDefer(n int) []int {
	s := wspool.Acquire()
	defer wspool.Release(s)
	path := wspool.Fill(s, n)
	out := make([]int, len(path))
	copy(out, path)
	return out
}

// GoodElems appends the workspace values into a caller slice: value elements
// are copied, so no alias survives the release.
func GoodElems(dst []int, n int) []int {
	s := wspool.Acquire()
	defer wspool.Release(s)
	dst = append(dst, wspool.Fill(s, n)...)
	return dst
}

// GoodTransfer acquires without releasing: ownership moves to the caller,
// which owns the pairing with Release.
func GoodTransfer() *wspool.Space {
	return wspool.Acquire()
}

// GoodInternal stores an alias into the pooled object itself — designed
// workspace bookkeeping, not an escape.
func GoodInternal(n int) {
	s := wspool.Acquire()
	defer wspool.Release(s)
	s.Buf = wspool.Fill(s, n)
}

// BadReturn hands workspace-backed memory to the caller while the deferred
// Release recycles it.
func BadReturn(n int) []int {
	s := wspool.Acquire()
	defer wspool.Release(s)
	return wspool.Fill(s, n) // want "is returned to the caller"
}

// BadStore parks an alias in package state before releasing.
func BadStore(n int) {
	s := wspool.Acquire()
	keep = wspool.Fill(s, n) // want "is stored to package variable keep"
	wspool.Release(s)
}

// BadSend ships the alias across a channel; the receiver reads recycled
// memory.
func BadSend(n int) {
	s := wspool.Acquire()
	defer wspool.Release(s)
	results <- wspool.Fill(s, n) // want "is sent on a channel"
}

// BadGo races a goroutine against the release.
func BadGo(n int) {
	s := wspool.Acquire()
	defer wspool.Release(s)
	path := wspool.Fill(s, n)
	go func() { // want "is captured by a go closure"
		_ = path[0]
	}()
}

// BadStash routes the alias through a helper that stores it in package
// state.
func BadStash(n int) {
	s := wspool.Acquire()
	defer wspool.Release(s)
	wspool.Stash(wspool.Fill(s, n)) // want "is passed to wspool.Stash"
}

// BadClosure stores a capturing closure past the release.
func BadClosure(n int) {
	s := wspool.Acquire()
	defer wspool.Release(s)
	path := wspool.Fill(s, n)
	hook = func() int { return path[0] } // want "is captured by a closure stored to package variable hook"
}

// BadDirect escapes the pooled object itself, not a derived slice.
func BadDirect() {
	s := wspool.Acquire()
	keep = s.Buf // want "is stored to package variable keep"
	wspool.Release(s)
}

// SuppressedReturn documents a sanctioned single-owner handoff.
func SuppressedReturn(n int) []int {
	s := wspool.Acquire()
	defer wspool.Release(s)
	//cplint:ignore poolescape -- fixture: exercises suppression of an acknowledged alias return
	return wspool.Fill(s, n)
}
