// Package lockuse acquires the lockpair mutexes in both orders — the
// two-mutex cycle the lockorder analyzer must catch — plus a re-acquisition
// self-deadlock through a helper call.
package lockuse

import "crowdplanner/internal/core/lockpair"

// LockAB nests A before B directly.
func LockAB(a *lockpair.A, b *lockpair.B) {
	a.Mu.Lock()
	b.Mu.Lock() // want "potential deadlock: lock-order cycle lockpair.A.Mu → lockpair.B.Mu → lockpair.A.Mu"
	b.N++
	b.Mu.Unlock()
	a.Mu.Unlock()
}

// LockBA takes B, then reaches A through a helper in the other package: the
// reverse edge closing the cycle exists only interprocedurally.
func LockBA(a *lockpair.A, b *lockpair.B) {
	b.Mu.Lock()
	lockpair.GrabA(a)
	b.Mu.Unlock()
}

// Re holds A and calls a helper that locks A again.
func Re(a *lockpair.A) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	lockpair.RelockA(a) // want "potential self-deadlock: lockpair.A.Mu may be re-acquired while already held"
}

// NestedConsistent repeats the documented A-before-B order; consistent
// nesting on its own is not a finding (the cycle is, once, above).
func NestedConsistent(a *lockpair.A, b *lockpair.B) {
	a.Mu.Lock()
	b.Mu.Lock()
	a.N++
	b.Mu.Unlock()
	a.Mu.Unlock()
}
