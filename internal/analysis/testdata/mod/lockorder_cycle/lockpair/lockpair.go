// Package lockpair declares the two mutex-owning types of the lock-order
// fixture, plus a helper that acquires one of them — the cross-function hop
// that forces the analyzer to propagate may-acquire sets through calls.
package lockpair

import "sync"

// A owns the first mutex.
type A struct {
	Mu sync.Mutex
	N  int
}

// B owns the second mutex.
type B struct {
	Mu sync.Mutex
	N  int
}

// GrabA acquires and releases A's mutex. Called while holding B.Mu it
// establishes the B → A acquisition-order edge.
func GrabA(a *A) {
	a.Mu.Lock()
	a.N++
	a.Mu.Unlock()
}

// RelockA re-acquires A's mutex; calling it while already holding A.Mu is a
// self-deadlock.
func RelockA(a *A) {
	a.Mu.Lock()
	a.N--
	a.Mu.Unlock()
}
