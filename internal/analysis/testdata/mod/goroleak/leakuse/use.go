// Package leakuse launches goroutines; goroleak must prove each one can
// terminate or flag it.
package leakuse

import (
	"context"
	"sync"

	"crowdplanner/internal/worker/leakhelper"
)

// SpawnWatched launches an observer: fine, the ctx check is two static hops
// away.
func SpawnWatched(ctx context.Context, work func() bool) {
	go leakhelper.WatchIndirect(ctx, work)
}

// SpawnLeak launches the spinner.
func SpawnLeak(counter *int) {
	go leakhelper.Spin(counter) // want "goroutine has no provable termination signal"
}

// SpawnLitObserved launches a literal that blocks on a done channel.
func SpawnLitObserved(done chan struct{}, counter *int) {
	go func() {
		<-done
		*counter++
	}()
}

// SpawnLitLeak launches a literal with no way out.
func SpawnLitLeak(counter *int) {
	go func() { // want "goroutine has no provable termination signal"
		for {
			*counter++
		}
	}()
}

// SpawnWG accounts the goroutine to a WaitGroup.
func SpawnWG(wg *sync.WaitGroup, work func() bool) {
	go func() {
		defer wg.Done()
		for work() {
		}
	}()
}

// SpawnFn launches a function value: the analyzer cannot see inside it, and
// unprovable counts as leaked.
func SpawnFn(f func()) {
	go f() // want "goroutine has no provable termination signal"
}
