// Package main is exempt: main wires its own shutdown and its goroutines die
// with the process, so even a signal-free spawn is not a finding here.
package main

func spinForever(counter *int) {
	for {
		*counter++
	}
}

func main() {
	var n int
	go spinForever(&n)
}
