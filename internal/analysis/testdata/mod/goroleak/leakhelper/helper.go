// Package leakhelper holds the goroutine bodies of the goroleak fixture:
// one that observes its context and one that spins forever. The observation
// lives a package away from the go statement, so the summary must cross the
// package boundary.
package leakhelper

import "context"

// Watch polls work until the context is cancelled: observed termination.
func Watch(ctx context.Context, work func() bool) {
	for {
		if ctx.Err() != nil {
			return
		}
		if !work() {
			return
		}
	}
}

// Spin never checks anything: launched as a goroutine it runs until process
// exit.
func Spin(counter *int) {
	for {
		*counter++
	}
}

// WatchIndirect observes through one more static hop.
func WatchIndirect(ctx context.Context, work func() bool) {
	Watch(ctx, work)
}
