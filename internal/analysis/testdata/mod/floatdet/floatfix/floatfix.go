// Package floatfix exercises floatdet under a deterministic import path:
// float folds fed by map ranges and channel receives, goroutine-merged
// accumulators, and every sanctioned counter-shape (sorted keys, integer
// accumulation, indexed partials).
package floatfix

import (
	"math"
	"sort"
)

// SumDirect folds float values straight out of a map range.
func SumDirect(m map[string]float64) float64 {
	var sum float64
	//cplint:ordered-irrelevant -- fixture: detorder's concern, not floatdet's; the float rounding is the finding here
	for _, v := range m {
		sum += v // want "fed by range-over-map values"
	}
	return sum
}

// SumCollected launders the values through a collected slice first — the
// taint survives the intermediate local.
func SumCollected(m map[string]float64) float64 {
	var vals []float64
	//cplint:ordered-irrelevant -- fixture: collection order is the point under test
	for _, v := range m {
		vals = append(vals, v)
	}
	var sum float64
	for _, v := range vals {
		sum += v // want "fed by range-over-map values"
	}
	return sum
}

// MaxFold folds through math.Max inside the range.
func MaxFold(m map[string]float64) float64 {
	best := math.Inf(-1)
	//cplint:ordered-irrelevant -- fixture: the min/max fold is the finding under test
	for _, v := range m {
		best = math.Max(best, v) // want "min/max fold"
	}
	return best
}

// MinBuiltin folds through the builtin min.
func MinBuiltin(m map[string]float64) float64 {
	low := math.Inf(1)
	//cplint:ordered-irrelevant -- fixture: the min/max fold is the finding under test
	for _, v := range m {
		low = min(low, v) // want "min/max fold"
	}
	return low
}

// SumSorted is the sanctioned idiom: keys out, sort, fold in pinned order.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	//cplint:ordered-irrelevant -- keys are sorted before any order-sensitive use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// CountInts accumulates integers — associative, so map order cannot leak.
func CountInts(m map[string]int) int {
	total := 0
	//cplint:ordered-irrelevant -- integer addition is associative; order cannot reach the caller
	for _, v := range m {
		total += v
	}
	return total
}

// SumChannel merges partial results in receive order.
func SumChannel(ch chan float64) float64 {
	var total float64
	for v := range ch {
		total += v // want "fed by channel receives"
	}
	return total
}

// MergeShared updates a captured accumulator from goroutines.
func MergeShared(chunks [][]float64) float64 {
	var total float64
	done := make(chan struct{})
	for _, c := range chunks {
		c := c
		go func() {
			for _, v := range c {
				total += v // want "merged from a go statement"
			}
			done <- struct{}{}
		}()
	}
	for range chunks {
		<-done
	}
	return total
}

// MergeIndexed gives each goroutine its own slot — deterministic merge.
func MergeIndexed(chunks [][]float64) float64 {
	partial := make([]float64, len(chunks))
	done := make(chan struct{})
	for i, c := range chunks {
		i, c := i, c
		go func() {
			for _, v := range c {
				partial[i] += v
			}
			done <- struct{}{}
		}()
	}
	for range chunks {
		<-done
	}
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}
