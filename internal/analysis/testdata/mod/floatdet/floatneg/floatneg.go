// Package floatneg holds the same order-sensitive float folds as floatfix,
// type-checked under an experiments import path: outside the deterministic
// replay set, run-to-run float jitter is acceptable and floatdet stays
// silent.
package floatneg

// SumDirect would be a finding in a deterministic package.
func SumDirect(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// MergeShared would be a finding in a deterministic package.
func MergeShared(chunks [][]float64) float64 {
	var total float64
	done := make(chan struct{})
	for _, c := range chunks {
		c := c
		go func() {
			for _, v := range c {
				total += v
			}
			done <- struct{}{}
		}()
	}
	for range chunks {
		<-done
	}
	return total
}
