// Package hotuse exercises every allocation kind hotalloc flags inside
// //cplint:hotpath functions, the transitive call case, the sanctioned
// suppression shape, and the misplaced-directive check.
package hotuse

import (
	"fmt"

	"crowdplanner/internal/routing/allochelp"
)

type pair struct{ a, b int }

type state struct {
	buf []int
}

func vsum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Kernel trips one finding per flagged allocation kind.
//
//cplint:hotpath
func Kernel(s *state, n int, x, y string) int {
	sl := []int{1, 2, n}         // want "slice literal allocates a backing array in //cplint:hotpath function hotuse.Kernel"
	m := map[int]int{n: n}       // want "map literal allocates in //cplint:hotpath function hotuse.Kernel"
	p := &pair{a: n}             // want "&composite literal escapes to the heap"
	bs := make([]byte, n)        // want "make allocates"
	q := new(pair)               // want "new allocates"
	sl = append(sl, n)           // want "append to a non-reused slice may allocate"
	joined := x + y              // want "string concatenation allocates"
	raw := []byte(joined)        // want "string conversion copies its data"
	f := func() int { return n } // want "function literal capturing n allocates a closure"
	msg := fmt.Sprintf("%d", n)  // want "fmt.Sprintf allocates"
	t := vsum(1, 2, n)           // want "variadic call to vsum allocates its argument slice"
	t += vsum(sl...)             // spreading an existing slice does not allocate
	ext := allochelp.Deep()      // want "call from //cplint:hotpath function hotuse.Kernel reaches an allocation: allochelp.Deep → allochelp.Build → slice literal allocates a backing array"
	return len(m) + p.a + len(bs) + q.b + len(raw) + f() + len(msg) + t + len(ext)
}

// Reuse is the sanctioned pooled-workspace shape plus one suppressed,
// justified allocation: clean under hotalloc.
//
//cplint:hotpath
func Reuse(s *state, n int) int {
	s.buf = s.buf[:0]
	for i := 0; i < n; i++ {
		s.buf = append(s.buf, allochelp.Scale(i, n))
	}
	//cplint:ignore hotalloc -- fixture: documents the sanctioned-result-allocation shape
	out := make([]int, len(s.buf))
	copy(out, s.buf)
	return len(out)
}

func misplaced() int {
	/*cplint:hotpath*/ // want "misplaced //cplint:hotpath"
	return 0
}
