// Package allochelp holds helpers for the hotalloc fixture: one that
// allocates (the transitive target) and one that is clean.
package allochelp

// Build allocates a fresh slice every call.
func Build() []int {
	return []int{1, 2, 3}
}

// Scale is allocation-free; hot kernels may call it.
func Scale(x, f int) int {
	return x * f
}

// Deep reaches Build through one more hop, to exercise chain rendering.
func Deep() []int {
	return Build()
}
