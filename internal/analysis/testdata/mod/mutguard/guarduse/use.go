// Package guarduse exercises mutguard across package boundaries: the
// guarded fields and their mutex live in package guarded, the lock regions
// and the violation live here.
package guarduse

import (
	"strings"

	"crowdplanner/internal/fix/guarded"
)

// AddItem mutates the shared registry under its package-level mutex.
func AddItem(s string) {
	guarded.Mu.Lock()
	defer guarded.Mu.Unlock()
	addLower(s)
}

// addLower inherits the held mutex from its only caller.
func addLower(s string) {
	guarded.Default.Items = append(guarded.Default.Items, strings.ToLower(s))
}

// Snapshot reads the shared registry without the lock.
func Snapshot() []string {
	return guarded.Default.Items // want "read guarded.Registry.Items outside"
}

// Local initializes a fresh Registry unlocked — constructor exemption.
func Local(items []string) guarded.Registry {
	r := guarded.Registry{}
	r.Items = items
	return r
}
