// Package guarded exercises mutguard: every shape of //cplint:guardedby
// compliance and violation, including held-on-entry inference, write-under-
// RLock, fresh-object exemption, and directive validation.
package guarded

import (
	"sort"
	"sync"
)

// Counter is shared state with a machine-checked lock contract.
type Counter struct {
	mu sync.RWMutex
	//cplint:guardedby mu
	n int
	//cplint:guardedby mu
	hist []int
}

// New initializes a fresh Counter without the lock: the object is not
// shared yet, so the constructor exemption applies.
func New() *Counter {
	c := &Counter{}
	c.n = 1
	c.hist = append(c.hist, c.n)
	return c
}

// Inc holds the exclusive lock across both field accesses.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.hist = append(c.hist, c.n)
	c.mu.Unlock()
}

// Get reads under the read lock (deferred release holds to return).
func (c *Counter) Get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// incLocked is only ever called with mu held; the held-on-entry fixpoint
// proves it, so the unlocked-looking access is fine.
func (c *Counter) incLocked() {
	c.n++
}

// Add drives incLocked under the lock.
func (c *Counter) Add(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < k; i++ {
		c.incLocked()
	}
}

// Sorted runs a comparator literal while the lock is held: the literal
// inherits the held set at its definition point.
func (c *Counter) Sorted() {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(c.hist, func(i, j int) bool { return c.hist[i] < c.hist[j] })
}

// Peek reads without any lock.
func (c *Counter) Peek() int {
	return c.n // want "read guarded.Counter.n outside"
}

// BadRacyWrite writes under the read lock only.
func (c *Counter) BadRacyWrite() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n++ // want "writes need the exclusive lock"
}

// BadAsync spawns a goroutine from inside the locked region: the closure
// runs after the region may have closed, so its access is unprotected.
func (c *Counter) BadAsync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "mu is not held in guarded.Counter.BadAsync"
	}()
}

// bump is a helper reached only through lock-free callers; the finding
// names an example chain.
func (c *Counter) bump() {
	c.n++ // want "example lock-free path: guarded.Counter.Outer"
}

// Outer calls bump without taking the lock.
func (c *Counter) Outer() {
	c.bump()
}

// SuppressedPeek proves the standard suppression vocabulary applies.
func (c *Counter) SuppressedPeek() int {
	//cplint:ignore mutguard -- fixture: intentionally unlocked read proving suppressions reach mutguard
	return c.n
}

// Prose carries the contract in words only — mutguard demands the directive
// so the contract is enforced, not just documented.
type Prose struct {
	mu sync.Mutex
	// pending is guarded by mu. want "documents a lock contract in prose"
	pending int
}

// Bad carries directives that do not resolve.
type Bad struct {
	mu sync.Mutex
	//cplint:guardedby nosuch want "does not resolve"
	x int
	y int /*cplint:guardedby*/ // want "needs a mutex"
	//cplint:guardedby mu want "embedded field"
	sync.Once
}

// Mu is a package-level mutex; Registry fields resolve their directive to
// it, and package guarduse locks it cross-package.
var Mu sync.Mutex

// Registry is guarded by the package-level mutex.
type Registry struct {
	//cplint:guardedby Mu
	Items []string
}

// Default is the shared registry instance guarduse mutates.
var Default Registry

func misplaced() {
	//cplint:guardedby mu want "misplaced"
	_ = 0
}
