// Package chainwal is the storage tail of the cross-package chain fixture:
// a write-ahead log whose Append is direct I/O by declared contract.
package chainwal

// Log is a stand-in WAL.
type Log struct {
	records [][]byte
}

// Append records one entry. Checked under a store path, so its name makes it
// a direct I/O hit for lockappend and its interior is exempt.
func (l *Log) Append(rec []byte) error {
	l.records = append(l.records, rec)
	return nil
}
