// Package chainingest is the middle hop of the cross-package chain fixture:
// it neither locks nor does I/O itself, it just forwards to the store — the
// hop a per-package lockappend could never see through.
package chainingest

import "crowdplanner/internal/store/chainwal"

// Ingest forwards one record to the log.
func Ingest(l *chainwal.Log, rec []byte) error {
	return l.Append(rec)
}

// Transform is I/O-free; calls to it under a lock are fine.
func Transform(rec []byte) []byte {
	out := make([]byte, len(rec))
	copy(out, rec)
	return out
}
