// Package chaincore holds the locked regions of the cross-package chain
// fixture: the I/O sits two packages away (chaincore → chainingest →
// chainwal), so only module-wide reachability can connect the region to the
// append.
package chaincore

import (
	"sync"

	"crowdplanner/internal/store/chainwal"
	"crowdplanner/internal/traj/chainingest"
)

// System owns the log and the core mutex.
type System struct {
	mu      sync.Mutex
	log     *chainwal.Log
	pending [][]byte
}

// FlushLocked appends while holding the mutex — through a helper package.
func (s *System) FlushLocked(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return chainingest.Ingest(s.log, rec) // want "chainingest.Ingest → store append/IO \(Log.Append\) reachable while s.mu is locked"
}

// FlushAfter is the sanctioned shape: buffer under the lock, flush after
// unlocking.
func (s *System) FlushAfter(rec []byte) error {
	s.mu.Lock()
	s.pending = append(s.pending, chainingest.Transform(rec))
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, r := range batch {
		if err := chainingest.Ingest(s.log, r); err != nil {
			return err
		}
	}
	return nil
}
