// Package calibrate rewrites continuous routes into landmark-based routes
// (paper Definition 3), the representation CrowdPlanner's task generation
// works on. It follows the anchor-based calibration idea of Su et al. [21]:
// landmarks act as anchor points, a route "passes" a landmark when its
// geometry comes within the landmark's anchor radius, and the rewritten
// route is the sequence of passed landmarks ordered by travel order.
package calibrate

import (
	"sort"

	"crowdplanner/internal/landmark"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/traj"
)

// Config tunes calibration.
type Config struct {
	// AnchorRadius is the distance (meters) within which a point landmark is
	// considered "on" a route. Line/region landmarks additionally count
	// their Extent.
	AnchorRadius float64
}

// DefaultConfig uses a 120 m anchor radius, roughly half a block: a driver
// passing within half a block of a landmark would describe the route as
// "past" it.
func DefaultConfig() Config { return Config{AnchorRadius: 120} }

// LandmarkRoute is a route rewritten as a finite landmark sequence
// (paper Definition 3), each entry carrying its arc-length position.
type LandmarkRoute struct {
	Route     roadnet.Route
	Landmarks []landmark.ID // ordered by position along the route
	Positions []float64     // meters from the route start, parallel slice
}

// Contains reports whether the landmark appears on the calibrated route.
func (lr *LandmarkRoute) Contains(id landmark.ID) bool {
	for _, l := range lr.Landmarks {
		if l == id {
			return true
		}
	}
	return false
}

// IDSet returns the landmark IDs as a set.
func (lr *LandmarkRoute) IDSet() map[landmark.ID]bool {
	s := make(map[landmark.ID]bool, len(lr.Landmarks))
	for _, l := range lr.Landmarks {
		s[l] = true
	}
	return s
}

// Calibrate rewrites route r into its landmark-based form using the
// landmarks in set whose anchor circle the route geometry enters.
func Calibrate(g *roadnet.Graph, set *landmark.Set, r roadnet.Route, cfg Config) LandmarkRoute {
	lr := LandmarkRoute{Route: r}
	if len(r.Nodes) == 0 || set.Len() == 0 {
		return lr
	}
	pl := r.Polyline(g)
	bbox := pl.BBox()

	// Candidate landmarks: anchors within AnchorRadius + max extent of the
	// route's bounding box. Query via the set's spatial index around the
	// bbox center with a covering radius; for long routes this still beats
	// scanning every landmark because the index prunes by cell.
	maxReach := cfg.AnchorRadius
	for _, l := range set.All() {
		if l.Extent > 0 && l.Extent+cfg.AnchorRadius > maxReach {
			maxReach = l.Extent + cfg.AnchorRadius
		}
	}
	search := bbox.Buffer(maxReach)

	type hit struct {
		id  landmark.ID
		pos float64
	}
	var hits []hit
	for _, l := range set.All() {
		if !search.Contains(l.Pt) {
			continue
		}
		reach := cfg.AnchorRadius + l.Extent
		d, pos := pl.DistTo(l.Pt)
		if d <= reach {
			hits = append(hits, hit{id: l.ID, pos: pos})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].pos != hits[j].pos {
			return hits[i].pos < hits[j].pos
		}
		return hits[i].id < hits[j].id
	})
	for _, h := range hits {
		lr.Landmarks = append(lr.Landmarks, h.id)
		lr.Positions = append(lr.Positions, h.pos)
	}
	return lr
}

// CalibrateAll rewrites every route.
func CalibrateAll(g *roadnet.Graph, set *landmark.Set, routes []roadnet.Route, cfg Config) []LandmarkRoute {
	out := make([]LandmarkRoute, len(routes))
	for i, r := range routes {
		out[i] = Calibrate(g, set, r, cfg)
	}
	return out
}

// TrajectoryVisits converts a trajectory corpus into traveller→landmark
// visits for HITS significance inference: each trip by driver d that passes
// landmark l contributes one visit, exactly as the paper couples taxi
// trajectories with check-ins. Traveller IDs are offset by travellerBase so
// they do not collide with check-in user IDs.
func TrajectoryVisits(ds *traj.Dataset, set *landmark.Set, cfg Config, travellerBase int32) []landmark.Visit {
	var visits []landmark.Visit
	for _, trip := range ds.Trips {
		if trip.Route.Empty() {
			continue
		}
		lr := Calibrate(ds.Graph, set, trip.Route, cfg)
		for _, id := range lr.Landmarks {
			visits = append(visits, landmark.Visit{
				Traveller: travellerBase + int32(trip.Driver),
				Landmark:  id,
			})
		}
	}
	return visits
}
