package calibrate

import (
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/traj"
)

// straightGraph builds a 5-node east-west road at y=0, 100 m spacing.
func straightGraph() *roadnet.Graph {
	g := roadnet.NewGraph(5, 8)
	for i := 0; i < 5; i++ {
		g.AddNode(geo.Point{X: float64(i) * 100, Y: 0})
	}
	for i := 0; i+1 < 5; i++ {
		g.AddRoad(roadnet.NodeID(i), roadnet.NodeID(i+1), roadnet.Local, 0, 0)
	}
	return g
}

func TestCalibrateOrdering(t *testing.T) {
	g := straightGraph()
	ls := []*landmark.Landmark{
		{ID: 0, Pt: geo.Point{X: 350, Y: 30}},  // near the end
		{ID: 1, Pt: geo.Point{X: 50, Y: -20}},  // near the start
		{ID: 2, Pt: geo.Point{X: 200, Y: 500}}, // far away
	}
	set := landmark.NewSet(ls)
	r := roadnet.NewRoute(0, 1, 2, 3, 4)
	lr := Calibrate(g, set, r, Config{AnchorRadius: 100})
	if len(lr.Landmarks) != 2 {
		t.Fatalf("landmarks = %v", lr.Landmarks)
	}
	if lr.Landmarks[0] != 1 || lr.Landmarks[1] != 0 {
		t.Errorf("order = %v, want [1 0]", lr.Landmarks)
	}
	if lr.Positions[0] >= lr.Positions[1] {
		t.Errorf("positions not increasing: %v", lr.Positions)
	}
	if !lr.Contains(1) || lr.Contains(2) {
		t.Error("Contains mismatch")
	}
	ids := lr.IDSet()
	if !ids[0] || !ids[1] || ids[2] {
		t.Errorf("IDSet = %v", ids)
	}
}

func TestCalibrateExtent(t *testing.T) {
	g := straightGraph()
	// A region landmark 250 m off the road: only reachable via its extent.
	ls := []*landmark.Landmark{
		{ID: 0, Kind: landmark.RegionKind, Pt: geo.Point{X: 200, Y: 250}, Extent: 200},
		{ID: 1, Kind: landmark.PointKind, Pt: geo.Point{X: 200, Y: 250}},
	}
	set := landmark.NewSet(ls)
	r := roadnet.NewRoute(0, 1, 2, 3, 4)
	lr := Calibrate(g, set, r, Config{AnchorRadius: 100})
	if !lr.Contains(0) {
		t.Error("region with extent should be on the route")
	}
	if lr.Contains(1) {
		t.Error("point at same anchor without extent should be off the route")
	}
}

func TestCalibrateEmpty(t *testing.T) {
	g := straightGraph()
	set := landmark.NewSet(nil)
	lr := Calibrate(g, set, roadnet.NewRoute(0, 1), DefaultConfig())
	if len(lr.Landmarks) != 0 {
		t.Error("no landmarks -> empty calibration")
	}
	lr = Calibrate(g, landmark.NewSet([]*landmark.Landmark{{ID: 0}}), roadnet.Route{}, DefaultConfig())
	if len(lr.Landmarks) != 0 {
		t.Error("empty route -> empty calibration")
	}
}

func TestCalibrateAll(t *testing.T) {
	g := straightGraph()
	ls := []*landmark.Landmark{{ID: 0, Pt: geo.Point{X: 150, Y: 10}}}
	set := landmark.NewSet(ls)
	routes := []roadnet.Route{
		roadnet.NewRoute(0, 1, 2),
		roadnet.NewRoute(3, 4),
	}
	lrs := CalibrateAll(g, set, routes, DefaultConfig())
	if len(lrs) != 2 {
		t.Fatalf("len = %d", len(lrs))
	}
	if !lrs[0].Contains(0) {
		t.Error("first route should pass the landmark")
	}
	if lrs[1].Contains(0) {
		t.Error("second route should not pass the landmark")
	}
}

func TestCalibrateDiscriminates(t *testing.T) {
	// Two parallel roads; a landmark on each; calibration must separate them.
	g := roadnet.NewGraph(6, 12)
	for i := 0; i < 3; i++ {
		g.AddNode(geo.Point{X: float64(i) * 100, Y: 0}) // 0,1,2 south road
	}
	for i := 0; i < 3; i++ {
		g.AddNode(geo.Point{X: float64(i) * 100, Y: 400}) // 3,4,5 north road
	}
	for i := 0; i+1 < 3; i++ {
		g.AddRoad(roadnet.NodeID(i), roadnet.NodeID(i+1), roadnet.Local, 0, 0)
		g.AddRoad(roadnet.NodeID(i+3), roadnet.NodeID(i+4), roadnet.Local, 0, 0)
	}
	ls := []*landmark.Landmark{
		{ID: 0, Pt: geo.Point{X: 100, Y: 20}},  // south
		{ID: 1, Pt: geo.Point{X: 100, Y: 380}}, // north
	}
	set := landmark.NewSet(ls)
	south := Calibrate(g, set, roadnet.NewRoute(0, 1, 2), Config{AnchorRadius: 100})
	north := Calibrate(g, set, roadnet.NewRoute(3, 4, 5), Config{AnchorRadius: 100})
	if !south.Contains(0) || south.Contains(1) {
		t.Errorf("south landmarks = %v", south.Landmarks)
	}
	if !north.Contains(1) || north.Contains(0) {
		t.Errorf("north landmarks = %v", north.Landmarks)
	}
}

func TestTrajectoryVisits(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Cols, cfg.Rows = 8, 8
	g := roadnet.Generate(cfg)
	drivers := traj.NewPopulation(g, traj.PopulationConfig{NumDrivers: 10, Seed: 2, FracCommuter: 1})
	ds := traj.GenerateDataset(g, drivers, traj.DatasetConfig{
		NumODs: 5, TripsPerOD: 4, MinODDistM: 800,
		GPS: traj.DefaultGPSConfig(), Seed: 4,
	})
	set := landmark.Generate(g, landmark.GenConfig{NumPoints: 60, Seed: 5})
	visits := TrajectoryVisits(ds, set, DefaultConfig(), 1000)
	if len(visits) == 0 {
		t.Fatal("expected some trajectory visits")
	}
	for _, v := range visits {
		if v.Traveller < 1000 {
			t.Fatalf("traveller %d below base offset", v.Traveller)
		}
		if set.Get(v.Landmark) == nil {
			t.Fatalf("visit references unknown landmark %d", v.Landmark)
		}
	}
}
