package core

import (
	"sort"
	"strings"
	"sync"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/task"
)

// Source-reliability tracking implements the paper's stated future work —
// "quality control of popular route mining algorithms" (§VI) — inside the
// control logic: every time a request is resolved with high confidence
// (agreement, confidence gate, or crowd), each candidate source is credited
// with a win or a loss depending on whether its proposal matched the
// verified route. The running per-source precision can then boost candidate
// priors (Config.UseSourceReliability), giving historically reliable miners
// a head start in the question tree and in TR confidence scoring.

// SourceStats is the running scoreboard of one candidate source.
type SourceStats struct {
	Source string
	Wins   int
	Total  int
}

// Precision returns the Laplace-smoothed win rate, in (0,1); an unseen
// source scores 0.5 (no evidence either way).
func (s SourceStats) Precision() float64 {
	return (float64(s.Wins) + 1) / (float64(s.Total) + 2)
}

// reliabilityTracker accumulates per-source outcomes. Safe for concurrent
// use.
type reliabilityTracker struct {
	mu    sync.Mutex
	stats map[string]*SourceStats
}

func newReliabilityTracker() *reliabilityTracker {
	return &reliabilityTracker{stats: make(map[string]*SourceStats)}
}

// record credits every provider behind each candidate: sources whose route
// matched the verified winner win, the rest lose. Deduplicated provider
// names (e.g. "ws-fastest+MFP") credit each constituent.
func (t *reliabilityTracker) record(cands []task.Candidate, winner roadnet.Route) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range cands {
		won := c.Route.Equal(winner)
		for _, src := range strings.Split(c.Source, "+") {
			if src == "" {
				continue
			}
			s, ok := t.stats[src]
			if !ok {
				s = &SourceStats{Source: src}
				t.stats[src] = s
			}
			s.Total++
			if won {
				s.Wins++
			}
		}
	}
}

// precision returns the smoothed precision of a (possibly composite)
// source name: the max over its constituents, so a deduplicated candidate
// inherits its strongest provider's track record.
func (t *reliabilityTracker) precision(source string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	best := 0.5
	for _, src := range strings.Split(source, "+") {
		if s, ok := t.stats[src]; ok {
			if p := s.Precision(); p > best {
				best = p
			}
		}
	}
	return best
}

// snapshot returns the scoreboard sorted by source name.
func (t *reliabilityTracker) snapshot() []SourceStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SourceStats, 0, len(t.stats))
	for _, s := range t.stats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}
