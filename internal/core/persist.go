package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"crowdplanner/internal/crowd"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/store"
	"crowdplanner/internal/task"
	"crowdplanner/internal/traj"
	"crowdplanner/internal/truth"
	"crowdplanner/internal/worker"
)

// This file is the bridge between the serving core and the storage layer
// (internal/store): commit logging as state mutates, full-state capture for
// snapshots, and boot-time restore. The core stays the runtime source of
// truth; the backend is a durability sink that replays into the core on the
// next boot.
//
// Locking contract: backend appends are NEVER made while holding mu or
// poolMu — Snapshot captures the state under those locks from inside the
// backend's append mutex, so an in-flight append holding one of them would
// deadlock. Paths that commit under a lock collect records into a walBatch
// and flush it after release; interleaving with a concurrent snapshot is
// safe because every record type replays idempotently (see internal/store).

// ---- commit logging ----
//
// The helpers tolerate a sick backend: an append failure is counted (and
// surfaced on /v1/health) but never fails the request — the in-memory state
// already committed, and refusing to serve because the disk hiccuped would
// invert the system's priorities.

func (s *System) logTruth(e truth.Entry) {
	if err := s.backend.AppendTruth(truthToRecord(e)); err != nil {
		s.appendErrs.Add(1)
	}
}

func (s *System) logWorkerEvents(events []crowd.RewardEvent) {
	if len(events) == 0 {
		return
	}
	evs := make([]store.WorkerEvent, len(events))
	for i, ev := range events {
		evs[i] = store.WorkerEvent{
			Worker: int32(ev.Worker), Landmark: int32(ev.Landmark), Correct: ev.Correct,
			RewardBalance: ev.Balance,
			TallyCorrect:  int32(ev.Tally.Correct), TallyWrong: int32(ev.Tally.Wrong),
		}
	}
	if err := s.backend.AppendWorkerEvents(evs); err != nil {
		s.appendErrs.Add(1)
	}
}

func (s *System) logTaskOpen(rec store.TaskRecord) {
	if err := s.backend.AppendTaskOpen(rec); err != nil {
		s.appendErrs.Add(1)
	}
}

// walBatch collects commit records produced while core locks are held; the
// caller flushes it after releasing them.
type walBatch struct {
	truths []truth.Entry
	events []crowd.RewardEvent
	decis  []taskDecision
	closes []int64
}

type taskDecision struct {
	id    int64
	index int
	yes   bool
}

// flushWAL appends the batch's records to the backend. Must be called with
// no core locks held.
func (s *System) flushWAL(b *walBatch) {
	s.logWorkerEvents(b.events)
	for _, d := range b.decis {
		if err := s.backend.AppendTaskDecision(d.id, d.index, d.yes); err != nil {
			s.appendErrs.Add(1)
		}
	}
	for _, e := range b.truths {
		s.logTruth(e)
	}
	for _, id := range b.closes {
		if err := s.backend.AppendTaskClose(id); err != nil {
			s.appendErrs.Add(1)
		}
	}
}

// ---- record conversions ----

func truthToRecord(e truth.Entry) store.TruthRecord {
	nodes := make([]int32, len(e.Route.Nodes))
	for i, n := range e.Route.Nodes {
		nodes[i] = int32(n)
	}
	return store.TruthRecord{
		From: int32(e.From), To: int32(e.To), Slot: int32(e.Slot),
		Nodes: nodes, Confidence: e.Confidence, Crowd: e.Crowd,
		StoredAtMin: float64(e.StoredAt),
	}
}

func recordToTruth(r store.TruthRecord) truth.Entry {
	nodes := make([]roadnet.NodeID, len(r.Nodes))
	for i, n := range r.Nodes {
		nodes[i] = roadnet.NodeID(n)
	}
	return truth.Entry{
		From: roadnet.NodeID(r.From), To: roadnet.NodeID(r.To), Slot: int(r.Slot),
		Route: roadnet.Route{Nodes: nodes}, Confidence: r.Confidence, Crowd: r.Crowd,
		StoredAt: routing.SimTime(r.StoredAtMin),
	}
}

// pendingToRecord captures an open task; the owner's mu must be held (or the
// task not yet shared).
func pendingToRecord(p *PendingTask) store.TaskRecord {
	rec := store.TaskRecord{
		ID: p.ID, From: int32(p.Req.From), To: int32(p.Req.To),
		DepartMin: float64(p.Req.Depart), DeadlineMin: p.Req.DeadlineMin,
		Decisions: append([]bool(nil), p.decisions...),
	}
	for _, r := range p.Assigned {
		rec.Assigned = append(rec.Assigned, int32(r.Worker.ID))
	}
	return rec
}

// ---- snapshot ----

// StoreStats reports the storage backend's counters plus the number of
// append failures the serving path absorbed. Surfaced on GET /v1/health.
func (s *System) StoreStats() (store.Stats, uint64) {
	return s.backend.Stats(), s.appendErrs.Load()
}

// Snapshot captures the system's full mutable state and persists it through
// the storage backend, which compacts its log. Safe to call while serving:
// the backend runs the capture inside its append mutex, so every concurrent
// commit either makes it into the snapshot (its log record compacted away)
// or lands in the fresh post-compaction log — never in the discarded one.
func (s *System) Snapshot() (store.Stats, error) {
	err := s.backend.Snapshot(s.captureState)
	st, _ := s.StoreStats()
	return st, err
}

func (s *System) captureState() *store.State {
	st := &store.State{}
	for _, e := range s.truth.Entries() {
		st.Truths = append(st.Truths, truthToRecord(e))
	}
	// Only the ingested stream is persisted; the generated base corpus is
	// rebuilt deterministically by BuildScenario on every boot. Trips keep
	// the sequence numbers they were first logged under, so snapshot and
	// stale-WAL copies of the same trip agree and the replay dedupe holds.
	st.Trips = tripsToRecordsSeqs(s.data.IngestedStream())

	s.mu.Lock()
	st.NextTaskID = s.nextTaskID
	//cplint:ordered-irrelevant -- store.State.FoldEvents sorts OpenTasks by ID before serializing
	for _, p := range s.pending {
		if p.State == TaskOpen {
			st.OpenTasks = append(st.OpenTasks, pendingToRecord(p))
		}
	}
	s.mu.Unlock()

	s.poolMu.RLock()
	for _, w := range s.pool.Workers {
		ws := store.WorkerState{ID: int32(w.ID), Reward: w.Reward}
		//cplint:ordered-irrelevant -- store.State.FoldEvents sorts each worker's history by landmark before serializing
		for lm, h := range w.History {
			ws.History = append(ws.History, store.HistoryEntry{
				Landmark: int32(lm), Correct: int32(h.Correct), Wrong: int32(h.Wrong),
			})
		}
		st.Workers = append(st.Workers, ws)
	}
	s.poolMu.RUnlock()
	// The backend sorts workers/histories/tasks before serializing
	// (store.State.FoldEvents), so map iteration order above is immaterial.
	return st
}

// ---- restore ----

// LoadFromStore replays the backend's persisted state into the system:
// truths re-enter the (spatially indexed) truth database, worker rewards and
// answer histories are restored and folded into fresh familiarity matrices,
// and open async tasks are re-published at the question they were on.
// Call it after New and before serving; it is not safe to run concurrently
// with request traffic.
//
// Recovery semantics for open tasks: the task tree is regenerated
// deterministically from the substrates and the persisted branch decisions
// are replayed, so the task resumes at the question that was open when the
// process died. Answers to that in-flight question are not persisted — the
// question is simply re-asked (at-least-once question delivery). A task
// whose decision replay already reaches a leaf (crash between the final
// decision and the close record) resolves immediately, and its truth and
// closure are logged so the resolution is durable.
func (s *System) LoadFromStore(ctx context.Context) (store.Stats, error) {
	stats := func() store.Stats { st, _ := s.StoreStats(); return st }
	if v, ok := s.backend.(store.WorldVerifier); ok {
		if err := v.VerifyWorld(s.worldFingerprint()); err != nil {
			return stats(), err
		}
	}
	loaded, err := s.backend.Load()
	if err != nil {
		return stats(), err
	}
	if loaded == nil {
		return stats(), nil
	}
	if err := s.validateLoaded(loaded); err != nil {
		return stats(), err
	}

	for _, t := range loaded.Truths {
		s.truth.Store(recordToTruth(t))
	}

	// Replay the ingested trajectory stream into the corpus (and its mining
	// indexes) before any open-task restore regenerates candidates, so the
	// miners see the corpus as it stood at crash time. Load has already
	// ordered the records by sequence number and dropped duplicates; the
	// route cache is empty at boot, so no invalidation is needed, and the
	// records are already durable, so nothing is re-appended.
	if len(loaded.Trips) > 0 {
		trips := make([]traj.Trajectory, len(loaded.Trips))
		seqs := make([]int64, len(loaded.Trips))
		for i, r := range loaded.Trips {
			trips[i] = recordToTrip(r)
			seqs[i] = r.Seq
		}
		// RestoreTrips keeps the persisted sequence numbers and advances the
		// live counter past the highest, so post-replay ingestion never
		// reuses a number even when the stream has gaps.
		s.data.RestoreTrips(trips, seqs)
	}

	// Load returns folded state: Workers carry the final absolute values
	// (snapshot plus logged events), so restore is a plain overwrite.
	s.poolMu.Lock()
	for _, ws := range loaded.Workers {
		w := s.pool.Get(worker.ID(ws.ID))
		if w == nil {
			continue // registry shrank between runs; drop the orphan state
		}
		w.Reward = ws.Reward
		w.History = make(map[landmark.ID]worker.History, len(ws.History))
		for _, h := range ws.History {
			w.History[landmark.ID(h.Landmark)] = worker.History{Correct: int(h.Correct), Wrong: int(h.Wrong)}
		}
	}
	s.poolMu.Unlock()

	s.mu.Lock()
	if loaded.NextTaskID > s.nextTaskID {
		s.nextTaskID = loaded.NextTaskID
	}
	s.mu.Unlock()

	// Fold the restored histories into the familiarity matrices before any
	// task replay consults them.
	s.RefreshFamiliarity()

	for _, rec := range loaded.OpenTasks {
		batch, err := s.restoreTask(ctx, rec)
		if err != nil {
			return stats(), fmt.Errorf("core: restore task %d: %w", rec.ID, err)
		}
		// A task that resolved during replay commits its truth and closure
		// now, so the resolution is durable before serving starts.
		s.flushWAL(batch)
	}
	return stats(), nil
}

// worldFingerprint hashes the substrates that give persisted state its
// meaning — the graph's geometry and the trajectory corpus (which drives
// candidate and task regeneration) — so a durable backend can refuse a data
// directory written by a different scenario even when node-ID ranges line
// up (same city size, different seed).
func (s *System) worldFingerprint() uint64 {
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	word(uint64(s.graph.NumNodes()))
	word(uint64(s.graph.NumEdges()))
	for i := 0; i < s.graph.NumNodes(); i++ {
		pt := s.graph.Node(roadnet.NodeID(i)).Pt
		word(math.Float64bits(pt.X))
		word(math.Float64bits(pt.Y))
	}
	word(uint64(len(s.data.Trips)))
	for _, tr := range s.data.Trips {
		if tr.Route.Empty() {
			continue
		}
		word(uint64(tr.Route.Source()))
		word(uint64(tr.Route.Dest()))
		word(uint64(len(tr.Route.Nodes)))
	}
	word(uint64(s.landmarks.Len()))
	return h.Sum64()
}

// validateLoaded rejects persisted state that references nodes outside this
// world's graph — the signature of a data directory written by a different
// scenario. Failing loudly beats panicking in the spatial index (or quietly
// serving someone else's truths).
func (s *System) validateLoaded(loaded *store.State) error {
	n := int32(s.graph.NumNodes())
	badNode := func(id int32) bool { return id < 0 || id >= n }
	for _, t := range loaded.Truths {
		bad := badNode(t.From) || badNode(t.To)
		for _, nd := range t.Nodes {
			bad = bad || badNode(nd)
		}
		if bad {
			return fmt.Errorf("core: persisted truth %d→%d references nodes outside this %d-node world; was the data directory written by a different scenario?", t.From, t.To, n)
		}
	}
	for _, t := range loaded.OpenTasks {
		if badNode(t.From) || badNode(t.To) {
			return fmt.Errorf("core: persisted task %d (%d→%d) references nodes outside this %d-node world; was the data directory written by a different scenario?", t.ID, t.From, t.To, n)
		}
	}
	for _, t := range loaded.Trips {
		for _, nd := range t.Nodes {
			if badNode(nd) {
				return fmt.Errorf("core: persisted trajectory (seq %d) references nodes outside this %d-node world; was the data directory written by a different scenario?", t.Seq, n)
			}
		}
	}
	return nil
}

// restoreTask re-publishes one persisted open task: regenerate the
// candidates and the question tree (both deterministic for a fixed
// scenario), re-claim the assigned workers, and replay the recorded branch
// decisions. The returned batch carries the truth/close records of a task
// that resolved during replay; the caller flushes it.
func (s *System) restoreTask(ctx context.Context, rec store.TaskRecord) (*walBatch, error) {
	req := Request{
		From: roadnet.NodeID(rec.From), To: roadnet.NodeID(rec.To),
		Depart: routing.SimTime(rec.DepartMin), DeadlineMin: rec.DeadlineMin,
	}
	cands, err := s.generateCandidates(ctx, req)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}
	merged := task.MergeIndistinguishable(cands)
	tk, err := task.Generate(rec.ID, s.landmarks, merged, s.cfg.Task)
	if err != nil {
		return nil, err
	}

	var assigned []worker.Ranked
	s.poolMu.Lock()
	for _, wid := range rec.Assigned {
		if w := s.pool.Get(worker.ID(wid)); w != nil {
			w.Outstanding++
			assigned = append(assigned, worker.Ranked{Worker: w})
		}
	}
	s.poolMu.Unlock()

	p := &PendingTask{
		ID: rec.ID, Req: req, Task: tk, Assigned: assigned,
		State: TaskOpen, node: tk.Tree, owner: s, published: true,
		answered: make(map[worker.ID]bool),
	}
	for _, yes := range rec.Decisions {
		if p.node == nil || p.node.IsLeaf() {
			break
		}
		p.decisions = append(p.decisions, yes)
		p.questionsUsed++
		if yes {
			p.node = p.node.Yes
		} else {
			p.node = p.node.No
		}
	}

	batch := &walBatch{}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		s.pending = make(map[int64]*PendingTask)
	}
	s.pending[rec.ID] = p
	if p.node == nil || p.node.IsLeaf() {
		s.finishPending(p, TaskResolved, 0, batch)
	}
	return batch, nil
}
