package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"crowdplanner/internal/crowd"
	"crowdplanner/internal/landmark"
	roadnetpkg "crowdplanner/internal/roadnet"
	"crowdplanner/internal/task"
	"crowdplanner/internal/worker"
)

// The asynchronous task lifecycle implements the paper's actual deployment
// protocol: the server publishes a task, the assigned workers' mobile
// clients fetch the current question and submit answers, and the early-stop
// component resolves each question — and eventually the task — as answers
// arrive. RecommendAsync replaces the simulated synchronous crowd of
// Recommend with this open-loop protocol.

// TaskState is the lifecycle state of a pending crowd task.
type TaskState int

// Task lifecycle states.
const (
	// TaskOpen: questions remain; answers are being collected.
	TaskOpen TaskState = iota
	// TaskResolved: a route has been determined and stored as truth.
	TaskResolved
	// TaskExpired: the deadline passed; the provider consensus was used.
	TaskExpired
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case TaskOpen:
		return "open"
	case TaskResolved:
		return "resolved"
	case TaskExpired:
		return "expired"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// PendingTask is a crowd task awaiting worker answers.
//
// ID, Req, Task and Assigned are immutable after publication. State, Result
// and the tree cursor mutate under the owning system's lock as answers
// arrive; concurrent observers (e.g. a state poll racing an answer) must
// read them through CurrentQuestion/Status rather than the raw fields.
type PendingTask struct {
	ID       int64
	Req      Request
	Task     *task.Task
	Assigned []worker.Ranked
	State    TaskState
	Result   *Response // non-nil once resolved or expired

	owner    *System        // whose mu guards the mutable fields below
	node     *task.TreeNode // current position in the question tree
	answers  []crowd.Answer // answers to the current question
	answered map[worker.ID]bool
	// decisions records the yes/no branch taken at each closed question, in
	// order — the storage layer persists it so a restarted server can walk a
	// regenerated tree back to the current position.
	decisions []bool
	// published marks tasks that were registered (and logged as open); only
	// those log a close event.
	published bool
	// stats
	questionsUsed int
	answersUsed   int
}

// lock takes the owning system's lock (no-op for a zero PendingTask).
func (p *PendingTask) lock() func() {
	if p.owner == nil {
		return func() {}
	}
	p.owner.mu.Lock()
	return p.owner.mu.Unlock
}

// CurrentQuestion returns the landmark currently being asked; ok is false
// once the task is no longer open. Safe against concurrent SubmitAnswer
// calls advancing the task.
func (p *PendingTask) CurrentQuestion() (landmark.ID, bool) {
	defer p.lock()()
	if p.State != TaskOpen || p.node == nil || p.node.IsLeaf() {
		return 0, false
	}
	return p.node.Landmark, true
}

// Status returns the task's lifecycle state and final result (nil while
// open) as one consistent snapshot, synchronized against concurrent
// SubmitAnswer/ExpireTask calls.
func (p *PendingTask) Status() (TaskState, *Response) {
	defer p.lock()()
	return p.State, p.Result
}

// IsAssigned reports whether the worker is assigned to this task.
func (p *PendingTask) IsAssigned(w worker.ID) bool {
	for _, r := range p.Assigned {
		if r.Worker.ID == w {
			return true
		}
	}
	return false
}

// Async errors.
var (
	ErrUnknownTask   = errors.New("core: unknown task id")
	ErrTaskClosed    = errors.New("core: task is no longer open")
	ErrNotAssigned   = errors.New("core: worker is not assigned to this task")
	ErrAlreadyAnswer = errors.New("core: worker already answered the current question")
)

// RecommendAsync processes a request like Recommend, but when the crowd is
// needed it publishes a PendingTask instead of simulating the answers: the
// returned Response is nil and the ticket must be driven to resolution with
// SubmitAnswer. When the TR module resolves the request, the Response is
// returned directly with a nil ticket.
//
// The context covers the synchronous part only (validation, candidate
// generation, task publication): a cancellation before the ticket is
// registered returns ctx.Err() with every claimed worker released and no
// pending task leaked. Once the ticket is returned, the task's lifetime is
// governed by SubmitAnswer/ExpireTask, not by this context.
func (s *System) RecommendAsync(ctx context.Context, req Request) (*Response, *PendingTask, error) {
	resp, cands, err := s.resolveTraditional(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	if resp != nil {
		return resp, nil, nil
	}

	merged := task.MergeIndistinguishable(cands)
	if len(merged) == 1 {
		s.logTruth(s.storeTruth(req, merged[0].Route, 0.5, false))
		return &Response{Route: merged[0].Route, Stage: StageFallback, Confidence: 0.5, Candidates: cands}, nil, nil
	}

	s.mu.Lock()
	s.nextTaskID++
	id := s.nextTaskID
	mstar := s.mstar
	s.mu.Unlock()

	tk, err := task.Generate(id, s.landmarks, merged, s.cfg.Task)
	if err != nil {
		return nil, nil, fmt.Errorf("core: generating task: %w", err)
	}
	selCfg := s.cfg.Select
	if req.DeadlineMin > 0 {
		selCfg.DeadlineMinutes = req.DeadlineMin
	}
	s.poolMu.RLock()
	assigned := worker.TopKEligible(s.pool, mstar, tk.Questions, s.cfg.WorkersPerTask, selCfg)
	s.poolMu.RUnlock()
	if len(assigned) == 0 {
		best := bestByConsensus(merged)
		s.logTruth(s.storeTruth(req, best.Route, 0.5, false))
		return &Response{Route: best.Route, Stage: StageFallback, Confidence: 0.5, Candidates: cands, Task: tk}, nil, nil
	}

	// Claim the workers (quota re-checked under the write lock) before any
	// resolution path, so finishPending's decrement is always balanced.
	assigned = s.claimWorkers(assigned, selCfg)
	if len(assigned) == 0 {
		best := bestByConsensus(merged)
		s.logTruth(s.storeTruth(req, best.Route, 0.5, false))
		return &Response{Route: best.Route, Stage: StageFallback, Confidence: 0.5, Candidates: cands, Task: tk}, nil, nil
	}
	if err := ctx.Err(); err != nil {
		// Cancelled between claim and publication: release the claims so no
		// pending task (or stuck Outstanding counter) leaks.
		s.poolMu.Lock()
		for _, r := range assigned {
			r.Worker.Outstanding--
		}
		s.poolMu.Unlock()
		return nil, nil, err
	}

	p := &PendingTask{
		ID: id, Req: req, Task: tk, Assigned: assigned,
		State: TaskOpen, node: tk.Tree, owner: s,
		answered: make(map[worker.ID]bool),
	}
	// A degenerate tree (single candidate after merge handled above, but a
	// defensive leaf root) resolves immediately.
	if p.node == nil || p.node.IsLeaf() {
		var batch walBatch
		s.finishPending(p, TaskResolved, 1, &batch)
		s.flushWAL(&batch)
		return p.Result, nil, nil
	}

	s.mu.Lock()
	if s.pending == nil {
		s.pending = make(map[int64]*PendingTask)
	}
	s.pending[id] = p
	p.published = true
	rec := pendingToRecord(p)
	s.mu.Unlock()
	// Logged before the ticket is returned: a client can only reference the
	// task after its open record is durable.
	s.logTaskOpen(rec)
	return nil, p, nil
}

// resolveTraditional runs stages 1–4 of the pipeline. It returns a non-nil
// Response when the TR module answered; otherwise the candidate set for the
// crowd, with priors filled in.
func (s *System) resolveTraditional(ctx context.Context, req Request) (*Response, []task.Candidate, error) {
	n := roadnetpkg.NodeID(s.graph.NumNodes())
	if req.From < 0 || req.From >= n || req.To < 0 || req.To >= n || req.From == req.To {
		return nil, nil, fmt.Errorf("%w: from=%d to=%d", ErrBadRequest, req.From, req.To)
	}
	if s.cfg.ReuseTruth {
		if e, ok := s.truth.Lookup(req.From, req.To, req.Depart); ok {
			return &Response{Route: e.Route, Stage: StageReuse, Confidence: e.Confidence}, nil, nil
		}
	}
	cands, err := s.generateCandidates(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	if len(cands) == 0 {
		return nil, nil, ErrNoCandidates
	}
	if best, sim, ok := s.agreement(cands); ok {
		s.logTruth(s.storeTruth(req, best.Route, sim, false))
		s.reliance.record(cands, best.Route)
		return &Response{Route: best.Route, Stage: StageAgreement, Confidence: sim, Candidates: cands}, nil, nil
	}
	// Batched confidence: every candidate shares the request's OD pair, so
	// scoring them together runs the truth store's Near scan once instead of
	// once per candidate. Scores are identical to per-candidate Confidence
	// calls (see truth.ConfidenceBatch).
	candRoutes := make([]roadnetpkg.Route, len(cands))
	for i := range cands {
		candRoutes[i] = cands[i].Route
	}
	confs := s.truth.ConfidenceBatch(s.graph, candRoutes, req.Depart, s.cfg.TruthRadius, s.cfg.TruthSlotTol)
	bestIdx, bestConf := -1, 0.0
	for i := range cands {
		c := confs[i]
		cands[i].Prior = c
		if c > bestConf {
			bestConf, bestIdx = c, i
		}
	}
	if bestIdx >= 0 && bestConf >= s.cfg.EtaConfidence {
		s.logTruth(s.storeTruth(req, cands[bestIdx].Route, bestConf, false))
		s.reliance.record(cands, cands[bestIdx].Route)
		return &Response{
			Route: cands[bestIdx].Route, Stage: StageConfidence,
			Confidence: bestConf, Candidates: cands,
		}, nil, nil
	}
	// The crowd will decide; optionally fold each source's historical
	// precision into the priors (future work §VI) so reliable providers
	// start ahead in the question tree and the consensus fallback.
	if s.cfg.UseSourceReliability {
		for i := range cands {
			cands[i].Prior += s.reliance.precision(cands[i].Source)
		}
	}
	return nil, cands, nil
}

// SourceStats returns the per-provider precision scoreboard (the future-
// work quality-control extension). Sources are credited whenever a request
// resolves with a verified route: proposals matching the verdict win.
func (s *System) SourceStats() []SourceStats {
	return s.reliance.snapshot()
}

// PendingTasks returns the open tasks a worker is assigned to.
func (s *System) PendingTasks(w worker.ID) []*PendingTask {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*PendingTask
	for _, p := range s.pending {
		if p.State == TaskOpen && p.IsAssigned(w) && !p.answered[w] {
			out = append(out, p)
		}
	}
	// s.pending is a map: without this sort the slice order would change
	// run to run and leak into worker-facing task listings.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PendingTask returns the task with the given ID (open or closed).
func (s *System) PendingTask(id int64) (*PendingTask, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pending[id]
	return p, ok
}

// OpenTasks counts the pending tasks still collecting answers. Surfaced on
// GET /v1/health and used by tests to assert no task leaks on cancellation.
func (s *System) OpenTasks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	//cplint:ordered-irrelevant -- counting matches is commutative; no order reaches the caller
	for _, p := range s.pending {
		if p.State == TaskOpen {
			n++
		}
	}
	return n
}

// SubmitAnswer records worker w's answer to the current question of task
// id. When the answer completes the question (early-stop confidence reached
// or every assigned worker answered), the task advances down the tree; on
// reaching a leaf the task resolves, the winner is stored as truth, workers
// are rewarded, and the final Response is returned. Until then the returned
// Response is nil. Commit records produced under the lock are flushed to the
// storage backend before returning.
func (s *System) SubmitAnswer(id int64, w worker.ID, yes bool) (*Response, error) {
	var batch walBatch
	resp, err := s.submitAnswerBatched(id, w, yes, &batch)
	s.flushWAL(&batch)
	return resp, err
}

// submitAnswerBatched takes mu itself and collects commit records into
// batch for the caller to flush after the lock is released.
func (s *System) submitAnswerBatched(id int64, w worker.ID, yes bool, batch *walBatch) (*Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pending[id]
	if !ok {
		return nil, ErrUnknownTask
	}
	if p.State != TaskOpen {
		return nil, ErrTaskClosed
	}
	if !p.IsAssigned(w) {
		return nil, ErrNotAssigned
	}
	if p.answered[w] {
		return nil, ErrAlreadyAnswer
	}
	lm := p.node.Landmark
	est := s.cfg.Answers.Accuracy(s.famEstimate(int(w), lm))
	p.answered[w] = true
	p.answers = append(p.answers, crowd.Answer{Worker: w, Yes: yes, EstAcc: est})

	decided, goYes := s.questionDecided(p)
	if !decided {
		return nil, nil
	}
	s.advancePending(p, goYes, batch)
	if p.State == TaskResolved {
		return p.Result, nil
	}
	return nil, nil
}

// famEstimate looks up the system's estimated familiarity (caller holds mu).
func (s *System) famEstimate(workerIdx int, l landmark.ID) float64 {
	if v, ok := s.mstar.Get(workerIdx, int(l)); ok {
		return v
	}
	return 0
}

// questionDecided checks whether the current question can be closed: the
// early-stop posterior is confident, or every assigned worker has answered.
// Caller holds mu.
func (s *System) questionDecided(p *PendingTask) (decided, yes bool) {
	yesVote, conf, _ := crowd.Aggregate(p.answers, s.cfg.EarlyStop)
	threshold := s.cfg.EarlyStop
	if threshold <= 0.5 {
		threshold = 1.01 // early stop disabled: wait for everyone
	}
	if conf >= threshold {
		return true, yesVote
	}
	if len(p.answers) >= len(p.Assigned) {
		return true, yesVote
	}
	return false, false
}

// advancePending closes the current question, rewards its answers, and
// descends the tree; resolves the task at a leaf. Caller holds mu; commit
// records go into batch for the caller to flush after release.
func (s *System) advancePending(p *PendingTask, yes bool, batch *walBatch) {
	lm := p.node.Landmark
	// Reward by participation; correctness is judged against the decided
	// outcome (majority), the usual proxy when no oracle exists.
	for i := range p.answers {
		p.answers[i].Correct = p.answers[i].Yes == yes
	}
	s.poolMu.Lock()
	batch.events = append(batch.events, crowd.Reward(s.pool, lm, p.answers, len(p.answers), s.cfg.Rewards)...)
	s.poolMu.Unlock()
	p.questionsUsed++
	p.answersUsed += len(p.answers)
	p.answers = nil
	p.answered = make(map[worker.ID]bool)

	p.decisions = append(p.decisions, yes)
	batch.decis = append(batch.decis, taskDecision{id: p.ID, index: len(p.decisions) - 1, yes: yes})
	if yes {
		p.node = p.node.Yes
	} else {
		p.node = p.node.No
	}
	if p.node == nil || p.node.IsLeaf() {
		s.finishPending(p, TaskResolved, 0, batch)
	}
}

// finishPending finalizes a pending task. Caller holds mu (or the task is
// not yet registered) and flushes batch after release. confOverride > 0
// forces a confidence value.
func (s *System) finishPending(p *PendingTask, state TaskState, confOverride float64, batch *walBatch) {
	var winner task.Candidate
	conf := confOverride
	switch {
	case state == TaskResolved && p.node != nil:
		winner = p.Task.Candidates[p.node.Leaf()]
		if conf <= 0 {
			conf = 0.9 // the per-question early-stop threshold bounds this
		}
	default:
		winner = bestByConsensus(p.Task.Candidates)
		if conf <= 0 {
			conf = 0.5
		}
	}
	stage := StageCrowd
	if state == TaskExpired {
		stage = StageFallback
	}
	batch.truths = append(batch.truths, s.storeTruth(p.Req, winner.Route, conf, state == TaskResolved))
	if state == TaskResolved {
		s.reliance.record(p.Task.Candidates, winner.Route)
	}
	run := crowd.TaskRun{
		Resolved:      indexOf(p.Task.Candidates, winner),
		QuestionsUsed: p.questionsUsed,
		AnswersUsed:   p.answersUsed,
		AnswersAsked:  p.answersUsed,
		MinConfidence: conf,
	}
	p.Result = &Response{
		Route: winner.Route, Stage: stage, Confidence: conf,
		Candidates: p.Task.Candidates, Task: p.Task, Run: &run, Workers: p.Assigned,
	}
	p.State = state
	if p.published {
		batch.closes = append(batch.closes, p.ID)
	}
	s.poolMu.Lock()
	for _, r := range p.Assigned {
		if r.Worker.Outstanding > 0 {
			r.Worker.Outstanding--
		}
	}
	s.poolMu.Unlock()
}

func indexOf(cands []task.Candidate, c task.Candidate) int {
	for i := range cands {
		if cands[i].Route.Equal(c.Route) {
			return i
		}
	}
	return 0
}

// ExpireTask forcibly closes an open task (deadline passed); the provider
// consensus route is stored with low confidence.
func (s *System) ExpireTask(id int64) (*Response, error) {
	var batch walBatch
	resp, err := func() (*Response, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		p, ok := s.pending[id]
		if !ok {
			return nil, ErrUnknownTask
		}
		if p.State != TaskOpen {
			return nil, ErrTaskClosed
		}
		s.finishPending(p, TaskExpired, 0, &batch)
		return p.Result, nil
	}()
	s.flushWAL(&batch)
	return resp, err
}
