package core

import (
	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/traj"
	"crowdplanner/internal/worker"
)

// ScenarioConfig bundles the generation knobs of every substrate, so one
// struct describes a full synthetic world: city, drivers, trajectory corpus,
// landmarks, check-ins, worker pool and system configuration.
type ScenarioConfig struct {
	City       roadnet.GenConfig
	Population traj.PopulationConfig
	Dataset    traj.DatasetConfig
	Landmarks  landmark.GenConfig
	Checkins   landmark.CheckinConfig
	HITS       landmark.HITSConfig
	Workers    worker.GenConfig
	System     Config
}

// DefaultScenarioConfig is the mid-size world used by the examples and most
// experiments: a 400-intersection city, 300 drivers, ~1500 trips, 200
// landmarks, 300 workers.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{
		City:       roadnet.DefaultGenConfig(),
		Population: traj.DefaultPopulationConfig(),
		Dataset:    traj.DefaultDatasetConfig(),
		Landmarks:  landmark.DefaultGenConfig(),
		Checkins:   landmark.DefaultCheckinConfig(),
		HITS:       landmark.DefaultHITSConfig(),
		Workers:    worker.DefaultGenConfig(),
		System:     DefaultConfig(),
	}
}

// SmallScenarioConfig shrinks everything for fast tests.
func SmallScenarioConfig() ScenarioConfig {
	cfg := DefaultScenarioConfig()
	cfg.City.Cols, cfg.City.Rows = 10, 10
	cfg.Population.NumDrivers = 80
	cfg.Dataset.NumODs = 15
	cfg.Dataset.TripsPerOD = 12
	cfg.Landmarks.NumPoints = 80
	cfg.Landmarks.NumLines = 6
	cfg.Landmarks.NumRegions = 4
	cfg.Checkins.NumUsers = 120
	cfg.Workers.NumWorkers = 120
	cfg.System.PMF.Iters = 40
	return cfg
}

// Scenario is a fully generated world plus the system running on it.
type Scenario struct {
	System    *System
	Graph     *roadnet.Graph
	Landmarks *landmark.Set
	Drivers   []*traj.Driver
	Data      *traj.Dataset
	Pool      *worker.Pool
}

// BuildScenario generates every substrate deterministically from the config
// and assembles the system: city → drivers → trajectory corpus → landmarks
// → HITS significance (check-ins + trajectory visits) → worker pool →
// CrowdPlanner.
func BuildScenario(cfg ScenarioConfig) *Scenario {
	g := roadnet.Generate(cfg.City)
	drivers := traj.NewPopulation(g, cfg.Population)
	data := traj.GenerateDataset(g, drivers, cfg.Dataset)

	lms := landmark.Generate(g, cfg.Landmarks)
	visits := landmark.GenerateCheckins(lms, g.BBox(), cfg.Checkins)
	visits = append(visits, calibrate.TrajectoryVisits(data, lms, cfg.System.Calibrate, 1_000_000)...)
	lms.InferSignificance(visits, cfg.HITS)

	pool := worker.GeneratePool(g.BBox(), lms, cfg.Workers)

	oracle := &PopulationOracle{Data: data, Sample: cfg.System.OracleSample}
	sys := New(cfg.System, g, lms, data, pool, oracle)
	return &Scenario{
		System:    sys,
		Graph:     g,
		Landmarks: lms,
		Drivers:   drivers,
		Data:      data,
		Pool:      pool,
	}
}
