package core

import (
	"errors"
	"sync"

	"crowdplanner/internal/store"
)

// Circuit breaker over the storage backend (graceful degradation tier).
//
// The serving path already absorbs append failures — a request never fails
// because the disk hiccuped — but with a persistently sick backend that
// policy silently drops every commit while the operator sees only a rising
// append_errors counter. The breaker makes the failure mode explicit:
// after Threshold consecutive append failures it opens, the system reports
// itself degraded (GET /v1/health flips to "degraded", the server returns
// 503 on mutating endpoints), and further appends are short-circuited
// without touching the backend. Recovery is probed half-open: after every
// ProbeEvery short-circuited appends one real append is let through; a
// success closes the breaker, a failure re-opens the probe window.
//
// The breaker is deliberately count-based, not time-based: internal/core is
// a deterministic-replay package (no wall clock — see cplint's wallclock
// analyzer), and the serving path supplies steady probe traffic anyway
// (recommends keep committing truths even while degraded). Snapshots are
// never short-circuited — POST /v1/admin/snapshot is the operator's heal
// lever, and a successful snapshot closes the breaker immediately.

// ErrStoreDegraded is returned by short-circuited backend operations while
// the breaker is open. Compare with errors.Is.
var ErrStoreDegraded = errors.New("core: storage backend degraded (circuit breaker open)")

// BreakerConfig configures the storage circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive append failures that opens the
	// breaker. <= 0 disables the breaker entirely (appends always reach the
	// backend; failures are only counted).
	Threshold int
	// ProbeEvery is how many short-circuited appends pass between half-open
	// probes while the breaker is open. <= 0 defaults to 16.
	ProbeEvery int
}

// DefaultBreakerConfig returns the breaker settings used by DefaultConfig.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Threshold: 8, ProbeEvery: 16}
}

// BreakerState names the breaker's observable state.
type BreakerState string

// The breaker states surfaced on GET /v1/health.
const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half_open" // open, probe in flight
)

// BreakerStats is the breaker's observable state and counters.
type BreakerStats struct {
	Enabled bool         `json:"enabled"`
	State   BreakerState `json:"state"`
	// ConsecutiveFailures is the current run of append failures (resets on
	// any success).
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Opens counts closed→open transitions since process start.
	Opens uint64 `json:"opens"`
	// ShortCircuits counts appends rejected without reaching the backend.
	ShortCircuits uint64 `json:"short_circuits"`
	// Probes counts half-open probe appends let through while open.
	Probes uint64 `json:"probes"`
}

// breakerStore wraps a store.Store with the circuit breaker. It implements
// store.Store and store.WorldVerifier (forwarding), so the rest of the core
// is oblivious to it.
type breakerStore struct {
	inner      store.Store
	threshold  int
	probeEvery int

	mu sync.Mutex
	//cplint:guardedby mu
	consecFails int
	//cplint:guardedby mu
	open bool
	//cplint:guardedby mu
	probing bool // a half-open probe is in flight
	//cplint:guardedby mu
	sinceProbe int // short-circuits since the last probe window opened
	//cplint:guardedby mu
	opens uint64
	//cplint:guardedby mu
	shortCircuits uint64
	//cplint:guardedby mu
	probes uint64
}

func newBreakerStore(inner store.Store, cfg BreakerConfig) *breakerStore {
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 16
	}
	return &breakerStore{inner: inner, threshold: cfg.Threshold, probeEvery: cfg.ProbeEvery}
}

// admit decides whether an append may reach the backend, tracking the probe
// window while open. Called with the lock NOT held.
func (b *breakerStore) admit() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return false, nil
	}
	if !b.probing {
		b.sinceProbe++
		if b.sinceProbe >= b.probeEvery {
			b.probing = true
			b.probes++
			return true, nil
		}
	}
	b.shortCircuits++
	return false, ErrStoreDegraded
}

// record folds one backend result into the breaker state. A success — any
// success, probe or not — closes the breaker; a probe failure re-arms the
// probe window.
func (b *breakerStore) record(probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		b.sinceProbe = 0
	}
	if err != nil {
		b.consecFails++
		if !b.open && b.consecFails >= b.threshold {
			b.open = true
			b.opens++
			b.sinceProbe = 0
			b.probing = false
		}
		return
	}
	b.consecFails = 0
	if b.open {
		b.open = false
		b.probing = false
		b.sinceProbe = 0
	}
}

// through runs one append through the breaker. The backend call runs with
// no breaker lock held (it does file I/O and takes the backend's own append
// mutex, which also serializes snapshot captures).
func (b *breakerStore) through(call func() error) error {
	probe, err := b.admit()
	if err != nil {
		return err
	}
	err = call()
	b.record(probe, err)
	return err
}

func (b *breakerStore) stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{
		Enabled:             true,
		State:               BreakerClosed,
		ConsecutiveFailures: b.consecFails,
		Opens:               b.opens,
		ShortCircuits:       b.shortCircuits,
		Probes:              b.probes,
	}
	if b.open {
		st.State = BreakerOpen
		if b.probing {
			st.State = BreakerHalfOpen
		}
	}
	return st
}

func (b *breakerStore) degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// AppendTruth implements store.TruthLog.
func (b *breakerStore) AppendTruth(r store.TruthRecord) error {
	return b.through(func() error { return b.inner.AppendTruth(r) })
}

// AppendWorkerEvents implements store.WorkerLog.
func (b *breakerStore) AppendWorkerEvents(evs []store.WorkerEvent) error {
	return b.through(func() error { return b.inner.AppendWorkerEvents(evs) })
}

// AppendTrips implements store.TrajLog.
func (b *breakerStore) AppendTrips(recs []store.TrajRecord) error {
	return b.through(func() error { return b.inner.AppendTrips(recs) })
}

// AppendTaskOpen implements store.TaskLog.
func (b *breakerStore) AppendTaskOpen(r store.TaskRecord) error {
	return b.through(func() error { return b.inner.AppendTaskOpen(r) })
}

// AppendTaskDecision implements store.TaskLog.
func (b *breakerStore) AppendTaskDecision(id int64, index int, yes bool) error {
	return b.through(func() error { return b.inner.AppendTaskDecision(id, index, yes) })
}

// AppendTaskClose implements store.TaskLog.
func (b *breakerStore) AppendTaskClose(id int64) error {
	return b.through(func() error { return b.inner.AppendTaskClose(id) })
}

// Snapshot is never short-circuited: it is the operator's explicit heal
// lever, and its result feeds the breaker (success closes it).
func (b *breakerStore) Snapshot(capture func() *store.State) error {
	err := b.inner.Snapshot(capture)
	b.record(false, err)
	return err
}

// Load delegates; boot-time restore is not subject to the breaker.
func (b *breakerStore) Load() (*store.State, error) { return b.inner.Load() }

// Stats delegates so /v1/health keeps reporting the real backend.
func (b *breakerStore) Stats() store.Stats { return b.inner.Stats() }

// Close delegates.
func (b *breakerStore) Close() error { return b.inner.Close() }

// VerifyWorld forwards the world-fingerprint check to backends that pin it.
func (b *breakerStore) VerifyWorld(fingerprint uint64) error {
	if v, ok := b.inner.(store.WorldVerifier); ok {
		return v.VerifyWorld(fingerprint)
	}
	return nil
}

// Degraded reports whether the storage circuit breaker is open: commits are
// being short-circuited and the server should refuse mutating endpoints.
// Always false when the breaker is disabled or no durable backend is sick.
func (s *System) Degraded() bool {
	if s.breaker == nil {
		return false
	}
	return s.breaker.degraded()
}

// BreakerStats reports the storage circuit breaker's state and counters
// (zero-valued with Enabled=false when the breaker is disabled). Surfaced
// under the store section of GET /v1/health.
func (s *System) BreakerStats() BreakerStats {
	if s.breaker == nil {
		return BreakerStats{State: BreakerClosed}
	}
	return s.breaker.stats()
}
