package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
)

// forcedCrowdSystem builds a fresh system (empty truth DB and route cache)
// whose TR shortcuts are disabled, so every request reaches the CR module.
func forcedCrowdSystem(t *testing.T, oracle Oracle) (*Scenario, *System) {
	t.Helper()
	s := scenario(t)
	cfg := s.System.Config()
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	if oracle == nil {
		oracle = &PopulationOracle{Data: s.Data, Sample: 30}
	}
	return s, New(cfg, s.Graph, s.Landmarks, s.Data, s.Pool, oracle)
}

func assertNoClaims(t *testing.T, s *Scenario) {
	t.Helper()
	for _, w := range s.Pool.Workers {
		if w.Outstanding != 0 {
			t.Errorf("worker %d outstanding = %d after cancellation", w.ID, w.Outstanding)
		}
	}
}

func TestRecommendCancelledBeforeCandidates(t *testing.T) {
	s, sys := forcedCrowdSystem(t, nil)
	from, to, depart := pickOD(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := sys.Recommend(ctx, Request{From: from, To: to, Depart: depart})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Candidate generation aborted before any provider ran: nothing was
	// cached and no truth was stored.
	if cs := sys.RouteCacheStats(); cs.Size != 0 {
		t.Errorf("route cache size = %d after cancelled request", cs.Size)
	}
	if sys.TruthDB().Len() != 0 {
		t.Error("cancelled request stored a truth")
	}
	assertNoClaims(t, s)
}

// cancellingOracle cancels the request's context from inside the pipeline —
// a deterministic stand-in for a client disconnecting mid-request.
type cancellingOracle struct {
	inner  Oracle
	cancel context.CancelFunc
}

func (o *cancellingOracle) BestRoute(from, to roadnet.NodeID, tm routing.SimTime) (roadnet.Route, error) {
	o.cancel()
	return o.inner.BestRoute(from, to, tm)
}

func TestRecommendCancelledMidCrowd(t *testing.T) {
	s := scenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	oracle := &cancellingOracle{inner: &PopulationOracle{Data: s.Data, Sample: 30}, cancel: cancel}
	_, sys := forcedCrowdSystem(t, oracle)

	from, to, depart := pickOD(s)
	_, err := sys.Recommend(ctx, Request{From: from, To: to, Depart: depart})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The claim on every assigned worker was released, no truth landed, and
	// no pending task leaked.
	assertNoClaims(t, s)
	if sys.TruthDB().Len() != 0 {
		t.Error("cancelled crowd run stored a truth")
	}
	if n := sys.OpenTasks(); n != 0 {
		t.Errorf("open tasks = %d after cancellation", n)
	}
}

func TestRecommendDeadlineExceeded(t *testing.T) {
	s, sys := forcedCrowdSystem(t, nil)
	from, to, depart := pickOD(s)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	_, err := sys.Recommend(ctx, Request{From: from, To: to, Depart: depart})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestCandidatesCancelled(t *testing.T) {
	s, sys := forcedCrowdSystem(t, nil)
	from, to, depart := pickOD(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Candidates(ctx, Request{From: from, To: to, Depart: depart}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRecommendAsyncCancelledNoPendingLeak(t *testing.T) {
	s, sys := forcedCrowdSystem(t, nil)
	from, to, depart := pickOD(s)
	req := Request{From: from, To: to, Depart: depart}

	// Warm the route cache so a cancelled request sails past candidate
	// generation and is caught at the claim/publication boundary instead.
	if _, err := sys.Candidates(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp, ticket, err := sys.RecommendAsync(ctx, req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (resp=%v ticket=%v), want context.Canceled", err, resp, ticket)
	}
	if n := sys.OpenTasks(); n != 0 {
		t.Errorf("open tasks = %d after cancelled async request", n)
	}
	assertNoClaims(t, s)
}

func TestRecommendValidationBeatsCancellation(t *testing.T) {
	// Malformed requests fail as bad requests even when already cancelled:
	// validation is cheap and its error is more actionable.
	_, sys := forcedCrowdSystem(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Recommend(ctx, Request{From: 0, To: 0}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}
