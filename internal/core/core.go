// Package core assembles the CrowdPlanner system (paper Fig. 1): the
// traditional route recommendation (TR) module — candidate generation from
// web-service-style routing and popular-route mining, truth reuse, agreement
// checking and confidence scoring — and the crowd route recommendation (CR)
// module — task generation, worker selection, simulated crowd answering with
// early stop, rewarding, and truth write-back.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/crowd"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/popular"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routecache"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/store"
	"crowdplanner/internal/task"
	"crowdplanner/internal/traj"
	"crowdplanner/internal/truth"
	"crowdplanner/internal/worker"
)

// Stage identifies which component resolved a request.
type Stage int

// Resolution stages in the order the control logic tries them.
const (
	// StageReuse: an exact truth hit answered the request (reuse truth).
	StageReuse Stage = iota
	// StageAgreement: the candidate routes agreed with each other strongly
	// enough that no human was needed.
	StageAgreement
	// StageConfidence: verified truths scored one candidate above η.
	StageConfidence
	// StageCrowd: the CR module resolved the request with worker answers.
	StageCrowd
	// StageFallback: the CR module could not run (e.g. no eligible
	// workers); the best-prior candidate was returned.
	StageFallback
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageReuse:
		return "reuse"
	case StageAgreement:
		return "agreement"
	case StageConfidence:
		return "confidence"
	case StageCrowd:
		return "crowd"
	case StageFallback:
		return "fallback"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Config collects every knob of the system. Start from DefaultConfig.
type Config struct {
	// EtaConfidence is η: the minimum truth-derived confidence at which the
	// TR module answers without the crowd.
	EtaConfidence float64
	// AgreementSim is the pairwise route similarity above which candidates
	// are said to agree.
	AgreementSim float64
	// ReuseTruth toggles the reuse-truth component (E7 ablation).
	ReuseTruth bool
	// TruthSlots quantizes departure times for truth tags.
	TruthSlots int
	// TruthRadius and TruthSlotTol bound which truths count as "near" a
	// request when scoring confidence.
	TruthRadius  float64
	TruthSlotTol int

	// KShortestAlternatives adds the web service's alternative routes
	// (k-shortest by travel time) to the candidate set when positive.
	KShortestAlternatives int

	// RoutingPreprocess enables the ALT landmark preprocessing tier: New
	// builds landmark distance tables for both web-service cost models and
	// every proposal search runs with landmark lower bounds (same routes,
	// fewer settled nodes — the win grows with graph size). Costs a one-off
	// build (two sweeps of one-to-all searches) and O(landmarks·nodes)
	// memory per cost model. Off, searches fall back to straight-line A*.
	RoutingPreprocess bool

	// RouteCacheCapacity bounds the sharded LRU cache of generated
	// candidate sets, keyed by (from, to, departure slot). Repeat OD pairs
	// within a slot skip graph search and mining entirely; entries are
	// invalidated when a new truth lands for their key. <= 0 disables the
	// cache (every request regenerates candidates from scratch).
	RouteCacheCapacity int

	Calibrate calibrate.Config
	Task      task.Config

	Familiarity worker.FamiliarityConfig
	UsePMF      bool
	PMF         worker.PMFConfig
	Select      worker.SelectConfig

	// WorkersPerTask is k for top-k eligible selection.
	WorkersPerTask int
	// EarlyStop is the per-question posterior threshold (>0.5 enables).
	EarlyStop float64
	Answers   crowd.AnswerModel
	Rewards   crowd.RewardConfig

	// OracleSample bounds how many drivers the population oracle polls.
	OracleSample int

	// UseSourceReliability enables the paper's future-work extension
	// (§VI, "quality control of popular route mining algorithms"): track
	// each provider's historical precision and fold it into candidate
	// priors. Off by default so the canonical experiment numbers match
	// EXPERIMENTS.md.
	UseSourceReliability bool

	// Store is the storage backend for the system's mutable state: verified
	// truths, worker rewards/answer histories, and pending async crowd
	// tasks. Commits are logged to it as they happen. nil keeps the
	// pre-storage-layer behaviour — state lives (and dies) with the
	// process; commits are counted but not retained (store.Discard). With a
	// durable backend (diskstore), call LoadFromStore after New and before
	// serving to replay persisted state.
	Store store.Store

	// Breaker is the circuit breaker over store appends: K consecutive
	// failures flip the system to a degraded read-only mode instead of
	// silently dropping every commit (see breaker.go). Threshold <= 0
	// disables it.
	Breaker BreakerConfig

	Seed int64
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		EtaConfidence:         0.75,
		AgreementSim:          0.8,
		ReuseTruth:            true,
		TruthSlots:            24,
		TruthRadius:           600,
		TruthSlotTol:          1,
		KShortestAlternatives: 2,
		RoutingPreprocess:     true,
		RouteCacheCapacity:    4096,
		Calibrate:             calibrate.DefaultConfig(),
		Task:                  task.DefaultConfig(),
		Familiarity:           worker.DefaultFamiliarityConfig(),
		UsePMF:                true,
		PMF:                   worker.DefaultPMFConfig(),
		Select:                worker.DefaultSelectConfig(),
		WorkersPerTask:        9,
		EarlyStop:             0.95,
		Answers:               crowd.DefaultAnswerModel(),
		Rewards:               crowd.DefaultRewardConfig(),
		OracleSample:          60,
		Breaker:               DefaultBreakerConfig(),
		Seed:                  1,
	}
}

// Oracle supplies the (simulated) true best route — the stand-in for the
// collective knowledge in workers' heads. See PopulationOracle.
type Oracle interface {
	BestRoute(from, to roadnet.NodeID, t routing.SimTime) (roadnet.Route, error)
}

// PopulationOracle answers with the population-preferred route of the
// driver simulation.
type PopulationOracle struct {
	Data   *traj.Dataset
	Sample int
}

// BestRoute implements Oracle.
func (o *PopulationOracle) BestRoute(from, to roadnet.NodeID, t routing.SimTime) (roadnet.Route, error) {
	return o.Data.GroundTruth(from, to, t, o.Sample)
}

// System is a fully assembled CrowdPlanner instance. It is safe for
// concurrent use: requests may be served from many goroutines at once.
//
// Shared state is guarded by two locks with fine-grained scopes (DESIGN.md
// §6). mu covers task bookkeeping (ID allocation, the pending-task map) and
// the familiarity-matrix pointers; poolMu covers the mutable worker state
// (Outstanding counters, rewards, answer history). Neither lock is ever
// held across a crowd simulation, a graph search, or an oracle call. The
// lock order is mu before poolMu; randomness is per task (see taskSeed), so
// concurrent tasks never contend on — or perturb — a shared RNG stream.
type System struct {
	cfg       Config
	graph     *roadnet.Graph
	landmarks *landmark.Set
	data      *traj.Dataset
	truth     *truth.DB
	pool      *worker.Pool
	miners    []popular.Miner
	oracle    Oracle
	routes    *routecache.Cache[[]task.Candidate] // generated candidates by OD+slot

	// ALT landmark tables for the two web-service cost models, built once in
	// New when Config.RoutingPreprocess is set (nil otherwise). Immutable
	// after construction, like the graph they index.
	prepDist *routing.Preprocessed
	prepTime *routing.Preprocessed

	mu sync.Mutex
	//cplint:guardedby mu
	mstar *worker.Matrix // system's estimate (PMF-densified, accumulated)
	//cplint:guardedby mu
	mtrue *worker.Matrix // workers' actual knowledge (no PMF inference)
	//cplint:guardedby mu
	nextTaskID int64
	//cplint:guardedby mu
	pending map[int64]*PendingTask // async crowd tasks awaiting answers

	poolMu   sync.RWMutex        // guards Outstanding/Reward/History on pool workers
	reliance *reliabilityTracker // per-source precision (future work §VI)

	// backend receives every state commit (truths, worker events, task
	// lifecycle) as it happens; see internal/store and persist.go for the
	// locking contract (appends never run under mu/poolMu). appendErrs
	// counts failed appends — the serving path never blocks on a sick
	// backend; the count is surfaced on /v1/health. breaker is the circuit
	// breaker the backend is wrapped in (nil when disabled); Degraded()
	// reports its state to the server layer.
	backend    store.Store
	breaker    *breakerStore
	appendErrs atomic.Uint64

	// Singleflight over route-cache misses: N concurrent requests for one
	// cold OD+slot cost one candidate generation (fan-out of graph searches
	// and miners); followers wait for the leader and share the result.
	flightMu sync.Mutex
	//cplint:guardedby flightMu
	flights   map[routecache.Key]*flight
	coalesced atomic.Uint64 // requests that waited on another's generation
}

// New assembles a system over the given substrates. The landmark set must
// already carry significances (run InferSignificance first). When the config
// carries a durable storage backend, call LoadFromStore before serving to
// replay persisted state.
func New(cfg Config, g *roadnet.Graph, lms *landmark.Set, data *traj.Dataset, pool *worker.Pool, oracle Oracle) *System {
	backend := cfg.Store
	if backend == nil {
		// No persistence configured: count commits for observability but
		// retain nothing (an unconsumed in-memory log would grow without
		// bound in long-lived servers and benchmarks).
		backend = store.Discard()
	}
	var breaker *breakerStore
	if cfg.Breaker.Threshold > 0 {
		breaker = newBreakerStore(backend, cfg.Breaker)
		backend = breaker
	}
	s := &System{
		cfg:       cfg,
		graph:     g,
		landmarks: lms,
		data:      data,
		truth:     truth.NewDB(cfg.TruthSlots),
		pool:      pool,
		miners:    []popular.Miner{popular.NewMPR(), popular.NewLDR(), popular.NewMFP()},
		oracle:    oracle,
		routes:    routecache.New[[]task.Candidate](cfg.RouteCacheCapacity),
		reliance:  newReliabilityTracker(),
		backend:   backend,
		breaker:   breaker,
		flights:   make(map[routecache.Key]*flight),
	}
	// Spatial truth index: bucket truths by from-endpoint cell sized to the
	// confidence query radius, so Near touches only nearby buckets.
	s.truth.EnableSpatialIndex(g, cfg.TruthRadius)
	// ALT landmark tables: one preprocessing pass per web-service cost
	// model, shared by every proposal search this System runs.
	if cfg.RoutingPreprocess {
		s.prepDist = routing.Preprocess(g, routing.DistanceCost, routing.DefaultPrepConfig())
		s.prepTime = routing.Preprocess(g, routing.TravelTimeCost, routing.DefaultPrepConfig())
	}
	// Mining index: endpoint grid + footmark frequency graphs over the
	// trajectory corpus, so the popular-route miners answer from a handful
	// of buckets instead of re-scanning every trip, and IngestTrips can grow
	// the corpus while serving.
	if data != nil {
		data.EnableMiningIndex()
	}
	s.RefreshFamiliarity()
	return s
}

// taskSeed derives a per-task RNG seed from the configured seed and the
// task ID (splitmix64 finalizer). Each crowd task draws from its own
// deterministic stream: single-threaded runs reproduce exactly for a fixed
// Config.Seed, and concurrent tasks stay independent of scheduling order.
func taskSeed(seed, id int64) int64 {
	z := uint64(seed) + uint64(id)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Graph exposes the road network.
func (s *System) Graph() *roadnet.Graph { return s.graph }

// Landmarks exposes the landmark set.
func (s *System) Landmarks() *landmark.Set { return s.landmarks }

// TruthDB exposes the verified-truth store.
func (s *System) TruthDB() *truth.DB { return s.truth }

// Pool exposes the worker pool.
func (s *System) Pool() *worker.Pool { return s.pool }

// CorpusSize returns the current trajectory-corpus size (generated plus
// ingested trips). Surfaced on GET /v1/health.
func (s *System) CorpusSize() int { return s.data.NumTrips() }

// Config returns the active configuration.
func (s *System) Config() Config { return s.cfg }

// RefreshFamiliarity rebuilds both familiarity matrices from current
// profiles and histories: the workers' actual knowledge M_true (raw scores,
// spatially accumulated) and the system's estimate M* (raw scores, PMF
// densified, then accumulated). Selection uses the estimate; the simulated
// crowd answers according to actual knowledge — keeping the two distinct is
// what lets the experiments measure whether PMF-based selection finds
// genuinely knowledgeable workers. Call after batches of crowd work to fold
// new history into selection.
func (s *System) RefreshFamiliarity() {
	s.poolMu.RLock()
	m := worker.BuildMatrix(s.pool, s.landmarks, s.cfg.Familiarity)
	s.poolMu.RUnlock()
	mtrue := worker.Accumulate(m, s.landmarks, s.cfg.Familiarity)
	est := m
	if s.cfg.UsePMF {
		model := worker.FitPMF(m, s.cfg.PMF)
		est = worker.Densify(m, model, 0.05)
	}
	mstar := worker.Accumulate(est, s.landmarks, s.cfg.Familiarity)
	s.mu.Lock()
	s.mstar = mstar
	s.mtrue = mtrue
	s.mu.Unlock()
}

// Familiarity returns the system's estimated accumulated familiarity matrix
// M* (the one worker selection consults).
func (s *System) Familiarity() *worker.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mstar
}

// TrueFamiliarity returns the workers' actual accumulated knowledge — the
// signal the simulated crowd answers with. A real deployment has no such
// matrix; it exists because the crowd is simulated (see DESIGN.md).
func (s *System) TrueFamiliarity() *worker.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mtrue
}

// Request is a route recommendation request.
type Request struct {
	From, To    roadnet.NodeID
	Depart      routing.SimTime
	DeadlineMin float64 // response deadline for crowd tasks; 0 = config default
}

// Response reports how a request was answered.
type Response struct {
	Route      roadnet.Route
	Stage      Stage
	Confidence float64
	Candidates []task.Candidate
	Task       *task.Task     // non-nil for StageCrowd
	Run        *crowd.TaskRun // non-nil for StageCrowd
	Workers    []worker.Ranked
}

// Errors returned by Recommend.
var (
	ErrBadRequest   = errors.New("core: invalid request")
	ErrNoCandidates = errors.New("core: no provider produced a candidate route")
)

// Recommend processes one request through the full Fig. 1 workflow,
// simulating the crowd synchronously when it is needed. For the open-loop
// protocol where real clients submit answers over time, see RecommendAsync.
//
// The context bounds the whole pipeline: cancellation (a disconnected HTTP
// client) or a deadline is observed before candidate fan-out, inside the
// fan-out, around the oracle call, and between crowd questions, and the
// context's error is returned. Shared state is never left inconsistent by a
// cancellation: claimed workers are released and no partial truth is stored.
func (s *System) Recommend(ctx context.Context, req Request) (*Response, error) {
	// Stages 1–4: reuse truth, candidate generation, agreement check,
	// confidence scoring.
	resp, cands, err := s.resolveTraditional(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp != nil {
		return resp, nil
	}
	// Stage 5: crowd route recommendation.
	return s.crowdResolve(ctx, req, cands)
}

// Candidates exposes the route generation component: the calibrated,
// deduplicated candidate set for a request. Used by the experiment harness
// to study the CR module in isolation. The only error is the context's, when
// it is cancelled before or during generation.
func (s *System) Candidates(ctx context.Context, req Request) ([]task.Candidate, error) {
	return s.generateCandidates(ctx, req)
}

// proposal is one provider's route suggestion.
type proposal struct {
	source string
	route  roadnet.Route
}

// cacheKey quantizes a request to its route-cache key, using the truth
// database's slot granularity so cache invalidation lines up with truth
// tags.
func (s *System) cacheKey(req Request) routecache.Key {
	return routecache.Key{
		From: int64(req.From),
		To:   int64(req.To),
		Slot: req.Depart.Slot(s.cfg.TruthSlots),
	}
}

// flight is one in-progress candidate generation other requests for the
// same key can wait on. The leader fills cands/err, then closes done.
type flight struct {
	done  chan struct{}
	cands []task.Candidate
	err   error
}

// generateCandidates returns the calibrated candidate set for a request:
// from the route cache when warm, otherwise via computeCandidates behind a
// per-key singleflight — N concurrent requests for one cold OD+slot cost
// one fan-out of graph searches and miners; the followers wait for the
// leader and copy its result (counted in coalesced). A follower whose
// leader failed (typically the leader's own context was cancelled) retries
// from the top: re-check the cache, then race to become the next leader.
func (s *System) generateCandidates(ctx context.Context, req Request) ([]task.Candidate, error) {
	key := s.cacheKey(req)
	for {
		if cached, ok := s.routes.Get(key); ok {
			// Candidates are value structs; hand back a fresh slice so callers
			// can fill in priors without mutating the shared cached copy.
			out := make([]task.Candidate, len(cached))
			copy(out, cached)
			return out, nil
		}
		if err := ctx.Err(); err != nil {
			// Abort before any graph search or mining runs.
			return nil, err
		}

		s.flightMu.Lock()
		if f, ok := s.flights[key]; ok {
			s.flightMu.Unlock()
			s.coalesced.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err != nil {
				continue // leader failed; retry as a potential leader
			}
			out := make([]task.Candidate, len(f.cands))
			copy(out, f.cands)
			return out, nil
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.flightMu.Unlock()

		f.cands, f.err = s.computeCandidates(ctx, req, key)
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
		if f.err != nil {
			return nil, f.err
		}
		// The leader also hands back a copy: its caller fills in priors,
		// and followers may still be copying from f.cands.
		out := make([]task.Candidate, len(f.cands))
		copy(out, f.cands)
		return out, nil
	}
}

// CoalescedRequests counts requests that waited on another request's
// in-flight candidate generation instead of starting their own (the
// singleflight counter surfaced on GET /v1/health).
func (s *System) CoalescedRequests() uint64 { return s.coalesced.Load() }

// computeCandidates collects routes from the web-service providers and the
// popular-route miners, calibrates them to landmark-based form, and dedups
// identical node sequences (merging provenance). The providers are
// independent pure searches, so they fan out across goroutines; the merge
// happens in a fixed provider order, keeping the result identical to a
// sequential run. Generated sets are cached by (from, to, depart-slot) so
// repeat OD pairs skip graph search entirely.
func (s *System) computeCandidates(ctx context.Context, req Request, key routecache.Key) ([]task.Candidate, error) {
	proposals := s.proposeRoutes(ctx, req)
	if err := ctx.Err(); err != nil {
		// Cancelled mid-fan-out: the proposal set may be partial, so don't
		// calibrate or cache it.
		return nil, err
	}

	var cands []task.Candidate
	seen := map[string]int{}
	for _, p := range proposals {
		rk := p.route.String()
		if i, ok := seen[rk]; ok {
			cands[i].Source += "+" + p.source
			continue
		}
		seen[rk] = len(cands)
		cands = append(cands, task.Candidate{
			Source: p.source,
			Route:  p.route,
			LRoute: calibrate.Calibrate(s.graph, s.landmarks, p.route, s.cfg.Calibrate),
		})
	}
	if len(cands) > 0 {
		s.routes.Put(key, append([]task.Candidate(nil), cands...))
	}
	return cands, nil
}

// proposeRoutes runs every route provider concurrently — the two
// shortest-path searches, the k-shortest alternatives, and the
// popular-route miners — and returns their proposals merged in the fixed
// provider order (deterministic regardless of goroutine scheduling). All
// providers are read-only over immutable substrates, so no locking is
// needed. Each fan-out goroutine re-checks the context before starting its
// search, so a cancelled request skips every provider that has not yet been
// scheduled; the caller detects the cancellation and discards the partial
// merge.
func (s *System) proposeRoutes(ctx context.Context, req Request) []proposal {
	slots := make([][]proposal, 3+len(s.miners))
	var wg sync.WaitGroup
	run := func(i int, f func() []proposal) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			slots[i] = f()
		}()
	}
	run(0, func() []proposal {
		// Goal-directed: the cost functions carry admissible per-meter
		// lower bounds — tightened to landmark bounds when the ALT tier is
		// built — so the search returns the same route as plain Dijkstra
		// while settling a fraction of the graph.
		var r roadnet.Route
		var err error
		if s.prepDist != nil {
			r, _, err = s.prepDist.AStar(req.From, req.To, req.Depart)
		} else {
			r, _, err = routing.AStar(s.graph, req.From, req.To, routing.DistanceCost, req.Depart)
		}
		if err == nil {
			return []proposal{{"ws-shortest", r}}
		}
		return nil
	})
	run(1, func() []proposal {
		var r roadnet.Route
		var err error
		if s.prepTime != nil {
			r, _, err = s.prepTime.AStar(req.From, req.To, req.Depart)
		} else {
			r, _, err = routing.AStar(s.graph, req.From, req.To, routing.TravelTimeCost, req.Depart)
		}
		if err == nil {
			return []proposal{{"ws-fastest", r}}
		}
		return nil
	})
	run(2, func() []proposal {
		k := s.cfg.KShortestAlternatives
		if k <= 0 {
			return nil
		}
		var rs []roadnet.Route
		var err error
		if s.prepTime != nil {
			rs, _, err = s.prepTime.KShortest(req.From, req.To, k+1, req.Depart)
		} else {
			rs, _, err = routing.KShortest(s.graph, req.From, req.To, k+1, routing.TravelTimeCost, req.Depart)
		}
		if err != nil {
			return nil
		}
		var out []proposal
		for i, r := range rs {
			if i == 0 {
				continue // same as ws-fastest
			}
			out = append(out, proposal{fmt.Sprintf("ws-alt%d", i), r})
		}
		return out
	})
	for mi, m := range s.miners {
		run(3+mi, func() []proposal {
			if r, _, err := m.Mine(s.data, req.From, req.To, req.Depart); err == nil {
				return []proposal{{m.Name(), r}}
			}
			return nil
		})
	}
	wg.Wait()

	var out []proposal
	for _, ps := range slots {
		out = append(out, ps...)
	}
	return out
}

// RouteCacheStats reports the candidate-cache counters (all zero when the
// cache is disabled). Surfaced on GET /api/health.
func (s *System) RouteCacheStats() routecache.Stats { return s.routes.Stats() }

// RoutingStats reports the search engine's counters (searches run, heap
// pushes, pooled-workspace hits). The counters are process-wide — the
// routing engine's workspace pool is shared by every System in the process —
// and are surfaced under the `routing` section of GET /v1/health.
func (s *System) RoutingStats() routing.Stats { return routing.CounterSnapshot() }

// claimWorkers increments Outstanding for the selected workers, re-checking
// the quota condition under the write lock. TopKEligible checks the quota
// under a read lock, so two concurrent requests can both select a worker
// with one slot left; re-checking at claim time keeps η_#q a hard bound.
// The returned slice keeps only the workers actually claimed (selection
// order preserved); the caller owns the matching decrements.
func (s *System) claimWorkers(assigned []worker.Ranked, cfg worker.SelectConfig) []worker.Ranked {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	kept := assigned[:0]
	for _, r := range assigned {
		if cfg.MaxOutstanding > 0 && r.Worker.Outstanding >= cfg.MaxOutstanding {
			continue // lost the slot to a concurrent assignment
		}
		r.Worker.Outstanding++
		kept = append(kept, r)
	}
	return kept
}

// TopWorkerInfo is a consistent snapshot of one ranked worker: the mutable
// fields are copied out while the pool lock is held, so callers can read
// them without racing concurrent reward write-backs.
type TopWorkerInfo struct {
	ID     worker.ID
	Score  float64
	Reward float64
}

// TopWorkers ranks the k most eligible workers for the given landmarks
// under the system's current familiarity estimate, holding the pool lock so
// the selection — and the returned reward balances — are consistent with
// concurrent reward write-backs.
func (s *System) TopWorkers(lids []landmark.ID, k int, cfg worker.SelectConfig) []TopWorkerInfo {
	mstar := s.Familiarity()
	s.poolMu.RLock()
	defer s.poolMu.RUnlock()
	ranked := worker.TopKEligible(s.pool, mstar, lids, k, cfg)
	out := make([]TopWorkerInfo, 0, len(ranked))
	for _, r := range ranked {
		out = append(out, TopWorkerInfo{ID: r.Worker.ID, Score: r.Score, Reward: r.Worker.Reward})
	}
	return out
}

// agreement reports whether all candidates pairwise agree above the
// configured similarity; if so it returns the medoid (the candidate with
// the highest mean similarity to the others).
func (s *System) agreement(cands []task.Candidate) (task.Candidate, float64, bool) {
	if len(cands) == 0 {
		// Callers filter empty sets out (ErrNoCandidates), but guard the
		// len(cands)-1 division below against future call sites.
		return task.Candidate{}, 0, false
	}
	if len(cands) == 1 {
		return cands[0], 1, true
	}
	bestIdx, bestMean := -1, -1.0
	minSim := 1.0
	for i := range cands {
		var mean float64
		for j := range cands {
			if i == j {
				continue
			}
			sim := cands[i].Route.Similarity(cands[j].Route)
			mean += sim
			if i < j && sim < minSim {
				minSim = sim
			}
		}
		mean /= float64(len(cands) - 1)
		if mean > bestMean {
			bestMean, bestIdx = mean, i
		}
	}
	if minSim >= s.cfg.AgreementSim {
		return cands[bestIdx], bestMean, true
	}
	return task.Candidate{}, 0, false
}

// crowdResolve runs the CR module: task generation, worker selection,
// simulated answering with early stop, rewards, and truth write-back.
// Cancellation is observed around the oracle call and between questions of
// the crowd simulation; claimed workers are always released on the way out.
func (s *System) crowdResolve(ctx context.Context, req Request, cands []task.Candidate) (*Response, error) {
	merged := task.MergeIndistinguishable(cands)
	if len(merged) == 1 {
		// All candidates look identical to humans; no task needed.
		s.logTruth(s.storeTruth(req, merged[0].Route, 0.5, false))
		return &Response{Route: merged[0].Route, Stage: StageFallback, Confidence: 0.5, Candidates: cands}, nil
	}

	s.mu.Lock()
	s.nextTaskID++
	id := s.nextTaskID
	mstar := s.mstar
	mtrue := s.mtrue
	s.mu.Unlock()

	tk, err := task.Generate(id, s.landmarks, merged, s.cfg.Task)
	if err != nil {
		return nil, fmt.Errorf("core: generating task: %w", err)
	}

	selCfg := s.cfg.Select
	if req.DeadlineMin > 0 {
		selCfg.DeadlineMinutes = req.DeadlineMin
	}
	s.poolMu.RLock()
	assigned := worker.TopKEligible(s.pool, mstar, tk.Questions, s.cfg.WorkersPerTask, selCfg)
	s.poolMu.RUnlock()
	if len(assigned) == 0 {
		best := bestByConsensus(merged)
		s.logTruth(s.storeTruth(req, best.Route, 0.5, false))
		return &Response{Route: best.Route, Stage: StageFallback, Confidence: 0.5, Candidates: cands, Task: tk}, nil
	}
	assigned = s.claimWorkers(assigned, selCfg)
	if len(assigned) == 0 {
		// Every selected worker hit quota between selection and claim.
		best := bestByConsensus(merged)
		s.logTruth(s.storeTruth(req, best.Route, 0.5, false))
		return &Response{Route: best.Route, Stage: StageFallback, Confidence: 0.5, Candidates: cands, Task: tk}, nil
	}
	defer func() {
		s.poolMu.Lock()
		for _, r := range assigned {
			r.Worker.Outstanding--
		}
		s.poolMu.Unlock()
	}()

	if err := ctx.Err(); err != nil {
		return nil, err // deferred claim release runs
	}

	// The simulated truth: the population-preferred route's landmarks.
	truthRoute, err := s.oracle.BestRoute(req.From, req.To, req.Depart)
	if err != nil {
		return nil, fmt.Errorf("core: oracle: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	truthLR := calibrate.Calibrate(s.graph, s.landmarks, truthRoute, s.cfg.Calibrate)
	truthSet := truthLR.IDSet()

	// Workers answer according to their actual knowledge, not the system's
	// estimate of it.
	fam := func(workerIdx int, l landmark.ID) float64 {
		if v, ok := mtrue.Get(workerIdx, int(l)); ok {
			return v
		}
		return 0
	}
	// The simulation runs lock-free on a per-task RNG stream; only the
	// reward write-back after each question briefly takes the pool lock.
	rng := rand.New(rand.NewSource(taskSeed(s.cfg.Seed, id)))
	run, err := crowd.RunTaskCtx(ctx, tk, assigned, truthSet, fam, s.cfg.Answers, s.cfg.EarlyStop, rng,
		func(l landmark.ID, answers []crowd.Answer, used int) {
			s.poolMu.Lock()
			events := crowd.Reward(s.pool, l, answers, used, s.cfg.Rewards)
			s.poolMu.Unlock()
			s.logWorkerEvents(events)
		})
	if err != nil {
		// Cancelled mid-task: rewards for completed questions stand, but no
		// truth is stored and no winner is declared.
		return nil, err
	}

	winner := merged[run.Resolved]
	s.logTruth(s.storeTruth(req, winner.Route, run.MinConfidence, true))
	s.reliance.record(merged, winner.Route)
	return &Response{
		Route: winner.Route, Stage: StageCrowd, Confidence: run.MinConfidence,
		Candidates: cands, Task: tk, Run: &run, Workers: assigned,
	}, nil
}

// bestByConsensus is the TR module's best guess when the crowd cannot be
// asked: the candidate maximizing truth-derived prior plus mean similarity
// to the other candidates (the providers' consensus medoid).
func bestByConsensus(cands []task.Candidate) task.Candidate {
	if len(cands) == 0 {
		// Defensive: callers guarantee a non-empty set, but an empty one
		// must not divide by len(cands)-1 or index cands[0].
		return task.Candidate{}
	}
	if len(cands) == 1 {
		return cands[0]
	}
	best, bestScore := 0, math.Inf(-1)
	for i := range cands {
		var mean float64
		for j := range cands {
			if i != j {
				mean += cands[i].Route.Similarity(cands[j].Route)
			}
		}
		mean /= float64(len(cands) - 1)
		if score := cands[i].Prior + mean; score > bestScore {
			best, bestScore = i, score
		}
	}
	return cands[best]
}

// storeTruth commits a verified truth to the in-memory database and returns
// the stored entry so the caller can log it to the storage backend —
// immediately when no core lock is held (logTruth), or via a walBatch
// flushed after release (see persist.go for the locking contract).
func (s *System) storeTruth(req Request, route roadnet.Route, conf float64, byCrowd bool) truth.Entry {
	if conf <= 0 {
		conf = 0.5
	}
	if conf > 1 {
		conf = 1
	}
	e := truth.Entry{
		From: req.From, To: req.To,
		Slot:       req.Depart.Slot(s.cfg.TruthSlots),
		Route:      route,
		Confidence: conf,
		Crowd:      byCrowd,
		StoredAt:   req.Depart,
	}
	s.truth.Store(e)
	// A crowd-verified truth is new external knowledge about this OD+slot:
	// drop the cached candidate sets so the next evaluation rebuilds from
	// scratch. The invalidation covers every slot within TruthSlotTol of the
	// commit — truth.DB.Near honors that tolerance when scoring candidates,
	// so a cached set for an adjacent slot is just as stale as the exact
	// one. Truths *derived* from the candidates themselves (agreement/
	// confidence stages) don't invalidate — candidate generation is
	// independent of the truth store, and evicting on every derived store
	// would defeat the cache exactly in re-evaluation mode (ReuseTruth
	// off), where it absorbs the repeat graph searches.
	if byCrowd {
		key := s.cacheKey(req)
		slots, tol := s.cfg.TruthSlots, s.cfg.TruthSlotTol
		if tol < 0 {
			tol = 0
		}
		if 2*tol+1 >= slots {
			for sl := 0; sl < slots; sl++ {
				s.routes.Invalidate(routecache.Key{From: key.From, To: key.To, Slot: sl})
			}
		} else {
			for ds := -tol; ds <= tol; ds++ {
				sl := ((key.Slot+ds)%slots + slots) % slots
				s.routes.Invalidate(routecache.Key{From: key.From, To: key.To, Slot: sl})
			}
		}
	}
	return e
}
