// Package core assembles the CrowdPlanner system (paper Fig. 1): the
// traditional route recommendation (TR) module — candidate generation from
// web-service-style routing and popular-route mining, truth reuse, agreement
// checking and confidence scoring — and the crowd route recommendation (CR)
// module — task generation, worker selection, simulated crowd answering with
// early stop, rewarding, and truth write-back.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/crowd"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/popular"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/task"
	"crowdplanner/internal/traj"
	"crowdplanner/internal/truth"
	"crowdplanner/internal/worker"
)

// Stage identifies which component resolved a request.
type Stage int

// Resolution stages in the order the control logic tries them.
const (
	// StageReuse: an exact truth hit answered the request (reuse truth).
	StageReuse Stage = iota
	// StageAgreement: the candidate routes agreed with each other strongly
	// enough that no human was needed.
	StageAgreement
	// StageConfidence: verified truths scored one candidate above η.
	StageConfidence
	// StageCrowd: the CR module resolved the request with worker answers.
	StageCrowd
	// StageFallback: the CR module could not run (e.g. no eligible
	// workers); the best-prior candidate was returned.
	StageFallback
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageReuse:
		return "reuse"
	case StageAgreement:
		return "agreement"
	case StageConfidence:
		return "confidence"
	case StageCrowd:
		return "crowd"
	case StageFallback:
		return "fallback"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Config collects every knob of the system. Start from DefaultConfig.
type Config struct {
	// EtaConfidence is η: the minimum truth-derived confidence at which the
	// TR module answers without the crowd.
	EtaConfidence float64
	// AgreementSim is the pairwise route similarity above which candidates
	// are said to agree.
	AgreementSim float64
	// ReuseTruth toggles the reuse-truth component (E7 ablation).
	ReuseTruth bool
	// TruthSlots quantizes departure times for truth tags.
	TruthSlots int
	// TruthRadius and TruthSlotTol bound which truths count as "near" a
	// request when scoring confidence.
	TruthRadius  float64
	TruthSlotTol int

	// KShortestAlternatives adds the web service's alternative routes
	// (k-shortest by travel time) to the candidate set when positive.
	KShortestAlternatives int

	Calibrate calibrate.Config
	Task      task.Config

	Familiarity worker.FamiliarityConfig
	UsePMF      bool
	PMF         worker.PMFConfig
	Select      worker.SelectConfig

	// WorkersPerTask is k for top-k eligible selection.
	WorkersPerTask int
	// EarlyStop is the per-question posterior threshold (>0.5 enables).
	EarlyStop float64
	Answers   crowd.AnswerModel
	Rewards   crowd.RewardConfig

	// OracleSample bounds how many drivers the population oracle polls.
	OracleSample int

	// UseSourceReliability enables the paper's future-work extension
	// (§VI, "quality control of popular route mining algorithms"): track
	// each provider's historical precision and fold it into candidate
	// priors. Off by default so the canonical experiment numbers match
	// EXPERIMENTS.md.
	UseSourceReliability bool

	Seed int64
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		EtaConfidence:         0.75,
		AgreementSim:          0.8,
		ReuseTruth:            true,
		TruthSlots:            24,
		TruthRadius:           600,
		TruthSlotTol:          1,
		KShortestAlternatives: 2,
		Calibrate:             calibrate.DefaultConfig(),
		Task:                  task.DefaultConfig(),
		Familiarity:           worker.DefaultFamiliarityConfig(),
		UsePMF:                true,
		PMF:                   worker.DefaultPMFConfig(),
		Select:                worker.DefaultSelectConfig(),
		WorkersPerTask:        9,
		EarlyStop:             0.95,
		Answers:               crowd.DefaultAnswerModel(),
		Rewards:               crowd.DefaultRewardConfig(),
		OracleSample:          60,
		Seed:                  1,
	}
}

// Oracle supplies the (simulated) true best route — the stand-in for the
// collective knowledge in workers' heads. See PopulationOracle.
type Oracle interface {
	BestRoute(from, to roadnet.NodeID, t routing.SimTime) (roadnet.Route, error)
}

// PopulationOracle answers with the population-preferred route of the
// driver simulation.
type PopulationOracle struct {
	Data   *traj.Dataset
	Sample int
}

// BestRoute implements Oracle.
func (o *PopulationOracle) BestRoute(from, to roadnet.NodeID, t routing.SimTime) (roadnet.Route, error) {
	return o.Data.GroundTruth(from, to, t, o.Sample)
}

// System is a fully assembled CrowdPlanner instance.
type System struct {
	cfg       Config
	graph     *roadnet.Graph
	landmarks *landmark.Set
	data      *traj.Dataset
	truth     *truth.DB
	pool      *worker.Pool
	miners    []popular.Miner
	oracle    Oracle

	mu         sync.Mutex
	mstar      *worker.Matrix // system's estimate (PMF-densified, accumulated)
	mtrue      *worker.Matrix // workers' actual knowledge (no PMF inference)
	rng        *rand.Rand
	nextTaskID int64
	pending    map[int64]*PendingTask // async crowd tasks awaiting answers
	reliance   *reliabilityTracker    // per-source precision (future work §VI)
}

// New assembles a system over the given substrates. The landmark set must
// already carry significances (run InferSignificance first).
func New(cfg Config, g *roadnet.Graph, lms *landmark.Set, data *traj.Dataset, pool *worker.Pool, oracle Oracle) *System {
	s := &System{
		cfg:       cfg,
		graph:     g,
		landmarks: lms,
		data:      data,
		truth:     truth.NewDB(cfg.TruthSlots),
		pool:      pool,
		miners:    []popular.Miner{popular.NewMPR(), popular.NewLDR(), popular.NewMFP()},
		oracle:    oracle,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		reliance:  newReliabilityTracker(),
	}
	s.RefreshFamiliarity()
	return s
}

// Graph exposes the road network.
func (s *System) Graph() *roadnet.Graph { return s.graph }

// Landmarks exposes the landmark set.
func (s *System) Landmarks() *landmark.Set { return s.landmarks }

// TruthDB exposes the verified-truth store.
func (s *System) TruthDB() *truth.DB { return s.truth }

// Pool exposes the worker pool.
func (s *System) Pool() *worker.Pool { return s.pool }

// Config returns the active configuration.
func (s *System) Config() Config { return s.cfg }

// RefreshFamiliarity rebuilds both familiarity matrices from current
// profiles and histories: the workers' actual knowledge M_true (raw scores,
// spatially accumulated) and the system's estimate M* (raw scores, PMF
// densified, then accumulated). Selection uses the estimate; the simulated
// crowd answers according to actual knowledge — keeping the two distinct is
// what lets the experiments measure whether PMF-based selection finds
// genuinely knowledgeable workers. Call after batches of crowd work to fold
// new history into selection.
func (s *System) RefreshFamiliarity() {
	m := worker.BuildMatrix(s.pool, s.landmarks, s.cfg.Familiarity)
	mtrue := worker.Accumulate(m, s.landmarks, s.cfg.Familiarity)
	est := m
	if s.cfg.UsePMF {
		model := worker.FitPMF(m, s.cfg.PMF)
		est = worker.Densify(m, model, 0.05)
	}
	mstar := worker.Accumulate(est, s.landmarks, s.cfg.Familiarity)
	s.mu.Lock()
	s.mstar = mstar
	s.mtrue = mtrue
	s.mu.Unlock()
}

// Familiarity returns the system's estimated accumulated familiarity matrix
// M* (the one worker selection consults).
func (s *System) Familiarity() *worker.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mstar
}

// TrueFamiliarity returns the workers' actual accumulated knowledge — the
// signal the simulated crowd answers with. A real deployment has no such
// matrix; it exists because the crowd is simulated (see DESIGN.md).
func (s *System) TrueFamiliarity() *worker.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mtrue
}

// Request is a route recommendation request.
type Request struct {
	From, To    roadnet.NodeID
	Depart      routing.SimTime
	DeadlineMin float64 // response deadline for crowd tasks; 0 = config default
}

// Response reports how a request was answered.
type Response struct {
	Route      roadnet.Route
	Stage      Stage
	Confidence float64
	Candidates []task.Candidate
	Task       *task.Task     // non-nil for StageCrowd
	Run        *crowd.TaskRun // non-nil for StageCrowd
	Workers    []worker.Ranked
}

// Errors returned by Recommend.
var (
	ErrBadRequest   = errors.New("core: invalid request")
	ErrNoCandidates = errors.New("core: no provider produced a candidate route")
)

// Recommend processes one request through the full Fig. 1 workflow,
// simulating the crowd synchronously when it is needed. For the open-loop
// protocol where real clients submit answers over time, see RecommendAsync.
func (s *System) Recommend(req Request) (*Response, error) {
	// Stages 1–4: reuse truth, candidate generation, agreement check,
	// confidence scoring.
	resp, cands, err := s.resolveTraditional(req)
	if err != nil {
		return nil, err
	}
	if resp != nil {
		return resp, nil
	}
	// Stage 5: crowd route recommendation.
	return s.crowdResolve(req, cands)
}

// Candidates exposes the route generation component: the calibrated,
// deduplicated candidate set for a request. Used by the experiment harness
// to study the CR module in isolation.
func (s *System) Candidates(req Request) []task.Candidate {
	return s.generateCandidates(req)
}

// generateCandidates collects routes from the web-service providers and the
// popular-route miners, calibrates them to landmark-based form, and dedups
// identical node sequences (merging provenance).
func (s *System) generateCandidates(req Request) []task.Candidate {
	type proposal struct {
		source string
		route  roadnet.Route
	}
	var proposals []proposal
	if r, _, err := routing.ShortestPath(s.graph, req.From, req.To, routing.DistanceCost, req.Depart); err == nil {
		proposals = append(proposals, proposal{"ws-shortest", r})
	}
	if r, _, err := routing.ShortestPath(s.graph, req.From, req.To, routing.TravelTimeCost, req.Depart); err == nil {
		proposals = append(proposals, proposal{"ws-fastest", r})
	}
	if k := s.cfg.KShortestAlternatives; k > 0 {
		if rs, _, err := routing.KShortest(s.graph, req.From, req.To, k+1, routing.TravelTimeCost, req.Depart); err == nil {
			for i, r := range rs {
				if i == 0 {
					continue // same as ws-fastest
				}
				proposals = append(proposals, proposal{fmt.Sprintf("ws-alt%d", i), r})
			}
		}
	}
	for _, m := range s.miners {
		if r, _, err := m.Mine(s.data, req.From, req.To, req.Depart); err == nil {
			proposals = append(proposals, proposal{m.Name(), r})
		}
	}

	var cands []task.Candidate
	seen := map[string]int{}
	for _, p := range proposals {
		key := p.route.String()
		if i, ok := seen[key]; ok {
			cands[i].Source += "+" + p.source
			continue
		}
		seen[key] = len(cands)
		cands = append(cands, task.Candidate{
			Source: p.source,
			Route:  p.route,
			LRoute: calibrate.Calibrate(s.graph, s.landmarks, p.route, s.cfg.Calibrate),
		})
	}
	return cands
}

// agreement reports whether all candidates pairwise agree above the
// configured similarity; if so it returns the medoid (the candidate with
// the highest mean similarity to the others).
func (s *System) agreement(cands []task.Candidate) (task.Candidate, float64, bool) {
	if len(cands) == 1 {
		return cands[0], 1, true
	}
	bestIdx, bestMean := -1, -1.0
	minSim := 1.0
	for i := range cands {
		var mean float64
		for j := range cands {
			if i == j {
				continue
			}
			sim := cands[i].Route.Similarity(cands[j].Route)
			mean += sim
			if i < j && sim < minSim {
				minSim = sim
			}
		}
		mean /= float64(len(cands) - 1)
		if mean > bestMean {
			bestMean, bestIdx = mean, i
		}
	}
	if minSim >= s.cfg.AgreementSim {
		return cands[bestIdx], bestMean, true
	}
	return task.Candidate{}, 0, false
}

// crowdResolve runs the CR module: task generation, worker selection,
// simulated answering with early stop, rewards, and truth write-back.
func (s *System) crowdResolve(req Request, cands []task.Candidate) (*Response, error) {
	merged := task.MergeIndistinguishable(cands)
	if len(merged) == 1 {
		// All candidates look identical to humans; no task needed.
		s.storeTruth(req, merged[0].Route, 0.5, false)
		return &Response{Route: merged[0].Route, Stage: StageFallback, Confidence: 0.5, Candidates: cands}, nil
	}

	s.mu.Lock()
	s.nextTaskID++
	id := s.nextTaskID
	mstar := s.mstar
	mtrue := s.mtrue
	s.mu.Unlock()

	tk, err := task.Generate(id, s.landmarks, merged, s.cfg.Task)
	if err != nil {
		return nil, fmt.Errorf("core: generating task: %w", err)
	}

	selCfg := s.cfg.Select
	if req.DeadlineMin > 0 {
		selCfg.DeadlineMinutes = req.DeadlineMin
	}
	assigned := worker.TopKEligible(s.pool, mstar, tk.Questions, s.cfg.WorkersPerTask, selCfg)
	if len(assigned) == 0 {
		best := bestByConsensus(merged)
		s.storeTruth(req, best.Route, 0.5, false)
		return &Response{Route: best.Route, Stage: StageFallback, Confidence: 0.5, Candidates: cands, Task: tk}, nil
	}
	s.mu.Lock()
	for _, r := range assigned {
		r.Worker.Outstanding++
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		for _, r := range assigned {
			r.Worker.Outstanding--
		}
		s.mu.Unlock()
	}()

	// The simulated truth: the population-preferred route's landmarks.
	truthRoute, err := s.oracle.BestRoute(req.From, req.To, req.Depart)
	if err != nil {
		return nil, fmt.Errorf("core: oracle: %w", err)
	}
	truthLR := calibrate.Calibrate(s.graph, s.landmarks, truthRoute, s.cfg.Calibrate)
	truthSet := truthLR.IDSet()

	// Workers answer according to their actual knowledge, not the system's
	// estimate of it.
	fam := func(workerIdx int, l landmark.ID) float64 {
		if v, ok := mtrue.Get(workerIdx, int(l)); ok {
			return v
		}
		return 0
	}
	s.mu.Lock()
	run := crowd.RunTaskHooked(tk, assigned, truthSet, fam, s.cfg.Answers, s.cfg.EarlyStop, s.rng,
		func(l landmark.ID, answers []crowd.Answer, used int) {
			crowd.Reward(s.pool, l, answers, used, s.cfg.Rewards)
		})
	s.mu.Unlock()

	winner := merged[run.Resolved]
	s.storeTruth(req, winner.Route, run.MinConfidence, true)
	s.reliance.record(merged, winner.Route)
	return &Response{
		Route: winner.Route, Stage: StageCrowd, Confidence: run.MinConfidence,
		Candidates: cands, Task: tk, Run: &run, Workers: assigned,
	}, nil
}

// bestByConsensus is the TR module's best guess when the crowd cannot be
// asked: the candidate maximizing truth-derived prior plus mean similarity
// to the other candidates (the providers' consensus medoid).
func bestByConsensus(cands []task.Candidate) task.Candidate {
	if len(cands) == 1 {
		return cands[0]
	}
	best, bestScore := 0, math.Inf(-1)
	for i := range cands {
		var mean float64
		for j := range cands {
			if i != j {
				mean += cands[i].Route.Similarity(cands[j].Route)
			}
		}
		mean /= float64(len(cands) - 1)
		if score := cands[i].Prior + mean; score > bestScore {
			best, bestScore = i, score
		}
	}
	return cands[best]
}

func (s *System) storeTruth(req Request, route roadnet.Route, conf float64, byCrowd bool) {
	if conf <= 0 {
		conf = 0.5
	}
	if conf > 1 {
		conf = 1
	}
	s.truth.Store(truth.Entry{
		From: req.From, To: req.To,
		Slot:       req.Depart.Slot(s.cfg.TruthSlots),
		Route:      route,
		Confidence: conf,
		Crowd:      byCrowd,
		StoredAt:   req.Depart,
	})
}
