package core

import (
	"context"
	"math"
	"testing"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/task"
)

func mkSrcCand(source string, nodes ...roadnet.NodeID) task.Candidate {
	return task.Candidate{
		Source: source,
		Route:  roadnet.NewRoute(nodes...),
		LRoute: calibrate.LandmarkRoute{},
	}
}

func TestReliabilityTrackerRecordsWinsAndLosses(t *testing.T) {
	tr := newReliabilityTracker()
	winner := roadnet.NewRoute(0, 1, 2)
	cands := []task.Candidate{
		mkSrcCand("MFP", 0, 1, 2),
		mkSrcCand("MPR", 0, 3, 2),
	}
	tr.record(cands, winner)
	tr.record(cands, winner)
	stats := tr.snapshot()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	byName := map[string]SourceStats{}
	for _, s := range stats {
		byName[s.Source] = s
	}
	if s := byName["MFP"]; s.Wins != 2 || s.Total != 2 {
		t.Errorf("MFP = %+v", s)
	}
	if s := byName["MPR"]; s.Wins != 0 || s.Total != 2 {
		t.Errorf("MPR = %+v", s)
	}
	// Laplace smoothing: MFP (2/2) → 3/4; MPR (0/2) → 1/4.
	if p := byName["MFP"].Precision(); math.Abs(p-0.75) > 1e-9 {
		t.Errorf("MFP precision = %v", p)
	}
	if p := byName["MPR"].Precision(); math.Abs(p-0.25) > 1e-9 {
		t.Errorf("MPR precision = %v", p)
	}
}

func TestReliabilityCompositeSources(t *testing.T) {
	tr := newReliabilityTracker()
	winner := roadnet.NewRoute(0, 1)
	// A deduplicated candidate credits each constituent provider.
	tr.record([]task.Candidate{mkSrcCand("ws-fastest+MFP", 0, 1)}, winner)
	stats := tr.snapshot()
	if len(stats) != 2 {
		t.Fatalf("composite should split into 2 sources, got %v", stats)
	}
	// precision() of a composite takes the strongest constituent.
	tr.record([]task.Candidate{mkSrcCand("MPR", 0, 9)}, winner) // MPR loses
	if p := tr.precision("MPR+MFP"); p <= tr.precision("MPR") {
		t.Errorf("composite precision %v should exceed weak constituent %v",
			p, tr.precision("MPR"))
	}
	// Unknown sources sit at the uninformed 0.5.
	if p := tr.precision("unknown"); p != 0.5 {
		t.Errorf("unknown precision = %v", p)
	}
}

func TestSourceStatsAccumulateThroughPipeline(t *testing.T) {
	s := scenario(t)
	cfg := s.System.Config()
	cfg.ReuseTruth = false
	sys := New(cfg, s.Graph, s.Landmarks, s.Data, s.Pool,
		&PopulationOracle{Data: s.Data, Sample: 30})
	processed := 0
	for _, tr := range s.Data.Trips {
		if processed >= 10 || tr.Route.Empty() {
			break
		}
		if _, err := sys.Recommend(context.Background(), Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		}); err == nil {
			processed++
		}
	}
	stats := sys.SourceStats()
	if len(stats) == 0 {
		t.Fatal("no source stats after resolved requests")
	}
	var total int
	for _, st := range stats {
		total += st.Total
		if st.Wins > st.Total {
			t.Errorf("%s wins %d > total %d", st.Source, st.Wins, st.Total)
		}
	}
	if total == 0 {
		t.Error("no outcomes recorded")
	}
}

func TestUseSourceReliabilityBoostsPriors(t *testing.T) {
	s := scenario(t)
	cfg := s.System.Config()
	cfg.ReuseTruth = false
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.UseSourceReliability = true
	sys := New(cfg, s.Graph, s.Landmarks, s.Data, s.Pool,
		&PopulationOracle{Data: s.Data, Sample: 30})

	from, to, depart := pickOD(s)
	_, cands, err := sys.resolveTraditional(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if cands == nil {
		t.Skip("TR resolved the request")
	}
	// With no history every source sits at 0.5, so priors are uniformly
	// boosted but positive.
	for _, c := range cands {
		if c.Prior <= 0 {
			t.Errorf("prior of %s = %v, want > 0 with reliability enabled", c.Source, c.Prior)
		}
	}
}
