package core

import (
	"context"
	"errors"
	"testing"

	"crowdplanner/internal/calibrate"
	"crowdplanner/internal/worker"
)

// forcedAsyncSystem returns a system whose TR gates never fire, so every
// request publishes a pending task.
func forcedAsyncSystem(t *testing.T) (*Scenario, *System) {
	t.Helper()
	s := scenario(t)
	cfg := s.System.Config()
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	sys := New(cfg, s.Graph, s.Landmarks, s.Data, s.Pool,
		&PopulationOracle{Data: s.Data, Sample: 30})
	return s, sys
}

// answerTruthfully drives a pending task to resolution: every assigned
// worker answers the current question according to the oracle route's
// landmark set.
func answerTruthfully(t *testing.T, s *Scenario, sys *System, p *PendingTask) *Response {
	t.Helper()
	truthRoute, err := sys.oracle.BestRoute(p.Req.From, p.Req.To, p.Req.Depart)
	if err != nil {
		t.Fatal(err)
	}
	lr := calibrate.Calibrate(s.Graph, s.Landmarks, truthRoute, sys.Config().Calibrate)
	truthSet := lr.IDSet()
	for rounds := 0; rounds < 100; rounds++ {
		lm, open := p.CurrentQuestion()
		if !open {
			break
		}
		progressed := false
		for _, r := range p.Assigned {
			resp, err := sys.SubmitAnswer(p.ID, r.Worker.ID, truthSet[lm])
			if errors.Is(err, ErrAlreadyAnswer) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			progressed = true
			if resp != nil {
				return resp
			}
			// The question may have advanced under us: stop iterating
			// workers for the old landmark.
			if cur, stillOpen := p.CurrentQuestion(); !stillOpen || cur != lm {
				break
			}
		}
		if !progressed {
			t.Fatal("no progress while task open")
		}
	}
	if p.Result == nil {
		t.Fatal("task did not resolve")
	}
	return p.Result
}

func TestAsyncLifecycleResolves(t *testing.T) {
	s, sys := forcedAsyncSystem(t)
	from, to, depart := pickOD(s)
	resp, ticket, err := sys.RecommendAsync(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil {
		t.Skipf("TR resolved despite forcing (stage %v)", resp.Stage)
	}
	if ticket == nil || ticket.State != TaskOpen {
		t.Fatal("expected an open ticket")
	}
	if _, open := ticket.CurrentQuestion(); !open {
		t.Fatal("ticket has no current question")
	}
	// Assigned workers carry outstanding load while the task is open.
	if ticket.Assigned[0].Worker.Outstanding < 1 {
		t.Error("assigned worker should have outstanding > 0")
	}

	final := answerTruthfully(t, s, sys, ticket)
	if ticket.State != TaskResolved {
		t.Fatalf("state = %v", ticket.State)
	}
	if final.Stage != StageCrowd {
		t.Errorf("stage = %v", final.Stage)
	}
	if final.Route.Empty() || !final.Route.Valid(s.Graph) {
		t.Error("resolved route invalid")
	}
	// Outstanding released; truth stored; reuse now hits.
	for _, r := range ticket.Assigned {
		if r.Worker.Outstanding != 0 {
			t.Errorf("worker %d outstanding = %d", r.Worker.ID, r.Worker.Outstanding)
		}
	}
	if _, ok := sys.TruthDB().Lookup(from, to, depart); !ok {
		t.Error("resolved task should store a truth")
	}
	// With truthful answers, the resolved route should be the candidate
	// closest to the oracle route.
	truthRoute, _ := sys.oracle.BestRoute(from, to, depart)
	best, bestSim := 0, -1.0
	for i, c := range final.Candidates {
		if sim := c.Route.Similarity(truthRoute); sim > bestSim {
			bestSim, best = sim, i
		}
	}
	if !final.Route.Equal(final.Candidates[best].Route) {
		t.Error("truthful answers should resolve to the best candidate")
	}
}

func TestAsyncSubmitValidation(t *testing.T) {
	s, sys := forcedAsyncSystem(t)
	from, to, depart := pickOD(s)
	_, ticket, err := sys.RecommendAsync(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil || ticket == nil {
		t.Skipf("no ticket: %v", err)
	}
	t.Cleanup(func() { _, _ = sys.ExpireTask(ticket.ID) }) // release workers
	// Unknown task.
	if _, err := sys.SubmitAnswer(99999, ticket.Assigned[0].Worker.ID, true); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("unknown task err = %v", err)
	}
	// Unassigned worker.
	var outsider worker.ID = -1
	for _, w := range s.Pool.Workers {
		if !ticket.IsAssigned(w.ID) {
			outsider = w.ID
			break
		}
	}
	if outsider >= 0 {
		if _, err := sys.SubmitAnswer(ticket.ID, outsider, true); !errors.Is(err, ErrNotAssigned) {
			t.Errorf("outsider err = %v", err)
		}
	}
	// Double answer.
	wid := ticket.Assigned[0].Worker.ID
	if _, err := sys.SubmitAnswer(ticket.ID, wid, true); err != nil && !errors.Is(err, ErrAlreadyAnswer) {
		t.Fatalf("first answer err = %v", err)
	}
	if _, err := sys.SubmitAnswer(ticket.ID, wid, true); !errors.Is(err, ErrAlreadyAnswer) {
		// The first answer may have closed the question (resetting the
		// answered set) — in that case a second answer is legal. Only fail
		// when the question did not advance.
		if cur, open := ticket.CurrentQuestion(); open && cur == ticket.Task.Questions[0] {
			t.Errorf("double answer err = %v", err)
		}
	}
}

func TestAsyncExpire(t *testing.T) {
	s, sys := forcedAsyncSystem(t)
	from, to, depart := pickOD(s)
	_, ticket, err := sys.RecommendAsync(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil || ticket == nil {
		t.Skipf("no ticket: %v", err)
	}
	resp, err := sys.ExpireTask(ticket.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ticket.State != TaskExpired || resp.Stage != StageFallback {
		t.Errorf("state = %v stage = %v", ticket.State, resp.Stage)
	}
	if resp.Route.Empty() {
		t.Error("expired task must still answer with the consensus route")
	}
	// Closed twice is an error.
	if _, err := sys.ExpireTask(ticket.ID); !errors.Is(err, ErrTaskClosed) {
		t.Errorf("double expire err = %v", err)
	}
	// Answers after expiry are rejected.
	if _, err := sys.SubmitAnswer(ticket.ID, ticket.Assigned[0].Worker.ID, true); !errors.Is(err, ErrTaskClosed) {
		t.Errorf("answer after expiry err = %v", err)
	}
	// Workers are released.
	for _, r := range ticket.Assigned {
		if r.Worker.Outstanding != 0 {
			t.Errorf("worker %d outstanding = %d after expiry", r.Worker.ID, r.Worker.Outstanding)
		}
	}
}

func TestAsyncPendingTasksView(t *testing.T) {
	s, sys := forcedAsyncSystem(t)
	from, to, depart := pickOD(s)
	_, ticket, err := sys.RecommendAsync(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil || ticket == nil {
		t.Skipf("no ticket: %v", err)
	}
	t.Cleanup(func() { _, _ = sys.ExpireTask(ticket.ID) }) // release workers
	wid := ticket.Assigned[0].Worker.ID
	open := sys.PendingTasks(wid)
	found := false
	for _, p := range open {
		if p.ID == ticket.ID {
			found = true
		}
	}
	if !found {
		t.Error("assigned worker should see the open task")
	}
	// After answering, the task disappears from the worker's view (until
	// the question advances).
	if _, err := sys.SubmitAnswer(ticket.ID, wid, true); err != nil {
		t.Fatal(err)
	}
	for _, p := range sys.PendingTasks(wid) {
		if p.ID == ticket.ID {
			if cur, openQ := p.CurrentQuestion(); openQ && p.answered[wid] {
				_ = cur
				t.Error("answered worker still sees the same question")
			}
		}
	}
	if got, ok := sys.PendingTask(ticket.ID); !ok || got.ID != ticket.ID {
		t.Error("PendingTask lookup failed")
	}
	if _, ok := sys.PendingTask(424242); ok {
		t.Error("unknown pending task should not resolve")
	}
}

func TestAsyncTRShortCircuit(t *testing.T) {
	s := scenario(t)
	// Default gates: most requests resolve without the crowd; the async
	// entry point must return the response directly.
	from, to, depart := pickOD(s)
	resp, ticket, err := s.System.RecommendAsync(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if ticket != nil {
		t.Cleanup(func() { _, _ = s.System.ExpireTask(ticket.ID) })
	}
	if resp == nil && ticket == nil {
		t.Fatal("neither response nor ticket")
	}
	if resp != nil && ticket != nil {
		t.Fatal("both response and ticket")
	}
	if resp != nil && resp.Route.Empty() {
		t.Error("short-circuit response has empty route")
	}
}

func TestTaskStateString(t *testing.T) {
	if TaskOpen.String() != "open" || TaskResolved.String() != "resolved" ||
		TaskExpired.String() != "expired" || TaskState(9).String() != "TaskState(9)" {
		t.Error("TaskState.String mismatch")
	}
}
