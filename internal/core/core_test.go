package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/traj"
)

// sharedScenario is built once; tests treat it as read-mostly (Recommend
// mutates truth DB and worker history, which is fine across subtests).
var (
	scnOnce sync.Once
	scn     *Scenario
)

func scenario(t *testing.T) *Scenario {
	t.Helper()
	scnOnce.Do(func() {
		scn = BuildScenario(SmallScenarioConfig())
	})
	return scn
}

// pickOD returns a well-supported OD pair from the corpus.
func pickOD(s *Scenario) (roadnet.NodeID, roadnet.NodeID, routing.SimTime) {
	tr := s.Data.Trips[0]
	return tr.Route.Source(), tr.Route.Dest(), tr.Depart
}

func TestBuildScenario(t *testing.T) {
	s := scenario(t)
	if s.Graph.NumNodes() < 100 {
		t.Errorf("nodes = %d", s.Graph.NumNodes())
	}
	if len(s.Data.Trips) < 100 {
		t.Errorf("trips = %d", len(s.Data.Trips))
	}
	if s.Landmarks.Len() < 80 {
		t.Errorf("landmarks = %d", s.Landmarks.Len())
	}
	sigSum := 0.0
	for _, l := range s.Landmarks.All() {
		sigSum += l.Significance
	}
	if sigSum <= 0 {
		t.Error("no landmark significance inferred")
	}
	if s.Pool.Len() != 120 {
		t.Errorf("workers = %d", s.Pool.Len())
	}
	if s.System.Familiarity() == nil || s.System.Familiarity().NonZeros() == 0 {
		t.Error("familiarity matrix empty")
	}
}

func TestRecommendBadRequest(t *testing.T) {
	s := scenario(t)
	if _, err := s.System.Recommend(context.Background(), Request{From: 0, To: 0}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("same node err = %v", err)
	}
	if _, err := s.System.Recommend(context.Background(), Request{From: -1, To: 5}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative err = %v", err)
	}
	if _, err := s.System.Recommend(context.Background(), Request{From: 0, To: 99999}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("out-of-range err = %v", err)
	}
}

func TestRecommendEndToEnd(t *testing.T) {
	s := scenario(t)
	from, to, depart := pickOD(s)
	resp, err := s.System.Recommend(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Route.Empty() || !resp.Route.Valid(s.Graph) {
		t.Fatalf("invalid route %v", resp.Route)
	}
	if resp.Route.Source() != from || resp.Route.Dest() != to {
		t.Errorf("endpoints: %v", resp.Route)
	}
	if resp.Stage == StageCrowd {
		if resp.Task == nil || resp.Run == nil || len(resp.Workers) == 0 {
			t.Error("crowd response missing task/run/workers")
		}
	}
	// The request is now stored as truth; the same request must hit reuse.
	resp2, err := s.System.Recommend(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Stage != StageReuse {
		t.Errorf("second request stage = %v, want reuse", resp2.Stage)
	}
	if !resp2.Route.Equal(resp.Route) {
		t.Error("reused route differs from stored route")
	}
}

func TestRecommendStagesObserved(t *testing.T) {
	s := scenario(t)
	stages := map[Stage]int{}
	count := 0
	for _, tr := range s.Data.Trips {
		if count >= 40 || tr.Route.Empty() {
			break
		}
		resp, err := s.System.Recommend(context.Background(), Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		})
		if err != nil {
			continue
		}
		stages[resp.Stage]++
		count++
	}
	if count == 0 {
		t.Fatal("no requests processed")
	}
	// At minimum the system must sometimes answer without the crowd and the
	// pipeline must never fall through to errors for supported ODs.
	t.Logf("stage distribution: %v", stages)
	if stages[StageCrowd]+stages[StageAgreement]+stages[StageConfidence]+stages[StageReuse]+stages[StageFallback] != count {
		t.Error("stage counts do not add up")
	}
}

func TestRecommendCrowdPath(t *testing.T) {
	s := scenario(t)
	// Force the crowd path: impossible agreement, impossible confidence.
	cfg := s.System.Config()
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	forced := New(cfg, s.Graph, s.Landmarks, s.Data, s.Pool, &PopulationOracle{Data: s.Data, Sample: 40})

	from, to, depart := pickOD(s)
	resp, err := forced.Recommend(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stage != StageCrowd && resp.Stage != StageFallback {
		t.Fatalf("stage = %v, want crowd or fallback", resp.Stage)
	}
	if resp.Stage == StageCrowd {
		if resp.Run.QuestionsUsed < 1 {
			t.Error("crowd run asked no questions")
		}
		if len(resp.Workers) == 0 || len(resp.Workers) > cfg.WorkersPerTask {
			t.Errorf("workers assigned = %d", len(resp.Workers))
		}
		// Rewards must have been paid to contributing workers.
		var rewards float64
		for _, w := range s.Pool.Workers {
			rewards += w.Reward
		}
		if rewards <= 0 {
			t.Error("no rewards paid after crowd task")
		}
		// Outstanding counters must return to their resting state.
		for _, w := range s.Pool.Workers {
			if w.Outstanding != 0 {
				t.Errorf("worker %d outstanding = %d after task", w.ID, w.Outstanding)
			}
		}
	}
}

func TestCrowdAccuracyAgainstOracle(t *testing.T) {
	s := scenario(t)
	cfg := s.System.Config()
	cfg.AgreementSim = 1.01 // force crowd on every request
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	forced := New(cfg, s.Graph, s.Landmarks, s.Data, s.Pool, &PopulationOracle{Data: s.Data, Sample: 40})

	// The CR module's guarantee is picking the best *available* candidate
	// (candidate quality is the TR module's job), so measure how often the
	// crowd's choice matches the similarity-to-truth argmax.
	pickedBest, crowdRuns := 0, 0
	var simSum, ceilSum float64
	for _, tr := range s.Data.Trips {
		if crowdRuns >= 30 || tr.Route.Empty() {
			break
		}
		from, to, depart := tr.Route.Source(), tr.Route.Dest(), tr.Depart
		want, err := s.Data.GroundTruth(from, to, depart, 40)
		if err != nil {
			continue
		}
		resp, err := forced.Recommend(context.Background(), Request{From: from, To: to, Depart: depart})
		if err != nil || resp.Stage != StageCrowd {
			continue
		}
		crowdRuns++
		got := resp.Route.Similarity(want)
		best := 0.0
		for _, c := range resp.Candidates {
			if s := c.Route.Similarity(want); s > best {
				best = s
			}
		}
		simSum += got
		ceilSum += best
		if got >= best-0.05 {
			pickedBest++
		}
	}
	if crowdRuns < 5 {
		t.Skipf("only %d crowd runs executed", crowdRuns)
	}
	rate := float64(pickedBest) / float64(crowdRuns)
	if rate < 0.7 {
		t.Errorf("crowd picked best candidate %v (%d/%d), want >= 0.7", rate, pickedBest, crowdRuns)
	}
	t.Logf("picked-best %d/%d, mean similarity %.3f (candidate ceiling %.3f)",
		pickedBest, crowdRuns, simSum/float64(crowdRuns), ceilSum/float64(crowdRuns))
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageReuse: "reuse", StageAgreement: "agreement",
		StageConfidence: "confidence", StageCrowd: "crowd",
		StageFallback: "fallback", Stage(9): "Stage(9)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestAgreementMedoid(t *testing.T) {
	s := scenario(t)
	sys := s.System
	// Identical candidates agree trivially.
	r, _, err := routing.ShortestPath(s.Graph, 0, 50, routing.DistanceCost, 0)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := sys.generateCandidates(context.Background(), Request{From: 0, To: 50, Depart: routing.At(0, 10, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	_, _, _ = sys.agreement(cands) // must not panic regardless of outcome
	one := []struct{}{}
	_ = one
	single, sim, ok := sys.agreement(cands[:1])
	if !ok || sim != 1 || single.Route.Empty() {
		t.Error("single candidate should agree with itself")
	}
	_ = r
}

func TestPopulationOracle(t *testing.T) {
	s := scenario(t)
	o := &PopulationOracle{Data: s.Data, Sample: 30}
	from, to, depart := pickOD(s)
	r1, err := o.BestRoute(from, to, depart)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := o.BestRoute(from, to, depart)
	if err != nil || !r1.Equal(r2) {
		t.Error("oracle must be deterministic")
	}
}

func TestGenerateCandidatesDedup(t *testing.T) {
	s := scenario(t)
	from, to, depart := pickOD(s)
	cands, err := s.System.generateCandidates(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range cands {
		k := c.Route.String()
		if seen[k] {
			t.Errorf("duplicate candidate route %v (source %s)", c.Route, c.Source)
		}
		seen[k] = true
		if c.Route.Source() != from || c.Route.Dest() != to {
			t.Errorf("candidate %s endpoints wrong", c.Source)
		}
	}
}

func TestRefreshFamiliarityAfterWork(t *testing.T) {
	s := scenario(t)
	before := s.System.Familiarity().NonZeros()
	// Seed new history for worker 0 on a landmark it never saw.
	w := s.Pool.Workers[0]
	var target traj.DriverID
	_ = target
	for _, l := range s.Landmarks.All() {
		if _, ok := w.History[l.ID]; !ok {
			w.RecordAnswer(l.ID, true)
			break
		}
	}
	s.System.RefreshFamiliarity()
	after := s.System.Familiarity().NonZeros()
	if after < before {
		t.Errorf("familiarity shrank after new history: %d -> %d", before, after)
	}
}
