package core

import (
	"context"
	"sync"
	"testing"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/traj"
)

// freshScenario builds a private world — the ingest tests mutate the corpus,
// so they must not share the read-mostly scenario of core_test.go.
func freshScenario(t *testing.T) *Scenario {
	t.Helper()
	return BuildScenario(SmallScenarioConfig())
}

// cloneTrips replays existing corpus trips as new observations (optionally
// shifting the departure), which are guaranteed to validate.
func cloneTrips(s *Scenario, n int, shiftMin float64) []traj.Trajectory {
	var out []traj.Trajectory
	for _, tr := range s.Data.Trips {
		if len(out) >= n {
			break
		}
		if tr.Route.Empty() {
			continue
		}
		out = append(out, traj.Trajectory{
			Driver: tr.Driver, Depart: tr.Depart.Add(shiftMin), Route: tr.Route,
		})
	}
	return out
}

func TestIngestTripsValidationAndVisibility(t *testing.T) {
	s := freshScenario(t)
	sys := s.System
	before := sys.CorpusSize()

	good := cloneTrips(s, 3, 30)
	// A provably disconnected hop: some node pair with no edge between them.
	var disconnected roadnet.Route
	for b := roadnet.NodeID(1); b < roadnet.NodeID(s.Graph.NumNodes()); b++ {
		if _, ok := s.Graph.FindEdge(0, b); !ok {
			disconnected = roadnet.NewRoute(0, b)
			break
		}
	}
	if disconnected.Empty() {
		t.Fatal("city is a clique; cannot build a disconnected hop")
	}
	bad := []traj.Trajectory{
		{Route: roadnet.Route{}}, // empty
		{Route: roadnet.NewRoute(0, roadnet.NodeID(s.Graph.NumNodes())+5)}, // out of range
		{Route: disconnected},              // nodes exist, edge does not
		{Route: good[0].Route, Depart: -5}, // negative depart
	}
	rep := sys.IngestTrips(append(append([]traj.Trajectory{}, good...), bad...))
	if rep.Accepted != len(good) {
		t.Fatalf("accepted = %d, want %d (rejections: %+v)", rep.Accepted, len(good), rep.Rejected)
	}
	if len(rep.Rejected) != len(bad) {
		t.Fatalf("rejected = %+v, want %d items", rep.Rejected, len(bad))
	}
	for i, r := range rep.Rejected {
		if r.Index != len(good)+i || r.Reason == "" {
			t.Errorf("rejection %d = %+v, want index %d with a reason", i, r, len(good)+i)
		}
	}
	if got := sys.CorpusSize(); got != before+len(good) {
		t.Fatalf("corpus size = %d, want %d", got, before+len(good))
	}
	if rep.TotalTrips != before+len(good) {
		t.Fatalf("report total = %d, want %d", rep.TotalTrips, before+len(good))
	}

	// The ingested trips are visible to the miners' query path immediately.
	od := good[0].Route
	matches := s.Data.TripsBetween(od.Source(), od.Dest(), 0)
	found := 0
	for _, m := range matches {
		if m.Route.Equal(od) {
			found++
		}
	}
	if found < 1 {
		t.Fatal("ingested trip not visible through TripsBetween")
	}
}

// TestIngestInvalidatesRouteCache: a cached candidate set for the ingested
// trip's OD must be dropped in every departure slot — the new trip is mining
// evidence at any time of day.
func TestIngestInvalidatesRouteCache(t *testing.T) {
	s := freshScenario(t)
	sys := s.System
	trip := cloneTrips(s, 1, 0)[0]
	req := Request{From: trip.Route.Source(), To: trip.Route.Dest(), Depart: trip.Depart}

	if _, err := sys.Candidates(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.routes.Get(sys.cacheKey(req)); !ok {
		t.Fatal("candidate set was not cached")
	}
	invBefore := sys.RouteCacheStats().Invalidations

	rep := sys.IngestTrips([]traj.Trajectory{trip})
	if rep.Accepted != 1 {
		t.Fatalf("ingest rejected: %+v", rep.Rejected)
	}
	if _, ok := sys.routes.Get(sys.cacheKey(req)); ok {
		t.Fatal("cached candidate set survived ingestion for its OD")
	}
	if got := sys.RouteCacheStats().Invalidations; got == invBefore {
		t.Fatal("no cache invalidation recorded")
	}
}

// TestCrowdTruthInvalidatesAdjacentSlots is the regression test for the
// truth-window invalidation fix: truth.DB.Near honors TruthSlotTol, so a
// crowd truth commit must drop cached candidate sets in every slot within
// the tolerance window, not just the exact slot.
func TestCrowdTruthInvalidatesAdjacentSlots(t *testing.T) {
	s := freshScenario(t)
	sys := s.System
	if sys.cfg.TruthSlotTol < 1 {
		t.Fatalf("test requires TruthSlotTol >= 1, got %d", sys.cfg.TruthSlotTol)
	}
	from, to, depart := pickOD(s)

	// Warm the cache for the slot adjacent to the commit slot.
	slotMinutes := 24.0 * 60 / float64(sys.cfg.TruthSlots)
	adjacent := Request{From: from, To: to, Depart: depart.Add(slotMinutes)}
	if _, err := sys.Candidates(context.Background(), adjacent); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.routes.Get(sys.cacheKey(adjacent)); !ok {
		t.Fatal("adjacent-slot candidate set was not cached")
	}

	// Commit a crowd truth at the base slot.
	commit := Request{From: from, To: to, Depart: depart}
	route, err := s.Data.GroundTruth(from, to, depart, 30)
	if err != nil {
		t.Fatal(err)
	}
	sys.storeTruth(commit, route, 0.9, true)

	if _, ok := sys.routes.Get(sys.cacheKey(adjacent)); ok {
		t.Fatal("cached candidate set in the adjacent slot survived a crowd truth within TruthSlotTol")
	}
	// An agreement-derived truth must NOT invalidate (cache stays useful in
	// re-evaluation mode).
	if _, err := sys.Candidates(context.Background(), adjacent); err != nil {
		t.Fatal(err)
	}
	sys.storeTruth(commit, route, 0.9, false)
	if _, ok := sys.routes.Get(sys.cacheKey(adjacent)); !ok {
		t.Fatal("derived truth evicted the cache; only crowd truths should")
	}
}

// TestConcurrentIngestAndRecommend hammers ingestion and the serving path
// from many goroutines; run with -race. Recommendations must keep
// succeeding while the corpus (and its mining indexes) grow underneath
// them.
func TestConcurrentIngestAndRecommend(t *testing.T) {
	s := freshScenario(t)
	sys := s.System
	base := sys.CorpusSize()
	pool := cloneTrips(s, 64, 15)

	const (
		ingesters    = 4
		recommenders = 8
		perWorker    = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, ingesters+recommenders)
	for w := 0; w < ingesters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr := pool[(w*perWorker+i)%len(pool)]
				if rep := sys.IngestTrips([]traj.Trajectory{tr}); rep.Accepted != 1 {
					errs <- errIngest(rep)
					return
				}
			}
		}(w)
	}
	for w := 0; w < recommenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr := pool[(w+i*3)%len(pool)]
				req := Request{From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart}
				if _, err := sys.Recommend(context.Background(), req); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := sys.CorpusSize(), base+ingesters*perWorker; got != want {
		t.Fatalf("corpus size = %d, want %d", got, want)
	}
}

type errIngest IngestReport

func (e errIngest) Error() string { return "ingest rejected a valid trip" }
