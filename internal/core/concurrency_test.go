package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/landmark"
	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/traj"
	"crowdplanner/internal/worker"
)

// TestConcurrentRecommendAndAsyncLifecycle hammers the serving core from
// many goroutines under the race detector: synchronous Recommend calls
// interleave with the full RecommendAsync/SubmitAnswer/ExpireTask
// lifecycle, worker-facing reads, and familiarity refreshes. Afterwards
// every Outstanding counter must be back at zero and no pending task may
// still be open.
func TestConcurrentRecommendAndAsyncLifecycle(t *testing.T) {
	// A private scenario: this test mutates pool state heavily.
	s := BuildScenario(SmallScenarioConfig())
	sys := s.System

	// Force a good mix of stages: keep reuse on (hit path contention) but
	// make agreement rare enough that crowd tasks actually happen.
	var reqs []Request
	for _, tr := range s.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		reqs = append(reqs, Request{From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart})
		if len(reqs) >= 60 {
			break
		}
	}
	if len(reqs) == 0 {
		t.Fatal("no usable trips")
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < 30; i++ {
				req := reqs[(g*31+i)%len(reqs)]
				switch i % 4 {
				case 0, 1: // synchronous pipeline
					if _, err := sys.Recommend(context.Background(), req); err != nil {
						errCh <- fmt.Errorf("goroutine %d: Recommend: %w", g, err)
						return
					}
				case 2: // async lifecycle, driven to resolution or expiry
					resp, p, err := sys.RecommendAsync(context.Background(), req)
					if err != nil {
						errCh <- fmt.Errorf("goroutine %d: RecommendAsync: %w", g, err)
						return
					}
					if resp != nil || p == nil {
						continue // TR answered
					}
					if i%8 == 2 {
						if _, err := sys.ExpireTask(p.ID); err != nil && !errors.Is(err, ErrTaskClosed) {
							errCh <- fmt.Errorf("goroutine %d: ExpireTask: %w", g, err)
							return
						}
						continue
					}
					for rounds := 0; rounds < 200; rounds++ {
						lm, open := p.CurrentQuestion()
						if !open {
							break
						}
						_ = lm
						var done *Response
						for _, rk := range p.Assigned {
							r, err := sys.SubmitAnswer(p.ID, rk.Worker.ID, rng.Intn(2) == 0)
							if err != nil {
								if errors.Is(err, ErrAlreadyAnswer) || errors.Is(err, ErrTaskClosed) {
									continue
								}
								errCh <- fmt.Errorf("goroutine %d: SubmitAnswer: %w", g, err)
								return
							}
							if r != nil {
								done = r
								break
							}
						}
						if done != nil {
							break
						}
					}
				case 3: // concurrent readers
					_ = sys.Familiarity()
					_ = sys.TrueFamiliarity()
					_ = sys.SourceStats()
					_ = sys.RouteCacheStats()
					if len(s.Pool.Workers) > 0 {
						// Observe other goroutines' in-flight tasks while
						// their answers are arriving — the state-poll race.
						for _, pt := range sys.PendingTasks(s.Pool.Workers[g%len(s.Pool.Workers)].ID) {
							_, _ = pt.CurrentQuestion()
							_, _ = pt.Status()
						}
					}
					var lids []landmark.ID
					for _, l := range s.Landmarks.TopBySignificance(3) {
						lids = append(lids, l.ID)
					}
					_ = sys.TopWorkers(lids, 5, sys.Config().Select)
					if i%10 == 3 {
						sys.RefreshFamiliarity()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Every assignment must have been released.
	for _, w := range s.Pool.Workers {
		if w.Outstanding != 0 {
			t.Errorf("worker %d Outstanding = %d, want 0", w.ID, w.Outstanding)
		}
	}
	// No task may be left open (each was driven to resolution or expired;
	// undriven ones would leak Outstanding counters too).
	sys.mu.Lock()
	for id, p := range sys.pending {
		if p.State == TaskOpen {
			t.Errorf("task %d still open after the hammer", id)
		}
	}
	sys.mu.Unlock()
	if sys.TruthDB().Len() == 0 {
		t.Error("no truths stored")
	}
}

// TestRecommendDeterministicForSeed verifies the reproducibility contract:
// two systems built from the same config, serving the same single-threaded
// request sequence, produce identical routes, stages and confidences —
// including through the crowd path, whose randomness is derived from
// (Config.Seed, task ID) rather than a shared stream.
func TestRecommendDeterministicForSeed(t *testing.T) {
	run := func() []string {
		s := BuildScenario(SmallScenarioConfig())
		var out []string
		n := 0
		for _, tr := range s.Data.Trips {
			if tr.Route.Empty() {
				continue
			}
			resp, err := s.System.Recommend(context.Background(), Request{
				From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
			})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fmt.Sprintf("%v|%s|%.9f", resp.Route.Nodes, resp.Stage, resp.Confidence))
			if n++; n >= 40 {
				break
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("request %d diverged:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
}

// TestTaskSeedIndependentStreams sanity-checks the per-task seed mixer:
// adjacent task IDs must not produce identical or trivially shifted seeds.
func TestTaskSeedIndependentStreams(t *testing.T) {
	seen := map[int64]bool{}
	for id := int64(1); id <= 1000; id++ {
		s := taskSeed(7, id)
		if seen[s] {
			t.Fatalf("seed collision at task %d", id)
		}
		seen[s] = true
	}
	if taskSeed(1, 5) == taskSeed(2, 5) {
		t.Error("config seed must perturb the task seed")
	}
}

// TestNoCandidatesError is the regression test for the empty-candidate
// divisions in agreement and bestByConsensus: a request whose destination
// no provider can reach must surface ErrNoCandidates, not a panic or NaN.
func TestNoCandidatesError(t *testing.T) {
	// Two islands: nodes 0-1 connected, node 2 unreachable.
	g := roadnet.NewGraph(3, 2)
	a := g.AddNode(geo.Point{X: 0, Y: 0})
	b := g.AddNode(geo.Point{X: 100, Y: 0})
	c := g.AddNode(geo.Point{X: 5000, Y: 5000})
	g.AddRoad(a, b, roadnet.Local, 40, 0)

	lms := landmark.NewSet(nil)
	data := &traj.Dataset{Graph: g}
	pool := &worker.Pool{}
	cfg := DefaultConfig()
	sys := New(cfg, g, lms, data, pool, &PopulationOracle{Data: data, Sample: 1})

	if _, err := sys.Recommend(context.Background(), Request{From: a, To: c, Depart: 0}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("disconnected OD: err = %v, want ErrNoCandidates", err)
	}
	// Direct guards: empty candidate sets must not panic or divide by zero.
	if _, _, ok := sys.agreement(nil); ok {
		t.Error("agreement(nil) reported agreement")
	}
	if got := bestByConsensus(nil); got.Route.Nodes != nil {
		t.Errorf("bestByConsensus(nil) = %+v, want zero candidate", got)
	}
}
