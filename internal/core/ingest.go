package core

import (
	"fmt"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routecache"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/store"
	"crowdplanner/internal/traj"
)

// Live trajectory ingestion: the paper's "large-scale real trajectory
// dataset" is not frozen in a production system — new trips arrive
// continuously and must become visible to the popular-route miners. The
// pipeline is: validate against the road network → append to the corpus and
// update the mining indexes incrementally (internal/traj) → invalidate the
// route-cache entries the new evidence staled → log to the storage backend
// so the stream survives a restart (store.TrajLog, replayed by
// LoadFromStore).

// IngestRejection reports why one trip of a batch was refused.
type IngestRejection struct {
	Index  int    `json:"index"`
	Reason string `json:"reason"`
}

// IngestReport summarizes one ingestion batch.
type IngestReport struct {
	Accepted   int               `json:"accepted"`
	Rejected   []IngestRejection `json:"rejected,omitempty"`
	TotalTrips int               `json:"total_trips"` // corpus size after the batch
}

// IngestTrips validates and ingests a batch of trajectories into the live
// corpus. Valid trips become visible to the popular-route miners immediately
// (the mining indexes update under the corpus write lock; in-flight miner
// queries keep their copy-on-write snapshots) and are appended to the
// storage backend so they replay on the next boot. Invalid trips are
// reported per item and do not fail the batch.
//
// Safe for concurrent use with Recommend and with other IngestTrips calls;
// no core lock is held across the backend append.
func (s *System) IngestTrips(trips []traj.Trajectory) IngestReport {
	var valid []traj.Trajectory
	var rej []IngestRejection
	for i := range trips {
		if reason := s.validateTrip(&trips[i]); reason != "" {
			rej = append(rej, IngestRejection{Index: i, Reason: reason})
			continue
		}
		valid = append(valid, trips[i])
	}
	if len(valid) > 0 {
		start := s.data.IngestTrips(valid)
		s.invalidateTripODs(valid)
		if err := s.backend.AppendTrips(tripsToRecords(valid, start)); err != nil {
			s.appendErrs.Add(1)
		}
	}
	return IngestReport{Accepted: len(valid), Rejected: rej, TotalTrips: s.data.NumTrips()}
}

// validateTrip checks a trajectory against the road network; an empty string
// means acceptable. Only the matched route matters to the miners, so raw GPS
// samples are not required.
func (s *System) validateTrip(tr *traj.Trajectory) string {
	if tr.Route.Empty() {
		return "route has fewer than 2 nodes"
	}
	n := roadnet.NodeID(s.graph.NumNodes())
	for _, nd := range tr.Route.Nodes {
		if nd < 0 || nd >= n {
			return fmt.Sprintf("route node %d outside this %d-node road network", nd, n)
		}
	}
	if !tr.Route.Valid(s.graph) {
		return "route is not connected in the road network"
	}
	if tr.Depart < 0 {
		return fmt.Sprintf("negative departure time %v", float64(tr.Depart))
	}
	return ""
}

// invalidateTripODs drops the cached candidate sets of every distinct OD in
// the batch, across all departure slots: a new trip is fresh mining evidence
// for its OD pair at any time of day (MPR and LDR ignore the departure time
// entirely). Candidate sets for *nearby* ODs (within the LDR match radius)
// are left to LRU turnover — enumerating them would cost more than the
// staleness it avoids; see DESIGN.md §9.
func (s *System) invalidateTripODs(trips []traj.Trajectory) {
	type od struct{ from, to roadnet.NodeID }
	seen := map[od]bool{}
	for i := range trips {
		r := trips[i].Route
		k := od{r.Source(), r.Dest()}
		if seen[k] {
			continue
		}
		seen[k] = true
		for slot := 0; slot < s.cfg.TruthSlots; slot++ {
			s.routes.Invalidate(routecache.Key{From: int64(k.from), To: int64(k.to), Slot: slot})
		}
	}
}

// ---- record conversions ----

func tripsToRecords(trips []traj.Trajectory, startSeq int64) []store.TrajRecord {
	recs := make([]store.TrajRecord, len(trips))
	for i := range trips {
		recs[i] = tripToRecord(&trips[i], startSeq+int64(i))
	}
	return recs
}

// tripsToRecordsSeqs converts trips carrying their original (possibly
// non-contiguous) sequence numbers — the snapshot-capture path, where a
// replayed stream may have gaps.
func tripsToRecordsSeqs(trips []traj.Trajectory, seqs []int64) []store.TrajRecord {
	recs := make([]store.TrajRecord, len(trips))
	for i := range trips {
		recs[i] = tripToRecord(&trips[i], seqs[i])
	}
	return recs
}

func tripToRecord(tr *traj.Trajectory, seq int64) store.TrajRecord {
	nodes := make([]int32, len(tr.Route.Nodes))
	for j, n := range tr.Route.Nodes {
		nodes[j] = int32(n)
	}
	return store.TrajRecord{
		Seq: seq, Driver: int32(tr.Driver),
		DepartMin: float64(tr.Depart), Nodes: nodes,
	}
}

func recordToTrip(r store.TrajRecord) traj.Trajectory {
	nodes := make([]roadnet.NodeID, len(r.Nodes))
	for i, n := range r.Nodes {
		nodes[i] = roadnet.NodeID(n)
	}
	return traj.Trajectory{
		Driver: traj.DriverID(r.Driver),
		Depart: routing.SimTime(r.DepartMin),
		Route:  roadnet.Route{Nodes: nodes},
	}
}
