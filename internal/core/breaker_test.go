package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"crowdplanner/internal/store"
	"crowdplanner/internal/task"
)

// flappingStore is a store.Store whose appends fail while fail is set —
// the minimal sick backend for breaker state-machine tests.
type flappingStore struct {
	mu sync.Mutex
	//cplint:guardedby mu
	fail bool
	//cplint:guardedby mu
	calls int // inner appends that actually ran
}

func (f *flappingStore) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *flappingStore) innerCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

var errFlap = errors.New("flap")

func (f *flappingStore) op() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.fail {
		return errFlap
	}
	return nil
}

func (f *flappingStore) AppendTruth(store.TruthRecord) error          { return f.op() }
func (f *flappingStore) AppendWorkerEvents([]store.WorkerEvent) error { return f.op() }
func (f *flappingStore) AppendTrips([]store.TrajRecord) error         { return f.op() }
func (f *flappingStore) AppendTaskOpen(store.TaskRecord) error        { return f.op() }
func (f *flappingStore) AppendTaskDecision(int64, int, bool) error    { return f.op() }
func (f *flappingStore) AppendTaskClose(int64) error                  { return f.op() }
func (f *flappingStore) Load() (*store.State, error)                  { return nil, nil }
func (f *flappingStore) Snapshot(func() *store.State) error           { return f.op() }
func (f *flappingStore) Stats() store.Stats                           { return store.Stats{Backend: "flap"} }
func (f *flappingStore) Close() error                                 { return nil }

func TestBreakerOpensAfterThresholdAndProbesHalfOpen(t *testing.T) {
	fs := &flappingStore{}
	fs.setFail(true)
	b := newBreakerStore(fs, BreakerConfig{Threshold: 3, ProbeEvery: 2})

	// Three real failures open the breaker.
	for i := 0; i < 3; i++ {
		if err := b.AppendTruth(store.TruthRecord{}); !errors.Is(err, errFlap) {
			t.Fatalf("append %d err = %v, want errFlap", i, err)
		}
	}
	if st := b.stats(); st.State != BreakerOpen || st.Opens != 1 {
		t.Fatalf("after threshold: %+v", st)
	}
	if got := fs.innerCalls(); got != 3 {
		t.Fatalf("inner calls = %d, want 3", got)
	}

	// First rejected append is short-circuited: the backend is not touched.
	if err := b.AppendTruth(store.TruthRecord{}); !errors.Is(err, ErrStoreDegraded) {
		t.Fatalf("short-circuit err = %v, want ErrStoreDegraded", err)
	}
	if got := fs.innerCalls(); got != 3 {
		t.Fatalf("inner calls after short-circuit = %d, want 3", got)
	}

	// The second hits ProbeEvery and goes through as a half-open probe; the
	// backend is still sick, so the breaker stays open.
	if err := b.AppendTruth(store.TruthRecord{}); !errors.Is(err, errFlap) {
		t.Fatalf("probe err = %v, want errFlap", err)
	}
	if got := fs.innerCalls(); got != 4 {
		t.Fatalf("inner calls after probe = %d, want 4", got)
	}
	st := b.stats()
	if st.State != BreakerOpen || st.Probes != 1 || st.ShortCircuits != 1 {
		t.Fatalf("after failed probe: %+v", st)
	}

	// Heal the backend: one more short-circuit re-arms the window, then the
	// next probe succeeds and closes the breaker.
	fs.setFail(false)
	if err := b.AppendTruth(store.TruthRecord{}); !errors.Is(err, ErrStoreDegraded) {
		t.Fatalf("post-heal short-circuit err = %v", err)
	}
	if err := b.AppendTruth(store.TruthRecord{}); err != nil {
		t.Fatalf("recovery probe err = %v", err)
	}
	if st := b.stats(); st.State != BreakerClosed || st.ConsecutiveFailures != 0 {
		t.Fatalf("after recovery: %+v", st)
	}
	// Closed again: appends flow straight through.
	if err := b.AppendTruth(store.TruthRecord{}); err != nil {
		t.Fatal(err)
	}
	if got := fs.innerCalls(); got != 6 {
		t.Fatalf("inner calls = %d, want 6", got)
	}
}

func TestBreakerSuccessResetsConsecutiveFailures(t *testing.T) {
	fs := &flappingStore{}
	b := newBreakerStore(fs, BreakerConfig{Threshold: 3, ProbeEvery: 2})
	fs.setFail(true)
	_ = b.AppendTruth(store.TruthRecord{})
	_ = b.AppendTruth(store.TruthRecord{})
	fs.setFail(false)
	if err := b.AppendTruth(store.TruthRecord{}); err != nil {
		t.Fatal(err)
	}
	fs.setFail(true)
	_ = b.AppendTruth(store.TruthRecord{})
	_ = b.AppendTruth(store.TruthRecord{})
	if st := b.stats(); st.State != BreakerClosed || st.ConsecutiveFailures != 2 {
		t.Fatalf("interleaved failures must not open: %+v", st)
	}
}

func TestBreakerSnapshotIsNeverShortCircuitedAndHeals(t *testing.T) {
	fs := &flappingStore{}
	fs.setFail(true)
	b := newBreakerStore(fs, BreakerConfig{Threshold: 2, ProbeEvery: 1000})
	_ = b.AppendTruth(store.TruthRecord{})
	_ = b.AppendTruth(store.TruthRecord{})
	if st := b.stats(); st.State != BreakerOpen {
		t.Fatalf("state = %v, want open", st.State)
	}
	// Even wide-open, a snapshot reaches the backend (the operator's heal
	// lever), and its success closes the breaker immediately.
	fs.setFail(false)
	if err := b.Snapshot(func() *store.State { return &store.State{} }); err != nil {
		t.Fatal(err)
	}
	if st := b.stats(); st.State != BreakerClosed {
		t.Fatalf("after snapshot heal: %+v", st)
	}
}

func TestSystemBreakerDefaultsHealthy(t *testing.T) {
	s := scenario(t).System
	if s.Degraded() {
		t.Fatal("fresh system reports degraded")
	}
	st := s.BreakerStats()
	if !st.Enabled || st.State != BreakerClosed {
		t.Fatalf("breaker stats = %+v, want enabled+closed (DefaultConfig)", st)
	}
}

func TestSingleflightFollowerSharesLeaderResult(t *testing.T) {
	s := scenario(t).System
	from, to, depart := pickOD(scenario(t))
	req := Request{From: from, To: to, Depart: depart}
	key := s.cacheKey(req)
	s.routes.Invalidate(key)

	before := s.CoalescedRequests()
	f := &flight{done: make(chan struct{})}
	s.flightMu.Lock()
	s.flights[key] = f
	s.flightMu.Unlock()

	type result struct {
		cands []task.Candidate
		err   error
	}
	res := make(chan result, 1)
	go func() {
		c, err := s.Candidates(context.Background(), req)
		res <- result{c, err}
	}()

	// The coalesced counter ticks once the goroutine has committed to the
	// flight; only then is it safe to publish and close.
	for s.CoalescedRequests() != before+1 {
		runtime.Gosched()
	}
	// Publish the stub result; the follower must return exactly it.
	f.cands = []task.Candidate{{Source: "stub-leader"}}
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)

	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.cands) != 1 || r.cands[0].Source != "stub-leader" {
		t.Fatalf("follower got %+v, want the leader's stub", r.cands)
	}
	if got := s.CoalescedRequests(); got != before+1 {
		t.Fatalf("coalesced = %d, want %d", got, before+1)
	}
	// The stub never populated the cache; drop any residue for other tests.
	s.routes.Invalidate(key)
}

func TestSingleflightFollowerRetriesAfterLeaderFailure(t *testing.T) {
	s := scenario(t).System
	from, to, depart := pickOD(scenario(t))
	req := Request{From: from, To: to, Depart: depart}
	key := s.cacheKey(req)
	s.routes.Invalidate(key)

	f := &flight{done: make(chan struct{})}
	s.flightMu.Lock()
	s.flights[key] = f
	s.flightMu.Unlock()
	before := s.CoalescedRequests()

	res := make(chan []task.Candidate, 1)
	go func() {
		c, err := s.Candidates(context.Background(), req)
		if err != nil {
			t.Error(err)
		}
		res <- c
	}()
	for s.CoalescedRequests() != before+1 {
		runtime.Gosched()
	}

	// The leader "fails" (its own context was cancelled); the follower must
	// retry, become the leader itself, and produce real candidates.
	f.err = context.Canceled
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)

	cands := <-res
	if len(cands) == 0 {
		t.Fatal("retrying follower produced no candidates")
	}
	if _, ok := s.routes.Get(key); !ok {
		t.Fatal("retry did not populate the route cache")
	}
}

func TestSingleflightConcurrentRequestsAgree(t *testing.T) {
	s := scenario(t).System
	from, to, depart := pickOD(scenario(t))
	// A distinct slot from the other tests, so this starts cold.
	req := Request{From: from, To: to, Depart: depart + 540}
	s.routes.Invalidate(s.cacheKey(req))

	const n = 8
	var wg sync.WaitGroup
	results := make([][]task.Candidate, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.Candidates(context.Background(), req)
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(results[i]) != len(results[0]) {
			t.Fatalf("request %d got %d candidates, request 0 got %d", i, len(results[i]), len(results[0]))
		}
		for j := range results[i] {
			if results[i][j].Source != results[0][j].Source {
				t.Fatalf("request %d candidate %d source %q != %q", i, j, results[i][j].Source, results[0][j].Source)
			}
		}
	}
}
