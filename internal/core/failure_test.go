package core

import (
	"context"
	"errors"
	"testing"

	"crowdplanner/internal/roadnet"
	"crowdplanner/internal/routing"
	"crowdplanner/internal/task"
	"crowdplanner/internal/traj"
)

// failingOracle simulates the population oracle being unavailable.
type failingOracle struct{}

var errOracleDown = errors.New("oracle unavailable")

func (failingOracle) BestRoute(roadnet.NodeID, roadnet.NodeID, routing.SimTime) (roadnet.Route, error) {
	return roadnet.Route{}, errOracleDown
}

func TestRecommendOracleFailurePropagates(t *testing.T) {
	s := scenario(t)
	cfg := s.System.Config()
	cfg.AgreementSim = 1.01 // force the crowd path
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	sys := New(cfg, s.Graph, s.Landmarks, s.Data, s.Pool, failingOracle{})

	from, to, depart := pickOD(s)
	truthsBefore := sys.TruthDB().Len()
	_, err := sys.Recommend(context.Background(), Request{From: from, To: to, Depart: depart})
	if !errors.Is(err, errOracleDown) {
		t.Fatalf("err = %v, want oracle failure", err)
	}
	// A failed crowd run must not pollute the truth database.
	if sys.TruthDB().Len() != truthsBefore {
		t.Error("failed crowd run stored a truth")
	}
	// Outstanding counters must be rolled back.
	for _, w := range s.Pool.Workers {
		if w.Outstanding != 0 {
			t.Errorf("worker %d outstanding = %d after failure", w.ID, w.Outstanding)
		}
	}
}

func TestRecommendNoWorkersFallsBack(t *testing.T) {
	s := scenario(t)
	cfg := s.System.Config()
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	cfg.WorkersPerTask = 0 // nobody to ask
	sys := New(cfg, s.Graph, s.Landmarks, s.Data, s.Pool,
		&PopulationOracle{Data: s.Data, Sample: 30})

	from, to, depart := pickOD(s)
	resp, err := sys.Recommend(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stage != StageFallback {
		t.Errorf("stage = %v, want fallback", resp.Stage)
	}
	if resp.Route.Empty() || !resp.Route.Valid(s.Graph) {
		t.Error("fallback must still produce a valid route")
	}
}

func TestRecommendAllWorkersBusy(t *testing.T) {
	s := scenario(t)
	cfg := s.System.Config()
	cfg.AgreementSim = 1.01
	cfg.EtaConfidence = 1.01
	cfg.ReuseTruth = false
	sys := New(cfg, s.Graph, s.Landmarks, s.Data, s.Pool,
		&PopulationOracle{Data: s.Data, Sample: 30})

	// Saturate every worker's quota.
	for _, w := range s.Pool.Workers {
		w.Outstanding = cfg.Select.MaxOutstanding
	}
	defer func() {
		for _, w := range s.Pool.Workers {
			w.Outstanding = 0
		}
	}()

	from, to, depart := pickOD(s)
	resp, err := sys.Recommend(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stage != StageFallback {
		t.Errorf("stage = %v, want fallback when all workers are busy", resp.Stage)
	}
}

func TestRecommendIsolatedDataset(t *testing.T) {
	// A system over an empty trajectory corpus: miners always decline, only
	// web-service candidates exist, and the pipeline still answers.
	s := scenario(t)
	emptyCopy := traj.Dataset{Graph: s.Data.Graph, Drivers: s.Data.Drivers}
	cfg := s.System.Config()
	cfg.ReuseTruth = false
	sys := New(cfg, s.Graph, s.Landmarks, &emptyCopy, s.Pool,
		&PopulationOracle{Data: s.Data, Sample: 30})

	from, to, depart := pickOD(s)
	resp, err := sys.Recommend(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Route.Empty() {
		t.Error("empty corpus should still yield a route from web providers")
	}
}

func TestBestByConsensus(t *testing.T) {
	s := scenario(t)
	from, to, depart := pickOD(s)
	cands, err := s.System.Candidates(context.Background(), Request{From: from, To: to, Depart: depart})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	got := bestByConsensus(cands)
	if got.Route.Empty() {
		t.Fatal("consensus pick empty")
	}
	// Single candidate: returned as-is.
	if one := bestByConsensus(cands[:1]); !one.Route.Equal(cands[0].Route) {
		t.Error("single-candidate consensus wrong")
	}
	// A dominating prior wins regardless of similarity.
	if len(cands) >= 2 {
		boosted := make([]task.Candidate, len(cands))
		copy(boosted, cands)
		boosted[len(boosted)-1].Prior = 100
		if pick := bestByConsensus(boosted); !pick.Route.Equal(boosted[len(boosted)-1].Route) {
			t.Error("dominating prior should win the consensus")
		}
	}
}
