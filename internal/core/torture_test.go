package core

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"crowdplanner/internal/store"
	"crowdplanner/internal/store/diskstore"
	"crowdplanner/internal/store/faultstore"
)

// Crash-recovery torture tests: kill the storage backend at every append
// point and assert the durability contract — every acknowledged record is
// present after recovery, nothing unacknowledged appears, replay is
// idempotent, and the world fingerprint still verifies.

// scriptStep is one append in the store-level torture script.
type scriptStep struct {
	op faultstore.Op
	do func(s store.Store) error
}

// tortureScript exercises all six append types in an interleaved order,
// including decisions on an already-open task and a close that supersedes it.
func tortureScript() []scriptStep {
	truth := func(i int32) scriptStep {
		return scriptStep{faultstore.OpTruth, func(s store.Store) error {
			return s.AppendTruth(store.TruthRecord{
				From: i, To: i + 1, Slot: i % 4,
				Nodes: []int32{i, i + 1}, Confidence: 0.9, Crowd: i%2 == 0,
			})
		}}
	}
	trips := func(seqs ...int64) scriptStep {
		recs := make([]store.TrajRecord, len(seqs))
		for i, q := range seqs {
			recs[i] = store.TrajRecord{Seq: q, Driver: int32(q), DepartMin: float64(100 + q), Nodes: []int32{int32(q), int32(q + 1)}}
		}
		return scriptStep{faultstore.OpTrips, func(s store.Store) error { return s.AppendTrips(recs) }}
	}
	taskOpen := func(id int64) scriptStep {
		return scriptStep{faultstore.OpTaskOpen, func(s store.Store) error {
			return s.AppendTaskOpen(store.TaskRecord{ID: id, From: 5, To: 6, DepartMin: 480, Assigned: []int32{1, 2}})
		}}
	}
	decision := func(id int64, idx int, yes bool) scriptStep {
		return scriptStep{faultstore.OpTaskDecision, func(s store.Store) error {
			return s.AppendTaskDecision(id, idx, yes)
		}}
	}
	taskClose := func(id int64) scriptStep {
		return scriptStep{faultstore.OpTaskClose, func(s store.Store) error { return s.AppendTaskClose(id) }}
	}
	events := func(workers ...int32) scriptStep {
		evs := make([]store.WorkerEvent, len(workers))
		for i, w := range workers {
			evs[i] = store.WorkerEvent{Worker: w, Landmark: w % 7, Correct: true, RewardBalance: float64(w) + 0.5, TallyCorrect: 1}
		}
		return scriptStep{faultstore.OpWorkerEvents, func(s store.Store) error { return s.AppendWorkerEvents(evs) }}
	}
	return []scriptStep{
		truth(0),
		trips(0, 1, 2),
		taskOpen(1),
		events(1, 2),
		decision(1, 0, true),
		truth(1),
		decision(1, 1, false),
		trips(3, 4),
		taskOpen(2),
		events(3),
		taskClose(1),
		truth(2),
	}
}

// expectAfter logically replays the first `acked` script steps into the
// state a correct recovery must produce.
func expectAfter(steps []scriptStep, acked int) *store.State {
	st := &store.State{}
	tasks := map[int64]*store.TaskRecord{}
	for i := 0; i < acked; i++ {
		switch steps[i].op {
		case faultstore.OpTruth:
			var probe captureStore
			_ = steps[i].do(&probe)
			st.Truths = append(st.Truths, probe.truths...)
		case faultstore.OpTrips:
			var probe captureStore
			_ = steps[i].do(&probe)
			st.Trips = append(st.Trips, probe.trips...)
		case faultstore.OpWorkerEvents:
			var probe captureStore
			_ = steps[i].do(&probe)
			st.WorkerEvents = append(st.WorkerEvents, probe.events...)
		case faultstore.OpTaskOpen:
			var probe captureStore
			_ = steps[i].do(&probe)
			r := probe.taskOpens[0]
			tasks[r.ID] = &r
		case faultstore.OpTaskDecision:
			var probe captureStore
			_ = steps[i].do(&probe)
			d := probe.decisions[0]
			if tk := tasks[d.id]; tk != nil {
				tk.Decisions = store.SetDecision(tk.Decisions, d.index, d.yes)
			}
		case faultstore.OpTaskClose:
			var probe captureStore
			_ = steps[i].do(&probe)
			delete(tasks, probe.closes[0])
		}
	}
	for _, tk := range tasks {
		st.OpenTasks = append(st.OpenTasks, *tk)
	}
	st.FoldEvents()
	st.DedupeTrips()
	return st
}

// captureStore records what a script step appends, so the model replay does
// not duplicate the script's payload construction.
type captureStore struct {
	truths    []store.TruthRecord
	trips     []store.TrajRecord
	events    []store.WorkerEvent
	taskOpens []store.TaskRecord
	decisions []struct {
		id    int64
		index int
		yes   bool
	}
	closes []int64
}

func (c *captureStore) AppendTruth(r store.TruthRecord) error {
	c.truths = append(c.truths, r)
	return nil
}
func (c *captureStore) AppendWorkerEvents(evs []store.WorkerEvent) error {
	c.events = append(c.events, evs...)
	return nil
}
func (c *captureStore) AppendTrips(recs []store.TrajRecord) error {
	c.trips = append(c.trips, recs...)
	return nil
}
func (c *captureStore) AppendTaskOpen(r store.TaskRecord) error {
	c.taskOpens = append(c.taskOpens, r)
	return nil
}
func (c *captureStore) AppendTaskDecision(id int64, index int, yes bool) error {
	c.decisions = append(c.decisions, struct {
		id    int64
		index int
		yes   bool
	}{id, index, yes})
	return nil
}
func (c *captureStore) AppendTaskClose(id int64) error     { c.closes = append(c.closes, id); return nil }
func (c *captureStore) Load() (*store.State, error)        { return nil, nil }
func (c *captureStore) Snapshot(func() *store.State) error { return nil }
func (c *captureStore) Stats() store.Stats                 { return store.Stats{} }
func (c *captureStore) Close() error                       { return nil }

// runScript drives every step, ignoring injected errors (the serving core
// absorbs append failures the same way).
func runScript(t *testing.T, fs *faultstore.Store, steps []scriptStep) {
	t.Helper()
	for _, step := range steps {
		_ = step.do(fs)
	}
}

// assertState compares a recovered state against the model, field by field.
func assertState(t *testing.T, label string, got, want *store.State) {
	t.Helper()
	if got == nil {
		got = &store.State{}
	}
	if len(got.Truths) != len(want.Truths) {
		t.Fatalf("%s: %d truths, want %d", label, len(got.Truths), len(want.Truths))
	}
	for i := range want.Truths {
		g, w := got.Truths[i], want.Truths[i]
		if g.From != w.From || g.To != w.To || g.Slot != w.Slot || g.Confidence != w.Confidence || g.Crowd != w.Crowd || len(g.Nodes) != len(w.Nodes) {
			t.Fatalf("%s: truth %d = %+v, want %+v", label, i, g, w)
		}
	}
	if len(got.Trips) != len(want.Trips) {
		t.Fatalf("%s: %d trips, want %d", label, len(got.Trips), len(want.Trips))
	}
	for i := range want.Trips {
		if got.Trips[i].Seq != want.Trips[i].Seq || got.Trips[i].Driver != want.Trips[i].Driver {
			t.Fatalf("%s: trip %d = %+v, want %+v", label, i, got.Trips[i], want.Trips[i])
		}
	}
	if len(got.OpenTasks) != len(want.OpenTasks) {
		t.Fatalf("%s: %d open tasks, want %d", label, len(got.OpenTasks), len(want.OpenTasks))
	}
	for i := range want.OpenTasks {
		g, w := got.OpenTasks[i], want.OpenTasks[i]
		if g.ID != w.ID || len(g.Decisions) != len(w.Decisions) {
			t.Fatalf("%s: task %d = %+v, want %+v", label, i, g, w)
		}
		for j := range w.Decisions {
			if g.Decisions[j] != w.Decisions[j] {
				t.Fatalf("%s: task %d decision %d = %v, want %v", label, i, j, g.Decisions[j], w.Decisions[j])
			}
		}
	}
	if len(got.Workers) != len(want.Workers) {
		t.Fatalf("%s: %d workers, want %d", label, len(got.Workers), len(want.Workers))
	}
	for i := range want.Workers {
		g, w := got.Workers[i], want.Workers[i]
		if g.ID != w.ID || g.Reward != w.Reward || len(g.History) != len(w.History) {
			t.Fatalf("%s: worker %d = %+v, want %+v", label, i, g, w)
		}
	}
}

// TestTortureKillAtEveryAppendPoint is the store-level sweep: for every
// append ordinal k, crash the backend immediately before (and, in a second
// pass, immediately after) the k-th append, reopen the directory with a
// plain diskstore, and assert the recovered state is exactly the
// acknowledged prefix — no lost committed records, no phantom ones.
func TestTortureKillAtEveryAppendPoint(t *testing.T) {
	steps := tortureScript()
	n := len(steps)
	for k := 1; k <= n; k++ {
		for _, after := range []bool{false, true} {
			plan := faultstore.KillAtAppend(k)
			acked := k - 1
			label := fmt.Sprintf("kill-before-%d", k)
			if after {
				plan = faultstore.KillAfterAppend(k)
				acked = k
				label = fmt.Sprintf("kill-after-%d", k)
			}
			dir := t.TempDir()
			ds, err := diskstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			fs := faultstore.New(ds, plan)
			runScript(t, fs, steps)
			if !fs.Killed() {
				t.Fatalf("%s: plan never fired", label)
			}
			if got := len(fs.AckLog()); got != acked {
				t.Fatalf("%s: %d acked appends, want %d", label, got, acked)
			}
			// A crashed process does not close its store: reopen the
			// directory cold, exactly like the next boot would.
			ds2, err := diskstore.Open(dir)
			if err != nil {
				t.Fatalf("%s: reopen: %v", label, err)
			}
			loaded, err := ds2.Load()
			if err != nil {
				t.Fatalf("%s: load: %v", label, err)
			}
			assertState(t, label, loaded, expectAfter(steps, acked))
			if err := ds2.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestTortureTornTail tears bytes off the WAL tail (a crash mid-write) and
// appends garbage (a partially flushed page), asserting recovery keeps the
// valid prefix and reports the truncation.
func TestTortureTornTail(t *testing.T) {
	steps := tortureScript()

	t.Run("torn", func(t *testing.T) {
		dir := t.TempDir()
		ds, err := diskstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		fs := faultstore.New(ds, nil)
		runScript(t, fs, steps)
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := faultstore.TearTail(filepath.Join(dir, "wal.cpl"), 5); err != nil {
			t.Fatal(err)
		}
		ds2, err := diskstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer ds2.Close()
		loaded, err := ds2.Load()
		if err != nil {
			t.Fatalf("load after torn tail: %v", err)
		}
		if !ds2.Stats().Truncated {
			t.Fatal("torn tail not reported as truncated")
		}
		// The last record (a truth) straddles the tear; everything before it
		// must survive intact.
		assertState(t, "torn", loaded, expectAfter(steps, len(steps)-1))
	})

	t.Run("garbage", func(t *testing.T) {
		dir := t.TempDir()
		ds, err := diskstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		fs := faultstore.New(ds, nil)
		runScript(t, fs, steps)
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
		if err := faultstore.AppendGarbage(filepath.Join(dir, "wal.cpl"), []byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
			t.Fatal(err)
		}
		ds2, err := diskstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer ds2.Close()
		loaded, err := ds2.Load()
		if err != nil {
			t.Fatalf("load after garbage tail: %v", err)
		}
		if !ds2.Stats().Truncated {
			t.Fatal("garbage tail not reported as truncated")
		}
		// The garbage follows complete records: nothing committed is lost.
		assertState(t, "garbage", loaded, expectAfter(steps, len(steps)))
	})
}

// tinyTortureConfig is a scenario small enough to rebuild once per kill
// point. ALT preprocessing is skipped — the sweep needs construction speed,
// not routing speed.
func tinyTortureConfig() ScenarioConfig {
	cfg := SmallScenarioConfig()
	cfg.City.Cols, cfg.City.Rows = 6, 6
	cfg.Population.NumDrivers = 24
	cfg.Dataset.NumODs = 6
	cfg.Dataset.TripsPerOD = 5
	cfg.Landmarks.NumPoints = 30
	cfg.Landmarks.NumLines = 3
	cfg.Landmarks.NumRegions = 2
	cfg.Checkins.NumUsers = 40
	cfg.Workers.NumWorkers = 40
	cfg.System.PMF.Iters = 10
	cfg.System.RoutingPreprocess = false
	return cfg
}

// tortureWorkload drives a deterministic mixed workload: ingest, synchronous
// recommends (truth + worker-event commits), and an async task lifecycle.
// Append failures are absorbed by the core, so the sequence of *attempted*
// appends is identical whatever the fault plan does.
func tortureWorkload(scn *Scenario) {
	ctx := context.Background()
	sys := scn.System
	sys.IngestTrips(cloneTrips(scn, 3, 45))
	served := 0
	for _, tr := range scn.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		_, _ = sys.Recommend(ctx, Request{From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart})
		if served++; served == 4 {
			break
		}
	}
	sys.IngestTrips(cloneTrips(scn, 2, 90))
	// Try to publish an async task; whichever OD first yields a ticket gets
	// one answer and is then expired (open → decision(s) → close records).
	for _, tr := range scn.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		_, ticket, err := sys.RecommendAsync(ctx, Request{
			From: tr.Route.Source(), To: tr.Route.Dest(),
			Depart: tr.Depart.Add(200), DeadlineMin: 30,
		})
		if err != nil || ticket == nil {
			continue
		}
		if len(ticket.Assigned) > 0 {
			_, _ = sys.SubmitAnswer(ticket.ID, ticket.Assigned[0].Worker.ID, true)
		}
		_, _ = sys.ExpireTask(ticket.ID)
		break
	}
}

// buildTortured builds the tiny scenario over a faultstore-wrapped diskstore
// in dir and boots it (replaying any persisted state, pinning the world).
func buildTortured(t *testing.T, dir string, plan faultstore.Plan) (*Scenario, *faultstore.Store, *diskstore.Store) {
	t.Helper()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := faultstore.New(ds, plan)
	cfg := tinyTortureConfig()
	cfg.System.Store = fs
	scn := BuildScenario(cfg)
	if _, err := scn.System.LoadFromStore(context.Background()); err != nil {
		t.Fatal(err)
	}
	return scn, fs, ds
}

// TestTortureCoreCrashRecovery is the core-level sweep: run the full mixed
// workload against a real System, crash the store before every append point
// in turn, and assert the durable prefix is exact. At sampled kill points a
// full System is rebooted over the survivors: the world fingerprint must
// verify, replay must succeed, and snapshot + replay must be idempotent.
func TestTortureCoreCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("torture sweep in -short mode")
	}
	// Baseline: the workload over a healthy fault store, twice, to pin down
	// the attempted-append sequence and prove it deterministic.
	baseDir := t.TempDir()
	scn, fs, ds := buildTortured(t, baseDir, nil)
	tortureWorkload(scn)
	acks := fs.AckLog()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if len(acks) == 0 {
		t.Fatal("baseline workload appended nothing")
	}
	var nTruths, nTrips, nEvents int
	for _, op := range acks {
		switch op {
		case faultstore.OpTruth:
			nTruths++
		case faultstore.OpTrips:
			nTrips++
		case faultstore.OpWorkerEvents:
			nEvents++
		}
	}
	t.Logf("baseline: %d appends (%d truths, %d trip batches, %d event batches)", len(acks), nTruths, nTrips, nEvents)
	if nTruths == 0 || nTrips != 2 {
		t.Fatalf("workload did not exercise truths+ingest: %v", acks)
	}

	scn2, fs2, ds2 := buildTortured(t, t.TempDir(), nil)
	tortureWorkload(scn2)
	acks2 := fs2.AckLog()
	if err := ds2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(acks) != len(acks2) {
		t.Fatalf("workload nondeterministic: %d vs %d appends", len(acks), len(acks2))
	}
	for i := range acks {
		if acks[i] != acks2[i] {
			t.Fatalf("workload nondeterministic at append %d: %v vs %v", i+1, acks[i], acks2[i])
		}
	}

	// Baseline durable state, as the next boot would see it.
	ref, err := func() (*store.State, error) {
		d, err := diskstore.Open(baseDir)
		if err != nil {
			return nil, err
		}
		defer d.Close()
		return d.Load()
	}()
	if err != nil {
		t.Fatal(err)
	}
	// The two ingest batches are the only trip appends, in workload order.
	tripBatch := []int{3, 2}

	n := len(acks)
	rebootAt := map[int]bool{1: true, n / 4: true, n / 2: true, 3 * n / 4: true, n: true}
	for k := 1; k <= n; k++ {
		dir := t.TempDir()
		scnK, fsK, dsK := buildTortured(t, dir, faultstore.KillAtAppend(k))
		tortureWorkload(scnK)
		if !fsK.Killed() {
			t.Fatalf("kill %d never fired", k)
		}
		acksK := fsK.AckLog()
		if len(acksK) != k-1 {
			t.Fatalf("kill %d: %d acked, want %d", k, len(acksK), k-1)
		}
		for i := range acksK {
			if acksK[i] != acks[i] {
				t.Fatalf("kill %d: append %d = %v, baseline %v", k, i+1, acksK[i], acks[i])
			}
		}

		// Recover the directory cold and compare against the acked prefix.
		wantTruths, wantTrips := 0, 0
		tripsSeen := 0
		for _, op := range acksK {
			switch op {
			case faultstore.OpTruth:
				wantTruths++
			case faultstore.OpTrips:
				wantTrips += tripBatch[tripsSeen]
				tripsSeen++
			}
		}
		dsR, err := diskstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := dsR.Load()
		if err != nil {
			t.Fatalf("kill %d: load: %v", k, err)
		}
		if loaded == nil {
			loaded = &store.State{}
		}
		if len(loaded.Truths) != wantTruths {
			t.Fatalf("kill %d: %d truths survived, want %d", k, len(loaded.Truths), wantTruths)
		}
		for i := range loaded.Truths {
			g, w := loaded.Truths[i], ref.Truths[i]
			if g.From != w.From || g.To != w.To || g.Slot != w.Slot {
				t.Fatalf("kill %d: truth %d = %+v, baseline %+v", k, i, g, w)
			}
		}
		if len(loaded.Trips) != wantTrips {
			t.Fatalf("kill %d: %d trips survived, want %d", k, len(loaded.Trips), wantTrips)
		}
		for i := range loaded.Trips {
			if loaded.Trips[i].Seq != ref.Trips[i].Seq {
				t.Fatalf("kill %d: trip %d seq %d, baseline %d", k, i, loaded.Trips[i].Seq, ref.Trips[i].Seq)
			}
		}
		if err := dsR.Close(); err != nil {
			t.Fatal(err)
		}
		_ = dsK // the crashed handle is deliberately never closed

		if !rebootAt[k] {
			continue
		}
		// Full System reboot over the survivors: fingerprint, replay,
		// snapshot, and a second replay must all agree.
		dsB, err := diskstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg := tinyTortureConfig()
		cfg.System.Store = dsB
		reboot := BuildScenario(cfg)
		stats, err := reboot.System.LoadFromStore(context.Background())
		if err != nil {
			t.Fatalf("kill %d: reboot replay: %v", k, err)
		}
		if stats.LoadedTruths != wantTruths || stats.LoadedTrips != wantTrips {
			t.Fatalf("kill %d: reboot loaded %d truths %d trips, want %d/%d", k, stats.LoadedTruths, stats.LoadedTrips, wantTruths, wantTrips)
		}
		if _, err := reboot.System.Snapshot(); err != nil {
			t.Fatalf("kill %d: snapshot after recovery: %v", k, err)
		}
		if err := dsB.Close(); err != nil {
			t.Fatal(err)
		}
		dsI, err := diskstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		again, err := dsI.Load()
		if err != nil {
			t.Fatalf("kill %d: post-snapshot replay: %v", k, err)
		}
		if again == nil {
			again = &store.State{}
		}
		if len(again.Truths) != wantTruths || len(again.Trips) != wantTrips {
			t.Fatalf("kill %d: snapshot+replay changed state: %d truths %d trips, want %d/%d",
				k, len(again.Truths), len(again.Trips), wantTruths, wantTrips)
		}
		if err := dsI.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTortureWorldFingerprintMismatch: recovering a directory with a
// *different* world must be refused — replaying another city's truths would
// serve wrong routes as crowd-verified.
func TestTortureWorldFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	scn, _, ds := buildTortured(t, dir, nil)
	tortureWorkload(scn)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	other, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	cfg := tinyTortureConfig()
	cfg.City.Cols = 7 // a different world
	cfg.System.Store = other
	wrong := BuildScenario(cfg)
	if _, err := wrong.System.LoadFromStore(context.Background()); err == nil {
		t.Fatal("replaying a different world's store did not fail fingerprint verification")
	}
}
