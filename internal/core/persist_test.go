package core

import (
	"context"
	"strings"
	"testing"

	"crowdplanner/internal/store"
	"crowdplanner/internal/store/diskstore"
	"crowdplanner/internal/traj"
)

// buildPersistent builds the small scenario over a diskstore rooted at dir
// and replays any persisted state, returning the scenario and the store.
func buildPersistent(t *testing.T, dir string) (*Scenario, *diskstore.Store) {
	t.Helper()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallScenarioConfig()
	cfg.System.Store = ds
	scn := BuildScenario(cfg)
	if _, err := scn.System.LoadFromStore(context.Background()); err != nil {
		t.Fatal(err)
	}
	return scn, ds
}

// TestRestartServesReuseFromWAL is the acceptance-criterion test: a system
// that verified a truth, then dies without snapshotting (WAL only — the
// "kill -9" case), must serve the same route via StageReuse after restart,
// without re-running the crowd.
func TestRestartServesReuseFromWAL(t *testing.T) {
	dir := t.TempDir()
	scn1, ds1 := buildPersistent(t, dir)

	var req Request
	var first *Response
	for _, tr := range scn1.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		r := Request{From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart}
		resp, err := scn1.System.Recommend(context.Background(), r)
		if err != nil {
			continue
		}
		// Any first-time resolution commits a truth for this OD+slot.
		req, first = r, resp
		break
	}
	if first == nil {
		t.Fatal("no trip produced a recommendation")
	}
	if n := scn1.System.TruthDB().Len(); n == 0 {
		t.Fatal("recommendation stored no truth")
	}
	// Kill: close the store without snapshotting. Only the WAL survives.
	if err := ds1.Close(); err != nil {
		t.Fatal(err)
	}

	scn2, ds2 := buildPersistent(t, dir)
	defer ds2.Close()
	st, _ := scn2.System.StoreStats()
	if st.LoadedTruths == 0 {
		t.Fatalf("restart loaded no truths: %+v", st)
	}
	resp, err := scn2.System.Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stage != StageReuse {
		t.Fatalf("restarted system resolved via %v, want %v", resp.Stage, StageReuse)
	}
	if !resp.Route.Equal(first.Route) {
		t.Fatalf("restarted route %v != original %v", resp.Route, first.Route)
	}
	if resp.Run != nil {
		t.Fatal("reuse after restart ran the crowd")
	}
}

// TestSnapshotCompactsAndRestores: snapshot mid-stream, keep serving (tail
// lands in the fresh WAL), restart, and verify the full truth set is back.
func TestSnapshotCompactsAndRestores(t *testing.T) {
	dir := t.TempDir()
	scn1, ds1 := buildPersistent(t, dir)
	sys := scn1.System

	served := 0
	for _, tr := range scn1.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		if _, err := sys.Recommend(context.Background(), Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		}); err == nil {
			served++
		}
		if served == 6 {
			if stats, err := sys.Snapshot(); err != nil {
				t.Fatal(err)
			} else if stats.Snapshots != 1 || stats.WALRecords != 0 {
				t.Fatalf("post-snapshot stats = %+v", stats)
			}
		}
		if served >= 10 {
			break
		}
	}
	if served < 10 {
		t.Fatalf("only %d trips served", served)
	}
	wantTruths := sys.TruthDB().Len()
	var wantRewards float64
	for _, w := range scn1.Pool.Workers {
		wantRewards += w.Reward
	}
	ds1.Close()

	scn2, ds2 := buildPersistent(t, dir)
	defer ds2.Close()
	if got := scn2.System.TruthDB().Len(); got != wantTruths {
		t.Fatalf("restored %d truths, want %d", got, wantTruths)
	}
	var gotRewards float64
	for _, w := range scn2.Pool.Workers {
		gotRewards += w.Reward
	}
	if gotRewards != wantRewards {
		t.Fatalf("restored reward total %v, want %v", gotRewards, wantRewards)
	}
}

// TestPendingTaskSurvivesRestart: an open async task is re-published after a
// restart at the question it was on, and can be driven to resolution.
func TestPendingTaskSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	scn1, ds1 := buildPersistent(t, dir)

	var ticket *PendingTask
	for _, tr := range scn1.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		_, p, err := scn1.System.RecommendAsync(context.Background(), Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		})
		if err == nil && p != nil {
			ticket = p
			break
		}
	}
	if ticket == nil {
		t.Skip("no trip needed the crowd in this scenario")
	}
	wantQ, ok := ticket.CurrentQuestion()
	if !ok {
		t.Fatal("published ticket has no open question")
	}
	ds1.Close()

	scn2, ds2 := buildPersistent(t, dir)
	defer ds2.Close()
	sys := scn2.System
	if got := sys.OpenTasks(); got != 1 {
		t.Fatalf("open tasks after restart = %d, want 1", got)
	}
	p, found := sys.PendingTask(ticket.ID)
	if !found {
		t.Fatalf("task %d not restored", ticket.ID)
	}
	gotQ, ok := p.CurrentQuestion()
	if !ok || gotQ != wantQ {
		t.Fatalf("restored task at question %v (ok=%v), want %v", gotQ, ok, wantQ)
	}
	if len(p.Assigned) != len(ticket.Assigned) {
		t.Fatalf("restored %d assigned workers, want %d", len(p.Assigned), len(ticket.Assigned))
	}
	// The re-claimed workers hold outstanding slots again.
	for _, r := range p.Assigned {
		if r.Worker.Outstanding == 0 {
			t.Fatalf("restored worker %v has no outstanding slot", r.Worker.ID)
		}
	}

	// Drive the restored task to resolution through the normal answer path.
	for i := 0; i < 64; i++ {
		state, _ := p.Status()
		if state != TaskOpen {
			break
		}
		var answered bool
		for _, r := range p.Assigned {
			if _, err := sys.SubmitAnswer(p.ID, r.Worker.ID, true); err == nil {
				answered = true
				break
			}
		}
		if !answered {
			t.Fatal("no assigned worker could answer the open question")
		}
	}
	state, result := p.Status()
	if state != TaskResolved || result == nil {
		t.Fatalf("restored task did not resolve: state=%v result=%v", state, result)
	}
	if sys.OpenTasks() != 0 {
		t.Fatalf("open tasks after resolution = %d", sys.OpenTasks())
	}
	// Resolution committed a truth for the task's OD+slot.
	if _, ok := sys.TruthDB().Lookup(p.Req.From, p.Req.To, p.Req.Depart); !ok {
		t.Fatal("resolved task stored no truth")
	}
}

// TestAppendErrorsAreAbsorbed: a dead backend must not fail requests; the
// failures are counted.
func TestAppendErrorsAreAbsorbed(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallScenarioConfig()
	cfg.System.Store = ds
	scn := BuildScenario(cfg)
	ds.Close() // every append from now on fails

	var resp *Response
	for _, tr := range scn.Data.Trips {
		if tr.Route.Empty() {
			continue
		}
		if resp, err = scn.System.Recommend(context.Background(), Request{
			From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
		}); err == nil {
			break
		}
	}
	if err != nil || resp == nil {
		t.Fatalf("recommend with dead backend failed: %v", err)
	}
	if _, errs := scn.System.StoreStats(); errs == 0 {
		t.Fatal("append failures were not counted")
	}
}

// TestMismatchedWorldRejected: a data directory written by a different
// (larger) scenario must fail the load with a clear error instead of
// panicking in the spatial index or silently serving foreign truths.
func TestMismatchedWorldRejected(t *testing.T) {
	dir := t.TempDir()
	ds, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A truth referencing node 1_000_000 — far outside any small world.
	if err := ds.AppendTruth(store.TruthRecord{
		From: 1_000_000, To: 2, Slot: 8, Nodes: []int32{1_000_000, 2}, Confidence: 0.9,
	}); err != nil {
		t.Fatal(err)
	}
	ds.Close()

	ds2, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	cfg := SmallScenarioConfig()
	cfg.System.Store = ds2
	scn := BuildScenario(cfg)
	if _, err := scn.System.LoadFromStore(context.Background()); err == nil {
		t.Fatal("loading a foreign world's data dir succeeded, want error")
	} else if !strings.Contains(err.Error(), "different scenario") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestWorldFingerprintRejected: a data directory pinned by one scenario is
// refused by a same-sized world generated from a different seed — node IDs
// line up, so only the fingerprint can tell them apart.
func TestWorldFingerprintRejected(t *testing.T) {
	dir := t.TempDir()
	_, ds1 := buildPersistent(t, dir) // pins the fingerprint
	ds1.Close()

	ds2, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	cfg := SmallScenarioConfig()
	cfg.City.Seed += 991 // same dimensions, different geometry
	cfg.System.Store = ds2
	scn := BuildScenario(cfg)
	if _, err := scn.System.LoadFromStore(context.Background()); err == nil {
		t.Fatal("foreign-seed world accepted a pinned data dir, want error")
	} else if !strings.Contains(err.Error(), "different world") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestIngestedTripsSurviveRestart is the ingestion acceptance test: trips
// streamed in via IngestTrips must ride the snapshot+WAL format — some
// compacted into a snapshot, some left in the WAL (the "kill -9" case) —
// and be visible to the miners after a restart.
func TestIngestedTripsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	scn1, ds1 := buildPersistent(t, dir)
	sys1 := scn1.System
	base := sys1.CorpusSize()

	ingest := func(sys *System, n int, shift float64) []traj.Trajectory {
		trips := cloneTrips(scn1, n, shift)
		rep := sys.IngestTrips(trips)
		if rep.Accepted != n {
			t.Fatalf("ingest accepted %d of %d: %+v", rep.Accepted, n, rep.Rejected)
		}
		return trips
	}
	// First wave, then a snapshot (compacts the wave into snapshot.cps),
	// then a second wave that only the WAL holds.
	first := ingest(sys1, 4, 45)
	if _, err := sys1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	second := ingest(sys1, 3, 90)
	// Kill without a second snapshot.
	if err := ds1.Close(); err != nil {
		t.Fatal(err)
	}

	scn2, ds2 := buildPersistent(t, dir)
	defer ds2.Close()
	sys2 := scn2.System
	if got, want := sys2.CorpusSize(), base+len(first)+len(second); got != want {
		t.Fatalf("corpus after restart = %d, want %d", got, want)
	}
	st, _ := sys2.StoreStats()
	if st.LoadedTrips != len(first)+len(second) {
		t.Fatalf("loaded trips = %d, want %d", st.LoadedTrips, len(first)+len(second))
	}
	// The replayed trips are visible to the miner query path, in ingestion
	// order after the regenerated base corpus.
	restored := scn2.Data.IngestedTrips()
	if len(restored) != len(first)+len(second) {
		t.Fatalf("ingested tail = %d trips, want %d", len(restored), len(first)+len(second))
	}
	for i, want := range append(append([]traj.Trajectory{}, first...), second...) {
		if !restored[i].Route.Equal(want.Route) || restored[i].Depart != want.Depart || restored[i].Driver != want.Driver {
			t.Fatalf("restored trip %d = %+v, want %+v", i, restored[i], want)
		}
	}
	tr := first[0]
	matches := scn2.Data.TripsBetween(tr.Route.Source(), tr.Route.Dest(), 0)
	found := false
	for _, m := range matches {
		if m.Depart == tr.Depart && m.Route.Equal(tr.Route) {
			found = true
		}
	}
	if !found {
		t.Fatal("replayed trip not visible to TripsBetween after restart")
	}

	// A second snapshot+restart round trip must not duplicate anything.
	if _, err := sys2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ds2.Close()
	scn3, ds3 := buildPersistent(t, dir)
	defer ds3.Close()
	if got, want := scn3.System.CorpusSize(), base+len(first)+len(second); got != want {
		t.Fatalf("corpus after second restart = %d, want %d (duplicated replay?)", got, want)
	}
}

// TestDiscardDefault: a nil Config.Store keeps state process-local — commits
// are counted for observability but nothing is retained.
func TestDiscardDefault(t *testing.T) {
	scn := BuildScenario(SmallScenarioConfig())
	stats, _ := scn.System.StoreStats()
	if stats.Backend != "none" {
		t.Fatalf("default backend = %q, want none", stats.Backend)
	}
	tr := scn.Data.Trips[0]
	if _, err := scn.System.Recommend(context.Background(), Request{
		From: tr.Route.Source(), To: tr.Route.Dest(), Depart: tr.Depart,
	}); err != nil {
		t.Fatal(err)
	}
	stats, _ = scn.System.StoreStats()
	if stats.TruthAppends == 0 {
		t.Fatal("truth commit was not logged to the backend")
	}
}
