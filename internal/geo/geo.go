// Package geo provides planar geometry primitives used throughout
// CrowdPlanner: points, distances, bounding boxes and polylines.
//
// All coordinates are expressed in meters in a local planar frame (the
// synthetic city generator emits coordinates directly in this frame, so no
// geodetic projection is required). Distances are Euclidean.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the local planar frame, in meters.
type Point struct {
	X float64
	Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y)
}

// Dist returns the Euclidean distance in meters between p and q.
func Dist(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// SqDist returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison key in hot paths such as
// nearest-neighbour scans.
func SqDist(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func Lerp(p, q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// Midpoint returns the midpoint of the segment pq.
func Midpoint(p, q Point) Point {
	return Lerp(p, q, 0.5)
}

// BBox is an axis-aligned bounding box. A BBox is valid when Min.X <= Max.X
// and Min.Y <= Max.Y; the zero BBox is the empty box at the origin.
type BBox struct {
	Min Point
	Max Point
}

// NewBBox returns the smallest box containing all given points. It panics if
// called with no points.
func NewBBox(pts ...Point) BBox {
	if len(pts) == 0 {
		panic("geo: NewBBox requires at least one point")
	}
	b := BBox{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b
}

// Extend returns the smallest box containing both b and p.
func (b BBox) Extend(p Point) BBox {
	if p.X < b.Min.X {
		b.Min.X = p.X
	}
	if p.Y < b.Min.Y {
		b.Min.Y = p.Y
	}
	if p.X > b.Max.X {
		b.Max.X = p.X
	}
	if p.Y > b.Max.Y {
		b.Max.Y = p.Y
	}
	return b
}

// Union returns the smallest box containing both boxes.
func (b BBox) Union(o BBox) BBox {
	return b.Extend(o.Min).Extend(o.Max)
}

// Contains reports whether p lies inside b (inclusive of the boundary).
func (b BBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Intersects reports whether the two boxes overlap (boundary contact counts).
func (b BBox) Intersects(o BBox) bool {
	return b.Min.X <= o.Max.X && o.Min.X <= b.Max.X &&
		b.Min.Y <= o.Max.Y && o.Min.Y <= b.Max.Y
}

// Buffer returns b grown by r meters on every side. Negative r shrinks the
// box; the result may become inverted (empty) if r is too negative.
func (b BBox) Buffer(r float64) BBox {
	return BBox{
		Min: Point{X: b.Min.X - r, Y: b.Min.Y - r},
		Max: Point{X: b.Max.X + r, Y: b.Max.Y + r},
	}
}

// Width returns the horizontal extent of b in meters.
func (b BBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the vertical extent of b in meters.
func (b BBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Center returns the center point of b.
func (b BBox) Center() Point { return Midpoint(b.Min, b.Max) }

// DistPointSegment returns the minimum distance from point p to the segment
// ab, together with the parameter t in [0,1] of the closest point on ab.
func DistPointSegment(p, a, b Point) (dist, t float64) {
	abx := b.X - a.X
	aby := b.Y - a.Y
	l2 := abx*abx + aby*aby
	if l2 == 0 {
		return Dist(p, a), 0
	}
	t = ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := Point{X: a.X + t*abx, Y: a.Y + t*aby}
	return Dist(p, closest), t
}
