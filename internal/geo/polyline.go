package geo

// Polyline is an ordered sequence of points describing a continuous path.
type Polyline []Point

// Length returns the total length of the polyline in meters. An empty or
// single-point polyline has length 0.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		total += Dist(pl[i-1], pl[i])
	}
	return total
}

// BBox returns the bounding box of the polyline. It panics on an empty
// polyline, mirroring NewBBox.
func (pl Polyline) BBox() BBox {
	return NewBBox(pl...)
}

// DistTo returns the minimum distance from p to any segment of the polyline,
// and the arc-length position (meters from the start) of the closest point.
// A single-point polyline is treated as that point at position 0. It panics
// on an empty polyline.
func (pl Polyline) DistTo(p Point) (dist, position float64) {
	if len(pl) == 0 {
		panic("geo: DistTo on empty polyline")
	}
	if len(pl) == 1 {
		return Dist(p, pl[0]), 0
	}
	best := Dist(p, pl[0])
	bestPos := 0.0
	var walked float64
	for i := 1; i < len(pl); i++ {
		segLen := Dist(pl[i-1], pl[i])
		d, t := DistPointSegment(p, pl[i-1], pl[i])
		if d < best {
			best = d
			bestPos = walked + t*segLen
		}
		walked += segLen
	}
	return best, bestPos
}

// PointAt returns the point at arc-length position meters from the start,
// clamped to the polyline's extent. It panics on an empty polyline.
func (pl Polyline) PointAt(position float64) Point {
	if len(pl) == 0 {
		panic("geo: PointAt on empty polyline")
	}
	if position <= 0 || len(pl) == 1 {
		return pl[0]
	}
	var walked float64
	for i := 1; i < len(pl); i++ {
		segLen := Dist(pl[i-1], pl[i])
		if walked+segLen >= position {
			if segLen == 0 {
				return pl[i]
			}
			return Lerp(pl[i-1], pl[i], (position-walked)/segLen)
		}
		walked += segLen
	}
	return pl[len(pl)-1]
}

// Resample returns a polyline with points spaced approximately every step
// meters along pl, always including the original endpoints. It panics if
// step <= 0 or the polyline is empty.
func (pl Polyline) Resample(step float64) Polyline {
	if step <= 0 {
		panic("geo: Resample step must be positive")
	}
	if len(pl) == 0 {
		panic("geo: Resample on empty polyline")
	}
	total := pl.Length()
	if total == 0 {
		return Polyline{pl[0]}
	}
	out := Polyline{pl[0]}
	for pos := step; pos < total; pos += step {
		out = append(out, pl.PointAt(pos))
	}
	out = append(out, pl[len(pl)-1])
	return out
}
