package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{10, 0}, Point{0, 0}, 10},
	}
	for _, c := range cases {
		if got := Dist(c.p, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Point{sanitize(ax), sanitize(ay)}
		b := Point{sanitize(bx), sanitize(by)}
		return almostEqual(Dist(a, b), Dist(b, a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitize maps arbitrary quick-generated floats into a tame finite range so
// distance arithmetic cannot overflow.
func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{sanitize(ax), sanitize(ay)}
		b := Point{sanitize(bx), sanitize(by)}
		c := Point{sanitize(cx), sanitize(cy)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSqDistConsistent(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Point{sanitize(ax), sanitize(ay)}
		b := Point{sanitize(bx), sanitize(by)}
		d := Dist(a, b)
		// Relative tolerance: at coordinates up to 1e6 the squared values
		// reach ~1e13, where float64 ulps exceed any fixed epsilon.
		eps := 1e-9 * math.Max(1, d*d)
		return almostEqual(SqDist(a, b), d*d, eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a := Point{0, 0}
	b := Point{10, 20}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1 = %v, want %v", got, b)
	}
	mid := Lerp(a, b, 0.5)
	if !almostEqual(mid.X, 5, 1e-9) || !almostEqual(mid.Y, 10, 1e-9) {
		t.Errorf("Lerp t=0.5 = %v, want (5,10)", mid)
	}
	if got := Midpoint(a, b); got != mid {
		t.Errorf("Midpoint = %v, want %v", got, mid)
	}
}

func TestBBoxExtendContains(t *testing.T) {
	b := NewBBox(Point{0, 0})
	b = b.Extend(Point{10, 5})
	b = b.Extend(Point{-3, 7})
	if !b.Contains(Point{0, 0}) || !b.Contains(Point{10, 5}) || !b.Contains(Point{-3, 7}) {
		t.Error("box should contain all extended points")
	}
	if b.Contains(Point{11, 0}) {
		t.Error("box should not contain (11,0)")
	}
	if b.Min.X != -3 || b.Max.X != 10 || b.Min.Y != 0 || b.Max.Y != 7 {
		t.Errorf("unexpected box %+v", b)
	}
	if !almostEqual(b.Width(), 13, 1e-9) || !almostEqual(b.Height(), 7, 1e-9) {
		t.Errorf("width/height = %v/%v", b.Width(), b.Height())
	}
}

func TestNewBBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBBox() should panic with no points")
		}
	}()
	NewBBox()
}

func TestBBoxIntersects(t *testing.T) {
	a := BBox{Point{0, 0}, Point{10, 10}}
	cases := []struct {
		b    BBox
		want bool
	}{
		{BBox{Point{5, 5}, Point{15, 15}}, true},
		{BBox{Point{10, 10}, Point{20, 20}}, true}, // boundary contact
		{BBox{Point{11, 11}, Point{20, 20}}, false},
		{BBox{Point{-5, -5}, Point{-1, -1}}, false},
		{BBox{Point{2, 2}, Point{3, 3}}, true}, // containment
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%+v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects symmetric (%+v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestBBoxBufferUnionCenter(t *testing.T) {
	a := BBox{Point{0, 0}, Point{10, 10}}
	buf := a.Buffer(5)
	if buf.Min.X != -5 || buf.Max.Y != 15 {
		t.Errorf("Buffer = %+v", buf)
	}
	u := a.Union(BBox{Point{20, 20}, Point{30, 30}})
	if u.Min != (Point{0, 0}) || u.Max != (Point{30, 30}) {
		t.Errorf("Union = %+v", u)
	}
	if c := a.Center(); c != (Point{5, 5}) {
		t.Errorf("Center = %v", c)
	}
}

func TestDistPointSegment(t *testing.T) {
	a := Point{0, 0}
	b := Point{10, 0}
	d, tt := DistPointSegment(Point{5, 3}, a, b)
	if !almostEqual(d, 3, 1e-9) || !almostEqual(tt, 0.5, 1e-9) {
		t.Errorf("mid: d=%v t=%v", d, tt)
	}
	d, tt = DistPointSegment(Point{-4, 3}, a, b)
	if !almostEqual(d, 5, 1e-9) || tt != 0 {
		t.Errorf("before start: d=%v t=%v", d, tt)
	}
	d, tt = DistPointSegment(Point{14, 3}, a, b)
	if !almostEqual(d, 5, 1e-9) || tt != 1 {
		t.Errorf("after end: d=%v t=%v", d, tt)
	}
	// Degenerate segment.
	d, tt = DistPointSegment(Point{3, 4}, a, a)
	if !almostEqual(d, 5, 1e-9) || tt != 0 {
		t.Errorf("degenerate: d=%v t=%v", d, tt)
	}
}

func TestPolylineLength(t *testing.T) {
	pl := Polyline{{0, 0}, {3, 4}, {3, 10}}
	if got := pl.Length(); !almostEqual(got, 11, 1e-9) {
		t.Errorf("Length = %v, want 11", got)
	}
	if got := (Polyline{}).Length(); got != 0 {
		t.Errorf("empty Length = %v", got)
	}
	if got := (Polyline{{1, 1}}).Length(); got != 0 {
		t.Errorf("single Length = %v", got)
	}
}

func TestPolylineDistTo(t *testing.T) {
	pl := Polyline{{0, 0}, {10, 0}, {10, 10}}
	d, pos := pl.DistTo(Point{5, 2})
	if !almostEqual(d, 2, 1e-9) || !almostEqual(pos, 5, 1e-9) {
		t.Errorf("d=%v pos=%v", d, pos)
	}
	d, pos = pl.DistTo(Point{12, 5})
	if !almostEqual(d, 2, 1e-9) || !almostEqual(pos, 15, 1e-9) {
		t.Errorf("second segment: d=%v pos=%v", d, pos)
	}
	d, pos = pl.DistTo(Point{0, 0})
	if !almostEqual(d, 0, 1e-9) || !almostEqual(pos, 0, 1e-9) {
		t.Errorf("origin: d=%v pos=%v", d, pos)
	}
}

func TestPolylinePointAt(t *testing.T) {
	pl := Polyline{{0, 0}, {10, 0}, {10, 10}}
	if got := pl.PointAt(-5); got != (Point{0, 0}) {
		t.Errorf("PointAt(-5) = %v", got)
	}
	if got := pl.PointAt(5); !almostEqual(got.X, 5, 1e-9) || got.Y != 0 {
		t.Errorf("PointAt(5) = %v", got)
	}
	if got := pl.PointAt(15); got.X != 10 || !almostEqual(got.Y, 5, 1e-9) {
		t.Errorf("PointAt(15) = %v", got)
	}
	if got := pl.PointAt(1000); got != (Point{10, 10}) {
		t.Errorf("PointAt(big) = %v", got)
	}
}

func TestPolylineResample(t *testing.T) {
	pl := Polyline{{0, 0}, {10, 0}}
	rs := pl.Resample(3)
	if rs[0] != (Point{0, 0}) || rs[len(rs)-1] != (Point{10, 0}) {
		t.Errorf("endpoints not preserved: %v", rs)
	}
	if len(rs) != 5 { // 0,3,6,9,10
		t.Errorf("len = %d, want 5 (%v)", len(rs), rs)
	}
	// Zero-length polyline collapses to a single point.
	z := Polyline{{1, 1}, {1, 1}}
	if got := z.Resample(1); len(got) != 1 {
		t.Errorf("zero-length resample = %v", got)
	}
}

func TestGridNearest(t *testing.T) {
	b := BBox{Point{0, 0}, Point{100, 100}}
	g := NewGrid(b, 10)
	if _, _, ok := g.Nearest(Point{1, 1}); ok {
		t.Error("empty grid should report !ok")
	}
	pts := []Point{{5, 5}, {50, 50}, {95, 95}, {5, 95}}
	for i, p := range pts {
		g.Insert(int32(i), p)
	}
	id, d, ok := g.Nearest(Point{6, 6})
	if !ok || id != 0 || !almostEqual(d, math.Sqrt(2), 1e-9) {
		t.Errorf("Nearest = id=%d d=%v ok=%v", id, d, ok)
	}
	id, _, _ = g.Nearest(Point{60, 60})
	if id != 1 {
		t.Errorf("Nearest(60,60) = %d, want 1", id)
	}
	// Query far outside bounds still resolves.
	id, _, _ = g.Nearest(Point{-500, -500})
	if id != 0 {
		t.Errorf("Nearest(outside) = %d, want 0", id)
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := BBox{Point{0, 0}, Point{1000, 1000}}
	g := NewGrid(b, 37)
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000}
		g.Insert(int32(i), pts[i])
	}
	for trial := 0; trial < 200; trial++ {
		q := Point{rng.Float64()*1200 - 100, rng.Float64()*1200 - 100}
		gotID, gotD, ok := g.Nearest(q)
		if !ok {
			t.Fatal("unexpected !ok")
		}
		bestID, bestD := int32(-1), math.Inf(1)
		for i, p := range pts {
			if d := Dist(q, p); d < bestD {
				bestD, bestID = d, int32(i)
			}
		}
		if !almostEqual(gotD, bestD, 1e-9) {
			t.Fatalf("trial %d: grid d=%v id=%d, brute d=%v id=%d", trial, gotD, gotID, bestD, bestID)
		}
	}
}

func TestGridWithin(t *testing.T) {
	b := BBox{Point{0, 0}, Point{100, 100}}
	g := NewGrid(b, 10)
	for i := 0; i < 10; i++ {
		g.Insert(int32(i), Point{float64(i * 10), 0})
	}
	got := g.Within(Point{0, 0}, 25)
	want := []int32{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Within = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Within = %v, want %v", got, want)
		}
	}
	if got := g.Within(Point{0, 0}, -1); got != nil {
		t.Errorf("negative radius should return nil, got %v", got)
	}
	if g.Len() != 10 {
		t.Errorf("Len = %d", g.Len())
	}
	if p, ok := g.Point(3); !ok || p != (Point{30, 0}) {
		t.Errorf("Point(3) = %v %v", p, ok)
	}
	if _, ok := g.Point(99); ok {
		t.Error("Point(99) should not exist")
	}
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := BBox{Point{0, 0}, Point{500, 500}}
	g := NewGrid(b, 21)
	pts := make([]Point, 150)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 500, rng.Float64() * 500}
		g.Insert(int32(i), pts[i])
	}
	for trial := 0; trial < 100; trial++ {
		q := Point{rng.Float64() * 500, rng.Float64() * 500}
		r := rng.Float64() * 120
		got := g.Within(q, r)
		var want []int32
		for i, p := range pts {
			if Dist(q, p) <= r {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestNewGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid with zero cell should panic")
		}
	}()
	NewGrid(BBox{}, 0)
}
