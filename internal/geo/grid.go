package geo

import "math"

// Grid is a uniform spatial hash index mapping integer item IDs to cells of a
// fixed size. It supports nearest-neighbour and radius queries and is the
// workhorse index for road-network nodes and landmarks. The zero value is not
// usable; construct with NewGrid.
type Grid struct {
	cell   float64
	bounds BBox
	cols   int
	rows   int
	cells  [][]int32
	pts    map[int32]Point
}

// NewGrid creates a grid covering bounds with square cells of the given size
// in meters. Items inserted outside bounds are clamped to the border cells,
// so queries remain correct (if slower) for stragglers. It panics if cell is
// not positive.
func NewGrid(bounds BBox, cell float64) *Grid {
	if cell <= 0 {
		panic("geo: grid cell size must be positive")
	}
	cols := int(math.Ceil(bounds.Width()/cell)) + 1
	rows := int(math.Ceil(bounds.Height()/cell)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		cell:   cell,
		bounds: bounds,
		cols:   cols,
		rows:   rows,
		cells:  make([][]int32, cols*rows),
		pts:    make(map[int32]Point),
	}
}

func (g *Grid) cellIndex(p Point) int {
	cx := int((p.X - g.bounds.Min.X) / g.cell)
	cy := int((p.Y - g.bounds.Min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Insert adds an item with the given ID at point p. Re-inserting an existing
// ID adds a second reference with the new position; callers are expected to
// use unique IDs.
func (g *Grid) Insert(id int32, p Point) {
	idx := g.cellIndex(p)
	g.cells[idx] = append(g.cells[idx], id)
	g.pts[id] = p
}

// Len returns the number of items inserted.
func (g *Grid) Len() int { return len(g.pts) }

// Point returns the stored position of id and whether it exists.
func (g *Grid) Point(id int32) (Point, bool) {
	p, ok := g.pts[id]
	return p, ok
}

// Nearest returns the ID of the item closest to p and its distance. ok is
// false when the grid is empty. Ties are broken by the lowest ID so results
// are deterministic.
func (g *Grid) Nearest(p Point) (id int32, dist float64, ok bool) {
	if len(g.pts) == 0 {
		return 0, 0, false
	}
	best := int32(-1)
	bestSq := math.Inf(1)
	// Expand ring by ring until a hit is found, then one extra ring to be
	// safe against diagonal neighbours.
	cx := int((p.X - g.bounds.Min.X) / g.cell)
	cy := int((p.Y - g.bounds.Min.Y) / g.cell)
	maxRing := g.cols
	if g.rows > maxRing {
		maxRing = g.rows
	}
	foundRing := -1
	for ring := 0; ring <= maxRing; ring++ {
		if foundRing >= 0 && ring > foundRing+1 {
			break
		}
		hit := g.scanRing(cx, cy, ring, p, &best, &bestSq)
		if hit && foundRing < 0 {
			foundRing = ring
		}
	}
	if best < 0 {
		// All items live outside the scanned rings (possible when the grid
		// bounds exclude p badly); fall back to a full scan.
		for id, q := range g.pts {
			d := SqDist(p, q)
			if d < bestSq || (d == bestSq && id < best) {
				bestSq = d
				best = id
			}
		}
	}
	return best, math.Sqrt(bestSq), true
}

// scanRing scans the square ring at Chebyshev distance ring from (cx, cy)
// and updates best/bestSq. It reports whether any item was seen.
func (g *Grid) scanRing(cx, cy, ring int, p Point, best *int32, bestSq *float64) bool {
	seen := false
	scan := func(x, y int) {
		if x < 0 || x >= g.cols || y < 0 || y >= g.rows {
			return
		}
		for _, id := range g.cells[y*g.cols+x] {
			seen = true
			d := SqDist(p, g.pts[id])
			if d < *bestSq || (d == *bestSq && id < *best) {
				*bestSq = d
				*best = id
			}
		}
	}
	if ring == 0 {
		scan(cx, cy)
		return seen
	}
	for x := cx - ring; x <= cx+ring; x++ {
		scan(x, cy-ring)
		scan(x, cy+ring)
	}
	for y := cy - ring + 1; y <= cy+ring-1; y++ {
		scan(cx-ring, y)
		scan(cx+ring, y)
	}
	return seen
}

// Within returns the IDs of all items within radius r of p, in ascending ID
// order for determinism.
func (g *Grid) Within(p Point, r float64) []int32 {
	if r < 0 || len(g.pts) == 0 {
		return nil
	}
	minIdx := g.cellIndex(Point{X: p.X - r, Y: p.Y - r})
	maxIdx := g.cellIndex(Point{X: p.X + r, Y: p.Y + r})
	minX, minY := minIdx%g.cols, minIdx/g.cols
	maxX, maxY := maxIdx%g.cols, maxIdx/g.cols
	r2 := r * r
	var out []int32
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			for _, id := range g.cells[y*g.cols+x] {
				if SqDist(p, g.pts[id]) <= r2 {
					out = append(out, id)
				}
			}
		}
	}
	sortInt32(out)
	return out
}

// sortInt32 sorts a small slice of int32 in ascending order. Insertion sort
// keeps the dependency footprint minimal and is fast for the short result
// lists produced by radius queries.
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
