package worker

import (
	"math"
	"sort"

	"crowdplanner/internal/landmark"
)

// SelectConfig carries the eligibility thresholds of paper §IV.
type SelectConfig struct {
	// MaxOutstanding is η_#q: workers at or above this many outstanding
	// tasks are skipped (quota condition 1).
	MaxOutstanding int
	// EtaTime is η_time: minimum acceptable probability of answering within
	// the deadline (condition 2).
	EtaTime float64
	// DeadlineMinutes is the user-specified response time t.
	DeadlineMinutes float64
}

// DefaultSelectConfig allows 5 outstanding tasks and requires a 70% chance
// of answering within 60 minutes.
func DefaultSelectConfig() SelectConfig {
	return SelectConfig{MaxOutstanding: 5, EtaTime: 0.7, DeadlineMinutes: 60}
}

// Ranked is a worker with its selection score.
type Ranked struct {
	Worker *Worker
	Score  float64
}

// TopKEligible returns the k most eligible workers for a task asking about
// the given landmarks (paper §IV-C):
//
//  1. filter by quota and by response probability 1 − e^{−λt} ≥ η_time;
//  2. candidate workers are those with accumulated familiarity > 0 on any
//     task landmark;
//  3. every task landmark ranks the candidates by its familiarity column
//     and votes with preference 1 − (rank−1)/|W_l| (rated voting);
//  4. the k workers with the highest summed preference win.
//
// The returned slice is ordered by descending score, ties broken by worker
// ID for determinism.
func TopKEligible(pool *Pool, mstar *Matrix, taskLandmarks []landmark.ID, k int, cfg SelectConfig) []Ranked {
	if k <= 0 || len(taskLandmarks) == 0 {
		return nil
	}
	// Conditions 1 & 2: quota and response time.
	eligible := make(map[int]bool, pool.Len())
	for i, w := range pool.Workers {
		if cfg.MaxOutstanding > 0 && w.Outstanding >= cfg.MaxOutstanding {
			continue
		}
		if w.ResponseProb(cfg.DeadlineMinutes) < cfg.EtaTime {
			continue
		}
		eligible[i] = true
	}
	if len(eligible) == 0 {
		return nil
	}

	// Condition 3: candidate workers W = ∪_l W_l restricted to eligible.
	type wf struct {
		worker int
		f      float64
	}
	perLandmark := make([][]wf, 0, len(taskLandmarks))
	candidates := map[int]bool{}
	for _, lid := range taskLandmarks {
		var col []wf
		for i := range pool.Workers {
			if !eligible[i] {
				continue
			}
			if f, ok := mstar.Get(i, int(lid)); ok && f > 0 {
				col = append(col, wf{worker: i, f: f})
				candidates[i] = true
			}
		}
		perLandmark = append(perLandmark, col)
	}
	if len(candidates) == 0 {
		return nil
	}

	// Rated voting: each landmark ranks its knowledgeable candidates and
	// awards preference 1 − (rank−1)/|W_l|.
	scores := map[int]float64{}
	for _, col := range perLandmark {
		sort.Slice(col, func(a, b int) bool {
			if col[a].f != col[b].f {
				return col[a].f > col[b].f
			}
			return col[a].worker < col[b].worker
		})
		n := float64(len(col))
		for rank, entry := range col {
			pref := 1 - float64(rank)/n
			scores[entry.worker] += pref
		}
	}

	ranked := make([]Ranked, 0, len(scores))
	for wi, s := range scores {
		ranked = append(ranked, Ranked{Worker: pool.Workers[wi], Score: s})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].Score != ranked[b].Score {
			return ranked[a].Score > ranked[b].Score
		}
		return ranked[a].Worker.ID < ranked[b].Worker.ID
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// SumFamiliarityTopK is the naive alternative the paper argues against
// (raw familiarity sums bias towards narrow one-landmark experts); kept as
// the ablation baseline for E4/ablation benches.
func SumFamiliarityTopK(pool *Pool, mstar *Matrix, taskLandmarks []landmark.ID, k int, cfg SelectConfig) []Ranked {
	if k <= 0 || len(taskLandmarks) == 0 {
		return nil
	}
	var ranked []Ranked
	for i, w := range pool.Workers {
		if cfg.MaxOutstanding > 0 && w.Outstanding >= cfg.MaxOutstanding {
			continue
		}
		if w.ResponseProb(cfg.DeadlineMinutes) < cfg.EtaTime {
			continue
		}
		var sum float64
		for _, lid := range taskLandmarks {
			if f, ok := mstar.Get(i, int(lid)); ok {
				sum += f
			}
		}
		if sum > 0 {
			ranked = append(ranked, Ranked{Worker: w, Score: sum})
		}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].Score != ranked[b].Score {
			return ranked[a].Score > ranked[b].Score
		}
		return ranked[a].Worker.ID < ranked[b].Worker.ID
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// Coverage reports the fraction of task landmarks on which the worker has
// positive accumulated familiarity — the knowledge-coverage notion behind
// the paper's w1/w2 example.
func Coverage(mstar *Matrix, workerIdx int, taskLandmarks []landmark.ID) float64 {
	if len(taskLandmarks) == 0 {
		return 0
	}
	known := 0
	for _, lid := range taskLandmarks {
		if f, ok := mstar.Get(workerIdx, int(lid)); ok && f > 0 {
			known++
		}
	}
	return float64(known) / float64(len(taskLandmarks))
}

// MeanScore returns the mean selection score of a ranked slice (0 for
// empty), a convenience for experiments.
func MeanScore(rs []Ranked) float64 {
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += r.Score
	}
	return sum / float64(len(rs))
}

// LogNormalLambda draws a response rate around mean with the given sigma;
// exposed for experiment workloads.
func LogNormalLambda(mean, sigma, u float64) float64 {
	return mean * math.Exp(sigma*u)
}
