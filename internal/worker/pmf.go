package worker

import (
	"math"
	"math/rand"
)

// PMFConfig tunes Probabilistic Matrix Factorization (paper §IV-B, after
// Mnih & Salakhutdinov [15]): M ≈ Wᵀ·L with Gaussian observation noise and
// Gaussian priors on the latent factors, fitted by gradient descent on the
// regularized squared error.
type PMFConfig struct {
	Factors   int     // latent dimensionality d
	LambdaW   float64 // λ_W regularizer
	LambdaL   float64 // λ_L regularizer
	LearnRate float64
	Iters     int
	Seed      int64
}

// DefaultPMFConfig works well on the synthetic familiarity matrices.
func DefaultPMFConfig() PMFConfig {
	return PMFConfig{
		Factors:   8,
		LambdaW:   0.05,
		LambdaL:   0.05,
		LearnRate: 0.015,
		Iters:     200,
		Seed:      41,
	}
}

// PMFModel holds the fitted latent factors plus the global bias (the mean
// observed familiarity). Factors model residuals around the bias, so
// entirely unobserved workers/landmarks fall back to the global mean rather
// than zero — without this, extreme sparsity would make the factorization
// worse than predicting the mean.
type PMFModel struct {
	W    [][]float64 // Workers × Factors
	L    [][]float64 // Landmarks × Factors
	Bias float64
}

// Predict returns the reconstructed familiarity for (worker, landmark).
// Predictions are clamped at 0 (familiarity is non-negative).
func (m *PMFModel) Predict(w, l int) float64 {
	if w < 0 || w >= len(m.W) || l < 0 || l >= len(m.L) {
		return 0
	}
	dot := m.Bias
	for k := range m.W[w] {
		dot += m.W[w][k] * m.L[l][k]
	}
	if dot < 0 {
		return 0
	}
	return dot
}

// FitPMF factorizes the observed matrix by batch gradient descent on
//
//	Σ_{ij observed} (M_ij − W_i·L_j)² + λ_W Σ‖W_i‖² + λ_L Σ‖L_j‖²
//
// returning the fitted model.
func FitPMF(m *Matrix, cfg PMFConfig) *PMFModel {
	if cfg.Factors <= 0 {
		cfg.Factors = DefaultPMFConfig().Factors
	}
	if cfg.Iters <= 0 {
		cfg.Iters = DefaultPMFConfig().Iters
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = DefaultPMFConfig().LearnRate
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	model := &PMFModel{
		W: randMatrix(rng, m.Workers, cfg.Factors),
		L: randMatrix(rng, m.Landmarks, cfg.Factors),
	}
	type obs struct {
		w, l int
		v    float64
	}
	var observations []obs
	var sum float64
	m.Each(func(w, l int, v float64) {
		observations = append(observations, obs{w, l, v})
		sum += v
	})
	if len(observations) == 0 {
		return model
	}
	model.Bias = sum / float64(len(observations))
	lr := cfg.LearnRate
	for iter := 0; iter < cfg.Iters; iter++ {
		for _, o := range observations {
			wi := model.W[o.w]
			lj := model.L[o.l]
			pred := model.Bias
			for k := 0; k < cfg.Factors; k++ {
				pred += wi[k] * lj[k]
			}
			err := o.v - pred
			for k := 0; k < cfg.Factors; k++ {
				gw := -2*err*lj[k] + 2*cfg.LambdaW*wi[k]
				gl := -2*err*wi[k] + 2*cfg.LambdaL*lj[k]
				wi[k] -= lr * gw
				lj[k] -= lr * gl
			}
		}
	}
	return model
}

func randMatrix(rng *rand.Rand, rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64() * 0.1
		}
	}
	return m
}

// Densify fills the unobserved entries of m with PMF predictions above the
// given floor, returning a new matrix that keeps all observed entries
// verbatim. This is the paper's "more familiarity scores between workers
// and landmarks are inferred in M".
func Densify(m *Matrix, model *PMFModel, floor float64) *Matrix {
	out := NewMatrix(m.Workers, m.Landmarks)
	m.Each(func(w, l int, v float64) { out.Set(w, l, v) })
	for w := 0; w < m.Workers; w++ {
		for l := 0; l < m.Landmarks; l++ {
			if _, ok := m.Get(w, l); ok {
				continue
			}
			if v := model.Predict(w, l); v > floor {
				out.Set(w, l, v)
			}
		}
	}
	return out
}

// RMSE computes the root-mean-squared error of the model on the observed
// entries of m (training error) — used by the E5 experiment.
func RMSE(m *Matrix, model *PMFModel) float64 {
	var sum float64
	var n int
	m.Each(func(w, l int, v float64) {
		d := v - model.Predict(w, l)
		sum += d * d
		n++
	})
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}
