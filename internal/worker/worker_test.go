package worker

import (
	"math"
	"testing"

	"crowdplanner/internal/geo"
	"crowdplanner/internal/landmark"
)

// lmGrid builds a row of point landmarks 500 m apart at y=0.
func lmGrid(n int) *landmark.Set {
	ls := make([]*landmark.Landmark, n)
	for i := range ls {
		ls[i] = &landmark.Landmark{
			ID:           landmark.ID(i),
			Pt:           geo.Point{X: float64(i) * 500},
			Significance: 0.5,
		}
	}
	return landmark.NewSet(ls)
}

func TestResponseProb(t *testing.T) {
	w := &Worker{Lambda: 0.1}
	if got := w.ResponseProb(0); got != 0 {
		t.Errorf("t=0 => %v", got)
	}
	p10 := w.ResponseProb(10)
	want := 1 - math.Exp(-1)
	if math.Abs(p10-want) > 1e-9 {
		t.Errorf("P(10) = %v, want %v", p10, want)
	}
	if w.ResponseProb(100) <= p10 {
		t.Error("longer deadline should raise probability")
	}
	if (&Worker{}).ResponseProb(10) != 0 {
		t.Error("zero lambda should never respond")
	}
}

func TestRecordAnswer(t *testing.T) {
	w := &Worker{}
	w.RecordAnswer(3, true)
	w.RecordAnswer(3, false)
	w.RecordAnswer(3, true)
	h := w.History[3]
	if h.Correct != 2 || h.Wrong != 1 {
		t.Errorf("history = %+v", h)
	}
}

func TestScoreProfileProximity(t *testing.T) {
	lms := lmGrid(5)
	cfg := DefaultFamiliarityConfig()
	near := &Worker{Profile: Profile{Home: geo.Point{X: 0}, Work: geo.Point{X: 10000}}}
	far := &Worker{Profile: Profile{Home: geo.Point{X: 10000}, Work: geo.Point{X: 10000}}}
	l0 := lms.Get(0)
	if Score(near, l0, cfg) <= Score(far, l0, cfg) {
		t.Error("living near a landmark should raise familiarity")
	}
	// Beyond EtaDis the profile term vanishes entirely.
	if got := Score(far, l0, cfg); got != 0 {
		t.Errorf("far worker score = %v, want 0", got)
	}
}

func TestScoreHistoryTerm(t *testing.T) {
	lms := lmGrid(3)
	cfg := DefaultFamiliarityConfig()
	w := &Worker{Profile: Profile{Home: geo.Point{X: 99999}, Work: geo.Point{X: 99999}}}
	l := lms.Get(0)
	if Score(w, l, cfg) != 0 {
		t.Error("no profile, no history -> 0")
	}
	w.RecordAnswer(0, true)
	s1 := Score(w, l, cfg)
	if math.Abs(s1-(1-cfg.Alpha)) > 1e-9 {
		t.Errorf("one correct = %v, want %v", s1, 1-cfg.Alpha)
	}
	w.RecordAnswer(0, false)
	s2 := Score(w, l, cfg)
	if math.Abs(s2-(1-cfg.Alpha)*(1+cfg.Beta)) > 1e-9 {
		t.Errorf("correct+wrong = %v, want %v", s2, (1-cfg.Alpha)*(1+cfg.Beta))
	}
	// Wrong answers still add (β > 0) but less than correct ones.
	if s2-s1 >= s1 {
		t.Error("a wrong answer should gain less than a correct one")
	}
}

func TestBuildMatrix(t *testing.T) {
	lms := lmGrid(10)
	pool := &Pool{Workers: []*Worker{
		{ID: 0, Profile: Profile{Home: geo.Point{X: 0}, Work: geo.Point{X: 0}}},
		{ID: 1, Profile: Profile{Home: geo.Point{X: 99999}, Work: geo.Point{X: 99999}},
			History: map[landmark.ID]History{7: {Correct: 3}}},
	}}
	cfg := DefaultFamiliarityConfig()
	m := BuildMatrix(pool, lms, cfg)
	// Worker 0 near landmarks 0..4 (within 2000 m).
	if _, ok := m.Get(0, 0); !ok {
		t.Error("worker 0 should know landmark 0")
	}
	if _, ok := m.Get(0, 9); ok {
		t.Error("worker 0 should not know landmark 9")
	}
	// Worker 1 knows landmark 7 only via history.
	if v, ok := m.Get(1, 7); !ok || v <= 0 {
		t.Error("worker 1 should know landmark 7 from history")
	}
	if _, ok := m.Get(1, 0); ok {
		t.Error("worker 1 should not know landmark 0")
	}
	if m.NonZeros() == 0 || m.Workers != 2 || m.Landmarks != 10 {
		t.Errorf("matrix shape %dx%d nnz=%d", m.Workers, m.Landmarks, m.NonZeros())
	}
}

func TestAccumulateRadiatesKnowledge(t *testing.T) {
	lms := lmGrid(10) // 500 m spacing, EtaDis 2000 covers 4 neighbours
	cfg := DefaultFamiliarityConfig()
	m := NewMatrix(1, 10)
	m.Set(0, 3, 2.0) // knows landmark 3 only
	acc := Accumulate(m, lms, cfg)
	center, ok := acc.Get(0, 3)
	if !ok || center <= 0 {
		t.Fatal("accumulated self familiarity missing")
	}
	near, ok := acc.Get(0, 4)
	if !ok || near <= 0 {
		t.Error("knowledge should radiate to the adjacent landmark")
	}
	if near >= center {
		t.Error("adjacent familiarity should be below the center's")
	}
	if _, ok := acc.Get(0, 9); ok {
		t.Error("knowledge must not radiate beyond EtaDis")
	}
}

func TestGeneratePoolDeterministic(t *testing.T) {
	lms := lmGrid(20)
	bounds := geo.BBox{Min: geo.Point{}, Max: geo.Point{X: 10000, Y: 10000}}
	cfg := DefaultGenConfig()
	cfg.NumWorkers = 40
	p1 := GeneratePool(bounds, lms, cfg)
	p2 := GeneratePool(bounds, lms, cfg)
	if p1.Len() != 40 || p2.Len() != 40 {
		t.Fatalf("pool sizes %d/%d", p1.Len(), p2.Len())
	}
	for i := range p1.Workers {
		if p1.Workers[i].Profile.Home != p2.Workers[i].Profile.Home ||
			p1.Workers[i].Lambda != p2.Workers[i].Lambda {
			t.Fatalf("worker %d differs", i)
		}
		if p1.Workers[i].Lambda <= 0 {
			t.Errorf("worker %d lambda = %v", i, p1.Workers[i].Lambda)
		}
	}
	if p1.Get(0) == nil || p1.Get(999) != nil || p1.Get(-1) != nil {
		t.Error("Get bounds check failed")
	}
}

func TestPMFRecoversLatentStructure(t *testing.T) {
	// The paper's motivating example: workers similar to others who know a
	// landmark should be predicted to know it too. Ten "complete" workers
	// know landmarks 0,1,2 equally; worker 10 is observed on 0,1 only.
	m := NewMatrix(11, 3)
	for w := 0; w < 10; w++ {
		m.Set(w, 0, 1)
		m.Set(w, 1, 1)
		m.Set(w, 2, 1)
	}
	m.Set(10, 0, 1)
	m.Set(10, 1, 1)
	model := FitPMF(m, DefaultPMFConfig())
	pred := model.Predict(10, 2)
	if pred < 0.5 {
		t.Errorf("PMF should infer worker 10 knows landmark 2: pred = %v", pred)
	}
	// Training error should be small.
	if rmse := RMSE(m, model); rmse > 0.2 {
		t.Errorf("training RMSE = %v", rmse)
	}
}

func TestPMFImprovesOverInit(t *testing.T) {
	m := NewMatrix(20, 15)
	for w := 0; w < 20; w++ {
		for l := 0; l < 15; l++ {
			if (w+l)%3 == 0 {
				m.Set(w, l, float64(w%4)*0.3+0.2)
			}
		}
	}
	cfg := DefaultPMFConfig()
	init := FitPMF(m, PMFConfig{Factors: cfg.Factors, Iters: 1, LearnRate: 1e-9, Seed: cfg.Seed})
	trained := FitPMF(m, cfg)
	if RMSE(m, trained) >= RMSE(m, init) {
		t.Errorf("training should reduce RMSE: %v vs %v", RMSE(m, trained), RMSE(m, init))
	}
}

func TestDensifyKeepsObserved(t *testing.T) {
	m := NewMatrix(5, 5)
	m.Set(0, 0, 0.7)
	model := FitPMF(m, DefaultPMFConfig())
	dense := Densify(m, model, 0.01)
	if v, ok := dense.Get(0, 0); !ok || v != 0.7 {
		t.Errorf("observed entry changed: %v %v", v, ok)
	}
	if dense.NonZeros() < m.NonZeros() {
		t.Error("densified matrix lost entries")
	}
}

func TestPMFEmptyMatrix(t *testing.T) {
	m := NewMatrix(3, 3)
	model := FitPMF(m, DefaultPMFConfig())
	if model.Predict(0, 0) < 0 {
		t.Error("prediction must be non-negative")
	}
	if RMSE(m, model) != 0 {
		t.Error("empty RMSE should be 0")
	}
	if model.Predict(-1, 0) != 0 || model.Predict(0, 99) != 0 {
		t.Error("out-of-range predictions should be 0")
	}
}

// ratedVotingFixture reproduces the paper's w1/w2 coverage example: w1 is a
// narrow expert (F=2 on landmark 0 only), w2 has broad shallow knowledge
// (F=0.1 on all ten landmarks).
func ratedVotingFixture() (*Pool, *Matrix, []landmark.ID) {
	pool := &Pool{Workers: []*Worker{
		{ID: 0, Lambda: 1},
		{ID: 1, Lambda: 1},
	}}
	m := NewMatrix(2, 10)
	m.Set(0, 0, 2.0)
	for l := 0; l < 10; l++ {
		m.Set(1, l, 0.1)
	}
	var lids []landmark.ID
	for l := 0; l < 10; l++ {
		lids = append(lids, landmark.ID(l))
	}
	return pool, m, lids
}

func TestTopKEligibleRatedVotingPrefersCoverage(t *testing.T) {
	pool, m, lids := ratedVotingFixture()
	cfg := DefaultSelectConfig()
	got := TopKEligible(pool, m, lids, 1, cfg)
	if len(got) != 1 || got[0].Worker.ID != 1 {
		t.Fatalf("rated voting picked %v, want broad worker 1", got)
	}
	// The naive sum picks the narrow expert instead — the bias the paper
	// calls out.
	naive := SumFamiliarityTopK(pool, m, lids, 1, cfg)
	if len(naive) != 1 || naive[0].Worker.ID != 0 {
		t.Fatalf("sum baseline picked %v, want narrow worker 0", naive)
	}
}

func TestTopKEligibleFilters(t *testing.T) {
	pool, m, lids := ratedVotingFixture()
	cfg := DefaultSelectConfig()

	// Quota: overload worker 1.
	pool.Workers[1].Outstanding = cfg.MaxOutstanding
	got := TopKEligible(pool, m, lids, 2, cfg)
	if len(got) != 1 || got[0].Worker.ID != 0 {
		t.Errorf("quota filter failed: %v", got)
	}
	pool.Workers[1].Outstanding = 0

	// Response time: make worker 0 too slow.
	pool.Workers[0].Lambda = 0.0001
	got = TopKEligible(pool, m, lids, 2, cfg)
	for _, r := range got {
		if r.Worker.ID == 0 {
			t.Error("slow worker should be filtered")
		}
	}
	pool.Workers[0].Lambda = 1

	// No eligible workers at all.
	for _, w := range pool.Workers {
		w.Lambda = 1e-9
	}
	if got := TopKEligible(pool, m, lids, 2, cfg); got != nil {
		t.Errorf("all-slow pool should return nil, got %v", got)
	}
}

func TestTopKEligibleEdgeCases(t *testing.T) {
	pool, m, lids := ratedVotingFixture()
	cfg := DefaultSelectConfig()
	if got := TopKEligible(pool, m, lids, 0, cfg); got != nil {
		t.Error("k=0 should be nil")
	}
	if got := TopKEligible(pool, m, nil, 3, cfg); got != nil {
		t.Error("no landmarks should be nil")
	}
	// k larger than candidates: return all.
	got := TopKEligible(pool, m, lids, 50, cfg)
	if len(got) != 2 {
		t.Errorf("len = %d, want 2", len(got))
	}
	// Scores must be descending.
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Error("scores not descending")
		}
	}
	// Workers with no familiarity on any task landmark are not candidates.
	m2 := NewMatrix(2, 10)
	if got := TopKEligible(pool, m2, lids, 2, cfg); got != nil {
		t.Errorf("no familiarity -> nil, got %v", got)
	}
}

func TestCoverage(t *testing.T) {
	_, m, lids := ratedVotingFixture()
	if c := Coverage(m, 0, lids); math.Abs(c-0.1) > 1e-9 {
		t.Errorf("narrow coverage = %v, want 0.1", c)
	}
	if c := Coverage(m, 1, lids); c != 1 {
		t.Errorf("broad coverage = %v, want 1", c)
	}
	if Coverage(m, 0, nil) != 0 {
		t.Error("empty landmarks coverage should be 0")
	}
}

func TestMeanScore(t *testing.T) {
	if MeanScore(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	rs := []Ranked{{Score: 1}, {Score: 3}}
	if got := MeanScore(rs); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 1, 0.5)
	if v, ok := m.Get(1, 1); !ok || v != 0.5 {
		t.Error("Get after Set failed")
	}
	if _, ok := m.Get(0, 0); ok {
		t.Error("unset entry should be unobserved")
	}
	count := 0
	m.Each(func(w, l int, v float64) {
		count++
		if w != 1 || l != 1 || v != 0.5 {
			t.Errorf("Each yielded %d,%d,%v", w, l, v)
		}
	})
	if count != 1 {
		t.Errorf("Each visited %d entries", count)
	}
}
